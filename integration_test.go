package repro

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/num"
	"repro/internal/qasm"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Integration tests that exercise whole pipelines across module boundaries.

const qftQASM = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
h q[2];
swap q[0],q[2];
`

// TestQASMToBothRepresentations parses a QFT circuit, simulates it densely
// and with the numerical QMDD, and checks the amplitudes agree.
func TestQASMToBothRepresentations(t *testing.T) {
	c, err := qasm.Parse(qftQASM, "qft3")
	if err != nil {
		t.Fatal(err)
	}
	ref := dense.New(c.N)
	if err := ref.Run(c); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager[complex128](num.NewRing(1e-12), core.NormMax)
	s := sim.New(m, c.N)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Amp {
		got := m.Amplitude(s.State, c.N, uint64(i))
		if cmplx.Abs(got-ref.Amp[i]) > 1e-9 {
			t.Fatalf("amp[%d] = %v, want %v", i, got, ref.Amp[i])
		}
	}
	// The QFT of |0…0⟩ is the uniform superposition.
	for i := range ref.Amp {
		if math.Abs(m.Probability(s.State, c.N, uint64(i))-1.0/8) > 1e-9 {
			t.Fatalf("QFT|0⟩ not uniform at %d", i)
		}
	}
}

// TestCompiledGSEExactInBothWorlds: the Clifford+T compilation of GSE runs
// exactly on the algebraic ring (which rejects the raw circuit), and the
// numerical ε = 0 run of the identical circuit matches it to float accuracy.
func TestCompiledGSEExactInBothWorlds(t *testing.T) {
	raw := algorithms.GSE(algorithms.GSEConfig{
		Hamiltonian: algorithms.H2Hamiltonian(),
		PhaseBits:   2,
		Time:        0.75,
		Trotter:     1,
		PrepareX:    []int{0},
	})
	mAlg := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	if err := sim.New(mAlg, raw.N).Run(raw, nil); err == nil {
		t.Fatal("raw GSE (with rotations) accepted by the exact ring")
	}
	ct, _, err := algorithms.CompileCliffordT(raw, synth.New(9), 1)
	if err != nil {
		t.Fatal(err)
	}
	sa := sim.New(mAlg, ct.N)
	if err := sa.Run(ct, nil); err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(mAlg.Norm2(sa.State) - 1); d > 1e-12 {
		t.Fatalf("exact norm drifted by %v", d)
	}
	mNum := core.NewManager[complex128](num.NewRing(0), core.NormMax)
	sn := sim.New(mNum, ct.N)
	if err := sn.Run(ct, nil); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < uint64(1)<<uint(ct.N); i++ {
		ga := mAlg.R.Complex128(mAlg.Amplitude(sa.State, ct.N, i))
		gn := mNum.Amplitude(sn.State, ct.N, i)
		if cmplx.Abs(ga-gn) > 1e-9 {
			t.Fatalf("amp[%d]: algebraic %v vs numeric %v", i, ga, gn)
		}
	}
}

// TestEquivalenceAcrossNormSchemes: the same pair of equivalent circuits is
// recognized under every algebraic normalization scheme.
func TestEquivalenceAcrossNormSchemes(t *testing.T) {
	lhs := circuit.New("lhs", 2)
	lhs.H(0).H(1).CX(0, 1).H(0).H(1)
	rhs := circuit.New("rhs", 2)
	rhs.CX(1, 0)
	for _, norm := range []core.NormScheme{core.NormLeft, core.NormMax, core.NormGCD} {
		m := core.NewManager[alg.Q](alg.Ring{}, norm)
		eq, err := sim.Equivalent(m, lhs, rhs)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("[%v] equivalence not recognized", norm)
		}
	}
}

// TestQASMRoundTripThroughQMDD: write a generated circuit to QASM, parse it
// back, and verify the two circuit unitaries coincide exactly.
func TestQASMRoundTripThroughQMDD(t *testing.T) {
	c := circuit.New("rt", 3)
	c.H(0).T(1).CX(0, 1).CCX(0, 1, 2).S(2).CZ(1, 2).Tdg(0)
	var sb strings.Builder
	if err := qasm.Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := qasm.Parse(sb.String(), "rt2")
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	eq, err := sim.Equivalent(m, c, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("QASM round trip changed the unitary")
	}
}

// TestMatVecVsMatMatAgree: simulating gate by gate (matrix-vector) and
// applying the prebuilt circuit unitary (matrix-matrix) give the identical
// canonical state — the consistency behind the paper's design-task claims.
func TestMatVecVsMatMatAgree(t *testing.T) {
	c := algorithms.Grover(6, 37, 0)
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	s := sim.New(m, c.N)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	u, err := sim.BuildUnitary(m, c)
	if err != nil {
		t.Fatal(err)
	}
	viaU := m.Mul(u, m.BasisState(c.N, 0))
	if !m.RootsEqual(viaU, s.State) {
		t.Fatal("matrix-vector and matrix-matrix evolution disagree")
	}
}

// TestUnitarityOfWorkloads: every generated benchmark circuit's unitary U
// satisfies U·U† = I with identical roots (exactly).
func TestUnitarityOfWorkloads(t *testing.T) {
	workloads := []*circuit.Circuit{
		algorithms.Grover(4, 5, 1),
		algorithms.BWT(2, 2),
	}
	for _, c := range workloads {
		m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		u, err := sim.BuildUnitary(m, c)
		if err != nil {
			t.Fatal(err)
		}
		if !m.RootsEqual(m.Mul(u, m.Adjoint(u)), m.Identity(c.N)) {
			t.Fatalf("%s unitary is not unitary", c.Name)
		}
	}
}

// toffoliCliffordT is the textbook 7-T-gate Clifford+T decomposition of the
// Toffoli gate (controls a, b; target t).
func toffoliCliffordT(a, b, tq int) *circuit.Circuit {
	n := maxInt(a, maxInt(b, tq)) + 1
	c := circuit.New("toffoli-ct", n)
	c.H(tq)
	c.CX(b, tq)
	c.Tdg(tq)
	c.CX(a, tq)
	c.T(tq)
	c.CX(b, tq)
	c.Tdg(tq)
	c.CX(a, tq)
	c.T(b).T(tq)
	c.H(tq)
	c.CX(a, b)
	c.T(a).Tdg(b)
	c.CX(a, b)
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestToffoliDecompositionExactEquivalence: the 7-T decomposition equals the
// native Toffoli exactly — verified by the O(1) root comparison, the check
// floating-point representations cannot make at ε = 0.
func TestToffoliDecompositionExactEquivalence(t *testing.T) {
	native := circuit.New("ccx", 3)
	native.CCX(0, 1, 2)
	decomp := toffoliCliffordT(0, 1, 2)

	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	eq, err := sim.Equivalent(m, native, decomp)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("7-T Toffoli decomposition not exactly equivalent to CCX")
	}
	// The numerical ε = 0 check fails on the same pair (rounding).
	mNum := core.NewManager[complex128](num.NewRing(0), core.NormMax)
	eqNum, err := sim.Equivalent(mNum, native, decomp)
	if err != nil {
		t.Fatal(err)
	}
	if eqNum {
		t.Log("note: ε = 0 float comparison happened to succeed on this platform")
	}
}

// TestExactSynthesisOfCircuitUnitary: round-trip a Clifford+T circuit
// through its dense D[ω] matrix and the Giles–Selinger synthesis, verifying
// exact equivalence by QMDD roots.
func TestExactSynthesisOfCircuitUnitary(t *testing.T) {
	orig := toffoliCliffordT(0, 1, 2)
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	u, err := sim.BuildUnitary(m, orig)
	if err != nil {
		t.Fatal(err)
	}
	rows := m.ToMatrix(u, 3)
	mat := make([][]alg.D, len(rows))
	for i, row := range rows {
		mat[i] = make([]alg.D, len(row))
		for j, q := range row {
			d, ok := q.InD()
			if !ok {
				t.Fatalf("entry (%d,%d) not in D[ω]", i, j)
			}
			mat[i][j] = d
		}
	}
	resynth, err := synth.ExactSynthesizeMultiQubit(mat, 3)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := sim.BuildUnitary(m, resynth)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RootsEqual(u, u2) {
		t.Fatal("exact synthesis changed the unitary")
	}
}
