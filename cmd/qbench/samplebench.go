package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/alg"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

// runSampleBench measures what hoisting the subtree-mass memo buys when a
// final state is sampled repeatedly: the per-call path (core.Sample — a
// fresh validating mass pass per draw, O(nodes) each) against the reusable
// Sampler (one mass pass, O(n) per draw). Both paths consume identical
// random streams, so they draw identical outcomes — the benchmark isolates
// the memo hoist.
func runSampleBench(ctx context.Context, p bench.FigureParams, draws int) error {
	workloads := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"grover", bench.GroverCircuit(p)},
		{"bwt", bench.BWTCircuit(p)},
	}
	for _, w := range workloads {
		m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		m.SetBudget(p.Budget)
		s := sim.New(m, w.c.N)
		if err := s.RunCtx(ctx, w.c, nil); err != nil {
			return fmt.Errorf("sample-bench %s: %w", w.name, err)
		}

		start := time.Now()
		for i := 0; i < draws; i++ {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if _, err := m.Sample(s.State, w.c.N, sim.ForkRNG(1, i)); err != nil {
				return fmt.Errorf("sample-bench %s: %w", w.name, err)
			}
		}
		perCall := time.Since(start)

		start = time.Now()
		sampler, err := m.NewSampler(s.State, w.c.N)
		if err != nil {
			return fmt.Errorf("sample-bench %s: %w", w.name, err)
		}
		for i := 0; i < draws; i++ {
			if _, err := sampler.Draw(sim.ForkRNG(1, i)); err != nil {
				return fmt.Errorf("sample-bench %s: %w", w.name, err)
			}
		}
		hoisted := time.Since(start)

		speedup := float64(perCall) / float64(hoisted)
		fmt.Printf("sample-bench %s: %d qubits, %d state nodes, %d draws: per-call %v (%.2f µs/draw)  hoisted %v (%.2f µs/draw)  speedup %.1fx\n",
			w.name, w.c.N, s.State.NodeCount(), draws,
			perCall.Round(time.Millisecond), float64(perCall.Microseconds())/float64(draws),
			hoisted.Round(time.Millisecond), float64(hoisted.Microseconds())/float64(draws),
			speedup)
	}
	return nil
}
