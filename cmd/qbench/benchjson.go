package main

// -bench-json: single-run wall-clock benchmarks for the identity-skipping
// local apply path and intra-operation parallelism, written as one JSON
// report. Unlike the figure sweeps (which measure the paper's quantities),
// this mode measures the *implementation*: for each workload it times
//
//   - "mul"      — the classic pipeline, gates.BuildDD + Mul (the pre-local
//                  baseline, kept in-tree as the differential-test oracle);
//   - "local-w1" — core.ApplyLocal, sequential;
//   - "local-wK" — core.ApplyLocal with K intra-op workers.
//
// All three produce byte-identical states (asserted below via RootsEqual);
// only the time/allocation profile differs. Every variant is run repeat
// times on a fresh manager and the best (minimum) wall time is reported —
// single-run benchmarks are noisy, the minimum is the least-noisy robust
// statistic for "how fast can this go".

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/alg"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

// benchParallelWorkers is the intra-worker count of the parallel variant.
const benchParallelWorkers = 4

// benchRepeat is the per-variant repetition count (best-of is reported).
const benchRepeat = 3

type benchVariant struct {
	Name         string  `json:"name"`
	IntraWorkers int     `json:"intra_workers"`
	Seconds      float64 `json:"seconds"` // best of benchRepeat runs
	AllocBytes   uint64  `json:"alloc_bytes"`
	Mallocs      uint64  `json:"mallocs"`
	PeakNodes    int     `json:"peak_nodes"`
	FinalNodes   int     `json:"final_nodes"`
}

type benchFigure struct {
	Figure   string         `json:"figure"`
	Workload string         `json:"workload"`
	Qubits   int            `json:"qubits"`
	Gates    int            `json:"gates"`
	Variants []benchVariant `json:"variants"`
	// SpeedupLocalVsMul is mul_seconds / local-w1_seconds: the sequential
	// win of identity-skipping application over BuildDD+Mul.
	SpeedupLocalVsMul float64 `json:"speedup_local_vs_mul"`
	// SpeedupParallel is local-w1_seconds / local-wK_seconds: the intra-op
	// parallel win (only meaningful with more than one CPU — see Note).
	SpeedupParallel float64 `json:"speedup_parallel"`
}

type benchReport struct {
	GeneratedUnix  int64         `json:"generated_unix"`
	NumCPU         int           `json:"num_cpu"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	Representation string        `json:"representation"`
	Note           string        `json:"note,omitempty"`
	Figures        []benchFigure `json:"figures"`
}

// runBenchJSON runs the single-run benchmarks and writes the report to path.
func runBenchJSON(ctx context.Context, p bench.FigureParams, path string) error {
	gse, err := bench.GSECircuit(p)
	if err != nil {
		return err
	}
	workloads := []struct {
		figure, name string
		c            *circuit.Circuit
	}{
		{"fig3", "grover", bench.GroverCircuit(p)},
		{"fig4", "bwt", bench.BWTCircuit(p)},
		{"fig5", "gse", gse},
	}
	rep := benchReport{
		GeneratedUnix:  time.Now().Unix(),
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Representation: "alg/left",
	}
	if rep.NumCPU <= 1 {
		rep.Note = "single-CPU host: intra-op worker goroutines cannot run " +
			"concurrently, so speedup_parallel measures scheduling overhead, " +
			"not the parallel win; speedup_local_vs_mul is unaffected"
	}
	for _, w := range workloads {
		fig, err := benchOne(ctx, w.figure, w.name, w.c, p)
		if err != nil {
			return fmt.Errorf("bench-json %s/%s: %w", w.figure, w.name, err)
		}
		rep.Figures = append(rep.Figures, *fig)
		fmt.Printf("bench-json %s-%s: mul %.3fs  local-w1 %.3fs  local-w%d %.3fs  (local/mul %.2fx, parallel %.2fx)\n",
			w.figure, w.name,
			fig.Variants[0].Seconds, fig.Variants[1].Seconds, benchParallelWorkers,
			fig.Variants[2].Seconds, fig.SpeedupLocalVsMul, fig.SpeedupParallel)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchOne benchmarks all variants on one circuit and cross-checks that they
// agree on the final state.
func benchOne(ctx context.Context, figure, name string, c *circuit.Circuit, p bench.FigureParams) (*benchFigure, error) {
	fig := &benchFigure{Figure: figure, Workload: name, Qubits: c.N, Gates: c.Len()}

	variants := []struct {
		name    string
		workers int
		mulPath bool
	}{
		{"mul", 1, true},
		{"local-w1", 1, false},
		{fmt.Sprintf("local-w%d", benchParallelWorkers), benchParallelWorkers, false},
	}
	// One reference manager keeps each variant's final state for the
	// cross-check: every path must land on the same canonical diagram.
	var refM *core.Manager[alg.Q]
	var refState core.Edge[alg.Q]
	for _, v := range variants {
		best := benchVariant{Name: v.name, IntraWorkers: v.workers}
		for rep := 0; rep < benchRepeat; rep++ {
			m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
			m.SetIntraWorkers(v.workers)
			m.SetBudget(p.Budget)
			r, err := benchRun(ctx, m, c, v.mulPath)
			if err != nil {
				return nil, err
			}
			if rep == 0 || r.Seconds < best.Seconds {
				r.Name, r.IntraWorkers = v.name, v.workers
				best = r.benchVariant
			}
			if refM == nil {
				refM, refState = m, r.state
			} else if !core.CrossEqual(refM, refState, m, r.state) {
				return nil, fmt.Errorf("variant %s diverged from %s", v.name, variants[0].name)
			}
		}
		fig.Variants = append(fig.Variants, best)
	}
	if s := fig.Variants[1].Seconds; s > 0 {
		fig.SpeedupLocalVsMul = fig.Variants[0].Seconds / s
	}
	if s := fig.Variants[2].Seconds; s > 0 {
		fig.SpeedupParallel = fig.Variants[1].Seconds / s
	}
	return fig, nil
}

// benchRunResult carries the measured quantities plus the final state for
// the cross-variant equality check.
type benchRunResult struct {
	benchVariant
	state core.Edge[alg.Q]
}

// benchRun simulates the circuit once on a fresh manager, via either the
// classic BuildDD+Mul pipeline or the local apply path, and measures wall
// time, allocation, and the exact per-gate peak state size.
func benchRun(ctx context.Context, m *core.Manager[alg.Q], c *circuit.Circuit, mulPath bool) (benchRunResult, error) {
	var r benchRunResult
	s := sim.New(m, c.N)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if mulPath {
		// The pre-local pipeline, gate diagram + matrix-vector Mul.
		for i, g := range c.Gates {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return r, err
				}
			}
			dd, err := s.GateDD(g)
			if err != nil {
				return r, err
			}
			s.State = m.Mul(dd, s.State)
			if n := s.State.NodeCount(); n > r.PeakNodes {
				r.PeakNodes = n
			}
		}
	} else {
		err := s.RunCtx(ctx, c, func(i int, g circuit.Gate) bool {
			if n := s.State.NodeCount(); n > r.PeakNodes {
				r.PeakNodes = n
			}
			return true
		})
		if err != nil {
			return r, err
		}
	}
	r.Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	r.AllocBytes = after.TotalAlloc - before.TotalAlloc
	r.Mallocs = after.Mallocs - before.Mallocs
	r.FinalNodes = s.State.NodeCount()
	r.state = s.State
	return r, nil
}
