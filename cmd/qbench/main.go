// Command qbench regenerates the experiments of the paper's evaluation
// section: the accuracy/compactness trade-off sweeps of Figs. 2–5 and the
// normalization-scheme comparison of Section V-B. It prints a per-run
// summary plus ASCII series and optionally writes tidy CSV files.
//
// Usage examples:
//
//	qbench -fig 3                       # Grover trade-off (Fig. 3a/b/c)
//	qbench -fig 5 -phasebits 4 -skdepth 2   # heavier GSE (Fig. 5)
//	qbench -fig norms                   # Algorithm 2 vs Algorithm 3
//	qbench -fig all -out results/       # everything, with CSVs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/buildinfo"
)

func main() {
	var (
		fig       = flag.String("fig", "3", "figure to regenerate: 2, 3, 4, 5, norms, all")
		outDir    = flag.String("out", "", "directory for CSV output (optional)")
		grover    = flag.Int("grover", 0, "override Grover qubit count (paper: 15)")
		bwtDepth  = flag.Int("bwtdepth", 0, "override BWT tree depth")
		bwtSteps  = flag.Int("bwtsteps", 0, "override BWT walk steps")
		phaseBits = flag.Int("phasebits", 0, "override GSE phase register size")
		skDepth   = flag.Int("skdepth", -1, "override GSE Solovay–Kitaev depth")
		netLen    = flag.Int("netlen", 0, "override synthesizer net length")
		stride    = flag.Int("stride", 0, "override sampling stride")
		noError   = flag.Bool("noerror", false, "skip the per-sample accuracy metric (faster)")
		nodeCap   = flag.Int("nodecap", 0, "deprecated alias for -max-nodes")
		maxNodes  = flag.Int("max-nodes", 0, "budget: max live QMDD nodes per run (0 = default 200000)")
		maxMem    = flag.Int64("max-mem", 0, "budget: approximate max bytes of nodes+weights per run (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for the whole invocation (0 = none); partial results are printed on expiry")
		epsFlag   = flag.String("eps", "", "comma-separated ε list (default: paper sweep)")
		width     = flag.Int("width", 60, "ASCII chart width")
		numNorm   = flag.String("numnorm", "max", "numeric normalization: max (stabilized [29]) or left (classic)")
		parallel  = flag.Int("parallel", 0, "worker pool for the sweep cells, each on a private manager (0 = GOMAXPROCS, 1 = sequential); output is identical for every setting")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("qbench", buildinfo.Read())
		return
	}
	numNormLeft := false
	switch *numNorm {
	case "max":
	case "left":
		numNormLeft = true
	default:
		fatal(fmt.Errorf("bad -numnorm %q (want max or left)", *numNorm))
	}

	p := bench.DefaultParams()
	if *grover > 0 {
		p.GroverQubits = *grover
	}
	if *bwtDepth > 0 {
		p.BWTDepth = *bwtDepth
	}
	if *bwtSteps > 0 {
		p.BWTSteps = *bwtSteps
	}
	if *phaseBits > 0 {
		p.GSEPhaseBits = *phaseBits
	}
	if *skDepth >= 0 {
		p.GSESKDepth = *skDepth
	}
	if *netLen > 0 {
		p.SynthNetLen = *netLen
	}
	if *stride > 0 {
		p.Stride = *stride
	}
	if *noError {
		p.MeasureError = false
	}
	if *nodeCap > 0 {
		p.Budget.MaxNodes = *nodeCap
	}
	if *maxNodes > 0 {
		p.Budget.MaxNodes = *maxNodes
	}
	if *maxMem > 0 {
		p.Budget.MaxBytes = *maxMem
	}
	if *timeout > 0 {
		p.Budget.Deadline = time.Now().Add(*timeout)
	}
	p.NumNormLeft = numNormLeft
	p.Parallel = *parallel
	if *epsFlag != "" {
		var eps []float64
		for _, part := range strings.Split(*epsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -eps entry %q: %v", part, err))
			}
			eps = append(eps, v)
		}
		p.EpsList = eps
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
	}

	// SIGINT (and -timeout) cancel the experiment cooperatively: completed
	// runs and partial samples are still summarized below instead of dying.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"2", "3", "4", "5", "norms"}
	}
	var runErr error
	for _, f := range figs {
		if runErr = runOne(ctx, f, p, *outDir, *width); runErr != nil {
			break
		}
	}
	if runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)) {
		fmt.Printf("qbench: stopped early (%v); partial results above\n", runErr)
		runErr = nil
	}

	// Flush the profiles before reporting any error: a profile of a partial
	// run is still a useful profile.
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		if err := writeHeapProfile(*memProf); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	return pprof.WriteHeapProfile(f)
}

func runOne(ctx context.Context, fig string, p bench.FigureParams, outDir string, width int) error {
	var (
		res *bench.Result
		err error
	)
	if fig == "norms" {
		res, err = bench.NormSchemeComparisonCtx(ctx, bench.BWTCircuit(p), p.Stride, p.Parallel)
	} else {
		res, err = bench.FigureCtx(ctx, fig, p)
	}
	if err != nil && !(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return err
	}
	if res == nil || len(res.Runs) == 0 {
		return err
	}
	cancelErr := err
	// Per-worker pool stats go to stderr: stdout (summaries, series, CSV)
	// must stay byte-identical across -parallel settings.
	if len(res.Workers) > 0 {
		fmt.Fprint(os.Stderr, bench.WorkerReport(res.Workers))
	}
	fmt.Println(bench.Summary(res))
	fmt.Println(bench.StatsSummary(res))
	fmt.Println(bench.Series(res, "nodes", width))
	if fig != "2" && fig != "norms" {
		fmt.Println(bench.Series(res, "error", width))
		fmt.Println(bench.Series(res, "time", width))
	}
	if fig == "norms" || fig == "5" {
		fmt.Println(bench.Series(res, "bits", width))
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, res.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteCSV(f, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return cancelErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qbench:", err)
	os.Exit(1)
}
