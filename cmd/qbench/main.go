// Command qbench regenerates the experiments of the paper's evaluation
// section: the accuracy/compactness trade-off sweeps of Figs. 2–5 and the
// normalization-scheme comparison of Section V-B. It prints a per-run
// summary plus ASCII series and optionally writes tidy CSV files.
//
// Usage examples:
//
//	qbench -fig 3                       # Grover trade-off (Fig. 3a/b/c)
//	qbench -fig 5 -phasebits 4 -skdepth 2   # heavier GSE (Fig. 5)
//	qbench -fig norms                   # Algorithm 2 vs Algorithm 3
//	qbench -fig all -out results/       # everything, with CSVs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/alg"
	"repro/internal/bench"
	"repro/internal/buildinfo"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ddio"
	"repro/internal/qcache"
	"repro/internal/sim"
)

func main() {
	var (
		fig         = flag.String("fig", "3", "figure to regenerate: 2, 3, 4, 5, norms, all")
		outDir      = flag.String("out", "", "directory for CSV output (optional)")
		grover      = flag.Int("grover", 0, "override Grover qubit count (paper: 15)")
		bwtDepth    = flag.Int("bwtdepth", 0, "override BWT tree depth")
		bwtSteps    = flag.Int("bwtsteps", 0, "override BWT walk steps")
		phaseBits   = flag.Int("phasebits", 0, "override GSE phase register size")
		skDepth     = flag.Int("skdepth", -1, "override GSE Solovay–Kitaev depth")
		netLen      = flag.Int("netlen", 0, "override synthesizer net length")
		stride      = flag.Int("stride", 0, "override sampling stride")
		noError     = flag.Bool("noerror", false, "skip the per-sample accuracy metric (faster)")
		nodeCap     = flag.Int("nodecap", 0, "deprecated alias for -max-nodes")
		maxNodes    = flag.Int("max-nodes", 0, "budget: max live QMDD nodes per run (0 = default 200000)")
		maxMem      = flag.Int64("max-mem", 0, "budget: approximate max bytes of nodes+weights per run (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "wall-clock limit for the whole invocation (0 = none); partial results are printed on expiry")
		epsFlag     = flag.String("eps", "", "comma-separated ε list (default: paper sweep)")
		width       = flag.Int("width", 60, "ASCII chart width")
		numNorm     = flag.String("numnorm", "max", "numeric normalization: max (stabilized [29]) or left (classic)")
		parallel    = flag.Int("parallel", 0, "worker pool for the sweep cells, each on a private manager (0 = GOMAXPROCS, 1 = sequential); output is identical for every setting")
		intraW      = flag.Int("intra-workers", 1, "intra-operation worker goroutines inside each run's manager (1 = sequential); output is identical for every setting; ε>0 runs stay sequential")
		cpuProf     = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		cacheDir    = flag.String("cache", "", "benchmark the qcache disk tier instead of a figure sweep: run each workload cold (simulate + cache the final state in this directory), then warm (replay from cache), and report both wall times")
		benchJSON   = flag.String("bench-json", "", "single-run implementation benchmark instead of a figure sweep: time each workload under BuildDD+Mul, sequential local apply, and parallel local apply, and write the JSON report to this path")
		sampleBench = flag.Int("sample-bench", 0, "measurement-sampling micro-benchmark instead of a figure sweep: draw this many samples from each workload's final state, per-call (fresh mass pass per draw) vs hoisted (reusable Sampler), and report both")
		approxBench = flag.Float64("min-fidelity", 0, "graceful-degradation benchmark instead of a figure sweep: rerun each workload under half its node demand, exact (fail-fast) vs approximated down to this fidelity floor, and report what the floor buys")
		prefixBench = flag.Int("prefix-bench", 0, "shared-prefix batch benchmark instead of a figure sweep: submit this many Grover variants once through POST /v1/batches (prefix simulated exactly once, variants warm-started from its checkpoint) and once as independent cold jobs, assert byte-identical amplitudes in both representations, and write the JSON report")
		prefixJSON  = flag.String("prefix-json", "BENCH_prefix.json", "report path for -prefix-bench")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("qbench", buildinfo.Read())
		return
	}
	numNormLeft := false
	switch *numNorm {
	case "max":
	case "left":
		numNormLeft = true
	default:
		fatal(fmt.Errorf("bad -numnorm %q (want max or left)", *numNorm))
	}

	p := bench.DefaultParams()
	if *grover > 0 {
		p.GroverQubits = *grover
	}
	if *bwtDepth > 0 {
		p.BWTDepth = *bwtDepth
	}
	if *bwtSteps > 0 {
		p.BWTSteps = *bwtSteps
	}
	if *phaseBits > 0 {
		p.GSEPhaseBits = *phaseBits
	}
	if *skDepth >= 0 {
		p.GSESKDepth = *skDepth
	}
	if *netLen > 0 {
		p.SynthNetLen = *netLen
	}
	if *stride > 0 {
		p.Stride = *stride
	}
	if *noError {
		p.MeasureError = false
	}
	if *nodeCap > 0 {
		p.Budget.MaxNodes = *nodeCap
	}
	if *maxNodes > 0 {
		p.Budget.MaxNodes = *maxNodes
	}
	if *maxMem > 0 {
		p.Budget.MaxBytes = *maxMem
	}
	if *timeout > 0 {
		p.Budget.Deadline = time.Now().Add(*timeout)
	}
	p.NumNormLeft = numNormLeft
	p.Parallel = *parallel
	p.IntraWorkers = *intraW
	if *epsFlag != "" {
		var eps []float64
		for _, part := range strings.Split(*epsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -eps entry %q: %v", part, err))
			}
			eps = append(eps, v)
		}
		p.EpsList = eps
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
	}

	// SIGINT (and -timeout) cancel the experiment cooperatively: completed
	// runs and partial samples are still summarized below instead of dying.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"2", "3", "4", "5", "norms"}
	}
	var runErr error
	switch {
	case *prefixBench > 0:
		runErr = runPrefixBench(ctx, p, *prefixBench, *prefixJSON)
	case *approxBench > 0:
		runErr = runApproxBench(ctx, p, *approxBench)
	case *sampleBench > 0:
		runErr = runSampleBench(ctx, p, *sampleBench)
	case *benchJSON != "":
		runErr = runBenchJSON(ctx, p, *benchJSON)
	case *cacheDir != "":
		runErr = runCacheBench(ctx, p, *cacheDir)
	default:
		for _, f := range figs {
			if runErr = runOne(ctx, f, p, *outDir, *width); runErr != nil {
				break
			}
		}
	}
	if runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)) {
		fmt.Printf("qbench: stopped early (%v); partial results above\n", runErr)
		runErr = nil
	}

	// Flush the profiles before reporting any error: a profile of a partial
	// run is still a useful profile.
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		if err := writeHeapProfile(*memProf); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// runCacheBench measures what the disk tier buys: each paper workload is
// simulated cold (and its exact final state cached), then replayed warm from
// the cache, and both wall times are reported. Keys match qsim's -cache-dir,
// so a directory warmed here also warm-starts the CLI.
func runCacheBench(ctx context.Context, p bench.FigureParams, dir string) error {
	disk, err := qcache.OpenDisk(dir)
	if err != nil {
		return err
	}
	gse, err := bench.GSECircuit(p)
	if err != nil {
		return err
	}
	workloads := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"grover", bench.GroverCircuit(p)},
		{"bwt", bench.BWTCircuit(p)},
		{"gse", gse},
	}
	fmt.Printf("qcache disk tier (%s), cold vs. warm, alg representation:\n", dir)
	for _, w := range workloads {
		cold, coldWarmed, nodes, err := cachedRun(ctx, disk, w.c, p)
		if err != nil {
			return fmt.Errorf("%s cold run: %w", w.name, err)
		}
		warm, warmed, _, err := cachedRun(ctx, disk, w.c, p)
		if err != nil {
			return fmt.Errorf("%s warm run: %w", w.name, err)
		}
		if !warmed {
			return fmt.Errorf("%s: second run did not hit the cache", w.name)
		}
		label := "cold"
		if coldWarmed {
			label = "warm" // pre-warmed directory: both runs replay
		}
		fmt.Printf("  %-6s %2dq %5d gates  %s %12v   warm %12v   %6.0f× faster, %d state nodes\n",
			w.name, w.c.N, w.c.Len(), label, cold.Round(time.Microsecond),
			warm.Round(time.Microsecond), float64(cold)/float64(warm), nodes)
	}
	return nil
}

// cachedRun executes one workload through the state cache: a hit replays the
// final state, a miss simulates and stores it. Returns the wall time, hit
// flag, and state size.
func cachedRun(ctx context.Context, disk *qcache.Disk, c *circuit.Circuit, p bench.FigureParams) (time.Duration, bool, int, error) {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	m.SetBudget(p.Budget)
	sc := qcache.NewStateCache(disk, c, "alg", 0, core.NormLeft, ddio.Codec[alg.Q](ddio.AlgCodec{}))
	s := sim.New(m, c.N)
	start := time.Now()
	if e, ok := sc.Load(m, c.N); ok {
		s.State = e
		return time.Since(start), true, s.State.NodeCount(), nil
	}
	if err := s.RunCtx(ctx, c, nil); err != nil {
		return 0, false, 0, err
	}
	elapsed := time.Since(start)
	if err := sc.Store(m, s.State, c.N); err != nil {
		return 0, false, 0, err
	}
	return elapsed, false, s.State.NodeCount(), nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	return pprof.WriteHeapProfile(f)
}

func runOne(ctx context.Context, fig string, p bench.FigureParams, outDir string, width int) error {
	var (
		res *bench.Result
		err error
	)
	if fig == "norms" {
		res, err = bench.NormSchemeComparisonCtx(ctx, bench.BWTCircuit(p), p.Stride, p.Parallel)
	} else {
		res, err = bench.FigureCtx(ctx, fig, p)
	}
	if err != nil && !(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return err
	}
	if res == nil || len(res.Runs) == 0 {
		return err
	}
	cancelErr := err
	// Per-worker pool stats go to stderr: stdout (summaries, series, CSV)
	// must stay byte-identical across -parallel settings.
	if len(res.Workers) > 0 {
		fmt.Fprint(os.Stderr, bench.WorkerReport(res.Workers))
	}
	fmt.Println(bench.Summary(res))
	fmt.Println(bench.StatsSummary(res))
	fmt.Println(bench.Series(res, "nodes", width))
	if fig != "2" && fig != "norms" {
		fmt.Println(bench.Series(res, "error", width))
		fmt.Println(bench.Series(res, "time", width))
	}
	if fig == "norms" || fig == "5" {
		fmt.Println(bench.Series(res, "bits", width))
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, res.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteCSV(f, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return cancelErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qbench:", err)
	os.Exit(1)
}
