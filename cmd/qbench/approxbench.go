package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/alg"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

// runApproxBench measures what fidelity-bounded graceful degradation buys:
// each workload first runs unbudgeted to learn its node demand, then reruns
// under half that budget twice — once exact (expected: budget_exceeded) and
// once with the requested fidelity floor (expected: an approximate success).
// Reported per workload: the refusal the floor converts into a completion,
// the retained fidelity with its exactness, the event count, and both wall
// times.
func runApproxBench(ctx context.Context, p bench.FigureParams, minFid float64) error {
	if minFid <= 0 || minFid >= 1 {
		return fmt.Errorf("approx-bench: fidelity floor must be in (0, 1), got %v", minFid)
	}
	workloads := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"grover", bench.GroverCircuit(p)},
		{"bwt", bench.BWTCircuit(p)},
	}
	fmt.Printf("approx-bench: exact fail-fast vs. min-fidelity %.3f under a halved node budget:\n", minFid)
	for _, w := range workloads {
		m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		s := sim.New(m, w.c.N)
		start := time.Now()
		if err := s.RunCtx(ctx, w.c, nil); err != nil {
			return fmt.Errorf("approx-bench %s unbudgeted: %w", w.name, err)
		}
		full := time.Since(start)
		demand := m.Stats().UniqueNodes
		budget := core.Budget{MaxNodes: demand / 2}

		m2 := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		m2.SetBudget(budget)
		exactOutcome := "completed (budget never tripped)"
		if err := sim.New(m2, w.c.N).RunCtx(ctx, w.c, nil); err != nil {
			if !errors.Is(err, core.ErrBudgetExceeded) {
				return fmt.Errorf("approx-bench %s capped exact run: %w", w.name, err)
			}
			exactOutcome = "budget_exceeded"
		}

		m3 := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		m3.SetBudget(budget)
		s3 := sim.New(m3, w.c.N)
		s3.EnableApproximation(sim.ApproxPolicy{MinFidelity: minFid, MaxEvents: 1000})
		start = time.Now()
		approxOutcome := "completed"
		if err := s3.RunCtx(ctx, w.c, nil); err != nil {
			if !errors.Is(err, core.ErrBudgetExceeded) {
				return fmt.Errorf("approx-bench %s capped approx run: %w", w.name, err)
			}
			// Some states (Grover's, famously) are intrinsically compact or
			// have no low-contribution tail at this floor: shedding cannot
			// free enough nodes, and the refusal stands. That is data too.
			approxOutcome = "budget_exceeded (nothing cheap to shed)"
		}
		approxTime := time.Since(start)
		ap := s3.Approximation()
		kind := "float"
		if ap.Exact {
			kind = "exact"
		}
		fmt.Printf("  %-6s %2dq %5d gates  demand %6d nodes, budget %6d:  exact → %s;  floor → %s, fidelity %.6f (%s, %d events), state %d nodes, full %v vs capped %v\n",
			w.name, w.c.N, w.c.Len(), demand, budget.MaxNodes, exactOutcome,
			approxOutcome, ap.Fidelity, kind, ap.Events, s3.State.NodeCount(),
			full.Round(time.Millisecond), approxTime.Round(time.Millisecond))
	}
	return nil
}
