package main

// -prefix-bench: the incremental-simulation acceptance benchmark. One Grover
// circuit is the shared prefix of N variants (each a distinct Clifford+T
// phase suffix); the sweep is submitted twice against in-process qmddd
// servers:
//
//   - cold  — N independent POST /v1/jobs submissions with caching and
//     checkpointing disabled: every variant pays for the full prefix;
//   - batch — one POST /v1/batches: the prefix simulates exactly once, its
//     checkpoint lands in the cache, and every variant job warm-starts from
//     it, paying only for its suffix.
//
// Both tiers run the same worker count, and the per-variant amplitude lists
// must be byte-identical between them — in the exact algebraic and the float
// representation. The report (wall times, speedup, checkpoint traffic)
// is written as JSON.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/load"
	"repro/internal/server"
)

// prefixBenchWorkers fixes the pool size of both tiers: the speedup compares
// scheduling strategies, not pool sizes.
const prefixBenchWorkers = 4

// prefixBenchTopK is the amplitude list length compared byte-for-byte.
const prefixBenchTopK = 16

type prefixReprResult struct {
	Representation string  `json:"representation"`
	Eps            float64 `json:"eps"`
	ColdSeconds    float64 `json:"cold_seconds"`
	BatchSeconds   float64 `json:"batch_seconds"`
	Speedup        float64 `json:"speedup"`
	// Batch-tier engine counters: PrefixHits must equal the variant count
	// (every variant warm-started) and JobsStarted must be variants+1 (the
	// shared prefix simulated exactly once).
	JobsStarted        uint64 `json:"jobs_started"`
	PrefixHits         uint64 `json:"prefix_hits"`
	PrefixGatesSkipped uint64 `json:"prefix_gates_skipped"`
	CheckpointsStored  uint64 `json:"checkpoints_stored"`
	CheckpointBytes    uint64 `json:"checkpoint_bytes"`
	// AmplitudesIdentical is the differential check: every variant's cold
	// and batch amplitude lists are byte-identical.
	AmplitudesIdentical bool `json:"amplitudes_identical"`
}

type prefixReport struct {
	GeneratedUnix   int64              `json:"generated_unix"`
	Workload        string             `json:"workload"`
	Qubits          int                `json:"qubits"`
	PrefixGates     int                `json:"prefix_gates"`
	SuffixGates     int                `json:"suffix_gates"`
	Variants        int                `json:"variants"`
	Workers         int                `json:"workers"`
	TopK            int                `json:"top_k"`
	Representations []prefixReprResult `json:"representations"`
}

// runPrefixBench runs the sweep in both representations and writes the
// report to path. A variant whose amplitudes differ between the tiers is a
// hard failure, not a report line.
func runPrefixBench(ctx context.Context, p bench.FigureParams, variants int, path string) error {
	w, err := load.BatchPrograms(p, variants)
	if err != nil {
		return err
	}
	rep := prefixReport{
		GeneratedUnix: time.Now().Unix(),
		Workload:      fmt.Sprintf("grover%d", p.GroverQubits),
		Qubits:        w.Qubits,
		PrefixGates:   w.PrefixGates,
		SuffixGates:   w.SuffixGates,
		Variants:      variants,
		Workers:       prefixBenchWorkers,
		TopK:          prefixBenchTopK,
	}
	// ε is 0 in both representations: tolerance-based weight interning is
	// sensitive to which garbage weights a manager happens to hold, so only
	// ε=0 promises byte-identical floats between a cold and a resumed run.
	for _, repr := range []string{"alg", "float"} {
		r, err := prefixBenchRepr(ctx, w, repr)
		if err != nil {
			return fmt.Errorf("prefix-bench %s: %w", repr, err)
		}
		rep.Representations = append(rep.Representations, *r)
		fmt.Printf("prefix-bench %s: cold %.3fs  batch %.3fs  (%.1f× faster; %d prefix hits, %d checkpoints, %d bytes, identical=%t)\n",
			repr, r.ColdSeconds, r.BatchSeconds, r.Speedup,
			r.PrefixHits, r.CheckpointsStored, r.CheckpointBytes, r.AmplitudesIdentical)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// prefixBenchRepr runs the cold and batch tiers for one representation and
// cross-checks the per-variant amplitudes.
func prefixBenchRepr(ctx context.Context, w *load.BatchWorkload, repr string) (*prefixReprResult, error) {
	res := &prefixReprResult{Representation: repr}

	// Cold tier: no cache, no checkpoints — every variant simulates in full.
	coldSrv, err := server.New(server.Config{Workers: prefixBenchWorkers, CheckpointEvery: -1})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(coldSrv)
	client := &http.Client{}
	coldStart := time.Now()
	coldAmps := make([][]byte, len(w.Variants))
	errs := make([]error, len(w.Variants))
	var wg sync.WaitGroup
	for i := range w.Variants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(struct {
				QASM string  `json:"qasm"`
				Repr string  `json:"representation"`
				Eps  float64 `json:"eps"`
				TopK int     `json:"top_k"`
				Wait bool    `json:"wait"`
			}{w.Variants[i], repr, 0, prefixBenchTopK, true})
			coldAmps[i], errs[i] = postJobAmplitudes(ctx, client, ts.URL+"/v1/jobs", body)
		}(i)
	}
	wg.Wait()
	res.ColdSeconds = time.Since(coldStart).Seconds()
	coldSrv.Shutdown(time.Minute)
	ts.Close()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cold variant %d: %w", i, err)
		}
	}

	// Batch tier: memory cache + checkpointing at the defaults; one
	// POST /v1/batches carries the whole sweep.
	batchSrv, err := server.New(server.Config{Workers: prefixBenchWorkers, CacheBytes: 256 << 20})
	if err != nil {
		return nil, err
	}
	ts2 := httptest.NewServer(batchSrv)
	defer ts2.Close()
	defer batchSrv.Shutdown(time.Minute)
	body, _ := json.Marshal(struct {
		Base     string   `json:"base"`
		Suffixes []string `json:"suffixes"`
		Repr     string   `json:"representation"`
		Eps      float64  `json:"eps"`
		TopK     int      `json:"top_k"`
		Wait     bool     `json:"wait"`
	}{w.Base, w.Suffixes, repr, 0, prefixBenchTopK, true})
	batchStart := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts2.URL+"/v1/batches", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var view struct {
		Status   string `json:"status"`
		Variants []struct {
			Job json.RawMessage `json:"job"`
		} `json:"variants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, err
	}
	res.BatchSeconds = time.Since(batchStart).Seconds()
	if resp.StatusCode != http.StatusOK || view.Status != "done" {
		return nil, fmt.Errorf("batch submission: HTTP %d, status %q", resp.StatusCode, view.Status)
	}
	if len(view.Variants) != len(w.Variants) {
		return nil, fmt.Errorf("batch returned %d variants, want %d", len(view.Variants), len(w.Variants))
	}

	res.AmplitudesIdentical = true
	for i, v := range view.Variants {
		amps, err := amplitudesOf(v.Job)
		if err != nil {
			return nil, fmt.Errorf("batch variant %d: %w", i, err)
		}
		if !bytes.Equal(amps, coldAmps[i]) {
			res.AmplitudesIdentical = false
			return nil, fmt.Errorf("variant %d: batch amplitudes differ from the cold run's", i)
		}
	}
	if res.ColdSeconds > 0 && res.BatchSeconds > 0 {
		res.Speedup = res.ColdSeconds / res.BatchSeconds
	}
	eng := batchSrv.Engine()
	res.JobsStarted = eng.JobsStarted()
	res.PrefixHits = eng.PrefixHits()
	res.PrefixGatesSkipped = eng.PrefixGatesSkipped()
	res.CheckpointsStored = eng.CheckpointsStored()
	res.CheckpointBytes = eng.CheckpointBytesStored()
	if res.PrefixHits != uint64(len(w.Variants)) {
		return nil, fmt.Errorf("only %d of %d variants warm-started from the prefix checkpoint", res.PrefixHits, len(w.Variants))
	}
	return res, nil
}

// postJobAmplitudes submits one wait:true job and returns its compacted
// amplitudes JSON.
func postJobAmplitudes(ctx context.Context, client *http.Client, url string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
	}
	return amplitudesOf(raw)
}

// amplitudesOf extracts and compacts a finished job view's amplitude list —
// the only result field the differential check compares (timings legitimately
// differ between tiers).
func amplitudesOf(jobRaw json.RawMessage) ([]byte, error) {
	var v struct {
		Status string `json:"status"`
		Error  *struct {
			Message string `json:"message"`
		} `json:"error"`
		Result *struct {
			Amplitudes json.RawMessage `json:"amplitudes"`
		} `json:"result"`
	}
	if err := json.Unmarshal(jobRaw, &v); err != nil {
		return nil, err
	}
	if v.Status != "done" || v.Result == nil {
		msg := ""
		if v.Error != nil {
			msg = ": " + v.Error.Message
		}
		return nil, fmt.Errorf("job finished %q%s", v.Status, msg)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, v.Result.Amplitudes); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
