// Command qrouter is the stateless front tier of a qmddd cluster: it
// consistent-hashes each submitted circuit's canonical fingerprint onto a
// fixed worker membership, so repeats of a circuit always land on the worker
// whose result cache is already warm for it, reroutes around dead or
// draining workers in ring order, and sheds load early — per-tenant
// token-bucket admission control and queue-latency shedding both answer 429
// with a Retry-After the client can obey.
//
//	qrouter -addr :8090 -workers http://w1:8080,http://w2:8080 \
//	        -shed-latency 2s -tenant-rate 50 -tenant-burst 100
//
// Endpoints:
//
//	POST /v1/jobs             submit a circuit (routed to its ring owner)
//	GET  /v1/jobs/{id}        poll a job (scattered over the membership)
//	GET  /v1/jobs/{id}/result fetch a finished job's result (scattered)
//	GET  /v1/cluster          membership, ring shape, per-worker health
//	GET  /v1/version          build identity
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 while no worker is ready)
//	GET  /metrics             Prometheus text metrics (qrouter_* families)
//
// The router holds no job state: any number of qrouter processes can front
// the same -workers list and make identical routing decisions.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/router"
)

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		workers     = flag.String("workers", "", "comma-separated base URLs of the qmddd workers (required)")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per worker on the hash ring (0 = 128)")
		probeEvery  = flag.Duration("probe-interval", time.Second, "worker readiness poll period")
		probeTO     = flag.Duration("probe-timeout", 2*time.Second, "per-probe deadline")
		shedLatency = flag.Duration("shed-latency", 0, "refuse jobs with 429 when the target worker's estimated queue wait exceeds this (0 = off)")
		tenantRate  = flag.Float64("tenant-rate", 0, "sustained jobs/second allowed per tenant (X-Tenant header; 0 = no admission control)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant burst size (0 = ceil(tenant-rate))")
		maxBody     = flag.Int64("max-body", 1<<20, "request body cap in bytes")
		accessLog   = flag.Bool("access-log", false, "emit one structured access-log line per HTTP exchange to stderr")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("qrouter", buildinfo.Read())
		return
	}

	var logw io.Writer
	if *accessLog {
		logw = os.Stderr
	}
	rt, err := router.New(router.Config{
		Workers:       splitCSV(*workers),
		VNodes:        *vnodes,
		ProbeInterval: *probeEvery,
		ProbeTimeout:  *probeTO,
		ShedLatency:   *shedLatency,
		TenantRate:    *tenantRate,
		TenantBurst:   *tenantBurst,
		MaxBodyBytes:  *maxBody,
		AccessLog:     logw,
	})
	if err != nil {
		log.Fatalf("qrouter: %v", err)
	}
	defer rt.Close()

	log.SetPrefix("qrouter: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.Printf("listening on %s, %d workers (%s)", *addr, len(splitCSV(*workers)), buildinfo.Read())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
