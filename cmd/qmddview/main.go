// Command qmddview renders the QMDD of a state or circuit unitary as
// Graphviz DOT, for inspecting the diagrams the way the paper's Fig. 1 does.
//
// Usage examples:
//
//	qmddview -state -alg ghz -n 3                # GHZ state diagram
//	qmddview -file c.qasm -out circuit.dot       # circuit unitary
//	qmddview -state -alg grover -n 4 -repr num -eps 1e-10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/buildinfo"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ddio"
	"repro/internal/num"
	"repro/internal/qasm"
	"repro/internal/sim"
)

func main() {
	var (
		algName  = flag.String("alg", "ghz", "built-in workload: grover, bwt, ghz, bell")
		file     = flag.String("file", "", "OpenQASM 2.0 circuit file")
		repr     = flag.String("repr", "alg", "number representation: alg or num")
		eps      = flag.Float64("eps", 0, "tolerance for -repr num")
		normFlag = flag.String("norm", "left", "normalization scheme: left, max, gcd")
		n        = flag.Int("n", 3, "qubit count for built-ins")
		state    = flag.Bool("state", true, "render the final state (false: the circuit unitary)")
		out      = flag.String("out", "", "output file (default stdout)")
		save     = flag.String("save", "", "also serialize the diagram to this file (ddio format)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for building the diagram (0 = none)")
		maxNodes = flag.Int("max-nodes", 0, "budget: max live QMDD nodes (0 = unlimited)")
		maxMem   = flag.Int64("max-mem", 0, "budget: approximate max bytes of nodes+weights (0 = unlimited)")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("qmddview", buildinfo.Read())
		return
	}
	budget := core.Budget{MaxNodes: *maxNodes, MaxBytes: *maxMem}
	if *timeout > 0 {
		budget.Deadline = time.Now().Add(*timeout)
	}

	c, err := buildCircuit(*algName, *file, *n)
	if err != nil {
		fatal(err)
	}
	norm, err := core.ParseNormScheme(*normFlag)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *repr {
	case "alg":
		m := core.NewManager[alg.Q](alg.Ring{}, norm)
		m.SetBudget(budget)
		err = render(m, c, *state, w, *save, ddio.AlgCodec{})
	case "num":
		m := core.NewManager[complex128](num.NewRing(*eps), norm)
		m.SetBudget(budget)
		err = render(m, c, *state, w, *save, ddio.NumCodec{})
	default:
		err = fmt.Errorf("unknown representation %q", *repr)
	}
	if err != nil {
		fatal(err)
	}
}

func buildCircuit(algName, file string, n int) (*circuit.Circuit, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return qasm.Parse(string(src), file)
	}
	switch algName {
	case "grover":
		return algorithms.Grover(n, uint64(1)<<uint(n)-2, 0), nil
	case "bwt":
		return algorithms.BWT(n, 8), nil
	case "ghz":
		c := circuit.New("ghz", n)
		c.H(0)
		for q := 1; q < n; q++ {
			c.CX(q-1, q)
		}
		return c, nil
	case "bell":
		c := circuit.New("bell", 2)
		c.H(0).CX(0, 1)
		return c, nil
	}
	return nil, fmt.Errorf("unknown workload %q", algName)
}

func render[T any](m *core.Manager[T], c *circuit.Circuit, state bool, w *os.File, save string, codec ddio.Codec[T]) error {
	var e core.Edge[T]
	if state {
		s := sim.New(m, c.N)
		if err := s.Run(c, nil); err != nil {
			return err
		}
		e = s.State
	} else {
		u, err := sim.BuildUnitary(m, c)
		if err != nil {
			return err
		}
		e = u
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := ddio.Write(f, m, codec, e, c.N); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return m.DOT(w, e, c.Name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qmddview:", err)
	os.Exit(1)
}
