// Command qload is the open-loop SLO harness for a qmddd tier: it replays a
// mixed Grover/BWT/GSE × representation × ε workload catalog against a
// router or worker at a fixed arrival rate with zipf repeat structure,
// measures serving latency percentiles against a declared p99 objective,
// and writes a BENCH_serve.json report.
//
//	qload -target http://localhost:8090 -rate 20 -duration 30s \
//	      -slo-p99 2s -seed 7 -out BENCH_serve.json
//
// qload is open-loop: arrivals fire on schedule whether or not earlier jobs
// finished, so saturation shows up as latency (and shed 429s), never as a
// politely reduced offered rate. Every job is seed-pinned, so the report's
// results_digest is byte-identical across replays with the same -seed —
// a cross-run and cross-worker determinism check, not just a benchmark.
//
// The exit status encodes the verdict: 0 when the SLO passed (or none was
// declared), 1 on harness errors, 2 when the SLO failed, 3 when any
// workload returned inconsistent results across repeats.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/load"
)

func main() {
	var (
		target   = flag.String("target", "http://localhost:8090", "base URL of the qrouter (or a single qmddd worker)")
		rate     = flag.Float64("rate", 10, "offered arrival rate, jobs/second")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate arrivals")
		sloP99   = flag.Duration("slo-p99", 0, "p99 latency objective the run is judged against (0 = no verdict)")
		seed     = flag.Int64("seed", 1, "workload pick sequence seed (same seed = same sequence = same results digest)")
		zipfS    = flag.Float64("zipf-s", 1.3, "zipf skew of workload repeats (>1; higher = more repeats)")
		topk     = flag.Int("topk", 16, "amplitudes requested per job")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		tenant   = flag.String("tenant", "", "X-Tenant header value (router admission control)")
		out      = flag.String("out", "BENCH_serve.json", "report path (\"-\" = stdout)")
		scale    = flag.String("scale", "ci", "workload circuit scale: ci (seconds) or paper (hours)")
		grover   = flag.Int("grover-qubits", 0, "override the Grover workload width (0 = scale default)")
		batch    = flag.Int("batch", 0, "one-shot batch mode instead of the open-loop run: submit this many Grover variants as one POST /v1/batches, poll GET /v1/batches/{id} until done, and report")
		repr     = flag.String("repr", "alg", "batch mode: representation to request (alg or float)")
	)
	flag.Parse()
	log.SetPrefix("qload: ")
	log.SetFlags(0)

	p := bench.DefaultParams()
	switch *scale {
	case "ci":
	case "paper":
		p.GroverQubits = 15
	default:
		log.Fatalf("unknown -scale %q (want ci or paper)", *scale)
	}
	if *grover > 0 {
		p.GroverQubits = *grover
	}

	if *batch > 0 {
		runBatch(p, *batch, *target, *repr, *topk, *timeout, *tenant, *out)
		return
	}

	log.Printf("building workload catalog (%s scale)…", *scale)
	wls, err := load.Catalog(p)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d workloads; offering %.3g jobs/s to %s for %v", len(wls), *rate, *target, *duration)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	rep, err := load.Run(ctx, load.Options{
		Target:   *target,
		Rate:     *rate,
		Duration: *duration,
		SLOP99:   *sloP99,
		Seed:     *seed,
		ZipfS:    *zipfS,
		TopK:     *topk,
		Timeout:  *timeout,
		Tenant:   *tenant,
	}, wls)
	if err != nil {
		log.Fatal(err)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *out)
	}

	log.Printf("requests=%d ok=%d shed=%d errors=%d cache_hit_rate=%.2f p50=%.1fms p99=%.1fms p999=%.1fms verdict=%s",
		rep.Requests, rep.OK, rep.Shed, rep.Errors, rep.CacheHitRate,
		rep.LatencyMS.P50, rep.LatencyMS.P99, rep.LatencyMS.P999, rep.SLO.Verdict)

	for _, wl := range rep.Workloads {
		if !wl.Consistent {
			fmt.Fprintf(os.Stderr, "qload: workload %s returned INCONSISTENT results across repeats\n", wl.Name)
			os.Exit(3)
		}
	}
	if rep.SLO.Verdict == "fail" {
		os.Exit(2)
	}
}

// runBatch is the -batch mode: one shared-prefix variant sweep submitted as
// a batch, polled to completion, and reported. Exit 1 on harness errors,
// 3 when any variant failed.
func runBatch(p bench.FigureParams, variants int, target, repr string, topk int, timeout time.Duration, tenant, out string) {
	log.Printf("batch mode: %d Grover variants to %s (%s)", variants, target, repr)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	rep, err := load.RunBatch(ctx, load.BatchOptions{
		Target:   target,
		Variants: variants,
		Repr:     repr,
		TopK:     topk,
		Timeout:  timeout,
		Tenant:   tenant,
		Params:   p,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", out)
	}
	log.Printf("batch=%s status=%s prefix_gates=%d ok=%d failed=%d cached=%d elapsed=%.2fs polls=%d",
		rep.BatchID, rep.Status, rep.PrefixGates, rep.OK, rep.Failed, rep.Cached, rep.ElapsedSec, rep.Polls)
	if rep.Failed > 0 {
		os.Exit(3)
	}
}
