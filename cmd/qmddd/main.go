// Command qmddd is the networked QMDD simulation daemon: it accepts
// OpenQASM circuits over HTTP/JSON, runs them on a fixed-size worker pool
// with per-request resource governors, and serves observability endpoints.
//
//	qmddd -addr :8080 -workers 4 -queue 128 -timeout-cap 30s
//
// Endpoints:
//
//	POST /v1/jobs             submit a circuit ({"qasm": …, "wait": true})
//	POST /v1/batches          submit N variants sharing one simulated-once prefix
//	GET  /v1/batches/{id}     poll a batch's aggregate per-variant view
//	GET  /v1/jobs/{id}        poll job status
//	GET  /v1/jobs/{id}/result fetch the finished job's result
//	GET  /v1/cache/{key}      cache peering: the stamped envelope for a key
//	GET  /v1/version          build identity
//	GET  /healthz             liveness (200 while the process serves at all)
//	GET  /readyz              readiness (503 while draining or warming)
//	GET  /metrics             Prometheus text metrics
//
// In a cluster, give every worker -self (its advertised URL) and -peers (the
// full membership): on a local cache miss the worker first asks the ring
// owners of the key for their stored result envelope — validated by checksum
// and provenance stamp — so a topology change migrates warm results instead
// of recomputing them. Put cmd/qrouter in front to shard jobs onto the same
// membership.
//
// On SIGTERM/SIGINT the daemon stops intake (readyz flips unready; healthz
// stays live), drains in-flight jobs through the run governor until -drain
// expires (then cancels them cooperatively), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/server"
)

// splitCSV parses a comma-separated flag value, dropping empty elements.
func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueSize   = flag.Int("queue", 64, "bounded job queue capacity (full queue answers 429)")
		maxBody     = flag.Int64("max-body", 1<<20, "request body cap in bytes (larger answers 413)")
		maxJobs     = flag.Int("max-jobs", 1024, "retained job records")
		maxQubits   = flag.Int("max-qubits", 64, "circuit width cap")
		maxShots    = flag.Int("max-shots", 0, "per-job shot-count cap for histogram jobs (0 = default 1048576); larger requests are rejected")
		ctSize      = flag.Int("ctsize", core.DefaultCTSize, "per-manager compute-table slots")
		intraW      = flag.Int("intra-workers", 1, "intra-operation worker goroutines per job (1 = sequential; results identical at any setting; ε>0 float jobs stay sequential)")
		nodeCap     = flag.Int("node-cap", 0, "server-side cap on per-job MaxNodes budget (0 = none)")
		weightCap   = flag.Int("weight-cap", 0, "server-side cap on per-job MaxWeights budget (0 = none)")
		byteCap     = flag.Int64("byte-cap", 0, "server-side cap on per-job MaxBytes budget (0 = none)")
		timeoutCap  = flag.Duration("timeout-cap", 0, "server-side cap on per-job wall clock; also the default when a job asks for none (0 = none)")
		minFidFloor = flag.Float64("min-fidelity-floor", 0, "server-side floor for fidelity-bounded approximation: min_fidelity requests below it are raised to it (0 = no floor)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "in-memory result-cache byte cap (0 = cache off)")
		cacheDir    = flag.String("cache-dir", "", "result-cache disk tier; persists across restarts (empty = no disk tier)")
		cacheMax    = flag.Int64("cache-max-bytes", 0, "disk-tier byte cap with LRU-by-access-time eviction (0 = unbounded)")
		ckptEvery   = flag.Int("checkpoint-every", 64, "prefix-checkpoint cadence in gates; warm-starts later runs sharing a prefix (negative = off; needs a cache)")
		ckptBytes   = flag.Int64("checkpoint-bytes", 4<<20, "per-checkpoint serialized size cap; oversized snapshots are skipped (negative = unlimited)")
		maxVariants = flag.Int("max-batch-variants", 128, "variant-count cap for one POST /v1/batches submission")
		self        = flag.String("self", "", "this node's advertised base URL for cache peering (e.g. http://10.0.0.3:8080)")
		peers       = flag.String("peers", "", "comma-separated base URLs of the cluster membership (cache peering off when empty)")
		peerTimeout = flag.Duration("peer-timeout", 2*time.Second, "per-fetch deadline for peer cache lookups")
		accessLog   = flag.Bool("access-log", false, "emit one structured access-log line per HTTP exchange to stderr")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline for in-flight jobs")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("qmddd", buildinfo.Read())
		return
	}
	if *minFidFloor < 0 || *minFidFloor >= 1 {
		log.Fatalf("qmddd: -min-fidelity-floor must be in [0, 1), got %v", *minFidFloor)
	}

	var logw io.Writer
	if *accessLog {
		logw = os.Stderr
	}
	srv, err := server.New(server.Config{
		Workers:          *workers,
		QueueSize:        *queueSize,
		MaxBodyBytes:     *maxBody,
		MaxJobs:          *maxJobs,
		MaxQubits:        *maxQubits,
		MaxShots:         *maxShots,
		CTSize:           *ctSize,
		IntraWorkers:     *intraW,
		NodeCap:          *nodeCap,
		WeightCap:        *weightCap,
		ByteCap:          *byteCap,
		TimeoutCap:       *timeoutCap,
		MinFidelityFloor: *minFidFloor,
		CacheBytes:       *cacheBytes,
		CacheDir:         *cacheDir,
		CacheMaxBytes:    *cacheMax,
		CheckpointEvery:  *ckptEvery,
		CheckpointBytes:  *ckptBytes,
		MaxBatchVariants: *maxVariants,
		Self:             *self,
		Peers:            splitCSV(*peers),
		PeerTimeout:      *peerTimeout,
		AccessLog:        logw,
	})
	if err != nil {
		log.Fatalf("qmddd: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	log.SetPrefix("qmddd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%s)", *addr, buildinfo.Read())
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("listener failed: %v", err)
	case <-sigCtx.Done():
	}

	// Drain order matters: finish the accepted jobs first so handlers blocked
	// on "wait": true jobs can flush their responses, then shut the listener
	// down gracefully.
	log.Printf("signal received; draining (deadline %v)", *drain)
	start := time.Now()
	srv.Shutdown(*drain)
	httpCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("drained in %v; exiting", time.Since(start).Round(time.Millisecond))
}
