// Command qverify checks two quantum circuits for functional equivalence
// via canonical QMDDs — the design task the paper names as a direct
// beneficiary of exact diagrams: "checking equivalence of two matrices or
// vectors then boils down to comparing the root nodes of the corresponding
// QMDDs (which can be done in O(1))".
//
// Usage:
//
//	qverify a.qasm b.qasm                  # exact algebraic comparison
//	qverify -phase a.qasm b.qasm           # up to a global phase
//	qverify -repr num -eps 1e-10 a.qasm b.qasm
//
// Exit status: 0 when equivalent, 1 when not, 2 on errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/qasm"
	"repro/internal/sim"
)

func main() {
	var (
		repr     = flag.String("repr", "alg", "number representation: alg (exact) or num")
		eps      = flag.Float64("eps", 0, "tolerance for -repr num")
		normFlag = flag.String("norm", "left", "normalization scheme: left, max, gcd")
		phase    = flag.Bool("phase", false, "compare up to a global phase")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		maxNodes = flag.Int("max-nodes", 0, "budget: max live QMDD nodes (0 = unlimited)")
		maxMem   = flag.Int64("max-mem", 0, "budget: approximate max bytes of nodes+weights (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "qverify: need exactly two OpenQASM files")
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if a.N != b.N {
		fmt.Printf("NOT EQUIVALENT: different qubit counts (%d vs %d)\n", a.N, b.N)
		os.Exit(1)
	}
	norm, err := core.ParseNormScheme(*normFlag)
	if err != nil {
		fatal(err)
	}
	budget := core.Budget{MaxNodes: *maxNodes, MaxBytes: *maxMem}
	if *timeout > 0 {
		budget.Deadline = time.Now().Add(*timeout)
	}
	var eq bool
	start := time.Now()
	switch *repr {
	case "alg":
		m := core.NewManager[alg.Q](alg.Ring{}, norm)
		m.SetBudget(budget)
		eq, err = check(m, a, b, *phase)
	case "num":
		m := core.NewManager[complex128](num.NewRing(*eps), norm)
		m.SetBudget(budget)
		eq, err = check(m, a, b, *phase)
	default:
		err = fmt.Errorf("unknown representation %q", *repr)
	}
	if errors.Is(err, core.ErrBudgetExceeded) {
		// Governed outcome: the diagrams outgrew the declared budget before
		// the comparison finished. Report it as "undecided", not a crash.
		fmt.Printf("UNDECIDED: %v\n", err)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	rel := "exactly"
	if *phase {
		rel = "up to global phase"
	}
	if eq {
		fmt.Printf("EQUIVALENT (%s, %s representation, %v)\n", rel, *repr, time.Since(start).Round(time.Millisecond))
		return
	}
	fmt.Printf("NOT EQUIVALENT (%s, %s representation, %v)\n", rel, *repr, time.Since(start).Round(time.Millisecond))
	os.Exit(1)
}

func load(path string) (*circuit.Circuit, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return qasm.Parse(string(src), path)
}

func check[T any](m *core.Manager[T], a, b *circuit.Circuit, phase bool) (bool, error) {
	if phase {
		return sim.EquivalentUpToPhase(m, a, b)
	}
	return sim.Equivalent(m, a, b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qverify:", err)
	os.Exit(2)
}
