// Command qverify checks two quantum circuits for functional equivalence
// via canonical QMDDs — the design task the paper names as a direct
// beneficiary of exact diagrams: "checking equivalence of two matrices or
// vectors then boils down to comparing the root nodes of the corresponding
// QMDDs (which can be done in O(1))".
//
// Usage:
//
//	qverify a.qasm b.qasm                  # exact algebraic comparison
//	qverify -phase a.qasm b.qasm           # up to a global phase
//	qverify -repr num -eps 1e-10 a.qasm b.qasm
//
// Exit status: 0 when equivalent, 1 when not, 2 on errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/alg"
	"repro/internal/buildinfo"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/qasm"
	"repro/internal/sim"
)

func main() {
	var (
		repr     = flag.String("repr", "alg", "number representation: alg (exact) or num")
		eps      = flag.Float64("eps", 0, "tolerance for -repr num")
		normFlag = flag.String("norm", "left", "normalization scheme: left, max, gcd")
		phase    = flag.Bool("phase", false, "compare up to a global phase")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		maxNodes = flag.Int("max-nodes", 0, "budget: max live QMDD nodes (0 = unlimited)")
		maxMem   = flag.Int64("max-mem", 0, "budget: approximate max bytes of nodes+weights (0 = unlimited)")
		parallel = flag.Int("parallel", 1, "build the two unitaries concurrently on private share-nothing managers (2 or 0 = auto; 1 = one shared manager). With -repr num and ε > 0 the shared- and split-table interning can legitimately differ within the tolerance")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("qverify", buildinfo.Read())
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "qverify: need exactly two OpenQASM files")
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if a.N != b.N {
		fmt.Printf("NOT EQUIVALENT: different qubit counts (%d vs %d)\n", a.N, b.N)
		os.Exit(1)
	}
	norm, err := core.ParseNormScheme(*normFlag)
	if err != nil {
		fatal(err)
	}
	budget := core.Budget{MaxNodes: *maxNodes, MaxBytes: *maxMem}
	if *timeout > 0 {
		budget.Deadline = time.Now().Add(*timeout)
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var eq bool
	start := time.Now()
	switch *repr {
	case "alg":
		mk := func() *core.Manager[alg.Q] {
			m := core.NewManager[alg.Q](alg.Ring{}, norm)
			m.SetBudget(budget)
			return m
		}
		if workers >= 2 {
			eq, err = checkParallel(mk, a, b, *phase)
		} else {
			eq, err = check(mk(), a, b, *phase)
		}
	case "num":
		mk := func() *core.Manager[complex128] {
			m := core.NewManager[complex128](num.NewRing(*eps), norm)
			m.SetBudget(budget)
			return m
		}
		if workers >= 2 {
			eq, err = checkParallel(mk, a, b, *phase)
		} else {
			eq, err = check(mk(), a, b, *phase)
		}
	default:
		err = fmt.Errorf("unknown representation %q", *repr)
	}
	if errors.Is(err, core.ErrBudgetExceeded) {
		// Governed outcome: the diagrams outgrew the declared budget before
		// the comparison finished. Report it as "undecided", not a crash.
		fmt.Printf("UNDECIDED: %v\n", err)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	rel := "exactly"
	if *phase {
		rel = "up to global phase"
	}
	if eq {
		fmt.Printf("EQUIVALENT (%s, %s representation, %v)\n", rel, *repr, time.Since(start).Round(time.Millisecond))
		return
	}
	fmt.Printf("NOT EQUIVALENT (%s, %s representation, %v)\n", rel, *repr, time.Since(start).Round(time.Millisecond))
	os.Exit(1)
}

func load(path string) (*circuit.Circuit, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return qasm.Parse(string(src), path)
}

func check[T any](m *core.Manager[T], a, b *circuit.Circuit, phase bool) (bool, error) {
	if phase {
		return sim.EquivalentUpToPhase(m, a, b)
	}
	return sim.Equivalent(m, a, b)
}

// checkParallel builds the two circuit unitaries concurrently, each in a
// private share-nothing manager, and compares them structurally across the
// managers (core.CrossEqual) — the two-worker special case of the bench
// pool layout. Per-side wall time and peak nodes go to stderr so stdout
// stays identical to the sequential path.
func checkParallel[T any](newM func() *core.Manager[T], a, b *circuit.Circuit, phase bool) (bool, error) {
	type side struct {
		m    *core.Manager[T]
		u    core.Edge[T]
		err  error
		took time.Duration
		peak int
	}
	circs := [2]*circuit.Circuit{a, b}
	var sides [2]side
	var wg sync.WaitGroup
	for i := range circs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			m := newM() // constructed in-worker: nothing shared, not even creation order
			u, err := sim.BuildUnitary(m, circs[i])
			sides[i] = side{m: m, u: u, err: err, took: time.Since(start), peak: m.Peak().Nodes}
		}(i)
	}
	wg.Wait()
	for i := range sides {
		if sides[i].err != nil {
			return false, sides[i].err
		}
	}
	fmt.Fprintf(os.Stderr, "pool: 2 workers; side A %v (peak %d nodes), side B %v (peak %d nodes)\n",
		sides[0].took.Round(time.Millisecond), sides[0].peak,
		sides[1].took.Round(time.Millisecond), sides[1].peak)
	if phase {
		return core.CrossEqualUpToPhase(sides[0].m, sides[0].u, sides[1].m, sides[1].u), nil
	}
	return core.CrossEqual(sides[0].m, sides[0].u, sides[1].m, sides[1].u), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qverify:", err)
	os.Exit(2)
}
