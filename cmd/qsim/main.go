// Command qsim simulates a quantum circuit on a QMDD using either the
// state-of-the-art numerical representation (complex128 with tolerance ε) or
// the paper's exact algebraic representation over Q[ω].
//
// Usage examples:
//
//	qsim -alg grover -n 10                         # exact algebraic run
//	qsim -alg grover -n 10 -repr num -eps 1e-10    # numerical run
//	qsim -alg gse -phasebits 4 -skdepth 1          # Clifford+T-compiled GSE
//	qsim -file circuit.qasm -repr num -eps 0       # OpenQASM input
//	qsim -alg bwt -depth 8 -steps 100 -norm gcd    # GCD normalization
package main

import (
	"context"
	"flag"
	"fmt"
	"math/cmplx"
	"os"
	"os/signal"
	"sort"
	"time"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/buildinfo"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ddio"
	"repro/internal/dense"
	"repro/internal/num"
	"repro/internal/prefix"
	"repro/internal/qasm"
	"repro/internal/qcache"
	"repro/internal/sim"
	"repro/internal/synth"
)

func main() {
	var (
		algName   = flag.String("alg", "", "built-in workload: grover, bwt, gse, ghz")
		file      = flag.String("file", "", "OpenQASM 2.0 circuit file (alternative to -alg)")
		repr      = flag.String("repr", "alg", "number representation: alg (exact) or num (float64)")
		eps       = flag.Float64("eps", 0, "comparison tolerance ε for -repr num")
		normFlag  = flag.String("norm", "left", "normalization scheme: left, max, gcd")
		n         = flag.Int("n", 8, "grover: data qubits")
		marked    = flag.Uint64("marked", 0, "grover: marked element (default 2^n−2)")
		depth     = flag.Int("depth", 6, "bwt: welded tree depth")
		steps     = flag.Int("steps", 50, "bwt: walk steps")
		phaseBits = flag.Int("phasebits", 3, "gse: phase register size")
		trotter   = flag.Int("trotter", 2, "gse: Trotter steps")
		skDepth   = flag.Int("skdepth", 1, "gse: Solovay–Kitaev recursion depth")
		netLen    = flag.Int("netlen", 10, "gse: synthesizer base-net word length")
		shots     = flag.Int("shots", 0, "measure the circuit this many times and print the histogram (required for dynamic circuits)")
		samples   = flag.Int("samples", 0, "deprecated alias for -shots")
		seed      = flag.Int64("seed", 1, "deterministic RNG seed for -shots (same seed, same histogram)")
		strategy  = flag.String("strategy", "auto", "shots strategy: auto, sample (one simulation, N draws), resimulate (per-shot replay with collapse)")
		topK      = flag.Int("top", 8, "print the K most probable outcomes")
		stats     = flag.Bool("stats", false, "print manager statistics")
		ctSize    = flag.Int("ctsize", core.DefaultCTSize, "compute-table slots (rounded up to a power of two)")
		intraW    = flag.Int("intra-workers", 1, "intra-operation worker goroutines (1 = sequential; output is identical for every setting; -repr num with -eps > 0 stays sequential)")
		prune     = flag.Int("prune", 0, "garbage-collect when the unique table exceeds this many nodes (0 = never)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget (0 = none); on expiry partial stats are printed, not a crash")
		maxNodes  = flag.Int("max-nodes", 0, "budget: max live QMDD nodes (0 = unlimited)")
		maxMem    = flag.Int64("max-mem", 0, "budget: approximate max bytes of nodes+weights (0 = unlimited)")
		minFid    = flag.Float64("min-fidelity", 0, "degrade gracefully under budget pressure: approximate the state (shedding lowest-contribution amplitudes) as long as retained fidelity stays above this floor (0 = fail fast, exact only)")
		verify    = flag.Bool("verify", false, "cross-check against the dense array simulator (n ≤ 16)")
		expand    = flag.Bool("expand", false, "expand multi-controlled gates over ancillas before simulating")
		writeQASM = flag.String("writeqasm", "", "write the (possibly expanded) circuit to this OpenQASM file")
		cacheDir  = flag.String("cache-dir", "", "warm-start directory: prefix checkpoints and the final state are cached here, keyed by the circuit's prefix-hash chain and representation, so a repeat — or extended — invocation resumes from the longest cached prefix")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "evict least-recently-used -cache-dir entries when the tier exceeds this many bytes (0 = unbounded)")
		ckptEvery = flag.Int("checkpoint-every", 64, "with -cache-dir: checkpoint the state every K gates and at node-count doublings (<= 0 disables checkpointing and warm start)")
		ckptBytes = flag.Int64("checkpoint-bytes", 4<<20, "with -cache-dir: skip any checkpoint whose serialized size exceeds this many bytes (0 = unlimited)")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("qsim", buildinfo.Read())
		return
	}

	c, err := buildCircuit(*algName, *file, buildOpts{
		n: *n, marked: *marked, depth: *depth, steps: *steps,
		phaseBits: *phaseBits, trotter: *trotter, skDepth: *skDepth, netLen: *netLen,
	})
	if err != nil {
		fatal(err)
	}
	if *expand {
		c, err = circuit.ExpandMultiControls(c)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("circuit %s: %d qubits, %d gates %v\n", c.Name, c.N, c.Len(), c.CountByName())
	if *writeQASM != "" {
		f, err := os.Create(*writeQASM)
		if err != nil {
			fatal(err)
		}
		if err := qasm.Write(f, c); err != nil {
			f.Close()
			fatal(fmt.Errorf("%w (hint: -expand rewrites multi-controlled gates into QASM-expressible form)", err))
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *writeQASM)
	}

	nshots := *shots
	if nshots == 0 && *samples > 0 {
		fmt.Fprintln(os.Stderr, "qsim: -samples is deprecated; use -shots")
		nshots = *samples
	}
	if *minFid < 0 || *minFid > 1 {
		fatal(fmt.Errorf("-min-fidelity must be in [0, 1], got %v", *minFid))
	}
	if *minFid > 0 && nshots > 0 {
		fatal(fmt.Errorf("-min-fidelity is incompatible with -shots: a histogram drawn from an approximated state would be silently biased"))
	}
	if c.Dynamic() && nshots == 0 {
		fatal(fmt.Errorf("circuit %q contains mid-circuit measurement, reset or classical control; run it with -shots N", c.Name))
	}
	// Amplitude mode describes the pre-measurement state: strip any trailing
	// read-out block (and the classical register) so the run — and its
	// warm-start cache identity — matches the measure-free twin.
	ampCirc := c
	if nshots == 0 {
		ampCirc = c.StripReadout()
	}

	norm, err := core.ParseNormScheme(*normFlag)
	if err != nil {
		fatal(err)
	}
	if *ctSize < 1 {
		fatal(fmt.Errorf("-ctsize must be positive, got %d", *ctSize))
	}

	// The run governor: a resource budget installed into the manager plus a
	// context cancelled by SIGINT or -timeout. Either way the run ends with
	// the statistics collected so far instead of an OOM, a hang or a panic.
	budget := core.Budget{MaxNodes: *maxNodes, MaxBytes: *maxMem}
	if *timeout > 0 {
		budget.Deadline = time.Now().Add(*timeout)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var cache *qcache.Cache
	if *cacheDir != "" {
		if cache, err = qcache.NewBounded(0, *cacheDir, *cacheMax); err != nil {
			fatal(err)
		}
	}
	ckpt := checkpointConfig{every: *ckptEvery, maxBytes: *ckptBytes}

	switch *repr {
	case "alg":
		m := core.NewManager[alg.Q](alg.Ring{}, norm, core.WithComputeTableSize(*ctSize))
		m.SetIntraWorkers(*intraW)
		m.SetBudget(budget)
		if nshots > 0 {
			runShots(ctx, m, c, sim.ShotOptions{Shots: nshots, Seed: *seed, Strategy: *strategy, AutoPrune: *prune}, *stats)
			return
		}
		var ps *prefix.Store[alg.Q]
		if ckpt.every > 0 {
			ps = prefix.NewStore(cache, "alg", 0, norm, ddio.Codec[alg.Q](ddio.AlgCodec{}))
		}
		runAndReport(ctx, m, ampCirc, *topK, *stats, true, *verify, *prune, *minFid, ps, ckpt)
	case "num":
		m := core.NewManager[complex128](num.NewRing(*eps), norm, core.WithComputeTableSize(*ctSize))
		m.SetIntraWorkers(*intraW)
		m.SetBudget(budget)
		if nshots > 0 {
			runShots(ctx, m, c, sim.ShotOptions{Shots: nshots, Seed: *seed, Strategy: *strategy, AutoPrune: *prune}, *stats)
			return
		}
		var ps *prefix.Store[complex128]
		if ckpt.every > 0 {
			ps = prefix.NewStore(cache, "float", *eps, norm, ddio.Codec[complex128](ddio.NumCodec{}))
		}
		runAndReport(ctx, m, ampCirc, *topK, *stats, false, *verify, *prune, *minFid, ps, ckpt)
	default:
		fatal(fmt.Errorf("unknown representation %q (want alg or num)", *repr))
	}
}

// checkpointConfig carries the -checkpoint-every/-checkpoint-bytes pair into
// the run loop.
type checkpointConfig struct {
	every    int
	maxBytes int64
}

// runShots measures the circuit through the sim shots engine and prints
// the histogram. The strategy line reports what actually ran, so "auto"
// invocations show whether the circuit sampled one final state or
// re-simulated per shot.
func runShots[T any](ctx context.Context, m *core.Manager[T], c *circuit.Circuit, opt sim.ShotOptions, stats bool) {
	start := time.Now()
	res, err := sim.SampleShotsCtx(ctx, m, c, opt)
	if err != nil {
		if governed(err) {
			fmt.Printf("shots run stopped early: %v\n", err)
			printStats(m)
			return
		}
		fatal(err)
	}
	fmt.Printf("histogram (%d shots, seed %d, strategy %s) in %v:\n",
		res.Shots, opt.Seed, res.Strategy, time.Since(start).Round(time.Millisecond))
	printHistogram(res.Counts)
	if stats {
		printStats(m)
	}
}

// verifyDense cross-checks all QMDD amplitudes against the flat-array
// simulator and prints the maximum deviation.
func verifyDense[T any](m *core.Manager[T], s *sim.Simulator[T], c *circuit.Circuit) {
	if c.N > 16 {
		fmt.Println("verify: skipped (more than 16 qubits)")
		return
	}
	ref := dense.New(c.N)
	if err := ref.Run(c); err != nil {
		fmt.Println("verify: dense simulator cannot run this circuit:", err)
		return
	}
	maxDev := 0.0
	for i := range ref.Amp {
		got := m.R.Complex128(m.Amplitude(s.State, c.N, uint64(i)))
		d := cmplx.Abs(got - ref.Amp[i])
		if d > maxDev {
			maxDev = d
		}
	}
	fmt.Printf("verify: max amplitude deviation from dense simulation: %.3e\n", maxDev)
}

type buildOpts struct {
	n         int
	marked    uint64
	depth     int
	steps     int
	phaseBits int
	trotter   int
	skDepth   int
	netLen    int
}

func buildCircuit(algName, file string, o buildOpts) (*circuit.Circuit, error) {
	switch {
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return qasm.Parse(string(src), file)
	case algName == "grover":
		marked := o.marked
		if marked == 0 {
			marked = uint64(1)<<uint(o.n) - 2
		}
		return algorithms.Grover(o.n, marked, 0), nil
	case algName == "bwt":
		return algorithms.BWT(o.depth, o.steps), nil
	case algName == "gse":
		raw := algorithms.GSE(algorithms.GSEConfig{
			Hamiltonian: algorithms.H2Hamiltonian(),
			PhaseBits:   o.phaseBits,
			Time:        0.75,
			Trotter:     o.trotter,
			PrepareX:    []int{0},
		})
		s := synth.New(o.netLen)
		ct, synthErr, err := algorithms.CompileCliffordT(raw, s, o.skDepth)
		if err != nil {
			return nil, err
		}
		fmt.Printf("gse: compiled to Clifford+T, accumulated synthesis error bound %.3g\n", synthErr)
		return ct, nil
	case algName == "ghz":
		c := circuit.New("ghz", o.n)
		c.H(0)
		for q := 1; q < o.n; q++ {
			c.CX(q-1, q)
		}
		return c, nil
	}
	return nil, fmt.Errorf("choose a workload with -alg {grover,bwt,gse,ghz} or -file <qasm>")
}

func runAndReport[T any](ctx context.Context, m *core.Manager[T], c *circuit.Circuit, topK int, stats, exact, verify bool, prune int, minFid float64, ps *prefix.Store[T], ckpt checkpointConfig) {
	s := sim.New(m, c.N)
	if prune > 0 {
		s.EnableAutoPrune(prune)
	}
	if minFid > 0 && minFid < 1 {
		s.EnableApproximation(sim.ApproxPolicy{MinFidelity: minFid})
	}
	start := time.Now()
	from := 0
	var hook func(i int, g circuit.Gate) bool
	var stored, storedBytes int64
	if ps != nil {
		plan := prefix.PlanOf(c)
		if k, e, ok := ps.Probe(m, plan, c.N); ok {
			s.State = e
			from = k
			fmt.Printf("warm start: checkpoint after gate %d/%d restored in %v; %d nodes\n",
				k, c.Len(), time.Since(start).Round(time.Millisecond), s.State.NodeCount())
		}
		tracker := prefix.Policy{EveryK: ckpt.every, MaxBytes: ckpt.maxBytes}.NewTracker(m.Stats().UniqueNodes)
		hook = func(i int, _ circuit.Gate) bool {
			k := i + 1 // the hook fires after gate i: the state is H_{i+1}'s
			nodes := m.Stats().UniqueNodes
			if !tracker.Should(k, plan.Boundary, nodes) {
				return true
			}
			if s.Approximation().Events > 0 {
				// An approximate state is not the prefix's exact result: it
				// must never warm-start a future exact run.
				return true
			}
			if n, err := ps.Store(m, s.State, plan.Links[k], c.N, ckpt.maxBytes); err == nil && n > 0 {
				tracker.Stored(nodes)
				stored++
				storedBytes += int64(n)
			}
			return true
		}
	}
	if from == c.Len() {
		fmt.Printf("warm start is the full circuit: simulation skipped; ‖ψ‖ = %.12f\n", m.Norm2(s.State))
	} else {
		if err := s.RunFromCtx(ctx, c, from, hook); err != nil {
			if governed(err) {
				// A refused/interrupted run is a graceful outcome: report the
				// partial statistics and exit cleanly.
				fmt.Printf("run stopped early: %v\n", err)
				fmt.Printf("partial state after %v: %d nodes; %s\n",
					time.Since(start).Round(time.Millisecond), s.State.NodeCount(), m.Peak())
				printStats(m)
				return
			}
			fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("simulated in %v; state QMDD has %d nodes; ‖ψ‖ = %.12f\n",
			elapsed, s.State.NodeCount(), m.Norm2(s.State))
		if ap := s.Approximation(); ap.Events > 0 {
			kind := "float estimate"
			if ap.Exact {
				kind = "exact"
			}
			fmt.Printf("approximated under budget pressure: %d events, retained fidelity %.6f (%s)\n",
				ap.Events, ap.Fidelity, kind)
		}
		if stored > 0 {
			fmt.Printf("checkpointed %d prefix states (%d bytes)\n", stored, storedBytes)
		}
	}
	if exact {
		fmt.Printf("max coefficient bit width: %d; trivial-weight fraction: %.2f\n",
			m.MaxWeightBitLen(s.State), m.TrivialWeightFraction(s.State))
	}
	if verify {
		verifyDense(m, s, c)
	}

	if topK > 0 {
		printTop(m, s, c.N, topK)
	}
	if stats {
		printStats(m)
	}
}

// governed reports whether err is a run-governor outcome — budget exceeded,
// deadline, SIGINT — rather than a genuine failure.
func governed(err error) bool { return sim.Governed(err) }

func printStats[T any](m *core.Manager[T]) {
	st := m.Stats()
	fmt.Printf("manager: %d unique nodes, %d/%d unique hits, %d/%d CT hits\n",
		st.UniqueNodes, st.UniqueHits, st.UniqueLookups, st.CTHits, st.CTLookups)
	fmt.Printf("         %d interned weights, CT load %.1f%% (%d/%d), %d prunes (%d nodes)\n",
		st.InternedWeights, 100*st.CTLoadFactor(), st.CTEntries, st.CTCapacity,
		st.Prunes, st.PrunedNodes)
}

func printTop[T any](m *core.Manager[T], s *sim.Simulator[T], n, k int) {
	// Sparse traversal: touches only the state's support, so this works for
	// any qubit count as long as the diagram is compact.
	idxs, probs := m.TopOutcomes(s.State, n, k)
	fmt.Printf("most probable outcomes (support %d):\n", m.SupportSize(s.State, n))
	for i, idx := range idxs {
		if probs[i] < 1e-12 {
			break
		}
		fmt.Printf("  |%0*b⟩  %.6f\n", n, idx, probs[i])
	}
}

func printHistogram(counts map[string]int) {
	type kv struct {
		key string
		c   int
	}
	var all []kv
	for k, c := range counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].key < all[j].key
	})
	for i, o := range all {
		if i >= 10 {
			fmt.Printf("  … and %d more outcomes\n", len(all)-10)
			break
		}
		fmt.Printf("  |%s⟩  %d\n", o.key, o.c)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qsim:", err)
	os.Exit(1)
}
