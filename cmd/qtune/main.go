// Command qtune performs the per-application ε fine-tuning that the paper
// identifies as the hidden cost of numerical QMDDs: it sweeps candidate
// tolerances over a workload, accepts the largest ε meeting the size and
// accuracy budgets, and reports the total tuning time next to the
// tuning-free exact algebraic run.
//
// Usage examples:
//
//	qtune -alg grover -n 8
//	qtune -alg bwt -depth 5 -steps 24 -maxnodes 500 -maxerror 1e-10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/algorithms"
	"repro/internal/bench"
	"repro/internal/buildinfo"
	"repro/internal/circuit"
)

func main() {
	var (
		algName   = flag.String("alg", "grover", "workload: grover, bwt, dj, bv")
		n         = flag.Int("n", 8, "grover/dj/bv: input qubits")
		depth     = flag.Int("depth", 5, "bwt: tree depth")
		steps     = flag.Int("steps", 24, "bwt: walk steps")
		maxNodes  = flag.Int("maxnodes", 0, "node budget (default: 4× the exact size)")
		maxNodes2 = flag.Int("max-nodes", 0, "alias for -maxnodes")
		maxErr    = flag.Float64("maxerror", 1e-10, "final-state error budget")
		epsFlag   = flag.String("eps", "1e-3,1e-5,1e-10,1e-13,1e-15", "candidate tolerances, largest first")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole tuning session (0 = none); partial trials are reported on expiry")
		parallel  = flag.Int("parallel", 0, "worker pool for the candidate trials, each on private managers (0 = GOMAXPROCS, 1 = sequential); the trial table is identical for every setting")
	)
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("qtune", buildinfo.Read())
		return
	}
	if *maxNodes == 0 {
		*maxNodes = *maxNodes2
	}

	var c *circuit.Circuit
	switch *algName {
	case "grover":
		c = algorithms.Grover(*n, uint64(1)<<uint(*n)-2, 0)
	case "bwt":
		c = algorithms.BWT(*depth, *steps)
	case "dj":
		c = algorithms.DeutschJozsa(*n, uint64(1)<<uint(*n)-2)
	case "bv":
		c = algorithms.BernsteinVazirani(*n, uint64(1)<<uint(*n)-2)
	default:
		fmt.Fprintf(os.Stderr, "qtune: unknown workload %q\n", *algName)
		os.Exit(1)
	}
	var candidates []float64
	for _, part := range strings.Split(*epsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qtune: bad -eps entry %q: %v\n", part, err)
			os.Exit(1)
		}
		candidates = append(candidates, v)
	}

	fmt.Printf("tuning ε for %s (%d qubits, %d gates), budgets: error ≤ %.0e\n",
		c.Name, c.N, c.Len(), *maxErr)

	// The run governor: SIGINT or -timeout cancels the tuning session; the
	// trials completed so far are still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	budget := *maxNodes
	if budget == 0 {
		budget = -1 // resolved after the reference run below
	}
	tune := func(maxNodes int) (*bench.TuneResult, error) {
		res, err := bench.TuneWith(ctx, c, bench.TuneParams{
			Candidates: candidates,
			MaxNodes:   maxNodes,
			MaxError:   *maxErr,
			Parallel:   *parallel,
		})
		// Per-worker pool stats go to stderr so the trial report on stdout
		// stays byte-identical across -parallel settings.
		if res != nil && len(res.Workers) > 0 {
			fmt.Fprint(os.Stderr, bench.WorkerReport(res.Workers))
		}
		return res, err
	}

	// First pass with a provisional huge budget to learn the exact size.
	res, err := tune(chooseBudget(budget))
	if stopped(err) {
		fmt.Printf("qtune: tuning stopped early (%v); partial trials below\n", err)
		fmt.Print(res.Report())
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtune:", err)
		os.Exit(1)
	}
	if budget == -1 {
		// Re-evaluate acceptance against 4× the exact size.
		res, err = tune(4 * res.AlgebraicNodes)
		if stopped(err) {
			fmt.Printf("qtune: tuning stopped early (%v); partial trials below\n", err)
			fmt.Print(res.Report())
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qtune:", err)
			os.Exit(1)
		}
		fmt.Printf("node budget: 4 × exact size = %d\n", 4*res.AlgebraicNodes)
	}
	fmt.Print(res.Report())
}

// stopped reports whether the tuning session ended through the governor
// (SIGINT or -timeout) rather than through a genuine failure.
func stopped(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func chooseBudget(b int) int {
	if b <= 0 {
		return 1 << 30
	}
	return b
}
