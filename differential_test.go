package repro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/sim"
)

// randomCliffordT returns a random n-qubit Clifford+T circuit of the given
// length — the gate set both representations support exactly, so any
// divergence between two managers is a table bug, never arithmetic.
func randomCliffordT(r *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("random-clifford-t", n)
	for i := 0; i < gates; i++ {
		q := r.Intn(n)
		switch r.Intn(8) {
		case 0:
			c.H(q)
		case 1:
			c.X(q)
		case 2:
			c.Z(q)
		case 3:
			c.S(q)
		case 4:
			c.T(q)
		case 5:
			c.Tdg(q)
		default:
			t := r.Intn(n - 1)
			if t >= q {
				t++
			}
			c.CX(q, t)
		}
	}
	return c
}

func runCircuit[T any](t *testing.T, m *core.Manager[T], c *circuit.Circuit) core.Edge[T] {
	t.Helper()
	s := sim.New(m, c.N)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	return s.State
}

// TestDifferentialComputeTableSizes: the same randomized circuits produce
// identical states (amplitudes and diagram size) in a manager with the
// default compute table and one with a pathologically small (64-slot,
// collision-heavy) table — memoization pressure must never change results.
// Repeating a circuit in the same manager must hit the unique table and
// return the identical root (RootsEqual).
func TestDifferentialComputeTableSizes(t *testing.T) {
	const n, gates = 5, 120
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		c := randomCliffordT(r, n, gates)

		mBig := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		mSmall := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft, core.WithComputeTableSize(64))
		vBig := runCircuit(t, mBig, c)
		vSmall := runCircuit(t, mSmall, c)

		if a, b := vBig.NodeCount(), vSmall.NodeCount(); a != b {
			t.Fatalf("trial %d: node counts differ across CT sizes: %d vs %d", trial, a, b)
		}
		ampBig := mBig.ToVector(vBig, n)
		ampSmall := mSmall.ToVector(vSmall, n)
		for i := range ampBig {
			if !ampBig[i].Equal(ampSmall[i]) {
				t.Fatalf("trial %d amp %d: %v vs %v", trial, i, ampBig[i], ampSmall[i])
			}
		}

		// Same circuit, same manager: canonicity demands the identical root.
		if again := runCircuit(t, mBig, c); !mBig.RootsEqual(vBig, again) {
			t.Fatalf("trial %d: repeat run in one manager is not RootsEqual", trial)
		}

		// Cross-check the numeric representation against the exact one.
		mNum := core.NewManager[complex128](num.NewRing(0), core.NormMax)
		vNum := runCircuit(t, mNum, c)
		ampNum := mNum.ToVector(vNum, n)
		for i := range ampBig {
			exact := alg.Ring{}.Complex128(ampBig[i])
			if d := cmplxAbs(ampNum[i] - exact); d > 1e-9 {
				t.Fatalf("trial %d amp %d: numeric %v vs exact %v (|Δ|=%g)",
					trial, i, ampNum[i], exact, d)
			}
		}
	}
}

func cmplxAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

// BenchmarkGroverStep measures re-simulating a Grover circuit in a warm
// manager: the unique and compute tables already hold every node and
// memoized product, so this is the pure table-hit path the integer-keying
// rework optimizes.
func BenchmarkGroverStep(b *testing.B) {
	c := algorithms.Grover(6, 13, 3)
	b.Run("alg", func(b *testing.B) {
		m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		s := sim.New(m, c.N)
		if err := s.Run(c, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			if err := s.Run(c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("num", func(b *testing.B) {
		m := core.NewManager[complex128](num.NewRing(0), core.NormMax)
		s := sim.New(m, c.N)
		if err := s.Run(c, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			if err := s.Run(c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
