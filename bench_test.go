package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/plaindd"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Figure-level benchmarks: each corresponds to one figure of the paper's
// evaluation section and reports the wall-clock cost of regenerating its
// data series at benchmark scale. Run `cmd/qbench` for the full sweeps with
// CSV output; run `go test -bench=Fig -benchmem` for timing comparisons.

func benchParams() bench.FigureParams {
	p := bench.DefaultParams()
	p.GroverQubits = 8
	p.BWTDepth = 6
	p.BWTSteps = 32
	p.GSEPhaseBits = 2
	p.GSESKDepth = 1
	p.SynthNetLen = 10
	p.Stride = 1 << 30 // figures sample per-gate; benches only need totals
	p.MeasureError = false
	return p
}

// simulate is the common per-iteration body: one full simulation of c under
// the given representation.
func simulateAlg(b *testing.B, c *circuit.Circuit, norm core.NormScheme) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewManager[alg.Q](alg.Ring{}, norm)
		s := sim.New(m, c.N)
		if err := s.Run(c, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.State.NodeCount()), "nodes")
	}
}

func simulateNum(b *testing.B, c *circuit.Circuit, eps float64) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewManager[complex128](num.NewRing(eps), core.NormMax)
		s := sim.New(m, c.N)
		if err := s.Run(c, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.State.NodeCount()), "nodes")
	}
}

// BenchmarkFig3Grover regenerates the Fig. 3 series: Grover under the
// paper's ε sweep and under the exact algebraic representation.
func BenchmarkFig3Grover(b *testing.B) {
	p := benchParams()
	c := bench.GroverCircuit(p)
	b.Run("algebraic", func(b *testing.B) { simulateAlg(b, c, core.NormLeft) })
	for _, eps := range []float64{0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3} {
		b.Run(fmt.Sprintf("eps=%.0e", eps), func(b *testing.B) { simulateNum(b, c, eps) })
	}
}

// BenchmarkFig4BWT regenerates the Fig. 4 series on the welded-tree walk.
func BenchmarkFig4BWT(b *testing.B) {
	p := benchParams()
	c := bench.BWTCircuit(p)
	b.Run("algebraic", func(b *testing.B) { simulateAlg(b, c, core.NormLeft) })
	for _, eps := range []float64{0, 1e-10, 1e-3} {
		b.Run(fmt.Sprintf("eps=%.0e", eps), func(b *testing.B) { simulateNum(b, c, eps) })
	}
}

// BenchmarkFig2And5GSE regenerates the Fig. 2 / Fig. 5 series on the
// Clifford+T-compiled GSE circuit — the workload where the exact
// representation's integer bit widths grow and the overhead becomes visible.
func BenchmarkFig2And5GSE(b *testing.B) {
	p := benchParams()
	c, err := bench.GSECircuit(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("algebraic", func(b *testing.B) { simulateAlg(b, c, core.NormLeft) })
	for _, eps := range []float64{0, 1e-10, 1e-3} {
		b.Run(fmt.Sprintf("eps=%.0e", eps), func(b *testing.B) { simulateNum(b, c, eps) })
	}
}

// BenchmarkNormalizationSchemes is the Section V-B ablation: Algorithm 2
// (Q[ω] inverses) vs Algorithm 3 (D[ω] GCDs) vs the max-magnitude rule on
// the same exactly-representable workload. The paper reports that the GCD
// scheme always loses; the ratio here is the reproduced quantity.
func BenchmarkNormalizationSchemes(b *testing.B) {
	p := benchParams()
	c := bench.BWTCircuit(p)
	for _, norm := range []core.NormScheme{core.NormLeft, core.NormMax, core.NormGCD} {
		b.Run(norm.String(), func(b *testing.B) { simulateAlg(b, c, norm) })
	}
}

// Micro-benchmarks for the arithmetic substrate: the per-operation costs
// behind the paper's "more expensive arithmetic operations" discussion.

func randQ(r *rand.Rand, coefBits int) alg.Q {
	v := func() int64 { return r.Int63n(1<<uint(coefBits)) - 1<<uint(coefBits-1) }
	return alg.NewQ(v(), v(), v(), v(), r.Intn(5)-2, 2*r.Int63n(50)+1)
}

func BenchmarkAlgMul(b *testing.B) {
	for _, bits := range []int{8, 32, 62} {
		b.Run(fmt.Sprintf("coef%dbit", bits), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			x, y := randQ(r, bits), randQ(r, bits)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Mul(y)
			}
		})
	}
}

func BenchmarkAlgAdd(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x, y := randQ(r, 32), randQ(r, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Add(y)
	}
}

func BenchmarkAlgInverse(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x := randQ(r, 32)
	if x.IsZero() {
		x = alg.QOne
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Inv()
	}
}

func BenchmarkAlgGCD(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	g := alg.NewZomega(3, 1, -2, 5)
	x := alg.NewZomega(r.Int63n(64), r.Int63n(64), r.Int63n(64), r.Int63n(64)).Mul(g)
	y := alg.NewZomega(r.Int63n(64), r.Int63n(64), r.Int63n(64), r.Int63n(64)).Mul(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg.GCDZ(x, y)
	}
}

func BenchmarkCanonicalAssociate(b *testing.B) {
	x := alg.NewD(23, -17, 5, 40, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg.CanonicalAssociate(x)
	}
}

func BenchmarkNumMulInterned(b *testing.B) {
	r := num.NewRing(1e-12)
	x, y := complex(0.70710678, 0.1), complex(-0.3, 0.4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Mul(x, y)
	}
}

// BenchmarkMatMat compares one 6-qubit matrix-matrix multiplication in both
// representations (the core operation of all QMDD design tasks).
func BenchmarkMatMat(b *testing.B) {
	c := algorithms.Grover(6, 13, 1)
	b.Run("algebraic", func(b *testing.B) {
		m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		u, err := sim.BuildUnitary(m, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ClearComputeTable()
			m.Mul(u, u)
		}
	})
	b.Run("numeric", func(b *testing.B) {
		m := core.NewManager[complex128](num.NewRing(1e-12), core.NormMax)
		u, err := sim.BuildUnitary(m, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ClearComputeTable()
			m.Mul(u, u)
		}
	})
}

// BenchmarkSynthesis measures the Solovay–Kitaev compilation cost by depth.
func BenchmarkSynthesis(b *testing.B) {
	s := synth.New(10)
	for depth := 0; depth <= 2; depth++ {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.RzGates(0.731, 0, depth)
			}
		})
	}
}

// BenchmarkWeightedEdgesAblation quantifies the paper's Fig. 1b-vs-1c
// argument: the same states represented as weight-less (QuIDD/ADD-style)
// DDs vs QMDDs. The reported "plainNodes"/"qmddNodes" metrics show what the
// weighted edges buy.
func BenchmarkWeightedEdgesAblation(b *testing.B) {
	workloads := map[string]*circuit.Circuit{
		"grover8": algorithms.Grover(8, 100, 0),
		"bwt":     algorithms.BWT(5, 24),
	}
	for name, c := range workloads {
		b.Run(name, func(b *testing.B) {
			m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
			s := sim.New(m, c.N)
			if err := s.Run(c, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var internal int
			for i := 0; i < b.N; i++ {
				pm := plaindd.NewManager[alg.Q](alg.Ring{})
				p := plaindd.FromQMDD(pm, m, s.State, c.N)
				internal, _ = p.NodeCount()
			}
			b.ReportMetric(float64(internal), "plainNodes")
			b.ReportMetric(float64(s.State.NodeCount()), "qmddNodes")
		})
	}
}

// BenchmarkMatVecVsMatMat contrasts the two simulation styles the QMDD
// literature compares ([25]): gate-by-gate matrix-vector evolution vs
// building the full circuit unitary by matrix-matrix multiplication.
func BenchmarkMatVecVsMatMat(b *testing.B) {
	c := algorithms.Grover(7, 50, 0)
	b.Run("matvec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
			s := sim.New(m, c.N)
			if err := s.Run(c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("matmat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
			u, err := sim.BuildUnitary(m, c)
			if err != nil {
				b.Fatal(err)
			}
			m.Mul(u, m.BasisState(c.N, 0))
		}
	})
}
