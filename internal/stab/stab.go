// Package stab implements the Aaronson–Gottesman CHP stabilizer tableau — a
// polynomial-time simulator for Clifford circuits (H, S, CNOT and their
// compositions). It serves as the third, independent validation oracle of
// this reproduction: the dense simulator checks QMDDs up to ~16 qubits; the
// tableau checks Clifford behaviour (probabilities and stabilizer
// membership) at hundreds of qubits, where only a compact decision diagram
// can follow.
package stab

import (
	"fmt"
	"strings"
)

// Tableau is the stabilizer tableau of an n-qubit state: rows 0..n−1 are
// the destabilizer generators, rows n..2n−1 the stabilizer generators.
// Row i stores Pauli X/Z bits per qubit plus a sign bit.
type Tableau struct {
	N int
	// x[i][q], z[i][q] packed per row; r[i] is the sign (true = −1).
	x, z [][]bool
	r    []bool
}

// New returns the tableau of |0…0⟩.
func New(n int) *Tableau {
	if n < 1 {
		panic("stab: need at least one qubit")
	}
	t := &Tableau{N: n}
	rows := 2 * n
	t.x = make([][]bool, rows)
	t.z = make([][]bool, rows)
	t.r = make([]bool, rows)
	for i := 0; i < rows; i++ {
		t.x[i] = make([]bool, n)
		t.z[i] = make([]bool, n)
	}
	for q := 0; q < n; q++ {
		t.x[q][q] = true   // destabilizer X_q
		t.z[n+q][q] = true // stabilizer Z_q
	}
	return t
}

// H applies a Hadamard to qubit q.
func (t *Tableau) H(q int) {
	for i := range t.x {
		if t.x[i][q] && t.z[i][q] {
			t.r[i] = !t.r[i]
		}
		t.x[i][q], t.z[i][q] = t.z[i][q], t.x[i][q]
	}
}

// S applies the phase gate to qubit q.
func (t *Tableau) S(q int) {
	for i := range t.x {
		if t.x[i][q] && t.z[i][q] {
			t.r[i] = !t.r[i]
		}
		t.z[i][q] = t.z[i][q] != t.x[i][q]
	}
}

// Sdg applies S†.
func (t *Tableau) Sdg(q int) { t.S(q); t.S(q); t.S(q) }

// X applies a Pauli X (= H·S²·H, done directly on signs).
func (t *Tableau) X(q int) {
	for i := range t.x {
		if t.z[i][q] {
			t.r[i] = !t.r[i]
		}
	}
}

// Z applies a Pauli Z.
func (t *Tableau) Z(q int) {
	for i := range t.x {
		if t.x[i][q] {
			t.r[i] = !t.r[i]
		}
	}
}

// Y applies a Pauli Y.
func (t *Tableau) Y(q int) { t.Z(q); t.X(q) }

// CX applies a CNOT with control c and target tg.
func (t *Tableau) CX(c, tg int) {
	for i := range t.x {
		if t.x[i][c] && t.z[i][tg] && (t.x[i][tg] == t.z[i][c]) {
			t.r[i] = !t.r[i]
		}
		t.x[i][tg] = t.x[i][tg] != t.x[i][c]
		t.z[i][c] = t.z[i][c] != t.z[i][tg]
	}
}

// CZ applies a controlled-Z (H on target conjugating a CNOT).
func (t *Tableau) CZ(c, tg int) {
	t.H(tg)
	t.CX(c, tg)
	t.H(tg)
}

// rowMult multiplies row i into row h (h ← h·i), tracking the phase.
func (t *Tableau) rowMult(h, i int) {
	// Phase exponent of i^k accumulated over qubits.
	g := 0
	for q := 0; q < t.N; q++ {
		g += phaseExp(t.x[i][q], t.z[i][q], t.x[h][q], t.z[h][q])
	}
	if t.r[h] {
		g += 2
	}
	if t.r[i] {
		g += 2
	}
	t.r[h] = ((g%4)+4)%4 == 2
	for q := 0; q < t.N; q++ {
		t.x[h][q] = t.x[h][q] != t.x[i][q]
		t.z[h][q] = t.z[h][q] != t.z[i][q]
	}
}

// phaseExp is the Aaronson–Gottesman g function: the exponent of i when
// multiplying single-qubit Paulis (x1,z1)·(x2,z2).
func phaseExp(x1, z1, x2, z2 bool) int {
	switch {
	case !x1 && !z1:
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		if z2 {
			return 2*b2i(x2) - 1
		}
		return 0
	default: // Z
		if x2 {
			return 1 - 2*b2i(z2)
		}
		return 0
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// MeasureIsRandom reports whether measuring qubit q in the computational
// basis has a random outcome (probability 1/2 each); if not, the
// deterministic outcome is returned.
func (t *Tableau) MeasureIsRandom(q int) (random bool, outcome int) {
	n := t.N
	for p := n; p < 2*n; p++ {
		if t.x[p][q] {
			return true, 0
		}
	}
	// Deterministic: accumulate the sign of the product of stabilizers
	// whose destabilizer partner anticommutes with Z_q.
	scratch := len(t.x)
	t.x = append(t.x, make([]bool, n))
	t.z = append(t.z, make([]bool, n))
	t.r = append(t.r, false)
	defer func() {
		t.x = t.x[:scratch]
		t.z = t.z[:scratch]
		t.r = t.r[:scratch]
	}()
	for p := 0; p < n; p++ {
		if t.x[p][q] {
			t.rowMult(scratch, p+n)
		}
	}
	if t.r[scratch] {
		return false, 1
	}
	return false, 0
}

// ExpectationZ returns the exact expectation of Z on qubit q: 0 when the
// outcome is random, ±1 when deterministic.
func (t *Tableau) ExpectationZ(q int) int {
	random, outcome := t.MeasureIsRandom(q)
	if random {
		return 0
	}
	if outcome == 1 {
		return -1
	}
	return 1
}

// StabilizesZ reports whether (−1)^sign · Z_q is in the stabilizer group —
// i.e. whether the state is an eigenstate of Z_q with that sign.
func (t *Tableau) StabilizesZ(q int, sign bool) bool {
	random, outcome := t.MeasureIsRandom(q)
	if random {
		return false
	}
	return (outcome == 1) == sign
}

// String renders the stabilizer generators like "+XXI / +ZZI".
func (t *Tableau) String() string {
	var sb strings.Builder
	for p := t.N; p < 2*t.N; p++ {
		if t.r[p] {
			sb.WriteByte('-')
		} else {
			sb.WriteByte('+')
		}
		for q := 0; q < t.N; q++ {
			switch {
			case t.x[p][q] && t.z[p][q]:
				sb.WriteByte('Y')
			case t.x[p][q]:
				sb.WriteByte('X')
			case t.z[p][q]:
				sb.WriteByte('Z')
			default:
				sb.WriteByte('I')
			}
		}
		if p != 2*t.N-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Apply dispatches a named Clifford gate. It returns an error for
// non-Clifford gates (T etc.) — the tableau cannot represent them.
func (t *Tableau) Apply(name string, target int, controls []int) error {
	if len(controls) > 1 {
		return fmt.Errorf("stab: gate %q with %d controls is not Clifford", name, len(controls))
	}
	if len(controls) == 1 {
		switch name {
		case "x":
			t.CX(controls[0], target)
			return nil
		case "z":
			t.CZ(controls[0], target)
			return nil
		}
		return fmt.Errorf("stab: controlled %q is not Clifford", name)
	}
	switch name {
	case "h":
		t.H(target)
	case "s":
		t.S(target)
	case "sdg":
		t.Sdg(target)
	case "x":
		t.X(target)
	case "y":
		t.Y(target)
	case "z":
		t.Z(target)
	case "id", "i":
		// no-op
	default:
		return fmt.Errorf("stab: gate %q is not Clifford", name)
	}
	return nil
}
