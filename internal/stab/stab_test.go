package stab

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestInitialState(t *testing.T) {
	tb := New(3)
	for q := 0; q < 3; q++ {
		random, outcome := tb.MeasureIsRandom(q)
		if random || outcome != 0 {
			t.Fatalf("qubit %d of |000⟩ not deterministically 0", q)
		}
	}
	if s := tb.String(); !strings.Contains(s, "+ZII") {
		t.Fatalf("stabilizers of |000⟩: %s", s)
	}
}

func TestBellState(t *testing.T) {
	tb := New(2)
	tb.H(0)
	tb.CX(0, 1)
	// Stabilizers of the Bell state: +XX and +ZZ.
	s := tb.String()
	if !strings.Contains(s, "+XX") || !strings.Contains(s, "+ZZ") {
		t.Fatalf("Bell stabilizers:\n%s", s)
	}
	for q := 0; q < 2; q++ {
		if random, _ := tb.MeasureIsRandom(q); !random {
			t.Fatalf("Bell qubit %d measurement not random", q)
		}
	}
}

func TestPauliGates(t *testing.T) {
	tb := New(1)
	tb.X(0)
	if random, outcome := tb.MeasureIsRandom(0); random || outcome != 1 {
		t.Fatal("X|0⟩ ≠ |1⟩")
	}
	tb.X(0)
	if _, outcome := tb.MeasureIsRandom(0); outcome != 0 {
		t.Fatal("X² ≠ I")
	}
	// Z and Y preserve the computational value on |0⟩ / flip with Y.
	tb2 := New(1)
	tb2.Y(0)
	if _, outcome := tb2.MeasureIsRandom(0); outcome != 1 {
		t.Fatal("Y|0⟩ not |1⟩ up to phase")
	}
}

func TestSAndHRelations(t *testing.T) {
	// H S S H = H Z H = X: |0⟩ → |1⟩.
	tb := New(1)
	tb.H(0)
	tb.S(0)
	tb.S(0)
	tb.H(0)
	if random, outcome := tb.MeasureIsRandom(0); random || outcome != 1 {
		t.Fatal("HZH ≠ X in the tableau")
	}
	// S·S† = I.
	tb2 := New(1)
	tb2.H(0)
	tb2.S(0)
	tb2.Sdg(0)
	tb2.H(0)
	if random, outcome := tb2.MeasureIsRandom(0); random || outcome != 0 {
		t.Fatal("S·S† ≠ I")
	}
}

func TestGHZDeterministicParity(t *testing.T) {
	n := 50 // far beyond dense or decision-diagram-free reach of this test
	tb := New(n)
	tb.H(0)
	for q := 1; q < n; q++ {
		tb.CX(q-1, q)
	}
	for q := 0; q < n; q++ {
		if random, _ := tb.MeasureIsRandom(q); !random {
			t.Fatalf("GHZ qubit %d not random", q)
		}
	}
	if !strings.Contains(tb.String(), strings.Repeat("Z", 2)) {
		t.Fatal("GHZ stabilizers missing ZZ correlations")
	}
}

// TestCrossValidationAgainstQMDD: on random Clifford circuits the exact
// QMDD and the tableau agree on every single-qubit Z expectation.
func TestCrossValidationAgainstQMDD(t *testing.T) {
	r := rand.New(rand.NewSource(130))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(3)
		c := circuit.New("clifford", n)
		tb := New(n)
		for g := 0; g < 60; g++ {
			switch r.Intn(5) {
			case 0:
				q := r.Intn(n)
				c.H(q)
				tb.H(q)
			case 1:
				q := r.Intn(n)
				c.S(q)
				tb.S(q)
			case 2:
				a, b := r.Intn(n), r.Intn(n)
				if a == b {
					b = (b + 1) % n
				}
				c.CX(a, b)
				tb.CX(a, b)
			case 3:
				q := r.Intn(n)
				c.X(q)
				tb.X(q)
			default:
				q := r.Intn(n)
				c.Z(q)
				tb.Z(q)
			}
		}
		m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		s := sim.New(m, n)
		if err := s.Run(c, nil); err != nil {
			t.Fatal(err)
		}
		for q := 0; q < n; q++ {
			want := tb.ExpectationZ(q)
			got, err := sim.PauliExpectation(m, s.State, n, map[int]byte{q: 'Z'})
			if err != nil {
				t.Fatal(err)
			}
			gv := real(m.R.Complex128(got))
			if math.Abs(gv-float64(want)) > 1e-9 {
				t.Fatalf("trial %d qubit %d: tableau ⟨Z⟩ = %d, QMDD %v", trial, q, want, gv)
			}
		}
	}
}

// TestLargeCliffordScaling: 200-qubit GHZ-like circuit runs in the tableau
// (and in the QMDD, which stays linear-size) — the paper's compactness
// story on a circuit class where an independent oracle exists.
func TestLargeCliffordScaling(t *testing.T) {
	n := 200
	tb := New(n)
	tb.H(0)
	for q := 1; q < n; q++ {
		tb.CX(q-1, q)
	}
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	c := circuit.New("ghz", n)
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	s := sim.New(m, n)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.State.NodeCount(); got != 2*n-1 {
		t.Fatalf("200-qubit GHZ diagram has %d nodes, want %d", got, 2*n-1)
	}
	// Both oracles agree: every qubit is maximally mixed in Z.
	for q := 0; q < n; q += 37 {
		if tb.ExpectationZ(q) != 0 {
			t.Fatalf("tableau: qubit %d not random", q)
		}
		p := m.Probability(s.State, n, 0) // ⟨0…0|ψ⟩² = 1/2
		if math.Abs(p-0.5) > 1e-12 {
			t.Fatalf("QMDD: P(0…0) = %v", p)
		}
	}
}

func TestApplyDispatch(t *testing.T) {
	tb := New(2)
	for _, g := range []struct {
		name string
		ctl  []int
	}{
		{"h", nil}, {"s", nil}, {"sdg", nil}, {"x", nil}, {"y", nil},
		{"z", nil}, {"id", nil}, {"x", []int{0}}, {"z", []int{0}},
	} {
		target := 1
		if err := tb.Apply(g.name, target, g.ctl); err != nil {
			t.Fatalf("%v rejected: %v", g, err)
		}
	}
	if err := tb.Apply("t", 0, nil); err == nil {
		t.Fatal("T accepted by the stabilizer tableau")
	}
	if err := tb.Apply("x", 2, []int{0, 1}); err == nil {
		t.Fatal("Toffoli accepted by the stabilizer tableau")
	}
}
