package stab_test

import (
	"fmt"

	"repro/internal/stab"
)

// The tableau tracks stabilizer generators symbolically: preparing a Bell
// pair yields the textbook +XX / +ZZ stabilizers.
func ExampleTableau() {
	t := stab.New(2)
	t.H(0)
	t.CX(0, 1)
	fmt.Println(t)
	fmt.Println("⟨Z₀⟩ =", t.ExpectationZ(0))
	// Output:
	// +XX
	// +ZZ
	// ⟨Z₀⟩ = 0
}

// Deterministic measurements are recognized without sampling.
func ExampleTableau_MeasureIsRandom() {
	t := stab.New(1)
	t.X(0)
	random, outcome := t.MeasureIsRandom(0)
	fmt.Println(random, outcome)
	t.H(0)
	random, _ = t.MeasureIsRandom(0)
	fmt.Println(random)
	// Output:
	// false 1
	// true
}
