// Package buildinfo reports the identity of the running binary — module
// version, VCS revision and Go toolchain — via runtime/debug.ReadBuildInfo,
// so deployed CLIs (-version) and the qmddd daemon (/v1/version) can be told
// apart in the field without guessing from behaviour.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the structured build identity, JSON-taggable for the daemon's
// /v1/version endpoint.
type Info struct {
	Version  string `json:"version"`            // module version ("devel" for local builds)
	Revision string `json:"revision,omitempty"` // VCS commit, "" when built outside a checkout
	Modified bool   `json:"modified,omitempty"` // true when the checkout had local edits
	Go       string `json:"go"`                 // Go toolchain (runtime.Version())
}

// Read collects the build identity of the running binary. It never fails:
// binaries built without module support report version "unknown".
func Read() Info {
	info := Info{Version: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Version = bi.Main.Version
	if info.Version == "" || info.Version == "(devel)" {
		info.Version = "devel"
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the identity as the one-line form the CLIs print for
// -version, e.g. "devel rev 1a2b3c4d (modified) go1.22.0".
func (i Info) String() string {
	s := i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Modified {
			s += " (modified)"
		}
	}
	return fmt.Sprintf("%s %s", s, i.Go)
}
