// Package httpx holds the small HTTP middleware shared by the qmddd worker
// transport and the qrouter front tier: request-id minting/propagation and
// the structured access log. Keeping it transport-neutral means one id
// follows a request from the router edge through the worker to every log
// line and error envelope it produces.
package httpx

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// RequestIDHeader carries the per-exchange correlation id. The router mints
// one at the edge and forwards it; a worker reached directly mints its own.
// Every response echoes the header, every error envelope embeds it, and the
// access log keys on it — one id follows one request across the whole tier.
const RequestIDHeader = "X-Request-Id"

type requestIDKey struct{}

// NewRequestID mints a fresh request id ("r" + 16 hex chars).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("httpx: request id entropy: %v", err))
	}
	return "r" + hex.EncodeToString(b[:])
}

// validRequestID accepts forwarded ids that are safe to echo into headers
// and logs: short, and free of whitespace/control bytes. Anything else is
// replaced rather than propagated.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c >= 0x7f {
			return false
		}
	}
	return true
}

// RequestIDFrom returns the exchange's request id ("" outside the
// middleware, e.g. in direct handler unit tests).
func RequestIDFrom(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// statusRecorder captures the status and size for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// accessLogMu serializes access-log lines: a Server's writer is typically
// os.Stderr shared with a router or a second worker in tests, and
// interleaved partial lines are worse than a cheap lock.
var accessLogMu sync.Mutex

// Logf writes one formatted line to logw under the shared access-log lock,
// so transport-level events (batch fan-out, for one) interleave cleanly with
// the per-exchange lines. No-op when logw is nil.
func Logf(logw io.Writer, format string, args ...any) {
	if logw == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	accessLogMu.Lock()
	_, _ = io.WriteString(logw, line)
	accessLogMu.Unlock()
}

// WithRequestID wraps next with the request-id and access-log middleware:
// adopt or mint the id, expose it via context and response header, and (when
// logw is non-nil) emit one logfmt line per exchange.
func WithRequestID(logw io.Writer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

		if logw == nil {
			next.ServeHTTP(w, r)
			return
		}
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r)
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		line := fmt.Sprintf("time=%s request_id=%s method=%s path=%s status=%d bytes=%d duration_ms=%.3f\n",
			start.UTC().Format(time.RFC3339Nano), id, r.Method, r.URL.Path, status, sr.bytes,
			float64(time.Since(start))/float64(time.Millisecond))
		accessLogMu.Lock()
		_, _ = io.WriteString(logw, line)
		accessLogMu.Unlock()
	})
}
