package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Pool fans independent sweep cells out to share-nothing workers. The
// paper's evaluation is a grid of independent runs — ε sweeps times number
// representations — and every cell owns a private core.Manager (per-manager
// unique/compute/intern tables), so workers never share mutable diagram
// state; the only cross-worker traffic is the cell index counter and the
// result slots, each written by exactly one worker.
//
// Determinism: cells are dispatched in index order from an atomic counter
// and every cell writes only its own result slot, so callers that merge by
// cell index (as ExecuteCtx, TuneWith and ExecuteBatch do) produce output
// identical to the sequential path regardless of completion order or worker
// count. Timing fields naturally differ; everything derived from diagram
// arithmetic is byte-identical.
//
// Cancellation: when the context is cancelled, workers stop pulling new
// cells and the cells already in flight are cancelled cooperatively through
// the same context (each cell installs it into its private manager), so Run
// drains cleanly — it returns only after every in-flight cell has unwound.
type Pool struct {
	// Workers bounds the pool: 0 (the default) resolves to
	// runtime.GOMAXPROCS(0); 1 runs the cells sequentially on the calling
	// goroutine's schedule but through the same code path.
	Workers int
}

// WorkerStat is the per-worker utilization record a pool run reports back:
// how many cells the worker ran, its cumulative busy wall-time, and the
// largest per-run peak node count it observed. These are diagnostics for
// the CLI (-parallel) report and are deliberately not part of any CSV or
// figure output, which must stay independent of the worker count.
type WorkerStat struct {
	Cells     int           // cells this worker completed
	Busy      time.Duration // cumulative wall-time inside cells
	PeakNodes int           // max per-cell peak node count observed
}

// resolveWorkers returns the effective worker count for n cells.
func (p *Pool) resolveWorkers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes cells 0..n−1, each at most once, on the pool's workers. The
// cell callback must confine all mutable state to the cell (private
// managers) except its own result slot; it returns the cell's peak node
// count (for WorkerStat) and an error.
//
// Error contract, matching the sequential sweep semantics:
//   - a cell error that is the context's cancellation (context.Canceled /
//     DeadlineExceeded while ctx is done) is not fatal — the caller has
//     already folded the partial run into its result slot;
//   - any other cell error is fatal: no new cells are dispatched, in-flight
//     cells are cancelled, and the fatal error with the smallest cell index
//     is returned (the one the sequential path would have hit first);
//   - when ctx is cancelled, Run drains the in-flight cells and returns
//     ctx.Err().
func (p *Pool) Run(ctx context.Context, n int, cell func(ctx context.Context, i int) (peakNodes int, err error)) ([]WorkerStat, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers := p.resolveWorkers(n)
	stats := make([]WorkerStat, workers)

	// Fatal cell errors cancel the remaining work through a derived context;
	// the cells they interrupt come back with induced context errors, which
	// are ignored in favour of the smallest-index genuine failure.
	workCtx, stopWork := context.WithCancel(ctx)
	defer stopWork()

	var (
		next     atomic.Int64
		mu       sync.Mutex
		fatalIdx = -1
		fatalErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(st *WorkerStat) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Cancellation stops dispatch — except for cell 0, which always
				// runs: a sweep cancelled before it started still returns one
				// annotated partial run, exactly like the sequential path, and
				// a pre-cancelled context makes the cell return immediately.
				if i > 0 && workCtx.Err() != nil {
					return
				}
				start := time.Now()
				peak, err := cell(workCtx, i)
				st.Busy += time.Since(start)
				st.Cells++
				if peak > st.PeakNodes {
					st.PeakNodes = peak
				}
				if err != nil && !isCtxErr(err) {
					mu.Lock()
					if fatalIdx == -1 || i < fatalIdx {
						fatalIdx, fatalErr = i, err
					}
					mu.Unlock()
					stopWork()
					return
				}
			}
		}(&stats[w])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	if fatalErr != nil {
		return stats, fatalErr
	}
	return stats, nil
}

// isCtxErr reports whether err is a context outcome (cancellation or
// deadline), whichever layer wrapped it.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WorkerReport renders per-worker pool utilization as a small table — the
// -parallel diagnostics the CLIs print to stderr (stderr so that stdout
// stays byte-identical across worker counts).
func WorkerReport(stats []WorkerStat) string {
	if len(stats) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "pool: %d worker(s)\n", len(stats))
	for i, st := range stats {
		fmt.Fprintf(&sb, "  worker %d: %2d cell(s), %8v busy, peak %d nodes\n",
			i, st.Cells, st.Busy.Round(time.Millisecond), st.PeakNodes)
	}
	return sb.String()
}
