package bench

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/num"
	"repro/internal/sim"

	"repro/internal/core"
)

// peakCircuit builds a 32-gate circuit whose state-size peak falls after an
// odd gate count: a 15-gate GHZ ramp (peak after gate 15), its 15-gate
// inverse, and two padding gates. Tune samples this circuit with stride
// 32/16 = 2 — even gate counts only — so the true peak sits exactly between
// two sample points.
func peakCircuit() *circuit.Circuit {
	const n = 15
	c := circuit.New("peak", n)
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	for q := n - 1; q >= 1; q-- {
		c.CX(q-1, q)
	}
	c.H(0)
	c.X(0)
	c.X(0)
	return c
}

// TestTuneExactPeakRegression is the regression test for the strided-peak
// bug: TuneTrial.PeakNodes used to be the maximum over the strided samples,
// so a diagram spike between two sample points went unseen and an
// over-budget tolerance was wrongly accepted. The tuner must observe the
// exact per-gate peak and reject the candidate.
func TestTuneExactPeakRegression(t *testing.T) {
	c := peakCircuit()
	if c.Len() != 32 {
		t.Fatalf("circuit has %d gates, want 32", c.Len())
	}
	stride := maxInt(1, c.Len()/16)

	// Ground truth: per-gate node counts of the (deterministic) trial run.
	m := core.NewManager[complex128](num.NewRing(1e-12), core.NormMax)
	s := sim.New(m, c.N)
	truePeak, stridedPeak := 0, 0
	err := s.Run(c, func(i int, g circuit.Gate) bool {
		n := s.State.NodeCount()
		if n > truePeak {
			truePeak = n
		}
		if ((i+1)%stride == 0 || i == c.Len()-1) && n > stridedPeak {
			stridedPeak = n
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if truePeak <= stridedPeak {
		t.Fatalf("test circuit does not peak between samples (true %d, strided %d)", truePeak, stridedPeak)
	}

	// Budget between the two: the strided view fits, the real run does not.
	res, err := Tune(c, []float64{1e-12}, stridedPeak, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 1 {
		t.Fatalf("trials: %d", len(res.Trials))
	}
	trial := res.Trials[0]
	if trial.PeakNodes != truePeak {
		t.Fatalf("trial peak = %d, want exact per-gate peak %d (strided max %d)",
			trial.PeakNodes, truePeak, stridedPeak)
	}
	if trial.Accepted {
		t.Fatalf("over-budget tolerance accepted: peak %d > budget %d", trial.PeakNodes, stridedPeak)
	}
	if !math.IsNaN(res.Best) {
		t.Fatalf("Best = %v, want NaN (no acceptable candidate)", res.Best)
	}
}

// TestExecuteCtxCancelledReturnsPartial: a cancelled context ends the
// experiment with the context error and whatever runs completed, each
// annotated as cancelled rather than silently truncated.
func TestExecuteCtxCancelledReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ExecuteCtx(ctx, "cancelled", Config{
		Circuit: peakCircuit(),
		EpsList: []float64{1e-10},
		Stride:  4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || len(res.Runs) == 0 {
		t.Fatal("no partial result returned")
	}
	run := res.Runs[len(res.Runs)-1]
	if !run.Failed || run.FailNote == "" {
		t.Fatalf("cancelled run not annotated: %+v", run)
	}
}

// TestTuneCtxCancelledReturnsPartial: same contract for the tuner.
func TestTuneCtxCancelledReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := TuneCtx(ctx, peakCircuit(), []float64{1e-3, 1e-10}, 1000, 1e-6)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if !math.IsNaN(res.Best) {
		t.Fatalf("cancelled session chose ε = %v", res.Best)
	}
}
