// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section V): it runs one benchmark circuit under a
// list of numerical tolerances ε and under the exact algebraic
// representation in lockstep, sampling after every stride gates the three
// quantities the paper plots — QMDD size (node count), accuracy
// (‖v_num/‖v_num‖ − v_alg‖₂), and cumulative run time — plus the
// algebraic-only statistics (coefficient bit widths, trivial-weight
// fraction) behind the paper's overhead discussion.
//
// Every run is governed: the Config's core.Budget is installed into each
// run's manager, so a run that would blow up (ε = 0 on GSE, say) is refused
// with partial samples and a failure note instead of exhausting memory, and
// the context passed to ExecuteCtx cancels runs cooperatively — between
// gates and inside individual diagram operations — returning whatever was
// measured up to that point.
package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/accuracy"
	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/sim"
)

// Sample is one measured point of one run.
type Sample struct {
	Gate       int     // number of gates applied so far
	Nodes      int     // QMDD size of the state
	CumSeconds float64 // cumulative simulation time (this run only)
	Error      float64 // ‖v_num − v_alg‖₂; 0 (exact) for the algebraic run
	MaxBits    int     // max coefficient bit width (algebraic runs; 0 numeric)
	Norm       float64 // ‖state‖₂ as seen by the representation
}

// Run is one full simulation trace.
type Run struct {
	Label   string
	Eps     float64 // −1 for algebraic runs
	Norm    core.NormScheme
	Samples []Sample
	// PeakNodes is the largest state size observed: exact (every gate) when
	// Config.TrackPeak is set, otherwise the maximum over the strided
	// samples (which can miss a between-samples peak — the bug the exact
	// mode exists to fix).
	PeakNodes int
	Total     time.Duration
	Stats     core.Stats // manager counters at the end of the run
	Failed    bool       // collapsed, diverged, over budget, or cancelled
	FailNote  string     // diagnosis, e.g. "state collapsed to zero vector"
}

// Config parameterizes a trade-off experiment.
type Config struct {
	Circuit *circuit.Circuit
	// EpsList are the tolerance settings of the numerical representation
	// (the paper sweeps 0, 1e−20, 1e−15, 1e−10, 1e−5, 1e−3).
	EpsList []float64
	// Algebraic adds the exact run (bold black graphs in Figs. 3–5).
	Algebraic bool
	// AlgNorm is the normalization scheme for the algebraic run.
	AlgNorm core.NormScheme
	// NumNormLeft switches the numerical runs from the default
	// max-magnitude normalization [29] to the classic leftmost rule. Under
	// the leftmost rule large tolerances fail as in the paper's Fig. 2/3
	// extreme — collapse to the all-zero vector — whereas the stabilized
	// rule usually fails by drifting to an O(1)-error state instead.
	NumNormLeft bool
	// Stride is the sampling period in gates (≥ 1).
	Stride int
	// MeasureError computes the accuracy metric at sample points. Requires
	// Algebraic (the exact reference) and expands 2^n amplitudes per sample
	// point, so keep n moderate when it is on.
	MeasureError bool
	// Budget is installed into every run's manager (replacing the old
	// ad-hoc NodeCap): a run that trips any limit is marked Failed with its
	// partial samples kept, never aborted by panic. When Budget.MaxNodes is
	// set, auto-pruning at half the limit keeps stale intermediates from
	// tripping it spuriously.
	Budget core.Budget
	// TrackPeak records the exact per-gate peak state size in
	// Run.PeakNodes, at O(state size) cost per gate instead of per stride.
	TrackPeak bool
	// PeakCap aborts a run as soon as its exact per-gate state size exceeds
	// this many nodes (implies per-gate tracking; 0 = no cap) — the
	// "infeasible run time" regime of the paper.
	PeakCap int
	// Parallel bounds the worker pool that fans the ε cells out to
	// share-nothing managers: 0 resolves to runtime.GOMAXPROCS(0), 1 runs
	// sequentially. The merged Result is identical (modulo timing fields)
	// for every setting — cells are merged by index, never by completion.
	Parallel int
	// IntraWorkers enables intra-operation parallelism inside each run's
	// manager (core.Manager.SetIntraWorkers): a single Add/ApplyLocal
	// recurses into independent sub-diagrams on up to this many goroutines.
	// Results are byte-identical at any setting; managers on rings that are
	// not concurrency-safe (ε > 0) silently stay sequential. 0 or 1 =
	// sequential. Composes multiplicatively with Parallel — keep the product
	// near the core count.
	IntraWorkers int
}

// Result bundles all runs of one experiment.
type Result struct {
	Name string
	N    int
	Runs []*Run
	// Workers holds the pool's per-worker utilization when the ε cells ran
	// on more than one worker. Diagnostics only: not part of the CSV or
	// figure output, which stays independent of the worker count.
	Workers []WorkerStat
}

// Execute runs the experiment.
func Execute(name string, cfg Config) (*Result, error) {
	return ExecuteCtx(context.Background(), name, cfg)
}

// ExecuteCtx runs the experiment under a context. On cancellation the
// partially-measured Result is returned alongside the context error, so
// callers can report whatever completed.
//
// The ε cells run on a share-nothing worker pool bounded by Config.Parallel
// (each cell owns a private manager); results are merged in ε-list order,
// so the Result — and any CSV/figure derived from it — is identical to a
// sequential sweep up to the timing fields. The algebraic run always goes
// first and alone: it produces the exact reference amplitudes every numeric
// cell reads (immutably) for the error metric.
func ExecuteCtx(ctx context.Context, name string, cfg Config) (*Result, error) {
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	c := cfg.Circuit
	res := &Result{Name: name, N: c.N}

	// The algebraic run goes first: it provides the exact reference states,
	// expanded once to amplitude vectors so the numeric workers share only
	// immutable data (a live *Manager[alg.Q] is not safe to share).
	var algAmps [][]alg.Q // amplitudes after each sampled prefix
	if cfg.Algebraic {
		run := &Run{Label: "algebraic/" + cfg.AlgNorm.String(), Eps: -1, Norm: cfg.AlgNorm}
		mAlg := core.NewManager[alg.Q](alg.Ring{}, cfg.AlgNorm)
		s := newGovernedSim(mAlg, c.N, cfg)
		start := time.Now()
		err := s.RunCtx(ctx, c, func(i int, g circuit.Gate) bool {
			nodes, stop := trackGate(run, s.State, i, c, cfg)
			if nodes >= 0 {
				elapsed := time.Since(start).Seconds()
				run.Samples = append(run.Samples, Sample{
					Gate:       i + 1,
					Nodes:      nodes,
					CumSeconds: elapsed,
					MaxBits:    mAlg.MaxWeightBitLen(s.State),
					Norm:       math.Sqrt(mAlg.Norm2(s.State)),
				})
				if cfg.MeasureError {
					algAmps = append(algAmps, mAlg.ToVector(s.State, c.N))
				}
			}
			return !stop
		})
		run.Total = time.Since(start)
		run.Stats = mAlg.Stats()
		cancelled, ferr := noteRunError(run, err)
		if ferr != nil {
			return nil, fmt.Errorf("bench: algebraic run: %w", ferr)
		}
		res.Runs = append(res.Runs, run)
		if cancelled {
			return res, ctx.Err()
		}
	}

	runs := make([]*Run, len(cfg.EpsList))
	pool := Pool{Workers: cfg.Parallel}
	stats, err := pool.Run(ctx, len(cfg.EpsList), func(ctx context.Context, i int) (int, error) {
		run, err := executeNumeric(ctx, c, cfg.EpsList[i], cfg, algAmps)
		runs[i] = run // sole writer of this slot
		if run != nil {
			return run.PeakNodes, err
		}
		return 0, err
	})
	// Merge in ε-list order, independent of completion order. Under
	// cancellation, cells that never started leave nil slots.
	for _, run := range runs {
		if run != nil {
			res.Runs = append(res.Runs, run)
		}
	}
	if len(stats) > 1 {
		res.Workers = stats
	}
	if err != nil {
		if isCtxErr(err) {
			return res, ctx.Err()
		}
		return nil, err
	}
	return res, nil
}

// BatchItem names one experiment of an ExecuteBatch run list.
type BatchItem struct {
	Name   string
	Config Config
}

// ExecuteBatch fans an arbitrary list of experiments out to a share-nothing
// worker pool — the batching entry point for run lists that are not a
// single ε sweep (mixed circuits, mixed normalization schemes, service
// queues). Each item runs as one pool cell with its own managers (the
// item's internal ε cells stay sequential: the pool parallelizes across
// items). Results come back indexed like items; under cancellation,
// entries whose item never started are nil and the context error is
// returned alongside the partial slice. A non-governor error aborts the
// batch and reports the smallest-index failure.
func ExecuteBatch(ctx context.Context, items []BatchItem, parallel int) ([]*Result, []WorkerStat, error) {
	results := make([]*Result, len(items))
	pool := Pool{Workers: parallel}
	stats, err := pool.Run(ctx, len(items), func(ctx context.Context, i int) (int, error) {
		cfg := items[i].Config
		cfg.Parallel = 1 // one pool: no nested fan-out inside a cell
		res, err := ExecuteCtx(ctx, items[i].Name, cfg)
		results[i] = res // sole writer of this slot
		peak := 0
		if res != nil {
			for _, run := range res.Runs {
				if run.PeakNodes > peak {
					peak = run.PeakNodes
				}
			}
		}
		return peak, err
	})
	return results, stats, err
}

// newGovernedSim builds a simulator with the config's budget installed; when
// the budget caps live nodes, auto-pruning at half the cap keeps stale
// intermediates from tripping it before the live working set does.
func newGovernedSim[T any](m *core.Manager[T], n int, cfg Config) *sim.Simulator[T] {
	m.SetIntraWorkers(cfg.IntraWorkers)
	s := sim.New(m, n)
	if !cfg.Budget.IsZero() {
		m.SetBudget(cfg.Budget)
		if cfg.Budget.MaxNodes > 1 {
			s.EnableAutoPrune(cfg.Budget.MaxNodes / 2)
		}
	}
	return s
}

// trackGate implements the per-gate bookkeeping shared by both run kinds:
// exact peak tracking (when requested), the peak cap, and the stride test.
// It returns the node count to sample (−1 when this gate is not a sample
// point) and whether the run must stop.
func trackGate[T any](run *Run, state core.Edge[T], i int, c *circuit.Circuit, cfg Config) (nodes int, stop bool) {
	nodes = -1
	sampling := (i+1)%cfg.Stride == 0 || i == c.Len()-1
	if cfg.TrackPeak || cfg.PeakCap > 0 || sampling {
		nodes = state.NodeCount()
		if nodes > run.PeakNodes {
			run.PeakNodes = nodes
		}
		if cfg.PeakCap > 0 && nodes > cfg.PeakCap {
			run.Failed = true
			run.FailNote = fmt.Sprintf("node cap %d exceeded", cfg.PeakCap)
			stop = true
		}
	}
	if !sampling {
		nodes = -1
	}
	return nodes, stop
}

// noteRunError folds a run error into the Run record: governor outcomes
// (budget exceeded, cancellation) mark the run Failed and keep its partial
// samples; hook stops are normal; anything else is a real error.
func noteRunError(run *Run, err error) (cancelled bool, fatal error) {
	switch {
	case err == nil:
		return false, nil
	case errors.Is(err, sim.ErrStopped):
		return false, nil // PeakCap stop; run already annotated
	case errors.Is(err, core.ErrBudgetExceeded):
		run.Failed = true
		run.FailNote = err.Error()
		return false, nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		run.Failed = true
		run.FailNote = "cancelled: " + err.Error()
		return true, nil
	default:
		return false, err
	}
}

// executeNumeric runs one ε cell on a private manager. algAmps is read-only
// shared data (the reference amplitudes from the algebraic run). The
// returned error is nil for completed (possibly Failed) runs, the context
// error for cancelled runs (whose partial Run is still returned), and a
// genuine error otherwise.
func executeNumeric(
	ctx context.Context, c *circuit.Circuit, eps float64, cfg Config,
	algAmps [][]alg.Q,
) (*Run, error) {
	// Numerical runs default to the max-magnitude normalization rule [29]:
	// keeping every edge weight at magnitude ≤ 1 is the numerically
	// stabilized state-of-the-art configuration the paper evaluates against.
	norm := core.NormMax
	if cfg.NumNormLeft {
		norm = core.NormLeft
	}
	run := &Run{Label: fmt.Sprintf("eps=%.0e", eps), Eps: eps, Norm: norm}
	if eps == 0 {
		run.Label = "eps=0"
	}
	m := core.NewManager[complex128](num.NewRing(eps), norm)
	s := newGovernedSim(m, c.N, cfg)
	start := time.Now()
	sampleIdx := 0
	err := s.RunCtx(ctx, c, func(i int, g circuit.Gate) bool {
		nodes, stop := trackGate(run, s.State, i, c, cfg)
		if nodes >= 0 {
			elapsed := time.Since(start).Seconds()
			sample := Sample{
				Gate:       i + 1,
				Nodes:      nodes,
				CumSeconds: elapsed,
				Norm:       math.Sqrt(m.Norm2(s.State)),
			}
			if cfg.MeasureError && sampleIdx < len(algAmps) {
				sample.Error = accuracy.VectorError(m.ToVector(s.State, c.N), algAmps[sampleIdx])
			}
			run.Samples = append(run.Samples, sample)
			sampleIdx++
			switch {
			case m.IsZero(s.State) || sample.Norm < 1e-9:
				run.Failed = true
				run.FailNote = "state collapsed to zero vector"
			case sample.Norm < 0.5 || sample.Norm > 2:
				// The paper's other invalid-state symptom: the evolution is
				// no longer norm-preserving (a "non-unitary" result).
				run.Failed = true
				run.FailNote = fmt.Sprintf("state norm diverged to %.3g", sample.Norm)
			}
		}
		return !stop
	})
	run.Total = time.Since(start)
	run.Stats = m.Stats()
	cancelled, ferr := noteRunError(run, err)
	if ferr != nil {
		return nil, fmt.Errorf("bench: numeric run ε=%g: %w", eps, ferr)
	}
	if cancelled {
		return run, ctx.Err()
	}
	return run, nil
}
