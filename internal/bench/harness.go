// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section V): it runs one benchmark circuit under a
// list of numerical tolerances ε and under the exact algebraic
// representation in lockstep, sampling after every stride gates the three
// quantities the paper plots — QMDD size (node count), accuracy
// (‖v_num/‖v_num‖ − v_alg‖₂), and cumulative run time — plus the
// algebraic-only statistics (coefficient bit widths, trivial-weight
// fraction) behind the paper's overhead discussion.
package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/accuracy"
	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/sim"
)

// Sample is one measured point of one run.
type Sample struct {
	Gate       int     // number of gates applied so far
	Nodes      int     // QMDD size of the state
	CumSeconds float64 // cumulative simulation time (this run only)
	Error      float64 // ‖v_num − v_alg‖₂; 0 (exact) for the algebraic run
	MaxBits    int     // max coefficient bit width (algebraic runs; 0 numeric)
	Norm       float64 // ‖state‖₂ as seen by the representation
}

// Run is one full simulation trace.
type Run struct {
	Label    string
	Eps      float64 // −1 for algebraic runs
	Norm     core.NormScheme
	Samples  []Sample
	Total    time.Duration
	Stats    core.Stats // manager counters at the end of the run
	Failed   bool       // representation collapsed to the zero vector
	FailNote string     // diagnosis, e.g. "state collapsed to zero vector"
}

// Config parameterizes a trade-off experiment.
type Config struct {
	Circuit *circuit.Circuit
	// EpsList are the tolerance settings of the numerical representation
	// (the paper sweeps 0, 1e−20, 1e−15, 1e−10, 1e−5, 1e−3).
	EpsList []float64
	// Algebraic adds the exact run (bold black graphs in Figs. 3–5).
	Algebraic bool
	// AlgNorm is the normalization scheme for the algebraic run.
	AlgNorm core.NormScheme
	// NumNormLeft switches the numerical runs from the default
	// max-magnitude normalization [29] to the classic leftmost rule. Under
	// the leftmost rule large tolerances fail as in the paper's Fig. 2/3
	// extreme — collapse to the all-zero vector — whereas the stabilized
	// rule usually fails by drifting to an O(1)-error state instead.
	NumNormLeft bool
	// Stride is the sampling period in gates (≥ 1).
	Stride int
	// MeasureError computes the accuracy metric at sample points. Requires
	// Algebraic (the exact reference) and expands 2^n amplitudes per sample
	// point, so keep n moderate when it is on.
	MeasureError bool
	// NodeCap aborts a numerical run whose diagram exceeds this size
	// (0 = no cap) — the "infeasible run time" regime of the paper.
	NodeCap int
}

// Result bundles all runs of one experiment.
type Result struct {
	Name string
	N    int
	Runs []*Run
}

// Execute runs the experiment.
func Execute(name string, cfg Config) (*Result, error) {
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	c := cfg.Circuit
	res := &Result{Name: name, N: c.N}

	// The algebraic run goes first: it provides the exact reference states.
	var algStates []core.Edge[alg.Q] // state after each sampled prefix
	var mAlg *core.Manager[alg.Q]
	if cfg.Algebraic {
		run := &Run{Label: "algebraic/" + cfg.AlgNorm.String(), Eps: -1, Norm: cfg.AlgNorm}
		mAlg = core.NewManager[alg.Q](alg.Ring{}, cfg.AlgNorm)
		s := sim.New(mAlg, c.N)
		start := time.Now()
		err := s.Run(c, func(i int, g circuit.Gate) bool {
			if (i+1)%cfg.Stride == 0 || i == c.Len()-1 {
				elapsed := time.Since(start).Seconds()
				run.Samples = append(run.Samples, Sample{
					Gate:       i + 1,
					Nodes:      s.State.NodeCount(),
					CumSeconds: elapsed,
					MaxBits:    mAlg.MaxWeightBitLen(s.State),
					Norm:       math.Sqrt(mAlg.Norm2(s.State)),
				})
				algStates = append(algStates, s.State)
			}
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("bench: algebraic run: %w", err)
		}
		run.Total = time.Since(start)
		run.Stats = mAlg.Stats()
		res.Runs = append(res.Runs, run)
	}

	for _, eps := range cfg.EpsList {
		run, err := executeNumeric(c, eps, cfg, mAlg, algStates)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

func executeNumeric(
	c *circuit.Circuit, eps float64, cfg Config,
	mAlg *core.Manager[alg.Q], algStates []core.Edge[alg.Q],
) (*Run, error) {
	// Numerical runs default to the max-magnitude normalization rule [29]:
	// keeping every edge weight at magnitude ≤ 1 is the numerically
	// stabilized state-of-the-art configuration the paper evaluates against.
	norm := core.NormMax
	if cfg.NumNormLeft {
		norm = core.NormLeft
	}
	run := &Run{Label: fmt.Sprintf("eps=%.0e", eps), Eps: eps, Norm: norm}
	if eps == 0 {
		run.Label = "eps=0"
	}
	m := core.NewManager[complex128](num.NewRing(eps), norm)
	s := sim.New(m, c.N)
	start := time.Now()
	sampleIdx := 0
	err := s.Run(c, func(i int, g circuit.Gate) bool {
		if (i+1)%cfg.Stride == 0 || i == c.Len()-1 {
			elapsed := time.Since(start).Seconds()
			sample := Sample{
				Gate:       i + 1,
				Nodes:      s.State.NodeCount(),
				CumSeconds: elapsed,
				Norm:       math.Sqrt(m.Norm2(s.State)),
			}
			if cfg.MeasureError && mAlg != nil && sampleIdx < len(algStates) {
				sample.Error = accuracy.StateError(m, s.State, mAlg, algStates[sampleIdx], c.N)
			}
			run.Samples = append(run.Samples, sample)
			sampleIdx++
			switch {
			case m.IsZero(s.State) || sample.Norm < 1e-9:
				run.Failed = true
				run.FailNote = "state collapsed to zero vector"
			case sample.Norm < 0.5 || sample.Norm > 2:
				// The paper's other invalid-state symptom: the evolution is
				// no longer norm-preserving (a "non-unitary" result).
				run.Failed = true
				run.FailNote = fmt.Sprintf("state norm diverged to %.3g", sample.Norm)
			}
			if cfg.NodeCap > 0 && sample.Nodes > cfg.NodeCap {
				run.Failed = true
				run.FailNote = fmt.Sprintf("node cap %d exceeded", cfg.NodeCap)
				return false
			}
		}
		return true
	})
	if err != nil && err != sim.ErrStopped {
		return nil, fmt.Errorf("bench: numeric run ε=%g: %w", eps, err)
	}
	run.Total = time.Since(start)
	run.Stats = m.Stats()
	return run, nil
}
