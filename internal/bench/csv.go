package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteCSV emits all samples of all runs as one tidy CSV with a run label
// column — directly plottable against the paper's figures.
func WriteCSV(w io.Writer, r *Result) error {
	if _, err := fmt.Fprintln(w, "experiment,run,gates,nodes,cum_seconds,error,max_bits,norm,failed"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		for _, s := range run.Samples {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.6f,%.6e,%d,%.6f,%v\n",
				r.Name, run.Label, s.Gate, s.Nodes, s.CumSeconds, s.Error, s.MaxBits, s.Norm, run.Failed); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary renders a per-run digest table: final node counts, peak node
// counts, total time, final error — the row set a reader compares against
// the corresponding figure.
func Summary(r *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "experiment %s (%d qubits)\n", r.Name, r.N)
	fmt.Fprintf(&sb, "%-22s %10s %10s %12s %14s %9s  %s\n",
		"run", "peak nodes", "final", "time (s)", "final error", "max bits", "status")
	for _, run := range r.Runs {
		peak, final := 0, 0
		finalErr := 0.0
		maxBits := 0
		for _, s := range run.Samples {
			if s.Nodes > peak {
				peak = s.Nodes
			}
			final = s.Nodes
			finalErr = s.Error
			if s.MaxBits > maxBits {
				maxBits = s.MaxBits
			}
		}
		status := "ok"
		if run.Failed {
			status = "FAILED: " + run.FailNote
		}
		fmt.Fprintf(&sb, "%-22s %10d %10d %12.3f %14.3e %9d  %s\n",
			run.Label, peak, final, run.Total.Seconds(), finalErr, maxBits, status)
	}
	return sb.String()
}

// StatsSummary renders a per-run table of the manager's hash-table counters:
// unique-table and compute-table hit rates, compute-table load factor, and
// the number of distinct interned weights. These are the knobs behind the
// perf numbers (a low CT hit rate suggests a larger -ctsize, a huge intern
// table signals weight churn under the chosen normalization scheme).
func StatsSummary(r *Result) string {
	rate := func(hits, lookups uint64) float64 {
		if lookups == 0 {
			return 0
		}
		return 100 * float64(hits) / float64(lookups)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "manager counters for %s\n", r.Name)
	fmt.Fprintf(&sb, "%-22s %10s %9s %10s %9s %8s %9s\n",
		"run", "nodes", "uniq hit%", "ct hit%", "ct load%", "weights", "prunes")
	for _, run := range r.Runs {
		st := run.Stats
		fmt.Fprintf(&sb, "%-22s %10d %8.1f%% %9.1f%% %8.1f%% %8d %9d\n",
			run.Label, st.UniqueNodes,
			rate(st.UniqueHits, st.UniqueLookups),
			rate(st.CTHits, st.CTLookups),
			100*st.CTLoadFactor(), st.InternedWeights, st.Prunes)
	}
	return sb.String()
}

// Series renders one ASCII chart (log-ish bucketed) of a quantity over
// applied gates for every run — a terminal stand-in for the paper's plots.
func Series(r *Result, quantity string, width int) string {
	if width <= 0 {
		width = 60
	}
	pick := func(s Sample) float64 {
		switch quantity {
		case "nodes":
			return float64(s.Nodes)
		case "error":
			return s.Error
		case "time":
			return s.CumSeconds
		case "bits":
			return float64(s.MaxBits)
		}
		return 0
	}
	maxVal := 0.0
	for _, run := range r.Runs {
		for _, s := range run.Samples {
			if v := pick(s); v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s over applied gates (full scale = %.4g)\n", quantity, maxVal)
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "%-22s ", run.Label)
		// Resample the trace to the requested width.
		n := len(run.Samples)
		if n == 0 { // cancelled or refused before the first sample point
			sb.WriteString("(no samples)\n")
			continue
		}
		for i := 0; i < width; i++ {
			idx := i * n / width
			if idx >= n {
				idx = n - 1
			}
			v := pick(run.Samples[idx]) / maxVal
			sb.WriteByte(" .:-=+*#%@"[bucket(v)])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func bucket(v float64) int {
	if v <= 0 {
		return 0
	}
	b := int(v*9) + 1
	if b > 9 {
		b = 9
	}
	return b
}

// RunByLabel returns the run with the given label (nil if absent).
func (r *Result) RunByLabel(label string) *Run {
	for _, run := range r.Runs {
		if run.Label == label {
			return run
		}
	}
	return nil
}

// Labels returns the sorted run labels.
func (r *Result) Labels() []string {
	out := make([]string, 0, len(r.Runs))
	for _, run := range r.Runs {
		out = append(out, run.Label)
	}
	sort.Strings(out)
	return out
}
