package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/alg"
	"repro/internal/core"
	"repro/internal/sim"

	"repro/internal/circuit"
)

// The ε tuner mechanizes the procedure the paper identifies as the hidden
// cost of numerical QMDDs: "an application-specific trade-off … needs to be
// conducted on a case-by-case basis", requiring "time-consuming fine-tuning
// of the corresponding parameters". Tune runs the given circuit once
// exactly (the reference) and then once per candidate ε, accepting the
// largest tolerance that stays within the node and error budgets — and
// reporting the total tuning cost, which is the price the algebraic
// representation never pays.

// TuneTrial is the outcome of one candidate tolerance.
type TuneTrial struct {
	Eps float64
	// PeakNodes is the exact per-gate peak state size of the trial run (not
	// the old strided-sample maximum, which could miss an over-budget peak
	// between samples and wrongly accept the tolerance).
	PeakNodes int
	Error     float64
	Time      time.Duration
	Failed    bool
	FailNote  string
	Accepted  bool
}

// TuneResult aggregates a tuning session.
type TuneResult struct {
	Trials []TuneTrial
	// Best is the accepted tolerance (largest accepted ε), or NaN when no
	// candidate met the budgets.
	Best float64
	// AlgebraicNodes/AlgebraicTime describe the reference run: the
	// configuration-free alternative.
	AlgebraicNodes int
	AlgebraicTime  time.Duration
	// TotalTuningTime is the wall-clock cost of the whole search
	// (reference + every trial).
	TotalTuningTime time.Duration
}

// Tune searches the candidate tolerances (typically descending from large
// to small) for the largest ε whose run keeps the peak diagram size within
// maxNodes and the final state error within maxError.
func Tune(c *circuit.Circuit, candidates []float64, maxNodes int, maxError float64) (*TuneResult, error) {
	return TuneCtx(context.Background(), c, candidates, maxNodes, maxError)
}

// TuneCtx is Tune under a context. On cancellation the trials completed so
// far are returned alongside the context error, so a caller can still
// report the partial search.
func TuneCtx(ctx context.Context, c *circuit.Circuit, candidates []float64, maxNodes int, maxError float64) (*TuneResult, error) {
	start := time.Now()
	res := &TuneResult{Best: math.NaN()}
	defer func() { res.TotalTuningTime = time.Since(start) }()

	// Exact reference run, tracking the exact per-gate peak.
	mAlg := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	sa := sim.New(mAlg, c.N)
	algStart := time.Now()
	peakAlg := 0
	err := sa.RunCtx(ctx, c, func(i int, g circuit.Gate) bool {
		if n := sa.State.NodeCount(); n > peakAlg {
			peakAlg = n
		}
		return true
	})
	res.AlgebraicTime = time.Since(algStart)
	res.AlgebraicNodes = peakAlg
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return res, ctx.Err()
		}
		return nil, fmt.Errorf("bench: tuning reference run: %w", err)
	}

	for _, eps := range candidates {
		r, err := ExecuteCtx(ctx, fmt.Sprintf("tune-%g", eps), Config{
			Circuit:      c,
			EpsList:      []float64{eps},
			Algebraic:    true, // reference for the error metric
			Stride:       maxInt(1, c.Len()/16),
			MeasureError: true,
			TrackPeak:    true,         // exact peaks: a between-samples spike must count
			PeakCap:      maxNodes * 4, // abort hopeless runs early
		})
		cancelled := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		if err != nil && !cancelled {
			return nil, err
		}
		if len(r.Runs) > 0 {
			run := r.Runs[len(r.Runs)-1] // the numeric run (or partial reference)
			if run.Eps >= 0 {            // only record actual numeric trials
				trial := TuneTrial{
					Eps: eps, PeakNodes: run.PeakNodes, Time: run.Total,
					Failed: run.Failed, FailNote: run.FailNote,
				}
				for _, s := range run.Samples {
					trial.Error = s.Error
				}
				trial.Accepted = !trial.Failed && trial.PeakNodes <= maxNodes && trial.Error <= maxError
				res.Trials = append(res.Trials, trial)
				if trial.Accepted && (math.IsNaN(res.Best) || eps > res.Best) {
					res.Best = eps
				}
			}
		}
		if cancelled {
			return res, ctx.Err()
		}
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Report renders the tuning session as a table.
func (r *TuneResult) Report() string {
	out := fmt.Sprintf("%-12s %12s %14s %12s %s\n", "epsilon", "peak nodes", "final error", "time", "verdict")
	for _, t := range r.Trials {
		verdict := "rejected"
		if t.Accepted {
			verdict = "ACCEPTED"
		}
		if t.Failed {
			verdict = "FAILED: " + t.FailNote
		}
		out += fmt.Sprintf("%-12.0e %12d %14.3e %12v %s\n", t.Eps, t.PeakNodes, t.Error, t.Time.Round(time.Millisecond), verdict)
	}
	if math.IsNaN(r.Best) {
		out += "no tolerance met the budgets\n"
	} else {
		out += fmt.Sprintf("chosen ε = %.0e after %v of tuning\n", r.Best, r.TotalTuningTime.Round(time.Millisecond))
	}
	out += fmt.Sprintf("algebraic alternative: %d peak nodes, %v, zero error, zero tuning\n",
		r.AlgebraicNodes, r.AlgebraicTime.Round(time.Millisecond))
	return out
}
