package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/alg"
	"repro/internal/core"
	"repro/internal/sim"

	"repro/internal/circuit"
)

// The ε tuner mechanizes the procedure the paper identifies as the hidden
// cost of numerical QMDDs: "an application-specific trade-off … needs to be
// conducted on a case-by-case basis", requiring "time-consuming fine-tuning
// of the corresponding parameters". Tune runs the given circuit once
// exactly (the reference) and then once per candidate ε, accepting the
// largest tolerance that stays within the node and error budgets — and
// reporting the total tuning cost, which is the price the algebraic
// representation never pays.

// TuneTrial is the outcome of one candidate tolerance.
type TuneTrial struct {
	Eps float64
	// PeakNodes is the exact per-gate peak state size of the trial run (not
	// the old strided-sample maximum, which could miss an over-budget peak
	// between samples and wrongly accept the tolerance).
	PeakNodes int
	Error     float64
	Time      time.Duration
	Failed    bool
	FailNote  string
	Accepted  bool
}

// TuneResult aggregates a tuning session.
type TuneResult struct {
	Trials []TuneTrial
	// Best is the accepted tolerance (largest accepted ε), or NaN when no
	// candidate met the budgets.
	Best float64
	// AlgebraicNodes/AlgebraicTime describe the reference run: the
	// configuration-free alternative.
	AlgebraicNodes int
	AlgebraicTime  time.Duration
	// TotalTuningTime is the wall-clock cost of the whole search
	// (reference + every trial).
	TotalTuningTime time.Duration
	// Workers holds the pool's per-worker utilization when the candidate
	// trials ran on more than one worker (diagnostics only).
	Workers []WorkerStat
}

// TuneParams parameterizes a tuning session.
type TuneParams struct {
	// Candidates are the tolerances to try, typically descending from large
	// to small.
	Candidates []float64
	// MaxNodes is the peak-diagram-size acceptance budget.
	MaxNodes int
	// MaxError is the final-state error acceptance budget.
	MaxError float64
	// Parallel bounds the worker pool fanning the candidate trials out to
	// share-nothing managers: 0 = GOMAXPROCS, 1 = sequential. The trial
	// table, Best and everything except timing fields are identical for
	// every setting.
	Parallel int
}

// Tune searches the candidate tolerances (typically descending from large
// to small) for the largest ε whose run keeps the peak diagram size within
// maxNodes and the final state error within maxError.
func Tune(c *circuit.Circuit, candidates []float64, maxNodes int, maxError float64) (*TuneResult, error) {
	return TuneCtx(context.Background(), c, candidates, maxNodes, maxError)
}

// TuneCtx is Tune under a context (sequential trials, for compatibility).
// On cancellation the trials completed so far are returned alongside the
// context error, so a caller can still report the partial search.
func TuneCtx(ctx context.Context, c *circuit.Circuit, candidates []float64, maxNodes int, maxError float64) (*TuneResult, error) {
	return TuneWith(ctx, c, TuneParams{Candidates: candidates, MaxNodes: maxNodes, MaxError: maxError, Parallel: 1})
}

// TuneWith is the pool-aware tuner: the exact reference run goes first
// (it anchors the node budget), then every candidate trial runs as one
// pool cell with private managers. Trials are merged in candidate order
// and Best is chosen after the merge, so the session is deterministic for
// any worker count.
func TuneWith(ctx context.Context, c *circuit.Circuit, p TuneParams) (*TuneResult, error) {
	start := time.Now()
	res := &TuneResult{Best: math.NaN()}
	defer func() { res.TotalTuningTime = time.Since(start) }()
	candidates, maxNodes, maxError := p.Candidates, p.MaxNodes, p.MaxError

	// Exact reference run, tracking the exact per-gate peak.
	mAlg := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	sa := sim.New(mAlg, c.N)
	algStart := time.Now()
	peakAlg := 0
	err := sa.RunCtx(ctx, c, func(i int, g circuit.Gate) bool {
		if n := sa.State.NodeCount(); n > peakAlg {
			peakAlg = n
		}
		return true
	})
	res.AlgebraicTime = time.Since(algStart)
	res.AlgebraicNodes = peakAlg
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return res, ctx.Err()
		}
		return nil, fmt.Errorf("bench: tuning reference run: %w", err)
	}

	trials := make([]*TuneTrial, len(candidates))
	pool := Pool{Workers: p.Parallel}
	stats, perr := pool.Run(ctx, len(candidates), func(ctx context.Context, i int) (int, error) {
		eps := candidates[i]
		r, err := ExecuteCtx(ctx, fmt.Sprintf("tune-%g", eps), Config{
			Circuit:      c,
			EpsList:      []float64{eps},
			Algebraic:    true, // reference for the error metric
			Stride:       maxInt(1, c.Len()/16),
			MeasureError: true,
			TrackPeak:    true,         // exact peaks: a between-samples spike must count
			PeakCap:      maxNodes * 4, // abort hopeless runs early
			Parallel:     1,            // one pool: the cell is the unit of fan-out
		})
		cancelled := err != nil && isCtxErr(err)
		if err != nil && !cancelled {
			return 0, err
		}
		peak := 0
		if r != nil && len(r.Runs) > 0 {
			run := r.Runs[len(r.Runs)-1] // the numeric run (or partial reference)
			if run.Eps >= 0 {            // only record actual numeric trials
				trial := &TuneTrial{
					Eps: eps, PeakNodes: run.PeakNodes, Time: run.Total,
					Failed: run.Failed, FailNote: run.FailNote,
				}
				for _, s := range run.Samples {
					trial.Error = s.Error
				}
				trial.Accepted = !trial.Failed && trial.PeakNodes <= maxNodes && trial.Error <= maxError
				trials[i] = trial // sole writer of this slot
				peak = run.PeakNodes
			}
		}
		if cancelled {
			return peak, ctx.Err()
		}
		return peak, nil
	})
	// Merge in candidate order; Best falls out deterministically.
	for _, trial := range trials {
		if trial == nil {
			continue
		}
		res.Trials = append(res.Trials, *trial)
		if trial.Accepted && (math.IsNaN(res.Best) || trial.Eps > res.Best) {
			res.Best = trial.Eps
		}
	}
	if len(stats) > 1 {
		res.Workers = stats
	}
	if perr != nil {
		if isCtxErr(perr) {
			return res, ctx.Err()
		}
		return nil, perr
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Report renders the tuning session as a table.
func (r *TuneResult) Report() string {
	out := fmt.Sprintf("%-12s %12s %14s %12s %s\n", "epsilon", "peak nodes", "final error", "time", "verdict")
	for _, t := range r.Trials {
		verdict := "rejected"
		if t.Accepted {
			verdict = "ACCEPTED"
		}
		if t.Failed {
			verdict = "FAILED: " + t.FailNote
		}
		out += fmt.Sprintf("%-12.0e %12d %14.3e %12v %s\n", t.Eps, t.PeakNodes, t.Error, t.Time.Round(time.Millisecond), verdict)
	}
	if math.IsNaN(r.Best) {
		out += "no tolerance met the budgets\n"
	} else {
		out += fmt.Sprintf("chosen ε = %.0e after %v of tuning\n", r.Best, r.TotalTuningTime.Round(time.Millisecond))
	}
	out += fmt.Sprintf("algebraic alternative: %d peak nodes, %v, zero error, zero tuning\n",
		r.AlgebraicNodes, r.AlgebraicTime.Round(time.Millisecond))
	return out
}
