package bench

import (
	"strings"
	"testing"
)

// smallParams keeps the harness tests fast while preserving the phenomena.
func smallParams() FigureParams {
	p := DefaultParams()
	p.GroverQubits = 7
	p.BWTDepth = 5
	p.BWTSteps = 24
	p.GSEPhaseBits = 2
	p.GSETrotter = 1
	p.GSESKDepth = 1
	p.SynthNetLen = 10
	p.Stride = 32
	p.EpsList = []float64{0, 1e-10, 1e-3}
	return p
}

// TestFig3ShapesGrover asserts the qualitative claims of Fig. 3: ε = 0
// cannot exploit redundancies (node blowup), a moderate ε matches the
// algebraic size with small error, and ε = 10⁻³ corrupts the state.
func TestFig3ShapesGrover(t *testing.T) {
	res, err := Figure("3", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	algRun := res.RunByLabel("algebraic/left")
	e0 := res.RunByLabel("eps=0")
	eMid := res.RunByLabel("eps=1e-10")
	eBig := res.RunByLabel("eps=1e-03")
	if algRun == nil || e0 == nil || eMid == nil || eBig == nil {
		t.Fatalf("missing runs: %v", res.Labels())
	}
	peak := func(r *Run) int {
		p := 0
		for _, s := range r.Samples {
			if s.Nodes > p {
				p = s.Nodes
			}
		}
		return p
	}
	finalErr := func(r *Run) float64 { return r.Samples[len(r.Samples)-1].Error }

	if peak(e0) < 3*peak(algRun) {
		t.Fatalf("ε=0 did not blow up: %d vs algebraic %d", peak(e0), peak(algRun))
	}
	if peak(eMid) > 2*peak(algRun) {
		t.Fatalf("ε=1e-10 not compact: %d vs algebraic %d", peak(eMid), peak(algRun))
	}
	if finalErr(e0) > 1e-10 || finalErr(eMid) > 1e-10 {
		t.Fatalf("small-ε runs inaccurate: %v, %v", finalErr(e0), finalErr(eMid))
	}
	if !eBig.Failed && finalErr(eBig) < 1e-4 {
		t.Fatalf("ε=1e-3 run neither failed nor inaccurate (err %v)", finalErr(eBig))
	}
	// The algebraic run is exact by construction.
	for _, s := range algRun.Samples {
		if s.Error != 0 {
			t.Fatal("algebraic run reported nonzero error")
		}
	}
	// Bit widths grow over the algebraic run (the Section V-B statistic).
	if algRun.Samples[len(algRun.Samples)-1].MaxBits <= algRun.Samples[0].MaxBits {
		t.Fatalf("coefficient bit widths did not grow: %d → %d",
			algRun.Samples[0].MaxBits, algRun.Samples[len(algRun.Samples)-1].MaxBits)
	}
}

// TestFig4ShapesBWT: same harness on the welded-tree walk; the algebraic
// diagram must stay compact relative to the ε = 0 numeric run.
func TestFig4ShapesBWT(t *testing.T) {
	res, err := Figure("4", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	algRun := res.RunByLabel("algebraic/left")
	e0 := res.RunByLabel("eps=0")
	if algRun == nil || e0 == nil {
		t.Fatalf("missing runs: %v", res.Labels())
	}
	if lastErr := e0.Samples[len(e0.Samples)-1].Error; lastErr > 1e-10 {
		t.Fatalf("ε=0 BWT error unexpectedly large: %v", lastErr)
	}
}

// TestFig2And5GSE: the Clifford+T-compiled GSE circuit runs under both
// representations; the algebraic coefficients grow much wider than on
// Grover-like workloads.
func TestFig2And5GSE(t *testing.T) {
	p := smallParams()
	res, err := Figure("5", p)
	if err != nil {
		t.Fatal(err)
	}
	algRun := res.RunByLabel("algebraic/left")
	if algRun == nil {
		t.Fatalf("missing algebraic run: %v", res.Labels())
	}
	maxBits := 0
	for _, s := range algRun.Samples {
		if s.MaxBits > maxBits {
			maxBits = s.MaxBits
		}
	}
	if maxBits < 16 {
		t.Fatalf("GSE bit widths suspiciously small: %d", maxBits)
	}
	// Figure "2" variant (sizes only) also runs.
	res2, err := Figure("2", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Runs) != len(p.EpsList)+1 {
		t.Fatalf("fig2 produced %d runs", len(res2.Runs))
	}
}

// TestNormSchemeComparison reproduces the Section V-B claim on a small BWT:
// all schemes yield identical (canonical) sizes, and the Q[ω]-inverse scheme
// keeps at least half of the edge weights trivial.
func TestNormSchemeComparison(t *testing.T) {
	p := smallParams()
	res, err := NormSchemeComparison(BWTCircuit(p), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("expected 3 runs, got %d", len(res.Runs))
	}
	var sizes []int
	for _, r := range res.Runs {
		sizes = append(sizes, r.Samples[len(r.Samples)-1].Nodes)
	}
	if sizes[0] != sizes[1] || sizes[1] != sizes[2] {
		t.Fatalf("normalization schemes disagree on canonical size: %v", sizes)
	}
}

func TestCSVAndSummaryOutput(t *testing.T) {
	p := smallParams()
	p.EpsList = []float64{1e-10}
	p.MeasureError = false
	res, err := Figure("4", p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "experiment,run,gates,nodes") {
		t.Fatalf("CSV header missing:\n%s", out[:80])
	}
	if strings.Count(out, "\n") < 3 {
		t.Fatal("CSV suspiciously short")
	}
	sum := Summary(res)
	if !strings.Contains(sum, "algebraic/left") || !strings.Contains(sum, "peak nodes") {
		t.Fatalf("summary malformed:\n%s", sum)
	}
	chart := Series(res, "nodes", 40)
	if !strings.Contains(chart, "nodes over applied gates") {
		t.Fatalf("series chart malformed:\n%s", chart)
	}
}

// TestNodeCapAbortsRun: the harness stops runs that exceed the cap, marking
// them as the paper's "infeasible run time" regime.
func TestNodeCapAbortsRun(t *testing.T) {
	p := smallParams()
	res, err := Execute("cap", Config{
		Circuit: GroverCircuit(p),
		EpsList: []float64{0},
		Stride:  8,
		PeakCap: 10, // absurdly low: must trip immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	run := res.Runs[0]
	if !run.Failed || !strings.Contains(run.FailNote, "node cap") {
		t.Fatalf("cap did not trip: %+v", run.FailNote)
	}
}

func TestExecuteRejectsNothing(t *testing.T) {
	if _, err := Figure("9", smallParams()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestInvalidStateFailure reproduces the paper's most dramatic failure mode
// (Fig. 2 / Example 5): with the classic leftmost normalization and a large
// tolerance, the numerical simulation produces an invalid quantum state —
// either the all-zero vector ("perfectly compact but obviously wrong") or a
// state whose norm has diverged (a non-unitary evolution). Which of the two
// symptoms appears depends on the instance size.
func TestInvalidStateFailure(t *testing.T) {
	p := smallParams()
	// 8 qubits: enough Grover iterations for ε = 10⁻³ rounding to snowball
	// into the zero vector. (At 7 qubits the nearest-representative interning
	// rule keeps the state merely inaccurate, norm ≈ 0.9, not invalid.)
	p.GroverQubits = 8
	res, err := Execute("collapse", Config{
		Circuit:     GroverCircuit(p),
		EpsList:     []float64{1e-3},
		Stride:      16,
		NumNormLeft: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := res.Runs[0]
	if !run.Failed {
		t.Fatalf("expected an invalid-state failure, got none (final norm %v)",
			run.Samples[len(run.Samples)-1].Norm)
	}
	if !strings.Contains(run.FailNote, "zero vector") && !strings.Contains(run.FailNote, "norm diverged") {
		t.Fatalf("unexpected failure note %q", run.FailNote)
	}
}

// TestTuneFindsWorkableEpsilon: the tuner accepts a mid-range ε on Grover,
// rejects the too-coarse one, and reports the exact reference.
func TestTuneFindsWorkableEpsilon(t *testing.T) {
	c := GroverCircuit(smallParams())
	res, err := Tune(c, []float64{1e-3, 1e-10}, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 2 {
		t.Fatalf("trials: %d", len(res.Trials))
	}
	if res.Trials[0].Accepted {
		t.Fatalf("ε=1e-3 accepted: %+v", res.Trials[0])
	}
	if !res.Trials[1].Accepted {
		t.Fatalf("ε=1e-10 rejected: %+v", res.Trials[1])
	}
	if res.Best != 1e-10 {
		t.Fatalf("chosen ε = %v", res.Best)
	}
	if res.AlgebraicNodes == 0 || res.AlgebraicTime == 0 {
		t.Fatal("reference statistics missing")
	}
	if !strings.Contains(res.Report(), "ACCEPTED") {
		t.Fatal("report missing verdicts")
	}
}
