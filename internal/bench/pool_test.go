package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestPoolRunsEveryCellOnce: every cell index is executed exactly once and
// the worker stats account for all of them.
func TestPoolRunsEveryCellOnce(t *testing.T) {
	const n = 64
	var ran [n]atomic.Int32
	p := Pool{Workers: 4}
	stats, err := p.Run(context.Background(), n, func(ctx context.Context, i int) (int, error) {
		ran[i].Add(1)
		return i + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("cell %d ran %d times", i, got)
		}
	}
	cells, peak := 0, 0
	for _, st := range stats {
		cells += st.Cells
		if st.PeakNodes > peak {
			peak = st.PeakNodes
		}
	}
	if cells != n {
		t.Fatalf("worker stats account for %d cells, want %d", cells, n)
	}
	if peak != n {
		t.Fatalf("peak across workers %d, want %d (cell n−1 reported n)", peak, n)
	}
}

// TestPoolFatalErrorSmallestIndex: when several cells fail, Run reports the
// failure with the smallest index — the one the sequential sweep would have
// hit first — regardless of completion order, and stops dispatching.
func TestPoolFatalErrorSmallestIndex(t *testing.T) {
	const n = 32
	errLow := errors.New("low")
	errHigh := errors.New("high")
	var started atomic.Int32
	p := Pool{Workers: 4}
	_, err := p.Run(context.Background(), n, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		switch i {
		case 9:
			// Fail late so the higher-index failure is recorded first.
			time.Sleep(20 * time.Millisecond)
			return 0, errLow
		case 10:
			return 0, errHigh
		default:
			time.Sleep(time.Millisecond)
			return 0, nil
		}
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("want smallest-index error %v, got %v", errLow, err)
	}
	if got := started.Load(); got == n {
		t.Fatalf("fatal error did not stop dispatch: all %d cells started", got)
	}
}

// TestPoolCtxErrorsAreNotFatal: a cell that comes back with a context error
// (the governed "this run was cancelled" outcome the harness folds into the
// run record) must not abort its siblings.
func TestPoolCtxErrorsAreNotFatal(t *testing.T) {
	const n = 16
	var ran atomic.Int32
	p := Pool{Workers: 4}
	_, err := p.Run(context.Background(), n, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("cell: %w", context.Canceled)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatalf("ctx-shaped cell error escalated to fatal: %v", err)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("only %d/%d cells ran", got, n)
	}
}

// TestPoolCancellationDrains: cancelling the context stops dispatch, the
// in-flight cells observe it, and Run returns only after they unwound.
func TestPoolCancellationDrains(t *testing.T) {
	const n = 64
	ctx, cancel := context.WithCancel(context.Background())
	var started, unwound atomic.Int32
	p := Pool{Workers: 4}
	stats, err := p.Run(ctx, n, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		defer unwound.Add(1)
		if i == 2 {
			cancel()
		}
		<-ctx.Done() // every in-flight cell sees the cancellation
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s, u := started.Load(), unwound.Load(); s != u {
		t.Fatalf("Run returned with %d of %d cells still in flight", s-u, s)
	}
	if started.Load() == n {
		t.Fatal("cancellation did not stop dispatch")
	}
	if len(stats) == 0 {
		t.Fatal("stats missing on cancelled run")
	}
}

// sameRuns compares two run slices on everything the CSV and figures derive
// from diagram arithmetic — labels, per-sample node counts, errors, bit
// widths, norms, peaks, failure verdicts, manager counters — ignoring only
// the wall-clock fields (CumSeconds, Total), which legitimately vary.
func sameRuns(t *testing.T, seq, par []*Run) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("run counts differ: %d vs %d", len(seq), len(par))
	}
	for k := range seq {
		a, b := seq[k], par[k]
		if a.Label != b.Label || a.Eps != b.Eps || a.Norm != b.Norm {
			t.Fatalf("run %d identity differs: %q/%v/%v vs %q/%v/%v",
				k, a.Label, a.Eps, a.Norm, b.Label, b.Eps, b.Norm)
		}
		if a.PeakNodes != b.PeakNodes || a.Failed != b.Failed || a.FailNote != b.FailNote {
			t.Fatalf("run %q verdict differs: peak %d/%d failed %v/%v note %q/%q",
				a.Label, a.PeakNodes, b.PeakNodes, a.Failed, b.Failed, a.FailNote, b.FailNote)
		}
		if a.Stats != b.Stats {
			t.Fatalf("run %q manager counters differ:\nseq: %+v\npar: %+v", a.Label, a.Stats, b.Stats)
		}
		if len(a.Samples) != len(b.Samples) {
			t.Fatalf("run %q sample counts differ: %d vs %d", a.Label, len(a.Samples), len(b.Samples))
		}
		for i := range a.Samples {
			sa, sb := a.Samples[i], b.Samples[i]
			if sa.Gate != sb.Gate || sa.Nodes != sb.Nodes || sa.Error != sb.Error ||
				sa.MaxBits != sb.MaxBits || sa.Norm != sb.Norm {
				t.Fatalf("run %q sample %d differs:\nseq: %+v\npar: %+v", a.Label, i, sa, sb)
			}
		}
	}
}

// TestExecuteParallelDeterminism is the pool's core guarantee: the merged
// Result of a parallel sweep is identical to the sequential one in every
// field the CSV and figures use — only timing may differ.
func TestExecuteParallelDeterminism(t *testing.T) {
	p := smallParams()
	p.GroverQubits = 6
	cfg := Config{
		Circuit:      GroverCircuit(p),
		EpsList:      []float64{0, 1e-10, 1e-3},
		Algebraic:    true,
		AlgNorm:      core.NormLeft,
		Stride:       16,
		MeasureError: true,
	}
	cfg.Parallel = 1
	seq, err := Execute("det", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	par, err := Execute("det", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameRuns(t, seq.Runs, par.Runs)
	if len(seq.Workers) != 0 {
		t.Fatal("sequential run reported pool worker stats")
	}
	if len(par.Workers) == 0 {
		t.Fatal("parallel run reported no worker stats")
	}
}

// TestExecuteBatch: a mixed run list comes back indexed like its items, with
// worker stats, and parallel results equal to sequential ones.
func TestExecuteBatch(t *testing.T) {
	p := smallParams()
	p.GroverQubits = 5
	items := []BatchItem{
		{Name: "a", Config: Config{Circuit: GroverCircuit(p), EpsList: []float64{1e-10}, Stride: 8}},
		{Name: "b", Config: Config{Circuit: GroverCircuit(p), EpsList: []float64{0}, Stride: 8}},
		{Name: "c", Config: Config{Circuit: GroverCircuit(p), Algebraic: true, AlgNorm: core.NormLeft, Stride: 8}},
	}
	seq, _, err := ExecuteBatch(context.Background(), items, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := ExecuteBatch(context.Background(), items, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(items) || len(stats) != 3 {
		t.Fatalf("batch shape: %d results, %d workers", len(par), len(stats))
	}
	for i := range items {
		if par[i] == nil || par[i].Name != items[i].Name {
			t.Fatalf("result %d is not item %q", i, items[i].Name)
		}
		sameRuns(t, seq[i].Runs, par[i].Runs)
	}
}

// TestTuneWithParallelDeterminism: the tuner's verdicts and chosen ε are
// identical whether candidates run sequentially or on the pool.
func TestTuneWithParallelDeterminism(t *testing.T) {
	c := GroverCircuit(smallParams())
	params := TuneParams{Candidates: []float64{1e-3, 1e-10}, MaxNodes: 100, MaxError: 1e-10}
	seq, err := TuneWith(context.Background(), c, params)
	if err != nil {
		t.Fatal(err)
	}
	params.Parallel = 2
	par, err := TuneWith(context.Background(), c, params)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Best != par.Best {
		t.Fatalf("chosen ε differs: %v vs %v", seq.Best, par.Best)
	}
	if len(seq.Trials) != len(par.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(seq.Trials), len(par.Trials))
	}
	for i := range seq.Trials {
		a, b := seq.Trials[i], par.Trials[i]
		if a.Eps != b.Eps || a.Accepted != b.Accepted || a.PeakNodes != b.PeakNodes ||
			a.Error != b.Error || a.FailNote != b.FailNote {
			t.Fatalf("trial %d differs:\nseq: %+v\npar: %+v", i, a, b)
		}
	}
	if len(par.Workers) == 0 {
		t.Fatal("parallel tune reported no worker stats")
	}
}

func TestWorkerReport(t *testing.T) {
	out := WorkerReport([]WorkerStat{
		{Cells: 2, Busy: 1500 * time.Millisecond, PeakNodes: 99},
		{Cells: 1, Busy: 300 * time.Millisecond, PeakNodes: 7},
	})
	if !strings.Contains(out, "pool: 2 worker(s)") || !strings.Contains(out, "peak 99 nodes") {
		t.Fatalf("malformed report:\n%s", out)
	}
	if WorkerReport(nil) != "" {
		t.Fatal("empty stats should render nothing")
	}
}
