package bench

import (
	"context"
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/synth"
)

// PaperEpsList is the tolerance sweep of the paper's Figs. 3–5.
var PaperEpsList = []float64{0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3}

// FigureParams scales an experiment: the paper's sizes take hours on its
// 3.8 GHz testbed; the defaults here reproduce the *shapes* in seconds.
// Pass the paper's sizes explicitly to reproduce at full scale.
type FigureParams struct {
	GroverQubits int // paper: 15
	BWTDepth     int
	BWTSteps     int
	GSEPhaseBits int
	GSETrotter   int
	GSESKDepth   int // Solovay–Kitaev recursion depth for GSE compilation
	SynthNetLen  int // base-net word length for the synthesizer
	Stride       int
	MeasureError bool
	// Budget governs every run's manager (max live nodes / interned
	// weights / approximate bytes / deadline); replaces the old ad-hoc
	// node cap. A run that trips it is reported Failed with partial
	// samples, never aborted by panic or OOM.
	Budget  core.Budget
	EpsList []float64
	// NumNormLeft switches the numerical runs to the classic leftmost
	// normalization (see Config.NumNormLeft).
	NumNormLeft bool
	// Parallel bounds the worker pool fanning the sweep cells out to
	// share-nothing managers (see Config.Parallel): 0 = GOMAXPROCS,
	// 1 = sequential. Output is identical for every setting.
	Parallel int
	// IntraWorkers enables intra-operation parallelism inside each run's
	// manager (see Config.IntraWorkers). Output is identical for every
	// setting.
	IntraWorkers int
}

// DefaultParams returns CI-scale parameters.
func DefaultParams() FigureParams {
	return FigureParams{
		GroverQubits: 8,
		BWTDepth:     6,
		BWTSteps:     60,
		GSEPhaseBits: 3,
		GSETrotter:   2,
		GSESKDepth:   1,
		SynthNetLen:  10,
		Stride:       16,
		MeasureError: true,
		Budget:       core.Budget{MaxNodes: 200000},
		EpsList:      PaperEpsList,
	}
}

// GroverCircuit builds the Fig. 3 workload.
func GroverCircuit(p FigureParams) *circuit.Circuit {
	marked := uint64(1)<<uint(p.GroverQubits) - 2 // arbitrary non-trivial element
	return algorithms.Grover(p.GroverQubits, marked, 0)
}

// BWTCircuit builds the Fig. 4 workload.
func BWTCircuit(p FigureParams) *circuit.Circuit {
	return algorithms.BWT(p.BWTDepth, p.BWTSteps)
}

// GSECircuit builds the Figs. 2/5 workload: phase estimation over the H₂
// Hamiltonian compiled to Clifford+T with the Solovay–Kitaev synthesizer.
func GSECircuit(p FigureParams) (*circuit.Circuit, error) {
	raw := algorithms.GSE(algorithms.GSEConfig{
		Hamiltonian: algorithms.H2Hamiltonian(),
		PhaseBits:   p.GSEPhaseBits,
		Time:        0.75,
		Trotter:     p.GSETrotter,
		PrepareX:    []int{0},
	})
	s := synth.New(p.SynthNetLen)
	ct, _, err := algorithms.CompileCliffordT(raw, s, p.GSESKDepth)
	return ct, err
}

// Figure runs one of the paper's experiments by figure number:
// "2" (GSE size-vs-ε), "3" (Grover), "4" (BWT), "5" (GSE, full panels).
func Figure(fig string, p FigureParams) (*Result, error) {
	return FigureCtx(context.Background(), fig, p)
}

// FigureCtx is Figure under a context; on cancellation the partial Result
// is returned alongside the context error.
func FigureCtx(ctx context.Context, fig string, p FigureParams) (*Result, error) {
	mk := func(name string, c *circuit.Circuit, measureErr bool) (*Result, error) {
		return ExecuteCtx(ctx, name, Config{
			Circuit:      c,
			EpsList:      p.EpsList,
			Algebraic:    true,
			AlgNorm:      core.NormLeft,
			Stride:       p.Stride,
			MeasureError: measureErr,
			Budget:       p.Budget,
			NumNormLeft:  p.NumNormLeft,
			Parallel:     p.Parallel,
			IntraWorkers: p.IntraWorkers,
		})
	}
	switch fig {
	case "2":
		c, err := GSECircuit(p)
		if err != nil {
			return nil, err
		}
		// Fig. 2 only plots sizes; skip the error expansion for speed.
		return mk("fig2-gse-size-vs-eps", c, false)
	case "3":
		return mk("fig3-grover", GroverCircuit(p), p.MeasureError)
	case "4":
		return mk("fig4-bwt", BWTCircuit(p), p.MeasureError)
	case "5":
		c, err := GSECircuit(p)
		if err != nil {
			return nil, err
		}
		return mk("fig5-gse", c, p.MeasureError)
	}
	return nil, fmt.Errorf("bench: unknown figure %q (want 2, 3, 4 or 5)", fig)
}

// NormSchemeComparison runs the same circuit under the two algebraic
// normalization schemes of Section IV-B (Q[ω] inverses vs D[ω] GCDs) plus
// the max-magnitude variant, reproducing the paper's Section V-B
// observation that the GCD scheme never wins.
func NormSchemeComparison(c *circuit.Circuit, stride int) (*Result, error) {
	return NormSchemeComparisonCtx(context.Background(), c, stride, 1)
}

// NormSchemeComparisonCtx is NormSchemeComparison under a context, with the
// three scheme runs fanned out as an ExecuteBatch over share-nothing
// managers (parallel: 0 = GOMAXPROCS, 1 = sequential). The merged runs are
// always in scheme order — left, max, gcd — whatever the worker count.
func NormSchemeComparisonCtx(ctx context.Context, c *circuit.Circuit, stride, parallel int) (*Result, error) {
	schemes := []core.NormScheme{core.NormLeft, core.NormMax, core.NormGCD}
	items := make([]BatchItem, len(schemes))
	for i, norm := range schemes {
		items[i] = BatchItem{
			Name: fmt.Sprintf("norm-%s", norm),
			Config: Config{
				Circuit:   c,
				Algebraic: true,
				AlgNorm:   norm,
				Stride:    stride,
			},
		}
	}
	results, stats, err := ExecuteBatch(ctx, items, parallel)
	res := &Result{Name: "norm-schemes", N: c.N}
	for _, r := range results {
		if r != nil {
			res.Runs = append(res.Runs, r.Runs...)
		}
	}
	if len(stats) > 1 {
		res.Workers = stats
	}
	return res, err
}
