package ddio

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/sim"
)

func TestAlgRoundTripState(t *testing.T) {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	c := algorithms.Grover(6, 11, 0)
	s := sim.New(m, 6)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, m, AlgCodec{}, s.State, 6); err != nil {
		t.Fatal(err)
	}
	got, qubits, err := Read(strings.NewReader(sb.String()), m, AlgCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if qubits != 6 {
		t.Fatalf("qubits = %d", qubits)
	}
	if !m.RootsEqual(got, s.State) {
		t.Fatal("round trip changed the diagram")
	}
}

func TestAlgRoundTripMatrixIntoFreshManager(t *testing.T) {
	m1 := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	c := algorithms.BernsteinVazirani(4, 0b1011)
	u, err := sim.BuildUnitary(m1, c)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, m1, AlgCodec{}, u, c.N); err != nil {
		t.Fatal(err)
	}
	// Import into a manager with a *different* normalization scheme: the
	// semantics must survive re-canonicalization.
	m2 := core.NewManager[alg.Q](alg.Ring{}, core.NormGCD)
	got, _, err := Read(strings.NewReader(sb.String()), m2, AlgCodec{})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := sim.BuildUnitary(m2, c)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.RootsEqual(got, u2) {
		t.Fatal("imported unitary differs from a native rebuild")
	}
}

func TestNumRoundTrip(t *testing.T) {
	m := core.NewManager[complex128](num.NewRing(0), core.NormMax)
	c := algorithms.QFT(4)
	s := sim.New(m, 4)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, m, NumCodec{}, s.State, 4); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(strings.NewReader(sb.String()), m, NumCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.RootsEqual(got, s.State) {
		t.Fatal("numeric round trip changed the diagram")
	}
}

func TestZeroAndScalarDiagrams(t *testing.T) {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	for _, e := range []core.Edge[alg.Q]{m.ZeroEdge(), m.Terminal(alg.QFromInt(3))} {
		var sb strings.Builder
		if err := Write(&sb, m, AlgCodec{}, e, 0); err != nil {
			t.Fatal(err)
		}
		got, _, err := Read(strings.NewReader(sb.String()), m, AlgCodec{})
		if err != nil {
			t.Fatal(err)
		}
		if !m.RootsEqual(got, e) {
			t.Fatalf("scalar round trip changed %v", e)
		}
	}
}

func TestCodecProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ac := AlgCodec{}
	for i := 0; i < 200; i++ {
		v := func() int64 { return r.Int63n(1<<40) - 1<<39 }
		q := alg.NewQ(v(), v(), v(), v(), r.Intn(9)-4, 2*r.Int63n(1000)+1)
		got, err := ac.Decode(ac.Encode(q))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(q) {
			t.Fatalf("alg codec round trip: %v vs %v", got, q)
		}
	}
	nc := NumCodec{}
	for i := 0; i < 200; i++ {
		v := complex(r.NormFloat64(), r.NormFloat64())
		got, err := nc.Decode(nc.Encode(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("num codec round trip: %v vs %v", got, v)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	cases := []string{
		"",
		"bogus header\n",
		"qmdd v1 complex128 3\nroot 0,0,0,0,0,1:t\n", // ring mismatch
		"qmdd v1 qomega 2\nn 0 1 bad\n",
		"qmdd v1 qomega 2\nn 5 1 0,0,0,1,0,1:t 0,0,0,0,0,1:t\n", // bad numbering
		"qmdd v1 qomega 2\nn 0 1 0,0,0,1,0,1:t 0,0,0,0,0,1:t\n", // missing root
		"qmdd v1 qomega 2\nroot 0,0,0,1,0,1:7\n",                // dangling ref
	}
	for _, src := range cases {
		if _, _, err := Read(strings.NewReader(src), m, AlgCodec{}); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

// TestReadHardening is the table-driven malformed-input suite for the
// network-facing decode path: every hostile shape must come back as a
// descriptive error (never a panic), and the configurable caps must trip.
func TestReadHardening(t *testing.T) {
	one := "0,0,0,1,0,1"  // Q[ω] encoding of 1
	zero := "0,0,0,0,0,1" // Q[ω] encoding of 0
	vec := func(id, level int, c0, c1 string) string {
		return fmt.Sprintf("n %d %d %s %s\n", id, level, c0, c1)
	}
	cases := []struct {
		name string
		src  string
		lim  Limits
		want string // substring of the error
	}{
		{
			name: "duplicate index",
			src: "qmdd v1 qomega 2\n" +
				vec(0, 1, one+":t", zero+":t") +
				vec(0, 1, zero+":t", one+":t") +
				"root " + one + ":0\n",
			want: "consecutively without duplicates",
		},
		{
			name: "out of order index",
			src: "qmdd v1 qomega 2\n" +
				vec(1, 1, one+":t", zero+":t") +
				"root " + one + ":1\n",
			want: "consecutively without duplicates",
		},
		{
			name: "undefined child index",
			src: "qmdd v1 qomega 2\n" +
				vec(0, 2, one+":3", zero+":t") +
				"root " + one + ":0\n",
			want: "undefined node",
		},
		{
			name: "undefined root index",
			src:  "qmdd v1 qomega 2\nroot " + one + ":0\n",
			want: "undefined node",
		},
		{
			name: "negative child index",
			src: "qmdd v1 qomega 2\n" +
				vec(0, 1, one+":-1", zero+":t") +
				"root " + one + ":0\n",
			want: "undefined node",
		},
		{
			name: "child not below parent level",
			src: "qmdd v1 qomega 2\n" +
				vec(0, 2, one+":t", zero+":t") +
				vec(1, 2, one+":0", zero+":t") +
				"root " + one + ":1\n",
			want: "not below parent",
		},
		{
			name: "self reference",
			src: "qmdd v1 qomega 2\n" +
				vec(0, 1, one+":0", zero+":t") +
				"root " + one + ":0\n",
			want: "undefined node",
		},
		{
			name: "level above header qubits",
			src: "qmdd v1 qomega 2\n" +
				vec(0, 3, one+":t", zero+":t") +
				"root " + one + ":0\n",
			want: "exceeds the 2-qubit header",
		},
		{
			name: "mixed arity",
			src: "qmdd v1 qomega 2\n" +
				vec(0, 1, one+":t", zero+":t") +
				"n 1 2 " + one + ":0 " + zero + ":t " + zero + ":t " + zero + ":t\n" +
				"root " + one + ":1\n",
			want: "arity",
		},
		{
			name: "negative qubit count",
			src:  "qmdd v1 qomega -4\nroot " + one + ":t\n",
			want: "bad qubit count",
		},
		{
			name: "qubit cap",
			src:  "qmdd v1 qomega 100\nroot " + one + ":t\n",
			lim:  Limits{MaxQubits: 10},
			want: "exceeds cap 10",
		},
		{
			name: "node cap",
			src: "qmdd v1 qomega 3\n" +
				vec(0, 1, one+":t", zero+":t") +
				vec(1, 2, one+":0", zero+":t") +
				"root " + one + ":1\n",
			lim:  Limits{MaxNodes: 1},
			want: "exceeds cap 1",
		},
		{
			name: "line cap",
			src:  "qmdd v1 qomega 2\nn 0 1 " + strings.Repeat("9", 4096) + ",0,0,1,0,1:t " + zero + ":t\nroot " + one + ":0\n",
			lim:  Limits{MaxLineBytes: 256},
			want: "exceeds 256 bytes",
		},
		{
			name: "huge decimal level",
			src: "qmdd v1 qomega 2\n" +
				"n 0 99999999999999999999999 " + one + ":t " + zero + ":t\n" +
				"root " + one + ":0\n",
			want: "bad level",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
			_, _, err := ReadLimited(strings.NewReader(tc.src), m, AlgCodec{}, tc.lim)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadBudgetedManager pins the panic-free contract: a manager whose
// budget trips mid-decode yields a *core.BudgetError from ReadLimited, not a
// panic escaping into the server.
func TestReadBudgetedManager(t *testing.T) {
	src := buildGroverDump(t)
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	m.SetBudget(core.Budget{MaxNodes: 2})
	_, _, err := Read(strings.NewReader(src), m, AlgCodec{})
	if err == nil {
		t.Fatal("no error under a 2-node budget")
	}
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// buildGroverDump serializes a 6-qubit Grover state for reuse in tests and
// as a fuzz seed.
func buildGroverDump(t *testing.T) string {
	t.Helper()
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	s := sim.New(m, 6)
	if err := s.Run(algorithms.Grover(6, 11, 0), nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, m, AlgCodec{}, s.State, 6); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
