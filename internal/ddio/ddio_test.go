package ddio

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/sim"
)

func TestAlgRoundTripState(t *testing.T) {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	c := algorithms.Grover(6, 11, 0)
	s := sim.New(m, 6)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, m, AlgCodec{}, s.State, 6); err != nil {
		t.Fatal(err)
	}
	got, qubits, err := Read(strings.NewReader(sb.String()), m, AlgCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if qubits != 6 {
		t.Fatalf("qubits = %d", qubits)
	}
	if !m.RootsEqual(got, s.State) {
		t.Fatal("round trip changed the diagram")
	}
}

func TestAlgRoundTripMatrixIntoFreshManager(t *testing.T) {
	m1 := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	c := algorithms.BernsteinVazirani(4, 0b1011)
	u, err := sim.BuildUnitary(m1, c)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, m1, AlgCodec{}, u, c.N); err != nil {
		t.Fatal(err)
	}
	// Import into a manager with a *different* normalization scheme: the
	// semantics must survive re-canonicalization.
	m2 := core.NewManager[alg.Q](alg.Ring{}, core.NormGCD)
	got, _, err := Read(strings.NewReader(sb.String()), m2, AlgCodec{})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := sim.BuildUnitary(m2, c)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.RootsEqual(got, u2) {
		t.Fatal("imported unitary differs from a native rebuild")
	}
}

func TestNumRoundTrip(t *testing.T) {
	m := core.NewManager[complex128](num.NewRing(0), core.NormMax)
	c := algorithms.QFT(4)
	s := sim.New(m, 4)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, m, NumCodec{}, s.State, 4); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(strings.NewReader(sb.String()), m, NumCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.RootsEqual(got, s.State) {
		t.Fatal("numeric round trip changed the diagram")
	}
}

func TestZeroAndScalarDiagrams(t *testing.T) {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	for _, e := range []core.Edge[alg.Q]{m.ZeroEdge(), m.Terminal(alg.QFromInt(3))} {
		var sb strings.Builder
		if err := Write(&sb, m, AlgCodec{}, e, 0); err != nil {
			t.Fatal(err)
		}
		got, _, err := Read(strings.NewReader(sb.String()), m, AlgCodec{})
		if err != nil {
			t.Fatal(err)
		}
		if !m.RootsEqual(got, e) {
			t.Fatalf("scalar round trip changed %v", e)
		}
	}
}

func TestCodecProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ac := AlgCodec{}
	for i := 0; i < 200; i++ {
		v := func() int64 { return r.Int63n(1<<40) - 1<<39 }
		q := alg.NewQ(v(), v(), v(), v(), r.Intn(9)-4, 2*r.Int63n(1000)+1)
		got, err := ac.Decode(ac.Encode(q))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(q) {
			t.Fatalf("alg codec round trip: %v vs %v", got, q)
		}
	}
	nc := NumCodec{}
	for i := 0; i < 200; i++ {
		v := complex(r.NormFloat64(), r.NormFloat64())
		got, err := nc.Decode(nc.Encode(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("num codec round trip: %v vs %v", got, v)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	cases := []string{
		"",
		"bogus header\n",
		"qmdd v1 complex128 3\nroot 0,0,0,0,0,1:t\n", // ring mismatch
		"qmdd v1 qomega 2\nn 0 1 bad\n",
		"qmdd v1 qomega 2\nn 5 1 0,0,0,1,0,1:t 0,0,0,0,0,1:t\n", // bad numbering
		"qmdd v1 qomega 2\nn 0 1 0,0,0,1,0,1:t 0,0,0,0,0,1:t\n", // missing root
		"qmdd v1 qomega 2\nroot 0,0,0,1,0,1:7\n",                // dangling ref
	}
	for _, src := range cases {
		if _, _, err := Read(strings.NewReader(src), m, AlgCodec{}); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}
