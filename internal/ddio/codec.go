package ddio

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"

	"repro/internal/alg"
)

// AlgCodec encodes exact Q[ω] weights as "a,b,c,d,k,e" (decimal big
// integers plus the √2 exponent) — fully lossless.
type AlgCodec struct{}

// RingName identifies the codec for header validation.
func (AlgCodec) RingName() string { return "qomega" }

// Encode renders q losslessly.
func (AlgCodec) Encode(q alg.Q) string {
	return fmt.Sprintf("%s,%s,%s,%s,%d,%s",
		q.N.W.A.Text(10), q.N.W.B.Text(10), q.N.W.C.Text(10), q.N.W.D.Text(10),
		q.N.K, q.E.Text(10))
}

// Decode parses the Encode format.
func (AlgCodec) Decode(s string) (alg.Q, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 6 {
		return alg.QZero, fmt.Errorf("ddio: bad Q[ω] token %q", s)
	}
	ints := make([]*big.Int, 4)
	for i := 0; i < 4; i++ {
		v, ok := new(big.Int).SetString(parts[i], 10)
		if !ok {
			return alg.QZero, fmt.Errorf("ddio: bad coefficient %q", parts[i])
		}
		ints[i] = v
	}
	k, err := strconv.Atoi(parts[4])
	if err != nil {
		return alg.QZero, fmt.Errorf("ddio: bad exponent %q", parts[4])
	}
	e, ok := new(big.Int).SetString(parts[5], 10)
	if !ok || e.Sign() == 0 {
		return alg.QZero, fmt.Errorf("ddio: bad denominator %q", parts[5])
	}
	w := alg.NewZomegaBig(ints[0], ints[1], ints[2], ints[3])
	return alg.QFromParts(w, k, e), nil
}

// NumCodec encodes complex128 weights bit-exactly via the hexadecimal
// float format.
type NumCodec struct{}

// RingName identifies the codec for header validation.
func (NumCodec) RingName() string { return "complex128" }

// Encode renders v bit-exactly.
func (NumCodec) Encode(v complex128) string {
	return strconv.FormatFloat(real(v), 'x', -1, 64) + "," +
		strconv.FormatFloat(imag(v), 'x', -1, 64)
}

// Decode parses the Encode format.
func (NumCodec) Decode(s string) (complex128, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, fmt.Errorf("ddio: bad complex token %q", s)
	}
	re, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return 0, err
	}
	im, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(re) || math.IsNaN(im) {
		return 0, fmt.Errorf("ddio: NaN weight")
	}
	return complex(re, im), nil
}
