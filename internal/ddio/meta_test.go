package ddio

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/sim"
)

func groverState(t *testing.T) (*core.Manager[alg.Q], core.Edge[alg.Q]) {
	t.Helper()
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	s := sim.New(m, 5)
	if err := s.Run(algorithms.Grover(5, 13, 0), nil); err != nil {
		t.Fatal(err)
	}
	return m, s.State
}

func TestMetaRoundTrip(t *testing.T) {
	m, state := groverState(t)
	meta := Meta{Repr: "alg", Norm: "left"}
	var sb strings.Builder
	if err := WriteMeta(&sb, m, AlgCodec{}, state, 5, meta); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "qmdd v2 qomega 5\nmeta repr=alg norm=left eps=0x0p+00\n") {
		t.Fatalf("unexpected v2 prelude:\n%s", sb.String()[:80])
	}

	// Unchecked read: meta comes back as stamped.
	got, qubits, gotMeta, err := ReadMeta(strings.NewReader(sb.String()), m, AlgCodec{}, Limits{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qubits != 5 || !m.RootsEqual(got, state) {
		t.Fatal("v2 round trip changed the diagram")
	}
	if gotMeta.Version != FormatV2 || gotMeta.Repr != "alg" || gotMeta.Norm != "left" || gotMeta.Eps != 0 {
		t.Fatalf("meta = %+v", gotMeta)
	}

	// Checked read with the matching requirement succeeds.
	want := Meta{Repr: "alg", Norm: "left"}
	if _, _, _, err := ReadMeta(strings.NewReader(sb.String()), m, AlgCodec{}, Limits{}, &want); err != nil {
		t.Fatalf("matching requirement refused: %v", err)
	}

	// Plain Read still accepts v2 files (meta ignored).
	got2, _, err := Read(strings.NewReader(sb.String()), m, AlgCodec{})
	if err != nil || !m.RootsEqual(got2, state) {
		t.Fatalf("Read on v2 file: %v", err)
	}
}

func TestMetaMismatchTyped(t *testing.T) {
	m, state := groverState(t)
	var sb strings.Builder
	if err := WriteMeta(&sb, m, AlgCodec{}, state, 5, Meta{Repr: "alg", Norm: "left"}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		want  Meta
		field string
	}{
		{"repr", Meta{Repr: "float", Norm: "left"}, "repr"},
		{"norm", Meta{Repr: "alg", Norm: "gcd"}, "norm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := ReadMeta(strings.NewReader(sb.String()), m, AlgCodec{}, Limits{}, &tc.want)
			var mm *MismatchError
			if !errors.As(err, &mm) {
				t.Fatalf("want *MismatchError, got %v", err)
			}
			if mm.Field != tc.field {
				t.Fatalf("field = %q, want %q", mm.Field, tc.field)
			}
		})
	}
}

func TestMetaEpsCheckedOnlyForFloat(t *testing.T) {
	m := core.NewManager[complex128](num.NewRing(1e-6), core.NormMax)
	s := sim.New(m, 3)
	if err := s.Run(algorithms.Grover(3, 5, 0), nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteMeta(&sb, m, NumCodec{}, s.State, 3, Meta{Repr: "float", Norm: "max", Eps: 1e-6}); err != nil {
		t.Fatal(err)
	}
	// Same ε passes; a different ε is a typed refusal.
	ok := Meta{Repr: "float", Norm: "max", Eps: 1e-6}
	if _, _, _, err := ReadMeta(strings.NewReader(sb.String()), m, NumCodec{}, Limits{}, &ok); err != nil {
		t.Fatal(err)
	}
	bad := Meta{Repr: "float", Norm: "max", Eps: 1e-3}
	_, _, _, err := ReadMeta(strings.NewReader(sb.String()), m, NumCodec{}, Limits{}, &bad)
	var mm *MismatchError
	if !errors.As(err, &mm) || mm.Field != "eps" {
		t.Fatalf("want eps mismatch, got %v", err)
	}

	// An alg requirement never compares ε (exact diagrams are ε-independent).
	ma, state := groverState(t)
	var sa strings.Builder
	if err := WriteMeta(&sa, ma, AlgCodec{}, state, 5, Meta{Repr: "alg", Norm: "left", Eps: 0.25}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sa.String(), "eps=0x0p+00") {
		t.Fatal("alg write did not normalize eps to 0")
	}
	wantAlg := Meta{Repr: "alg", Norm: "left", Eps: 0.5}
	if _, _, _, err := ReadMeta(strings.NewReader(sa.String()), ma, AlgCodec{}, Limits{}, &wantAlg); err != nil {
		t.Fatalf("alg eps difference must not refuse: %v", err)
	}
}

// TestMetaBackwardCompatV1 pins the compatibility contract: headerless v1
// files read fine without a requirement, and fail a requirement with a
// typed version mismatch (they certify nothing).
func TestMetaBackwardCompatV1(t *testing.T) {
	m, state := groverState(t)
	var v1 strings.Builder
	if err := Write(&v1, m, AlgCodec{}, state, 5); err != nil {
		t.Fatal(err)
	}
	got, qubits, meta, err := ReadMeta(strings.NewReader(v1.String()), m, AlgCodec{}, Limits{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qubits != 5 || !m.RootsEqual(got, state) || meta.Version != FormatV1 {
		t.Fatalf("v1 read: qubits=%d meta=%+v", qubits, meta)
	}
	want := Meta{Repr: "alg", Norm: "left"}
	_, _, _, err = ReadMeta(strings.NewReader(v1.String()), m, AlgCodec{}, Limits{}, &want)
	var mm *MismatchError
	if !errors.As(err, &mm) || mm.Field != "version" {
		t.Fatalf("want version mismatch for v1 under a requirement, got %v", err)
	}
}

func TestMetaMalformedV2(t *testing.T) {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	cases := []string{
		"qmdd v2 qomega 2\n",                                // missing meta record
		"qmdd v2 qomega 2\nroot 0,0,0,1,0,1:t\n",            // record where meta expected
		"qmdd v2 qomega 2\nmeta repr\n",                     // field without '='
		"qmdd v2 qomega 2\nmeta repr=alg eps=notafloat\n",   // bad eps
		"qmdd v3 qomega 2\nmeta repr=alg norm=left eps=0\n", // unknown version
	}
	for _, src := range cases {
		if _, _, _, err := ReadMeta(strings.NewReader(src), m, AlgCodec{}, Limits{}, nil); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
}
