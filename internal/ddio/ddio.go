// Package ddio serializes QMDDs to a line-oriented text format and reads
// them back, so that exactly-computed diagrams (states, circuit unitaries,
// verification references) can be stored and exchanged without any loss —
// one of the practical payoffs of the algebraic representation, since a
// serialized exact diagram is a portable certificate.
//
// Format (one record per line):
//
//	qmdd v1 <ring> <qubits>
//	n <idx> <level> <w>:<child> …      child = earlier idx or "t"
//	root <w>:<idx|t>
//
// Nodes appear children-first; weights are ring-specific opaque tokens.
package ddio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Codec encodes and decodes edge weights of a concrete ring.
type Codec[T any] interface {
	RingName() string
	Encode(T) string
	Decode(string) (T, error)
}

// Write serializes the diagram rooted at e.
func Write[T any](w io.Writer, m *core.Manager[T], c Codec[T], e core.Edge[T], qubits int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "qmdd v1 %s %d\n", c.RingName(), qubits); err != nil {
		return err
	}
	idx := map[*core.Node[T]]int{}
	var emit func(n *core.Node[T]) error
	emit = func(n *core.Node[T]) error {
		if n == nil {
			return nil
		}
		if _, ok := idx[n]; ok {
			return nil
		}
		for _, ch := range n.E {
			if err := emit(ch.N); err != nil {
				return err
			}
		}
		id := len(idx)
		idx[n] = id
		fmt.Fprintf(bw, "n %d %d", id, n.Level)
		for _, ch := range n.E {
			child := "t"
			if ch.N != nil {
				child = strconv.Itoa(idx[ch.N])
			}
			fmt.Fprintf(bw, " %s:%s", c.Encode(ch.W), child)
		}
		fmt.Fprintln(bw)
		return nil
	}
	if err := emit(e.N); err != nil {
		return err
	}
	rootChild := "t"
	if e.N != nil {
		rootChild = strconv.Itoa(idx[e.N])
	}
	fmt.Fprintf(bw, "root %s:%s\n", c.Encode(e.W), rootChild)
	return bw.Flush()
}

// Read deserializes a diagram into the manager (re-normalizing through
// MakeNode, so the result is canonical in the target manager regardless of
// the writer's normalization scheme). It returns the root edge and the
// qubit count recorded in the header.
func Read[T any](r io.Reader, m *core.Manager[T], c Codec[T]) (core.Edge[T], int, error) {
	var zero core.Edge[T]
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return zero, 0, fmt.Errorf("ddio: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != "qmdd" || header[1] != "v1" {
		return zero, 0, fmt.Errorf("ddio: bad header %q", sc.Text())
	}
	if header[2] != c.RingName() {
		return zero, 0, fmt.Errorf("ddio: diagram uses ring %q, codec provides %q", header[2], c.RingName())
	}
	qubits, err := strconv.Atoi(header[3])
	if err != nil {
		return zero, 0, fmt.Errorf("ddio: bad qubit count: %v", err)
	}

	// edge i = the normalized edge standing in for written node i.
	var edges []core.Edge[T]
	parseEdge := func(tok string) (core.Edge[T], error) {
		colon := strings.LastIndexByte(tok, ':')
		if colon < 0 {
			return zero, fmt.Errorf("ddio: bad edge token %q", tok)
		}
		w, err := c.Decode(tok[:colon])
		if err != nil {
			return zero, err
		}
		if tok[colon+1:] == "t" {
			return core.Edge[T]{W: w, N: nil}, nil
		}
		id, err := strconv.Atoi(tok[colon+1:])
		if err != nil || id < 0 || id >= len(edges) {
			return zero, fmt.Errorf("ddio: bad child reference %q", tok)
		}
		return m.Scale(edges[id], w), nil
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "n":
			if len(fields) < 5 {
				return zero, 0, fmt.Errorf("ddio: short node line %q", sc.Text())
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(edges) {
				return zero, 0, fmt.Errorf("ddio: nodes must be numbered consecutively (got %q)", fields[1])
			}
			level, err := strconv.Atoi(fields[2])
			if err != nil || level < 1 {
				return zero, 0, fmt.Errorf("ddio: bad level %q", fields[2])
			}
			kids := fields[3:]
			if len(kids) != core.VectorArity && len(kids) != core.MatrixArity {
				return zero, 0, fmt.Errorf("ddio: node %d has %d children", id, len(kids))
			}
			es := make([]core.Edge[T], len(kids))
			for i, tok := range kids {
				es[i], err = parseEdge(tok)
				if err != nil {
					return zero, 0, err
				}
			}
			edges = append(edges, m.MakeNode(level, es))
		case "root":
			if len(fields) != 2 {
				return zero, 0, fmt.Errorf("ddio: bad root line %q", sc.Text())
			}
			root, err := parseEdge(fields[1])
			if err != nil {
				return zero, 0, err
			}
			return root, qubits, nil
		default:
			return zero, 0, fmt.Errorf("ddio: unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return zero, 0, err
	}
	return zero, 0, fmt.Errorf("ddio: missing root record")
}
