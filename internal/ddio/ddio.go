// Package ddio serializes QMDDs to a line-oriented text format and reads
// them back, so that exactly-computed diagrams (states, circuit unitaries,
// verification references) can be stored and exchanged without any loss —
// one of the practical payoffs of the algebraic representation, since a
// serialized exact diagram is a portable certificate.
//
// Format (one record per line):
//
//	qmdd v1 <ring> <qubits>
//	n <idx> <level> <w>:<child> …      child = earlier idx or "t"
//	root <w>:<idx|t>
//
// Nodes appear children-first; weights are ring-specific opaque tokens.
//
// Version 2 (WriteMeta) inserts one metadata record after the header:
//
//	qmdd v2 <ring> <qubits>
//	meta repr=<repr> norm=<norm> eps=<hexfloat>
//
// The metadata stamps how the diagram was produced so a reader reusing a
// stored diagram (the qcache disk tier, qsim warm starts) can refuse a file
// whose provenance does not match what it is about to serve. Read accepts
// both versions; v1 files simply carry no metadata.
package ddio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Codec encodes and decodes edge weights of a concrete ring.
type Codec[T any] interface {
	RingName() string
	Encode(T) string
	Decode(string) (T, error)
}

// Meta is the provenance stamp of a version-2 file: which representation
// produced the diagram ("alg" or "float"), under which normalization
// scheme, and — for the float representation — at which interning
// tolerance. Exact algebraic diagrams are ε-independent, so Eps is ignored
// when Repr is "alg" (both when writing and when checking).
type Meta struct {
	// Version is the file format version the stamp was read from (FormatV1
	// for headerless files, FormatV2 when a meta record was present). It is
	// informational on writes — WriteMeta always emits FormatV2.
	Version int
	Repr    string
	Norm    string
	Eps     float64
}

// FormatVersion reported for files read without a meta record.
const (
	FormatV1 = 1
	FormatV2 = 2
)

// MismatchError reports a v2 metadata field that contradicts what the
// reader required. It is a typed error so callers can distinguish "this
// cached artifact belongs to a different configuration" (drop and rebuild)
// from a corrupt or hostile file.
type MismatchError struct {
	Field string // "version", "repr", "norm" or "eps"
	Got   string
	Want  string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("ddio: header %s is %q, want %q", e.Field, e.Got, e.Want)
}

// check compares the stamped metadata against a requirement.
func (meta Meta) check(want Meta) error {
	if meta.Repr != want.Repr {
		return &MismatchError{Field: "repr", Got: meta.Repr, Want: want.Repr}
	}
	if meta.Norm != want.Norm {
		return &MismatchError{Field: "norm", Got: meta.Norm, Want: want.Norm}
	}
	if want.Repr == "float" && meta.Eps != want.Eps {
		return &MismatchError{
			Field: "eps",
			Got:   strconv.FormatFloat(meta.Eps, 'x', -1, 64),
			Want:  strconv.FormatFloat(want.Eps, 'x', -1, 64),
		}
	}
	return nil
}

// Write serializes the diagram rooted at e in the version-1 format (no
// metadata record).
func Write[T any](w io.Writer, m *core.Manager[T], c Codec[T], e core.Edge[T], qubits int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "qmdd v1 %s %d\n", c.RingName(), qubits); err != nil {
		return err
	}
	return writeBody(bw, c, e)
}

// WriteMeta serializes the diagram in the version-2 format, stamping it
// with the given provenance metadata. Eps is normalized to 0 for non-float
// representations so byte output never depends on an irrelevant field.
func WriteMeta[T any](w io.Writer, m *core.Manager[T], c Codec[T], e core.Edge[T], qubits int, meta Meta) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "qmdd v2 %s %d\n", c.RingName(), qubits); err != nil {
		return err
	}
	eps := meta.Eps
	if meta.Repr != "float" {
		eps = 0
	}
	if _, err := fmt.Fprintf(bw, "meta repr=%s norm=%s eps=%s\n",
		meta.Repr, meta.Norm, strconv.FormatFloat(eps, 'x', -1, 64)); err != nil {
		return err
	}
	return writeBody(bw, c, e)
}

// writeBody emits the node and root records (shared by both versions).
func writeBody[T any](bw *bufio.Writer, c Codec[T], e core.Edge[T]) error {
	idx := map[*core.Node[T]]int{}
	var emit func(n *core.Node[T]) error
	emit = func(n *core.Node[T]) error {
		if n == nil {
			return nil
		}
		if _, ok := idx[n]; ok {
			return nil
		}
		for _, ch := range n.E {
			if err := emit(ch.N); err != nil {
				return err
			}
		}
		id := len(idx)
		idx[n] = id
		fmt.Fprintf(bw, "n %d %d", id, n.Level)
		for _, ch := range n.E {
			child := "t"
			if ch.N != nil {
				child = strconv.Itoa(idx[ch.N])
			}
			fmt.Fprintf(bw, " %s:%s", c.Encode(ch.W), child)
		}
		fmt.Fprintln(bw)
		return nil
	}
	if err := emit(e.N); err != nil {
		return err
	}
	rootChild := "t"
	if e.N != nil {
		rootChild = strconv.Itoa(idx[e.N])
	}
	fmt.Fprintf(bw, "root %s:%s\n", c.Encode(e.W), rootChild)
	return bw.Flush()
}

// Limits bounds what ReadLimited accepts — the defense against hostile
// input now that diagrams arrive over the network (qmddd). The zero value
// of any field selects its default.
type Limits struct {
	// MaxNodes caps the number of node records (default DefaultMaxNodes).
	MaxNodes int
	// MaxLineBytes caps the length of a single input line (default
	// DefaultMaxLineBytes); longer lines fail with a clear error instead of
	// buffering unboundedly.
	MaxLineBytes int
	// MaxQubits caps the header's qubit count (default DefaultMaxQubits).
	MaxQubits int
}

// Default caps applied by Read and by ReadLimited for zero Limits fields.
const (
	DefaultMaxNodes     = 1 << 20
	DefaultMaxLineBytes = 1 << 24
	DefaultMaxQubits    = 1 << 16
)

func (l Limits) withDefaults() Limits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = DefaultMaxNodes
	}
	if l.MaxLineBytes <= 0 {
		l.MaxLineBytes = DefaultMaxLineBytes
	}
	if l.MaxQubits <= 0 {
		l.MaxQubits = DefaultMaxQubits
	}
	return l
}

// Read deserializes a diagram into the manager (re-normalizing through
// MakeNode, so the result is canonical in the target manager regardless of
// the writer's normalization scheme). It returns the root edge and the
// qubit count recorded in the header. Input is validated under the default
// Limits; use ReadLimited to tighten them.
func Read[T any](r io.Reader, m *core.Manager[T], c Codec[T]) (core.Edge[T], int, error) {
	return ReadLimited(r, m, c, Limits{})
}

// ReadLimited is Read under explicit input caps. Malformed input — duplicate
// or out-of-order node indices, references to undefined indices, children at
// a level not strictly below their parent, mixed vector/matrix arities, or
// input exceeding the caps — is rejected with a descriptive error. Panics
// from the diagram core (e.g. a manager budget tripping mid-decode) are
// converted to errors, so a network front end never crashes on a payload.
func ReadLimited[T any](r io.Reader, m *core.Manager[T], c Codec[T], lim Limits) (core.Edge[T], int, error) {
	e, qubits, _, err := ReadMeta(r, m, c, lim, nil)
	return e, qubits, err
}

// ReadMeta is ReadLimited plus metadata handling: it returns the file's
// provenance stamp (Version FormatV1 with zero fields for headerless v1
// files) and, when want is non-nil, refuses a diagram whose stamped
// repr/norm/ε contradicts the requirement with a *MismatchError — a v1
// file fails such a check outright, since it certifies nothing. This is
// the validation gate of the qcache disk tier.
func ReadMeta[T any](r io.Reader, m *core.Manager[T], c Codec[T], lim Limits, want *Meta) (_ core.Edge[T], _ int, meta Meta, err error) {
	defer core.RecoverTo(&err)
	lim = lim.withDefaults()
	var zero core.Edge[T]
	sc := bufio.NewScanner(r)
	// The scanner's cap is the larger of the initial buffer and max, so the
	// initial buffer must not exceed the configured line cap.
	bufSize := 64 << 10
	if lim.MaxLineBytes < bufSize {
		bufSize = lim.MaxLineBytes
	}
	sc.Buffer(make([]byte, bufSize), lim.MaxLineBytes)
	scanErr := func() error {
		if e := sc.Err(); e == bufio.ErrTooLong {
			return fmt.Errorf("ddio: line exceeds %d bytes", lim.MaxLineBytes)
		} else if e != nil {
			return e
		}
		return nil
	}
	if !sc.Scan() {
		if e := scanErr(); e != nil {
			return zero, 0, meta, e
		}
		return zero, 0, meta, fmt.Errorf("ddio: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != "qmdd" || (header[1] != "v1" && header[1] != "v2") {
		return zero, 0, meta, fmt.Errorf("ddio: bad header %q", sc.Text())
	}
	meta.Version = FormatV1
	if header[1] == "v2" {
		meta.Version = FormatV2
	}
	if header[2] != c.RingName() {
		return zero, 0, meta, fmt.Errorf("ddio: diagram uses ring %q, codec provides %q", header[2], c.RingName())
	}
	qubits, err := strconv.Atoi(header[3])
	if err != nil || qubits < 0 {
		return zero, 0, meta, fmt.Errorf("ddio: bad qubit count %q", header[3])
	}
	if qubits > lim.MaxQubits {
		return zero, 0, meta, fmt.Errorf("ddio: %d qubits exceeds cap %d", qubits, lim.MaxQubits)
	}

	// A v2 file carries its provenance in one meta record directly after the
	// header; a v1 file certifies nothing. Either way the requirement check
	// happens here, before any diagram work is spent on a mismatched file.
	if meta.Version >= FormatV2 {
		if !sc.Scan() {
			if e := scanErr(); e != nil {
				return zero, 0, meta, e
			}
			return zero, 0, meta, fmt.Errorf("ddio: v2 file is missing its meta record")
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || fields[0] != "meta" {
			return zero, 0, meta, fmt.Errorf("ddio: v2 file must carry a meta record after the header, got %q", sc.Text())
		}
		for _, kv := range fields[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return zero, 0, meta, fmt.Errorf("ddio: bad meta field %q", kv)
			}
			switch k {
			case "repr":
				meta.Repr = v
			case "norm":
				meta.Norm = v
			case "eps":
				eps, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return zero, 0, meta, fmt.Errorf("ddio: bad meta eps %q", v)
				}
				meta.Eps = eps
			default:
				// Unknown keys are ignored: future versions may add fields
				// without breaking older readers.
			}
		}
	}
	if want != nil {
		if meta.Version < FormatV2 {
			return zero, 0, meta, &MismatchError{Field: "version", Got: "v1 (unstamped)", Want: "v2"}
		}
		if err := meta.check(*want); err != nil {
			return zero, 0, meta, err
		}
	}

	// edge i = the normalized edge standing in for written node i; levels[i]
	// remembers the written level so child references can be checked for
	// strict level decrease (MakeNode canonicalization may collapse a node,
	// so the normalized edge's own level is not the written one).
	var edges []core.Edge[T]
	var levels []int
	arity := 0 // fan-out of the first node; all nodes must match
	parseEdge := func(tok string, parentLevel int) (core.Edge[T], error) {
		colon := strings.LastIndexByte(tok, ':')
		if colon < 0 {
			return zero, fmt.Errorf("ddio: bad edge token %q", tok)
		}
		w, err := c.Decode(tok[:colon])
		if err != nil {
			return zero, err
		}
		if tok[colon+1:] == "t" {
			return core.Edge[T]{W: w, N: nil}, nil
		}
		id, err := strconv.Atoi(tok[colon+1:])
		if err != nil || id < 0 || id >= len(edges) {
			return zero, fmt.Errorf("ddio: reference to undefined node in %q", tok)
		}
		if levels[id] >= parentLevel {
			return zero, fmt.Errorf("ddio: child %d at level %d not below parent level %d",
				id, levels[id], parentLevel)
		}
		return m.Scale(edges[id], w), nil
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "n":
			if len(fields) < 5 {
				return zero, 0, meta, fmt.Errorf("ddio: short node line %q", sc.Text())
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(edges) {
				return zero, 0, meta, fmt.Errorf("ddio: nodes must be numbered consecutively without duplicates (got %q, want %d)", fields[1], len(edges))
			}
			if id >= lim.MaxNodes {
				return zero, 0, meta, fmt.Errorf("ddio: node count exceeds cap %d", lim.MaxNodes)
			}
			level, err := strconv.Atoi(fields[2])
			if err != nil || level < 1 {
				return zero, 0, meta, fmt.Errorf("ddio: bad level %q", fields[2])
			}
			if level > qubits {
				return zero, 0, meta, fmt.Errorf("ddio: node %d at level %d exceeds the %d-qubit header", id, level, qubits)
			}
			kids := fields[3:]
			if len(kids) != core.VectorArity && len(kids) != core.MatrixArity {
				return zero, 0, meta, fmt.Errorf("ddio: node %d has %d children", id, len(kids))
			}
			if arity == 0 {
				arity = len(kids)
			} else if len(kids) != arity {
				return zero, 0, meta, fmt.Errorf("ddio: node %d has arity %d, diagram started with arity %d", id, len(kids), arity)
			}
			es := make([]core.Edge[T], len(kids))
			for i, tok := range kids {
				es[i], err = parseEdge(tok, level)
				if err != nil {
					return zero, 0, meta, err
				}
			}
			edges = append(edges, m.MakeNode(level, es))
			levels = append(levels, level)
		case "root":
			if len(fields) != 2 {
				return zero, 0, meta, fmt.Errorf("ddio: bad root line %q", sc.Text())
			}
			root, err := parseEdge(fields[1], qubits+1)
			if err != nil {
				return zero, 0, meta, err
			}
			return root, qubits, meta, nil
		default:
			return zero, 0, meta, fmt.Errorf("ddio: unknown record %q", fields[0])
		}
	}
	if e := scanErr(); e != nil {
		return zero, 0, meta, e
	}
	return zero, 0, meta, fmt.Errorf("ddio: missing root record")
}
