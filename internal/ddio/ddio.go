// Package ddio serializes QMDDs to a line-oriented text format and reads
// them back, so that exactly-computed diagrams (states, circuit unitaries,
// verification references) can be stored and exchanged without any loss —
// one of the practical payoffs of the algebraic representation, since a
// serialized exact diagram is a portable certificate.
//
// Format (one record per line):
//
//	qmdd v1 <ring> <qubits>
//	n <idx> <level> <w>:<child> …      child = earlier idx or "t"
//	root <w>:<idx|t>
//
// Nodes appear children-first; weights are ring-specific opaque tokens.
package ddio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Codec encodes and decodes edge weights of a concrete ring.
type Codec[T any] interface {
	RingName() string
	Encode(T) string
	Decode(string) (T, error)
}

// Write serializes the diagram rooted at e.
func Write[T any](w io.Writer, m *core.Manager[T], c Codec[T], e core.Edge[T], qubits int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "qmdd v1 %s %d\n", c.RingName(), qubits); err != nil {
		return err
	}
	idx := map[*core.Node[T]]int{}
	var emit func(n *core.Node[T]) error
	emit = func(n *core.Node[T]) error {
		if n == nil {
			return nil
		}
		if _, ok := idx[n]; ok {
			return nil
		}
		for _, ch := range n.E {
			if err := emit(ch.N); err != nil {
				return err
			}
		}
		id := len(idx)
		idx[n] = id
		fmt.Fprintf(bw, "n %d %d", id, n.Level)
		for _, ch := range n.E {
			child := "t"
			if ch.N != nil {
				child = strconv.Itoa(idx[ch.N])
			}
			fmt.Fprintf(bw, " %s:%s", c.Encode(ch.W), child)
		}
		fmt.Fprintln(bw)
		return nil
	}
	if err := emit(e.N); err != nil {
		return err
	}
	rootChild := "t"
	if e.N != nil {
		rootChild = strconv.Itoa(idx[e.N])
	}
	fmt.Fprintf(bw, "root %s:%s\n", c.Encode(e.W), rootChild)
	return bw.Flush()
}

// Limits bounds what ReadLimited accepts — the defense against hostile
// input now that diagrams arrive over the network (qmddd). The zero value
// of any field selects its default.
type Limits struct {
	// MaxNodes caps the number of node records (default DefaultMaxNodes).
	MaxNodes int
	// MaxLineBytes caps the length of a single input line (default
	// DefaultMaxLineBytes); longer lines fail with a clear error instead of
	// buffering unboundedly.
	MaxLineBytes int
	// MaxQubits caps the header's qubit count (default DefaultMaxQubits).
	MaxQubits int
}

// Default caps applied by Read and by ReadLimited for zero Limits fields.
const (
	DefaultMaxNodes     = 1 << 20
	DefaultMaxLineBytes = 1 << 24
	DefaultMaxQubits    = 1 << 16
)

func (l Limits) withDefaults() Limits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = DefaultMaxNodes
	}
	if l.MaxLineBytes <= 0 {
		l.MaxLineBytes = DefaultMaxLineBytes
	}
	if l.MaxQubits <= 0 {
		l.MaxQubits = DefaultMaxQubits
	}
	return l
}

// Read deserializes a diagram into the manager (re-normalizing through
// MakeNode, so the result is canonical in the target manager regardless of
// the writer's normalization scheme). It returns the root edge and the
// qubit count recorded in the header. Input is validated under the default
// Limits; use ReadLimited to tighten them.
func Read[T any](r io.Reader, m *core.Manager[T], c Codec[T]) (core.Edge[T], int, error) {
	return ReadLimited(r, m, c, Limits{})
}

// ReadLimited is Read under explicit input caps. Malformed input — duplicate
// or out-of-order node indices, references to undefined indices, children at
// a level not strictly below their parent, mixed vector/matrix arities, or
// input exceeding the caps — is rejected with a descriptive error. Panics
// from the diagram core (e.g. a manager budget tripping mid-decode) are
// converted to errors, so a network front end never crashes on a payload.
func ReadLimited[T any](r io.Reader, m *core.Manager[T], c Codec[T], lim Limits) (_ core.Edge[T], _ int, err error) {
	defer core.RecoverTo(&err)
	lim = lim.withDefaults()
	var zero core.Edge[T]
	sc := bufio.NewScanner(r)
	// The scanner's cap is the larger of the initial buffer and max, so the
	// initial buffer must not exceed the configured line cap.
	bufSize := 64 << 10
	if lim.MaxLineBytes < bufSize {
		bufSize = lim.MaxLineBytes
	}
	sc.Buffer(make([]byte, bufSize), lim.MaxLineBytes)
	scanErr := func() error {
		if e := sc.Err(); e == bufio.ErrTooLong {
			return fmt.Errorf("ddio: line exceeds %d bytes", lim.MaxLineBytes)
		} else if e != nil {
			return e
		}
		return nil
	}
	if !sc.Scan() {
		if e := scanErr(); e != nil {
			return zero, 0, e
		}
		return zero, 0, fmt.Errorf("ddio: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != "qmdd" || header[1] != "v1" {
		return zero, 0, fmt.Errorf("ddio: bad header %q", sc.Text())
	}
	if header[2] != c.RingName() {
		return zero, 0, fmt.Errorf("ddio: diagram uses ring %q, codec provides %q", header[2], c.RingName())
	}
	qubits, err := strconv.Atoi(header[3])
	if err != nil || qubits < 0 {
		return zero, 0, fmt.Errorf("ddio: bad qubit count %q", header[3])
	}
	if qubits > lim.MaxQubits {
		return zero, 0, fmt.Errorf("ddio: %d qubits exceeds cap %d", qubits, lim.MaxQubits)
	}

	// edge i = the normalized edge standing in for written node i; levels[i]
	// remembers the written level so child references can be checked for
	// strict level decrease (MakeNode canonicalization may collapse a node,
	// so the normalized edge's own level is not the written one).
	var edges []core.Edge[T]
	var levels []int
	arity := 0 // fan-out of the first node; all nodes must match
	parseEdge := func(tok string, parentLevel int) (core.Edge[T], error) {
		colon := strings.LastIndexByte(tok, ':')
		if colon < 0 {
			return zero, fmt.Errorf("ddio: bad edge token %q", tok)
		}
		w, err := c.Decode(tok[:colon])
		if err != nil {
			return zero, err
		}
		if tok[colon+1:] == "t" {
			return core.Edge[T]{W: w, N: nil}, nil
		}
		id, err := strconv.Atoi(tok[colon+1:])
		if err != nil || id < 0 || id >= len(edges) {
			return zero, fmt.Errorf("ddio: reference to undefined node in %q", tok)
		}
		if levels[id] >= parentLevel {
			return zero, fmt.Errorf("ddio: child %d at level %d not below parent level %d",
				id, levels[id], parentLevel)
		}
		return m.Scale(edges[id], w), nil
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "n":
			if len(fields) < 5 {
				return zero, 0, fmt.Errorf("ddio: short node line %q", sc.Text())
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(edges) {
				return zero, 0, fmt.Errorf("ddio: nodes must be numbered consecutively without duplicates (got %q, want %d)", fields[1], len(edges))
			}
			if id >= lim.MaxNodes {
				return zero, 0, fmt.Errorf("ddio: node count exceeds cap %d", lim.MaxNodes)
			}
			level, err := strconv.Atoi(fields[2])
			if err != nil || level < 1 {
				return zero, 0, fmt.Errorf("ddio: bad level %q", fields[2])
			}
			if level > qubits {
				return zero, 0, fmt.Errorf("ddio: node %d at level %d exceeds the %d-qubit header", id, level, qubits)
			}
			kids := fields[3:]
			if len(kids) != core.VectorArity && len(kids) != core.MatrixArity {
				return zero, 0, fmt.Errorf("ddio: node %d has %d children", id, len(kids))
			}
			if arity == 0 {
				arity = len(kids)
			} else if len(kids) != arity {
				return zero, 0, fmt.Errorf("ddio: node %d has arity %d, diagram started with arity %d", id, len(kids), arity)
			}
			es := make([]core.Edge[T], len(kids))
			for i, tok := range kids {
				es[i], err = parseEdge(tok, level)
				if err != nil {
					return zero, 0, err
				}
			}
			edges = append(edges, m.MakeNode(level, es))
			levels = append(levels, level)
		case "root":
			if len(fields) != 2 {
				return zero, 0, fmt.Errorf("ddio: bad root line %q", sc.Text())
			}
			root, err := parseEdge(fields[1], qubits+1)
			if err != nil {
				return zero, 0, err
			}
			return root, qubits, nil
		default:
			return zero, 0, fmt.Errorf("ddio: unknown record %q", fields[0])
		}
	}
	if e := scanErr(); e != nil {
		return zero, 0, e
	}
	return zero, 0, fmt.Errorf("ddio: missing root record")
}
