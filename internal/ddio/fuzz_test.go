package ddio

import (
	"strings"
	"testing"

	"repro/internal/alg"
	"repro/internal/core"
	"repro/internal/num"
)

// FuzzRead drives the network-facing decode path with arbitrary bytes under
// tight limits and a small manager budget: whatever arrives, ReadLimited
// must return an error or a diagram — never panic, never allocate past the
// caps. Inputs that decode successfully must re-encode and decode to the
// identical root (decode/encode/decode fixpoint).
func FuzzRead(f *testing.F) {
	f.Add("qmdd v1 qomega 2\nn 0 1 0,0,0,1,0,1:t 0,0,0,0,0,1:t\nroot 0,0,0,1,0,1:0\n")
	f.Add("qmdd v1 qomega 0\nroot 0,0,0,1,0,1:t\n")
	f.Add("qmdd v1 complex128 1\nn 0 1 0x1p-01,0:t 0x1p-01,0:t\nroot 0x1p+00,0:0\n")
	f.Add("qmdd v1 qomega 2\nn 0 1 bad\n")
	f.Add("qmdd v1 qomega 2\nroot 0,0,0,1,0,1:7\n")
	f.Add("n 0 1\nroot\n")
	f.Add("qmdd v1 qomega 3\nn 0 3 0,0,0,1,0,1:t 0,0,0,0,0,1:t\nroot 0,0,0,1,0,1:0\n")
	f.Fuzz(func(t *testing.T, src string) {
		lim := Limits{MaxNodes: 256, MaxLineBytes: 1 << 12, MaxQubits: 16}
		for _, run := range []func() error{
			func() error {
				m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
				m.SetBudget(core.Budget{MaxNodes: 512, MaxWeights: 2048})
				root, qubits, err := ReadLimited(strings.NewReader(src), m, AlgCodec{}, lim)
				if err != nil {
					return err
				}
				var sb strings.Builder
				if err := Write(&sb, m, AlgCodec{}, root, qubits); err != nil {
					t.Fatalf("re-encode of accepted input failed: %v", err)
				}
				root2, q2, err := ReadLimited(strings.NewReader(sb.String()), m, AlgCodec{}, lim)
				if err != nil {
					t.Fatalf("re-decode of accepted input failed: %v\ninput: %q\nre-encoded: %q", err, src, sb.String())
				}
				if q2 != qubits || !m.RootsEqual(root, root2) {
					t.Fatalf("decode/encode/decode not a fixpoint for %q", src)
				}
				return nil
			},
			func() error {
				m := core.NewManager[complex128](num.NewRing(0), core.NormMax)
				m.SetBudget(core.Budget{MaxNodes: 512, MaxWeights: 2048})
				_, _, err := ReadLimited(strings.NewReader(src), m, NumCodec{}, lim)
				return err
			},
		} {
			_ = run() // an error is a fine outcome; a panic is the bug
		}
	})
}
