package alg_test

import (
	"fmt"

	"repro/internal/alg"
)

// The canonical representation makes value equality structural: the same
// complex number computed along different routes has the same five integers.
func ExampleCanonD() {
	// (1/√2)·(1/√2) computed as a product …
	a := alg.DInvSqrt2.Mul(alg.DInvSqrt2)
	// … equals 1/2 written directly.
	fmt.Println(a.Equal(alg.DHalf))
	fmt.Println(a)
	// Output:
	// true
	// (1/√2)^2·(0·ω³ + 0·ω² + 0·ω + 1)
}

// Example 6 of the paper: √2 has representations with k ∈ {−1, 0, 1}; the
// canonical one uses the smallest denominator exponent k = −1.
func ExampleNewD() {
	fmt.Println(alg.NewD(0, 0, 0, 2, 1))  // (1/√2)¹·2
	fmt.Println(alg.NewD(-1, 0, 1, 0, 0)) // ω − ω³
	// Output:
	// (1/√2)^-1·(0·ω³ + 0·ω² + 0·ω + 1)
	// (1/√2)^-1·(0·ω³ + 0·ω² + 0·ω + 1)
}

// Example 8 of the paper: the inverse of 1 + i√2 in Q[ω].
func ExampleQ_Inv() {
	z := alg.QFromD(alg.DOne.Add(alg.DI.Mul(alg.DSqrt2)))
	inv := z.Inv()
	fmt.Println(inv)
	fmt.Println(z.Mul(inv).IsOne())
	// Output:
	// (-1·ω³ + 0·ω² + -1·ω + 1)/3
	// true
}

// GCDs exist in D[ω] because Z[ω] is a Euclidean ring.
func ExampleGCDZ() {
	g := alg.NewZomega(1, 1, 0, 2)
	a := alg.NewZomega(3, 0, -1, 2).Mul(g)
	b := alg.NewZomega(0, 1, 1, 1).Mul(g)
	gcd := alg.GCDZ(a, b)
	_, r1 := alg.QuoRem(a, gcd)
	_, r2 := alg.QuoRem(b, gcd)
	fmt.Println(r1.IsZero(), r2.IsZero())
	// Output:
	// true true
}
