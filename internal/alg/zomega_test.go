package alg

import (
	"math/big"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randZomega generates small random ring elements for property tests.
func randZomega(r *rand.Rand, bound int64) Zomega {
	v := func() int64 { return r.Int63n(2*bound+1) - bound }
	return NewZomega(v(), v(), v(), v())
}

func TestOmegaPowers(t *testing.T) {
	w := ZomegaW
	w2 := w.Mul(w)
	if !w2.Equal(ZomegaI) {
		t.Fatalf("ω² = %v, want i", w2)
	}
	w4 := w2.Mul(w2)
	if !w4.Equal(ZomegaOne.Neg()) {
		t.Fatalf("ω⁴ = %v, want −1", w4)
	}
	w8 := w4.Mul(w4)
	if !w8.Equal(ZomegaOne) {
		t.Fatalf("ω⁸ = %v, want 1", w8)
	}
}

func TestSqrt2Identities(t *testing.T) {
	s := ZomegaSqrt2
	if got := s.Mul(s); !got.Equal(NewZomega(0, 0, 0, 2)) {
		t.Fatalf("√2·√2 = %v, want 2", got)
	}
	// √2 = ω − ω³ and also ω + ω̄ (ω̄ = −ω³).
	alt := ZomegaW.Add(ZomegaW.Conj())
	if !alt.Equal(s) {
		t.Fatalf("ω + ω̄ = %v, want √2", alt)
	}
}

func TestMulSqrt2MatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		z := randZomega(r, 50)
		if got, want := z.MulSqrt2(), z.Mul(ZomegaSqrt2); !got.Equal(want) {
			t.Fatalf("MulSqrt2(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestDivSqrt2RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		z := randZomega(r, 50)
		up := z.MulSqrt2()
		down, ok := up.DivSqrt2()
		if !ok {
			t.Fatalf("DivSqrt2 of √2·%v not exact", z)
		}
		if !down.Equal(z) {
			t.Fatalf("DivSqrt2(MulSqrt2(%v)) = %v", z, down)
		}
	}
}

func TestConjInvolutionAndAutomorphism(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x, y := randZomega(r, 20), randZomega(r, 20)
		if !x.Conj().Conj().Equal(x) {
			t.Fatalf("conj not an involution on %v", x)
		}
		if !x.Conj2().Conj2().Equal(x) {
			t.Fatalf("conj2 not an involution on %v", x)
		}
		// Both conjugations are ring automorphisms.
		if !x.Mul(y).Conj().Equal(x.Conj().Mul(y.Conj())) {
			t.Fatalf("conj(xy) ≠ conj(x)conj(y) for %v, %v", x, y)
		}
		if !x.Mul(y).Conj2().Equal(x.Conj2().Mul(y.Conj2())) {
			t.Fatalf("conj2(xy) ≠ conj2(x)conj2(y) for %v, %v", x, y)
		}
		if !x.Add(y).Conj().Equal(x.Conj().Add(y.Conj())) {
			t.Fatalf("conj(x+y) ≠ conj(x)+conj(y)")
		}
	}
}

func TestRingAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		x, y, z := randZomega(r, 15), randZomega(r, 15), randZomega(r, 15)
		if !x.Mul(y).Equal(y.Mul(x)) {
			t.Fatalf("multiplication not commutative: %v, %v", x, y)
		}
		if !x.Mul(y.Mul(z)).Equal(x.Mul(y).Mul(z)) {
			t.Fatalf("multiplication not associative")
		}
		if !x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z))) {
			t.Fatalf("distributivity fails")
		}
		if !x.Mul(ZomegaOne).Equal(x) {
			t.Fatalf("1 not neutral")
		}
		if !x.Add(x.Neg()).IsZero() {
			t.Fatalf("x + (−x) ≠ 0")
		}
	}
}

func TestMulMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x, y := randZomega(r, 10), randZomega(r, 10)
		got := x.Mul(y).Complex128()
		want := x.Complex128() * y.Complex128()
		if cmplx.Abs(got-want) > 1e-8 {
			t.Fatalf("Mul(%v,%v) ≈ %v, want %v", x, y, got, want)
		}
	}
}

func TestNormIsSquaredMagnitude(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		z := randZomega(r, 10)
		n := z.Norm()
		f, _ := n.Float(64).Float64()
		c := z.Complex128()
		want := real(c)*real(c) + imag(c)*imag(c)
		if diff := f - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("N(%v) ≈ %v, want |z|² = %v", z, f, want)
		}
	}
}

func TestNormMultiplicative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x, y := randZomega(r, 12), randZomega(r, 12)
		if !x.Mul(y).Norm().Equal(x.Norm().Mul(y.Norm())) {
			t.Fatalf("N not multiplicative on %v, %v", x, y)
		}
	}
}

func TestEuclidFunctionMultiplicative(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		x, y := randZomega(r, 12), randZomega(r, 12)
		e := new(big.Int).Mul(x.Euclid(), y.Euclid())
		if x.Mul(y).Euclid().Cmp(e) != 0 {
			t.Fatalf("E not multiplicative on %v, %v", x, y)
		}
	}
}

func TestContentAndDivExactInt(t *testing.T) {
	z := NewZomega(6, -9, 12, 3)
	if got := z.Content(); got.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("Content = %v, want 3", got)
	}
	q := z.DivExactInt(big.NewInt(3))
	if !q.Equal(NewZomega(2, -3, 4, 1)) {
		t.Fatalf("DivExactInt = %v", q)
	}
	if got := ZomegaZero.Content(); got.Sign() != 0 {
		t.Fatalf("Content(0) = %v, want 0", got)
	}
}

func TestMulOmegaPow(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		z := randZomega(r, 10)
		if !z.MulOmegaPow(8).Equal(z) {
			t.Fatalf("ω⁸ rotation not identity")
		}
		if !z.MulOmegaPow(4).Equal(z.Neg()) {
			t.Fatalf("ω⁴ rotation not negation")
		}
		if !z.MulOmegaPow(-1).MulOmegaPow(1).Equal(z) {
			t.Fatalf("ω rotation inverse broken")
		}
		if !z.MulOmegaPow(3).Equal(z.Mul(ZomegaOne.MulOmegaPow(3))) {
			t.Fatalf("rotation disagrees with multiplication")
		}
	}
}
