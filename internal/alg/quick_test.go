package alg

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over the algebraic number types.
// Custom generators keep coefficients small enough for fast runs while
// covering negative values, zeros and non-trivial √2 exponents and odd
// denominators.

type qcQ struct{ V Q }

// Generate implements quick.Generator for random Q[ω] values.
func (qcQ) Generate(r *rand.Rand, size int) reflect.Value {
	b := int64(size)
	if b < 2 {
		b = 2
	}
	v := func() int64 { return r.Int63n(2*b+1) - b }
	q := canonQ(NewZomega(v(), v(), v(), v()), r.Intn(7)-3, big.NewInt(2*r.Int63n(b)+1))
	return reflect.ValueOf(qcQ{q})
}

type qcZ struct{ V Zomega }

// Generate implements quick.Generator for random Z[ω] values.
func (qcZ) Generate(r *rand.Rand, size int) reflect.Value {
	b := int64(size)
	if b < 2 {
		b = 2
	}
	v := func() int64 { return r.Int63n(2*b+1) - b }
	return reflect.ValueOf(qcZ{NewZomega(v(), v(), v(), v())})
}

var qcConfig = &quick.Config{MaxCount: 400}

func TestQuickFieldAxioms(t *testing.T) {
	if err := quick.Check(func(a, b, c qcQ) bool {
		x, y, z := a.V, b.V, c.V
		return x.Add(y).Equal(y.Add(x)) &&
			x.Mul(y).Equal(y.Mul(x)) &&
			x.Add(y.Add(z)).Equal(x.Add(y).Add(z)) &&
			x.Mul(y.Mul(z)).Equal(x.Mul(y).Mul(z)) &&
			x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z)))
	}, qcConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickInverses(t *testing.T) {
	if err := quick.Check(func(a qcQ) bool {
		if a.V.IsZero() {
			return true
		}
		return a.V.Mul(a.V.Inv()).IsOne()
	}, qcConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickConjugationIsAutomorphism(t *testing.T) {
	if err := quick.Check(func(a, b qcQ) bool {
		x, y := a.V, b.V
		return x.Mul(y).Conj().Equal(x.Conj().Mul(y.Conj())) &&
			x.Add(y).Conj().Equal(x.Conj().Add(y.Conj())) &&
			x.Conj().Conj().Equal(x)
	}, qcConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalInvariants(t *testing.T) {
	if err := quick.Check(func(a, b qcQ) bool {
		q := a.V.Mul(b.V).Add(a.V) // an arbitrary computed value
		if q.E.Sign() <= 0 || q.E.Bit(0) == 0 {
			return false
		}
		if q.IsZero() {
			return q.N.K == 0 && q.E.Cmp(bigOne) == 0
		}
		// Minimal denominator exponent (Algorithm 1 criterion).
		if parityEq(q.N.W.A, q.N.W.C) && parityEq(q.N.W.B, q.N.W.D) {
			return false
		}
		// Reduced against the odd denominator.
		g := new(big.Int).GCD(nil, nil, q.N.W.Content(), q.E)
		return g.Cmp(bigOne) == 0
	}, qcConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyAgreesWithEqual(t *testing.T) {
	if err := quick.Check(func(a, b qcQ) bool {
		return (a.V.Key() == b.V.Key()) == a.V.Equal(b.V)
	}, qcConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickNormMultiplicativeOnZ(t *testing.T) {
	if err := quick.Check(func(a, b qcZ) bool {
		return a.V.Mul(b.V).Norm().Equal(a.V.Norm().Mul(b.V.Norm()))
	}, qcConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickEuclideanContraction(t *testing.T) {
	if err := quick.Check(func(a, b qcZ) bool {
		if b.V.IsZero() {
			return true
		}
		q, r := QuoRem(a.V, b.V)
		if !q.Mul(b.V).Add(r).Equal(a.V) {
			return false
		}
		return r.Euclid().Cmp(b.V.Euclid()) < 0
	}, qcConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickGCDDivides(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	if err := quick.Check(func(a, b qcZ) bool {
		if a.V.IsZero() || b.V.IsZero() {
			return true
		}
		g := GCDZ(a.V, b.V)
		_, r1 := QuoRem(a.V, g)
		_, r2 := QuoRem(b.V, g)
		return r1.IsZero() && r2.IsZero()
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalAssociateIdempotent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	if err := quick.Check(func(a qcZ) bool {
		if a.V.IsZero() {
			return true
		}
		d := CanonD(a.V, 0)
		zc, unit := CanonicalAssociate(d)
		if !d.Mul(unit).Equal(zc) {
			return false
		}
		zc2, unit2 := CanonicalAssociate(zc)
		return zc2.Equal(zc) && unit2.IsOne()
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickFloatMatchesComplex(t *testing.T) {
	if err := quick.Check(func(a, b qcQ) bool {
		q := a.V.Mul(b.V)
		re, im := q.Float(80)
		c := q.Complex128()
		rf, _ := re.Float64()
		imf, _ := im.Float64()
		scale := 1 + abs64(rf) + abs64(imf)
		return abs64(rf-real(c)) < 1e-9*scale && abs64(imf-imag(c)) < 1e-9*scale
	}, qcConfig); err != nil {
		t.Error(err)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
