package alg

import "math/big"

// Euclidean division and greatest common divisors in Z[ω].
//
// The paper establishes that Z[ω] is a Euclidean ring under
// E(z) = |u² − 2v²| (with N(z) = u + v√2): division with remainder is
// performed by computing z₁/z₂ exactly in Q[ω] and rounding each coefficient
// to the nearest integer, which guarantees E(r) ≤ (9/16)·E(z₂) and hence
// termination of the Euclidean algorithm. GCDs in D[ω] reduce to GCDs in
// Z[ω] because every D[ω] element is associated (up to the unit 1/√2) to a
// Z[ω] element.

// QuoRem returns q, r with z1 = q·z2 + r and E(r) < E(z2). z2 must be
// nonzero. The quotient is obtained by nearest-integer rounding of the exact
// Q[ω] quotient; in the rare tie cases where rounding alone does not
// contract, a small neighborhood of quotients is searched (the ring is
// Euclidean, so a contracting quotient always exists nearby).
func QuoRem(z1, z2 Zomega) (q, r Zomega) {
	if z2.IsZero() {
		panic("alg: division by zero in Z[ω]")
	}
	// z1/z2 = z1·z̄2·(u − v√2) / (u² − 2v²) with N(z2) = u + v√2.
	n := z2.Norm()
	m := n.FieldNorm()
	num := z1.Mul(z2.Conj()).Mul(n.Conj().Zomega())
	q = Zomega{
		roundDiv(num.A, m),
		roundDiv(num.B, m),
		roundDiv(num.C, m),
		roundDiv(num.D, m),
	}
	r = z1.Sub(q.Mul(z2))
	e2 := z2.Euclid()
	if r.Euclid().Cmp(e2) < 0 {
		return q, r
	}
	// Repair search: try small offsets around q.
	best, bestE := q, r.Euclid()
	var delta Zomega
	for da := int64(-1); da <= 1; da++ {
		for db := int64(-1); db <= 1; db++ {
			for dc := int64(-1); dc <= 1; dc++ {
				for dd := int64(-1); dd <= 1; dd++ {
					if da == 0 && db == 0 && dc == 0 && dd == 0 {
						continue
					}
					delta = NewZomega(da, db, dc, dd)
					cand := q.Add(delta)
					re := z1.Sub(cand.Mul(z2)).Euclid()
					if re.Cmp(bestE) < 0 {
						best, bestE = cand, re
					}
				}
			}
		}
	}
	if bestE.Cmp(e2) >= 0 {
		// Cannot happen for a Euclidean ring with the 9/16 bound; guard
		// against silent non-termination anyway.
		panic("alg: Euclidean division failed to contract")
	}
	q = best
	r = z1.Sub(q.Mul(z2))
	return q, r
}

// roundDiv returns round(a/m) with rounding to the nearest integer
// (ties away from zero), for m ≠ 0.
func roundDiv(a, m *big.Int) *big.Int {
	num := new(big.Int).Lsh(a, 1) // 2a
	if m.Sign() < 0 {
		num.Neg(num)
	}
	absM := new(big.Int).Abs(m)
	// round(x/m) = floor((2x + m) / (2m)) for positive m
	num.Add(num, absM)
	den := new(big.Int).Lsh(absM, 1)
	q := new(big.Int).Div(num, den) // floor division
	return q
}

// GCDZ returns a greatest common divisor of z1 and z2 in Z[ω] (unique only
// up to units; see CanonicalAssociate for the normalization the GCD
// normalization scheme applies on top).
func GCDZ(z1, z2 Zomega) Zomega {
	a, b := z1, z2
	for !b.IsZero() {
		_, r := QuoRem(a, b)
		a, b = b, r
	}
	return a
}

// GCDD returns a greatest common divisor in D[ω] of a list of values,
// skipping zeros. Each value is replaced by its associated Z[ω] core (the
// canonical coefficient vector, which differs from the value by a power of
// the unit 1/√2), so the result is a Z[ω] element embedded in D[ω]. The
// zero value is returned when all inputs are zero.
func GCDD(vals ...D) D {
	var g Zomega
	have := false
	for _, v := range vals {
		if v.IsZero() {
			continue
		}
		if !have {
			g, have = v.W, true
			continue
		}
		g = GCDZ(g, v.W)
		if g.Euclid().Cmp(bigOne) == 0 {
			break // unit: gcd cannot shrink further
		}
	}
	if !have {
		return DZero
	}
	return CanonD(g, 0)
}
