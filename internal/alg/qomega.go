package alg

import (
	"fmt"
	"math/big"
)

// Q is an element of the cyclotomic number field Q[ω], the fraction field of
// D[ω], in the unique representation the paper derives in Section IV-B:
//
//	q = N / E,  N ∈ D[ω] canonical,  E an odd positive integer,
//	gcd(a, b, c, d, E) = 1.
//
// Every nonzero Q has a multiplicative inverse, which is what lets the
// Q[ω]-inverse normalization scheme (Algorithm 2) divide by arbitrary edge
// weights. Powers of 2 in denominators fold into the √2-exponent K of N
// (1/2 = (1/√2)²), so E only ever carries the odd part.
type Q struct {
	N D
	E *big.Int
}

// Convenient constants (treat as immutable).
var (
	QZero     = Q{DZero, big.NewInt(1)}
	QOne      = Q{DOne, big.NewInt(1)}
	QI        = Q{DI, big.NewInt(1)}
	QInvSqrt2 = Q{DInvSqrt2, big.NewInt(1)}
	QMinusOne = Q{DMinusOne, big.NewInt(1)}
)

// QFromD embeds a D[ω] element into Q[ω].
func QFromD(d D) Q { return Q{d, big.NewInt(1)} }

// QFromInt returns the integer n.
func QFromInt(n int64) Q { return QFromD(DFromInt(n)) }

// NewQ builds the canonical representative of
// (1/√2)^k (aω³ + bω² + cω + d) / den for an arbitrary nonzero denominator.
func NewQ(a, b, c, d int64, k int, den int64) Q {
	return canonQ(NewZomega(a, b, c, d), k, big.NewInt(den))
}

// QFromParts builds the canonical representative of
// (1/√2)^k·w / den for an arbitrary nonzero denominator (used e.g. by
// deserialization).
func QFromParts(w Zomega, k int, den *big.Int) Q { return canonQ(w, k, den) }

// canonQ normalizes (w, k) / den: sign into the numerator, powers of two in
// den into k, the remaining odd part reduced against the coefficient content.
func canonQ(w Zomega, k int, den *big.Int) Q {
	if den.Sign() == 0 {
		panic("alg: zero denominator in Q[ω]")
	}
	if w.IsZero() {
		return Q{DZero, big.NewInt(1)}
	}
	e := cp(den)
	if e.Sign() < 0 {
		e.Neg(e)
		w = w.Neg()
	}
	for e.Bit(0) == 0 {
		e.Rsh(e, 1)
		k += 2 // dividing by 2 = multiplying by (1/√2)²
	}
	if e.Cmp(bigOne) != 0 {
		g := new(big.Int).GCD(nil, nil, w.Content(), e)
		if g.Cmp(bigOne) > 0 {
			w = w.DivExactInt(g)
			e.Quo(e, g)
		}
	}
	// Dividing by an odd integer preserves coefficient parities, so the
	// minimal-k reduction below interacts cleanly with the E-reduction above.
	return Q{CanonD(w, k), e}
}

// reQ re-canonicalizes a (D, E) pair where the D part is already canonical
// but the content/denominator reduction may still apply.
func reQ(n D, e *big.Int) Q { return canonQ(n.W, n.K, e) }

// IsZero reports whether q == 0.
func (q Q) IsZero() bool { return q.N.IsZero() }

// IsOne reports whether q == 1.
func (q Q) IsOne() bool { return q.N.IsOne() && q.E.Cmp(bigOne) == 0 }

// Equal reports value equality.
func (q Q) Equal(y Q) bool { return q.E.Cmp(y.E) == 0 && q.N.Equal(y.N) }

// Add returns q + y.
func (q Q) Add(y Q) Q {
	if q.IsZero() {
		return y
	}
	if y.IsZero() {
		return q
	}
	// With both denominators 1 (all of D[ω], i.e. the typical weight after
	// Clifford+T circuits) the cross-multiplications are by 1 — skip them.
	if q.E.Cmp(bigOne) == 0 && y.E.Cmp(bigOne) == 0 {
		return reQ(q.N.Add(y.N), bigOne)
	}
	// q + y = (Nq·Ey + Ny·Eq) / (Eq·Ey)
	a := CanonD(q.N.W.MulInt(y.E), q.N.K)
	b := CanonD(y.N.W.MulInt(q.E), y.N.K)
	s := a.Add(b)
	return reQ(s, new(big.Int).Mul(q.E, y.E))
}

// Sub returns q − y.
func (q Q) Sub(y Q) Q { return q.Add(y.Neg()) }

// Neg returns −q.
func (q Q) Neg() Q { return Q{q.N.Neg(), cp(q.E)} }

// Mul returns q · y. Multiplications by exact 0 and 1 short-circuit: edge
// weights in QMDDs are overwhelmingly trivial, and the general path costs a
// full Zomega product plus re-canonicalization.
func (q Q) Mul(y Q) Q {
	if q.IsZero() || y.IsZero() {
		return QZero
	}
	if q.IsOne() {
		return y
	}
	if y.IsOne() {
		return q
	}
	return reQ(q.N.Mul(y.N), new(big.Int).Mul(q.E, y.E))
}

// Conj returns the complex conjugate.
func (q Q) Conj() Q { return Q{q.N.Conj(), cp(q.E)} }

// Inv returns the multiplicative inverse 1/q, constructed as in the paper
// (Section IV-B, Example 8): with N(w) = u + v√2,
//
//	w⁻¹ = w̄ · (u − v√2) / (u² − 2v²),
//
// and the √2-exponent and odd denominator move between numerator and
// denominator as units / odd integers. Inv panics on zero.
func (q Q) Inv() Q {
	if q.IsZero() {
		panic("alg: inverse of zero in Q[ω]")
	}
	w, k := q.N.W, q.N.K
	n := w.Norm()
	m := n.FieldNorm() // nonzero integer u² − 2v²
	num := w.Conj().Mul(n.Conj().Zomega()).MulInt(q.E)
	// value⁻¹ = num · √2^k / m  = (1/√2)^{−k} · num / m
	return canonQ(num, -k, m)
}

// Div returns q / y. It panics when y is zero. Division by exact 1 (the
// common case under Q[ω]-inverse normalization, where most pivots are
// trivial) returns q unchanged without constructing an inverse.
func (q Q) Div(y Q) Q {
	if y.IsOne() {
		return q
	}
	return q.Mul(y.Inv())
}

// InD reports whether q lies in the subring D[ω] (odd denominator 1) and, if
// so, returns the D[ω] element.
func (q Q) InD() (D, bool) {
	if q.E.Cmp(bigOne) != 0 {
		return DZero, false
	}
	return q.N, true
}

// Key returns a canonical hash key; equal keys iff equal values.
func (q Q) Key() string {
	if q.E.Cmp(bigOne) == 0 {
		return q.N.Key()
	}
	return q.N.Key() + "/" + q.E.Text(36)
}

// String renders q for humans.
func (q Q) String() string {
	if q.E.Cmp(bigOne) == 0 {
		return q.N.String()
	}
	return fmt.Sprintf("%s/%v", q.N.String(), q.E)
}

// MaxBitLen returns the largest bit length over the numerator coefficients
// and the denominator — the statistic behind the paper's Fig. 5 discussion.
func (q Q) MaxBitLen() int {
	m := q.N.MaxBitLen()
	if b := q.E.BitLen(); b > m {
		m = b
	}
	return m
}
