package alg

import (
	"math/rand"
	"testing"
)

func TestQuoRemContracts(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	for i := 0; i < 500; i++ {
		z1, z2 := randZomega(r, 40), randZomega(r, 40)
		if z2.IsZero() {
			continue
		}
		q, rem := QuoRem(z1, z2)
		if !q.Mul(z2).Add(rem).Equal(z1) {
			t.Fatalf("q·z2 + r ≠ z1 for %v / %v", z1, z2)
		}
		if rem.Euclid().Cmp(z2.Euclid()) >= 0 {
			t.Fatalf("E(r) = %v not < E(z2) = %v", rem.Euclid(), z2.Euclid())
		}
	}
}

func TestQuoRemExactDivision(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		a, b := randZomega(r, 15), randZomega(r, 15)
		if b.IsZero() {
			continue
		}
		q, rem := QuoRem(a.Mul(b), b)
		if !rem.IsZero() {
			t.Fatalf("remainder %v for exact division", rem)
		}
		if !q.Equal(a) {
			t.Fatalf("quotient %v, want %v", q, a)
		}
	}
}

func TestGCDZDividesBoth(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 200; i++ {
		z1, z2 := randZomega(r, 20), randZomega(r, 20)
		if z1.IsZero() || z2.IsZero() {
			continue
		}
		g := GCDZ(z1, z2)
		if g.IsZero() {
			t.Fatalf("gcd of nonzero elements is zero")
		}
		for _, z := range []Zomega{z1, z2} {
			_, rem := QuoRem(z, g)
			if !rem.IsZero() {
				t.Fatalf("gcd %v does not divide %v", g, z)
			}
		}
	}
}

func TestGCDZCommonFactor(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for i := 0; i < 100; i++ {
		g := randZomega(r, 6)
		if g.IsZero() || g.Euclid().Cmp(bigOne) == 0 {
			continue // skip zero and units: nothing to detect
		}
		a, b := randZomega(r, 8), randZomega(r, 8)
		if a.IsZero() || b.IsZero() {
			continue
		}
		got := GCDZ(a.Mul(g), b.Mul(g))
		// g must divide the gcd of (ag, bg).
		_, rem := QuoRem(got, g)
		if !rem.IsZero() {
			t.Fatalf("gcd(ag, bg) = %v is not a multiple of g = %v", got, g)
		}
	}
}

func TestGCDDAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for i := 0; i < 100; i++ {
		vals := []D{randD(r, 8, 2), randD(r, 8, 2), randD(r, 8, 2), randD(r, 8, 2)}
		g := GCDD(vals...)
		nonzero := false
		for _, v := range vals {
			if v.IsZero() {
				continue
			}
			nonzero = true
			if _, ok := v.DivE(g); !ok {
				t.Fatalf("GCDD result %v does not divide %v", g, v)
			}
		}
		if nonzero && g.IsZero() {
			t.Fatal("GCDD of nonzero values is zero")
		}
	}
	if !GCDD(DZero, DZero).IsZero() {
		t.Fatal("GCDD of zeros should be zero")
	}
}
