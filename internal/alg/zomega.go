// Package alg implements exact algebraic arithmetic in the rings used by
// algebraic QMDDs: the cyclotomic integers Z[ω] (ω = e^{iπ/4}), the real
// quadratic ring Z[√2] (the norm codomain), the dyadic extension
// D[ω] = Z[i, 1/√2], and its fraction field Q[ω].
//
// Every complex number reachable by a Clifford+T circuit lies in D[ω] and is
// written with five integers as
//
//	α = (1/√2)^k · (a·ω³ + b·ω² + c·ω + d),
//
// a representation this package keeps canonical (minimal denominator
// exponent k, see Algorithm 1 of the paper) so that structural equality of
// decision-diagram weights is exact value equality.
//
// All coefficient arithmetic uses math/big, so no overflow or rounding ever
// occurs. Values are immutable: every operation returns a fresh value and
// never aliases the operands' coefficients.
package alg

import (
	"fmt"
	"math/big"
)

// Zomega is an element a·ω³ + b·ω² + c·ω + d of the ring Z[ω] of cyclotomic
// integers of order 8, where ω = e^{iπ/4} = (1+i)/√2 satisfies ω⁴ = −1.
// The useful sub-values are i = ω² and √2 = ω − ω³.
type Zomega struct {
	A, B, C, D *big.Int // coefficients of ω³, ω², ω, 1
}

// NewZomega returns a·ω³ + b·ω² + c·ω + d from small integer coefficients.
func NewZomega(a, b, c, d int64) Zomega {
	return Zomega{big.NewInt(a), big.NewInt(b), big.NewInt(c), big.NewInt(d)}
}

// NewZomegaBig returns a·ω³ + b·ω² + c·ω + d, copying the given coefficients.
func NewZomegaBig(a, b, c, d *big.Int) Zomega {
	return Zomega{cp(a), cp(b), cp(c), cp(d)}
}

func cp(x *big.Int) *big.Int { return new(big.Int).Set(x) }

// Convenient constants. Never mutate these (treat Zomega values as immutable).
var (
	ZomegaZero  = NewZomega(0, 0, 0, 0)
	ZomegaOne   = NewZomega(0, 0, 0, 1)
	ZomegaI     = NewZomega(0, 1, 0, 0)  // i = ω²
	ZomegaW     = NewZomega(0, 0, 1, 0)  // ω itself
	ZomegaSqrt2 = NewZomega(-1, 0, 1, 0) // √2 = ω − ω³
)

// IsZero reports whether z == 0.
func (z Zomega) IsZero() bool {
	return z.A.Sign() == 0 && z.B.Sign() == 0 && z.C.Sign() == 0 && z.D.Sign() == 0
}

// IsOne reports whether z == 1.
func (z Zomega) IsOne() bool {
	return z.A.Sign() == 0 && z.B.Sign() == 0 && z.C.Sign() == 0 &&
		z.D.Cmp(bigOne) == 0
}

var (
	bigOne = big.NewInt(1)
)

// Equal reports coefficient-wise equality (which is value equality, since
// 1, ω, ω², ω³ are linearly independent over Q).
func (z Zomega) Equal(y Zomega) bool {
	return z.A.Cmp(y.A) == 0 && z.B.Cmp(y.B) == 0 &&
		z.C.Cmp(y.C) == 0 && z.D.Cmp(y.D) == 0
}

// Add returns z + y.
func (z Zomega) Add(y Zomega) Zomega {
	return Zomega{
		new(big.Int).Add(z.A, y.A),
		new(big.Int).Add(z.B, y.B),
		new(big.Int).Add(z.C, y.C),
		new(big.Int).Add(z.D, y.D),
	}
}

// Sub returns z − y.
func (z Zomega) Sub(y Zomega) Zomega {
	return Zomega{
		new(big.Int).Sub(z.A, y.A),
		new(big.Int).Sub(z.B, y.B),
		new(big.Int).Sub(z.C, y.C),
		new(big.Int).Sub(z.D, y.D),
	}
}

// Neg returns −z.
func (z Zomega) Neg() Zomega {
	return Zomega{
		new(big.Int).Neg(z.A),
		new(big.Int).Neg(z.B),
		new(big.Int).Neg(z.C),
		new(big.Int).Neg(z.D),
	}
}

// Mul returns z · y, reducing powers of ω with ω⁴ = −1.
//
// Writing z = Σ zᵢωⁱ and y = Σ yⱼωʲ (z₃ = A, z₂ = B, z₁ = C, z₀ = D), the raw
// product has powers ω⁰..ω⁶ and the reduction is ω⁴ = −1, ω⁵ = −ω, ω⁶ = −ω².
func (z Zomega) Mul(y Zomega) Zomega {
	z0, z1, z2, z3 := z.D, z.C, z.B, z.A
	y0, y1, y2, y3 := y.D, y.C, y.B, y.A

	var r [7]*big.Int
	for k := range r {
		r[k] = new(big.Int)
	}
	var t big.Int
	mulAdd := func(dst *big.Int, x, y *big.Int) { dst.Add(dst, t.Mul(x, y)) }

	mulAdd(r[0], z0, y0)
	mulAdd(r[1], z0, y1)
	mulAdd(r[1], z1, y0)
	mulAdd(r[2], z0, y2)
	mulAdd(r[2], z1, y1)
	mulAdd(r[2], z2, y0)
	mulAdd(r[3], z0, y3)
	mulAdd(r[3], z1, y2)
	mulAdd(r[3], z2, y1)
	mulAdd(r[3], z3, y0)
	mulAdd(r[4], z1, y3)
	mulAdd(r[4], z2, y2)
	mulAdd(r[4], z3, y1)
	mulAdd(r[5], z2, y3)
	mulAdd(r[5], z3, y2)
	mulAdd(r[6], z3, y3)

	return Zomega{
		A: r[3],
		B: new(big.Int).Sub(r[2], r[6]),
		C: new(big.Int).Sub(r[1], r[5]),
		D: new(big.Int).Sub(r[0], r[4]),
	}
}

// MulInt returns z · n for an ordinary integer n.
func (z Zomega) MulInt(n *big.Int) Zomega {
	return Zomega{
		new(big.Int).Mul(z.A, n),
		new(big.Int).Mul(z.B, n),
		new(big.Int).Mul(z.C, n),
		new(big.Int).Mul(z.D, n),
	}
}

// Conj returns the complex conjugate z̄. Since ω̄ = ω⁻¹ = −ω³,
// conj maps (a, b, c, d) ↦ (−c, −b, −a, d).
func (z Zomega) Conj() Zomega {
	return Zomega{
		new(big.Int).Neg(z.C),
		new(big.Int).Neg(z.B),
		new(big.Int).Neg(z.A),
		cp(z.D),
	}
}

// Conj2 returns the √2-conjugate: the Galois automorphism ω ↦ −ω, which
// fixes i = ω² and sends √2 ↦ −√2. It maps (a, b, c, d) ↦ (−a, b, −c, d).
func (z Zomega) Conj2() Zomega {
	return Zomega{
		new(big.Int).Neg(z.A),
		cp(z.B),
		new(big.Int).Neg(z.C),
		cp(z.D),
	}
}

// MulOmega returns z · ω (a rotation of the coefficient quadruple with one
// sign flip: ω·(aω³+bω²+cω+d) = bω³ + cω² + dω − a).
func (z Zomega) MulOmega() Zomega {
	return Zomega{cp(z.B), cp(z.C), cp(z.D), new(big.Int).Neg(z.A)}
}

// MulOmegaPow returns z · ω^r for any r (taken mod 8).
func (z Zomega) MulOmegaPow(r int) Zomega {
	r = ((r % 8) + 8) % 8
	w := z
	for i := 0; i < r; i++ {
		w = w.MulOmega()
	}
	return w
}

// MulSqrt2 returns z · √2 = z · (ω − ω³):
// (a, b, c, d) ↦ (b−d, c+a, b+d, c−a).
func (z Zomega) MulSqrt2() Zomega {
	return Zomega{
		new(big.Int).Sub(z.B, z.D),
		new(big.Int).Add(z.C, z.A),
		new(big.Int).Add(z.B, z.D),
		new(big.Int).Sub(z.C, z.A),
	}
}

// DivSqrt2 returns z / √2 and whether the division is exact in Z[ω].
// It is exact iff a ≡ c and b ≡ d (mod 2); then
// (a, b, c, d) ↦ ((b−d)/2, (c+a)/2, (b+d)/2, (c−a)/2).
func (z Zomega) DivSqrt2() (Zomega, bool) {
	if !parityEq(z.A, z.C) || !parityEq(z.B, z.D) {
		return Zomega{}, false
	}
	half := func(x *big.Int) *big.Int { return new(big.Int).Rsh(x, 1) }
	return Zomega{
		half(new(big.Int).Sub(z.B, z.D)),
		half(new(big.Int).Add(z.C, z.A)),
		half(new(big.Int).Add(z.B, z.D)),
		half(new(big.Int).Sub(z.C, z.A)),
	}, true
}

func parityEq(x, y *big.Int) bool { return x.Bit(0) == y.Bit(0) }

// Norm returns the squared complex magnitude N(z) = z · z̄, which always lies
// in Z[√2]. It panics if the internal consistency check fails (which would
// indicate a bug in Mul or Conj).
func (z Zomega) Norm() Zroot2 {
	m := z.Mul(z.Conj())
	if m.B.Sign() != 0 || new(big.Int).Neg(m.A).Cmp(m.C) != 0 {
		panic(fmt.Sprintf("alg: norm of %v not in Z[√2]: %v", z, m))
	}
	return Zroot2{U: m.D, V: m.C}
}

// Euclid returns the value of the Euclidean function
// E(z) = |u² − 2v²| where N(z) = u + v√2: the absolute field norm of z over Q.
// E is multiplicative and E(z) = 0 iff z = 0, which is what makes the
// Euclidean algorithm in Z[ω] terminate.
func (z Zomega) Euclid() *big.Int {
	return z.Norm().FieldNormAbs()
}

// Content returns gcd(|a|, |b|, |c|, |d|) (0 for the zero element).
func (z Zomega) Content() *big.Int {
	g := new(big.Int).Abs(z.A)
	g.GCD(nil, nil, g, new(big.Int).Abs(z.B))
	g.GCD(nil, nil, g, new(big.Int).Abs(z.C))
	g.GCD(nil, nil, g, new(big.Int).Abs(z.D))
	return g
}

// DivExactInt divides every coefficient by n, which must divide them all.
func (z Zomega) DivExactInt(n *big.Int) Zomega {
	q := func(x *big.Int) *big.Int {
		d, m := new(big.Int).QuoRem(x, n, new(big.Int))
		if m.Sign() != 0 {
			panic("alg: DivExactInt: not divisible")
		}
		return d
	}
	return Zomega{q(z.A), q(z.B), q(z.C), q(z.D)}
}

// String renders z as a readable polynomial in ω.
func (z Zomega) String() string {
	return fmt.Sprintf("(%v·ω³ + %v·ω² + %v·ω + %v)", z.A, z.B, z.C, z.D)
}

// MaxBitLen returns the largest bit length among the four coefficients.
// It is the per-number contribution to the "bit-width growth" statistic the
// paper uses to explain the GSE overhead.
func (z Zomega) MaxBitLen() int {
	m := z.A.BitLen()
	if b := z.B.BitLen(); b > m {
		m = b
	}
	if b := z.C.BitLen(); b > m {
		m = b
	}
	if b := z.D.BitLen(); b > m {
		m = b
	}
	return m
}
