package alg

import (
	"fmt"
	"math/big"
)

// D is an element of the ring D[ω] = Z[i, 1/√2]:
//
//	α = (1/√2)^K · (A·ω³ + B·ω² + C·ω + D)
//
// kept in the canonical form of Algorithm 1 of the paper: K is the smallest
// denominator exponent, which holds iff A ≢ C (mod 2) or B ≢ D (mod 2)
// (and the zero element is represented as (0,0,0,0) with K = 0). With K
// fixed to its minimum the representation is unique, so two D values denote
// the same complex number iff they are structurally equal.
type D struct {
	W Zomega
	K int
}

// NewD builds the canonical representative of (1/√2)^k (aω³ + bω² + cω + d).
func NewD(a, b, c, d int64, k int) D {
	return CanonD(NewZomega(a, b, c, d), k)
}

// CanonD canonicalizes the pair (w, k) by Algorithm 1: while both parity
// conditions hold, divide the coefficient vector by √2 and decrement k.
// The loop terminates because each step halves the integer u-part of N(w).
func CanonD(w Zomega, k int) D {
	if w.IsZero() {
		return D{ZomegaZero, 0}
	}
	for {
		r, ok := w.DivSqrt2()
		if !ok {
			return D{w, k}
		}
		w = r
		k--
	}
}

// Convenient constants (treat as immutable).
var (
	DZero     = D{ZomegaZero, 0}
	DOne      = D{ZomegaOne, 0}
	DI        = D{ZomegaI, 0}
	DOmegaVal = D{ZomegaW, 0}          // ω
	DSqrt2    = CanonD(ZomegaSqrt2, 0) // √2, canonically (1, k = −1)
	DInvSqrt2 = D{ZomegaOne, 1}        // 1/√2
	DHalf     = D{ZomegaOne, 2}        // 1/2
	DMinusOne = D{ZomegaOne.Neg(), 0}  // −1
)

// DFromInt returns the integer n as a D[ω] element.
func DFromInt(n int64) D { return CanonD(NewZomega(0, 0, 0, n), 0) }

// DOmegaPow returns ω^r (r taken mod 8).
func DOmegaPow(r int) D { return CanonD(ZomegaOne.MulOmegaPow(r), 0) }

// DInvSqrt2Pow returns (1/√2)^k for any k (negative k gives powers of √2).
func DInvSqrt2Pow(k int) D { return CanonD(ZomegaOne, k) }

// IsZero reports whether d == 0.
func (d D) IsZero() bool { return d.W.IsZero() }

// IsOne reports whether d == 1.
func (d D) IsOne() bool { return d.K == 0 && d.W.IsOne() }

// Equal reports value equality (structural equality of canonical forms).
func (d D) Equal(y D) bool { return d.K == y.K && d.W.Equal(y.W) }

// align raises both operands to a common denominator exponent
// k = max(d.K, y.K) by multiplying the lower-k coefficient vector by √2.
func align(d, y D) (Zomega, Zomega, int) {
	k := d.K
	if y.K > k {
		k = y.K
	}
	wd, wy := d.W, y.W
	for i := d.K; i < k; i++ {
		wd = wd.MulSqrt2()
	}
	for i := y.K; i < k; i++ {
		wy = wy.MulSqrt2()
	}
	return wd, wy, k
}

// Add returns d + y.
func (d D) Add(y D) D {
	if d.IsZero() {
		return y
	}
	if y.IsZero() {
		return d
	}
	wd, wy, k := align(d, y)
	return CanonD(wd.Add(wy), k)
}

// Sub returns d − y.
func (d D) Sub(y D) D { return d.Add(y.Neg()) }

// Neg returns −d.
func (d D) Neg() D { return D{d.W.Neg(), d.K} }

// Mul returns d · y.
func (d D) Mul(y D) D {
	if d.IsZero() || y.IsZero() {
		return DZero
	}
	return CanonD(d.W.Mul(y.W), d.K+y.K)
}

// Conj returns the complex conjugate (1/√2 is real, so K is unchanged).
func (d D) Conj() D {
	// Conjugation preserves the parity criterion (it only permutes/negates
	// coefficients), so the result is already canonical.
	return D{d.W.Conj(), d.K}
}

// MulSqrt2Pow returns d · √2^j for any j ∈ Z.
func (d D) MulSqrt2Pow(j int) D {
	if d.IsZero() {
		return DZero
	}
	return CanonD(d.W, d.K-j)
}

// Norm returns the squared magnitude |d|² as an exact element of Z[√2]
// scaled by 2^{-K}: it returns (n, k) with |d|² = n / 2^k where n ∈ Z[√2]
// and k = d.K (not reduced; callers needing floats use Abs2).
func (d D) Norm() (Zroot2, int) { return d.W.Norm(), d.K }

// DivE divides d by y exactly in D[ω]. ok is false when y does not divide d
// in D[ω] (e.g. division by 3): then the quotient would need an odd
// denominator and only Q[ω] can express it.
func (d D) DivE(y D) (q D, ok bool) {
	if y.IsZero() {
		return DZero, false
	}
	if d.IsZero() {
		return DZero, true
	}
	// d / y = d·ȳ·conj2(N(y)) / fieldNorm(N(y)) scaled by √2 exponents.
	n := y.W.Norm()
	m := n.FieldNorm() // ±(odd or even) integer, nonzero
	num := d.W.Mul(y.W.Conj()).Mul(n.Conj().Zomega())
	k := d.K - y.K // the two extra factors ȳ·conj2(N(y)) carry no 1/√2
	// Divide num by the integer m: strip powers of two into k, then the odd
	// part must divide all coefficients exactly for ok to hold.
	if m.Sign() < 0 {
		num = num.Neg()
		m = new(big.Int).Neg(m)
	}
	for m.Bit(0) == 0 {
		m = new(big.Int).Rsh(m, 1)
		k += 2 // dividing by 2 = multiplying by (1/√2)²
	}
	if m.Cmp(bigOne) != 0 {
		rem := new(big.Int)
		for _, coef := range []*big.Int{num.A, num.B, num.C, num.D} {
			if rem.Mod(coef, m); rem.Sign() != 0 {
				return DZero, false
			}
		}
		num = num.DivExactInt(m)
	}
	return CanonD(num, k), true
}

// Key returns a canonical string key suitable for hash maps. Because the
// representation is canonical, Key(x) == Key(y) iff x and y are the same
// complex number.
func (d D) Key() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d",
		d.W.A.Text(36), d.W.B.Text(36), d.W.C.Text(36), d.W.D.Text(36), d.K)
}

// String renders d for human consumption.
func (d D) String() string {
	if d.K == 0 {
		return d.W.String()
	}
	return fmt.Sprintf("(1/√2)^%d·%s", d.K, d.W.String())
}

// MaxBitLen returns the largest coefficient bit length (bit-width statistic).
func (d D) MaxBitLen() int { return d.W.MaxBitLen() }
