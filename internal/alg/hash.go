package alg

import "math/big"

// Structural hashing for the QMDD core's coeff.Hasher fast path. The core
// hashes an edge weight on every weight-intern lookup — i.e. on every node
// creation and every memoized Add — so these walk big.Int limbs directly
// instead of formatting the canonical Key strings (D.Key alone runs
// fmt.Sprintf over four big.Int.Text(36) calls, which used to dominate the
// hot path of the reproduction).
//
// All three types keep canonical representations (see CanonD, canonQ), so
// structural hashing is value hashing: Equal values hash equally.

const (
	hashOffset uint64 = 14695981039346656037
	hashPrime  uint64 = 1099511628211
)

func hashWord(h, w uint64) uint64 { return (h ^ w) * hashPrime }

// hashInt folds sign, limb count and limbs of x into h. big.Int stores a
// canonical limb slice (no leading zero words), so equal values fold equally.
func hashInt(h uint64, x *big.Int) uint64 {
	h = hashWord(h, uint64(x.Sign()+2))
	bits := x.Bits()
	h = hashWord(h, uint64(len(bits)))
	for _, w := range bits {
		h = hashWord(h, uint64(w))
	}
	return h
}

// Hash returns a 64-bit structural hash of z.
func (z Zomega) Hash() uint64 { return z.hash(hashOffset) }

func (z Zomega) hash(h uint64) uint64 {
	h = hashInt(h, z.A)
	h = hashInt(h, z.B)
	h = hashInt(h, z.C)
	return hashInt(h, z.D)
}

// Hash returns a 64-bit hash of the canonical representation of d; because
// that representation is unique, Hash is consistent with Equal.
func (d D) Hash() uint64 { return d.hash(hashOffset) }

func (d D) hash(h uint64) uint64 {
	return hashWord(d.W.hash(h), uint64(int64(d.K)))
}

// Hash returns a 64-bit hash of the canonical representation of q.
func (q Q) Hash() uint64 { return hashInt(q.N.hash(hashOffset), q.E) }

// Hash implements the coeff.Hasher fast path for the QMDD core: weights are
// hashed limb-by-limb, never via Key strings.
func (Ring) Hash(a Q) uint64 { return a.Hash() }
