package alg

// Ring adapts Q[ω] to the coefficient-ring interface the QMDD core consumes
// (it satisfies coeff.Ring[Q] and coeff.GCDRing[Q] structurally; this package
// deliberately does not import the interface package). All operations are
// exact; there is no tolerance anywhere.
type Ring struct{}

// Zero returns 0.
func (Ring) Zero() Q { return QZero }

// One returns 1.
func (Ring) One() Q { return QOne }

// Add returns a + b.
func (Ring) Add(a, b Q) Q { return a.Add(b) }

// Sub returns a − b.
func (Ring) Sub(a, b Q) Q { return a.Sub(b) }

// Mul returns a · b.
func (Ring) Mul(a, b Q) Q { return a.Mul(b) }

// Div returns a / b (exact: Q[ω] is a field).
func (Ring) Div(a, b Q) Q { return a.Div(b) }

// Neg returns −a.
func (Ring) Neg(a Q) Q { return a.Neg() }

// Conj returns the complex conjugate.
func (Ring) Conj(a Q) Q { return a.Conj() }

// IsZero reports a == 0 (exactly).
func (Ring) IsZero(a Q) bool { return a.IsZero() }

// IsOne reports a == 1 (exactly).
func (Ring) IsOne(a Q) bool { return a.IsOne() }

// Equal reports exact value equality.
func (Ring) Equal(a, b Q) bool { return a.Equal(b) }

// Key returns the canonical hash key.
func (Ring) Key(a Q) string { return a.Key() }

// ConcurrentSafe reports that the algebraic ring may be used from multiple
// goroutines at once (coeff.ConcurrentRing): all arithmetic allocates fresh
// values, and the only package-level state (the √2 precision cache) is
// immutable after publication.
func (Ring) ConcurrentSafe() bool { return true }

// Exact reports that Q[ω] arithmetic is exact (coeff.ExactRing): every ring
// operation returns the true algebraic value, so derived quantities like the
// retained-fidelity ratio of core.Approximate can be certified.
func (Ring) Exact() bool { return true }

// FromQ is the identity injection.
func (Ring) FromQ(q Q) Q { return q }

// FromComplex always fails: Q[ω] cannot represent arbitrary complex values.
// Parametric gates must be compiled to Clifford+T first.
func (Ring) FromComplex(complex128) (Q, bool) { return QZero, false }

// Complex128 returns the nearest complex128 (export boundary only).
func (Ring) Complex128(a Q) complex128 { return a.Complex128() }

// Abs2 returns |a|² as a float64 computed from the exact norm.
func (Ring) Abs2(a Q) float64 { return a.Abs2() }

// BitLen returns the maximum coefficient bit width.
func (Ring) BitLen(a Q) int { return a.MaxBitLen() }

// GCD implements the GCD computation of Algorithm 3: all weights must lie in
// the subring D[ω]; the returned divisor is unit-adjusted against the
// leftmost nonzero weight so that dividing by it yields the canonical
// associate. ok is false when some weight has an odd denominator (the
// weights left D[ω], e.g. after Q[ω]-inverse normalization elsewhere).
func (Ring) GCD(ws []Q) (Q, bool) {
	ds := make([]D, 0, len(ws))
	var leftmost D
	haveLeft := false
	for _, w := range ws {
		if w.IsZero() {
			continue
		}
		d, ok := w.InD()
		if !ok {
			return QZero, false
		}
		ds = append(ds, d)
		if !haveLeft {
			leftmost, haveLeft = d, true
		}
	}
	if !haveLeft {
		return QZero, false
	}
	g := GCDD(ds...)
	g = AdjustGCD(g, leftmost)
	return QFromD(g), true
}

// DivExact returns a/b when both lie in D[ω] and b divides a there.
func (Ring) DivExact(a, b Q) (Q, bool) {
	da, ok := a.InD()
	if !ok {
		return QZero, false
	}
	db, ok := b.InD()
	if !ok {
		return QZero, false
	}
	q, ok := da.DivE(db)
	if !ok {
		return QZero, false
	}
	return QFromD(q), true
}
