package alg

import (
	"math/rand"
	"testing"
)

// TestExample9 reproduces the paper's Example 9: α = 2ω³ + 3ω² + 2ω + 4 has
// non-minimal norm 33 + 12√2 (derived pairs (33,12) and (24,33)); the
// associate reached via the unit (ω − 1) has the minimal norm 42 − 9√2 with
// derived pair (9, 21).
//
// Note a typo in the paper's printed coefficients: it gives
// α·(ω−1) = −2ω³ + ω² − ω − 6, which is the complex CONJUGATE of the true
// product ω³ − ω² + 2ω − 6 (the conjugate is not even an associate of α, as
// their quotient has unit modulus but is not a root of unity). We assert the
// mathematically correct values; the norm 42 − 9√2 matches the paper either
// way, since conjugation preserves it.
func TestExample9(t *testing.T) {
	alpha := NewD(2, 3, 2, 4, 0)
	n := alpha.W.Norm()
	if !n.Equal(NewZroot2(33, 12)) {
		t.Fatalf("N(α) = %v, want 33 + 12√2", n)
	}
	assoc := alpha.W.Mul(NewZomega(0, 0, 1, -1)) // α·(ω − 1)
	if !assoc.Equal(NewZomega(1, -1, 2, -6)) {
		t.Fatalf("α·(ω−1) = %v, want ω³ − ω² + 2ω − 6", assoc)
	}
	if !assoc.Norm().Equal(NewZroot2(42, -9)) {
		t.Fatalf("N(α·(ω−1)) = %v, want 42 − 9√2", assoc.Norm())
	}
	zc, unit := CanonicalAssociate(alpha)
	// Rotation canonicalization of the minimal-norm associate: abs quadruple
	// (1,1,2,6) with positive d picks −ω³ + ω² − 2ω + 6.
	want := NewD(-1, 1, -2, 6, 0)
	if !zc.Equal(want) {
		t.Fatalf("canonical associate = %v, want %v", zc, want)
	}
	if !zc.W.Norm().Equal(NewZroot2(42, -9)) {
		t.Fatalf("canonical associate norm = %v, want 42 − 9√2", zc.W.Norm())
	}
	if !alpha.Mul(unit).Equal(zc) {
		t.Fatalf("α·unit = %v ≠ canonical associate %v", alpha.Mul(unit), zc)
	}
}

// TestCanonicalAssociateIsCanonical: all associates of a value canonicalize
// to the same representative.
func TestCanonicalAssociateIsCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	units := []D{
		DOne, DInvSqrt2, DSqrt2, DOmegaVal, DOmegaPow(3), DMinusOne,
		lambda, lambdaInv, lambda.Mul(lambda), lambda.Mul(DOmegaPow(5)),
	}
	for i := 0; i < 60; i++ {
		z := randD(r, 8, 2)
		if z.IsZero() {
			continue
		}
		base, _ := CanonicalAssociate(z)
		for _, u := range units {
			got, _ := CanonicalAssociate(z.Mul(u))
			if !got.Equal(base) {
				t.Fatalf("associates of %v canonicalize differently: %v (via %v) vs %v",
					z, got, u, base)
			}
		}
	}
}

// TestCanonicalAssociateProperties checks the paper's properties (a) and the
// unit relation.
func TestCanonicalAssociateProperties(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 100; i++ {
		z := randD(r, 10, 3)
		if z.IsZero() {
			continue
		}
		zc, unit := CanonicalAssociate(z)
		if zc.K != 0 {
			t.Fatalf("canonical associate %v has k = %d, want 0", zc, zc.K)
		}
		if !z.Mul(unit).Equal(zc) {
			t.Fatalf("z·unit ≠ zc")
		}
		// unit must be invertible in D[ω].
		if _, ok := DOne.DivE(unit); !ok {
			t.Fatalf("returned unit %v is not a D[ω] unit", unit)
		}
		// d coefficient of the canonical associate is non-negative.
		if zc.W.D.Sign() < 0 {
			t.Fatalf("canonical associate %v has negative d", zc)
		}
	}
}

func TestAdjustGCD(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		g := randD(r, 5, 1)
		w := randD(r, 5, 1)
		if g.IsZero() || w.IsZero() {
			continue
		}
		wi := w.Mul(g) // g divides wi by construction
		g2 := AdjustGCD(g, wi)
		z, ok := wi.DivE(g2)
		if !ok {
			t.Fatalf("adjusted gcd %v does not divide %v", g2, wi)
		}
		want, _ := CanonicalAssociate(w)
		if !z.Equal(want) {
			t.Fatalf("wi/g' = %v, want canonical associate %v", z, want)
		}
	}
}

func TestCanonicalAssociateZero(t *testing.T) {
	zc, unit := CanonicalAssociate(DZero)
	if !zc.IsZero() || !unit.IsOne() {
		t.Fatalf("CanonicalAssociate(0) = %v, %v", zc, unit)
	}
}
