package alg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestApproximateComplexWithinBound: every approximation respects the
// advertised error radius, and the radius shrinks as k grows — the paper's
// density claim, constructively.
func TestApproximateComplexWithinBound(t *testing.T) {
	r := rand.New(rand.NewSource(210))
	for trial := 0; trial < 300; trial++ {
		c := complex(r.NormFloat64(), r.NormFloat64())
		for _, k := range []int{0, 2, 5, 10, 20, 40} {
			d := ApproximateComplex(c, k)
			if err := cmplx.Abs(d.Complex128() - c); err > ApproxErrorBound(k)+1e-12 {
				t.Fatalf("k=%d: |approx − c| = %v > bound %v (c = %v)",
					k, err, ApproxErrorBound(k), c)
			}
		}
	}
}

// TestApproximationConverges: the error actually decreases geometrically.
func TestApproximationConverges(t *testing.T) {
	c := complex(0.12345678901234, -0.98765432109876)
	prev := cmplx.Abs(ApproximateComplex(c, 0).Complex128() - c)
	for k := 4; k <= 40; k += 4 {
		cur := cmplx.Abs(ApproximateComplex(c, k).Complex128() - c)
		if cur > prev+1e-15 {
			t.Fatalf("error grew from %v to %v at k=%d", prev, cur, k)
		}
		prev = cur
	}
	if prev > 1e-5 {
		t.Fatalf("error at k=40 still %v", prev)
	}
}

// TestApproximateExactValues: values already on the lattice are recovered
// exactly.
func TestApproximateExactValues(t *testing.T) {
	if !ApproximateComplex(0, 7).IsZero() {
		t.Fatal("0 not approximated by 0")
	}
	if !ApproximateComplex(1, 0).IsOne() {
		t.Fatal("1 not approximated by 1")
	}
	half := ApproximateComplex(complex(0.5, 0), 2)
	if !half.Equal(DHalf) {
		t.Fatalf("1/2 approximated by %v", half)
	}
	// Even exponents put the Gaussian integers on the lattice exactly.
	i := ApproximateComplex(1i, 4)
	if !i.Equal(DI) {
		t.Fatalf("i approximated by %v", i)
	}
	// At odd k the lattice is scaled by an irrational factor, so i is only
	// approximated — but still within the bound.
	i3 := ApproximateComplex(1i, 3)
	if d := i3.Complex128() - 1i; real(d)*real(d)+imag(d)*imag(d) > ApproxErrorBound(3)*ApproxErrorBound(3)+1e-12 {
		t.Fatalf("odd-k approximation of i out of bound: %v", i3)
	}
}

// TestApproximateNegativeK: negative exponents clamp to 0.
func TestApproximateNegativeK(t *testing.T) {
	d := ApproximateComplex(complex(3.4, -2.1), -5)
	if err := cmplx.Abs(d.Complex128() - complex(3.4, -2.1)); err > ApproxErrorBound(0)+1e-12 {
		t.Fatalf("clamped approximation off by %v", err)
	}
}
