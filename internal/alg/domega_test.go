package alg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randD(r *rand.Rand, bound int64, kRange int) D {
	z := randZomega(r, bound)
	k := r.Intn(2*kRange+1) - kRange
	return CanonD(z, k)
}

// TestAlgorithm1Examples reproduces the paper's Examples 6 and 7: the number
// √2 has representations with k ∈ {−1, 0, 1} and the minimal one is
// (0,0,0,1) with k = −1.
func TestAlgorithm1Examples(t *testing.T) {
	// k = 1 representation: (1/√2)·2
	d1 := NewD(0, 0, 0, 2, 1)
	// k = 0 representation: −ω³ + ω
	d2 := NewD(-1, 0, 1, 0, 0)
	// k = −1 representation: (1/√2)^{−1}·1 = √2
	d3 := NewD(0, 0, 0, 1, -1)
	if !d1.Equal(d3) || !d2.Equal(d3) {
		t.Fatalf("√2 representations disagree: %v, %v, %v", d1, d2, d3)
	}
	if d3.K != -1 || !d3.W.IsOne() {
		t.Fatalf("canonical √2 = %v, want k=−1, coeffs (0,0,0,1)", d3)
	}
	if !DSqrt2.Equal(d3) {
		t.Fatalf("DSqrt2 constant = %v", DSqrt2)
	}
}

// TestAlgorithm1Minimality checks the constructive criterion: a canonical
// nonzero D has a ≢ c (mod 2) or b ≢ d (mod 2).
func TestAlgorithm1Minimality(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		d := randD(r, 30, 6)
		if d.IsZero() {
			continue
		}
		if parityEq(d.W.A, d.W.C) && parityEq(d.W.B, d.W.D) {
			t.Fatalf("canonical form %v violates minimality criterion", d)
		}
	}
}

// TestCanonDPreservesValue verifies that canonicalization never changes the
// complex value.
func TestCanonDPreservesValue(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		z := randZomega(r, 20)
		k := r.Intn(9) - 4
		d := CanonD(z, k)
		want := z.Complex128()
		// scale by (1/√2)^k
		for j := 0; j < k; j++ {
			want /= complex(1.4142135623730951, 0)
		}
		for j := 0; j > k; j-- {
			want *= complex(1.4142135623730951, 0)
		}
		if cmplx.Abs(d.Complex128()-want) > 1e-8*(1+cmplx.Abs(want)) {
			t.Fatalf("CanonD(%v, %d) = %v ≈ %v, want %v", z, k, d, d.Complex128(), want)
		}
	}
}

func TestDArithmeticMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		x, y := randD(r, 8, 3), randD(r, 8, 3)
		cx, cy := x.Complex128(), y.Complex128()
		checks := []struct {
			name string
			got  D
			want complex128
		}{
			{"add", x.Add(y), cx + cy},
			{"sub", x.Sub(y), cx - cy},
			{"mul", x.Mul(y), cx * cy},
			{"neg", x.Neg(), -cx},
			{"conj", x.Conj(), cmplx.Conj(cx)},
		}
		for _, c := range checks {
			if cmplx.Abs(c.got.Complex128()-c.want) > 1e-7*(1+cmplx.Abs(c.want)) {
				t.Fatalf("%s(%v, %v) = %v, want %v", c.name, x, y, c.got.Complex128(), c.want)
			}
		}
	}
}

func TestDCanonicalEquality(t *testing.T) {
	// The same value constructed along different routes must be structurally
	// identical — the property that lets the algebraic QMDD detect every
	// redundancy.
	a := DInvSqrt2.Mul(DInvSqrt2) // 1/2
	b := DHalf
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatalf("(1/√2)² = %v ≠ 1/2 = %v", a, b)
	}
	// ω − ω³ = √2
	c := DOmegaVal.Sub(DOmegaPow(3))
	if !c.Equal(DSqrt2) {
		t.Fatalf("ω − ω³ = %v, want √2", c)
	}
	// (1+i)/√2 = ω
	d := DOne.Add(DI).Mul(DInvSqrt2)
	if !d.Equal(DOmegaVal) {
		t.Fatalf("(1+i)/√2 = %v, want ω", d)
	}
}

func TestDivE(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		x, y := randD(r, 8, 3), randD(r, 8, 3)
		if y.IsZero() {
			continue
		}
		p := x.Mul(y)
		q, ok := p.DivE(y)
		if !ok {
			t.Fatalf("(x·y)/y not exact for x=%v y=%v", x, y)
		}
		if !q.Equal(x) {
			t.Fatalf("(x·y)/y = %v, want %v", q, x)
		}
	}
	// 1/3 is not in D[ω].
	if _, ok := DOne.DivE(DFromInt(3)); ok {
		t.Fatal("1/3 reported as exact in D[ω]")
	}
	// Division by zero fails cleanly.
	if _, ok := DOne.DivE(DZero); ok {
		t.Fatal("division by zero reported as exact")
	}
	// Dividing by a unit is always exact.
	if _, ok := DFromInt(7).DivE(DInvSqrt2); !ok {
		t.Fatal("division by the unit 1/√2 not exact")
	}
}

func TestDKeyUniqueness(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	seen := make(map[string]D)
	for i := 0; i < 500; i++ {
		d := randD(r, 6, 2)
		if prev, ok := seen[d.Key()]; ok {
			if !prev.Equal(d) {
				t.Fatalf("key collision between %v and %v", prev, d)
			}
			continue
		}
		seen[d.Key()] = d
	}
}

func TestMulSqrt2Pow(t *testing.T) {
	x := DOne
	if got := x.MulSqrt2Pow(2); !got.Equal(DFromInt(2)) {
		t.Fatalf("√2² = %v, want 2", got)
	}
	if got := x.MulSqrt2Pow(-2); !got.Equal(DHalf) {
		t.Fatalf("√2^{−2} = %v, want 1/2", got)
	}
	if got := DSqrt2.MulSqrt2Pow(-1); !got.Equal(DOne) {
		t.Fatalf("√2·√2^{−1} = %v, want 1", got)
	}
}
