package alg

import (
	"math"
	"math/big"
	"sync"
)

// Floating-point views of the exact values. These are used only at the
// boundary of the system: when exporting amplitudes, when computing the
// accuracy metric ‖v_num − v_alg‖₂ (in big.Float so the comparison itself
// does not drown in float64 noise), and when sampling measurement outcomes.

// sqrt2Cache is the only mutable package-level state in alg, shared by
// every manager/goroutine that exports amplitudes. It memoizes √2 per
// precision as a *big.Float that is treated as strictly immutable once
// published: all users read it via big.Float operations (Quo/Mul with a
// fresh receiver) and never pass it as a receiver. LoadOrStore keeps the
// published value canonical — two goroutines racing on a cold precision
// both end up holding the same pointer, not two equal-but-distinct ones.
var sqrt2Cache sync.Map // prec uint -> *big.Float (immutable after publish)

func sqrt2At(prec uint) *big.Float {
	if v, ok := sqrt2Cache.Load(prec); ok {
		return v.(*big.Float)
	}
	v, _ := sqrt2Cache.LoadOrStore(prec, sqrt2Float(prec))
	return v.(*big.Float)
}

// Float returns the real and imaginary parts of z at the given precision.
//
// With ω = (1+i)/√2 and ω³ = (−1+i)/√2:
//
//	Re = (C − A)/√2 + D,  Im = (C + A)/√2 + B.
func (z Zomega) Float(prec uint) (re, im *big.Float) {
	wp := prec + 16
	s2 := sqrt2At(wp)
	re = new(big.Float).SetPrec(wp).SetInt(new(big.Int).Sub(z.C, z.A))
	re.Quo(re, s2)
	re.Add(re, new(big.Float).SetPrec(wp).SetInt(z.D))
	im = new(big.Float).SetPrec(wp).SetInt(new(big.Int).Add(z.C, z.A))
	im.Quo(im, s2)
	im.Add(im, new(big.Float).SetPrec(wp).SetInt(z.B))
	return re.SetPrec(prec), im.SetPrec(prec)
}

// Float returns the real and imaginary parts of d at the given precision.
func (d D) Float(prec uint) (re, im *big.Float) {
	wp := prec + 16
	re, im = d.W.Float(wp)
	if d.K != 0 {
		scale := sqrt2PowFloat(-d.K, wp)
		re.Mul(re, scale)
		im.Mul(im, scale)
	}
	return re.SetPrec(prec), im.SetPrec(prec)
}

// Float returns the real and imaginary parts of q at the given precision.
func (q Q) Float(prec uint) (re, im *big.Float) {
	wp := prec + 16
	re, im = q.N.Float(wp)
	if q.E.Cmp(bigOne) != 0 {
		e := new(big.Float).SetPrec(wp).SetInt(q.E)
		re.Quo(re, e)
		im.Quo(im, e)
	}
	return re.SetPrec(prec), im.SetPrec(prec)
}

// sqrt2PowFloat returns √2^j at the given precision (j may be negative).
func sqrt2PowFloat(j int, prec uint) *big.Float {
	r := new(big.Float).SetPrec(prec).SetInt64(1)
	neg := j < 0
	if neg {
		j = -j
	}
	// √2^j = 2^{j/2} · √2^{j mod 2}
	r.SetMantExp(r, j/2)
	if j%2 == 1 {
		r.Mul(r, sqrt2At(prec))
	}
	if neg {
		one := new(big.Float).SetPrec(prec).SetInt64(1)
		r = one.Quo(one, r)
	}
	return r
}

// Complex128 returns the nearest complex128 to z.
func (z Zomega) Complex128() complex128 { return toC128(z.Float(64)) }

// Complex128 returns the nearest complex128 to d.
func (d D) Complex128() complex128 { return toC128(d.Float(64)) }

// Complex128 returns the nearest complex128 to q.
func (q Q) Complex128() complex128 { return toC128(q.Float(64)) }

func toC128(re, im *big.Float) complex128 {
	r, _ := re.Float64()
	i, _ := im.Float64()
	return complex(r, i)
}

// Abs2 returns |q|² as a float64, computed from the exact norm so it is
// accurate even when the coefficients are huge.
func (q Q) Abs2() float64 {
	if q.IsZero() {
		return 0
	}
	n, k := q.N.Norm()
	// |q|² = (u + v√2) / (2^{k/2·2} … ) / E²; do it in big.Float.
	prec := uint(96)
	f := n.Float(prec)
	f.Mul(f, sqrt2PowFloat(-2*k, prec))
	e2 := new(big.Float).SetPrec(prec).SetInt(new(big.Int).Mul(q.E, q.E))
	f.Quo(f, e2)
	v, _ := f.Float64()
	return v
}

// Abs2 returns |d|² as a float64.
func (d D) Abs2() float64 { return QFromD(d).Abs2() }

// Abs returns |q| as a float64.
func (q Q) Abs() float64 { return math.Sqrt(q.Abs2()) }
