package alg

import (
	"math/big"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randQ(r *rand.Rand, bound int64, kRange int, denBound int64) Q {
	den := r.Int63n(denBound) + 1
	return canonQ(randZomega(r, bound), r.Intn(2*kRange+1)-kRange, big.NewInt(den))
}

// TestExample8 reproduces the paper's Example 8: z = 1 + i√2 has norm 3 and
// inverse (1 − i√2)/3.
func TestExample8(t *testing.T) {
	i := DI
	z := DOne.Add(i.Mul(DSqrt2))
	n := z.W.Norm()
	if f, _ := n.Float(64).Float64(); f != 3 {
		t.Fatalf("N(1+i√2) = %v, want 3", n)
	}
	q := QFromD(z)
	inv := q.Inv()
	want := QFromD(DOne.Sub(i.Mul(DSqrt2)))
	want = Q{want.N, big.NewInt(1)}
	// (1 − i√2)/3
	wantQ := canonQ(want.N.W, want.N.K, big.NewInt(3))
	if !inv.Equal(wantQ) {
		t.Fatalf("(1+i√2)⁻¹ = %v, want %v", inv, wantQ)
	}
	if !q.Mul(inv).IsOne() {
		t.Fatalf("z·z⁻¹ = %v, want 1", q.Mul(inv))
	}
}

func TestQInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for i := 0; i < 500; i++ {
		q := randQ(r, 20, 4, 40)
		if q.E.Sign() <= 0 {
			t.Fatalf("denominator not positive: %v", q)
		}
		if q.E.Bit(0) == 0 {
			t.Fatalf("denominator not odd: %v", q)
		}
		if q.IsZero() {
			continue
		}
		g := new(big.Int).GCD(nil, nil, q.N.W.Content(), q.E)
		if g.Cmp(bigOne) != 0 {
			t.Fatalf("representation not reduced: %v (gcd %v)", q, g)
		}
	}
}

func TestQFieldAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		x, y, z := randQ(r, 8, 2, 9), randQ(r, 8, 2, 9), randQ(r, 8, 2, 9)
		if !x.Add(y).Equal(y.Add(x)) {
			t.Fatal("addition not commutative")
		}
		if !x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z))) {
			t.Fatalf("distributivity fails: %v %v %v", x, y, z)
		}
		if !x.Mul(y.Mul(z)).Equal(x.Mul(y).Mul(z)) {
			t.Fatal("multiplication not associative")
		}
		if !x.Sub(x).IsZero() {
			t.Fatal("x − x ≠ 0")
		}
		if !x.IsZero() {
			if inv := x.Inv(); !x.Mul(inv).IsOne() {
				t.Fatalf("x·x⁻¹ ≠ 1 for %v (inv %v, product %v)", x, inv, x.Mul(inv))
			}
		}
		if !y.IsZero() {
			if !x.Div(y).Mul(y).Equal(x) {
				t.Fatalf("(x/y)·y ≠ x for %v / %v", x, y)
			}
		}
	}
}

func TestQArithmeticMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 300; i++ {
		x, y := randQ(r, 6, 2, 9), randQ(r, 6, 2, 9)
		cx, cy := x.Complex128(), y.Complex128()
		if got := x.Add(y).Complex128(); cmplx.Abs(got-(cx+cy)) > 1e-7*(1+cmplx.Abs(cx+cy)) {
			t.Fatalf("add mismatch")
		}
		if got := x.Mul(y).Complex128(); cmplx.Abs(got-cx*cy) > 1e-7*(1+cmplx.Abs(cx*cy)) {
			t.Fatalf("mul mismatch")
		}
		if !y.IsZero() {
			if got := x.Div(y).Complex128(); cmplx.Abs(got-cx/cy) > 1e-6*(1+cmplx.Abs(cx/cy)) {
				t.Fatalf("div mismatch: %v / %v = %v want %v", x, y, got, cx/cy)
			}
		}
	}
}

func TestQConjAndAbs(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		q := randQ(r, 6, 2, 9)
		c := q.Complex128()
		if got := q.Conj().Complex128(); cmplx.Abs(got-cmplx.Conj(c)) > 1e-8*(1+cmplx.Abs(c)) {
			t.Fatalf("conj mismatch")
		}
		want := real(c)*real(c) + imag(c)*imag(c)
		if got := q.Abs2(); got-want > 1e-6*(1+want) || want-got > 1e-6*(1+want) {
			t.Fatalf("Abs2(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestQInD(t *testing.T) {
	q := NewQ(0, 0, 0, 1, 0, 3) // 1/3
	if _, ok := q.InD(); ok {
		t.Fatal("1/3 reported to be in D[ω]")
	}
	d, ok := NewQ(1, 2, 3, 4, 2, 1).InD()
	if !ok {
		t.Fatal("D[ω] element not recognized")
	}
	if !d.Equal(NewD(1, 2, 3, 4, 2)) {
		t.Fatalf("InD returned %v", d)
	}
	// Denominators that are powers of two fold into the exponent.
	q2 := NewQ(0, 0, 0, 1, 0, 4) // 1/4 = (1/√2)⁴
	if _, ok := q2.InD(); !ok {
		t.Fatal("1/4 should be in D[ω]")
	}
	if q2.N.K != 4 {
		t.Fatalf("1/4 canonical exponent = %d, want 4", q2.N.K)
	}
}

func TestQKeyCanonical(t *testing.T) {
	a := NewQ(0, 0, 0, 2, 0, 6)   // 2/6 = 1/3
	b := NewQ(0, 0, 0, 1, 0, 3)   // 1/3
	c := NewQ(0, 0, 0, -1, 0, -3) // −1/−3 = 1/3
	if a.Key() != b.Key() || b.Key() != c.Key() {
		t.Fatalf("equal values with different keys: %q %q %q", a.Key(), b.Key(), c.Key())
	}
}

func TestQInvPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	QZero.Inv()
}
