package alg

import (
	"fmt"
	"math/big"
)

// Zroot2 is an element u + v√2 of the real quadratic ring Z[√2]. It appears
// as the codomain of the squared-magnitude norm N(z) = z·z̄ on Z[ω] and
// carries the unit structure (the Pell unit 1+√2) used when the GCD
// normalization scheme selects a canonical associate.
type Zroot2 struct {
	U, V *big.Int
}

// NewZroot2 returns u + v√2.
func NewZroot2(u, v int64) Zroot2 {
	return Zroot2{big.NewInt(u), big.NewInt(v)}
}

// IsZero reports whether r == 0.
func (r Zroot2) IsZero() bool { return r.U.Sign() == 0 && r.V.Sign() == 0 }

// Equal reports value equality (coefficient equality, as √2 is irrational).
func (r Zroot2) Equal(s Zroot2) bool {
	return r.U.Cmp(s.U) == 0 && r.V.Cmp(s.V) == 0
}

// Add returns r + s.
func (r Zroot2) Add(s Zroot2) Zroot2 {
	return Zroot2{new(big.Int).Add(r.U, s.U), new(big.Int).Add(r.V, s.V)}
}

// Sub returns r − s.
func (r Zroot2) Sub(s Zroot2) Zroot2 {
	return Zroot2{new(big.Int).Sub(r.U, s.U), new(big.Int).Sub(r.V, s.V)}
}

// Neg returns −r.
func (r Zroot2) Neg() Zroot2 {
	return Zroot2{new(big.Int).Neg(r.U), new(big.Int).Neg(r.V)}
}

// Mul returns r · s: (u₁ + v₁√2)(u₂ + v₂√2) = (u₁u₂ + 2v₁v₂) + (u₁v₂ + v₁u₂)√2.
func (r Zroot2) Mul(s Zroot2) Zroot2 {
	u := new(big.Int).Mul(r.U, s.U)
	t := new(big.Int).Mul(r.V, s.V)
	t.Lsh(t, 1)
	u.Add(u, t)
	v := new(big.Int).Mul(r.U, s.V)
	t2 := new(big.Int).Mul(r.V, s.U)
	v.Add(v, t2)
	return Zroot2{u, v}
}

// Conj returns the √2-conjugate u − v√2.
func (r Zroot2) Conj() Zroot2 {
	return Zroot2{cp(r.U), new(big.Int).Neg(r.V)}
}

// FieldNorm returns u² − 2v² ∈ Z, the norm of r over Q (may be negative).
func (r Zroot2) FieldNorm() *big.Int {
	n := new(big.Int).Mul(r.U, r.U)
	t := new(big.Int).Mul(r.V, r.V)
	t.Lsh(t, 1)
	return n.Sub(n, t)
}

// FieldNormAbs returns |u² − 2v²|.
func (r Zroot2) FieldNormAbs() *big.Int {
	return new(big.Int).Abs(r.FieldNorm())
}

// Zomega embeds r into Z[ω] using √2 = ω − ω³.
func (r Zroot2) Zomega() Zomega {
	return Zomega{
		A: new(big.Int).Neg(r.V),
		B: new(big.Int),
		C: cp(r.V),
		D: cp(r.U),
	}
}

// Sign reports the sign of the real number u + v√2: −1, 0 or +1.
func (r Zroot2) Sign() int {
	su, sv := r.U.Sign(), r.V.Sign()
	switch {
	case su == 0 && sv == 0:
		return 0
	case su >= 0 && sv >= 0:
		return 1
	case su <= 0 && sv <= 0:
		return -1
	}
	// Mixed signs: compare u² with 2v². u + v√2 > 0 iff u > −v√2, and with
	// mixed signs this reduces to comparing squares.
	u2 := new(big.Int).Mul(r.U, r.U)
	v2 := new(big.Int).Mul(r.V, r.V)
	v2.Lsh(v2, 1)
	c := u2.Cmp(v2)
	if su > 0 { // u > 0, v < 0: positive iff u² > 2v²
		if c > 0 {
			return 1
		}
		return -1
	}
	// u < 0, v > 0: positive iff 2v² > u²
	if c < 0 {
		return 1
	}
	return -1
}

// Float returns u + v√2 as a big.Float with the given precision.
func (r Zroot2) Float(prec uint) *big.Float {
	u := new(big.Float).SetPrec(prec).SetInt(r.U)
	v := new(big.Float).SetPrec(prec).SetInt(r.V)
	v.Mul(v, sqrt2Float(prec))
	return u.Add(u, v)
}

func (r Zroot2) String() string { return fmt.Sprintf("(%v + %v·√2)", r.U, r.V) }

// sqrt2Float returns √2 at the given precision (recomputed per call; the
// callers cache at a higher level where it matters).
func sqrt2Float(prec uint) *big.Float {
	two := new(big.Float).SetPrec(prec + 8).SetInt64(2)
	return new(big.Float).SetPrec(prec).Sqrt(two)
}
