package alg

import (
	"math"
	"math/big"
)

// Constructive density: the paper leans on D[ω] being a dense subset of ℂ
// ("any quantum state and operation can be approximated to an arbitrary
// precision"). ApproximateComplex realizes that claim: it returns the
// element of the sub-lattice (1/√2^k)·Z[i] nearest to c, whose distance to
// c is at most 1/√2^{k·... } — precisely, half a lattice diagonal,
// (1/√2)^{k+1} ... bounded by (1/√2)^k (see ApproxErrorBound).

// ApproximateComplex returns a D[ω] value within ApproxErrorBound(k) of c,
// using denominator exponent at most k (k ≥ 0). Larger k gives finer
// approximations: the error halves every two steps of k.
func ApproximateComplex(c complex128, k int) D {
	if k < 0 {
		k = 0
	}
	// Scale by √2^k and round the real and imaginary parts to integers:
	// the value (x + i·y)/√2^k lies in D[ω] since i = ω².
	scale := math.Pow(math.Sqrt2, float64(k))
	x := math.Round(real(c) * scale)
	y := math.Round(imag(c) * scale)
	w := NewZomegaBig(big.NewInt(0), bigFromFloat(y), big.NewInt(0), bigFromFloat(x))
	return CanonD(w, k)
}

func bigFromFloat(f float64) *big.Int {
	bf := new(big.Float).SetFloat64(f)
	i, _ := bf.Int(nil)
	return i
}

// ApproxErrorBound returns the guaranteed approximation radius of
// ApproximateComplex with exponent k: half the diagonal of a lattice cell,
// (1/√2)·(1/√2)^k = (1/√2)^{k+1}·√2 = (1/√2)^k... precisely
// √2/2 · (1/√2)^k.
func ApproxErrorBound(k int) float64 {
	if k < 0 {
		k = 0
	}
	return math.Sqrt2 / 2 * math.Pow(1/math.Sqrt2, float64(k))
}
