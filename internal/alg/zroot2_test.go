package alg

import (
	"math"
	"math/rand"
	"testing"
)

func TestZroot2Arithmetic(t *testing.T) {
	r := rand.New(rand.NewSource(200))
	for i := 0; i < 300; i++ {
		a := NewZroot2(r.Int63n(41)-20, r.Int63n(41)-20)
		b := NewZroot2(r.Int63n(41)-20, r.Int63n(41)-20)
		fa, _ := a.Float(64).Float64()
		fb, _ := b.Float(64).Float64()
		if got, _ := a.Add(b).Float(64).Float64(); math.Abs(got-(fa+fb)) > 1e-9 {
			t.Fatalf("add: %v + %v", a, b)
		}
		if got, _ := a.Sub(b).Float(64).Float64(); math.Abs(got-(fa-fb)) > 1e-9 {
			t.Fatalf("sub: %v − %v", a, b)
		}
		if got, _ := a.Mul(b).Float(64).Float64(); math.Abs(got-fa*fb) > 1e-6 {
			t.Fatalf("mul: %v · %v", a, b)
		}
		if got, _ := a.Neg().Float(64).Float64(); got != -fa {
			t.Fatalf("neg: %v", a)
		}
	}
}

func TestZroot2Sign(t *testing.T) {
	cases := []struct {
		u, v int64
		want int
	}{
		{0, 0, 0},
		{3, 0, 1},
		{-3, 0, -1},
		{0, 2, 1},
		{0, -2, -1},
		{3, -2, 1},  // 3 − 2√2 ≈ 0.17
		{-3, 2, -1}, // −3 + 2√2 ≈ −0.17... wait: 2√2 ≈ 2.83 > 3? No: 2.83 < 3
		{2, -3, -1}, // 2 − 3√2 < 0
		{-2, 3, 1},  // −2 + 3√2 > 0
		{1, 1, 1},
		{-1, -1, -1},
	}
	for _, c := range cases {
		r := NewZroot2(c.u, c.v)
		if got := r.Sign(); got != c.want {
			f, _ := r.Float(64).Float64()
			t.Fatalf("Sign(%v) = %d, want %d (value %v)", r, got, c.want, f)
		}
	}
	// Property: Sign agrees with the float value.
	rr := rand.New(rand.NewSource(201))
	for i := 0; i < 500; i++ {
		r := NewZroot2(rr.Int63n(201)-100, rr.Int63n(201)-100)
		f, _ := r.Float(96).Float64()
		want := 0
		if f > 1e-12 {
			want = 1
		} else if f < -1e-12 {
			want = -1
		}
		if got := r.Sign(); got != want {
			t.Fatalf("Sign(%v) = %d, float %v", r, got, f)
		}
	}
}

func TestZroot2NormAndConj(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for i := 0; i < 200; i++ {
		a := NewZroot2(r.Int63n(21)-10, r.Int63n(21)-10)
		// FieldNorm = a · conj(a) as a rational integer.
		prod := a.Mul(a.Conj())
		if prod.V.Sign() != 0 {
			t.Fatalf("a·ā has a √2 part: %v", prod)
		}
		if prod.U.Cmp(a.FieldNorm()) != 0 {
			t.Fatalf("FieldNorm mismatch: %v vs %v", prod.U, a.FieldNorm())
		}
	}
}

func TestZroot2ZomegaEmbedding(t *testing.T) {
	r := NewZroot2(3, -2)
	z := r.Zomega()
	// The embedded value has zero imaginary part and the right real part.
	re, im := z.Float(64)
	reF, _ := re.Float64()
	imF, _ := im.Float64()
	want, _ := r.Float(64).Float64()
	if math.Abs(imF) > 1e-12 || math.Abs(reF-want) > 1e-9 {
		t.Fatalf("embedding of %v gave %v + %vi", r, reF, imF)
	}
}
