package su2

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randQuat(r *rand.Rand) Quat {
	q := Quat{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	return q.Normalize()
}

func TestMulIsMatrixProduct(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	for i := 0; i < 200; i++ {
		p, q := randQuat(r), randQuat(r)
		pq := p.Mul(q)
		mp, mq := p.Matrix(), q.Matrix()
		var prod [2][2]complex128
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				prod[a][b] = mp[a][0]*mq[0][b] + mp[a][1]*mq[1][b]
			}
		}
		mpq := pq.Matrix()
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if cmplx.Abs(prod[a][b]-mpq[a][b]) > 1e-12 {
					t.Fatalf("quat product disagrees with matrix product")
				}
			}
		}
	}
}

func TestConjIsInverse(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for i := 0; i < 100; i++ {
		p := randQuat(r)
		if d := p.Mul(p.Conj()).Dist(Identity); d > 1e-7 {
			t.Fatalf("p·p† distance to identity: %v", d)
		}
	}
}

func TestFromU2RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for i := 0; i < 200; i++ {
		p := randQuat(r)
		// Multiply in an arbitrary global phase: FromU2 must project it out.
		phase := cmplx.Exp(complex(0, r.Float64()*6.28))
		m := p.Matrix()
		for a := range m {
			for b := range m[a] {
				m[a][b] *= phase
			}
		}
		q := FromU2(m)
		if d := p.Dist(q); d > 1e-7 {
			t.Fatalf("FromU2 round trip distance %v", d)
		}
	}
}

func TestDistProperties(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for i := 0; i < 100; i++ {
		p := randQuat(r)
		if p.Dist(p) > 1e-7 || p.Dist(p.Neg()) > 1e-7 {
			t.Fatal("Dist not projective")
		}
		q := randQuat(r)
		if math.Abs(p.Dist(q)-q.Dist(p)) > 1e-12 {
			t.Fatal("Dist not symmetric")
		}
	}
}

func TestAxisAngle(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	for i := 0; i < 200; i++ {
		axis := [3]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		n := math.Sqrt(axis[0]*axis[0] + axis[1]*axis[1] + axis[2]*axis[2])
		if n < 1e-3 {
			continue
		}
		for j := range axis {
			axis[j] /= n
		}
		theta := r.Float64()*2.8 + 0.1
		q := FromAxisAngle(axis, theta)
		if math.Abs(q.Angle()-theta) > 1e-9 {
			t.Fatalf("angle %v, want %v", q.Angle(), theta)
		}
		got := q.Axis()
		for j := range axis {
			if math.Abs(got[j]-axis[j]) > 1e-9 {
				t.Fatalf("axis %v, want %v", got, axis)
			}
		}
	}
}

func TestAlignAxes(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	for i := 0; i < 200; i++ {
		a := randomAxis(r)
		b := randomAxis(r)
		s := AlignAxes(a, b)
		// Conjugating a rotation about a by s gives a rotation about b.
		theta := 0.7
		q := FromAxisAngle(a, theta)
		conj := s.Mul(q).Mul(s.Conj()).Normalize()
		want := FromAxisAngle(b, theta)
		if d := conj.Dist(want); d > 1e-7 {
			t.Fatalf("AlignAxes failed: dist %v (a=%v b=%v)", d, a, b)
		}
	}
	// Opposite axes edge case.
	s := AlignAxes([3]float64{0, 0, 1}, [3]float64{0, 0, -1})
	q := FromAxisAngle([3]float64{0, 0, 1}, 0.5)
	conj := s.Mul(q).Mul(s.Conj()).Normalize()
	want := FromAxisAngle([3]float64{0, 0, -1}, 0.5)
	if d := conj.Dist(want); d > 1e-7 {
		t.Fatalf("opposite-axes alignment failed: %v", d)
	}
}

func randomAxis(r *rand.Rand) [3]float64 {
	for {
		a := [3]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		n := math.Sqrt(a[0]*a[0] + a[1]*a[1] + a[2]*a[2])
		if n > 1e-3 {
			return [3]float64{a[0] / n, a[1] / n, a[2] / n}
		}
	}
}

func TestRotZMatchesDiagonal(t *testing.T) {
	theta := 0.37
	q := RotZ(theta)
	m := q.Matrix()
	want00 := cmplx.Exp(complex(0, -theta/2))
	want11 := cmplx.Exp(complex(0, theta/2))
	if cmplx.Abs(m[0][0]-want00) > 1e-12 || cmplx.Abs(m[1][1]-want11) > 1e-12 ||
		cmplx.Abs(m[0][1]) > 1e-12 || cmplx.Abs(m[1][0]) > 1e-12 {
		t.Fatalf("RotZ matrix = %v", m)
	}
}
