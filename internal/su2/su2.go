// Package su2 provides unit-quaternion arithmetic for single-qubit unitaries
// up to global phase. It is the geometric substrate of the Solovay–Kitaev
// synthesizer (internal/synth), which replaces the paper's Quipper pipeline
// for compiling arbitrary rotations into Clifford+T sequences.
//
// The correspondence used throughout: the unit quaternion
// q = (W, X, Y, Z) maps to the SU(2) matrix
//
//	U(q) = [[W + iZ, iX + Y], [iX − Y, W − iZ]] = W·I + i(Xσx + Yσy + Zσz),
//
// so quaternion multiplication is matrix multiplication and −q represents
// the same projective unitary as q.
package su2

import (
	"math"
	"math/cmplx"
)

// Quat is a quaternion W + Xi + Yj + Zk; unit quaternions represent SU(2)
// elements via U(q) above.
type Quat struct {
	W, X, Y, Z float64
}

// Identity is the identity rotation.
var Identity = Quat{W: 1}

// Mul returns the product p·q defined so that U(p·q) = U(p)·U(q). In the
// basis chosen for U this is the reversed Hamilton product (the imaginary
// units form a left-handed triple), derived directly from multiplying the
// two matrices:
//
//	W = pW·qW − pX·qX − pY·qY − pZ·qZ
//	X = pW·qX + pX·qW − pY·qZ + pZ·qY
//	Y = pW·qY + pY·qW − pZ·qX + pX·qZ
//	Z = pW·qZ + pZ·qW − pX·qY + pY·qX
func (p Quat) Mul(q Quat) Quat {
	return Quat{
		W: p.W*q.W - p.X*q.X - p.Y*q.Y - p.Z*q.Z,
		X: p.W*q.X + p.X*q.W - p.Y*q.Z + p.Z*q.Y,
		Y: p.W*q.Y + p.Y*q.W - p.Z*q.X + p.X*q.Z,
		Z: p.W*q.Z + p.Z*q.W - p.X*q.Y + p.Y*q.X,
	}
}

// Conj returns the conjugate (the inverse for unit quaternions; U(q)†).
func (p Quat) Conj() Quat { return Quat{p.W, -p.X, -p.Y, -p.Z} }

// Neg returns −p (the same projective unitary).
func (p Quat) Neg() Quat { return Quat{-p.W, -p.X, -p.Y, -p.Z} }

// NormSq returns W² + X² + Y² + Z².
func (p Quat) NormSq() float64 { return p.W*p.W + p.X*p.X + p.Y*p.Y + p.Z*p.Z }

// Normalize rescales to unit length (guarding against drift in long
// products).
func (p Quat) Normalize() Quat {
	n := math.Sqrt(p.NormSq())
	if n == 0 {
		return Identity
	}
	return Quat{p.W / n, p.X / n, p.Y / n, p.Z / n}
}

// Dot returns the 4-dimensional inner product.
func (p Quat) Dot(q Quat) float64 {
	return p.W*q.W + p.X*q.X + p.Y*q.Y + p.Z*q.Z
}

// Dist is the projective distance between the unitaries represented by p and
// q: sqrt(1 − |⟨p, q⟩|) ∈ [0, 1], zero iff p = ±q. It equals
// sqrt(1 − |tr(U(p)† U(q))| / 2), the phase-invariant trace distance used in
// Solovay–Kitaev analyses.
func (p Quat) Dist(q Quat) float64 {
	d := math.Abs(p.Dot(q))
	if d > 1 {
		d = 1
	}
	return math.Sqrt(1 - d)
}

// Canonical flips the sign so the first nonzero component is positive,
// giving each projective element a unique representative.
func (p Quat) Canonical() Quat {
	for _, v := range [4]float64{p.W, p.X, p.Y, p.Z} {
		if v > 1e-12 {
			return p
		}
		if v < -1e-12 {
			return p.Neg()
		}
	}
	return p
}

// Angle returns the rotation angle θ ∈ [0, π] of the projective rotation
// (U = e^{iθ/2 n·σ} up to sign).
func (p Quat) Angle() float64 {
	w := math.Abs(p.W)
	if w > 1 {
		w = 1
	}
	return 2 * math.Acos(w)
}

// Axis returns the unit rotation axis (sign-normalized together with W ≥ 0).
// For the identity the x-axis is returned by convention.
func (p Quat) Axis() [3]float64 {
	q := p
	if q.W < 0 {
		q = q.Neg()
	}
	n := math.Sqrt(q.X*q.X + q.Y*q.Y + q.Z*q.Z)
	if n < 1e-15 {
		return [3]float64{1, 0, 0}
	}
	return [3]float64{q.X / n, q.Y / n, q.Z / n}
}

// FromAxisAngle builds the rotation by angle θ about the unit axis n.
func FromAxisAngle(n [3]float64, theta float64) Quat {
	s := math.Sin(theta / 2)
	return Quat{math.Cos(theta / 2), s * n[0], s * n[1], s * n[2]}
}

// RotX returns the rotation by θ about x (Rx(θ) = e^{−iθ/2 σx} corresponds
// to the quaternion with X = −sin(θ/2) in this convention).
func RotX(theta float64) Quat { return Quat{math.Cos(theta / 2), -math.Sin(theta / 2), 0, 0} }

// RotY returns the rotation by θ about y.
func RotY(theta float64) Quat { return Quat{math.Cos(theta / 2), 0, -math.Sin(theta / 2), 0} }

// RotZ returns the rotation by θ about z (Rz(θ) = diag(e^{−iθ/2}, e^{iθ/2})).
func RotZ(theta float64) Quat { return Quat{math.Cos(theta / 2), 0, 0, -math.Sin(theta / 2)} }

// Matrix returns U(q) as a 2×2 complex matrix.
func (p Quat) Matrix() [2][2]complex128 {
	return [2][2]complex128{
		{complex(p.W, p.Z), complex(p.Y, p.X)},
		{complex(-p.Y, p.X), complex(p.W, -p.Z)},
	}
}

// FromU2 projects an arbitrary (unitary) 2×2 matrix to its SU(2)
// representative by dividing out sqrt(det), then reads off the quaternion.
// The sign ambiguity of the square root is irrelevant projectively.
func FromU2(u [2][2]complex128) Quat {
	det := u[0][0]*u[1][1] - u[0][1]*u[1][0]
	s := cmplx.Sqrt(det)
	if s == 0 {
		return Identity
	}
	a, b := u[0][0]/s, u[0][1]/s
	c, d := u[1][0]/s, u[1][1]/s
	return Quat{
		W: (real(a) + real(d)) / 2,
		Z: (imag(a) - imag(d)) / 2,
		X: (imag(b) + imag(c)) / 2,
		Y: (real(b) - real(c)) / 2,
	}.Normalize()
}

// Cross returns the cross product of two 3-vectors.
func Cross(a, b [3]float64) [3]float64 {
	return [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

// AlignAxes returns a rotation quaternion s with s·(rotation about a)·s⁻¹ =
// rotation about b (both unit vectors). Note that conjugation by
// U(s) = e^{iφ/2 m·σ} rotates Bloch vectors by −φ about m, so s encodes the
// rotation taking a to b with negated angle.
func AlignAxes(a, b [3]float64) Quat {
	dot := a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	cr := Cross(a, b)
	n := math.Sqrt(cr[0]*cr[0] + cr[1]*cr[1] + cr[2]*cr[2])
	if n < 1e-14 {
		if dot > 0 {
			return Identity
		}
		// Opposite axes: rotate by π about any axis orthogonal to a.
		orth := Cross(a, [3]float64{1, 0, 0})
		on := math.Sqrt(orth[0]*orth[0] + orth[1]*orth[1] + orth[2]*orth[2])
		if on < 1e-7 {
			orth = Cross(a, [3]float64{0, 1, 0})
			on = math.Sqrt(orth[0]*orth[0] + orth[1]*orth[1] + orth[2]*orth[2])
		}
		return FromAxisAngle([3]float64{orth[0] / on, orth[1] / on, orth[2] / on}, math.Pi)
	}
	axis := [3]float64{cr[0] / n, cr[1] / n, cr[2] / n}
	return FromAxisAngle(axis, -math.Atan2(n, dot))
}
