// Package server implements the qmddd worker node: the HTTP/JSON transport
// over internal/engine (which owns the worker pool, the governor, the result
// cache and the singleflight layer). The transport's own concerns are the
// wire — body caps, request-id propagation, the access log — plus the
// cluster surface a scale-out tier needs: a liveness/readiness probe pair
// (/healthz vs /readyz), the cache-peering endpoint GET /v1/cache/{key}
// serving stamped disk envelopes to ring peers, and the peer client that
// asks those peers before paying for a simulation locally.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/engine"
	"repro/internal/httpx"
	"repro/internal/qcache"
)

// Config tunes the service. Zero values select the documented defaults; the
// *Cap fields are server-side ceilings that client budget fields are clamped
// against.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueSize bounds the job queue (default 64). A full queue answers 429.
	QueueSize int
	// MaxBodyBytes caps the request body (default 1 MiB). Larger answers 413.
	MaxBodyBytes int64
	// MaxJobs caps retained job records (default 1024).
	MaxJobs int
	// MaxQubits caps the circuit width (default 64 — basis-state indices are
	// uint64 on the wire).
	MaxQubits int
	// MaxTopK caps the amplitude list length (default 4096).
	MaxTopK int
	// MaxShots caps the shot count of a histogram job (default 1<<20).
	MaxShots int
	// CTSize is the per-manager compute-table slot count.
	CTSize int
	// IntraWorkers enables intra-operation parallelism inside each worker's
	// managers. See engine.Config.IntraWorkers.
	IntraWorkers int

	// NodeCap / WeightCap / ByteCap / TimeoutCap clamp the per-request
	// budget. See engine.Config.
	NodeCap    int
	WeightCap  int
	ByteCap    int64
	TimeoutCap time.Duration

	// MinFidelityFloor is the server-side floor for fidelity-bounded
	// approximation. See engine.Config.MinFidelityFloor.
	MinFidelityFloor float64

	// CacheBytes / CacheDir configure the two result-cache tiers. See
	// engine.Config. CacheMaxBytes, when positive, bounds the disk tier with
	// LRU-by-access-time eviction.
	CacheBytes    int64
	CacheDir      string
	CacheMaxBytes int64

	// CheckpointEvery / CheckpointBytes tune the prefix-checkpoint
	// subsystem. See engine.Config.
	CheckpointEvery int
	CheckpointBytes int64

	// MaxBatchVariants caps the variant count of one POST /v1/batches
	// submission (default 128).
	MaxBatchVariants int

	// Self is this node's advertised base URL (scheme://host:port) and Peers
	// the full cluster membership (base URLs, self included or not — Self is
	// always folded in). With ≥2 members, cache peering activates: a local
	// miss first asks the ring owners of the key for their stored envelope
	// (GET /v1/cache/{key}), validated by checksum and provenance stamp
	// before adoption. Empty Peers runs the node standalone.
	Self  string
	Peers []string
	// PeerTimeout bounds one peer cache fetch (default 2s) — peering is an
	// accelerator, a slow peer must cost less than the simulation it saves.
	PeerTimeout time.Duration

	// AccessLog, when non-nil, receives one structured line per HTTP
	// exchange (logfmt: time, request id, method, path, status, bytes,
	// duration).
	AccessLog io.Writer

	// hookRunning, when set (tests only), is invoked on the worker goroutine
	// as soon as a job transitions to running.
	hookRunning func(*engine.Job)
}

func (c Config) engineConfig() engine.Config {
	return engine.Config{
		Workers:          c.Workers,
		QueueSize:        c.QueueSize,
		MaxJobs:          c.MaxJobs,
		MaxQubits:        c.MaxQubits,
		MaxTopK:          c.MaxTopK,
		MaxShots:         c.MaxShots,
		CTSize:           c.CTSize,
		IntraWorkers:     c.IntraWorkers,
		NodeCap:          c.NodeCap,
		WeightCap:        c.WeightCap,
		ByteCap:          c.ByteCap,
		TimeoutCap:       c.TimeoutCap,
		MinFidelityFloor: c.MinFidelityFloor,
		CacheBytes:       c.CacheBytes,
		CacheDir:         c.CacheDir,
		CacheMaxBytes:    c.CacheMaxBytes,
		CheckpointEvery:  c.CheckpointEvery,
		CheckpointBytes:  c.CheckpointBytes,
		MaxBatchVariants: c.MaxBatchVariants,
		HookRunning:      c.hookRunning,
	}
}

// Server is the qmddd HTTP transport over one engine. Create with New,
// serve it (it implements http.Handler), and call Shutdown to drain.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	eng   *engine.Engine
	peers *peerClient // nil when the node runs standalone
}

// New builds the service and starts its workers. It fails only when the
// configured cache directory cannot be created.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	ecfg := cfg.engineConfig()
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	ecfg.HookBatchChild = s.logBatchChild
	if pc, err := newPeerClient(cfg.Self, cfg.Peers, cfg.PeerTimeout); err != nil {
		return nil, err
	} else if pc != nil {
		s.peers = pc
		ecfg.PeerLookup = pc.lookup
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCachePeek)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP serves the API with the request-id and access-log middleware
// wrapped around every route.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	httpx.WithRequestID(s.cfg.AccessLog, s.mux).ServeHTTP(w, r)
}

// Engine exposes the underlying engine (introspection for cmd wiring and
// tests).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Shutdown drains the service: intake stops immediately (submissions answer
// 503 and /readyz flips unready while /healthz stays live), workers finish
// the accepted jobs, and jobs still unfinished at the drain deadline are
// cancelled cooperatively through the governor.
func (s *Server) Shutdown(drain time.Duration) { s.eng.Shutdown(drain) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError serves the structured error envelope, stamped with the
// exchange's request id so a client-side error report can be joined against
// the access log.
func writeError(w http.ResponseWriter, r *http.Request, status int, body ErrorBody) {
	body.RequestID = httpx.RequestIDFrom(r)
	writeJSON(w, status, struct {
		Error ErrorBody `json:"error"`
	}{body})
}

// handleSubmit decodes and submits one job (POST /v1/jobs). Validation,
// caching, dedup and peering all happen inside engine.Submit; the transport
// maps the reject reasons onto HTTP and implements "wait": true by blocking
// on the job's done channel.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, ErrorBody{
				Kind: KindTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
			return
		}
		writeError(w, r, http.StatusBadRequest, ErrorBody{Kind: KindInvalidRequest, Message: "decoding request: " + err.Error()})
		return
	}

	j, serr := s.eng.Submit(req)
	if serr != nil {
		status := http.StatusBadRequest
		switch serr.Reason {
		case engine.RejectDraining:
			status = http.StatusServiceUnavailable
		case engine.RejectBusy:
			status = http.StatusTooManyRequests
		}
		writeError(w, r, status, serr.Body)
		return
	}

	select {
	case <-j.Done():
		// Already finished (cache/peer/flight hit, or a fast run under wait).
		writeJSON(w, http.StatusOK, j.View(true))
		return
	default:
	}
	if req.Wait {
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.View(true))
		case <-r.Context().Done():
			// Client gave up; the job keeps running and stays pollable.
			writeJSON(w, http.StatusAccepted, j.View(false))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.View(false))
}

// handleBatchSubmit decodes and submits one batch (POST /v1/batches): a
// shared prefix simulated exactly once, fanned out into per-variant jobs.
// "wait": true blocks until every variant is terminal, mirroring /v1/jobs.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req engine.BatchRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, ErrorBody{
				Kind: KindTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
			return
		}
		writeError(w, r, http.StatusBadRequest, ErrorBody{Kind: KindInvalidRequest, Message: "decoding request: " + err.Error()})
		return
	}

	b, serr := s.eng.SubmitBatch(req, httpx.RequestIDFrom(r))
	if serr != nil {
		status := http.StatusBadRequest
		switch serr.Reason {
		case engine.RejectDraining:
			status = http.StatusServiceUnavailable
		case engine.RejectBusy:
			status = http.StatusTooManyRequests
		}
		writeError(w, r, status, serr.Body)
		return
	}
	if req.Wait {
		select {
		case <-b.Done():
			writeJSON(w, http.StatusOK, b.View(true))
		case <-r.Context().Done():
			// Client gave up; the batch keeps running and stays pollable.
			writeJSON(w, http.StatusAccepted, b.View(false))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, b.View(false))
}

// handleBatchStatus serves one batch's aggregate view (GET /v1/batches/{id});
// per-variant results are attached once the batch is done. The router
// scatters this route across the cluster the same way it scatters job polls.
func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	b := s.eng.Batch(r.PathValue("id"))
	if b == nil {
		writeError(w, r, http.StatusNotFound, ErrorBody{Kind: KindNotFound, Message: "unknown batch id"})
		return
	}
	select {
	case <-b.Done():
		writeJSON(w, http.StatusOK, b.View(true))
	default:
		writeJSON(w, http.StatusOK, b.View(false))
	}
}

// logBatchChild emits one access-log line per batch child job, keyed by the
// child's derived request id (<parent>-/v<i>, or -/prefix for the shared
// prefix job), so the access log reconstructs a batch fan-out end to end.
func (s *Server) logBatchChild(b *engine.Batch, index int, j *engine.Job) {
	v := j.View(false)
	role := fmt.Sprintf("variant_%d", index)
	if index < 0 {
		role = "prefix"
	}
	httpx.Logf(s.cfg.AccessLog, "time=%s request_id=%s event=batch_child batch=%s role=%s job=%s cached=%t\n",
		time.Now().UTC().Format(time.RFC3339Nano), v.RequestID, b.ID(), role, v.ID, v.Cached)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.eng.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, r, http.StatusNotFound, ErrorBody{Kind: KindNotFound, Message: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, j.View(false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.eng.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, r, http.StatusNotFound, ErrorBody{Kind: KindNotFound, Message: "unknown job id"})
		return
	}
	v := j.View(true)
	if v.Status == StatusQueued || v.Status == StatusRunning {
		writeError(w, r, http.StatusConflict, ErrorBody{
			Kind: KindNotFinished, Message: fmt.Sprintf("job is %s; poll /v1/jobs/%s", v.Status, j.ID()),
		})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleCachePeek serves the cache-peering protocol: the stamped disk-tier
// envelope for a key, verbatim (header + payload). The caller validates the
// checksum and provenance stamp — this node vouches for nothing beyond
// "these are the bytes I stored". Misses (and memory-only caches) are 404.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key, err := qcache.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, ErrorBody{Kind: KindInvalidRequest, Message: err.Error()})
		return
	}
	raw, ok := s.eng.CacheRaw(key)
	if !ok {
		writeError(w, r, http.StatusNotFound, ErrorBody{Kind: KindNotFound, Message: "no cache entry"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Name string `json:"name"`
		buildinfo.Info
	}{Name: "qmddd", Info: buildinfo.Read()})
}

// handleHealthz is the liveness probe: 200 for as long as the process can
// serve HTTP at all — including while draining, when the node is still
// finishing accepted jobs and serving polls. Restart-deciders watch this;
// traffic-routers must watch /readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}{"ok", s.eng.Draining()})
}

// handleReadyz is the readiness probe: 200 only when the node should receive
// new work — worker pool warm, not draining. The body carries the queue
// depth and the pool's mean service time so a router can estimate expected
// wait without a second endpoint.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	type body struct {
		Status        string  `json:"status"`
		Workers       int     `json:"workers"`
		QueueDepth    int     `json:"queue_depth"`
		QueueCapacity int     `json:"queue_capacity"`
		AvgServiceMS  float64 `json:"avg_service_ms"`
	}
	b := body{
		Status:        "ready",
		Workers:       s.eng.Workers(),
		QueueDepth:    s.eng.QueueDepth(),
		QueueCapacity: s.eng.QueueCap(),
		AvgServiceMS:  s.eng.AvgServiceSeconds() * 1e3,
	}
	status := http.StatusOK
	if !s.eng.Ready() {
		status = http.StatusServiceUnavailable
		if s.eng.Draining() {
			b.Status = "draining"
		} else {
			b.Status = "warming"
		}
	}
	writeJSON(w, status, b)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.eng.RenderMetrics(w)
	if s.peers != nil {
		s.peers.renderMetrics(w)
	}
}
