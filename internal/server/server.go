// Package server implements qmddd, the networked QMDD simulation service:
// an HTTP/JSON front end that accepts OpenQASM circuits, runs them on a
// fixed-size pool of workers with private warm managers (the share-nothing
// design of the sweep pool), governs every job with the per-request budget
// machinery, and exposes the observability surface (/healthz, /metrics,
// /v1/version) a deployed process needs. Jobs flow through a bounded queue:
// submission is cheap and returns a pollable id (or, with "wait": true, the
// result itself); a full queue answers 429 instead of building backlog.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/qcache"
)

// Config tunes the service. Zero values select the documented defaults; the
// *Cap fields are server-side ceilings that client budget fields are clamped
// against.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueSize bounds the job queue (default 64). A full queue answers 429.
	QueueSize int
	// MaxBodyBytes caps the request body (default 1 MiB). Larger answers 413.
	MaxBodyBytes int64
	// MaxJobs caps retained job records (default 1024).
	MaxJobs int
	// MaxQubits caps the circuit width (default 64 — basis-state indices are
	// uint64 on the wire).
	MaxQubits int
	// MaxTopK caps the amplitude list length (default 4096).
	MaxTopK int
	// MaxShots caps the shot count of a histogram job (default 1<<20).
	// Requests above the cap are rejected, not clamped — fewer shots is a
	// different histogram, not a tightened version of the same one.
	MaxShots int
	// CTSize is the per-manager compute-table slot count (default
	// core.DefaultCTSize).
	CTSize int
	// IntraWorkers enables intra-operation parallelism inside each worker's
	// managers (core.Manager.SetIntraWorkers): one job's Add/ApplyLocal
	// recursions fan out over up to this many goroutines. Results are
	// identical at any setting; ε>0 float managers stay sequential. Default
	// 1 (sequential). Composes multiplicatively with Workers — keep the
	// product near the core count.
	IntraWorkers int

	// NodeCap / WeightCap / ByteCap / TimeoutCap clamp the per-request
	// budget: a request asking for more (or for nothing, when a cap is set)
	// gets the cap. Zero leaves the dimension unlimited by default.
	NodeCap    int
	WeightCap  int
	ByteCap    int64
	TimeoutCap time.Duration

	// MinFidelityFloor is the server-side floor for fidelity-bounded
	// approximation: a min_fidelity request below it is raised to it, so an
	// operator can bound how much fidelity any client may trade away. Zero
	// imposes no floor. It never turns approximation on by itself — jobs
	// without min_fidelity stay exact.
	MinFidelityFloor float64

	// CacheBytes caps the in-memory result-cache tier; zero disables it.
	// CacheDir, when non-empty, enables the disk tier: finished result
	// envelopes persist across restarts under repr/ε/norm-stamped headers.
	// With both zero/empty the cache is off entirely (singleflight dedup of
	// concurrent identical submissions stays on — it costs nothing).
	CacheBytes int64
	CacheDir   string

	// hookRunning, when set (tests only), is invoked on the worker goroutine
	// as soon as a job transitions to running.
	hookRunning func(*job)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxQubits <= 0 || c.MaxQubits > 64 {
		c.MaxQubits = 64
	}
	if c.MaxTopK <= 0 {
		c.MaxTopK = 4096
	}
	if c.MaxShots <= 0 {
		c.MaxShots = 1 << 20
	}
	if c.CTSize <= 0 {
		c.CTSize = core.DefaultCTSize
	}
	if c.IntraWorkers <= 0 {
		c.IntraWorkers = 1
	}
	return c
}

// Server is the qmddd HTTP handler plus its worker pool. Create with New,
// serve it (it implements http.Handler), and call Shutdown to drain.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	store  *jobStore
	met    *metrics
	queue  chan *job
	cache  *qcache.Cache // nil when both tiers are disabled (nil-safe API)
	flight *qcache.Flight[flightOutcome]

	mu     sync.Mutex // guards closed + queue sends vs. close(queue)
	closed bool

	wg        sync.WaitGroup
	runCtx    context.Context // cancelled at the drain deadline
	cancelRun context.CancelFunc
}

// New builds the service and starts its workers. It fails only when the
// configured cache directory cannot be created.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := qcache.New(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("opening result cache: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		store:  newJobStore(cfg.MaxJobs),
		met:    newMetrics(cfg.Workers),
		queue:  make(chan *job, cfg.QueueSize),
		cache:  cache,
		flight: qcache.NewFlight[flightOutcome](),
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the service: intake stops immediately (submissions answer
// 503), workers finish the accepted jobs, and jobs still unfinished at the
// drain deadline are cancelled cooperatively through the governor. It
// returns once every worker has exited — always cleanly, so a supervised
// process can exit 0.
func (s *Server) Shutdown(drain time.Duration) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	t := time.NewTimer(drain)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		s.cancelRun() // in-flight jobs unwind through the governor
		<-done
	}
	s.cancelRun()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	writeJSON(w, status, struct {
		Error ErrorBody `json:"error"`
	}{body})
}

// handleSubmit validates, parses and enqueues one job (POST /v1/jobs).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
				Kind: KindTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
			return
		}
		writeError(w, http.StatusBadRequest, ErrorBody{Kind: KindInvalidRequest, Message: "decoding request: " + err.Error()})
		return
	}
	circ, errBody := s.validate(&req)
	if errBody != nil {
		writeError(w, http.StatusBadRequest, *errBody)
		return
	}

	// A seeded shots job is a pure function of its request, so it caches
	// like any other. An unseeded one is sampled fresh every time: the
	// server draws the seed (echoed in the result for reproduction), and
	// the random seed keys it away from every concurrent duplicate too.
	seeded := req.Shots == 0 || req.Seed != 0
	if req.Shots > 0 && req.Seed == 0 {
		req.Seed = randomSeed()
	}

	// Content address of the job: the circuit fingerprint (comment-,
	// whitespace- and register-name-insensitive) plus everything else that
	// shapes the result envelope. Budgets are deliberately excluded — a
	// success computed under any budget is valid under every budget.
	ident := qcache.Identity{
		Circuit: circuit.Fingerprint(circ),
		Repr:    req.Representation,
		Norm:    req.Norm,
		Eps:     req.Eps,
		Output:  req.Output,
		TopK:    req.TopK,
		Shots:   req.Shots,
		Seed:    req.Seed,
	}
	cacheKey := ident.Key()
	stamp := ident.Stamp()

	// A min_fidelity job has a second address: the approximate envelope,
	// which additionally depends on the floor and on the clamped memory
	// budgets (they decide where approximation fires). The exact key is
	// consulted first — an exact result trivially satisfies any fidelity
	// floor — then the approximate one.
	var approxKey qcache.Key
	hasApprox := req.MinFidelity > 0
	if hasApprox {
		aident := ident
		aident.MinFidelity = req.MinFidelity
		aident.MaxNodes = req.MaxNodes
		aident.MaxWeights = req.MaxWeights
		aident.MaxBytes = req.MaxBytes
		approxKey = aident.Key()
	}
	for _, k := range []struct {
		key qcache.Key
		on  bool
	}{{cacheKey, true}, {approxKey, hasApprox}} {
		if !k.on {
			continue
		}
		if payload, ok := s.cache.Get(k.key, stamp); ok {
			if res, err := decodeResult(payload); err == nil {
				s.serveCached(w, req, res)
				return
			}
			// Undecodable payload (should be impossible past the checksums):
			// treat as a miss and recompute.
		}
	}

	// Singleflight: concurrent identical submissions elect one leader that
	// runs the simulation; the rest mirror its outcome. The flight key folds
	// the clamped budgets in, so a follower can never inherit a
	// budget_exceeded verdict it did not ask for.
	fid := qcache.FlightID{
		Identity:    ident,
		MaxNodes:    req.MaxNodes,
		MaxWeights:  req.MaxWeights,
		MaxBytes:    req.MaxBytes,
		TimeoutMS:   req.TimeoutMS,
		MinFidelity: req.MinFidelity,
	}
	call, leader := s.flight.Join(fid.Key())

	j := &job{
		id:       newJobID(),
		req:      req,
		circ:     circ,
		done:     make(chan struct{}),
		status:   StatusQueued,
		queuedAt: time.Now(),
	}
	if leader {
		j.cacheKey = cacheKey
		j.approxKey = approxKey
		j.hasApprox = hasApprox
		j.stamp = stamp
		j.cacheable = seeded
		j.flight = call
	}

	// Enqueue under the intake lock: after Shutdown flips closed, no send
	// can race the close of the queue channel.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		body := ErrorBody{Kind: KindShuttingDown, Message: "server is draining"}
		if leader {
			call.Complete(flightOutcome{status: StatusCancelled, errBody: &body}, false)
		}
		writeError(w, http.StatusServiceUnavailable, body)
		return
	}
	if !s.store.add(j) {
		s.mu.Unlock()
		s.met.rejected.Add(1)
		body := ErrorBody{Kind: KindQueueFull, Message: "job store is full of unfinished jobs"}
		if leader {
			call.Complete(flightOutcome{status: StatusCancelled, errBody: &body}, false)
		}
		writeError(w, http.StatusTooManyRequests, body)
		return
	}
	if !leader {
		// Follower: no queue slot, no worker — a mirror goroutine copies the
		// leader's outcome into this record when the flight completes.
		s.mu.Unlock()
		s.met.deduped.Add(1)
		s.wg.Add(1)
		go s.mirror(j, call)
	} else {
		select {
		case s.queue <- j:
			s.mu.Unlock()
		default:
			s.mu.Unlock()
			s.met.rejected.Add(1)
			s.finishJob(j, StatusCancelled, nil, &ErrorBody{Kind: KindQueueFull, Message: "queue full"})
			writeError(w, http.StatusTooManyRequests, ErrorBody{
				Kind: KindQueueFull, Message: fmt.Sprintf("queue full (%d jobs waiting)", s.cfg.QueueSize),
			})
			return
		}
	}

	if req.Wait {
		select {
		case <-j.done:
			writeJSON(w, http.StatusOK, s.store.view(j, true))
		case <-r.Context().Done():
			// Client gave up; the job keeps running and stays pollable.
			writeJSON(w, http.StatusAccepted, s.store.view(j, false))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, s.store.view(j, false))
}

// decodeResult rebuilds a result envelope from its canonical JSON payload —
// the bytes the cache stores and the flight hands to followers. Re-encoding
// the decoded struct reproduces the payload exactly, so every response built
// from it is byte-identical to the one the original run produced.
func decodeResult(payload []byte) (*JobResult, error) {
	var res JobResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// serveCached answers a submission from a cache hit: a synthetic job record
// born finished, flagged "cached": true, retained for polling on a
// best-effort basis (a full store or a draining server still serves the
// response, it just isn't pollable afterwards).
func (s *Server) serveCached(w http.ResponseWriter, req JobRequest, res *JobResult) {
	now := time.Now()
	j := &job{
		id:         newJobID(),
		req:        req,
		done:       make(chan struct{}),
		status:     StatusDone,
		cached:     true,
		queuedAt:   now,
		finishedAt: now,
		result:     res,
	}
	close(j.done)
	s.mu.Lock()
	if !s.closed {
		s.store.add(j)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.store.view(j, true))
}

// mirror finishes a follower job with the outcome of the flight it joined.
// It runs on its own goroutine (registered on s.wg so Shutdown waits for it;
// the leader always completes its call — workers drain every accepted job —
// so mirrors cannot leak).
func (s *Server) mirror(j *job, call *qcache.Call[flightOutcome]) {
	defer s.wg.Done()
	<-call.Done()
	out, ok := call.Outcome()
	if ok {
		if res, err := decodeResult(out.payload); err == nil {
			s.store.markCached(j)
			s.store.finish(j, StatusDone, res, nil)
			return
		}
		out.status = StatusFailed
		out.errBody = &ErrorBody{Kind: KindRunError, Message: "deduplicated result payload was undecodable"}
	}
	s.store.finish(j, out.status, nil, out.errBody)
}

// validate normalizes and checks a request, returning the parsed circuit.
func (s *Server) validate(req *JobRequest) (*circuit.Circuit, *ErrorBody) {
	invalid := func(format string, args ...any) *ErrorBody {
		return &ErrorBody{Kind: KindInvalidRequest, Message: fmt.Sprintf(format, args...)}
	}
	if strings.TrimSpace(req.QASM) == "" {
		return nil, invalid("qasm is required")
	}
	switch req.Representation {
	case "", "alg":
		req.Representation = "alg"
	case "float", "num":
		req.Representation = "float"
	default:
		return nil, invalid("unknown representation %q (want alg or float)", req.Representation)
	}
	if req.Eps < 0 {
		return nil, invalid("eps must be non-negative")
	}
	norm, err := core.ParseNormScheme(req.Norm)
	if err != nil {
		return nil, invalid("%v", err)
	}
	req.Norm = norm.String() // canonical name ("" → "left") keys the cache
	if req.Shots < 0 {
		return nil, invalid("shots must be non-negative")
	}
	if req.Shots > s.cfg.MaxShots {
		return nil, invalid("shots %d exceeds the server cap %d", req.Shots, s.cfg.MaxShots)
	}
	if req.Shots > 0 {
		// Shots mode: the histogram is the only envelope, and TopK plays no
		// part in it — both are pinned so equivalent requests share one
		// cache key.
		switch req.Output {
		case "", "histogram":
			req.Output = "histogram"
		default:
			return nil, invalid("output %q is incompatible with shots; a shots job returns a histogram", req.Output)
		}
		req.TopK = 0
	} else {
		switch req.Output {
		case "", "amplitudes":
			req.Output = "amplitudes"
		case "stats", "ddio":
		case "histogram":
			return nil, invalid("output histogram requires shots > 0")
		default:
			return nil, invalid("unknown output %q (want amplitudes, stats, ddio or histogram)", req.Output)
		}
		if req.TopK < 0 {
			return nil, invalid("top_k must be non-negative")
		}
		if req.TopK == 0 {
			req.TopK = 16
		}
		if req.TopK > s.cfg.MaxTopK {
			req.TopK = s.cfg.MaxTopK
		}
	}
	if req.MaxNodes < 0 || req.MaxWeights < 0 || req.MaxBytes < 0 || req.TimeoutMS < 0 {
		return nil, invalid("budget fields must be non-negative")
	}
	if req.MinFidelity < 0 || req.MinFidelity > 1 {
		return nil, invalid("min_fidelity must be in [0, 1]")
	}
	if req.MinFidelity == 1 {
		// A floor of 1 permits shedding nothing: exact semantics, and the
		// exact cache key.
		req.MinFidelity = 0
	}
	if req.MinFidelity > 0 {
		if req.Shots > 0 {
			return nil, invalid("min_fidelity is incompatible with shots: a histogram drawn from an approximated state is silently biased")
		}
		if f := s.cfg.MinFidelityFloor; f > 0 && req.MinFidelity < f {
			req.MinFidelity = f
		}
	}
	req.MaxNodes = clampInt(req.MaxNodes, s.cfg.NodeCap)
	req.MaxWeights = clampInt(req.MaxWeights, s.cfg.WeightCap)
	req.MaxBytes = clampInt64(req.MaxBytes, s.cfg.ByteCap)
	if cap := s.cfg.TimeoutCap; cap > 0 {
		capMS := int64(cap / time.Millisecond)
		if req.TimeoutMS <= 0 || req.TimeoutMS > capMS {
			req.TimeoutMS = capMS
		}
	}

	circ, err := qasm.Parse(req.QASM, "request")
	if err != nil {
		body := &ErrorBody{Kind: KindParseError, Message: err.Error()}
		var pe *qasm.ParseError
		if errors.As(err, &pe) {
			body.Line = pe.Line
		}
		return nil, body
	}
	if circ.N > s.cfg.MaxQubits {
		return nil, invalid("circuit has %d qubits, server cap is %d", circ.N, s.cfg.MaxQubits)
	}
	if req.Shots == 0 {
		if circ.Dynamic() {
			return nil, invalid("circuit contains mid-circuit measurement, reset or classical control; submit with shots > 0 to run it")
		}
		if circ.Cbits != 0 || !circ.IsUnitary() {
			// Amplitude/stats/ddio outputs describe the pre-measurement
			// state: strip the trailing read-out block and the classical
			// register so the job shares a cache key with its measure-free
			// twin.
			p := circ.UnitaryPrefix()
			circ = &circuit.Circuit{Name: p.Name, N: p.N, Gates: p.Gates}
		}
	} else if circ.Cbits > 64 {
		return nil, invalid("circuit uses %d classical bits; the histogram key is capped at 64", circ.Cbits)
	}
	return circ, nil
}

// clampInt applies a server cap to a request value: 0 (unset) takes the cap,
// anything above the cap is clamped down.
func clampInt(v, cap int) int {
	if cap > 0 && (v <= 0 || v > cap) {
		return cap
	}
	return v
}

func clampInt64(v, cap int64) int64 {
	if cap > 0 && (v <= 0 || v > cap) {
		return cap
	}
	return v
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrorBody{Kind: KindNotFound, Message: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, s.store.view(j, false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrorBody{Kind: KindNotFound, Message: "unknown job id"})
		return
	}
	v := s.store.view(j, true)
	if v.Status == StatusQueued || v.Status == StatusRunning {
		writeError(w, http.StatusConflict, ErrorBody{
			Kind: KindNotFinished, Message: fmt.Sprintf("job is %s; poll /v1/jobs/%s", v.Status, j.id),
		})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Name string `json:"name"`
		buildinfo.Info
	}{Name: "qmddd", Info: buildinfo.Read()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	status := http.StatusOK
	text := "ok"
	if draining {
		// Shutting down: tell load balancers to route elsewhere.
		status = http.StatusServiceUnavailable
		text = "draining"
	}
	writeJSON(w, status, struct {
		Status     string `json:"status"`
		Workers    int    `json:"workers"`
		QueueDepth int    `json:"queue_depth"`
	}{text, s.cfg.Workers, len(s.queue)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, len(s.queue), s.cfg.QueueSize, s.cache.Stats())
}
