package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// serveHTTP exposes an already-built Server over a test listener; shutdown
// stays with the caller (restart tests need to control it).
func serveHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts.URL
}

// postRaw submits a job and returns the status code, the raw response body,
// and the "result" member's exact bytes (nil when absent) — the byte-level
// view the cache tests compare.
func postRaw(t *testing.T, url, body string) (int, []byte, json.RawMessage, JobView) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("decoding response (%d): %v\n%s", resp.StatusCode, err, raw)
	}
	var fields struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, fields.Result, view
}

// TestCacheByteIdenticalReplay: resubmitting an identical alg job is served
// from the cache with "cached": true and a result envelope byte-identical to
// the first run's — the acceptance bar exactness buys us.
func TestCacheByteIdenticalReplay(t *testing.T) {
	// CheckpointEvery -1 keeps prefix checkpoints out of the store/miss
	// counters this test pins exactly (the subsystem has its own tests).
	s, ts := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20, CheckpointEvery: -1})
	body := fmt.Sprintf(`{"qasm": %q, "wait": true}`, groverQASM)

	code, _, res1, view1 := postRaw(t, ts.URL, body)
	if code != http.StatusOK || view1.Status != StatusDone {
		t.Fatalf("first run: %d %+v", code, view1)
	}
	if view1.Cached {
		t.Fatal("first run claims to be cached")
	}

	// Whitespace, comments and register names differ; the canonical circuit
	// does not — same cache key.
	variant := strings.ReplaceAll(groverQASM, "q[", "work[")
	variant = strings.Replace(variant, "qreg work[2];", "// renamed\nqreg work[2];", 1)
	code, _, res2, view2 := postRaw(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "wait": true}`, variant))
	if code != http.StatusOK || view2.Status != StatusDone {
		t.Fatalf("replay: %d %+v", code, view2)
	}
	if !view2.Cached {
		t.Fatal("replay was not served from the cache")
	}
	if !bytes.Equal(res1, res2) {
		t.Fatalf("cached envelope differs from the original:\n%s\nvs\n%s", res1, res2)
	}
	if st := s.eng.CacheStats(); st.Hits != 1 || st.Stores != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 store", st)
	}

	// A different output selection is a different key: no false hit.
	_, _, _, view3 := postRaw(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "wait": true, "output": "stats"}`, groverQASM))
	if view3.Cached {
		t.Fatal("output=stats served the amplitudes entry")
	}

	// Defaulted and explicit norm share a key (canonicalized at validate).
	_, _, _, view4 := postRaw(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "wait": true, "norm": "left"}`, groverQASM))
	if !view4.Cached {
		t.Fatal(`explicit norm "left" missed the defaulted-norm entry`)
	}
}

// TestConcurrentIdenticalSubmissions is the singleflight regression (run
// under -race by the CI stress job): N concurrent identical wait:true
// submissions must run the simulation exactly once — one leader computes,
// followers mirror its bytes, latecomers hit the cache.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	var runs atomic.Int32
	cfg := Config{Workers: 4, CacheBytes: 1 << 20}
	cfg.hookRunning = func(*Job) { runs.Add(1) }
	s, ts := newTestServer(t, cfg)

	const clients = 16
	body := fmt.Sprintf(`{"qasm": %q, "wait": true}`, groverQASM)
	envelopes := make([]json.RawMessage, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, res, view := postRaw(t, ts.URL, body)
			if code != http.StatusOK || view.Status != StatusDone {
				t.Errorf("client %d: %d %+v", i, code, view.Error)
				return
			}
			envelopes[i] = res
		}(i)
	}
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("simulation ran %d times for %d identical submissions, want exactly 1", got, clients)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(envelopes[0], envelopes[i]) {
			t.Fatalf("client %d received a different envelope", i)
		}
	}
	st := s.eng.CacheStats()
	deduped := s.eng.Deduped()
	if int(deduped)+int(st.Hits)+1 != clients {
		t.Fatalf("accounting: 1 run + %d deduped + %d cache hits != %d clients", deduped, st.Hits, clients)
	}
}

// TestFailedJobsNotCached: a budget refusal must not poison the cache — the
// same circuit under a workable budget runs and succeeds.
func TestFailedJobsNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheBytes: 1 << 20, CheckpointEvery: -1})
	body := fmt.Sprintf(`{"qasm": %q, "wait": true, "max_nodes": 1}`, ghzQASM(6))
	_, view, _ := postJob(t, ts.URL, body)
	if view.Status != StatusFailed || view.Error == nil || view.Error.Kind != KindBudgetExceeded {
		t.Fatalf("tiny budget: %+v", view)
	}
	if st := s.eng.CacheStats(); st.Stores != 0 {
		t.Fatalf("failure was cached: %+v", st)
	}

	_, view, _ = postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "wait": true}`, ghzQASM(6)))
	if view.Status != StatusDone || view.Cached {
		t.Fatalf("unbudgeted rerun: %+v", view)
	}
	if st := s.eng.CacheStats(); st.Stores != 1 {
		t.Fatalf("success was not cached: %+v", st)
	}
}

// TestDiskTierSurvivesRestart: a result cached to disk is served — flagged
// cached, byte-identical — by a fresh Server over the same directory.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{"qasm": %q, "wait": true, "output": "ddio"}`, groverQASM)

	s1, err := New(Config{Workers: 1, CacheBytes: 1 << 20, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := serveHTTP(t, s1)
	code, _, res1, view := postRaw(t, ts1, body)
	if code != http.StatusOK || view.Status != StatusDone {
		t.Fatalf("first run: %d %+v", code, view)
	}
	s1.Shutdown(10 * time.Second)

	// Restarted daemon, cold memory tier: the hit comes off disk.
	s2, err := New(Config{Workers: 1, CacheBytes: 1 << 20, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := serveHTTP(t, s2)
	code, _, res2, view := postRaw(t, ts2, body)
	if code != http.StatusOK || !view.Cached {
		t.Fatalf("after restart: %d cached=%v %+v", code, view.Cached, view.Error)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatal("disk-replayed envelope differs from the original")
	}
	if st := s2.eng.CacheStats(); st.DiskHits != 1 {
		t.Fatalf("stats after restart hit: %+v", st)
	}
	s2.Shutdown(10 * time.Second)
}
