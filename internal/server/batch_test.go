package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// batchBody builds a base+suffixes batch over the GHZ base.
func batchBody(n int, wait bool) string {
	base := ghzQASM(3)
	suffixes := make([]string, n)
	for i := range suffixes {
		gate := "s"
		if i%2 == 1 {
			gate = "t"
		}
		suffixes[i] = fmt.Sprintf("OPENQASM 2.0;\nqreg q[3];\n%s q[%d];\n", gate, i%3)
	}
	b, _ := json.Marshal(map[string]any{
		"base": base, "suffixes": suffixes, "top_k": 4, "wait": wait,
	})
	return string(b)
}

func postBatch(t *testing.T, url, body, requestID string) (*http.Response, engine.BatchView) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/batches", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view engine.BatchView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decoding batch view (%d): %v", resp.StatusCode, err)
	}
	return resp, view
}

// TestBatchEndToEnd drives POST /v1/batches with wait through the full
// transport: shared prefix simulated once, request ids propagated from the
// submission's X-Request-Id to every child, results attached.
func TestBatchEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	const n = 3
	resp, view := postBatch(t, ts.URL, batchBody(n, true), "e2e-batch")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batches = %d, want 200", resp.StatusCode)
	}
	if view.Status != "done" {
		t.Fatalf("batch status %q, want done", view.Status)
	}
	if view.PrefixGates != 3 {
		t.Fatalf("prefix gates = %d, want 3", view.PrefixGates)
	}
	if view.Prefix == nil || view.Prefix.RequestID != "e2e-batch-/prefix" {
		t.Fatalf("prefix view = %+v", view.Prefix)
	}
	if len(view.Variants) != n {
		t.Fatalf("%d variants, want %d", len(view.Variants), n)
	}
	for i, v := range view.Variants {
		if want := fmt.Sprintf("e2e-batch-/v%d", i); v.RequestID != want {
			t.Errorf("variant %d request id %q, want %q", i, v.RequestID, want)
		}
		if v.Job == nil || v.Job.Status != "done" || v.Job.Result == nil {
			t.Fatalf("variant %d unfinished or missing its result: %+v", i, v)
		}
	}
	if hits := s.Engine().PrefixHits(); hits != n {
		t.Errorf("prefix hits = %d, want %d", hits, n)
	}
	if started := s.Engine().JobsStarted(); started != n+1 {
		t.Errorf("jobs started = %d, want %d (prefix + variants)", started, n+1)
	}

	// The finished batch stays pollable with results attached.
	var polled engine.BatchView
	gresp := getJSON(t, ts.URL+"/v1/batches/"+view.ID, &polled)
	if gresp.StatusCode != http.StatusOK || polled.Status != "done" {
		t.Fatalf("poll = %d / %q", gresp.StatusCode, polled.Status)
	}
	if polled.Variants[0].Job == nil || polled.Variants[0].Job.Result == nil {
		t.Error("polled batch lost its results")
	}

	// The metrics surface exports the batch counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"qmddd_batches_total 1",
		fmt.Sprintf("qmddd_batch_variants_total %d", n),
		fmt.Sprintf("qmddd_prefix_hits_total %d", n),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
}

// TestBatchAsyncPoll: without wait the submission answers 202 immediately
// and GET /v1/batches/{id} converges to done.
func TestBatchAsyncPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	resp, view := postBatch(t, ts.URL, batchBody(2, false), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/batches = %d, want 202", resp.StatusCode)
	}
	if view.ID == "" {
		t.Fatal("batch view has no id")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var polled engine.BatchView
		if resp := getJSON(t, ts.URL+"/v1/batches/"+view.ID, &polled); resp.StatusCode != http.StatusOK {
			t.Fatalf("poll = %d", resp.StatusCode)
		}
		if polled.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch still %q after 30s", polled.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBatchRefusals covers the transport-level error mapping.
func TestBatchRefusals(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Unknown batch id → 404.
	resp, err := http.Get(ts.URL + "/v1/batches/bdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch = %d, want 404", resp.StatusCode)
	}

	// Malformed JSON → 400.
	resp, err = http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}

	// Using both forms at once → 400.
	body, _ := json.Marshal(map[string]any{
		"base": ghzQASM(2), "suffixes": []string{ghzQASM(2)}, "variants": []string{ghzQASM(2)},
	})
	resp, err = http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("both forms = %d, want 400", resp.StatusCode)
	}
}
