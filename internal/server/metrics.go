package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// metrics is the daemon's observability state, rendered as Prometheus text
// exposition format by render — stdlib only, no client library. Job-level
// counters are lock-free atomics bumped on the request and worker paths;
// per-worker utilization and the last manager table snapshot are guarded by
// a mutex and written only by the owning worker between jobs, so scrapes
// never contend with diagram arithmetic.
type metrics struct {
	started   atomic.Uint64 // jobs dequeued by a worker
	completed atomic.Uint64 // jobs finished successfully
	failed    atomic.Uint64 // jobs finished with an error (budget, run error)
	cancelled atomic.Uint64 // jobs cancelled (timeout, shutdown)
	rejected  atomic.Uint64 // submissions refused with 429

	mu      sync.Mutex
	workers []workerMetrics
}

// workerMetrics is one worker's cumulative utilization plus the table
// statistics of the manager its last job ran on.
type workerMetrics struct {
	jobs      uint64
	busy      time.Duration
	peakNodes int // max per-job peak observed over the worker's lifetime
	lastSnap  core.Snapshot
	hasSnap   bool
}

func newMetrics(workers int) *metrics {
	return &metrics{workers: make([]workerMetrics, workers)}
}

// observe records one finished job on worker w.
func (m *metrics) observe(w int, busy time.Duration, snap core.Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wm := &m.workers[w]
	wm.jobs++
	wm.busy += busy
	if snap.PeakNodes > wm.peakNodes {
		wm.peakNodes = snap.PeakNodes
	}
	wm.lastSnap = snap
	wm.hasSnap = true
}

// render writes the Prometheus text exposition.
func (m *metrics) render(w io.Writer, queueDepth, queueCap int) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("qmddd_jobs_started_total", "Jobs dequeued by a worker.", m.started.Load())
	counter("qmddd_jobs_completed_total", "Jobs finished successfully.", m.completed.Load())
	counter("qmddd_jobs_failed_total", "Jobs finished with an error.", m.failed.Load())
	counter("qmddd_jobs_cancelled_total", "Jobs cancelled by timeout or shutdown.", m.cancelled.Load())
	counter("qmddd_jobs_rejected_total", "Submissions refused with 429.", m.rejected.Load())
	fmt.Fprintf(w, "# HELP qmddd_queue_depth Jobs waiting in the bounded queue.\n# TYPE qmddd_queue_depth gauge\nqmddd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP qmddd_queue_capacity Bounded queue capacity.\n# TYPE qmddd_queue_capacity gauge\nqmddd_queue_capacity %d\n", queueCap)

	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP qmddd_worker_jobs_total Jobs run by this worker.\n# TYPE qmddd_worker_jobs_total counter\n")
	for i := range m.workers {
		fmt.Fprintf(w, "qmddd_worker_jobs_total{worker=\"%d\"} %d\n", i, m.workers[i].jobs)
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_busy_seconds_total Wall-clock spent inside jobs.\n# TYPE qmddd_worker_busy_seconds_total counter\n")
	for i := range m.workers {
		fmt.Fprintf(w, "qmddd_worker_busy_seconds_total{worker=\"%d\"} %.6f\n", i, m.workers[i].busy.Seconds())
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_peak_nodes Largest per-job peak node count observed.\n# TYPE qmddd_worker_peak_nodes gauge\n")
	for i := range m.workers {
		fmt.Fprintf(w, "qmddd_worker_peak_nodes{worker=\"%d\"} %d\n", i, m.workers[i].peakNodes)
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_unique_table_nodes Unique-table occupancy after the worker's last job.\n# TYPE qmddd_worker_unique_table_nodes gauge\n")
	for i := range m.workers {
		if m.workers[i].hasSnap {
			fmt.Fprintf(w, "qmddd_worker_unique_table_nodes{worker=\"%d\"} %d\n", i, m.workers[i].lastSnap.UniqueNodes)
		}
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_interned_weights Intern-table occupancy after the worker's last job.\n# TYPE qmddd_worker_interned_weights gauge\n")
	for i := range m.workers {
		if m.workers[i].hasSnap {
			fmt.Fprintf(w, "qmddd_worker_interned_weights{worker=\"%d\"} %d\n", i, m.workers[i].lastSnap.InternedWeights)
		}
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_ct_load Compute-table load factor after the worker's last job.\n# TYPE qmddd_worker_ct_load gauge\n")
	for i := range m.workers {
		if m.workers[i].hasSnap {
			fmt.Fprintf(w, "qmddd_worker_ct_load{worker=\"%d\"} %.6f\n", i, m.workers[i].lastSnap.CTLoad)
		}
	}
}
