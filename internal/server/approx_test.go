package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/num"
	"repro/internal/qasm"
	"repro/internal/sim"
)

// clutterQASM is the server-side twin of the sim layer's clutter circuit: a
// dominant |0…0⟩ branch plus a generic low-mass tail that fills the diagram,
// so a node cap trips while a fidelity floor has cheap mass to shed.
func clutterQASM(n, layers int, seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	fmt.Fprintf(&sb, "OPENQASM 2.0;\nqreg q[%d];\n", n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			fmt.Fprintf(&sb, "ry(%.6f) q[%d];\n", 0.02+0.02*r.Float64(), q)
		}
		for q := 0; q+1 < n; q++ {
			fmt.Fprintf(&sb, "cx q[%d],q[%d];\n", q, q+1)
		}
	}
	return sb.String()
}

// clutterNodeDemand measures the unbudgeted unique-table demand of the
// circuit (monotone without pruning), to derive a cap that must trip.
func clutterNodeDemand(t *testing.T, src string) int {
	t.Helper()
	circ, err := qasm.Parse(src, "test")
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewManager[complex128](num.NewRing(0), core.NormLeft)
	s := sim.New(m, circ.N)
	if err := s.Run(circ, nil); err != nil {
		t.Fatal(err)
	}
	return m.Stats().UniqueNodes
}

// TestApproxFlipsBudgetExceeded is the end-to-end graceful-degradation
// story: under a node cap the job fails budget_exceeded; the same job with a
// min_fidelity floor completes approximately, with the retained fidelity
// stamped in the envelope.
func TestApproxFlipsBudgetExceeded(t *testing.T) {
	src := clutterQASM(10, 24, 11)
	cap := clutterNodeDemand(t, src) / 2
	if cap < 256 {
		t.Fatalf("circuit too small to pressure a budget: cap %d", cap)
	}
	_, ts := newTestServer(t, Config{Workers: 1})

	body := fmt.Sprintf(`{"qasm": %q, "representation": "float", "max_nodes": %d, "wait": true}`, src, cap)
	_, view, _ := postJob(t, ts.URL, body)
	if view.Status != StatusFailed || view.Error == nil || view.Error.Kind != KindBudgetExceeded {
		t.Fatalf("capped job without min_fidelity: %+v", view)
	}

	body = fmt.Sprintf(`{"qasm": %q, "representation": "float", "max_nodes": %d, "min_fidelity": 0.6, "wait": true}`, src, cap)
	_, view, _ = postJob(t, ts.URL, body)
	if view.Status != StatusDone || view.Result == nil {
		t.Fatalf("capped job with min_fidelity did not complete: %+v", view)
	}
	r := view.Result
	if !r.Approximate || r.ApproxEvents < 1 {
		t.Fatalf("budget pressure left no approximation trace: %+v", r)
	}
	if r.Fidelity < 0.6 || r.Fidelity > 1 {
		t.Fatalf("stamped fidelity %v outside [0.6, 1]", r.Fidelity)
	}
	if r.FidelityExact {
		t.Fatal("float-representation fidelity flagged exact")
	}
	if len(r.Amplitudes) == 0 {
		t.Fatalf("approximate result lost its amplitudes: %+v", r)
	}

	// The approximation surface shows on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"qmddd_approximated_jobs_total 1", "qmddd_approximations_total"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestApproxCacheKeys: an approximate result is cached under its own
// (floor, budget)-qualified key — a repeat of the same request hits it, while
// the exact request for the same circuit never sees it. A min_fidelity job
// that ran exactly (no budget pressure) shares the exact key both ways.
func TestApproxCacheKeys(t *testing.T) {
	src := clutterQASM(10, 24, 11)
	cap := clutterNodeDemand(t, src) / 2
	_, ts := newTestServer(t, Config{Workers: 1, CacheBytes: 1 << 20})

	approxBody := fmt.Sprintf(`{"qasm": %q, "representation": "float", "max_nodes": %d, "min_fidelity": 0.6, "wait": true}`, src, cap)
	_, first, _ := postJob(t, ts.URL, approxBody)
	if first.Status != StatusDone || !first.Result.Approximate {
		t.Fatalf("approximate leader: %+v", first)
	}
	_, second, _ := postJob(t, ts.URL, approxBody)
	if !second.Cached {
		t.Fatalf("identical approximate request missed the cache: %+v", second)
	}
	if !sameEnvelope(t, second.Result, first.Result) {
		t.Fatalf("cached approximate envelope differs:\n%+v\n%+v", second.Result, first.Result)
	}

	// The exact request must not inherit the approximate envelope.
	exactBody := fmt.Sprintf(`{"qasm": %q, "representation": "float", "wait": true}`, src)
	_, exact, _ := postJob(t, ts.URL, exactBody)
	if exact.Status != StatusDone || exact.Cached {
		t.Fatalf("exact request after approximate run: %+v", exact)
	}
	if exact.Result.Approximate || exact.Result.Fidelity != 0 {
		t.Fatalf("exact result carries approximation fields: %+v", exact.Result)
	}

	// A min_fidelity request with no budget pressure runs exactly and hits
	// the exact entry (stored by the run above) without simulating.
	easyBody := fmt.Sprintf(`{"qasm": %q, "representation": "float", "min_fidelity": 0.6, "wait": true}`, src)
	_, easy, _ := postJob(t, ts.URL, easyBody)
	if !easy.Cached {
		t.Fatalf("unpressured min_fidelity request missed the exact cache entry: %+v", easy)
	}
	if !sameEnvelope(t, easy.Result, exact.Result) {
		t.Fatalf("shared exact envelope differs:\n%+v\n%+v", easy.Result, exact.Result)
	}
}

// sameEnvelope compares two result envelopes by their canonical JSON bytes —
// the same form the cache stores and replays.
func sameEnvelope(t *testing.T, a, b *JobResult) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ja) == string(jb)
}

// TestApproxValidation covers the request-surface rules: range checks, the
// shots conflict, and the server-side floor raising lax requests.
func TestApproxValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MinFidelityFloor: 0.8})
	for _, body := range []string{
		fmt.Sprintf(`{"qasm": %q, "min_fidelity": -0.1}`, ghzQASM(2)),
		fmt.Sprintf(`{"qasm": %q, "min_fidelity": 1.5}`, ghzQASM(2)),
		fmt.Sprintf(`{"qasm": %q, "min_fidelity": 0.9, "shots": 100}`, ghzQASM(2)),
	} {
		resp, _, eb := postJob(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest || eb.Kind != KindInvalidRequest {
			t.Fatalf("body %s: status %d, error %+v", body, resp.StatusCode, eb)
		}
	}

	// Below the operator floor the request is raised, not refused: a capped
	// run asking for 0.01 still retains ≥ 0.8.
	src := clutterQASM(10, 24, 11)
	cap := clutterNodeDemand(t, src) / 2
	body := fmt.Sprintf(`{"qasm": %q, "representation": "float", "max_nodes": %d, "min_fidelity": 0.01, "wait": true}`, src, cap)
	_, view, _ := postJob(t, ts.URL, body)
	if view.Status != StatusDone || !view.Result.Approximate {
		t.Fatalf("floored job: %+v", view)
	}
	if view.Result.Fidelity < 0.8 {
		t.Fatalf("operator floor not enforced: fidelity %v < 0.8", view.Result.Fidelity)
	}

	// min_fidelity 1 is exact semantics: accepted, never approximates.
	body = fmt.Sprintf(`{"qasm": %q, "min_fidelity": 1, "wait": true}`, ghzQASM(3))
	_, view, _ = postJob(t, ts.URL, body)
	if view.Status != StatusDone || view.Result.Approximate {
		t.Fatalf("min_fidelity=1 job: %+v", view)
	}
}
