package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestGracefulDrain: accepted jobs finish during Shutdown, new submissions
// are refused with 503, and healthz flips to draining.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{Workers: 2, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	var ids []string
	for i := 0; i < 6; i++ {
		resp, view, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(3+i%3)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		ids = append(ids, view.ID)
	}

	done := make(chan struct{})
	go func() { s.Shutdown(10 * time.Second); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown did not return")
	}

	// Every accepted job drained to completion.
	for _, id := range ids {
		var v JobView
		if r := getJSON(t, ts.URL+"/v1/jobs/"+id, &v); r.StatusCode != http.StatusOK {
			t.Fatalf("poll %s = %d", id, r.StatusCode)
		}
		if v.Status != StatusDone {
			t.Fatalf("job %s drained to %q, want done (error: %+v)", id, v.Status, v.Error)
		}
	}

	// Intake is closed: submissions answer 503 shutting_down.
	resp, _, eb := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(2)))
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Kind != KindShuttingDown {
		t.Fatalf("post-shutdown submit = %d %+v", resp.StatusCode, eb)
	}

	// Liveness vs readiness while draining: the process is still alive —
	// serving polls for drained jobs — so /healthz stays 200 (a restart
	// here would lose the drain); /readyz answers 503 so routers stop
	// sending new work.
	var h struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if r := getJSON(t, ts.URL+"/healthz", &h); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (live)", r.StatusCode)
	}
	if !h.Draining {
		t.Fatalf("healthz body during drain = %+v, want draining=true", h)
	}
	var rb struct {
		Status string `json:"status"`
	}
	if r := getJSON(t, ts.URL+"/readyz", &rb); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503 (unready)", r.StatusCode)
	}
	if rb.Status != "draining" {
		t.Fatalf("readyz body during drain = %+v, want status=draining", rb)
	}
}

// TestDrainDeadlineCancelsInFlight: a job still running at the drain deadline
// is cancelled cooperatively through the governor — Shutdown still returns,
// and the job lands in status cancelled rather than hanging or vanishing.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	cfg := Config{Workers: 1, QueueSize: 4}
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	cfg.hookRunning = func(*Job) { entered <- struct{}{}; <-release }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// First job blocks in the hook (in flight); second waits in the queue.
	// Distinct circuits: an identical one would be deduplicated onto the
	// first, and this test is about the queued path.
	_, inflight, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(3)))
	<-entered
	_, queued, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(4)))

	done := make(chan struct{})
	go func() { s.Shutdown(20 * time.Millisecond); close(done) }()
	// Wait for the drain deadline to trip the run context, then let the
	// stuck worker proceed into the now-cancelled run.
	<-s.eng.DrainContext().Done()
	close(release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after cancelling in-flight work")
	}

	var v JobView
	getJSON(t, ts.URL+"/v1/jobs/"+inflight.ID, &v)
	if v.Status != StatusCancelled || v.Error == nil || v.Error.Kind != KindCancelled {
		t.Fatalf("in-flight job = %q %+v, want cancelled", v.Status, v.Error)
	}
	getJSON(t, ts.URL+"/v1/jobs/"+queued.ID, &v)
	if v.Status != StatusCancelled || v.Error == nil || v.Error.Kind != KindCancelled {
		t.Fatalf("queued job = %q %+v, want cancelled", v.Status, v.Error)
	}
	if v.Error.Message == "" || !strings.Contains(v.Error.Message, "shut down") {
		t.Fatalf("queued job error = %+v, want the before-start message", v.Error)
	}
}

// TestShutdownIdempotent: calling Shutdown twice is safe (the second call
// returns immediately).
func TestShutdownIdempotent(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Shutdown(time.Second)
	donee := make(chan struct{})
	go func() { s.Shutdown(time.Second); close(donee) }()
	select {
	case <-donee:
	case <-time.After(5 * time.Second):
		t.Fatal("second Shutdown hung")
	}
}
