package server

import "repro/internal/engine"

// The wire vocabulary lives in internal/engine (it is the engine's submit
// and result surface, shared by the worker transport here, the router, and
// the load harness). These aliases keep the server package's historical
// names valid for its callers and tests.
type (
	JobRequest = engine.JobRequest
	JobResult  = engine.JobResult
	JobView    = engine.JobView
	Amplitude  = engine.Amplitude
	ErrorBody  = engine.ErrorBody
	Job        = engine.Job

	BatchRequest     = engine.BatchRequest
	BatchView        = engine.BatchView
	BatchVariantView = engine.BatchVariantView
)

// Error kinds.
const (
	KindInvalidRequest = engine.KindInvalidRequest
	KindParseError     = engine.KindParseError
	KindBudgetExceeded = engine.KindBudgetExceeded
	KindCancelled      = engine.KindCancelled
	KindTimeout        = engine.KindTimeout
	KindQueueFull      = engine.KindQueueFull
	KindShuttingDown   = engine.KindShuttingDown
	KindNotFound       = engine.KindNotFound
	KindNotFinished    = engine.KindNotFinished
	KindTooLarge       = engine.KindTooLarge
	KindRunError       = engine.KindRunError
)

// Job statuses.
const (
	StatusQueued    = engine.StatusQueued
	StatusRunning   = engine.StatusRunning
	StatusDone      = engine.StatusDone
	StatusFailed    = engine.StatusFailed
	StatusCancelled = engine.StatusCancelled
)
