package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ddio"
	"repro/internal/num"
	"repro/internal/qasm"
	"repro/internal/sim"
)

// baseline runs one circuit single-threaded on a fresh private manager and
// returns the amplitude list exactly as the server computes it, so the
// concurrency test can assert that a hammered pool returns byte-identical
// answers.
func baseline(t *testing.T, src, repr string) []Amplitude {
	t.Helper()
	circ, err := qasm.Parse(src, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if repr == "alg" {
		m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
		return baselineTyped(t, m, ddio.AlgCodec{}, circ)
	}
	m := core.NewManager[complex128](num.NewRing(0), core.NormLeft)
	return baselineTyped(t, m, ddio.NumCodec{}, circ)
}

func baselineTyped[T any](t *testing.T, m *core.Manager[T], codec ddio.Codec[T], circ *circuit.Circuit) []Amplitude {
	t.Helper()
	s := sim.New(m, circ.N)
	if err := s.RunCtx(context.Background(), circ, nil); err != nil {
		t.Fatal(err)
	}
	idxs, probs := m.TopOutcomes(s.State, circ.N, 16)
	out := make([]Amplitude, 0, len(idxs))
	for i, idx := range idxs {
		amp := m.Amplitude(s.State, circ.N, idx)
		c := m.R.Complex128(amp)
		out = append(out, Amplitude{
			Index: idx,
			State: fmt.Sprintf("%0*b", circ.N, idx),
			Re:    real(c),
			Im:    imag(c),
			Prob:  probs[i],
			Exact: codec.Encode(amp),
		})
	}
	return out
}

// TestConcurrentMixedLoad hammers the queue from K goroutines with a mix of
// circuits and representations and asserts every result matches the
// single-threaded baseline: worker-private managers must not leak any state
// between jobs or across goroutines (run with -race).
func TestConcurrentMixedLoad(t *testing.T) {
	type workload struct {
		qasmSrc string
		repr    string
	}
	loads := []workload{
		{groverQASM, "alg"},
		{groverQASM, "float"},
		{ghzQASM(3), "alg"},
		{ghzQASM(3), "float"},
		{ghzQASM(6), "alg"},
		{ghzQASM(6), "float"},
	}
	want := make([][]Amplitude, len(loads))
	for i, l := range loads {
		want[i] = baseline(t, l.qasmSrc, l.repr)
	}

	_, ts := newTestServer(t, Config{Workers: 4, QueueSize: 64})

	const K = 8          // concurrent clients
	const perClient = 12 // jobs per client, cycling through the workloads
	var wg sync.WaitGroup
	errs := make(chan error, K*perClient)
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for n := 0; n < perClient; n++ {
				i := (k + n) % len(loads)
				l := loads[i]
				body := fmt.Sprintf(`{"qasm": %q, "representation": %q, "wait": true}`, l.qasmSrc, l.repr)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var view JobView
				err = json.NewDecoder(resp.Body).Decode(&view)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK || view.Status != StatusDone || view.Result == nil {
					errs <- fmt.Errorf("client %d job %d: status %d/%q (%+v)", k, n, resp.StatusCode, view.Status, view.Error)
					return
				}
				if err := compareAmplitudes(view.Result.Amplitudes, want[i], l.repr); err != nil {
					errs <- fmt.Errorf("client %d job %d (%s): %w", k, n, l.repr, err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func compareAmplitudes(got, want []Amplitude, repr string) error {
	if len(got) != len(want) {
		return fmt.Errorf("amplitude count %d, baseline %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Index != w.Index || g.State != w.State {
			return fmt.Errorf("outcome %d: got |%s⟩ (%d), baseline |%s⟩ (%d)", i, g.State, g.Index, w.State, w.Index)
		}
		if repr == "alg" && g.Exact != w.Exact {
			return fmt.Errorf("outcome %d: exact %q, baseline %q", i, g.Exact, w.Exact)
		}
		if math.Abs(g.Re-w.Re) > 1e-12 || math.Abs(g.Im-w.Im) > 1e-12 || math.Abs(g.Prob-w.Prob) > 1e-12 {
			return fmt.Errorf("outcome %d: amplitude (%g,%g|%g), baseline (%g,%g|%g)",
				i, g.Re, g.Im, g.Prob, w.Re, w.Im, w.Prob)
		}
	}
	return nil
}
