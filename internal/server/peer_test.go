package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/qcache"
)

// newPeerServer builds a Server whose peering client is wired to the given
// membership, with self as this node's own URL. The URLs must already exist
// (httptest allocates the listener before the handler matters), so tests
// create listeners first and swap handlers in.
func newPeerServer(t *testing.T, cfg Config, self string, peers []string) *Server {
	t.Helper()
	cfg.Self = self
	cfg.Peers = peers
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startSwappable returns a test listener whose handler can be installed
// after construction — needed because peer URLs must be known at Config
// time, before the Server handling them exists.
func startSwappable(t *testing.T) (*httptest.Server, *http.ServeMux) {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, mux
}

// TestPeerCacheHitServesWithoutSimulation: a key warm on one node is served
// by a ring peer without the receiving node ever starting a job, and the
// adopted envelope heals the receiving node's own cache.
func TestPeerCacheHitServesWithoutSimulation(t *testing.T) {
	tsA, muxA := startSwappable(t)
	tsB, muxB := startSwappable(t)
	members := []string{tsA.URL, tsB.URL}

	srvA := newPeerServer(t, Config{Workers: 1, CacheDir: t.TempDir()}, tsA.URL, members)
	defer srvA.Shutdown(0)
	muxA.Handle("/", srvA)
	srvB := newPeerServer(t, Config{Workers: 1, CacheDir: t.TempDir()}, tsB.URL, members)
	defer srvB.Shutdown(0)
	muxB.Handle("/", srvB)

	body := fmt.Sprintf(`{"qasm": %q, "wait": true}`, groverQASM)

	// Warm the key on A (A may consult B first — a miss — then simulates).
	if resp, view, _ := postJob(t, tsA.URL, body); resp.StatusCode != http.StatusOK || view.Status != StatusDone {
		t.Fatalf("warming run on A: %d %+v", resp.StatusCode, view)
	}
	if got := srvA.eng.JobsStarted(); got != 1 {
		t.Fatalf("A started %d jobs warming the key, want 1", got)
	}

	// Same job to B: served via the peering protocol, no local simulation.
	resp, view, _ := postJob(t, tsB.URL, body)
	if resp.StatusCode != http.StatusOK || view.Status != StatusDone || !view.Cached {
		t.Fatalf("peer-served run on B: %d cached=%v %+v", resp.StatusCode, view.Cached, view.Error)
	}
	if got := srvB.eng.JobsStarted(); got != 0 {
		t.Fatalf("B started %d jobs for a peer-warm key, want 0", got)
	}
	if got := srvB.eng.PeerHits(); got != 1 {
		t.Fatalf("B peer hits = %d, want 1", got)
	}

	// Adoption: the envelope is now local to B — a replay is a plain cache
	// hit, no further peer traffic.
	fetchesBefore := srvB.peers.fetches.Load()
	if _, view, _ := postJob(t, tsB.URL, body); !view.Cached {
		t.Fatalf("replay on B after adoption: %+v", view)
	}
	if got := srvB.peers.fetches.Load(); got != fetchesBefore {
		t.Fatalf("replay issued %d extra peer fetches, want 0", got-fetchesBefore)
	}
}

// TestPeerDownFallsBackToSimulation: an unreachable peer costs one failed
// fetch, never the job — the node simulates locally and succeeds.
func TestPeerDownFallsBackToSimulation(t *testing.T) {
	ts, mux := startSwappable(t)
	// A peer that is guaranteed dead: grab a port, then close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	srv := newPeerServer(t, Config{Workers: 1, CacheDir: t.TempDir()}, ts.URL, []string{ts.URL, deadURL})
	defer srv.Shutdown(0)
	mux.Handle("/", srv)

	resp, view, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "wait": true}`, groverQASM))
	if resp.StatusCode != http.StatusOK || view.Status != StatusDone || view.Cached {
		t.Fatalf("run with dead peer: %d %+v", resp.StatusCode, view)
	}
	if got := srv.eng.JobsStarted(); got != 1 {
		t.Fatalf("started %d jobs, want 1 (local simulation)", got)
	}
	if got := srv.peers.errors.Load(); got != 1 {
		t.Fatalf("peer errors = %d, want 1 (connection refused)", got)
	}
	if got := srv.eng.PeerHits(); got != 0 {
		t.Fatalf("peer hits = %d, want 0", got)
	}
}

// TestPeerCorruptEnvelopeRejected: a peer serving corrupt or mis-stamped
// bytes never poisons the receiver — the envelope fails checksum/stamp
// validation, the job simulates locally, and the locally computed result
// self-heals the node's cache so the peer is not asked again.
func TestPeerCorruptEnvelopeRejected(t *testing.T) {
	cases := []struct {
		name  string
		serve func(st qcache.Stamp) []byte
	}{
		{"flipped byte", func(st qcache.Stamp) []byte {
			raw := qcache.EncodeEntry([]byte(`{"qubits":2}`), st)
			raw[len(raw)-1] ^= 0xff // corrupt the payload after hashing
			return raw
		}},
		{"stamp mismatch", func(st qcache.Stamp) []byte {
			// Well-formed envelope, wrong provenance: float bytes offered for
			// an alg request.
			return qcache.EncodeEntry([]byte(`{"qubits":2}`), qcache.Stamp{Repr: "float", Norm: st.Norm, Eps: 0.5})
		}},
		{"garbage", func(qcache.Stamp) []byte { return []byte("not an envelope at all") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, mux := startSwappable(t)
			evil, evilMux := startSwappable(t)
			wantStamp := qcache.Stamp{Repr: "alg", Norm: "left"}
			evilMux.HandleFunc("GET /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/octet-stream")
				_, _ = w.Write(tc.serve(wantStamp))
			})

			srv := newPeerServer(t, Config{Workers: 1, CacheDir: t.TempDir()}, ts.URL, []string{ts.URL, evil.URL})
			defer srv.Shutdown(0)
			mux.Handle("/", srv)

			body := fmt.Sprintf(`{"qasm": %q, "wait": true}`, groverQASM)
			resp, view, _ := postJob(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK || view.Status != StatusDone || view.Cached {
				t.Fatalf("run against corrupt peer: %d %+v", resp.StatusCode, view)
			}
			if view.Result == nil || len(view.Result.Amplitudes) == 0 || view.Result.Amplitudes[0].State != "11" {
				t.Fatalf("local simulation produced a wrong result: %+v", view.Result)
			}
			if got := srv.eng.JobsStarted(); got != 1 {
				t.Fatalf("started %d jobs, want 1 (corrupt envelope must force local simulation)", got)
			}
			if got := srv.peers.errors.Load(); got != 1 {
				t.Fatalf("peer errors = %d, want 1 (invalid envelope)", got)
			}
			if got := srv.eng.PeerHits(); got != 0 {
				t.Fatalf("peer hits = %d, want 0", got)
			}

			// Self-healed: the locally computed envelope is cached, so a
			// replay is served locally with no further peer fetch.
			fetchesBefore := srv.peers.fetches.Load()
			if _, view, _ := postJob(t, ts.URL, body); !view.Cached {
				t.Fatalf("replay after self-heal: %+v", view)
			}
			if got := srv.peers.fetches.Load(); got != fetchesBefore {
				t.Fatalf("replay issued %d extra peer fetches, want 0", got-fetchesBefore)
			}
		})
	}
}

// TestCachePeekEndpoint: the peering endpoint serves exactly the stored
// stamped envelope, 404s a cold key, and rejects malformed keys.
func TestCachePeekEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheDir: t.TempDir()})
	body := fmt.Sprintf(`{"qasm": %q, "wait": true}`, groverQASM)
	if resp, view, _ := postJob(t, ts.URL, body); resp.StatusCode != http.StatusOK || view.Status != StatusDone {
		t.Fatalf("warming run: %d %+v", resp.StatusCode, view)
	}
	_ = s

	// Find the stored key via the disk directory: exactly one entry exists.
	// (Asking over HTTP with a made-up key must 404.)
	var zero qcache.Key
	resp, err := http.Get(ts.URL + "/v1/cache/" + zero.String())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold key = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/cache/nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key = %d, want 400", resp.StatusCode)
	}
}
