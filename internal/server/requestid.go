package server

import "repro/internal/httpx"

// Request-id plumbing lives in internal/httpx (shared with the router);
// these aliases keep the server package's surface self-contained.
const RequestIDHeader = httpx.RequestIDHeader

// NewRequestID mints a fresh request id.
func NewRequestID() string { return httpx.NewRequestID() }
