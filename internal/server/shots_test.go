package server

import (
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// teleportQASM teleports X|0⟩ = |1⟩ from q0 to q2 via mid-circuit
// measurement and classical feedback, then reads out the destination into
// c2. Every histogram key must therefore start with '1' (c2 is the MSB of
// the 3-bit creg key).
const teleportQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c0[1];
creg c1[1];
creg c2[1];
x q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
measure q[0] -> c0[0];
measure q[1] -> c1[0];
if(c1==1) x q[2];
if(c0==1) z q[2];
measure q[2] -> c2[0];
`

// TestShotsTeleportation is the acceptance-criteria check: a dynamic
// circuit submitted in shots mode returns a correct deterministic
// histogram through POST /v1/jobs.
func TestShotsTeleportation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	body := fmt.Sprintf(`{"qasm": %q, "shots": 256, "seed": 7, "wait": true}`, teleportQASM)
	resp, view, _ := postJob(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if view.Status != StatusDone || view.Result == nil {
		t.Fatalf("job not done: %+v", view)
	}
	r := view.Result
	if r.Strategy != "resimulate" || r.Shots != 256 || r.Seed != 7 {
		t.Fatalf("strategy/shots/seed = %q/%d/%d", r.Strategy, r.Shots, r.Seed)
	}
	total := 0
	for key, n := range r.Histogram {
		if len(key) != 3 || !strings.HasPrefix(key, "1") {
			t.Errorf("key %q: teleported qubit must read 1", key)
		}
		total += n
	}
	if total != 256 {
		t.Fatalf("histogram sums to %d, want 256", total)
	}

	// Same request again: the seeded histogram is cacheable, so the second
	// submission is served without a run and is byte-identical.
	resp2, view2, _ := postJob(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK || view2.Status != StatusDone {
		t.Fatalf("resubmission: %d %+v", resp2.StatusCode, view2)
	}
	if !view2.Cached {
		t.Error("seeded shots job was not served from cache")
	}
	if !reflect.DeepEqual(view2.Result.Histogram, r.Histogram) {
		t.Errorf("cached histogram differs:\n%v\n%v", view2.Result.Histogram, r.Histogram)
	}

	// Different representation, same seed: the engine contract makes the
	// histogram identical (fresh run — repr is part of the cache key).
	bodyF := fmt.Sprintf(`{"qasm": %q, "shots": 256, "seed": 7, "representation": "float", "wait": true}`, teleportQASM)
	respF, viewF, _ := postJob(t, ts.URL, bodyF)
	if respF.StatusCode != http.StatusOK || viewF.Status != StatusDone {
		t.Fatalf("float submission: %d %+v", respF.StatusCode, viewF)
	}
	if viewF.Cached {
		t.Error("float job unexpectedly hit the alg cache entry")
	}
	if !reflect.DeepEqual(viewF.Result.Histogram, r.Histogram) {
		t.Errorf("representations disagree:\nalg:   %v\nfloat: %v", r.Histogram, viewF.Result.Histogram)
	}
}

// TestShotsUnseeded: the server draws and echoes a seed, and the job never
// enters the cache.
func TestShotsUnseeded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheBytes: 1 << 20})
	body := fmt.Sprintf(`{"qasm": %q, "shots": 64, "wait": true}`, ghzQASM(2))
	_, view, _ := postJob(t, ts.URL, body)
	if view.Status != StatusDone || view.Result == nil {
		t.Fatalf("job not done: %+v", view)
	}
	if view.Result.Seed == 0 {
		t.Error("unseeded job did not echo a drawn seed")
	}
	if view.Result.Strategy != "sample" {
		t.Errorf("static circuit ran %q, want sample", view.Result.Strategy)
	}
	_, view2, _ := postJob(t, ts.URL, body)
	if view2.Cached {
		t.Error("unseeded shots job was served from cache")
	}
}

// TestShotsCached: a seeded static-circuit histogram round-trips through
// the real cache tier (the teleportation test covers singleflight-level
// dedup; this one forces the memory tier).
func TestShotsCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheBytes: 1 << 20})
	body := fmt.Sprintf(`{"qasm": %q, "shots": 100, "seed": 3, "wait": true}`, ghzQASM(3))
	_, view, _ := postJob(t, ts.URL, body)
	if view.Status != StatusDone {
		t.Fatalf("job not done: %+v", view)
	}
	for key := range view.Result.Histogram {
		if key != "000" && key != "111" {
			t.Errorf("impossible GHZ outcome %q", key)
		}
	}
	_, view2, _ := postJob(t, ts.URL, body)
	if !view2.Cached || view2.Status != StatusDone {
		t.Fatalf("resubmission not served from cache: %+v", view2)
	}
	if !reflect.DeepEqual(view2.Result.Histogram, view.Result.Histogram) {
		t.Errorf("cached histogram differs")
	}
	// A different seed is a different job.
	_, view3, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "shots": 100, "seed": 4, "wait": true}`, ghzQASM(3)))
	if view3.Cached {
		t.Error("different seed hit the cache")
	}
}

// TestShotsValidationHTTP covers the request-level error paths.
func TestShotsValidationHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxShots: 1000})
	cases := []struct {
		name, body, wantMsg string
	}{
		{"dynamic without shots",
			fmt.Sprintf(`{"qasm": %q}`, teleportQASM),
			"submit with shots"},
		{"negative shots",
			fmt.Sprintf(`{"qasm": %q, "shots": -1}`, ghzQASM(2)),
			"non-negative"},
		{"shots above cap",
			fmt.Sprintf(`{"qasm": %q, "shots": 1001}`, ghzQASM(2)),
			"server cap"},
		{"histogram without shots",
			fmt.Sprintf(`{"qasm": %q, "output": "histogram"}`, ghzQASM(2)),
			"requires shots"},
		{"shots with amplitudes output",
			fmt.Sprintf(`{"qasm": %q, "shots": 10, "output": "amplitudes"}`, ghzQASM(2)),
			"incompatible with shots"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, eb := postJob(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest || eb.Kind != KindInvalidRequest {
				t.Fatalf("status %d, kind %q", resp.StatusCode, eb.Kind)
			}
			if !strings.Contains(eb.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", eb.Message, tc.wantMsg)
			}
		})
	}
}

// TestAmplitudesStripReadout: a static circuit with a trailing measure
// block submitted for amplitudes shares its cache identity with the
// measure-free twin — the read-out is irrelevant to the state.
func TestAmplitudesStripReadout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheBytes: 1 << 20})
	_, view, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "wait": true}`, ghzQASM(2)))
	if view.Status != StatusDone {
		t.Fatalf("job not done: %+v", view)
	}
	withReadout := ghzQASM(2) + "creg c[2];\nmeasure q -> c;\n"
	_, view2, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "wait": true}`, withReadout))
	if view2.Status != StatusDone {
		t.Fatalf("read-out twin not done: %+v", view2)
	}
	if !view2.Cached {
		t.Error("trailing read-out block changed the amplitude-job cache identity")
	}
}
