package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink (the server writes access-log
// lines from handler goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// TestRequestIDLifecycle: a forwarded X-Request-Id is adopted and echoed; a
// missing or invalid one is replaced with a generated id; error envelopes
// embed the id; and the access log carries the same id — one identifier
// joins the client's view, the envelope, and the log line.
func TestRequestIDLifecycle(t *testing.T) {
	logbuf := &syncBuffer{}
	s, err := New(Config{Workers: 1, AccessLog: logbuf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Shutdown(time.Second) })

	// Forwarded id: adopted verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "r-forwarded-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "r-forwarded-42" {
		t.Fatalf("forwarded id not echoed: %q", got)
	}

	// Missing id: one is generated.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gen := resp.Header.Get(RequestIDHeader)
	if gen == "" || !strings.HasPrefix(gen, "r") {
		t.Fatalf("no generated id: %q", gen)
	}

	// Invalid (header-splitting) id: replaced, not propagated.
	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header["X-Request-Id"] = []string{"bad id with spaces"}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got == "bad id with spaces" || got == "" {
		t.Fatalf("invalid id propagated: %q", got)
	}

	// Error envelopes carry the exchange's id.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(`{"qasm": ""}`))
	req.Header.Set(RequestIDHeader, "r-err-7")
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || envelope.Error.RequestID != "r-err-7" {
		t.Fatalf("error envelope = %d %+v, want request_id r-err-7", resp.StatusCode, envelope.Error)
	}

	// The access log has one line per exchange, keyed by the same ids.
	logs := logbuf.String()
	for _, want := range []string{
		"request_id=r-forwarded-42", "request_id=" + gen, "request_id=r-err-7",
		"method=POST", "path=/v1/jobs", "status=400",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q:\n%s", want, logs)
		}
	}
}

// TestRequestIDOnSubmitSuccess: a successful submission also echoes the id
// (the header is set before the handler runs, on every route).
func TestRequestIDOnSubmitSuccess(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := fmt.Sprintf(`{"qasm": %q, "wait": true}`, groverQASM)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set(RequestIDHeader, "r-ok-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(RequestIDHeader) != "r-ok-1" {
		t.Fatalf("submit = %d, id %q", resp.StatusCode, resp.Header.Get(RequestIDHeader))
	}
}
