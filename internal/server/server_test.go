package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// ghzQASM is an n-qubit GHZ circuit in OpenQASM.
func ghzQASM(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "OPENQASM 2.0;\nqreg q[%d];\nh q[0];\n", n)
	for i := 1; i < n; i++ {
		fmt.Fprintf(&sb, "cx q[%d],q[%d];\n", i-1, i)
	}
	return sb.String()
}

// groverQASM is a 2-qubit Grover iteration marking |11⟩; the final state is
// exactly |11⟩ (up to global phase), a sharp end-to-end assertion.
const groverQASM = `OPENQASM 2.0;
qreg q[2];
h q[0]; h q[1];
cz q[0],q[1];
h q[0]; h q[1];
x q[0]; x q[1];
cz q[0],q[1];
x q[0]; x q[1];
h q[0]; h q[1];
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(10 * time.Second)
	})
	return s, ts
}

// postJob submits a request body and decodes the response, which is either a
// JobView (possibly carrying an error for failed jobs) or an {"error": …}
// envelope for refused submissions.
func postJob(t *testing.T, url string, body string) (*http.Response, JobView, ErrorBody) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wrapper struct {
		JobView
		Error *ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wrapper); err != nil {
		t.Fatalf("decoding response (%d): %v", resp.StatusCode, err)
	}
	var eb ErrorBody
	if wrapper.Error != nil {
		eb = *wrapper.Error
	}
	wrapper.JobView.Error = wrapper.Error
	return resp, wrapper.JobView, eb
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s (%d): %v", url, resp.StatusCode, err)
		}
	}
	return resp
}

func TestSubmitWaitGrover(t *testing.T) {
	for _, repr := range []string{"alg", "float"} {
		t.Run(repr, func(t *testing.T) {
			_, ts := newTestServer(t, Config{Workers: 2})
			body := fmt.Sprintf(`{"qasm": %q, "representation": %q, "wait": true}`, groverQASM, repr)
			resp, view, _ := postJob(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if view.Status != StatusDone || view.Result == nil {
				t.Fatalf("job not done: %+v", view)
			}
			r := view.Result
			if r.Qubits != 2 || len(r.Amplitudes) == 0 {
				t.Fatalf("bad result: %+v", r)
			}
			top := r.Amplitudes[0]
			if top.State != "11" || top.Prob < 1-1e-12 || top.Prob > 1+1e-12 {
				t.Fatalf("Grover top outcome = %+v, want |11⟩ with probability 1", top)
			}
			if top.Exact == "" {
				t.Fatal("missing exact encoding")
			}
			if r.Stats == nil || r.Stats.PeakNodes == 0 {
				t.Fatalf("missing stats: %+v", r.Stats)
			}
		})
	}
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, view, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(3)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if view.ID == "" {
		t.Fatalf("no job id in %+v", view)
	}
	deadline := time.Now().Add(10 * time.Second)
	var polled JobView
	for {
		if r := getJSON(t, ts.URL+"/v1/jobs/"+view.ID, &polled); r.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", r.StatusCode)
		}
		if polled.Status != StatusQueued && polled.Status != StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", polled.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if polled.Status != StatusDone {
		t.Fatalf("terminal status = %q, error = %+v", polled.Status, polled.Error)
	}
	if polled.Result != nil {
		t.Fatal("status poll must not carry the result payload")
	}
	var full JobView
	if r := getJSON(t, ts.URL+"/v1/jobs/"+view.ID+"/result", &full); r.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", r.StatusCode)
	}
	if full.Result == nil || full.Result.Qubits != 3 {
		t.Fatalf("bad result: %+v", full.Result)
	}
	// GHZ: exactly |000⟩ and |111⟩, probability ½ each.
	if len(full.Result.Amplitudes) != 2 {
		t.Fatalf("GHZ support = %d amplitudes, want 2", len(full.Result.Amplitudes))
	}
}

func TestNotFoundAndNotFinished(t *testing.T) {
	cfg := Config{Workers: 1}
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	cfg.hookRunning = func(*Job) { entered <- struct{}{}; <-release }
	_, ts := newTestServer(t, cfg)
	defer close(release)

	if r := getJSON(t, ts.URL+"/v1/jobs/jdeadbeef", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("status for unknown id = %d", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/v1/jobs/jdeadbeef/result", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("result for unknown id = %d", r.StatusCode)
	}
	// A running job's result is a 409, not a 404 or a hang.
	_, view, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(2)))
	<-entered
	var wrapper struct {
		Error ErrorBody `json:"error"`
	}
	if r := getJSON(t, ts.URL+"/v1/jobs/"+view.ID+"/result", &wrapper); r.StatusCode != http.StatusConflict {
		t.Fatalf("result for running job = %d", r.StatusCode)
	}
	if wrapper.Error.Kind != KindNotFinished {
		t.Fatalf("kind = %q", wrapper.Error.Kind)
	}
}

func TestRequestTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})
	big := fmt.Sprintf(`{"qasm": %q}`, ghzQASM(200))
	resp, _, eb := postJob(t, ts.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if eb.Kind != KindTooLarge {
		t.Fatalf("kind = %q", eb.Kind)
	}
}

func TestQueueFull(t *testing.T) {
	cfg := Config{Workers: 1, QueueSize: 1}
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	cfg.hookRunning = func(*Job) { entered <- struct{}{}; <-release }
	_, ts := newTestServer(t, cfg)
	defer close(release)

	// First job occupies the worker; second fills the queue; third must 429.
	// Distinct circuits — identical ones would be deduplicated onto the
	// first flight instead of consuming queue slots.
	if resp, _, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(2))); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	<-entered
	if resp, _, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(3))); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}
	resp, _, eb := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(4)))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp.StatusCode)
	}
	if eb.Kind != KindQueueFull {
		t.Fatalf("kind = %q", eb.Kind)
	}
}

func TestParseErrorBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _, eb := postJob(t, ts.URL, `{"qasm": "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if eb.Kind != KindParseError || eb.Line != 3 {
		t.Fatalf("error = %+v, want parse_error at line 3", eb)
	}
}

func TestBudgetExceededBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := fmt.Sprintf(`{"qasm": %q, "max_nodes": 1, "wait": true}`, ghzQASM(6))
	resp, view, eb := postJob(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (a governed refusal is not a 5xx)", resp.StatusCode)
	}
	if view.Status != StatusFailed {
		t.Fatalf("status = %q", view.Status)
	}
	if eb.Kind != KindBudgetExceeded || eb.Limit != "nodes" || eb.Peak == nil || eb.Peak.Nodes < 1 {
		t.Fatalf("error = %+v, want budget_exceeded on nodes with peaks", eb)
	}
}

func TestInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"empty qasm", `{"qasm": ""}`},
		{"bad representation", `{"qasm": "OPENQASM 2.0;\nqreg q[1];", "representation": "double"}`},
		{"bad norm", `{"qasm": "OPENQASM 2.0;\nqreg q[1];", "norm": "weird"}`},
		{"bad output", `{"qasm": "OPENQASM 2.0;\nqreg q[1];", "output": "dot"}`},
		{"negative budget", `{"qasm": "OPENQASM 2.0;\nqreg q[1];", "max_nodes": -5}`},
		{"negative eps", `{"qasm": "OPENQASM 2.0;\nqreg q[1];", "representation": "float", "eps": -1}`},
		{"unknown field", `{"qasm": "OPENQASM 2.0;\nqreg q[1];", "qubits": 3}`},
		{"not json", `qasm?`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, eb := postJob(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if eb.Kind != KindInvalidRequest {
				t.Fatalf("kind = %q (%+v)", eb.Kind, eb)
			}
		})
	}
}

func TestQubitCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxQubits: 4})
	resp, _, eb := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q}`, ghzQASM(5)))
	if resp.StatusCode != http.StatusBadRequest || eb.Kind != KindInvalidRequest {
		t.Fatalf("resp = %d %+v", resp.StatusCode, eb)
	}
}

func TestDDIOAndStatsOutputs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, view, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "output": "ddio", "wait": true}`, ghzQASM(3)))
	if resp.StatusCode != http.StatusOK || view.Result == nil {
		t.Fatalf("ddio job failed: %d %+v", resp.StatusCode, view)
	}
	if !strings.HasPrefix(view.Result.DDIO, "qmdd v1 qomega 3\n") {
		t.Fatalf("ddio output = %q", view.Result.DDIO)
	}
	if len(view.Result.Amplitudes) != 0 {
		t.Fatal("ddio output must not carry amplitudes")
	}

	resp, view, _ = postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "output": "stats", "wait": true}`, ghzQASM(3)))
	if resp.StatusCode != http.StatusOK || view.Result == nil || view.Result.Stats == nil {
		t.Fatalf("stats job failed: %d %+v", resp.StatusCode, view)
	}
	if view.Result.Stats.UniqueLookups == 0 {
		t.Fatalf("stats look empty: %+v", view.Result.Stats)
	}
}

func TestTimeoutJob(t *testing.T) {
	cfg := Config{Workers: 1}
	// The hook runs after the per-job deadline starts ticking; sleeping past
	// it guarantees RunCtx sees an expired context at gate 0, making the
	// outcome deterministic even though the circuit itself is instant.
	cfg.hookRunning = func(*Job) { time.Sleep(30 * time.Millisecond) }
	_, ts := newTestServer(t, cfg)
	body := fmt.Sprintf(`{"qasm": %q, "timeout_ms": 1, "wait": true}`, ghzQASM(4))
	resp, view, eb := postJob(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if view.Status != StatusCancelled || eb.Kind != KindTimeout {
		t.Fatalf("view = %+v, error = %+v; want cancelled/timeout", view, eb)
	}
}

func TestVersionHealthzMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var v struct {
		Name    string `json:"name"`
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	if r := getJSON(t, ts.URL+"/v1/version", &v); r.StatusCode != http.StatusOK {
		t.Fatalf("version status = %d", r.StatusCode)
	}
	if v.Name != "qmddd" || v.Go == "" {
		t.Fatalf("version = %+v", v)
	}

	var h struct {
		Status string `json:"status"`
	}
	if r := getJSON(t, ts.URL+"/healthz", &h); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", r.StatusCode)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz = %+v", h)
	}
	var rb struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if r := getJSON(t, ts.URL+"/readyz", &rb); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz status = %d", r.StatusCode)
	}
	if rb.Status != "ready" || rb.Workers != 2 {
		t.Fatalf("readyz = %+v", rb)
	}

	// Run one job so worker metrics are populated, then scrape.
	if resp, _, _ := postJob(t, ts.URL, fmt.Sprintf(`{"qasm": %q, "wait": true}`, ghzQASM(3))); resp.StatusCode != http.StatusOK {
		t.Fatalf("job = %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"qmddd_jobs_started_total 1",
		"qmddd_jobs_completed_total 1",
		"qmddd_queue_depth 0",
		"qmddd_worker_busy_seconds_total{worker=",
		"qmddd_worker_peak_nodes{worker=",
		"qmddd_worker_ct_load{worker=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
}
