package server

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/qcache"
	"repro/internal/ring"
)

// peerFanout bounds how many ring peers one lookup asks. The owners of a key
// barely move on membership change (bounded-movement hashing), so the first
// one or two owners cover both the steady state and the just-rebalanced
// state; asking everyone would turn each cold miss into a cluster broadcast.
const peerFanout = 2

// peerClient implements engine.Config.PeerLookup over the cache-peering
// endpoint: on a local miss it asks the ring owners of the key — the nodes a
// router was sending this fingerprint to before any topology change — for
// their stored envelope, and validates checksum and provenance stamp before
// the engine adopts the bytes. Peers are never trusted: a corrupt or
// mis-stamped envelope is dropped (counted as an error) and the job simply
// simulates locally.
type peerClient struct {
	self string
	ring *ring.Ring
	http *http.Client

	fetches atomic.Uint64 // GETs issued to peers
	misses  atomic.Uint64 // peer answered 404
	errors  atomic.Uint64 // network errors, non-200s, invalid envelopes
}

// newPeerClient builds the peering client, or returns nil when the
// membership leaves this node standalone (no peers beyond self).
func newPeerClient(self string, peers []string, timeout time.Duration) (*peerClient, error) {
	if len(peers) == 0 {
		return nil, nil
	}
	if self == "" {
		return nil, fmt.Errorf("server: peering needs -self (this node's advertised URL)")
	}
	members := make([]string, 0, len(peers)+1)
	seen := map[string]bool{}
	for _, p := range append(append([]string{}, peers...), self) {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" || seen[p] {
			continue
		}
		if u, err := url.Parse(p); err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("server: peer %q is not a base URL", p)
		}
		seen[p] = true
		members = append(members, p)
	}
	self = strings.TrimRight(strings.TrimSpace(self), "/")
	if len(members) < 2 {
		return nil, nil // membership is just this node
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &peerClient{
		self: self,
		ring: ring.New(members, ring.DefaultVNodes),
		http: &http.Client{Timeout: timeout},
	}, nil
}

// lookup fetches key from up to peerFanout ring owners (skipping self) and
// returns the first payload that survives envelope validation against the
// expected stamp.
func (pc *peerClient) lookup(key qcache.Key, stamp qcache.Stamp) ([]byte, bool) {
	asked := 0
	for _, owner := range pc.ring.Owners(key[:], pc.ring.Len()) {
		if owner == pc.self {
			continue
		}
		if asked++; asked > peerFanout {
			break
		}
		raw, err := pc.fetch(owner, key)
		if err != nil {
			if err == errPeerMiss {
				pc.misses.Add(1)
			} else {
				pc.errors.Add(1)
			}
			continue
		}
		payload, err := qcache.DecodeEntry(raw, stamp)
		if err != nil {
			// Bad bytes from a peer (corruption, tamper, version skew): refuse
			// and fall through to local simulation. Never adopt unverified data.
			pc.errors.Add(1)
			continue
		}
		return payload, true
	}
	return nil, false
}

var errPeerMiss = fmt.Errorf("peer cache miss")

func (pc *peerClient) fetch(base string, key qcache.Key) ([]byte, error) {
	pc.fetches.Add(1)
	resp, err := pc.http.Get(base + "/v1/cache/" + key.String())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, errPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: status %d", base, resp.StatusCode)
	}
	// An envelope is a result JSON plus a short header; 64 MiB is far above
	// any real entry and keeps a misbehaving peer from ballooning memory.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// renderMetrics appends the peer-client counters to the engine's exposition
// (the engine itself renders qmddd_cache_peer_hits_total — hits are an
// engine-side adoption event).
func (pc *peerClient) renderMetrics(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("qmddd_cache_peer_fetches_total", "Cache lookups issued to ring peers.", pc.fetches.Load())
	counter("qmddd_cache_peer_misses_total", "Peer cache lookups answered 404.", pc.misses.Load())
	counter("qmddd_cache_peer_errors_total", "Peer cache lookups that failed or returned invalid envelopes.", pc.errors.Load())
}
