// Package dense is the straightforward array-based simulator the paper uses
// as its point of departure ([8]–[10]): a flat complex128 state vector of
// length 2^n with in-place gate application. It exists as the ground-truth
// cross-validation oracle for the QMDD simulators (for small n) and as the
// "memory explosion" baseline of the evaluation narrative.
package dense

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// State is a dense n-qubit state vector. Qubit 0 is the most significant
// index bit, matching the QMDD level convention.
type State struct {
	N   int
	Amp []complex128
}

// New returns |0…0⟩ over n qubits.
func New(n int) *State {
	if n < 1 || n > 30 {
		panic("dense: unreasonable qubit count")
	}
	s := &State{N: n, Amp: make([]complex128, 1<<uint(n))}
	s.Amp[0] = 1
	return s
}

// FromVector wraps an amplitude slice (length must be a power of two).
func FromVector(amp []complex128) *State {
	n := 0
	for m := len(amp); m > 1; m >>= 1 {
		if m&1 == 1 {
			panic("dense: length not a power of two")
		}
		n++
	}
	cp := make([]complex128, len(amp))
	copy(cp, amp)
	return &State{N: n, Amp: cp}
}

// bitOf returns the index-bit position of a qubit.
func (s *State) bitOf(q int) uint { return uint(s.N - 1 - q) }

// Apply applies one gate to the state.
func (s *State) Apply(g circuit.Gate) error {
	u, err := gates.Numeric(g.Name, g.Params)
	if err != nil {
		return err
	}
	tb := s.bitOf(g.Target)
	masks := make([]struct {
		bit uint
		val uint64
	}, len(g.Controls))
	for i, c := range g.Controls {
		masks[i].bit = s.bitOf(c.Qubit)
		if !c.Neg {
			masks[i].val = 1
		}
	}
	dim := uint64(len(s.Amp))
	for i := uint64(0); i < dim; i++ {
		if i&(1<<tb) != 0 {
			continue // visit each amplitude pair once, from its 0-branch
		}
		active := true
		for _, m := range masks {
			if (i>>m.bit)&1 != m.val {
				active = false
				break
			}
		}
		if !active {
			continue
		}
		j := i | 1<<tb
		a0, a1 := s.Amp[i], s.Amp[j]
		s.Amp[i] = u[0][0]*a0 + u[0][1]*a1
		s.Amp[j] = u[1][0]*a0 + u[1][1]*a1
	}
	return nil
}

// Run applies a whole circuit.
func (s *State) Run(c *circuit.Circuit) error {
	if c.N != s.N {
		return fmt.Errorf("dense: circuit has %d qubits, state has %d", c.N, s.N)
	}
	for i, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			return fmt.Errorf("dense: gate %d (%s): %w", i, g, err)
		}
	}
	return nil
}

// Norm2 returns Σ|amplitude|².
func (s *State) Norm2() float64 {
	t := 0.0
	for _, a := range s.Amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return t
}

// Probability returns |⟨idx|ψ⟩|².
func (s *State) Probability(idx uint64) float64 {
	a := s.Amp[idx]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Distance returns the Euclidean distance ‖s − o‖₂.
func (s *State) Distance(o *State) float64 {
	if len(s.Amp) != len(o.Amp) {
		panic("dense: dimension mismatch")
	}
	t := 0.0
	for i := range s.Amp {
		d := s.Amp[i] - o.Amp[i]
		t += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(t)
}
