package dense

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
)

func TestNewIsGroundState(t *testing.T) {
	s := New(3)
	if s.Amp[0] != 1 {
		t.Fatal("initial amplitude not 1")
	}
	if s.Norm2() != 1 {
		t.Fatal("initial norm not 1")
	}
}

func TestHadamardOnEachQubit(t *testing.T) {
	// H on qubit q splits the amplitude between index bit n−1−q.
	for q := 0; q < 3; q++ {
		s := New(3)
		c := circuit.New("h", 3)
		c.H(q)
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		hi := uint64(1) << uint(3-1-q)
		want := complex(1/math.Sqrt2, 0)
		if cmplx.Abs(s.Amp[0]-want) > 1e-15 || cmplx.Abs(s.Amp[hi]-want) > 1e-15 {
			t.Fatalf("H on q%d gave %v", q, s.Amp)
		}
	}
}

func TestControlsRespectPolarity(t *testing.T) {
	// Negative-control X fires on |0⟩ controls only.
	c := circuit.New("ncx", 2)
	c.Append(circuit.Gate{Name: "x", Target: 1,
		Controls: []circuit.Control{{Qubit: 0, Neg: true}}})
	s := New(2)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	if s.Probability(1) < 0.999 { // |00⟩ → |01⟩
		t.Fatalf("neg-control X wrong: %v", s.Amp)
	}
	// Start from |10⟩: control is |1⟩, so nothing happens.
	s2 := New(2)
	s2.Amp[0], s2.Amp[2] = 0, 1
	if err := s2.Run(c); err != nil {
		t.Fatal(err)
	}
	if s2.Probability(2) < 0.999 {
		t.Fatalf("neg-control X fired on |1⟩ control: %v", s2.Amp)
	}
}

func TestUnitarityOnRandomish(t *testing.T) {
	c := circuit.New("mix", 3)
	c.H(0).T(1).CX(0, 2).Ry(0.7, 1).CCX(0, 1, 2).Rz(-1.1, 0).P(0.4, 2)
	s := New(3)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Norm2()-1) > 1e-12 {
		t.Fatalf("norm drifted: %v", s.Norm2())
	}
}

func TestFromVectorAndDistance(t *testing.T) {
	a := FromVector([]complex128{1, 0, 0, 0})
	b := FromVector([]complex128{0, 1, 0, 0})
	if d := a.Distance(b); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("distance = %v, want √2", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

func TestRunRejectsMismatch(t *testing.T) {
	s := New(2)
	if err := s.Run(circuit.New("c", 3)); err == nil {
		t.Fatal("qubit mismatch accepted")
	}
	bad := circuit.New("bad", 2)
	bad.Append(circuit.Gate{Name: "frob", Target: 0})
	if err := s.Run(bad); err == nil {
		t.Fatal("unknown gate accepted")
	}
}

func TestFromVectorValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two length accepted")
		}
	}()
	FromVector(make([]complex128, 3))
}
