package synth

import (
	"math/rand"
	"testing"

	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gates"
)

// buildUnitaryD computes the exact dense matrix of a circuit via the
// algebraic QMDD and converts the entries to D[ω].
func buildUnitaryD(t *testing.T, c *circuit.Circuit) ([][]alg.D, *core.Manager[alg.Q], core.Edge[alg.Q]) {
	t.Helper()
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	u := m.Identity(c.N)
	for _, g := range c.Gates {
		ex, ok := gates.Exact(g.Name)
		if !ok {
			t.Fatalf("gate %q not exact", g.Name)
		}
		ctrls := make([]gates.Control, len(g.Controls))
		for i, ct := range g.Controls {
			ctrls[i] = gates.Control{Qubit: ct.Qubit, Neg: ct.Neg}
		}
		dd := gates.BuildDD(m, c.N, gates.BaseFor(m, ex), g.Target, ctrls)
		u = m.Mul(dd, u)
	}
	rows := m.ToMatrix(u, c.N)
	out := make([][]alg.D, len(rows))
	for i, row := range rows {
		out[i] = make([]alg.D, len(row))
		for j, q := range row {
			d, ok := q.InD()
			if !ok {
				t.Fatalf("entry (%d,%d) = %v left D[ω]", i, j, q)
			}
			out[i][j] = d
		}
	}
	return out, m, u
}

func randomExactCircuit(r *rand.Rand, n, count int) *circuit.Circuit {
	c := circuit.New("rand", n)
	names := []string{"h", "t", "s", "x", "z", "tdg", "sdg"}
	for i := 0; i < count; i++ {
		switch r.Intn(3) {
		case 0:
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			c.CX(a, b)
		default:
			c.Append(circuit.Gate{Name: names[r.Intn(len(names))], Target: r.Intn(n)})
		}
	}
	return c
}

// TestMultiQubitSynthesisRoundTrip: synthesize random exact unitaries and
// verify the result reproduces the matrix exactly (identical QMDD roots,
// global phase included).
func TestMultiQubitSynthesisRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(110))
	for trial := 0; trial < 10; trial++ {
		n := 2
		if trial >= 5 {
			n = 3
		}
		orig := randomExactCircuit(r, n, 12)
		mat, m, uOrig := buildUnitaryD(t, orig)
		synth, err := ExactSynthesizeMultiQubit(mat, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, _, uSynth := buildUnitaryD(t, synth)
		// Compare within the original manager by rebuilding.
		mat2, _, _ := buildUnitaryD(t, synth)
		for i := range mat {
			for j := range mat[i] {
				if !mat[i][j].Equal(mat2[i][j]) {
					t.Fatalf("trial %d: entry (%d,%d) mismatch: %v vs %v",
						trial, i, j, mat[i][j], mat2[i][j])
				}
			}
		}
		_ = m
		_ = uOrig
		_ = uSynth
	}
}

// TestMultiQubitSynthesisKnownGates: CNOT, Toffoli, controlled-H and a
// Bell-basis change synthesize exactly.
func TestMultiQubitSynthesisKnownGates(t *testing.T) {
	builders := map[string]*circuit.Circuit{}
	cnot := circuit.New("cnot", 2)
	cnot.CX(0, 1)
	builders["cnot"] = cnot
	toff := circuit.New("toffoli", 3)
	toff.CCX(0, 1, 2)
	builders["toffoli"] = toff
	bell := circuit.New("bellbasis", 2)
	bell.H(0).CX(0, 1)
	builders["bellbasis"] = bell
	ch := circuit.New("ch", 2)
	ch.Append(circuit.Gate{Name: "h", Target: 1, Controls: []circuit.Control{{Qubit: 0}}})
	builders["ch"] = ch

	for name, c := range builders {
		mat, _, _ := buildUnitaryD(t, c)
		got, err := ExactSynthesizeMultiQubit(mat, c.N)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mat2, _, _ := buildUnitaryD(t, got)
		for i := range mat {
			for j := range mat[i] {
				if !mat[i][j].Equal(mat2[i][j]) {
					t.Fatalf("%s: entry (%d,%d) mismatch", name, i, j)
				}
			}
		}
	}
}

// TestMultiQubitSynthesisDiagonalPhases: a diagonal of assorted ω powers.
func TestMultiQubitSynthesisDiagonalPhases(t *testing.T) {
	n := 2
	mat := [][]alg.D{
		{alg.DOmegaPow(1), alg.DZero, alg.DZero, alg.DZero},
		{alg.DZero, alg.DOmegaPow(3), alg.DZero, alg.DZero},
		{alg.DZero, alg.DZero, alg.DOmegaPow(6), alg.DZero},
		{alg.DZero, alg.DZero, alg.DZero, alg.DOne},
	}
	c, err := ExactSynthesizeMultiQubit(mat, n)
	if err != nil {
		t.Fatal(err)
	}
	mat2, _, _ := buildUnitaryD(t, c)
	for i := range mat {
		for j := range mat[i] {
			if !mat[i][j].Equal(mat2[i][j]) {
				t.Fatalf("diagonal entry (%d,%d) mismatch: %v vs %v", i, j, mat[i][j], mat2[i][j])
			}
		}
	}
}

// TestMultiQubitSynthesisRejectsBadInput: shape and unitarity validation.
func TestMultiQubitSynthesisRejectsBadInput(t *testing.T) {
	if _, err := ExactSynthesizeMultiQubit(make([][]alg.D, 3), 2); err == nil {
		t.Fatal("bad dimension accepted")
	}
	nonUnitary := [][]alg.D{
		{alg.DOne, alg.DOne},
		{alg.DZero, alg.DOne},
	}
	if _, err := ExactSynthesizeMultiQubit(nonUnitary, 1); err == nil {
		t.Fatal("non-unitary accepted")
	}
}
