package synth

import (
	"fmt"

	"repro/internal/alg"
	"repro/internal/circuit"
)

// Multi-qubit exact synthesis, after Giles–Selinger [8] ("Exact synthesis
// of multiqubit Clifford+T circuits") — the theorem behind the paper's ring
// choice: an n-qubit unitary is exactly representable by Clifford+T gates
// iff its entries lie in D[ω]. The constructive direction implemented here
// reduces the matrix column by column to the identity with *two-level*
// operations over D[ω]:
//
//   - ω-phase corrections on a single basis state (two-level T-type),
//   - the balanced two-level Hadamard on a pair of basis states, applied
//     when the pair's numerators agree modulo √2 so the smallest
//     denominator exponent strictly drops,
//   - basis-state transpositions (two-level X-type).
//
// Each two-level operation is then lowered to multi-controlled single-qubit
// gates (with positive and negative controls), which the QMDD simulator
// executes natively. The overall result: circuit C and a residual global
// phase ω^p with U = ω^p · matrix(C).

// twoLevel is one primitive operation of the reduction, acting on basis
// states i (and j where applicable).
type twoLevel struct {
	kind byte // 'X' transposition, 'H' balanced Hadamard pair, 'P' phase ω^pow
	i, j uint64
	pow  int // for 'P'
}

// ExactSynthesizeMultiQubit synthesizes the 2^n × 2^n unitary u (row-major
// entries in D[ω]) into a circuit over n qubits with u = matrix(circuit)
// *exactly* — including the global phase, since two-level phase corrections
// can address every diagonal entry individually. The matrix must be exactly
// unitary; otherwise an error is returned.
func ExactSynthesizeMultiQubit(u [][]alg.D, n int) (*circuit.Circuit, error) {
	dim := uint64(1) << uint(n)
	if uint64(len(u)) != dim {
		return nil, fmt.Errorf("synth: matrix dimension %d does not match %d qubits", len(u), n)
	}
	for _, row := range u {
		if uint64(len(row)) != dim {
			return nil, fmt.Errorf("synth: matrix is not square")
		}
	}
	// Work on a copy.
	m := make([][]alg.D, dim)
	for i := range m {
		m[i] = append([]alg.D{}, u[i]...)
	}
	if !isUnitaryD(m) {
		return nil, fmt.Errorf("synth: matrix is not exactly unitary over D[ω]")
	}

	// ops applied on the LEFT, in order, reducing m towards the identity.
	var ops []twoLevel
	apply := func(op twoLevel) {
		ops = append(ops, op)
		applyTwoLevel(m, op)
	}

	for col := uint64(0); col < dim; col++ {
		if err := reduceColumn(m, col, dim, apply); err != nil {
			return nil, err
		}
	}
	// m is now diagonal with ω-power entries; clear every phase.
	for i := uint64(0); i < dim; i++ {
		p, ok := omegaPower(m[i][i])
		if !ok {
			return nil, fmt.Errorf("synth: residual diagonal is not an ω power (internal error)")
		}
		if p != 0 {
			apply(twoLevel{kind: 'P', i: i, pow: (8 - p) % 8})
		}
	}

	// ops… · u = I  ⇒  u = op₁† · … · opₘ† (phase ops invert by negating the
	// power; X and H two-level ops are self-inverse).
	c := circuit.New("exact-synth", n)
	for k := len(ops) - 1; k >= 0; k-- {
		op := ops[k]
		if op.kind == 'P' {
			op.pow = (8 - op.pow) % 8
		}
		if err := lowerTwoLevel(c, op, n); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// reduceColumn drives column col of m to the basis vector e_col.
func reduceColumn(m [][]alg.D, col, dim uint64, apply func(twoLevel)) error {
	for guard := 0; ; guard++ {
		if guard > 4096 {
			return fmt.Errorf("synth: column %d reduction did not terminate", col)
		}
		// Find the maximum denominator exponent among rows ≥ col.
		k := 0
		for i := col; i < dim; i++ {
			if s := sde(m[i][col]); s > k {
				k = s
			}
		}
		if k == 0 {
			break
		}
		// Collect the rows at the maximum exponent and pair them off.
		var rows []uint64
		for i := col; i < dim; i++ {
			if !m[i][col].IsZero() && sde(m[i][col]) == k {
				rows = append(rows, i)
			}
		}
		if len(rows)%2 != 0 {
			return fmt.Errorf("synth: odd number of max-exponent entries (matrix not unitary over D[ω]?)")
		}
		progressed := false
		used := make([]bool, len(rows))
		for a := 0; a < len(rows); a++ {
			if used[a] {
				continue
			}
			for b := a + 1; b < len(rows); b++ {
				if used[b] {
					continue
				}
				if p, ok := matchingPhase(m[rows[a]][col], m[rows[b]][col]); ok {
					if p != 0 {
						apply(twoLevel{kind: 'P', i: rows[b], pow: p})
					}
					apply(twoLevel{kind: 'H', i: rows[a], j: rows[b]})
					used[a], used[b] = true, true
					progressed = true
					break
				}
			}
		}
		if !progressed {
			return fmt.Errorf("synth: no reducible pair at exponent %d (matrix not unitary over D[ω]?)", k)
		}
	}
	// Entries are now in Z[ω]; unitarity leaves exactly one nonzero ω-power.
	pivot := col
	found := false
	for i := col; i < dim; i++ {
		if !m[i][col].IsZero() {
			if found {
				return fmt.Errorf("synth: multiple integer entries after reduction")
			}
			pivot, found = i, true
		}
	}
	if !found {
		return fmt.Errorf("synth: zero column (matrix not unitary)")
	}
	if pivot != col {
		apply(twoLevel{kind: 'X', i: col, j: pivot})
	}
	if p, ok := omegaPower(m[col][col]); ok {
		if p != 0 {
			apply(twoLevel{kind: 'P', i: col, pow: (8 - p) % 8})
		}
	} else {
		return fmt.Errorf("synth: pivot is not an ω power")
	}
	return nil
}

// matchingPhase finds p such that (x + ω^p·y)/√2 stays in the ring at a
// strictly smaller denominator exponent — the pairing condition of the
// Giles–Selinger reduction. x and y must share the same (maximal) sde.
func matchingPhase(x, y alg.D) (int, bool) {
	k := sde(x)
	for p := 0; p < 8; p++ {
		y2 := alg.DOmegaPow(p).Mul(y)
		sum := x.Add(y2).Mul(alg.DInvSqrt2)
		diff := x.Sub(y2).Mul(alg.DInvSqrt2)
		if sde(sum) < k && sde(diff) < k {
			return p, true
		}
	}
	return 0, false
}

// applyTwoLevel performs the operation on the matrix rows (left
// multiplication).
func applyTwoLevel(m [][]alg.D, op twoLevel) {
	switch op.kind {
	case 'X':
		m[op.i], m[op.j] = m[op.j], m[op.i]
	case 'P':
		w := alg.DOmegaPow(op.pow)
		for c := range m[op.i] {
			m[op.i][c] = w.Mul(m[op.i][c])
		}
	case 'H':
		for c := range m[op.i] {
			a, b := m[op.i][c], m[op.j][c]
			m[op.i][c] = a.Add(b).Mul(alg.DInvSqrt2)
			m[op.j][c] = a.Sub(b).Mul(alg.DInvSqrt2)
		}
	}
}

// omegaPower recognizes ω^p (p ∈ 0..7) and 0 is rejected.
func omegaPower(x alg.D) (int, bool) {
	for p := 0; p < 8; p++ {
		if x.Equal(alg.DOmegaPow(p)) {
			return p, true
		}
	}
	return 0, false
}

// lowerTwoLevel compiles a two-level operation on basis states into
// multi-controlled gates appended to c. Basis states that differ in several
// bits are first aligned with multi-controlled X "Gray steps".
func lowerTwoLevel(c *circuit.Circuit, op twoLevel, n int) error {
	switch op.kind {
	case 'P':
		// Phase ω^pow on basis state |i⟩: a T^pow fully controlled on the
		// bit pattern of i. Realized on the last qubit: T-type gates act on
		// |1⟩; when the last bit of i is 0, use negative-control phase via
		// conjugation with X.
		return lowerPhase(c, op.i, op.pow, n)
	case 'X', 'H':
		i, j := op.i, op.j
		if i == j {
			return fmt.Errorf("synth: degenerate two-level op")
		}
		// Align: make i and j differ in exactly one bit using MCX steps.
		var undo []circuit.Gate
		for popcount(i^j) > 1 {
			// Flip one differing bit of j (other than the last differing
			// bit) conditioned on the rest of j's pattern.
			d := i ^ j
			flip := lowestBit(d)
			// Keep one bit as the final target: choose flip as a non-final
			// differing bit when more than one remains.
			g := mcxGate(j, flip, n)
			c.Append(g)
			undo = append(undo, g)
			j ^= flip
		}
		d := i ^ j
		target := bitToQubit(d, n)
		// Controls: the shared bits of i and j.
		ctrls := controlsFor(i, d, n)
		var name string
		switch op.kind {
		case 'X':
			name = "x"
		case 'H':
			// The two-level balanced Hadamard sends |i⟩ → (|i⟩+|j⟩)/√2 with
			// i the state whose target bit … we must orient it: our matrix
			// op maps row i ← (i+j)/√2. With i < j in basis order and the
			// target bit of i being 0, the controlled H does exactly that.
			name = "h"
			if i&d != 0 {
				// i has the target bit set: conjugate with X to flip roles.
				xg := circuit.Gate{Name: "x", Target: target, Controls: ctrls}
				c.Append(xg)
				undo = append(undo, xg)
			}
		}
		c.Append(circuit.Gate{Name: name, Target: target, Controls: ctrls})
		// Undo the alignment (and role flip) in reverse order.
		for k := len(undo) - 1; k >= 0; k-- {
			c.Append(undo[k])
		}
		return nil
	}
	return fmt.Errorf("synth: unknown two-level op %q", op.kind)
}

// lowerPhase emits ω^pow on the single basis state |i⟩.
func lowerPhase(c *circuit.Circuit, i uint64, pow int, n int) error {
	pow = ((pow % 8) + 8) % 8
	if pow == 0 {
		return nil
	}
	// Act on the last qubit; controls encode the other n−1 bits of i.
	target := n - 1
	var ctrls []circuit.Control
	for q := 0; q < n-1; q++ {
		bit := (i >> uint(n-1-q)) & 1
		ctrls = append(ctrls, circuit.Control{Qubit: q, Neg: bit == 0})
	}
	lastSet := i&1 == 1
	if !lastSet {
		// Conjugate with a controlled X so the phase lands on the |…0⟩ row.
		c.Append(circuit.Gate{Name: "x", Target: target, Controls: ctrls})
	}
	for _, g := range phaseGates(pow) {
		c.Append(circuit.Gate{Name: g, Target: target, Controls: ctrls})
	}
	if !lastSet {
		c.Append(circuit.Gate{Name: "x", Target: target, Controls: ctrls})
	}
	return nil
}

// phaseGates decomposes ω^pow (as a phase on |1⟩) into named gates.
func phaseGates(pow int) []string {
	switch pow {
	case 1:
		return []string{"t"}
	case 2:
		return []string{"s"}
	case 3:
		return []string{"s", "t"}
	case 4:
		return []string{"z"}
	case 5:
		return []string{"z", "t"}
	case 6:
		return []string{"sdg"}
	case 7:
		return []string{"tdg"}
	}
	return nil
}

// mcxGate builds an X on the qubit of bit `flip`, controlled on every other
// bit of pattern (positively or negatively according to the pattern).
func mcxGate(pattern, flip uint64, n int) circuit.Gate {
	target := bitToQubit(flip, n)
	return circuit.Gate{Name: "x", Target: target, Controls: controlsFor(pattern, flip, n)}
}

// controlsFor returns control lines matching `pattern` on every qubit
// except the one addressed by bit mask `skip`.
func controlsFor(pattern, skip uint64, n int) []circuit.Control {
	var out []circuit.Control
	for q := 0; q < n; q++ {
		bit := uint64(1) << uint(n-1-q)
		if bit == skip {
			continue
		}
		out = append(out, circuit.Control{Qubit: q, Neg: pattern&bit == 0})
	}
	return out
}

func bitToQubit(bit uint64, n int) int {
	for q := 0; q < n; q++ {
		if bit == uint64(1)<<uint(n-1-q) {
			return q
		}
	}
	panic("synth: not a single bit")
}

func lowestBit(x uint64) uint64 { return x & (-x) }

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// isUnitaryD checks U·U† = I exactly.
func isUnitaryD(m [][]alg.D) bool {
	dim := len(m)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			s := alg.DZero
			for k := 0; k < dim; k++ {
				s = s.Add(m[i][k].Mul(m[j][k].Conj()))
			}
			if i == j && !s.IsOne() {
				return false
			}
			if i != j && !s.IsZero() {
				return false
			}
		}
	}
	return true
}
