package synth_test

import (
	"fmt"

	"repro/internal/alg"
	"repro/internal/su2"
	"repro/internal/synth"
)

// Approximate synthesis (Solovay–Kitaev): arbitrary rotations become
// Clifford+T words whose error shrinks with recursion depth while the word
// length grows — the trade the paper's GSE benchmark is built on.
func ExampleSynth_Approx() {
	s := synth.New(10)
	target := su2.RotZ(0.7)
	w0 := s.Approx(target, 0)
	w2 := s.Approx(target, 2)
	fmt.Println("depth 0 error < 0.2:", w0.Quat().Dist(target) < 0.2)
	fmt.Println("depth 2 improves:", w2.Quat().Dist(target) <= w0.Quat().Dist(target))
	fmt.Println("depth 2 is longer:", len(w2) > len(w0))
	// Output:
	// depth 0 error < 0.2: true
	// depth 2 improves: true
	// depth 2 is longer: true
}

// Exact synthesis: a matrix over D[ω] is realized with NO approximation.
func ExampleExactSynthesize() {
	// S = diag(1, i) — exactly representable.
	s := synth.Unitary2{{alg.DOne, alg.DZero}, {alg.DZero, alg.DI}}
	w, phase, err := synth.ExactSynthesize(s)
	if err != nil {
		panic(err)
	}
	m := w.ExactMatrix()
	ph := alg.DOmegaPow(phase)
	exact := m[0][0].Mul(ph).Equal(s[0][0]) && m[1][1].Mul(ph).Equal(s[1][1])
	fmt.Println("exactly reproduced:", exact)
	// Output:
	// exactly reproduced: true
}

// Word simplification cancels the seams Solovay–Kitaev concatenation leaves.
func ExampleWord_Simplify() {
	fmt.Println(string(synth.Word("HHTTTTTTTTH").Simplify()))
	fmt.Println(string(synth.Word("THHT").Simplify()))
	// Output:
	// H
	// TT
}
