package synth

import (
	"math/rand"
	"testing"

	"repro/internal/alg"
	"repro/internal/su2"
)

func TestExactMatrices(t *testing.T) {
	if !exactH.IsUnitary() || !exactT.IsUnitary() {
		t.Fatal("gate matrices not unitary")
	}
	// H² = I, T⁸ = I exactly.
	if !exactH.Mul(exactH).Equal(exactI) {
		t.Fatal("H² ≠ I")
	}
	u := exactI
	for i := 0; i < 8; i++ {
		u = exactT.Mul(u)
	}
	if !u.Equal(exactI) {
		t.Fatal("T⁸ ≠ I")
	}
}

func TestWordExactMatrixMatchesQuat(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	letters := []byte{'H', 'T'}
	for trial := 0; trial < 40; trial++ {
		w := make(Word, r.Intn(20)+1)
		for i := range w {
			w[i] = letters[r.Intn(2)]
		}
		m := w.ExactMatrix()
		if !m.IsUnitary() {
			t.Fatalf("%s matrix not unitary", w)
		}
		var cm [2][2]complex128
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				cm[i][j] = m[i][j].Complex128()
			}
		}
		// Projective comparison against the quaternion path.
		got := su2.FromU2(cm)
		if d := got.Dist(w.Quat()); d > 1e-7 {
			t.Fatalf("%s exact/quat mismatch: %v", w, d)
		}
	}
}

func TestExactSynthesizeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	letters := []byte{'H', 'T'}
	for trial := 0; trial < 40; trial++ {
		w := make(Word, r.Intn(30)+1)
		for i := range w {
			w[i] = letters[r.Intn(2)]
		}
		target := w.ExactMatrix()
		got, phase, err := ExactSynthesize(target)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		// word-matrix · ω^phase must equal the target exactly.
		m := got.ExactMatrix()
		ph := alg.DOmegaPow(phase)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if !m[i][j].Mul(ph).Equal(target[i][j]) {
					t.Fatalf("%s: synthesized %s (phase %d) does not reproduce the target",
						w, got, phase)
				}
			}
		}
	}
}

func TestExactSynthesizeKnownGates(t *testing.T) {
	// S = T², Z = T⁴, X = H·T⁴·H (all exact identities).
	s := Unitary2{{alg.DOne, alg.DZero}, {alg.DZero, alg.DI}}
	x := Unitary2{{alg.DZero, alg.DOne}, {alg.DOne, alg.DZero}}
	for name, u := range map[string]Unitary2{"S": s, "X": x, "H": exactH, "I": exactI} {
		w, phase, err := ExactSynthesize(u)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := w.ExactMatrix()
		ph := alg.DOmegaPow(phase)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if !m[i][j].Mul(ph).Equal(u[i][j]) {
					t.Fatalf("%s: wrong synthesis", name)
				}
			}
		}
	}
}

func TestExactSynthesizeRejectsNonUnitary(t *testing.T) {
	bad := Unitary2{{alg.DOne, alg.DOne}, {alg.DZero, alg.DOne}}
	if _, _, err := ExactSynthesize(bad); err == nil {
		t.Fatal("non-unitary matrix accepted")
	}
}
