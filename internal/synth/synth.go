// Package synth compiles arbitrary single-qubit rotations into Clifford+T
// gate sequences. It stands in for the Quipper pipeline the paper uses to
// prepare the GSE benchmark: a breadth-first ε₀-net over words in ⟨H, T⟩
// provides base approximations, and the Solovay–Kitaev recursion (balanced
// group commutators, Dawson–Nielsen construction) drives the error down at
// the cost of rapidly growing sequence length — producing exactly the long
// Clifford+T streams whose D[ω] coefficients grow in bit width.
package synth

import (
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/su2"
)

// Word is a Clifford+T sequence over the generators H and T, applied
// left-to-right (circuit order). Its unitary is the right-to-left matrix
// product.
type Word []byte

// Quat returns the projective unitary of the word.
func (w Word) Quat() su2.Quat {
	q := su2.Identity
	for _, g := range w {
		// Circuit order: each successive gate multiplies from the left.
		q = gen(g).Mul(q)
	}
	return q.Normalize()
}

// gen returns the generator quaternion.
func gen(g byte) su2.Quat {
	switch g {
	case 'H':
		s := 1 / math.Sqrt2
		return su2.Quat{W: 0, X: -s, Y: 0, Z: -s}
	case 'T':
		return su2.RotZ(math.Pi / 4)
	}
	panic("synth: unknown generator")
}

// Dagger returns the inverse word (H is self-inverse, T⁻¹ = T⁷).
func (w Word) Dagger() Word {
	var out Word
	for i := len(w) - 1; i >= 0; i-- {
		switch w[i] {
		case 'H':
			out = append(out, 'H')
		case 'T':
			out = append(out, 'T', 'T', 'T', 'T', 'T', 'T', 'T')
		}
	}
	return out
}

// Gates lowers the word to circuit gates on the given qubit, compressing
// runs of T into the named phase gates (T, S, Z and their adjoints).
func (w Word) Gates(target int) []circuit.Gate {
	var out []circuit.Gate
	emit := func(name string) {
		out = append(out, circuit.Gate{Name: name, Target: target})
	}
	i := 0
	for i < len(w) {
		if w[i] == 'H' {
			emit("h")
			i++
			continue
		}
		run := 0
		for i < len(w) && w[i] == 'T' {
			run++
			i++
		}
		switch run % 8 {
		case 1:
			emit("t")
		case 2:
			emit("s")
		case 3:
			emit("s")
			emit("t")
		case 4:
			emit("z")
		case 5:
			emit("z")
			emit("t")
		case 6:
			emit("sdg")
		case 7:
			emit("tdg")
		}
	}
	return out
}

// Simplify cancels adjacent H pairs and reduces T runs modulo 8, iterating
// to a fixed point. The result is the same projective unitary with a
// shorter (never longer) word — useful after Solovay–Kitaev, whose
// concatenations produce many trivial cancellations at the seams.
func (w Word) Simplify() Word {
	cur := w
	for {
		var out Word
		i := 0
		for i < len(cur) {
			switch {
			case cur[i] == 'H':
				run := 0
				for i < len(cur) && cur[i] == 'H' {
					run++
					i++
				}
				if run%2 == 1 {
					out = append(out, 'H')
				}
			default: // 'T'
				run := 0
				for i < len(cur) && cur[i] == 'T' {
					run++
					i++
				}
				for j := 0; j < run%8; j++ {
					out = append(out, 'T')
				}
			}
		}
		if len(out) == len(cur) {
			return out
		}
		cur = out
	}
}

// TCount returns the number of T/T† gates after run compression (a standard
// cost metric for fault-tolerant circuits).
func (w Word) TCount() int {
	t := 0
	for _, g := range w.Gates(0) {
		if g.Name == "t" || g.Name == "tdg" {
			t++
		}
	}
	return t
}

type entry struct {
	q su2.Quat
	w Word
}

// Synth holds the base ε₀-net and answers approximation queries.
type Synth struct {
	net []entry
}

// fingerprint quantizes a canonical quaternion for deduplication.
func fingerprint(q su2.Quat) [4]int64 {
	c := q.Canonical()
	const scale = 1e9
	return [4]int64{
		int64(math.Round(c.W * scale)),
		int64(math.Round(c.X * scale)),
		int64(math.Round(c.Y * scale)),
		int64(math.Round(c.Z * scale)),
	}
}

// New builds the base net from all distinct ⟨H, T⟩ group elements reachable
// by words of at most maxLen generators (maxLen ≈ 10–16 is practical; the
// net size grows roughly exponentially in maxLen).
func New(maxLen int) *Synth {
	s := &Synth{}
	seen := map[[4]int64]struct{}{}
	type node struct {
		q su2.Quat
		w Word
	}
	frontier := []node{{q: su2.Identity, w: Word{}}}
	add := func(n node) bool {
		fp := fingerprint(n.q)
		if _, ok := seen[fp]; ok {
			return false
		}
		seen[fp] = struct{}{}
		s.net = append(s.net, entry{q: n.q, w: n.w})
		return true
	}
	add(frontier[0])
	for depth := 0; depth < maxLen; depth++ {
		var next []node
		for _, f := range frontier {
			for _, g := range []byte{'H', 'T'} {
				w := make(Word, len(f.w), len(f.w)+1)
				copy(w, f.w)
				w = append(w, g)
				n := node{q: gen(g).Mul(f.q).Normalize(), w: w}
				if add(n) {
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	// Deterministic order (useful for tests and reproducibility).
	sort.Slice(s.net, func(i, j int) bool {
		if len(s.net[i].w) != len(s.net[j].w) {
			return len(s.net[i].w) < len(s.net[j].w)
		}
		return string(s.net[i].w) < string(s.net[j].w)
	})
	return s
}

// NetSize returns the number of distinct base group elements.
func (s *Synth) NetSize() int { return len(s.net) }

// BaseApprox returns the net element closest to u.
func (s *Synth) BaseApprox(u su2.Quat) Word {
	best, bestDot := 0, -1.0
	for i := range s.net {
		if d := math.Abs(s.net[i].q.Dot(u)); d > bestDot {
			best, bestDot = i, d
		}
	}
	w := make(Word, len(s.net[best].w))
	copy(w, s.net[best].w)
	return w
}

// Approx runs the Solovay–Kitaev recursion to the given depth (depth 0 is
// the base net lookup). Typical error per depth: ε_{k+1} ≈ c·ε_k^{3/2}.
func (s *Synth) Approx(u su2.Quat, depth int) Word {
	if depth <= 0 {
		return s.BaseApprox(u)
	}
	wApprox := s.Approx(u, depth-1)
	uw := wApprox.Quat()
	// Δ = U · W†: the residual rotation still to be realized.
	delta := u.Mul(uw.Conj()).Normalize()
	v, w2 := commutatorFactors(delta)
	va := s.Approx(v, depth-1)
	wa := s.Approx(w2, depth-1)
	// Δ ≈ V W V† W†, so U ≈ V W V† W† · wApprox. In circuit (left-to-right)
	// order the first-applied factor comes first.
	out := make(Word, 0, len(wApprox)+2*len(va)+2*len(wa)+14)
	out = append(out, wApprox...)
	out = append(out, wa.Dagger()...)
	out = append(out, va.Dagger()...)
	out = append(out, wa...)
	out = append(out, va...)
	return out.Simplify()
}

// commutatorFactors implements the balanced group-commutator construction of
// Dawson–Nielsen: returns V, W with V·W·V†·W† = delta (up to numerical
// precision), where V and W are rotations by equal angles about axes
// conjugated from x̂ and ŷ.
func commutatorFactors(delta su2.Quat) (v, w su2.Quat) {
	theta := delta.Angle()
	if theta < 1e-14 {
		return su2.Identity, su2.Identity
	}
	phi := solveCommutatorAngle(theta)
	v0 := su2.RotX(phi)
	w0 := su2.RotY(phi)
	k := v0.Mul(w0).Mul(v0.Conj()).Mul(w0.Conj()).Normalize()
	// Align the commutator's axis with delta's axis.
	sAlign := su2.AlignAxes(k.Axis(), delta.Axis())
	v = sAlign.Mul(v0).Mul(sAlign.Conj()).Normalize()
	w = sAlign.Mul(w0).Mul(sAlign.Conj()).Normalize()
	// Axis alignment fixes the rotation axis but may land on the inverse
	// rotation sense; [W, V] = [V, W]⁻¹, so swapping the factors flips it.
	c1 := v.Mul(w).Mul(v.Conj()).Mul(w.Conj()).Normalize()
	c2 := w.Mul(v).Mul(w.Conj()).Mul(v.Conj()).Normalize()
	if c2.Dist(delta) < c1.Dist(delta) {
		v, w = w, v
	}
	return v, w
}

// solveCommutatorAngle finds φ with
// sin(θ/2) = 2 sin²(φ/2) √(1 − sin⁴(φ/2)) by bisection.
func solveCommutatorAngle(theta float64) float64 {
	target := math.Sin(theta / 2)
	f := func(phi float64) float64 {
		s2 := math.Sin(phi / 2)
		return 2 * s2 * s2 * math.Sqrt(1-s2*s2*s2*s2)
	}
	lo, hi := 0.0, math.Pi
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RzGates approximates Rz(theta) on the given qubit to the given SK depth
// and returns the Clifford+T gate sequence together with the projective
// approximation error.
func (s *Synth) RzGates(theta float64, qubit, depth int) ([]circuit.Gate, float64) {
	target := su2.RotZ(theta)
	w := s.Approx(target, depth)
	return w.Gates(qubit), w.Quat().Dist(target)
}

// RyGates approximates Ry(theta).
func (s *Synth) RyGates(theta float64, qubit, depth int) ([]circuit.Gate, float64) {
	target := su2.RotY(theta)
	w := s.Approx(target, depth)
	return w.Gates(qubit), w.Quat().Dist(target)
}
