package synth

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dense"
	"repro/internal/su2"
)

func TestWordQuatMatchesGeneratorProducts(t *testing.T) {
	// H² = I, T⁸ = I (projectively).
	if d := Word("HH").Quat().Dist(su2.Identity); d > 1e-7 {
		t.Fatalf("H² ≠ I: %v", d)
	}
	if d := Word("TTTTTTTT").Quat().Dist(su2.Identity); d > 1e-7 {
		t.Fatalf("T⁸ ≠ I: %v", d)
	}
	// HTH ≠ TH T etc. — just check non-triviality.
	if d := Word("HT").Quat().Dist(su2.Identity); d < 0.1 {
		t.Fatalf("HT suspiciously close to identity: %v", d)
	}
}

func TestWordDagger(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	letters := []byte{'H', 'T'}
	for i := 0; i < 50; i++ {
		w := make(Word, r.Intn(12)+1)
		for j := range w {
			w[j] = letters[r.Intn(2)]
		}
		prod := w.Quat().Mul(w.Dagger().Quat())
		if d := prod.Dist(su2.Identity); d > 1e-7 {
			t.Fatalf("w·w† ≠ I for %s: %v", w, d)
		}
	}
}

func TestWordGatesMatchQuat(t *testing.T) {
	// Lowering to named gates and simulating densely reproduces the word's
	// unitary up to global phase.
	words := []Word{Word("HT"), Word("TTH"), Word("HTTTTTH"), Word("TTTTTTTH"), Word("HTTHTTTHH")}
	for _, w := range words {
		gatesList := w.Gates(0)
		c := circuit.New("w", 1)
		for _, g := range gatesList {
			c.Append(g)
		}
		// Apply to |0⟩ and |1⟩ to recover the full matrix columns.
		var m [2][2]complex128
		for col := 0; col < 2; col++ {
			s := dense.New(1)
			if col == 1 {
				s.Amp[0], s.Amp[1] = 0, 1
			}
			if err := s.Run(c); err != nil {
				t.Fatal(err)
			}
			m[0][col], m[1][col] = s.Amp[0], s.Amp[1]
		}
		if d := su2.FromU2(m).Dist(w.Quat()); d > 1e-7 {
			t.Fatalf("gate lowering of %s distance %v", w, d)
		}
	}
}

func TestNetGrowsAndDeduplicates(t *testing.T) {
	s4 := New(4)
	s8 := New(8)
	if s4.NetSize() >= s8.NetSize() {
		t.Fatalf("net did not grow: %d vs %d", s4.NetSize(), s8.NetSize())
	}
	// H² = I must have been deduplicated: net size is far below 2^maxLen
	// would not hold for tiny maxLen, but duplicates like HH ≡ "" must not
	// appear. Count identity entries:
	ids := 0
	for _, e := range s8.net {
		if e.q.Dist(su2.Identity) < 1e-9 {
			ids++
		}
	}
	if ids != 1 {
		t.Fatalf("net contains %d identity elements, want 1", ids)
	}
}

func TestBaseApproxQuality(t *testing.T) {
	s := New(12)
	r := rand.New(rand.NewSource(91))
	worst := 0.0
	for i := 0; i < 40; i++ {
		theta := r.Float64()*2*math.Pi - math.Pi
		target := su2.RotZ(theta)
		w := s.BaseApprox(target)
		if d := w.Quat().Dist(target); d > worst {
			worst = d
		}
	}
	// The length-12 net is a crude but real ε₀-net.
	if worst > 0.5 {
		t.Fatalf("base approximation too poor: worst distance %v", worst)
	}
}

func TestCommutatorFactors(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	for i := 0; i < 100; i++ {
		axis := [3]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		n := math.Sqrt(axis[0]*axis[0] + axis[1]*axis[1] + axis[2]*axis[2])
		if n < 1e-3 {
			continue
		}
		for j := range axis {
			axis[j] /= n
		}
		delta := su2.FromAxisAngle(axis, r.Float64()*0.8+1e-3)
		v, w := commutatorFactors(delta)
		c := v.Mul(w).Mul(v.Conj()).Mul(w.Conj())
		if d := c.Dist(delta); d > 1e-6 {
			t.Fatalf("commutator reconstruction error %v for delta angle %v", d, delta.Angle())
		}
		// Balanced: both factors have the same rotation angle.
		if math.Abs(v.Angle()-w.Angle()) > 1e-9 {
			t.Fatalf("unbalanced factors: %v vs %v", v.Angle(), w.Angle())
		}
	}
}

func TestSKImprovesWithDepth(t *testing.T) {
	s := New(11)
	angles := []float64{0.3, 1.1, -0.7, 2.3}
	for _, theta := range angles {
		target := su2.RotZ(theta)
		d0 := s.Approx(target, 0).Quat().Dist(target)
		d1 := s.Approx(target, 1).Quat().Dist(target)
		d2 := s.Approx(target, 2).Quat().Dist(target)
		if d1 > d0*1.05 || d2 > d1*1.05 {
			t.Fatalf("SK did not improve for θ=%v: %v → %v → %v", theta, d0, d1, d2)
		}
		if d2 > 0.2 {
			t.Fatalf("depth-2 error still large for θ=%v: %v", theta, d2)
		}
	}
}

func TestSKSequencesGrow(t *testing.T) {
	s := New(11)
	target := su2.RotZ(0.923)
	l0 := len(s.Approx(target, 0))
	l2 := len(s.Approx(target, 2))
	if l2 <= l0 {
		t.Fatalf("SK sequences did not grow: %d vs %d", l0, l2)
	}
}

func TestRzGatesEndToEnd(t *testing.T) {
	s := New(11)
	theta := 0.41
	gatesList, reported := s.RzGates(theta, 0, 2)
	c := circuit.New("rz", 1)
	for _, g := range gatesList {
		c.Append(g)
	}
	var m [2][2]complex128
	for col := 0; col < 2; col++ {
		st := dense.New(1)
		if col == 1 {
			st.Amp[0], st.Amp[1] = 0, 1
		}
		if err := st.Run(c); err != nil {
			t.Fatal(err)
		}
		m[0][col], m[1][col] = st.Amp[0], st.Amp[1]
	}
	got := su2.FromU2(m)
	want := su2.RotZ(theta)
	d := got.Dist(want)
	if math.Abs(d-reported) > 1e-6 {
		t.Fatalf("reported error %v but measured %v", reported, d)
	}
	if d > 0.2 {
		t.Fatalf("Rz approximation too poor: %v", d)
	}
	// Output must be pure Clifford+T.
	for _, g := range gatesList {
		switch g.Name {
		case "h", "t", "tdg", "s", "sdg", "z":
		default:
			t.Fatalf("non-Clifford+T gate %q emitted", g.Name)
		}
	}
	_ = cmplx.Abs
}

func TestTCount(t *testing.T) {
	if got := Word("TTTT").TCount(); got != 0 { // compresses to Z
		t.Fatalf("TCount(TTTT) = %d, want 0", got)
	}
	if got := Word("THT").TCount(); got != 2 {
		t.Fatalf("TCount(THT) = %d, want 2", got)
	}
}

func TestSimplify(t *testing.T) {
	cases := []struct{ in, want string }{
		{"HH", ""},
		{"HHH", "H"},
		{"TTTTTTTT", ""},
		{"HTTTTTTTTH", ""},
		{"THHT", "TT"},
		{"HTHT", "HTHT"},
		{"HHTTTTTTTTHH", ""},
	}
	for _, c := range cases {
		if got := Word(c.in).Simplify(); string(got) != c.want {
			t.Fatalf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Simplification preserves the projective unitary on random words.
	r := rand.New(rand.NewSource(102))
	letters := []byte{'H', 'T'}
	for i := 0; i < 50; i++ {
		w := make(Word, r.Intn(40)+1)
		for j := range w {
			w[j] = letters[r.Intn(2)]
		}
		s := w.Simplify()
		if len(s) > len(w) {
			t.Fatalf("Simplify grew %q to %q", w, s)
		}
		if d := s.Quat().Dist(w.Quat()); d > 1e-7 {
			t.Fatalf("Simplify changed the unitary of %q: %v", w, d)
		}
	}
}
