package synth

import (
	"fmt"

	"repro/internal/alg"
)

// Exact single-qubit Clifford+T synthesis over D[ω], following
// Kliuchnikov–Maslov–Mosca (and Giles–Selinger [8], the paper's reference
// for "the quantum operations which can be realized exactly by Clifford+T
// gates are precisely those with entries in D[ω]"): every unitary whose
// entries lie in D[ω] is realized *exactly* — no Solovay–Kitaev
// approximation — by a word over ⟨H, T⟩, found by iteratively reducing the
// smallest denominator exponent of the first column.

// Unitary2 is an exact 2×2 matrix over D[ω].
type Unitary2 [2][2]alg.D

// Mul returns a·b.
func (a Unitary2) Mul(b Unitary2) Unitary2 {
	var out Unitary2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = a[i][0].Mul(b[0][j]).Add(a[i][1].Mul(b[1][j]))
		}
	}
	return out
}

// Adjoint returns the conjugate transpose.
func (a Unitary2) Adjoint() Unitary2 {
	return Unitary2{
		{a[0][0].Conj(), a[1][0].Conj()},
		{a[0][1].Conj(), a[1][1].Conj()},
	}
}

// Equal reports exact entry-wise equality.
func (a Unitary2) Equal(b Unitary2) bool {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !a[i][j].Equal(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// IsUnitary verifies U·U† = I exactly.
func (a Unitary2) IsUnitary() bool {
	p := a.Mul(a.Adjoint())
	return p[0][0].IsOne() && p[1][1].IsOne() && p[0][1].IsZero() && p[1][0].IsZero()
}

// Exact gate matrices over D[ω].
var (
	exactI = Unitary2{{alg.DOne, alg.DZero}, {alg.DZero, alg.DOne}}
	exactH = Unitary2{
		{alg.DInvSqrt2, alg.DInvSqrt2},
		{alg.DInvSqrt2, alg.DInvSqrt2.Neg()},
	}
	exactT = Unitary2{{alg.DOne, alg.DZero}, {alg.DZero, alg.DOmegaVal}}
)

// ExactMatrix returns the exact matrix of a word.
func (w Word) ExactMatrix() Unitary2 {
	u := exactI
	for _, g := range w {
		switch g {
		case 'H':
			u = exactH.Mul(u)
		case 'T':
			u = exactT.Mul(u)
		}
	}
	return u
}

// sde is the smallest denominator exponent of a D[ω] value: the least k ≥ 0
// with √2^k·x ∈ Z[ω]. In the canonical representation that is max(K, 0).
func sde(x alg.D) int {
	if x.K < 0 {
		return 0
	}
	return x.K
}

// ExactSynthesize returns a word over ⟨H, T⟩ whose exact matrix equals u up
// to a global phase ω^k (the residue is returned as phasePower, with
// word-matrix · ω^{phasePower} = u). u must be unitary with entries in
// D[ω]; an error is returned otherwise.
func ExactSynthesize(u Unitary2) (Word, int, error) {
	if !u.IsUnitary() {
		return nil, 0, fmt.Errorf("synth: matrix is not exactly unitary")
	}
	// Accumulate gates g so that g_m … g_1 · u has first column (1, 0)
	// — each step multiplies from the left by T^{-j} then H.
	var applied Word // letters applied, in application order
	cur := u
	guard := 0
	for sde(cur[0][0]) >= 2 {
		j, ok := reducingPower(cur)
		if !ok {
			// The reduction lemma guarantees progress for large denominator
			// exponents; small residuals fall through to the base search.
			break
		}
		// Apply T^{-j} (= T^{8−j}) then H on the left.
		for i := 0; i < (8-j)%8; i++ {
			cur = exactT.Mul(cur)
			applied = append(applied, 'T')
		}
		cur = exactH.Mul(cur)
		applied = append(applied, 'H')
		if guard++; guard > 4096 {
			return nil, 0, fmt.Errorf("synth: exact synthesis failed to terminate")
		}
	}
	// Base case: the residual has small denominator exponents; finish by a
	// bounded search over short ⟨H, T⟩ words.
	tail, ok := finishBySearch(cur)
	if !ok {
		return nil, 0, fmt.Errorf("synth: base-case search failed")
	}
	for _, g := range tail {
		switch g {
		case 'H':
			cur = exactH.Mul(cur)
		case 'T':
			cur = exactT.Mul(cur)
		}
	}
	applied = append(applied, tail...)
	// cur is now ω^p·I; read off the phase.
	phase, ok := phasePower(cur)
	if !ok {
		return nil, 0, fmt.Errorf("synth: residual is not a phase (internal error)")
	}
	// applied (in order) satisfies A_m … A_1 u = ω^p I, so
	// u = A_1† … A_m† ω^p. The inverse word reverses and inverts letters.
	inv := Word(applied).Dagger()
	return inv, phase, nil
}

// reducingPower finds j ∈ {0..3} such that left-multiplying by H·T^{-j}
// strictly reduces the smallest denominator exponent of the top-left entry.
func reducingPower(u Unitary2) (int, bool) {
	k := sde(u[0][0])
	for j := 0; j < 4; j++ {
		// Top-left entry of H·T^{-j}·u = (u00 + ω^{-j}·u10)/√2.
		cand := u[0][0].Add(alg.DOmegaPow(-j).Mul(u[1][0])).Mul(alg.DInvSqrt2)
		if sde(cand) < k {
			return j, true
		}
	}
	return 0, false
}

// phasePower recognizes ω^p·I and returns p.
func phasePower(u Unitary2) (int, bool) {
	if !u[0][1].IsZero() || !u[1][0].IsZero() {
		return 0, false
	}
	if !u[0][0].Equal(u[1][1]) {
		return 0, false
	}
	for p := 0; p < 8; p++ {
		if u[0][0].Equal(alg.DOmegaPow(p)) {
			return p, true
		}
	}
	return 0, false
}

// finishBySearch finds a short word w with w-matrix·u = ω^p·I for residuals
// of small denominator exponent by breadth-first search over ⟨H, T⟩ with
// exact deduplication. The residual group at sde ≤ 1 is small, so the
// search terminates quickly.
func finishBySearch(u Unitary2) (Word, bool) {
	type state struct {
		m Unitary2
		w Word
	}
	key := func(m Unitary2) string {
		return m[0][0].Key() + "/" + m[0][1].Key() + "/" + m[1][0].Key() + "/" + m[1][1].Key()
	}
	if _, ok := phasePower(u); ok {
		return Word{}, true
	}
	seen := map[string]struct{}{key(u): {}}
	frontier := []state{{m: u, w: Word{}}}
	for depth := 0; depth < 24; depth++ {
		var next []state
		for _, s := range frontier {
			for _, g := range []byte{'H', 'T'} {
				var m2 Unitary2
				if g == 'H' {
					m2 = exactH.Mul(s.m)
				} else {
					m2 = exactT.Mul(s.m)
				}
				k := key(m2)
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				w2 := append(append(Word{}, s.w...), g)
				if _, ok := phasePower(m2); ok {
					return w2, true
				}
				// Prune states whose denominators grew beyond the base-case
				// region — they cannot come back cheaply.
				if sde(m2[0][0]) <= 3 {
					next = append(next, state{m: m2, w: w2})
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return nil, false
}
