package sim

import (
	"math"
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/circuit"
	"repro/internal/core"
)

func bellState(t *testing.T, m *core.Manager[alg.Q]) core.Edge[alg.Q] {
	t.Helper()
	s := New(m, 2)
	c := circuit.New("bell", 2)
	c.H(0).CX(0, 1)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	return s.State
}

// TestBellCorrelations: the textbook Bell-state expectation values, exactly.
func TestBellCorrelations(t *testing.T) {
	m := algM(core.NormLeft)
	bell := bellState(t, m)
	cases := []struct {
		paulis map[int]byte
		want   int64
	}{
		{map[int]byte{0: 'Z', 1: 'Z'}, 1},
		{map[int]byte{0: 'X', 1: 'X'}, 1},
		{map[int]byte{0: 'Y', 1: 'Y'}, -1},
		{map[int]byte{0: 'Z'}, 0},
		{map[int]byte{1: 'X'}, 0},
		{nil, 1},
	}
	for _, c := range cases {
		got, err := PauliExpectation(m, bell, 2, c.paulis)
		if err != nil {
			t.Fatal(err)
		}
		// Exact equality — no tolerance.
		if !got.Equal(alg.QFromInt(c.want)) {
			t.Fatalf("⟨%v⟩ = %v, want %d exactly", c.paulis, got, c.want)
		}
	}
}

// TestEnergyExpectationMatchesDense: ⟨ψ|H|ψ⟩ via diagrams equals the dense
// quadratic form on the H₂ Hamiltonian.
func TestEnergyExpectationMatchesDense(t *testing.T) {
	h := algorithms.H2Hamiltonian()
	hm := h.Dense()
	m := algM(core.NormLeft)
	// A few 2-qubit Clifford+T states.
	prep := []*circuit.Circuit{}
	c1 := circuit.New("a", 2)
	c1.X(0)
	c2 := circuit.New("b", 2)
	c2.H(0).CX(0, 1).T(1)
	c3 := circuit.New("c", 2)
	c3.H(0).H(1).S(0).CX(1, 0)
	prep = append(prep, c1, c2, c3)
	for _, c := range prep {
		s := New(m, 2)
		if err := s.Run(c, nil); err != nil {
			t.Fatal(err)
		}
		got, err := EnergyExpectation(m, s.State, 2, h, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Dense reference.
		amps := m.ToVector(s.State, 2)
		want := 0.0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				ai := m.R.Complex128(amps[i])
				aj := m.R.Complex128(amps[j])
				prod := complexConj(ai) * hm[i][j] * aj
				want += real(prod)
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s: energy %v, want %v", c.Name, got, want)
		}
	}
}

func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// TestPauliValidation: bad inputs are rejected.
func TestPauliValidation(t *testing.T) {
	m := algM(core.NormLeft)
	bell := bellState(t, m)
	if _, err := PauliExpectation(m, bell, 2, map[int]byte{5: 'Z'}); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
	if _, err := PauliExpectation(m, bell, 2, map[int]byte{0: 'Q'}); err == nil {
		t.Fatal("unknown Pauli accepted")
	}
	if _, err := PauliExpectation(m, m.ZeroEdge(), 2, nil); err == nil {
		t.Fatal("zero vector accepted")
	}
}

// TestApplyCircuitToState: continuing from a prepared state.
func TestApplyCircuitToState(t *testing.T) {
	m := algM(core.NormLeft)
	bell := bellState(t, m)
	undo := circuit.New("undo", 2)
	undo.CX(0, 1).H(0)
	got, err := ApplyCircuitToState(m, undo, bell)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RootsEqual(got, m.BasisState(2, 0)) {
		t.Fatal("uncomputation did not return to |00⟩")
	}
}
