package sim

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/core"
)

// Projective collapse: the non-unitary state transitions of dynamic
// circuits. Both operations consume exactly one uniform from rng — a fixed
// draw discipline the shots engine relies on to keep per-shot random
// streams reproducible regardless of measurement outcomes.

// MeasureQubit performs a projective measurement of one qubit in the
// computational basis: it draws the outcome from the state's marginal
// (u < P(0) selects 0) and collapses the state to the matching projection.
//
// Renorm tracking: core.Project returns the projection unnormalized —
// 1/√p generally lies outside an exact ring. When the manager's ring can
// represent the factor (numeric rings always can) the state is rescaled to
// unit norm, so epsilon-rounding keeps operating at its intended amplitude
// scale over long dynamic circuits. Exact rings skip the rescale; every
// probability downstream (Project, Sampler) is a ratio of squared norms,
// so an unnormalized state measures identically.
func (s *Simulator[T]) MeasureQubit(q int, rng core.Rand01) (int, error) {
	proj0, p0, err := s.M.Project(s.State, s.N, q, 0)
	if err != nil {
		return 0, err
	}
	outcome, proj, p := 0, proj0, p0
	if rng.Float64() >= p0 {
		proj1, p1, err := s.M.Project(s.State, s.N, q, 1)
		if err != nil {
			return 0, err
		}
		outcome, proj, p = 1, proj1, p1
	}
	if p <= 0 {
		return 0, fmt.Errorf("sim: measured qubit %d into an outcome of probability %v", q, p)
	}
	if w, ok := s.M.R.FromComplex(complex(1/math.Sqrt(p), 0)); ok {
		proj = s.M.Scale(proj, w)
	}
	s.State = proj
	return outcome, nil
}

// ResetQubit measures the qubit (consuming one uniform) and flips it back
// to |0⟩ when the outcome was 1 — the standard measure-and-correct
// lowering of the reset operation.
func (s *Simulator[T]) ResetQubit(q int, rng core.Rand01) error {
	out, err := s.MeasureQubit(q, rng)
	if err != nil {
		return err
	}
	if out == 1 {
		return s.Apply(circuit.Gate{Name: "x", Target: q})
	}
	return nil
}
