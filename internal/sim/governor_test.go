package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/circuit"
	"repro/internal/core"
)

// TestGroverOneNodeBudget is the headline governor scenario: a Grover run
// under a one-node budget must come back as a structured ErrBudgetExceeded
// carrying peak statistics — not a panic, not an OOM.
func TestGroverOneNodeBudget(t *testing.T) {
	m := numM(0)
	m.SetBudget(core.Budget{MaxNodes: 1})
	s := New(m, 6)
	err := s.Run(algorithms.Grover(6, 13, 0), nil)
	if err == nil {
		t.Fatal("run under a 1-node budget succeeded")
	}
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error does not carry *core.BudgetError: %v", err)
	}
	if be.Limit != "nodes" {
		t.Fatalf("limit = %q, want nodes", be.Limit)
	}
	if be.Peak.Nodes < 2 {
		t.Fatalf("peak stats missing: %+v", be.Peak)
	}
	if be.Peak.ApproxBytes <= 0 {
		t.Fatalf("peak bytes not estimated: %+v", be.Peak)
	}
}

// TestBudgetTripsMidOperation: the budget is enforced inside the op
// recursion (every MakeNode), so a single oversized Mul is interrupted
// rather than completing and tripping afterwards.
func TestBudgetTripsMidOperation(t *testing.T) {
	m := numM(0)
	s := New(m, 8)
	c := algorithms.Grover(8, 200, 0)
	// Let one gate through unbudgeted, then cap below the current table
	// size: the very next Apply must fail inside its Mul.
	if err := s.Apply(c.Gates[0]); err != nil {
		t.Fatal(err)
	}
	m.SetBudget(core.Budget{MaxNodes: m.Stats().UniqueNodes})
	var gateErr error
	for _, g := range c.Gates[1:] {
		if gateErr = s.Apply(g); gateErr != nil {
			break
		}
	}
	if !errors.Is(gateErr, core.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded mid-run, got %v", gateErr)
	}
}

// TestApplyRestoresStateOnBudgetError: a refused gate leaves the simulator
// at its pre-gate state, so partial results remain readable.
func TestApplyRestoresStateOnBudgetError(t *testing.T) {
	m := numM(0)
	s := New(m, 6)
	c := algorithms.Grover(6, 13, 0)
	for i := 0; i < 4; i++ {
		if err := s.Apply(c.Gates[i]); err != nil {
			t.Fatal(err)
		}
	}
	prev := s.State
	m.SetBudget(core.Budget{MaxNodes: m.Stats().UniqueNodes})
	var tripped bool
	for _, g := range c.Gates[4:] {
		if err := s.Apply(g); err != nil {
			if !errors.Is(err, core.ErrBudgetExceeded) {
				t.Fatalf("unexpected error: %v", err)
			}
			tripped = true
			break
		}
		prev = s.State
	}
	if !tripped {
		t.Skip("budget never tripped on this instance")
	}
	if s.State != prev {
		t.Fatalf("state not restored after refused gate")
	}
}

// TestBudgetDeadlineTrips: an already-expired wall-clock deadline stops the
// run via the throttled in-recursion check.
func TestBudgetDeadlineTrips(t *testing.T) {
	m := numM(0)
	m.SetBudget(core.Budget{Deadline: time.Now().Add(-time.Second)})
	s := New(m, 10)
	err := s.Run(algorithms.Grover(10, 500, 0), nil)
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *core.BudgetError
	if !errors.As(err, &be) || be.Limit != "deadline" {
		t.Fatalf("want deadline limit, got %v", err)
	}
}

// TestRunCtxCancelMidRun: cancelling the context between gates stops the run
// with the context error; the state stays at the last completed gate.
func TestRunCtxCancelMidRun(t *testing.T) {
	m := numM(0)
	s := New(m, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	applied := 0
	err := s.RunCtx(ctx, algorithms.Grover(8, 77, 0), func(i int, g circuit.Gate) bool {
		applied = i + 1
		if i == 10 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if applied < 11 {
		t.Fatalf("cancelled too early: %d gates applied", applied)
	}
	if s.State.N == nil || s.State.NodeCount() < 1 {
		t.Fatal("partial state unreadable after cancellation")
	}
}

// TestRunCtxDeadline: a context deadline is installed into the manager
// budget for the duration of the run, so even one long Mul is interrupted;
// afterwards the original budget is restored.
func TestRunCtxDeadline(t *testing.T) {
	m := numM(0)
	s := New(m, 10)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := s.RunCtx(ctx, algorithms.Grover(10, 500, 0), nil)
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("want a deadline outcome, got %v", err)
	}
	if !m.Budget().Deadline.IsZero() {
		t.Fatalf("manager budget still carries the run's deadline: %+v", m.Budget())
	}
}

// TestMalformedGatePanicsBecomeErrors: gate construction bugs that panic in
// the diagram core — out-of-range target, control equal to target — come
// back as *core.PanicError from Apply, never as a raw panic.
func TestMalformedGatePanicsBecomeErrors(t *testing.T) {
	bad := []circuit.Gate{
		{Name: "x", Target: 9},
		{Name: "x", Target: -1},
		{Name: "x", Target: 0, Controls: []circuit.Control{{Qubit: 0}}},
		{Name: "x", Target: 0, Controls: []circuit.Control{{Qubit: 7}}},
	}
	for _, g := range bad {
		m := numM(0)
		s := New(m, 3)
		err := s.Apply(g) // must not panic
		if err == nil {
			t.Fatalf("malformed gate %v accepted", g)
		}
		var pe *core.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("gate %v: want *core.PanicError, got %v", g, err)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("gate %v: panic stack not captured", g)
		}
	}
}

// TestNoPanicEscapesExportedAPIs sweeps the exported sim entry points with
// malformed circuits; any escaped panic fails the test by crashing it.
func TestNoPanicEscapesExportedAPIs(t *testing.T) {
	bad := circuit.New("bad", 3)
	bad.Gates = append(bad.Gates, circuit.Gate{Name: "x", Target: 5})
	good := circuit.New("good", 3)
	good.H(0)

	m := numM(0)
	if err := New(m, 3).Run(bad, nil); err == nil {
		t.Fatal("Run accepted a malformed circuit")
	}
	if _, err := BuildUnitary(numM(0), bad); err == nil {
		t.Fatal("BuildUnitary accepted a malformed circuit")
	}
	if _, err := Equivalent(numM(0), good, bad); err == nil {
		t.Fatal("Equivalent accepted a malformed circuit")
	}
	if _, err := EquivalentUpToPhase(numM(0), good, bad); err == nil {
		t.Fatal("EquivalentUpToPhase accepted a malformed circuit")
	}
}

// TestAutoPruneThrashGuard is the regression test for the prune-thrash bug:
// when the live working set outgrows the watermark, the old policy swept the
// full table after every gate while reclaiming almost nothing. The guard
// raises the watermark to twice the live size whenever a sweep reclaims
// under 10%, so the number of prunes stays far below the gate count. The
// near-useless-sweep regime needs a table dominated by pinned roots, so the
// gate diagrams are cached up front (the local apply path alone leaves too
// little pinned for sweeps to be useless).
func TestAutoPruneThrashGuard(t *testing.T) {
	const n = 16
	c := circuit.New("ghz", n)
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	m := numM(0)
	s := New(m, n)
	s.EnableAutoPrune(4) // far below the live working set from the start
	for _, g := range c.Gates {
		if _, err := s.GateDD(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	prunes := m.Stats().Prunes
	if prunes == 0 {
		t.Fatal("auto-prune never ran; watermark not exercised")
	}
	// Without the guard every one of the n gates past the watermark sweeps
	// the table (≈ n prunes). With it the watermark doubles after each
	// near-useless sweep, so the count is logarithmic in the final size.
	if int(prunes) > 6 {
		t.Fatalf("thrash guard ineffective: %d prunes over %d gates", prunes, c.Len())
	}
}
