package sim

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
)

// The shots engine: repeated measurement of a circuit under a seeded
// deterministic RNG. Two strategies cover the two shapes of circuit:
//
//   - sample: for circuits that are a unitary prefix plus (optionally) a
//     trailing read-out block. The final state is built ONCE, a Sampler
//     hoists the subtree-mass pass, and every shot is an O(n) path draw.
//   - resimulate: for dynamic circuits — mid-circuit measurement, reset,
//     classical control. Each shot replays the circuit with projective
//     collapse at every measure/reset; the simulator is Reset between
//     shots so prepared local gates stay warm.
//
// Byte-identity contract: for a circuit where both strategies apply, the
// same (shots, seed) produces the same histogram under either strategy.
// Shot k always draws from ForkRNG(seed, k), and the draw discipline is
// fixed: one uniform per mid-circuit measure or reset, none for an op
// skipped by its classical condition, and a trailing read-out block (or a
// measurement-free circuit's final state) is resolved by one full n-level
// path draw. A serial run, a re-run, and any parallel split over shots all
// consume identical uniforms for shot k.

// Shot-execution strategies.
const (
	// StrategySample builds the final state once and draws all shots from
	// it. Only valid for non-dynamic circuits.
	StrategySample = "sample"
	// StrategyResimulate replays the circuit once per shot with projective
	// collapse. Valid for every circuit; required for dynamic ones.
	StrategyResimulate = "resimulate"
)

// shotCtxCheckEvery is the per-draw period of the cooperative context poll
// in the sample strategy (resimulation polls every shot — each is a full
// circuit replay).
const shotCtxCheckEvery = 64

// ShotOptions configures a shots run.
type ShotOptions struct {
	// Shots is the number of measurement repetitions; must be positive.
	Shots int
	// Seed selects the deterministic random stream. Any value is valid,
	// including 0; the caller decides whether 0 means "pick one" (the
	// server does, so unseeded jobs stay uncacheable).
	Seed int64
	// Strategy is "" or "auto" to pick by circuit shape, or one of
	// StrategySample / StrategyResimulate to force. Forcing
	// StrategySample on a dynamic circuit is an error.
	Strategy string
	// AutoPrune, when positive, enables the simulator's auto-prune policy
	// with this watermark (see Simulator.EnableAutoPrune).
	AutoPrune int
}

// ShotsResult is a completed shots run.
type ShotsResult struct {
	// Counts maps a measurement key to its occurrence count; values sum
	// to Shots. Keys are fixed-width binary strings: the classical
	// register (clbit 0 rightmost) when the circuit measures, the full
	// basis index (qubit 0 leftmost) when it does not.
	Counts map[string]int
	// Strategy is the strategy actually executed.
	Strategy string
	// Shots echoes the request.
	Shots int
	// KeyBits is the width of every key in Counts.
	KeyBits int
}

// ResolveStrategy maps a requested strategy to the one to execute for the
// given circuit, validating the combination.
func ResolveStrategy(c *circuit.Circuit, requested string) (string, error) {
	switch requested {
	case "", "auto":
		if c.Dynamic() {
			return StrategyResimulate, nil
		}
		return StrategySample, nil
	case StrategySample:
		if c.Dynamic() {
			return "", fmt.Errorf("sim: strategy %q requires a non-dynamic circuit (mid-circuit measurement, reset or classical control present); use %q",
				StrategySample, StrategyResimulate)
		}
		return StrategySample, nil
	case StrategyResimulate:
		return StrategyResimulate, nil
	}
	return "", fmt.Errorf("sim: unknown shot strategy %q", requested)
}

// SampleShots is SampleShotsCtx under the background context.
func SampleShots[T any](m *core.Manager[T], c *circuit.Circuit, opt ShotOptions) (*ShotsResult, error) {
	return SampleShotsCtx(context.Background(), m, c, opt)
}

// SampleShotsCtx runs the shots pipeline for a circuit on a fresh
// simulator over m. Cancellation is polled between shots (and, via the
// manager, inside long diagram operations); budget errors from the
// manager surface unchanged, so Governed classifies them as usual.
func SampleShotsCtx[T any](ctx context.Context, m *core.Manager[T], c *circuit.Circuit, opt ShotOptions) (*ShotsResult, error) {
	if opt.Shots <= 0 {
		return nil, fmt.Errorf("sim: shots must be positive, got %d", opt.Shots)
	}
	if c.Cbits > 64 {
		return nil, fmt.Errorf("sim: %d classical bits exceed the 64-bit histogram key", c.Cbits)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	strategy, err := ResolveStrategy(c, opt.Strategy)
	if err != nil {
		return nil, err
	}
	if strategy == StrategySample {
		return sampleShots(ctx, m, c, opt)
	}
	return resimulateShots(ctx, m, c, opt)
}

// hasMeasure reports whether any op in the circuit is a measurement.
func hasMeasure(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		if g.IsMeasure() {
			return true
		}
	}
	return false
}

// setBit returns creg with classical bit i forced to b.
func setBit(creg uint64, i, b int) uint64 {
	creg &^= 1 << i
	creg |= uint64(b) << i
	return creg
}

// readoutKey resolves a trailing read-out block against a drawn basis
// index: each measure copies its qubit's bit (qubit 0 = MSB of idx) into
// its classical bit, on top of the creg accumulated so far.
func readoutKey(c *circuit.Circuit, from int, idx uint64, creg uint64) string {
	for _, g := range c.Gates[from:] {
		creg = setBit(creg, g.Clbit, int((idx>>(c.N-1-g.Target))&1))
	}
	return fmt.Sprintf("%0*b", c.Cbits, creg)
}

// sampleShots: one simulation, opt.Shots path draws.
func sampleShots[T any](ctx context.Context, m *core.Manager[T], c *circuit.Circuit, opt ShotOptions) (*ShotsResult, error) {
	s := New(m, c.N)
	if opt.AutoPrune > 0 {
		s.EnableAutoPrune(opt.AutoPrune)
	}
	if err := s.RunCtx(ctx, c.UnitaryPrefix(), nil); err != nil {
		return nil, err
	}
	sampler, err := m.NewSampler(s.State, c.N)
	if err != nil {
		return nil, fmt.Errorf("sim: final state is not sampleable: %w", err)
	}
	t := c.TrailingMeasures()
	res := &ShotsResult{
		Counts:   make(map[string]int),
		Strategy: StrategySample,
		Shots:    opt.Shots,
		KeyBits:  c.N,
	}
	if t < c.Len() {
		res.KeyBits = c.Cbits
	}
	for shot := 0; shot < opt.Shots; shot++ {
		if shot%shotCtxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled at shot %d: %w", shot, err)
			}
		}
		idx, err := sampler.Draw(ForkRNG(opt.Seed, shot))
		if err != nil {
			return nil, err
		}
		if t < c.Len() {
			res.Counts[readoutKey(c, t, idx, 0)]++
		} else {
			res.Counts[fmt.Sprintf("%0*b", c.N, idx)]++
		}
	}
	return res, nil
}

// resimulateShots: one full circuit replay per shot, with projective
// collapse at measure/reset and the classical register gating conditioned
// ops. The trailing read-out block (or a measurement-free final state) is
// resolved by a single path draw, keeping the uniform stream aligned with
// the sample strategy.
func resimulateShots[T any](ctx context.Context, m *core.Manager[T], c *circuit.Circuit, opt ShotOptions) (*ShotsResult, error) {
	s := New(m, c.N)
	if opt.AutoPrune > 0 {
		s.EnableAutoPrune(opt.AutoPrune)
	}
	// Install the context (and any deadline it carries) into the manager
	// for the whole run, as RunCtx does per circuit.
	m.SetContext(ctx)
	defer m.SetContext(nil)
	if dl, ok := ctx.Deadline(); ok {
		b := m.Budget()
		if b.Deadline.IsZero() || dl.Before(b.Deadline) {
			defer m.SetBudget(m.Budget())
			b.Deadline = dl
			m.SetBudget(b)
		}
	}
	t := c.TrailingMeasures()
	measured := hasMeasure(c)
	res := &ShotsResult{
		Counts:   make(map[string]int),
		Strategy: StrategyResimulate,
		Shots:    opt.Shots,
		KeyBits:  c.N,
	}
	if measured {
		res.KeyBits = c.Cbits
	}
	for shot := 0; shot < opt.Shots; shot++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: cancelled at shot %d: %w", shot, err)
		}
		rng := ForkRNG(opt.Seed, shot)
		s.Reset()
		var creg uint64
		for i, g := range c.Gates[:t] {
			if g.Cond != nil && !g.Cond.Holds(creg) {
				continue // a skipped op consumes no uniforms
			}
			var err error
			switch {
			case g.IsMeasure():
				var out int
				if out, err = s.MeasureQubit(g.Target, rng); err == nil {
					creg = setBit(creg, g.Clbit, out)
				}
			case g.IsReset():
				err = s.ResetQubit(g.Target, rng)
			default:
				bare := g
				bare.Cond = nil
				err = s.Apply(bare)
			}
			if err != nil {
				return nil, fmt.Errorf("sim: shot %d, op %d (%s): %w", shot, i, g, err)
			}
		}
		switch {
		case t < c.Len() || !measured:
			sampler, err := m.NewSampler(s.State, c.N)
			if err != nil {
				return nil, fmt.Errorf("sim: shot %d: final state is not sampleable: %w", shot, err)
			}
			idx, err := sampler.Draw(rng)
			if err != nil {
				return nil, fmt.Errorf("sim: shot %d: %w", shot, err)
			}
			if measured {
				res.Counts[readoutKey(c, t, idx, creg)]++
			} else {
				res.Counts[fmt.Sprintf("%0*b", c.N, idx)]++
			}
		default:
			res.Counts[fmt.Sprintf("%0*b", c.Cbits, creg)]++
		}
	}
	return res, nil
}
