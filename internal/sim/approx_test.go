package sim

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
)

// clutterCircuit builds a circuit whose state keeps a dominant |0…0⟩ branch
// plus a generic low-mass tail: layers of small-angle ry rotations entangled
// by a CX chain. The tail fills the diagram toward its worst case while the
// fidelity cost of shedding it stays tiny — the shape approximation exists
// for.
func clutterCircuit(n, layers int, seed int64) *circuit.Circuit {
	r := rand.New(rand.NewSource(seed))
	c := circuit.New("clutter", n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.Append(circuit.Gate{Name: "ry", Target: q, Params: []float64{0.02 + 0.02*r.Float64()}})
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	return c
}

func denseFid(u, v []complex128) float64 {
	var ip complex128
	var nu, nv float64
	for i := range u {
		ip += cmplx.Conj(u[i]) * v[i]
		nu += real(u[i])*real(u[i]) + imag(u[i])*imag(u[i])
		nv += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
	}
	if nu == 0 || nv == 0 {
		return 0
	}
	a := cmplx.Abs(ip)
	return a * a / (nu * nv)
}

func stateVec(m *core.Manager[complex128], v core.Edge[complex128], n int) []complex128 {
	vals := m.ToVector(v, n)
	out := make([]complex128, len(vals))
	for i, a := range vals {
		out[i] = m.R.Complex128(a)
	}
	return out
}

// TestApproximationFlipsBudgetFailure is the graceful-degradation headline:
// a circuit that dies on ErrBudgetExceeded under a node cap completes under
// the same cap once a fidelity floor is installed, and the accounting stamps
// what was given up.
func TestApproximationFlipsBudgetFailure(t *testing.T) {
	const (
		n      = 10
		layers = 24
		floor  = 0.5
	)
	c := clutterCircuit(n, layers, 11)

	// Unbudgeted reference run: yields the ideal final state and (the table
	// being monotone without pruning) the node demand of the full run.
	ref := New(numM(0), n)
	if err := ref.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	demand := ref.M.Stats().UniqueNodes
	cap := demand / 2
	if cap < 256 {
		t.Fatalf("circuit too small to pressure a budget: demand %d", demand)
	}

	// Under the cap without a policy: structured refusal, as before.
	m := numM(0)
	m.SetBudget(core.Budget{MaxNodes: cap})
	if err := New(m, n).Run(c, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("capped run without policy: err = %v, want ErrBudgetExceeded", err)
	}

	// Same cap, fidelity floor installed: the run must complete.
	m2 := numM(0)
	m2.SetBudget(core.Budget{MaxNodes: cap})
	s := New(m2, n)
	s.EnableApproximation(ApproxPolicy{MinFidelity: floor, MaxEvents: 1000})
	if err := s.Run(c, nil); err != nil {
		t.Fatalf("capped run with approximation failed: %v", err)
	}
	st := s.Approximation()
	if st.Events < 1 {
		t.Fatal("run completed without any approximation event despite the cap")
	}
	if st.Fidelity < floor || st.Fidelity > 1 {
		t.Fatalf("accounted fidelity %v outside [%v, 1]", st.Fidelity, floor)
	}
	if st.Exact {
		t.Fatal("float-ring accounting flagged exact")
	}
	// The low-mass tail is what was shed: the final state still matches the
	// ideal far above the floor.
	if f := denseFid(stateVec(ref.M, ref.State, n), stateVec(m2, s.State, n)); f < floor {
		t.Fatalf("final-state fidelity %v below floor %v", f, floor)
	}
}

// TestApproximationThrashGuardSheds: with auto-prune saturated by the live
// state itself, the thrash guard tries an approximation event before
// inflating the watermark.
func TestApproximationThrashGuardSheds(t *testing.T) {
	const n = 12
	c := clutterCircuit(n, 16, 7)
	s := New(numM(0), n)
	s.EnableAutoPrune(48)
	s.EnableApproximation(ApproxPolicy{MinFidelity: 0.5, MaxEvents: 1000})
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	st := s.Approximation()
	if st.Events < 1 {
		t.Fatal("saturated auto-prune never shed load")
	}
	if st.Fidelity < 0.5 {
		t.Fatalf("accounted fidelity %v below floor", st.Fidelity)
	}
}

// TestApproximationResetClearsAccounting: Reset starts a fresh run —
// accounting back to the identity, policy still installed.
func TestApproximationResetClearsAccounting(t *testing.T) {
	const n = 8
	c := clutterCircuit(n, 16, 3)
	m := numM(0)
	s := New(m, n)
	s.EnableAutoPrune(24)
	s.EnableApproximation(ApproxPolicy{MinFidelity: 0.6, MaxEvents: 1000})
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	if s.Approximation().Events < 1 {
		t.Skip("no approximation event fired on this instance")
	}
	s.Reset()
	if st := s.Approximation(); st != freshApproxState() {
		t.Fatalf("Reset left accounting %+v", st)
	}
	if s.approxPolicy.MinFidelity != 0.6 {
		t.Fatal("Reset dropped the installed policy")
	}
	// The policy survives: the rerun degrades gracefully again.
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
}

// TestApproximationDeadlineNotAbsorbed: a deadline trip is a cancellation,
// not memory pressure — the fallback must not eat it.
func TestApproximationDeadlineNotAbsorbed(t *testing.T) {
	const n = 10
	c := clutterCircuit(n, 24, 5)
	m := numM(0)
	m.SetBudget(core.Budget{Deadline: time.Now().Add(-time.Second)})
	s := New(m, n)
	s.EnableApproximation(ApproxPolicy{MinFidelity: 0.5})
	err := s.Run(c, nil)
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("expired deadline: err = %v, want ErrBudgetExceeded", err)
	}
	if st := s.Approximation(); st.Events != 0 {
		t.Fatalf("deadline trip triggered %d approximation events", st.Events)
	}
}

// TestApproximationMathErrorsPassThrough: a non-budget failure (here a gate
// the ring cannot represent) is returned untouched even with a policy on.
func TestApproximationMathErrorsPassThrough(t *testing.T) {
	s := New(algM(core.NormLeft), 2)
	s.EnableApproximation(ApproxPolicy{MinFidelity: 0.5})
	c := circuit.New("bad", 2)
	c.Append(circuit.Gate{Name: "ry", Target: 0, Params: []float64{0.1234}})
	err := s.Run(c, nil)
	if err == nil || errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("irrational gate in the exact ring: err = %v", err)
	}
	if st := s.Approximation(); st.Events != 0 {
		t.Fatal("math error triggered an approximation event")
	}
}
