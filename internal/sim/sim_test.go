package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/num"
)

func algM(norm core.NormScheme) *core.Manager[alg.Q] {
	return core.NewManager[alg.Q](alg.Ring{}, norm)
}

func numM(eps float64) *core.Manager[complex128] {
	return core.NewManager[complex128](num.NewRing(eps), core.NormLeft)
}

// randomCliffordT generates a random Clifford+T circuit for cross-validation.
func randomCliffordT(r *rand.Rand, n, gatesCount int) *circuit.Circuit {
	c := circuit.New("random", n)
	names := []string{"h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx"}
	for i := 0; i < gatesCount; i++ {
		switch r.Intn(4) {
		case 0: // controlled gate
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			c.CX(a, b)
		case 1:
			if n >= 3 {
				p := r.Perm(n)
				c.CCX(p[0], p[1], p[2])
				continue
			}
			fallthrough
		default:
			c.Append(circuit.Gate{Name: names[r.Intn(len(names))], Target: r.Intn(n)})
		}
	}
	return c
}

// TestAlgebraicMatchesDense cross-validates the exact QMDD simulator against
// the flat-array simulator on random Clifford+T circuits.
func TestAlgebraicMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	for trial := 0; trial < 8; trial++ {
		n := 3 + r.Intn(3)
		c := randomCliffordT(r, n, 40)

		m := algM(core.NormLeft)
		s := New(m, n)
		if err := s.Run(c, nil); err != nil {
			t.Fatal(err)
		}
		ref := dense.New(n)
		if err := ref.Run(c); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < uint64(1)<<uint(n); i++ {
			got := m.R.Complex128(m.Amplitude(s.State, n, i))
			if cmplx.Abs(got-ref.Amp[i]) > 1e-10 {
				t.Fatalf("trial %d amp[%d] = %v, want %v", trial, i, got, ref.Amp[i])
			}
		}
		if d := math.Abs(m.Norm2(s.State) - 1); d > 1e-9 {
			t.Fatalf("norm drifted: %v", d)
		}
	}
}

// TestNumericMatchesDense: the numerical QMDD simulator with a small ε also
// matches the array simulator to within float accuracy.
func TestNumericMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		n := 3 + r.Intn(3)
		c := randomCliffordT(r, n, 40)

		m := numM(1e-13)
		s := New(m, n)
		if err := s.Run(c, nil); err != nil {
			t.Fatal(err)
		}
		ref := dense.New(n)
		if err := ref.Run(c); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < uint64(1)<<uint(n); i++ {
			got := m.Amplitude(s.State, n, i)
			if cmplx.Abs(got-ref.Amp[i]) > 1e-9 {
				t.Fatalf("trial %d amp[%d] = %v, want %v", trial, i, got, ref.Amp[i])
			}
		}
	}
}

// TestNumericRotationsMatchDense: parametric gates work on the numeric ring.
func TestNumericRotationsMatchDense(t *testing.T) {
	c := circuit.New("rot", 2)
	c.H(0).Rz(0.31, 0).Ry(1.2, 1).CX(0, 1).P(0.7, 1).Rx(-0.4, 0)

	m := numM(0)
	s := New(m, 2)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	ref := dense.New(2)
	if err := ref.Run(c); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		got := m.Amplitude(s.State, 2, i)
		if cmplx.Abs(got-ref.Amp[i]) > 1e-12 {
			t.Fatalf("amp[%d] = %v, want %v", i, got, ref.Amp[i])
		}
	}
}

// TestAlgebraicRejectsRotations: the exact ring refuses parametric gates
// with a helpful error instead of silently approximating.
func TestAlgebraicRejectsRotations(t *testing.T) {
	c := circuit.New("rot", 1)
	c.Rz(0.5, 0)
	s := New(algM(core.NormLeft), 1)
	if err := s.Run(c, nil); err == nil {
		t.Fatal("rotation accepted by exact ring")
	}
}

// TestBellState: the canonical 2-qubit example end to end.
func TestBellState(t *testing.T) {
	for _, norm := range []core.NormScheme{core.NormLeft, core.NormMax, core.NormGCD} {
		m := algM(norm)
		s := New(m, 2)
		c := circuit.New("bell", 2)
		c.H(0).CX(0, 1)
		if err := s.Run(c, nil); err != nil {
			t.Fatal(err)
		}
		for i, want := range []float64{0.5, 0, 0, 0.5} {
			if p := m.Probability(s.State, 2, uint64(i)); math.Abs(p-want) > 1e-12 {
				t.Fatalf("[%v] P(%d) = %v, want %v", norm, i, p, want)
			}
		}
		// The Bell state amplitude 1/√2 must be exactly representable.
		a := m.Amplitude(s.State, 2, 0)
		if !a.Equal(alg.QInvSqrt2) {
			t.Fatalf("[%v] amplitude = %v, want exactly 1/√2", norm, a)
		}
	}
}

// TestGHZSize: a GHZ state over n qubits has a linear-size diagram: one root
// plus separate all-zero and all-one chains, 2n−1 nodes in total.
func TestGHZSize(t *testing.T) {
	m := algM(core.NormLeft)
	n := 12
	c := circuit.New("ghz", n)
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	s := New(m, n)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.State.NodeCount(); got != 2*n-1 {
		t.Fatalf("GHZ state has %d nodes, want %d", got, 2*n-1)
	}
}

// TestBuildUnitaryAndEquivalence: O(1) equivalence checking of circuits.
func TestBuildUnitaryAndEquivalence(t *testing.T) {
	m := algM(core.NormLeft)
	// HH = identity; TTTT = Z·... T⁴ = Z; SS = Z.
	a := circuit.New("a", 2)
	a.T(0).T(0).T(0).T(0).H(1).H(1)
	b := circuit.New("b", 2)
	b.Z(0)
	eq, err := Equivalent(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("T⁴ ≠ Z according to equivalence check")
	}
	cth := circuit.New("c", 2)
	cth.S(0)
	eq, err = Equivalent(m, a, cth)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("T⁴ = S reported equivalent")
	}
	// Circuit and its inverse compose to the identity.
	r := rand.New(rand.NewSource(72))
	c := randomCliffordT(r, 3, 30)
	both := circuit.New("ci", 3)
	both.AppendCircuit(c).AppendCircuit(c.Inverse())
	u, err := BuildUnitary(m, both)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RootsEqual(u, m.Identity(3)) {
		t.Fatal("c · c⁻¹ ≠ I")
	}
}

// TestGateCache: repeated application of the same gate reuses the cached DD.
func TestGateCache(t *testing.T) {
	m := algM(core.NormLeft)
	s := New(m, 4)
	g := circuit.Gate{Name: "h", Target: 2}
	d1, err := s.GateDD(g)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.GateDD(g)
	if err != nil {
		t.Fatal(err)
	}
	if d1.N != d2.N {
		t.Fatal("gate DD not cached")
	}
}

// TestHookOrdering: the Run hook sees every gate in order.
func TestHookOrdering(t *testing.T) {
	m := algM(core.NormLeft)
	s := New(m, 2)
	c := circuit.New("seq", 2)
	c.H(0).CX(0, 1).X(1)
	var seen []int
	if err := s.Run(c, func(i int, g circuit.Gate) bool { seen = append(seen, i); return true }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("hook sequence = %v", seen)
	}
}

// TestEquivalentUpToPhase: Rz(π/4) equals T up to the global phase
// e^{−iπ/8}; exact equivalence must reject, phase-insensitive must accept.
// On the exact ring the phase-shifted pair is constructed algebraically:
// ω·X vs X differ by the global phase ω.
func TestEquivalentUpToPhase(t *testing.T) {
	m := algM(core.NormLeft)
	// Circuit a: X. Circuit b: Z·X·Z = −X·… construct a genuinely
	// phase-shifted version: S·S·X·… simplest: a = X, b = "global i × X"
	// realized as S X S X X S S (check: S X S X = i·I? verify via roots).
	a := circuit.New("a", 1)
	a.X(0)
	// b implements i·X: S·X·S·X·X = ?
	b := circuit.New("b", 1)
	b.X(0).S(0).X(0).S(0).X(0)
	// S X S X = diag-ish: compute equivalence both ways and assert the
	// relationship the diagrams report is consistent with dense simulation.
	ua, err := BuildUnitary(m, a)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := BuildUnitary(m, b)
	if err != nil {
		t.Fatal(err)
	}
	// Dense check of the phase relation.
	ma := m.ToMatrix(ua, 1)
	mb := m.ToMatrix(ub, 1)
	ratio := mb[0][1].Div(ma[0][1])
	if !mb[1][0].Div(ma[1][0]).Equal(ratio) {
		t.Skip("constructed pair is not a pure phase pair; construction wrong")
	}
	phaseOnly := ratio.Mul(ratio.Conj()).IsOne()
	exactEq := m.RootsEqual(ua, ub)
	phaseEq := m.RootsEqualUpToPhase(ua, ub)
	if !phaseOnly {
		t.Fatalf("test construction broken: ratio %v not unit modulus", ratio)
	}
	if exactEq {
		t.Fatal("phase-shifted circuits reported exactly equal")
	}
	if !phaseEq {
		t.Fatal("phase-shifted circuits not recognized as equal up to phase")
	}
	eq, err := EquivalentUpToPhase(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("EquivalentUpToPhase disagrees with RootsEqualUpToPhase")
	}
	// And a genuinely different circuit is still rejected.
	c := circuit.New("c", 1)
	c.H(0)
	eq, err = EquivalentUpToPhase(m, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("X ≡ H up to phase?!")
	}
}

// TestAutoPruneDuringSimulation: long runs with pruning stay correct and
// keep the unique table bounded.
func TestAutoPruneDuringSimulation(t *testing.T) {
	c := randomCliffordT(rand.New(rand.NewSource(73)), 5, 300)
	// Reference without pruning.
	mRef := algM(core.NormLeft)
	sRef := New(mRef, 5)
	if err := sRef.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	// Pruned run.
	m := algM(core.NormLeft)
	s := New(m, 5)
	s.EnableAutoPrune(200)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Prunes == 0 {
		t.Fatal("auto-prune never fired on a 300-gate run")
	}
	for i := uint64(0); i < 32; i++ {
		if !m.Amplitude(s.State, 5, i).Equal(mRef.Amplitude(sRef.State, 5, i)) {
			t.Fatalf("pruned run diverged at amplitude %d", i)
		}
	}
}
