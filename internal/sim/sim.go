// Package sim drives QMDD-based simulation of quantum circuits: it turns
// circuit gates into gate diagrams, evolves a state vector by matrix-vector
// multiplication (or builds the full unitary by matrix-matrix
// multiplication), and records the per-gate statistics the paper plots —
// diagram size, run time, and coefficient bit widths.
package sim

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gates"
)

// Simulator evolves one n-qubit state under a stream of gates.
type Simulator[T any] struct {
	M     *core.Manager[T]
	N     int
	State core.Edge[T]

	gateCache  map[string]core.Edge[T]
	localCache map[string]*core.LocalGate[T]
	// pruneHighWater is the active auto-prune watermark; the thrash guard
	// may raise it during a run. pruneConfigured remembers the caller's
	// setting so Reset can restore it — guard inflation is run-local, never
	// a property of the simulator's next circuit.
	pruneHighWater  int
	pruneConfigured int
	// approxPolicy is the configured fidelity-bounded degradation policy
	// (approx.go); approxState is the run-local accounting it maintains.
	approxPolicy ApproxPolicy
	approxState  ApproxState
}

// EnableAutoPrune garbage-collects the manager whenever its unique table
// exceeds highWater nodes after a gate application, keeping the current
// state and all cached gate diagrams alive. Pass 0 to disable (the default).
// When a prune reclaims less than 10% of the table — the live working set
// itself has outgrown the watermark — the watermark is raised to twice the
// live size, so a saturated table costs one cheap comparison per gate
// instead of a full O(live) sweep (see the thrash-guard test). The raise
// lasts until the end of the run: Reset restores this configured value.
func (s *Simulator[T]) EnableAutoPrune(highWater int) {
	s.pruneHighWater = highWater
	s.pruneConfigured = highWater
}

// ctxCheckEvery is the gate-application period of the cooperative
// context poll in RunCtx.
const ctxCheckEvery = 8

// New returns a simulator initialized to |0…0⟩. The n+1-node basis state is
// built with the budget suspended: under a budget too small for any state the
// refusal belongs to the first gate application, where it surfaces as an
// error, not as a constructor panic.
func New[T any](m *core.Manager[T], n int) *Simulator[T] {
	defer m.SetBudget(m.Budget())
	m.SetBudget(core.Budget{})
	return &Simulator[T]{
		M:           m,
		N:           n,
		State:       m.BasisState(n, 0),
		gateCache:   make(map[string]core.Edge[T]),
		localCache:  make(map[string]*core.LocalGate[T]),
		approxState: freshApproxState(),
	}
}

// Reset returns the state to |0…0⟩ (budget-exempt, as in New) and restores
// the simulator's run-local policy state: the auto-prune watermark goes
// back to its configured value (a thrash-guard raise from a previous
// table-saturating run must not leave the reused simulator effectively
// prune-free), the approximation accounting is cleared (the policy itself
// persists, like the configured watermark), and the gate-diagram cache is
// dropped (cached DDs are prune
// roots, so carrying them across circuits would pin dead gate diagrams
// forever). The manager's tables are left as-is — the next prune sweeps
// what the dropped cache no longer protects. The local-gate cache is kept:
// prepared local gates store ring values, never diagram edges, so they pin
// nothing and stay valid across Prune and Reset alike.
func (s *Simulator[T]) Reset() {
	defer s.M.SetBudget(s.M.Budget())
	s.M.SetBudget(core.Budget{})
	s.pruneHighWater = s.pruneConfigured
	s.approxState = freshApproxState()
	s.gateCache = make(map[string]core.Edge[T])
	s.State = s.M.BasisState(s.N, 0)
}

// baseFor resolves the 2×2 base matrix of a gate in the manager's ring.
func baseFor[T any](m *core.Manager[T], g circuit.Gate) ([2][2]T, error) {
	if ex, ok := gates.Exact(g.Name); ok {
		return gates.BaseFor(m, ex), nil
	}
	u, err := gates.Numeric(g.Name, g.Params)
	if err != nil {
		return [2][2]T{}, err
	}
	var out [2][2]T
	for i := range u {
		for j := range u[i] {
			v, ok := m.R.FromComplex(u[i][j])
			if !ok {
				return out, fmt.Errorf(
					"sim: gate %q is not exactly representable in this ring; compile it to Clifford+T first (internal/synth)",
					g.Name)
			}
			out[i][j] = v
		}
	}
	return out, nil
}

func gateKey(g circuit.Gate, n int) string {
	var sb strings.Builder
	sb.WriteString(g.Name)
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(n))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(g.Target))
	for _, c := range g.Controls {
		sb.WriteByte(',')
		if c.Neg {
			sb.WriteByte('!')
		}
		sb.WriteString(strconv.Itoa(c.Qubit))
	}
	for _, p := range g.Params {
		sb.WriteByte(';')
		sb.WriteString(strconv.FormatFloat(p, 'x', -1, 64))
	}
	return sb.String()
}

// GateDD returns (and caches) the diagram of a gate over n qubits.
func (s *Simulator[T]) GateDD(g circuit.Gate) (core.Edge[T], error) {
	key := gateKey(g, s.N)
	if dd, ok := s.gateCache[key]; ok {
		return dd, nil
	}
	base, err := baseFor(s.M, g)
	if err != nil {
		return core.Edge[T]{}, err
	}
	ctrls := make([]gates.Control, len(g.Controls))
	for i, c := range g.Controls {
		ctrls[i] = gates.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	dd := gates.BuildDD(s.M, s.N, base, g.Target, ctrls)
	s.gateCache[key] = dd
	return dd, nil
}

// LocalGate returns (and caches) the identity-skipping local form of a gate,
// ready for core.ApplyLocal. Unlike GateDD's matrix diagrams, prepared local
// gates hold ring values only — they are not prune roots and never expire.
func (s *Simulator[T]) LocalGate(g circuit.Gate) (lg *core.LocalGate[T], err error) {
	key := gateKey(g, s.N)
	if lg, ok := s.localCache[key]; ok {
		return lg, nil
	}
	defer core.RecoverTo(&err)
	base, err := baseFor(s.M, g)
	if err != nil {
		return nil, err
	}
	ctrls := make([]gates.Control, len(g.Controls))
	for i, c := range g.Controls {
		ctrls[i] = gates.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	lg = gates.Local(s.M, s.N, base, g.Target, ctrls)
	s.localCache[key] = lg
	return lg, nil
}

// Apply evolves the state by one gate via the identity-skipping local path
// (core.ApplyLocal): no n-level gate diagram is built and levels the gate
// does not touch cost nothing. Gates whose base block is exactly the ring
// identity — rz(0), u3(0,0,0), controlled or not — are skipped outright.
// Panics from the diagram core — budget violations, malformed circuits,
// non-invertible weights — are converted to errors; on error the state is
// left at its pre-gate value.
func (s *Simulator[T]) Apply(g circuit.Gate) (err error) {
	defer core.RecoverTo(&err)
	lg, err := s.LocalGate(g)
	if err != nil {
		return err
	}
	if lg.IsIdentity() {
		return nil
	}
	prev := s.State
	s.State = s.M.ApplyLocal(lg, s.State)
	if err := s.maybePrune(); err != nil {
		s.State = prev
		return err
	}
	return nil
}

// maybePrune runs the auto-prune policy with the thrash guard: when the
// last prune reclaimed less than 10% of the table, the watermark is raised
// to twice the surviving live size so near-useless full sweeps stop. With an
// approximation policy installed, a saturated table first gets one shed
// attempt — the live state itself is the thing that outgrew the watermark,
// and dropping its low-contribution tail may keep the configured watermark
// honest instead of inflating it.
func (s *Simulator[T]) maybePrune() (err error) {
	defer core.RecoverTo(&err)
	if s.pruneHighWater <= 0 {
		return nil
	}
	before := s.M.Stats().UniqueNodes
	if before <= s.pruneHighWater {
		return nil
	}
	removed := s.pruneNow()
	if removed*10 < before {
		if s.shedLoad(false) {
			if live := s.M.Stats().UniqueNodes; live <= s.pruneHighWater {
				return nil
			}
		}
		live := s.M.Stats().UniqueNodes
		s.pruneHighWater = 2 * live
	}
	return nil
}

// Run applies a whole circuit, invoking hook (if non-nil) after every gate.
// The hook receives the 0-based index of the gate just applied; returning
// false stops the run early (Run then returns ErrStopped).
func (s *Simulator[T]) Run(c *circuit.Circuit, hook func(i int, g circuit.Gate) bool) error {
	return s.RunCtx(context.Background(), c, hook)
}

// RunCtx is Run under a context: cancellation is polled cooperatively every
// few gate applications — and, via the manager, inside long-running
// individual operations — so both a slow gate stream and one giant Mul are
// interruptible. On cancellation the context error is returned and the
// state remains at the last completed gate, so partial statistics stay
// readable. Deadlines carried by ctx are installed into the manager budget
// for the duration of the run.
func (s *Simulator[T]) RunCtx(ctx context.Context, c *circuit.Circuit, hook func(i int, g circuit.Gate) bool) error {
	return s.RunFromCtx(ctx, c, 0, hook)
}

// RunFromCtx is the warm-start entry point: it applies c.Gates[from:],
// assuming s.State already holds the state reached by the first `from`
// gates — typically restored from a prefix checkpoint (internal/prefix)
// keyed by the circuit's chain link H_from. With from = 0 it is exactly
// RunCtx. The hook still receives the original gate indices, so checkpoint
// policies see the same positions a cold run would.
func (s *Simulator[T]) RunFromCtx(ctx context.Context, c *circuit.Circuit, from int, hook func(i int, g circuit.Gate) bool) error {
	if c.N != s.N {
		return fmt.Errorf("sim: circuit has %d qubits, simulator has %d", c.N, s.N)
	}
	if from < 0 || from > len(c.Gates) {
		return fmt.Errorf("sim: warm start at gate %d of %d", from, len(c.Gates))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Unconditional install: the manager polls ctx inside long op recursions.
	// The previous `ctx != context.Background()` pointer-identity test was a
	// landmine — any wrapper that compares equal to the background context
	// silently lost in-recursion cancellation. Installing the background
	// context costs one nil-error read per few hundred node creations.
	s.M.SetContext(ctx)
	defer s.M.SetContext(nil)
	ctxOwnsDeadline := false
	if dl, ok := ctx.Deadline(); ok {
		b := s.M.Budget()
		if b.Deadline.IsZero() || dl.Before(b.Deadline) {
			defer s.M.SetBudget(s.M.Budget())
			b.Deadline = dl
			s.M.SetBudget(b)
			ctxOwnsDeadline = true
		}
	}
	for i := from; i < len(c.Gates); i++ {
		g := c.Gates[i]
		if (i-from)%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: cancelled before gate %d: %w", i, err)
			}
		}
		if err := s.applyWithFallback(g); err != nil {
			// A deadline carried by ctx trips inside the manager as a budget
			// error; report it as the cancellation it is, so callers see one
			// error shape for "the context ended this run". The explicit
			// ctxOwnsDeadline test covers the instants where the budget clock
			// has passed the deadline but ctx's timer has not yet fired.
			if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, core.ErrBudgetExceeded) {
				return fmt.Errorf("sim: cancelled at gate %d: %w", i, ctxErr)
			}
			var be *core.BudgetError
			if ctxOwnsDeadline && errors.As(err, &be) && be.Limit == "deadline" {
				return fmt.Errorf("sim: cancelled at gate %d: %w", i, context.DeadlineExceeded)
			}
			return fmt.Errorf("sim: gate %d (%s): %w", i, g, err)
		}
		if hook != nil && !hook(i, g) {
			return ErrStopped
		}
	}
	return nil
}

// ErrStopped is returned by Run when the per-gate hook requested an early
// stop.
var ErrStopped = fmt.Errorf("sim: stopped by hook")

// Governed reports whether err is a run-governor outcome — budget exceeded,
// deadline passed, or cancellation — rather than a genuine failure. Front
// ends (the CLIs, the qmddd daemon) use it to report a refused or
// interrupted run gracefully, with partial statistics, instead of treating
// it as an internal error.
func Governed(err error) bool {
	return errors.Is(err, core.ErrBudgetExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// BuildUnitary computes the full circuit unitary (gates applied in order,
// i.e. U = G_k ··· G_1). Each gate is applied to the accumulating matrix
// diagram through the identity-skipping local path — ApplyLocal acting on
// the row space is exactly Mul(BuildDD(...), u) without ever materializing
// the n-level gate diagram — and exact-identity gates are skipped. Core
// panics (budget violations, malformed circuits) surface as errors.
func BuildUnitary[T any](m *core.Manager[T], c *circuit.Circuit) (u core.Edge[T], err error) {
	defer core.RecoverTo(&err)
	s := New(m, c.N)
	u = m.Identity(c.N)
	for i, g := range c.Gates {
		lg, err := s.LocalGate(g)
		if err != nil {
			return core.Edge[T]{}, fmt.Errorf("sim: gate %d (%s): %w", i, g, err)
		}
		if lg.IsIdentity() {
			continue
		}
		u = m.ApplyLocal(lg, u)
	}
	return u, nil
}

// Equivalent checks two circuits for exact functional equivalence by
// building both unitaries and comparing root edges — the O(1) comparison the
// paper highlights as a payoff of canonical exact diagrams.
func Equivalent[T any](m *core.Manager[T], a, b *circuit.Circuit) (eq bool, err error) {
	defer core.RecoverTo(&err)
	if a.N != b.N {
		return false, nil
	}
	ua, err := BuildUnitary(m, a)
	if err != nil {
		return false, err
	}
	ub, err := BuildUnitary(m, b)
	if err != nil {
		return false, err
	}
	return m.RootsEqual(ua, ub), nil
}

// EquivalentUpToPhase is Equivalent modulo a global phase — the relation
// that matters physically (e.g. a circuit compiled via Rz-based phase gates
// differs from its P-gate original by exactly a global phase).
func EquivalentUpToPhase[T any](m *core.Manager[T], a, b *circuit.Circuit) (eq bool, err error) {
	defer core.RecoverTo(&err)
	if a.N != b.N {
		return false, nil
	}
	ua, err := BuildUnitary(m, a)
	if err != nil {
		return false, err
	}
	ub, err := BuildUnitary(m, b)
	if err != nil {
		return false, err
	}
	return m.RootsEqualUpToPhase(ua, ub), nil
}
