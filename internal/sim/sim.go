// Package sim drives QMDD-based simulation of quantum circuits: it turns
// circuit gates into gate diagrams, evolves a state vector by matrix-vector
// multiplication (or builds the full unitary by matrix-matrix
// multiplication), and records the per-gate statistics the paper plots —
// diagram size, run time, and coefficient bit widths.
package sim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gates"
)

// Simulator evolves one n-qubit state under a stream of gates.
type Simulator[T any] struct {
	M     *core.Manager[T]
	N     int
	State core.Edge[T]

	gateCache      map[string]core.Edge[T]
	pruneHighWater int
}

// EnableAutoPrune garbage-collects the manager whenever its unique table
// exceeds highWater nodes after a gate application, keeping the current
// state and all cached gate diagrams alive. Pass 0 to disable (the default).
func (s *Simulator[T]) EnableAutoPrune(highWater int) { s.pruneHighWater = highWater }

// New returns a simulator initialized to |0…0⟩.
func New[T any](m *core.Manager[T], n int) *Simulator[T] {
	return &Simulator[T]{
		M:         m,
		N:         n,
		State:     m.BasisState(n, 0),
		gateCache: make(map[string]core.Edge[T]),
	}
}

// Reset returns the state to |0…0⟩.
func (s *Simulator[T]) Reset() { s.State = s.M.BasisState(s.N, 0) }

// baseFor resolves the 2×2 base matrix of a gate in the manager's ring.
func baseFor[T any](m *core.Manager[T], g circuit.Gate) ([2][2]T, error) {
	if ex, ok := gates.Exact(g.Name); ok {
		return gates.BaseFor(m, ex), nil
	}
	u, err := gates.Numeric(g.Name, g.Params)
	if err != nil {
		return [2][2]T{}, err
	}
	var out [2][2]T
	for i := range u {
		for j := range u[i] {
			v, ok := m.R.FromComplex(u[i][j])
			if !ok {
				return out, fmt.Errorf(
					"sim: gate %q is not exactly representable in this ring; compile it to Clifford+T first (internal/synth)",
					g.Name)
			}
			out[i][j] = v
		}
	}
	return out, nil
}

func gateKey(g circuit.Gate, n int) string {
	var sb strings.Builder
	sb.WriteString(g.Name)
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(n))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(g.Target))
	for _, c := range g.Controls {
		sb.WriteByte(',')
		if c.Neg {
			sb.WriteByte('!')
		}
		sb.WriteString(strconv.Itoa(c.Qubit))
	}
	for _, p := range g.Params {
		sb.WriteByte(';')
		sb.WriteString(strconv.FormatFloat(p, 'x', -1, 64))
	}
	return sb.String()
}

// GateDD returns (and caches) the diagram of a gate over n qubits.
func (s *Simulator[T]) GateDD(g circuit.Gate) (core.Edge[T], error) {
	key := gateKey(g, s.N)
	if dd, ok := s.gateCache[key]; ok {
		return dd, nil
	}
	base, err := baseFor(s.M, g)
	if err != nil {
		return core.Edge[T]{}, err
	}
	ctrls := make([]gates.Control, len(g.Controls))
	for i, c := range g.Controls {
		ctrls[i] = gates.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	dd := gates.BuildDD(s.M, s.N, base, g.Target, ctrls)
	s.gateCache[key] = dd
	return dd, nil
}

// Apply evolves the state by one gate.
func (s *Simulator[T]) Apply(g circuit.Gate) error {
	dd, err := s.GateDD(g)
	if err != nil {
		return err
	}
	s.State = s.M.Mul(dd, s.State)
	if s.pruneHighWater > 0 && s.M.Stats().UniqueNodes > s.pruneHighWater {
		roots := make([]core.Edge[T], 0, len(s.gateCache)+1)
		roots = append(roots, s.State)
		for _, e := range s.gateCache {
			roots = append(roots, e)
		}
		s.M.Prune(roots...)
	}
	return nil
}

// Run applies a whole circuit, invoking hook (if non-nil) after every gate.
// The hook receives the 0-based index of the gate just applied; returning
// false stops the run early (Run then returns ErrStopped).
func (s *Simulator[T]) Run(c *circuit.Circuit, hook func(i int, g circuit.Gate) bool) error {
	if c.N != s.N {
		return fmt.Errorf("sim: circuit has %d qubits, simulator has %d", c.N, s.N)
	}
	for i, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			return fmt.Errorf("sim: gate %d (%s): %w", i, g, err)
		}
		if hook != nil && !hook(i, g) {
			return ErrStopped
		}
	}
	return nil
}

// ErrStopped is returned by Run when the per-gate hook requested an early
// stop.
var ErrStopped = fmt.Errorf("sim: stopped by hook")

// BuildUnitary computes the full circuit unitary by matrix-matrix
// multiplication (gates applied in order, i.e. U = G_k ··· G_1).
func BuildUnitary[T any](m *core.Manager[T], c *circuit.Circuit) (core.Edge[T], error) {
	s := New(m, c.N)
	u := m.Identity(c.N)
	for i, g := range c.Gates {
		dd, err := s.GateDD(g)
		if err != nil {
			return core.Edge[T]{}, fmt.Errorf("sim: gate %d (%s): %w", i, g, err)
		}
		u = m.Mul(dd, u)
	}
	return u, nil
}

// Equivalent checks two circuits for exact functional equivalence by
// building both unitaries and comparing root edges — the O(1) comparison the
// paper highlights as a payoff of canonical exact diagrams.
func Equivalent[T any](m *core.Manager[T], a, b *circuit.Circuit) (bool, error) {
	if a.N != b.N {
		return false, nil
	}
	ua, err := BuildUnitary(m, a)
	if err != nil {
		return false, err
	}
	ub, err := BuildUnitary(m, b)
	if err != nil {
		return false, err
	}
	return m.RootsEqual(ua, ub), nil
}

// EquivalentUpToPhase is Equivalent modulo a global phase — the relation
// that matters physically (e.g. a circuit compiled via Rz-based phase gates
// differs from its P-gate original by exactly a global phase).
func EquivalentUpToPhase[T any](m *core.Manager[T], a, b *circuit.Circuit) (bool, error) {
	if a.N != b.N {
		return false, nil
	}
	ua, err := BuildUnitary(m, a)
	if err != nil {
		return false, err
	}
	ub, err := BuildUnitary(m, b)
	if err != nil {
		return false, err
	}
	return m.RootsEqualUpToPhase(ua, ub), nil
}
