package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/circuit"
)

// ghzRamp is the table-saturating workload of the thrash-guard test: the
// state grows monotonically, so every auto-prune sweep reclaims little and
// the guard keeps raising the watermark.
func ghzRamp(n int) *circuit.Circuit {
	c := circuit.New("ghz", n)
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	return c
}

// TestResetRestoresAutoPruneWatermark is the regression test for the
// sticky-thrash-guard bug: one table-saturating run inflates the watermark
// (by design), but Reset used to keep the inflated value, so a reused
// simulator effectively never pruned again. Reset must restore the
// configured watermark; the raise is run-local.
func TestResetRestoresAutoPruneWatermark(t *testing.T) {
	const n, configured = 16, 4
	c := ghzRamp(n)
	m := numM(0)
	s := New(m, n)
	s.EnableAutoPrune(configured)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	if s.pruneHighWater <= configured {
		t.Fatalf("precondition: thrash guard did not inflate the watermark (%d)", s.pruneHighWater)
	}
	prunesFirst := m.Stats().Prunes
	if prunesFirst == 0 {
		t.Fatal("precondition: auto-prune never ran")
	}

	s.Reset()
	if s.pruneHighWater != configured {
		t.Fatalf("Reset kept watermark %d, want configured %d", s.pruneHighWater, configured)
	}

	// And the restored watermark must actually bite: a second saturating run
	// on the reused simulator prunes again instead of free-running.
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	if prunes := m.Stats().Prunes; prunes <= prunesFirst {
		t.Fatalf("reused simulator never pruned (prunes %d -> %d)", prunesFirst, prunes)
	}
}

// TestResetUnpinsGateCache is the regression test for the pinned-gate-cache
// bug: cached gate diagrams are auto-prune roots, so a Reset that kept the
// cache retained every dead gate DD of the previous circuit forever across
// cross-circuit reuse. Reset must drop the cache, and a subsequent prune
// must reclaim the orphaned diagrams down to the live state. (Apply itself
// no longer builds gate diagrams — the local path has no edges to pin — so
// the cache is populated explicitly through GateDD, its remaining entry
// point.)
func TestResetUnpinsGateCache(t *testing.T) {
	const n = 8
	c := algorithms.Grover(n, 13, 1)
	m := numM(0)
	s := New(m, n)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates {
		if _, err := s.GateDD(g); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.gateCache) == 0 {
		t.Fatal("precondition: no gate diagrams were cached")
	}

	s.Reset()
	if got := len(s.gateCache); got != 0 {
		t.Fatalf("Reset kept %d cached gate diagrams pinned", got)
	}

	// With the cache unpinned, pruning against the live state alone must
	// sweep the old circuit's gate diagrams: only the basis state survives.
	removed := m.Prune(s.State)
	if removed == 0 {
		t.Fatal("prune after Reset reclaimed nothing")
	}
	if live, state := m.Stats().UniqueNodes, s.State.NodeCount(); live != state {
		t.Fatalf("table holds %d nodes after Reset+Prune, want the %d live state nodes", live, state)
	}
}

// countingCtx wraps a cancellable context and counts Err() polls, proving
// the context is actually consulted (not just carried around).
type countingCtx struct {
	context.Context
	polls atomic.Int64
}

func (c *countingCtx) Err() error {
	c.polls.Add(1)
	return c.Context.Err()
}

// TestRunCtxPollsContextInsideMul asserts in-recursion cancellation through
// the unconditionally installed manager context: the hook cancels at gate
// 801 (not a between-gates poll point; those fire at multiples of 8), and
// the run must die inside one of the node-heavy Mul recursions of gates
// 802–806 — before gate 807 completes, which is how far the old
// between-gates-only polling would let it get.
func TestRunCtxPollsContextInsideMul(t *testing.T) {
	m := numM(0)
	s := New(m, 10)
	c := algorithms.Grover(10, 500, 0)
	if c.Len() < 810 {
		t.Fatalf("circuit too short for the scenario: %d gates", c.Len())
	}
	inner, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx := &countingCtx{Context: inner}
	last := -1
	err := s.RunCtx(ctx, c, func(i int, g circuit.Gate) bool {
		last = i
		if i == 801 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// By gate 800 a Grover(10) state at ε=0 creates hundreds of fresh nodes
	// per Mul, so the every-256-insertions governor poll must fire well
	// before the 6 remaining gates to the next between-gates check pass.
	if last >= 807 {
		t.Fatalf("cancellation only took effect at the between-gates poll (last gate %d); in-recursion polling is dead", last)
	}
	if ctx.polls.Load() == 0 {
		t.Fatal("context was never polled")
	}
}
