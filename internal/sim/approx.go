package sim

import (
	"errors"
	"math"

	"repro/internal/circuit"
	"repro/internal/core"
)

// Fidelity-bounded graceful degradation. When a run would die on a memory
// budget, the simulator can instead shed the lowest-contribution parts of the
// live state (core.Approximate) and keep going, as long as the product of
// per-event fidelities stays above a caller-chosen floor. The policy is off
// by default: an unconfigured simulator fails on budget pressure exactly as
// before.

// DefaultMaxApproxEvents bounds the number of approximation events per run
// when ApproxPolicy.MaxEvents is left zero.
const DefaultMaxApproxEvents = 8

// ApproxPolicy configures fidelity-bounded approximation.
type ApproxPolicy struct {
	// MinFidelity is the floor for the run-wide retained fidelity (the
	// product of per-event fidelities). Must be in (0, 1); 0 disables
	// approximation, and 1 leaves no mass to shed.
	MinFidelity float64
	// MaxEvents caps approximation events per run (0 means
	// DefaultMaxApproxEvents). The cap keeps a hopelessly tight budget from
	// degenerating into an approximate-retry loop.
	MaxEvents int
}

// ApproxState is the run-local approximation accounting.
type ApproxState struct {
	// Events counts approximation events so far in this run.
	Events int
	// Fidelity is the product of the per-event retained fidelities — a
	// guaranteed floor on the fidelity of the current state against the
	// ideal (each event's fidelity is exact for the state it acted on;
	// the product composes those per-step guarantees). 1 when no event
	// has fired.
	Fidelity float64
	// Exact reports that every contributing per-event fidelity was computed
	// with exact ring arithmetic. Vacuously true while Events is 0.
	Exact bool
}

// EnableApproximation installs the approximation policy. Like
// EnableAutoPrune it is a configuration call: the policy persists across
// Reset, while the accounting (Approximation) is cleared per run.
func (s *Simulator[T]) EnableApproximation(p ApproxPolicy) {
	s.approxPolicy = p
	s.approxState = freshApproxState()
}

// Approximation returns the approximation accounting for the current run.
func (s *Simulator[T]) Approximation() ApproxState { return s.approxState }

func freshApproxState() ApproxState { return ApproxState{Fidelity: 1, Exact: true} }

// approxRetries is the number of shed-then-retry attempts applyWithFallback
// makes for one refused gate: the first sheds down to √remaining (half the
// remaining fidelity budget, log-scale), the second spends the rest.
const approxRetries = 2

// applyWithFallback is Apply plus the budget-pressure relief valve: when a
// gate is refused on a memory limit (nodes, weights, bytes — never the
// deadline, which approximation cannot buy back), the live state is
// approximated within the remaining fidelity budget and the gate retried,
// at most approxRetries times.
func (s *Simulator[T]) applyWithFallback(g circuit.Gate) error {
	err := s.Apply(g)
	if err == nil || s.approxPolicy.MinFidelity <= 0 {
		return err
	}
	for attempt := 1; attempt <= approxRetries; attempt++ {
		var be *core.BudgetError
		if !errors.As(err, &be) || be.Limit == "deadline" {
			return err
		}
		if !s.shedLoad(attempt == approxRetries) {
			return err
		}
		if err = s.Apply(g); err == nil {
			return nil
		}
	}
	return err
}

// shedLoad runs one approximation event on the live state: it sheds the
// lowest-contribution edges down to a per-event target chosen so the
// run-wide product stays above MinFidelity, then prunes the replaced nodes.
// With spendAll the event may use the entire remaining fidelity budget;
// otherwise it targets √remaining, keeping headroom for a second event.
// Returns false when no event fired (policy off, caps hit, no remaining
// budget, or nothing shed-able at the target).
func (s *Simulator[T]) shedLoad(spendAll bool) bool {
	p := s.approxPolicy
	if p.MinFidelity <= 0 || p.MinFidelity >= 1 {
		return false
	}
	maxEvents := p.MaxEvents
	if maxEvents <= 0 {
		maxEvents = DefaultMaxApproxEvents
	}
	if s.approxState.Events >= maxEvents {
		return false
	}
	// remaining is the fidelity this event may still give up: the floor
	// divided by what previous events already spent.
	remaining := p.MinFidelity / s.approxState.Fidelity
	if remaining >= 1 {
		return false // budget exhausted by earlier events
	}
	target := remaining
	if !spendAll {
		target = math.Sqrt(remaining)
	}
	approx, res, err := s.M.Approximate(s.State, s.N, target)
	if err != nil || res.ZeroedEdges == 0 {
		return false
	}
	s.State = approx
	s.approxState.Events++
	s.approxState.Fidelity *= res.Fidelity
	if !res.Exact {
		s.approxState.Exact = false
	}
	s.pruneNow()
	return true
}

// pruneNow sweeps everything not reachable from the live state and the
// cached gate diagrams — the originals replaced by an approximation event
// are exactly what it collects.
func (s *Simulator[T]) pruneNow() int {
	roots := make([]core.Edge[T], 0, len(s.gateCache)+1)
	roots = append(roots, s.State)
	for _, e := range s.gateCache {
		roots = append(roots, e)
	}
	return s.M.Prune(roots...)
}
