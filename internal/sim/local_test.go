package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
)

// TestApplyMatchesMulOracle: the simulator's local-apply fast path lands on
// the same canonical state as the classic GateDD+Mul pipeline, gate by gate,
// on random Clifford+T circuits. The core-level differential tests
// (core/apply_test.go) cover ApplyLocal against BuildDD+Mul per gate; this
// one covers the sim wiring — LocalGate caching, identity skipping, the
// per-gate error paths — end to end.
func TestApplyMatchesMulOracle(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 6; trial++ {
		n := 3 + r.Intn(3)
		c := randomCliffordT(r, n, 50)

		fast := New(algM(core.NormLeft), n)
		if err := fast.Run(c, nil); err != nil {
			t.Fatal(err)
		}

		oracle := New(algM(core.NormLeft), n)
		for i, g := range c.Gates {
			dd, err := oracle.GateDD(g)
			if err != nil {
				t.Fatalf("trial %d gate %d: %v", trial, i, err)
			}
			oracle.State = oracle.M.Mul(dd, oracle.State)
		}

		if !core.CrossEqual(fast.M, fast.State, oracle.M, oracle.State) {
			t.Fatalf("trial %d: local apply diverged from GateDD+Mul oracle", trial)
		}
	}
}

// TestBuildUnitaryMatchesMulOracle: BuildUnitary's matrix-side local apply
// agrees with composing the gate diagrams by Mul.
func TestBuildUnitaryMatchesMulOracle(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	c := randomCliffordT(r, 4, 30)

	m := algM(core.NormLeft)
	u, err := BuildUnitary(m, c)
	if err != nil {
		t.Fatal(err)
	}

	mo := algM(core.NormLeft)
	s := New(mo, c.N)
	want := mo.Identity(c.N)
	for i, g := range c.Gates {
		dd, err := s.GateDD(g)
		if err != nil {
			t.Fatalf("gate %d: %v", i, err)
		}
		want = mo.Mul(dd, want)
	}

	if !core.CrossEqual(m, u, mo, want) {
		t.Fatal("BuildUnitary diverged from the Mul-composition oracle")
	}
}

// TestIdentityGatesSkipped: gates whose base block is exactly the identity —
// rz(0), u3(0,0,0), bare or controlled — are skipped without touching the
// state diagram at all.
func TestIdentityGatesSkipped(t *testing.T) {
	m := numM(0)
	s := New(m, 2)
	if err := s.Apply(circuit.Gate{Name: "h", Target: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(circuit.Gate{Name: "x", Target: 1,
		Controls: []circuit.Control{{Qubit: 0}}}); err != nil {
		t.Fatal(err)
	}
	before := s.State
	identities := []circuit.Gate{
		{Name: "rz", Target: 0, Params: []float64{0}},
		{Name: "u3", Target: 1, Params: []float64{0, 0, 0}},
		{Name: "rz", Target: 1, Params: []float64{0},
			Controls: []circuit.Control{{Qubit: 0}}},
	}
	for _, g := range identities {
		lg, err := s.LocalGate(g)
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if !lg.IsIdentity() {
			t.Fatalf("%s: not recognized as identity", g)
		}
		if err := s.Apply(g); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if s.State != before {
			t.Fatalf("%s: identity gate changed the state edge", g)
		}
	}
}
