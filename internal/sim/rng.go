package sim

// Deterministic random-number generation for the shots pipeline.
//
// The engine must reproduce a histogram bit-for-bit given (circuit, shots,
// seed) — across runs, across hosts, and independent of how shots are
// scheduled. math/rand gives no such guarantee across Go versions, so the
// shots engine carries its own generator: splitmix64, a fixed published
// algorithm with a one-word state. Each shot draws from its own stream,
// forked from (seed, shot index), so executing shots in any order — or
// splitting them across workers — consumes exactly the same uniforms per
// shot as a serial run.

// goldenGamma is the splitmix64 state increment (2^64 / φ, odd).
const goldenGamma = 0x9e3779b97f4a7c15

// RNG is a splitmix64 generator. The zero value is a valid generator
// (stream of seed 0); NewRNG and ForkRNG are the intended constructors.
type RNG struct {
	state uint64
}

// NewRNG returns the generator for a whole-run stream.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// ForkRNG returns the generator for one shot's private stream. The +1
// keeps shot 0 of seed s distinct from the whole-run stream NewRNG(s).
func ForkRNG(seed int64, shot int) *RNG {
	return &RNG{state: uint64(seed) + (uint64(shot)+1)*goldenGamma}
}

// Uint64 advances the state by the golden gamma and returns the mixed
// output (splitmix64 finalizer).
func (r *RNG) Uint64() uint64 {
	r.state += goldenGamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform in [0, 1) with 53 random bits, the classic
// top-bits construction.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
