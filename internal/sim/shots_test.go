package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
)

// teleportCircuit builds the canonical dynamic test circuit: teleport the
// state X|0⟩ = |1⟩ from qubit 0 to qubit 2 through mid-circuit measurement
// and classical feedback, then read out the destination.
//
// Classical bits: c0 = measure of q0, c1 = measure of q1, c2 = read-out of
// q2. Histogram keys are %03b over the creg, so c2 is the leftmost
// character and must be '1' in every shot.
func teleportCircuit() *circuit.Circuit {
	c := circuit.New("teleport", 3)
	c.X(0)          // payload |1⟩
	c.H(1).CX(1, 2) // Bell pair on (q1, q2)
	c.CX(0, 1).H(0) // Bell-basis rotation of (q0, q1)
	c.Measure(0, 0)
	c.Measure(1, 1)
	c.Append(circuit.Gate{Name: "x", Target: 2,
		Cond: &circuit.Cond{Offset: 1, Width: 1, Value: 1}})
	c.Append(circuit.Gate{Name: "z", Target: 2,
		Cond: &circuit.Cond{Offset: 0, Width: 1, Value: 1}})
	c.Measure(2, 2)
	return c
}

// TestRNGDeterminism pins the splitmix64 streams: reproducible, seed- and
// shot-sensitive, and Float64 in [0, 1).
func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced the same first draw")
	}
	if ForkRNG(7, 0).Uint64() == ForkRNG(7, 1).Uint64() {
		t.Error("different shots produced the same first draw")
	}
	if ForkRNG(7, 0).Uint64() == NewRNG(7).Uint64() {
		t.Error("shot 0 collides with the whole-run stream")
	}
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if u := r.Float64(); u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

// TestTeleportationShots: the headline dynamic-circuit correctness check.
// Teleporting |1⟩ must land q2 in |1⟩ regardless of the two measurement
// outcomes, so every histogram key starts with '1'; the Bell measurement
// outcomes (the two rightmost characters) are uniform, so with enough
// shots all four corrections appear.
func TestTeleportationShots(t *testing.T) {
	c := teleportCircuit()
	if !c.Dynamic() {
		t.Fatal("teleportation circuit should be dynamic")
	}
	run := func(t *testing.T, res *ShotsResult, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategyResimulate {
			t.Fatalf("strategy = %q, want %q (dynamic circuit)", res.Strategy, StrategyResimulate)
		}
		if res.KeyBits != 3 {
			t.Fatalf("KeyBits = %d, want 3", res.KeyBits)
		}
		total := 0
		for key, n := range res.Counts {
			if len(key) != 3 || !strings.HasPrefix(key, "1") {
				t.Errorf("key %q: teleported qubit must read 1", key)
			}
			total += n
		}
		if total != 400 {
			t.Errorf("counts sum to %d, want 400", total)
		}
		for _, key := range []string{"100", "101", "110", "111"} {
			if res.Counts[key] == 0 {
				t.Errorf("correction branch %q never exercised in 400 shots", key)
			}
		}
	}
	opt := ShotOptions{Shots: 400, Seed: 11}
	t.Run("alg", func(t *testing.T) {
		res, err := SampleShots(algM(core.NormLeft), c, opt)
		run(t, res, err)
	})
	t.Run("num", func(t *testing.T) {
		res, err := SampleShots(numM(1e-12), c, opt)
		run(t, res, err)
	})
}

// TestShotsDeterministic: identical (circuit, shots, seed) twice on fresh
// managers gives an identical histogram.
func TestShotsDeterministic(t *testing.T) {
	c := teleportCircuit()
	opt := ShotOptions{Shots: 200, Seed: 5}
	a, err := SampleShots(algM(core.NormLeft), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleShots(algM(core.NormLeft), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatalf("same seed, different histograms:\n%v\n%v", a.Counts, b.Counts)
	}
}

// TestCrossStrategyIdentity: on a static trailing-measure circuit both
// strategies apply, and the byte-identity contract says the same seed must
// give the same histogram. The measure block maps clbits crosswise
// (q0→c1, q1→c0) to exercise the read-out bit routing.
func TestCrossStrategyIdentity(t *testing.T) {
	c := circuit.New("bell", 2).H(0).CX(0, 1)
	c.Measure(0, 1)
	c.Measure(1, 0)
	if c.Dynamic() {
		t.Fatal("bell+readout should not be dynamic")
	}
	m := algM(core.NormLeft)
	samp, err := SampleShots(m, c, ShotOptions{Shots: 300, Seed: 9, Strategy: StrategySample})
	if err != nil {
		t.Fatal(err)
	}
	resim, err := SampleShots(algM(core.NormLeft), c, ShotOptions{Shots: 300, Seed: 9, Strategy: StrategyResimulate})
	if err != nil {
		t.Fatal(err)
	}
	if samp.Strategy != StrategySample || resim.Strategy != StrategyResimulate {
		t.Fatalf("strategies = %q, %q", samp.Strategy, resim.Strategy)
	}
	if !reflect.DeepEqual(samp.Counts, resim.Counts) {
		t.Fatalf("strategies disagree:\nsample:     %v\nresimulate: %v", samp.Counts, resim.Counts)
	}
	// Bell pair: only correlated outcomes, both present.
	for key := range samp.Counts {
		if key != "00" && key != "11" {
			t.Errorf("impossible Bell outcome %q", key)
		}
	}
	if samp.Counts["00"] == 0 || samp.Counts["11"] == 0 {
		t.Errorf("lopsided Bell histogram: %v", samp.Counts)
	}
}

// TestShotsNoMeasure: a circuit without any measurement histograms the
// full basis index (qubit 0 leftmost).
func TestShotsNoMeasure(t *testing.T) {
	c := circuit.New("ghz", 3).H(0).CX(0, 1).CX(1, 2)
	res, err := SampleShots(algM(core.NormLeft), c, ShotOptions{Shots: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategySample || res.KeyBits != 3 {
		t.Fatalf("strategy %q, KeyBits %d", res.Strategy, res.KeyBits)
	}
	for key := range res.Counts {
		if key != "000" && key != "111" {
			t.Errorf("impossible GHZ outcome %q", key)
		}
	}
	if res.Counts["000"] == 0 || res.Counts["111"] == 0 {
		t.Errorf("lopsided GHZ histogram: %v", res.Counts)
	}
}

// TestShotsReset: reset mid-circuit forces the qubit back to |0⟩, so the
// second measurement is deterministic while the first is random.
func TestShotsReset(t *testing.T) {
	c := circuit.New("reset", 1)
	c.H(0)
	c.Measure(0, 0)
	c.Reset(0)
	c.Measure(0, 1)
	res, err := SampleShots(numM(1e-12), c, ShotOptions{Shots: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for key := range res.Counts {
		// Key = c1 c0; c1 (post-reset read-out) must be 0.
		if key[0] != '0' {
			t.Errorf("post-reset measurement read 1 (key %q)", key)
		}
	}
	if res.Counts["00"] == 0 || res.Counts["01"] == 0 {
		t.Errorf("first measurement not random: %v", res.Counts)
	}
}

// TestShotsValidation covers the error paths of the engine entry point.
func TestShotsValidation(t *testing.T) {
	m := algM(core.NormLeft)
	bell := circuit.New("bell", 2).H(0).CX(0, 1)
	if _, err := SampleShots(m, bell, ShotOptions{Shots: 0, Seed: 1}); err == nil {
		t.Error("shots=0 accepted")
	}
	if _, err := SampleShots(m, bell, ShotOptions{Shots: 10, Strategy: "bogus"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	dyn := circuit.New("dyn", 1).H(0)
	dyn.Measure(0, 0)
	dyn.Reset(0)
	if _, err := SampleShots(m, dyn, ShotOptions{Shots: 10, Strategy: StrategySample}); err == nil {
		t.Error("sample strategy accepted for a dynamic circuit")
	}
	wide := circuit.New("wide", 1)
	wide.Measure(0, 70)
	if _, err := SampleShots(m, wide, ShotOptions{Shots: 1}); err == nil {
		t.Error("creg wider than 64 bits accepted")
	}
}

// TestShotsCancellation: a pre-cancelled context stops both strategies.
func TestShotsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bell := circuit.New("bell", 2).H(0).CX(0, 1)
	if _, err := SampleShotsCtx(ctx, algM(core.NormLeft), bell, ShotOptions{Shots: 10, Seed: 1}); err == nil {
		t.Error("sample strategy ignored cancelled context")
	}
	if _, err := SampleShotsCtx(ctx, algM(core.NormLeft), bell, ShotOptions{Shots: 10, Seed: 1, Strategy: StrategyResimulate}); err == nil {
		t.Error("resimulate strategy ignored cancelled context")
	}
}
