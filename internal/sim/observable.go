package sim

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gates"
)

// Observables: Pauli-string operators as diagrams and expectation values —
// the read-out side of variational / phase-estimation workloads, computed
// entirely inside the representation (exactly, for the algebraic ring).

// PauliDD builds the diagram of the n-qubit operator ⊗ᵢ Pᵢ, where paulis
// maps qubit index to 'X', 'Y' or 'Z' (identity elsewhere).
func PauliDD[T any](m *core.Manager[T], n int, paulis map[int]byte) (core.Edge[T], error) {
	op := m.Identity(n)
	for q, p := range paulis {
		if q < 0 || q >= n {
			return core.Edge[T]{}, fmt.Errorf("sim: Pauli qubit %d out of range", q)
		}
		var g gates.Matrix2
		switch p {
		case 'X':
			g = gates.X
		case 'Y':
			g = gates.Y
		case 'Z':
			g = gates.Z
		case 'I':
			continue
		default:
			return core.Edge[T]{}, fmt.Errorf("sim: unknown Pauli %q", string(p))
		}
		dd := gates.BuildDD(m, n, gates.BaseFor(m, g), q, nil)
		op = m.Mul(dd, op)
	}
	return op, nil
}

// PauliExpectation returns ⟨ψ|P|ψ⟩ / ⟨ψ|ψ⟩ for the Pauli string P. For a
// Hermitian P the result is real; the value is returned as the ring scalar
// so exact rings yield exact expectations.
func PauliExpectation[T any](m *core.Manager[T], v core.Edge[T], n int, paulis map[int]byte) (T, error) {
	var zero T
	op, err := PauliDD(m, n, paulis)
	if err != nil {
		return zero, err
	}
	pv := m.Mul(op, v)
	num := m.InnerProduct(v, pv)
	den := m.InnerProduct(v, v)
	if m.R.IsZero(den) {
		return zero, fmt.Errorf("sim: expectation of the zero vector")
	}
	return m.R.Div(num, den), nil
}

// EnergyExpectation returns ⟨ψ|H|ψ⟩ / ⟨ψ|ψ⟩ for a Pauli-term Hamiltonian
// whose system register occupies the last h.Qubits qubits of the n-qubit
// state (offset shifts the term indices; pass n − h.Qubits to address a
// trailing system register, 0 when the state is the system register).
func EnergyExpectation[T any](m *core.Manager[T], v core.Edge[T], n int, h algorithms.Hamiltonian, offset int) (float64, error) {
	e := 0.0
	for _, term := range h.Terms {
		shifted := make(map[int]byte, len(term.Paulis))
		for q, p := range term.Paulis {
			shifted[q+offset] = p
		}
		val, err := PauliExpectation(m, v, n, shifted)
		if err != nil {
			return 0, err
		}
		e += term.Coefficient * real(m.R.Complex128(val))
	}
	return e, nil
}

// ApplyCircuitToState runs c on an explicit initial state diagram (rather
// than |0…0⟩) and returns the final state.
func ApplyCircuitToState[T any](m *core.Manager[T], c *circuit.Circuit, v core.Edge[T]) (core.Edge[T], error) {
	s := New(m, c.N)
	s.State = v
	if err := s.Run(c, nil); err != nil {
		return core.Edge[T]{}, err
	}
	return s.State, nil
}
