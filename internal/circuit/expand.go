package circuit

import "fmt"

// Multi-control expansion: rewrite gates with more than the standard number
// of control lines (or with negative controls) into the portable gate set
// {x, ccx, cx, and singly-controlled base gates}, using a V-chain of
// Toffolis over freshly appended ancilla qubits. This makes generated
// circuits (Grover's multi-controlled Z, the walk's control cascades,
// exact-synthesis output) expressible in plain OpenQASM 2.0.

// ExpandMultiControls returns an equivalent circuit over n + a qubits
// (ancillas appended at the end, starting and ending in |0⟩) in which
//   - negative controls are removed (X conjugation),
//   - x gates have at most 2 controls,
//   - z keeps at most 1 control, and t/s/sdg/tdg under control become
//     singly-controlled phase gates,
//   - every other base gate has at most 1 control.
//
// The number of appended ancillas is the maximum over gates of
// max(0, controls − 2) for x gates and max(0, controls − 1) otherwise.
func ExpandMultiControls(c *Circuit) (*Circuit, error) {
	ancillas := 0
	for _, g := range c.Gates {
		if need := ancillasFor(g); need > ancillas {
			ancillas = need
		}
	}
	out := New(c.Name+"_expanded", c.N+ancillas)
	out.Cbits = c.Cbits
	for _, g := range c.Gates {
		if err := expandGate(out, g, c.N); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func ancillasFor(g Gate) int {
	k := len(g.Controls)
	limit := 1
	if g.Name == "x" {
		limit = 2
	}
	if k <= limit {
		return 0
	}
	// The V-chain computes the AND of k controls into one ancilla using
	// k − 1 ancillas in total.
	return k - 1
}

// expandGate appends the rewritten form of g to out. Measure and reset pass
// through verbatim (they have no controls to expand); a classical condition
// is reattached to every gate the expansion emits, so the whole rewritten
// block fires all-or-nothing exactly like the original op.
func expandGate(out *Circuit, g Gate, n int) error {
	if g.IsMeasure() || g.IsReset() {
		out.Append(g)
		return nil
	}
	if g.Cond != nil {
		start := len(out.Gates)
		bare := g
		bare.Cond = nil
		if err := expandUnitary(out, bare, n); err != nil {
			return err
		}
		for i := start; i < len(out.Gates); i++ {
			out.Gates[i].Cond = g.Cond
		}
		return nil
	}
	return expandUnitary(out, g, n)
}

// expandUnitary appends the rewritten form of an unconditional unitary gate.
func expandUnitary(out *Circuit, g Gate, n int) error {
	// Remove negative controls by X conjugation.
	var flips []int
	ctrls := make([]Control, len(g.Controls))
	for i, ct := range g.Controls {
		ctrls[i] = Control{Qubit: ct.Qubit}
		if ct.Neg {
			flips = append(flips, ct.Qubit)
		}
	}
	for _, q := range flips {
		out.X(q)
	}
	defer func() {
		for i := len(flips) - 1; i >= 0; i-- {
			out.X(flips[i])
		}
	}()

	limit := 1
	if g.Name == "x" {
		limit = 2
	}
	if len(ctrls) <= limit {
		out.Append(normalizeControlled(Gate{Name: g.Name, Target: g.Target, Controls: ctrls, Params: g.Params}))
		return nil
	}

	// V-chain: and-accumulate the controls into ancillas n, n+1, ….
	anc := n
	out.Append(Gate{Name: "x", Target: anc,
		Controls: []Control{{Qubit: ctrls[0].Qubit}, {Qubit: ctrls[1].Qubit}}})
	chain := []Gate{out.Gates[len(out.Gates)-1]}
	top := anc
	for i := 2; i < len(ctrls); i++ {
		next := anc + i - 1
		out.Append(Gate{Name: "x", Target: next,
			Controls: []Control{{Qubit: ctrls[i].Qubit}, {Qubit: top}}})
		chain = append(chain, out.Gates[len(out.Gates)-1])
		top = next
	}
	// Apply the base gate controlled on the accumulated AND.
	out.Append(normalizeControlled(Gate{Name: g.Name, Target: g.Target,
		Controls: []Control{{Qubit: top}}, Params: g.Params}))
	// Uncompute the chain.
	for i := len(chain) - 1; i >= 0; i-- {
		out.Append(chain[i])
	}
	return nil
}

// normalizeControlled rewrites controlled diagonal gates into the
// parametric phase form QASM can express (controlled-T → cu1(π/4) etc.).
func normalizeControlled(g Gate) Gate {
	if len(g.Controls) == 0 {
		return g
	}
	const pi = 3.141592653589793
	switch g.Name {
	case "t":
		return Gate{Name: "p", Target: g.Target, Controls: g.Controls, Params: []float64{pi / 4}}
	case "tdg":
		return Gate{Name: "p", Target: g.Target, Controls: g.Controls, Params: []float64{-pi / 4}}
	case "s":
		return Gate{Name: "p", Target: g.Target, Controls: g.Controls, Params: []float64{pi / 2}}
	case "sdg":
		return Gate{Name: "p", Target: g.Target, Controls: g.Controls, Params: []float64{-pi / 2}}
	}
	return g
}

// Validate checks structural invariants of a circuit (duplicate controls,
// ranges); the builder enforces these, but circuits assembled from raw Gate
// values (parsers, synthesizers) can use it as a safety net.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if g.Target < 0 || g.Target >= c.N {
			return fmt.Errorf("circuit: gate %d target %d out of range", i, g.Target)
		}
		seen := map[int]bool{g.Target: true}
		for _, ct := range g.Controls {
			if ct.Qubit < 0 || ct.Qubit >= c.N {
				return fmt.Errorf("circuit: gate %d control %d out of range", i, ct.Qubit)
			}
			if seen[ct.Qubit] {
				return fmt.Errorf("circuit: gate %d reuses qubit %d", i, ct.Qubit)
			}
			seen[ct.Qubit] = true
		}
		if g.IsMeasure() {
			if g.Clbit < 0 || g.Clbit >= c.Cbits {
				return fmt.Errorf("circuit: op %d classical bit %d out of range [0,%d)", i, g.Clbit, c.Cbits)
			}
			if len(g.Controls) > 0 || len(g.Params) > 0 {
				return fmt.Errorf("circuit: op %d: measure takes no controls or parameters", i)
			}
		}
		if g.IsReset() && (len(g.Controls) > 0 || len(g.Params) > 0) {
			return fmt.Errorf("circuit: op %d: reset takes no controls or parameters", i)
		}
		if cd := g.Cond; cd != nil {
			if cd.Offset < 0 || cd.Width < 1 || cd.Width > 64 || cd.Offset+cd.Width > c.Cbits {
				return fmt.Errorf("circuit: op %d condition range [%d:%d) out of range [0,%d)",
					i, cd.Offset, cd.Offset+cd.Width, c.Cbits)
			}
			if cd.Width < 64 && cd.Value >= 1<<uint(cd.Width) {
				return fmt.Errorf("circuit: op %d condition value %d does not fit %d bit(s)", i, cd.Value, cd.Width)
			}
		}
	}
	return nil
}
