package circuit

import "testing"

// TestChainFinalLinkIsFingerprint pins the back-compat identity the prefix
// subsystem rests on: Chain(c)[i] is the fingerprint of the i-gate prefix,
// and the last link is the whole-circuit Fingerprint.
func TestChainFinalLinkIsFingerprint(t *testing.T) {
	c := New("ghz+", 3).H(0).CX(0, 1).CX(1, 2).T(2).Rz(0.25, 0)
	links := Chain(c)
	if len(links) != c.Len()+1 {
		t.Fatalf("chain has %d links, want %d", len(links), c.Len()+1)
	}
	for i := 0; i <= c.Len(); i++ {
		prefix := &Circuit{Name: "prefix", N: c.N, Cbits: c.Cbits, Gates: c.Gates[:i]}
		if links[i] != Fingerprint(prefix) {
			t.Errorf("link %d is not the fingerprint of the %d-gate prefix", i, i)
		}
	}
}

// TestChainGateEditInvalidatesSuffix is the incremental-invalidation
// property: editing gate j changes exactly the links past j — everything
// before the edit stays a valid checkpoint key, everything after is
// invalidated.
func TestChainGateEditInvalidatesSuffix(t *testing.T) {
	build := func() *Circuit {
		return New("base", 3).H(0).CX(0, 1).T(1).CX(1, 2).S(2).H(2)
	}
	base := Chain(build())
	for j := 0; j < build().Len(); j++ {
		edited := build()
		edited.Gates[j] = Gate{Name: "z", Target: edited.Gates[j].Target}
		got := Chain(edited)
		for i := 0; i <= j; i++ {
			if got[i] != base[i] {
				t.Errorf("edit at gate %d changed link %d before the edit", j, i)
			}
		}
		for i := j + 1; i < len(got); i++ {
			if got[i] == base[i] {
				t.Errorf("edit at gate %d left link %d unchanged", j, i)
			}
		}
	}
}

// TestChainExtensionSharesLinks: a circuit and any extension of it produce
// identical links over the shared prefix — the property that lets one
// circuit's checkpoint warm-start another.
func TestChainExtensionSharesLinks(t *testing.T) {
	a := New("a", 2).H(0).CX(0, 1)
	b := New("b", 2).H(0).CX(0, 1).T(0).S(1).CX(1, 0)
	ca, cb := Chain(a), Chain(b)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Errorf("link %d differs between a circuit and its extension", i)
		}
	}
	if got := SharedPrefixLen(a, b); got != a.Len() {
		t.Errorf("SharedPrefixLen = %d, want %d", got, a.Len())
	}
}

func TestSharedPrefixLen(t *testing.T) {
	ghz := func() *Circuit { return New("g", 3).H(0).CX(0, 1).CX(1, 2) }
	cases := []struct {
		name  string
		circs []*Circuit
		want  int
	}{
		{"none", nil, 0},
		{"single", []*Circuit{ghz()}, 3},
		{"identical", []*Circuit{ghz(), ghz()}, 3},
		{"diverge at 2", []*Circuit{ghz(), New("g", 3).H(0).CX(0, 1).T(2)}, 2},
		{"diverge at 0", []*Circuit{ghz(), New("g", 3).X(0).CX(0, 1).CX(1, 2)}, 0},
		{"different width", []*Circuit{ghz(), New("g", 4).H(0).CX(0, 1).CX(1, 2)}, 0},
		{"three-way", []*Circuit{
			ghz().T(0),
			ghz().S(0),
			ghz().T(0).T(1),
		}, 3},
		{"shorter member clamps", []*Circuit{ghz(), New("g", 3).H(0)}, 1},
	}
	for _, tc := range cases {
		if got := SharedPrefixLen(tc.circs...); got != tc.want {
			t.Errorf("%s: SharedPrefixLen = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestUnitaryPrefixLen(t *testing.T) {
	unitary := New("u", 2).H(0).CX(0, 1)
	if got := unitary.UnitaryPrefixLen(); got != 2 {
		t.Errorf("fully unitary circuit: UnitaryPrefixLen = %d, want 2", got)
	}
	measured := New("m", 2).H(0).Measure(0, 0).CX(0, 1)
	if got := measured.UnitaryPrefixLen(); got != 1 {
		t.Errorf("mid-circuit measure: UnitaryPrefixLen = %d, want 1", got)
	}
	reset := New("r", 2).H(0).CX(0, 1).Reset(0)
	if got := reset.UnitaryPrefixLen(); got != 2 {
		t.Errorf("trailing reset: UnitaryPrefixLen = %d, want 2", got)
	}
	cond := New("c", 2).H(0).Measure(0, 0).Append(Gate{
		Name: "x", Target: 1, Cond: &Cond{Offset: 0, Width: 1, Value: 1},
	})
	if got := cond.UnitaryPrefixLen(); got != 1 {
		t.Errorf("conditioned gate: UnitaryPrefixLen = %d, want 1", got)
	}
}
