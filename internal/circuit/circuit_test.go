package circuit

import (
	"strings"
	"testing"
)

func TestBuilderProducesExpectedGates(t *testing.T) {
	c := New("t", 3)
	c.H(0).X(1).Y(2).Z(0).S(1).Sdg(2).T(0).Tdg(1).
		CX(0, 1).CZ(1, 2).CCX(0, 1, 2).
		Rz(0.5, 0).Rx(-0.25, 1).Ry(1.5, 2).P(0.75, 0).
		CP(0.1, 0, 2).CRz(0.2, 1, 0)
	wantNames := []string{"h", "x", "y", "z", "s", "sdg", "t", "tdg",
		"x", "z", "x", "rz", "rx", "ry", "p", "p", "rz"}
	if c.Len() != len(wantNames) {
		t.Fatalf("gate count %d, want %d", c.Len(), len(wantNames))
	}
	for i, want := range wantNames {
		if c.Gates[i].Name != want {
			t.Fatalf("gate %d name %q, want %q", i, c.Gates[i].Name, want)
		}
	}
	if len(c.Gates[10].Controls) != 2 {
		t.Fatalf("ccx has %d controls", len(c.Gates[10].Controls))
	}
}

func TestSwapIsThreeCNOTs(t *testing.T) {
	c := New("swap", 2)
	c.Swap(0, 1)
	if c.Len() != 3 {
		t.Fatalf("swap emitted %d gates", c.Len())
	}
	for _, g := range c.Gates {
		if g.Name != "x" || len(g.Controls) != 1 {
			t.Fatalf("swap emitted %v", g)
		}
	}
}

func TestMCXAndMCZ(t *testing.T) {
	c := New("mc", 5)
	c.MCX([]int{0, 1, 2, 3}, 4)
	c.MCZ([]int{0, 1}, 3)
	if len(c.Gates[0].Controls) != 4 || c.Gates[0].Name != "x" {
		t.Fatalf("mcx malformed: %v", c.Gates[0])
	}
	if len(c.Gates[1].Controls) != 2 || c.Gates[1].Name != "z" {
		t.Fatalf("mcz malformed: %v", c.Gates[1])
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { New("n", 0) },
		func() { New("n", 2).X(2) },
		func() { New("n", 2).CX(0, 2) },
		func() { New("n", 2).CX(1, 1) },
		func() {
			New("n", 2).Append(Gate{Name: "x", Target: 0, Controls: []Control{{Qubit: -1}}})
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestInverse(t *testing.T) {
	c := New("c", 2)
	c.H(0).S(0).T(1).Rz(0.3, 1).CX(0, 1).Sdg(0).Tdg(1).P(-0.2, 0)
	inv := c.Inverse()
	if inv.Len() != c.Len() {
		t.Fatalf("inverse length %d, want %d", inv.Len(), c.Len())
	}
	// First inverse gate inverts the last original gate.
	if inv.Gates[0].Name != "p" || inv.Gates[0].Params[0] != 0.2 {
		t.Fatalf("inverse[0] = %v", inv.Gates[0])
	}
	if inv.Gates[1].Name != "t" { // tdg → t
		t.Fatalf("inverse[1] = %v", inv.Gates[1])
	}
	if inv.Gates[len(inv.Gates)-1].Name != "h" {
		t.Fatalf("inverse[last] = %v", inv.Gates[len(inv.Gates)-1])
	}
}

func TestInversePanicsOnUnknown(t *testing.T) {
	c := New("c", 1)
	c.Append(Gate{Name: "mystery", Target: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("Inverse of unknown gate did not panic")
		}
	}()
	c.Inverse()
}

func TestAppendCircuitAndCounts(t *testing.T) {
	a := New("a", 2)
	a.H(0).H(1).T(0)
	b := New("b", 2)
	b.CX(0, 1)
	a.AppendCircuit(b)
	if a.Len() != 4 {
		t.Fatalf("appended length %d", a.Len())
	}
	counts := a.CountByName()
	if counts["h"] != 2 || counts["t"] != 1 || counts["x"] != 1 {
		t.Fatalf("counts %v", counts)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("qubit-count mismatch not caught")
		}
	}()
	a.AppendCircuit(New("c", 3))
}

func TestIsCliffordT(t *testing.T) {
	c := New("c", 1)
	c.H(0).T(0).S(0)
	if !c.IsCliffordT() {
		t.Fatal("Clifford+T circuit not recognized")
	}
	c.Rz(0.5, 0)
	if c.IsCliffordT() {
		t.Fatal("rotation circuit misreported as Clifford+T")
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Name: "x", Target: 2, Controls: []Control{{Qubit: 0}, {Qubit: 1, Neg: true}}}
	s := g.String()
	for _, want := range []string{"x", "c0", "!c1", "q2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("gate string %q missing %q", s, want)
		}
	}
	gp := Gate{Name: "rz", Target: 0, Params: []float64{0.5}}
	if !strings.Contains(gp.String(), "0.5") {
		t.Fatalf("parametric gate string %q", gp.String())
	}
}
