package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
)

// Fingerprint returns a SHA-256 digest of the circuit's semantic content:
// the qubit count and the ordered gate list (base-operation name, target,
// controls, exact parameter bits). Everything presentational is excluded —
// the circuit name, how the source was formatted, what the registers were
// called — so two parses of semantically identical programs collide and the
// digest can serve as a content address for cached simulation results.
//
// Controls are order-insensitive (a gate fires when all of them are
// satisfied, regardless of listing order), so they are hashed in sorted
// order. Parameters are hashed via their IEEE-754 bit patterns: exact
// equality, no tolerance — a cache built on this key never conflates two
// circuits that could simulate differently.
//
// Non-unitary structure — the classical bit count, measurement
// destinations, and classical conditions — is part of the digest: a circuit
// with a mid-circuit measurement must never collide with its measure-free
// twin, since the two have different output distributions. The v2 schema
// tag covers these added fields.
func Fingerprint(c *Circuit) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}
	writeStr("qmdd-circuit-v2") // domain separator / schema version
	writeInt(c.N)
	writeInt(c.Cbits)
	writeInt(len(c.Gates))
	ctrls := make([]Control, 0, 4)
	for _, g := range c.Gates {
		writeStr(g.Name)
		writeInt(g.Target)
		ctrls = append(ctrls[:0], g.Controls...)
		sort.Slice(ctrls, func(i, j int) bool { return ctrls[i].Qubit < ctrls[j].Qubit })
		writeInt(len(ctrls))
		for _, ct := range ctrls {
			writeInt(ct.Qubit)
			if ct.Neg {
				writeInt(1)
			} else {
				writeInt(0)
			}
		}
		writeInt(len(g.Params))
		for _, p := range g.Params {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
			h.Write(buf[:])
		}
		if g.IsMeasure() {
			writeInt(g.Clbit)
		}
		if g.Cond != nil {
			writeInt(1)
			writeInt(g.Cond.Offset)
			writeInt(g.Cond.Width)
			binary.LittleEndian.PutUint64(buf[:], g.Cond.Value)
			h.Write(buf[:])
		} else {
			writeInt(0)
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
