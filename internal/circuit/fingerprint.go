package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
)

// Digest is a prefix-chain link / circuit fingerprint: a SHA-256 value.
type Digest = [sha256.Size]byte

// PrefixHasher computes the incremental prefix-hash chain of a circuit:
//
//	H₀ = hash(domain ‖ qubits ‖ cbits)          — the header link
//	Hᵢ = hash-state after absorbing ops 1…i      — one link per gate
//
// Each link is a content address for "the first i ops of any circuit over
// these registers": two circuits that agree on their first i ops — however
// they were formatted, whatever their registers were called, and regardless
// of how many MORE ops either goes on to apply — produce the same Hᵢ. That
// last property is what makes the chain usable for prefix-state
// checkpointing: a state cached under Hᵢ by one circuit warm-starts every
// other circuit that extends the same prefix.
//
// The encoding is self-delimiting (length-prefixed strings and lists,
// fixed-width integers), so dropping the explicit gate count from the v2
// schema loses no injectivity: no op-sequence boundary is ambiguous, hence
// no two distinct prefixes collide except by SHA-256 collision.
//
// The final link — after absorbing every op — IS the whole-circuit
// Fingerprint. Every existing qcache identity therefore remains a chain
// key: a full-circuit state cached under Fingerprint(c) is exactly the
// prefix checkpoint H_len(c) for any extension of c.
type PrefixHasher struct {
	h     hasher
	k     int
	buf   [8]byte
	ctrls []Control
}

// hasher is the subset of hash.Hash the chain needs. sha256's Sum appends
// to its argument without mutating internal state, which is what lets Link
// snapshot every intermediate chain link from one running hash.
type hasher interface {
	Write(p []byte) (int, error)
	Sum(b []byte) []byte
}

// NewPrefixHasher starts a chain for circuits over `qubits` qubits and
// `cbits` classical bits. The returned hasher is positioned at H₀.
func NewPrefixHasher(qubits, cbits int) *PrefixHasher {
	p := &PrefixHasher{h: sha256.New()}
	p.writeStr("qmdd-circuit-v3") // domain separator / schema version
	p.writeInt(qubits)
	p.writeInt(cbits)
	return p
}

func (p *PrefixHasher) writeInt(v int) {
	binary.LittleEndian.PutUint64(p.buf[:], uint64(int64(v)))
	p.h.Write(p.buf[:])
}

func (p *PrefixHasher) writeStr(s string) {
	p.writeInt(len(s))
	p.h.Write([]byte(s))
}

// Absorb folds one op into the chain, advancing Hᵢ to Hᵢ₊₁. The encoding
// is the canonical semantic form shared with Fingerprint: base-op name,
// target, controls in sorted order (a gate fires when all controls are
// satisfied, regardless of listing order), exact IEEE-754 parameter bits
// (no tolerance — two circuits that could simulate differently never
// collide), the measurement destination for measure ops, and the classical
// condition if present.
func (p *PrefixHasher) Absorb(g Gate) {
	p.writeStr(g.Name)
	p.writeInt(g.Target)
	p.ctrls = append(p.ctrls[:0], g.Controls...)
	sort.Slice(p.ctrls, func(i, j int) bool { return p.ctrls[i].Qubit < p.ctrls[j].Qubit })
	p.writeInt(len(p.ctrls))
	for _, ct := range p.ctrls {
		p.writeInt(ct.Qubit)
		if ct.Neg {
			p.writeInt(1)
		} else {
			p.writeInt(0)
		}
	}
	p.writeInt(len(g.Params))
	for _, prm := range g.Params {
		binary.LittleEndian.PutUint64(p.buf[:], math.Float64bits(prm))
		p.h.Write(p.buf[:])
	}
	if g.IsMeasure() {
		p.writeInt(g.Clbit)
	}
	if g.Cond != nil {
		p.writeInt(1)
		p.writeInt(g.Cond.Offset)
		p.writeInt(g.Cond.Width)
		binary.LittleEndian.PutUint64(p.buf[:], g.Cond.Value)
		p.h.Write(p.buf[:])
	} else {
		p.writeInt(0)
	}
	p.k++
}

// Len returns the number of ops absorbed so far — the chain position i.
func (p *PrefixHasher) Len() int { return p.k }

// Link returns the current chain link Hᵢ without disturbing the chain:
// further Absorb calls continue from the same position.
func (p *PrefixHasher) Link() Digest {
	var out Digest
	p.h.Sum(out[:0])
	return out
}

// Chain returns all n+1 links H₀ … Hₙ of the circuit's prefix-hash chain.
// Chain(c)[i] keys the state after the first i ops; Chain(c)[len(c.Gates)]
// equals Fingerprint(c).
func Chain(c *Circuit) []Digest {
	links := make([]Digest, 0, len(c.Gates)+1)
	p := NewPrefixHasher(c.N, c.Cbits)
	links = append(links, p.Link())
	for _, g := range c.Gates {
		p.Absorb(g)
		links = append(links, p.Link())
	}
	return links
}

// SharedPrefixLen returns the length of the longest common gate prefix of
// the given circuits (0 when they disagree on register shape). It compares
// chain links, so it is exactly the "how far do these variants share
// checkpoint keys" question.
func SharedPrefixLen(circs ...*Circuit) int {
	if len(circs) == 0 {
		return 0
	}
	chains := make([][]Digest, len(circs))
	k := len(circs[0].Gates)
	for i, c := range circs {
		chains[i] = Chain(c)
		if len(c.Gates) < k {
			k = len(c.Gates)
		}
	}
	for ; k > 0; k-- {
		same := true
		for _, ch := range chains[1:] {
			if ch[k] != chains[0][k] {
				same = false
				break
			}
		}
		if same {
			break
		}
	}
	return k
}

// UnitaryPrefixLen returns the number of leading unconditional unitary ops:
// the longest prefix whose state is reached without measurement, reset or
// classical control. Only links H₀ … H_UnitaryPrefixLen are sound
// checkpoint keys — a state captured past that point depends on random
// outcomes and must never be stored or resumed.
func (c *Circuit) UnitaryPrefixLen() int {
	for i, g := range c.Gates {
		if !g.IsUnitary() {
			return i
		}
	}
	return len(c.Gates)
}

// Fingerprint returns a SHA-256 digest of the circuit's semantic content:
// the register shape and the ordered op list (base-operation name, target,
// sorted controls, exact parameter bits, measure destinations, classical
// conditions). Everything presentational is excluded — the circuit name,
// how the source was formatted, what the registers were called — so two
// parses of semantically identical programs collide and the digest can
// serve as a content address for cached simulation results.
//
// Fingerprint(c) is definitionally the final link of c's prefix-hash
// chain (see PrefixHasher): Chain(c)[c.Len()] == Fingerprint(c).
func Fingerprint(c *Circuit) Digest {
	p := NewPrefixHasher(c.N, c.Cbits)
	for _, g := range c.Gates {
		p.Absorb(g)
	}
	return p.Link()
}
