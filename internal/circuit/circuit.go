// Package circuit provides the quantum-circuit intermediate representation
// shared by the simulator, the workload generators and the OpenQASM front
// end: a flat list of single-target gates with arbitrary (positive or
// negative) controls and optional real parameters.
package circuit

import (
	"fmt"
	"strings"
)

// Control is a control line (see gates.Control; duplicated here to keep the
// IR free of diagram dependencies).
type Control struct {
	Qubit int
	Neg   bool
}

// Reserved operation names for the non-unitary ops. Everything else in
// Gate.Name is a unitary base operation.
const (
	OpMeasure = "measure"
	OpReset   = "reset"
)

// Cond is a classical condition on a contiguous range of classical bits:
// the op fires iff bits [Offset, Offset+Width) — read as an unsigned
// little-endian integer, bit Offset least significant — equal Value. This
// is OpenQASM 2.0's `if (creg == value)` with the register flattened into
// the circuit's classical bit space.
type Cond struct {
	Offset int
	Width  int
	Value  uint64
}

// Holds reports whether the condition is satisfied by the classical state
// creg (bit i of creg = classical bit i of the circuit).
func (cd *Cond) Holds(creg uint64) bool {
	mask := ^uint64(0)
	if cd.Width < 64 {
		mask = 1<<uint(cd.Width) - 1
	}
	return (creg>>uint(cd.Offset))&mask == cd.Value
}

// Gate is one circuit operation: the named single-qubit base operation
// applied to Target under the given controls. Parametric gates carry their
// angles in Params (radians).
//
// Two reserved names carry the non-unitary ops in position: OpMeasure
// (projective measurement of Target into classical bit Clbit) and OpReset
// (measure Target and return it to |0⟩). Any op may additionally carry a
// classical condition in Cond.
type Gate struct {
	Name     string
	Target   int
	Controls []Control
	Params   []float64
	Clbit    int   // OpMeasure only: destination classical bit
	Cond     *Cond // optional classical guard
}

// IsMeasure reports whether the op is a projective measurement.
func (g Gate) IsMeasure() bool { return g.Name == OpMeasure }

// IsReset reports whether the op is a qubit reset.
func (g Gate) IsReset() bool { return g.Name == OpReset }

// IsUnitary reports whether the op is an unconditional unitary gate.
func (g Gate) IsUnitary() bool { return !g.IsMeasure() && !g.IsReset() && g.Cond == nil }

// String renders the gate in a compact human-readable form.
func (g Gate) String() string {
	var sb strings.Builder
	if g.Cond != nil {
		fmt.Fprintf(&sb, "if(c[%d:%d]==%d) ", g.Cond.Offset, g.Cond.Offset+g.Cond.Width, g.Cond.Value)
	}
	sb.WriteString(g.Name)
	if len(g.Params) > 0 {
		fmt.Fprintf(&sb, "(%v)", g.Params)
	}
	for _, c := range g.Controls {
		if c.Neg {
			fmt.Fprintf(&sb, " !c%d", c.Qubit)
		} else {
			fmt.Fprintf(&sb, " c%d", c.Qubit)
		}
	}
	fmt.Fprintf(&sb, " q%d", g.Target)
	if g.IsMeasure() {
		fmt.Fprintf(&sb, " -> c%d", g.Clbit)
	}
	return sb.String()
}

// Circuit is an ordered gate list over N qubits and Cbits classical bits.
// Cbits grows automatically as measures and conditions are appended.
type Circuit struct {
	Name  string
	N     int
	Cbits int
	Gates []Gate
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	if n < 1 {
		panic("circuit: need at least one qubit")
	}
	return &Circuit{Name: name, N: n}
}

// Append adds a gate, validating qubit indices.
func (c *Circuit) Append(g Gate) *Circuit {
	if g.Target < 0 || g.Target >= c.N {
		panic(fmt.Sprintf("circuit: target %d out of range [0,%d)", g.Target, c.N))
	}
	for _, ct := range g.Controls {
		if ct.Qubit < 0 || ct.Qubit >= c.N {
			panic(fmt.Sprintf("circuit: control %d out of range", ct.Qubit))
		}
		if ct.Qubit == g.Target {
			panic("circuit: control equals target")
		}
	}
	if g.IsMeasure() {
		if g.Clbit < 0 {
			panic(fmt.Sprintf("circuit: classical bit %d out of range", g.Clbit))
		}
		if len(g.Controls) > 0 || len(g.Params) > 0 {
			panic("circuit: measure takes no controls or parameters")
		}
		if g.Clbit >= c.Cbits {
			c.Cbits = g.Clbit + 1
		}
	}
	if g.IsReset() && (len(g.Controls) > 0 || len(g.Params) > 0) {
		panic("circuit: reset takes no controls or parameters")
	}
	if cd := g.Cond; cd != nil {
		if cd.Offset < 0 || cd.Width < 1 || cd.Width > 64 {
			panic(fmt.Sprintf("circuit: bad condition range [%d:%d)", cd.Offset, cd.Offset+cd.Width))
		}
		if cd.Width < 64 && cd.Value >= 1<<uint(cd.Width) {
			panic(fmt.Sprintf("circuit: condition value %d does not fit %d bit(s)", cd.Value, cd.Width))
		}
		if cd.Offset+cd.Width > c.Cbits {
			c.Cbits = cd.Offset + cd.Width
		}
	}
	c.Gates = append(c.Gates, g)
	return c
}

// Len returns the gate count.
func (c *Circuit) Len() int { return len(c.Gates) }

// Simple single-qubit gate helpers.

func (c *Circuit) add(name string, q int, ctrls []Control, params ...float64) *Circuit {
	return c.Append(Gate{Name: name, Target: q, Controls: ctrls, Params: params})
}

// H applies a Hadamard to q.
func (c *Circuit) H(q int) *Circuit { return c.add("h", q, nil) }

// X applies a NOT to q.
func (c *Circuit) X(q int) *Circuit { return c.add("x", q, nil) }

// Y applies a Pauli-Y to q.
func (c *Circuit) Y(q int) *Circuit { return c.add("y", q, nil) }

// Z applies a Pauli-Z to q.
func (c *Circuit) Z(q int) *Circuit { return c.add("z", q, nil) }

// S applies the phase gate to q.
func (c *Circuit) S(q int) *Circuit { return c.add("s", q, nil) }

// Sdg applies S† to q.
func (c *Circuit) Sdg(q int) *Circuit { return c.add("sdg", q, nil) }

// T applies the π/4 gate to q.
func (c *Circuit) T(q int) *Circuit { return c.add("t", q, nil) }

// Tdg applies T† to q.
func (c *Circuit) Tdg(q int) *Circuit { return c.add("tdg", q, nil) }

// CX applies a CNOT with control ctl and target tgt.
func (c *Circuit) CX(ctl, tgt int) *Circuit {
	return c.add("x", tgt, []Control{{Qubit: ctl}})
}

// CZ applies a controlled-Z.
func (c *Circuit) CZ(ctl, tgt int) *Circuit {
	return c.add("z", tgt, []Control{{Qubit: ctl}})
}

// CCX applies a Toffoli gate.
func (c *Circuit) CCX(c1, c2, tgt int) *Circuit {
	return c.add("x", tgt, []Control{{Qubit: c1}, {Qubit: c2}})
}

// MCX applies an X on tgt controlled on all ctrls being |1⟩.
func (c *Circuit) MCX(ctrls []int, tgt int) *Circuit {
	cs := make([]Control, len(ctrls))
	for i, q := range ctrls {
		cs[i] = Control{Qubit: q}
	}
	return c.add("x", tgt, cs)
}

// MCZ applies a Z on tgt controlled on all ctrls being |1⟩.
func (c *Circuit) MCZ(ctrls []int, tgt int) *Circuit {
	cs := make([]Control, len(ctrls))
	for i, q := range ctrls {
		cs[i] = Control{Qubit: q}
	}
	return c.add("z", tgt, cs)
}

// Swap exchanges two qubits (three CNOTs).
func (c *Circuit) Swap(a, b int) *Circuit {
	return c.CX(a, b).CX(b, a).CX(a, b)
}

// Measure appends a projective measurement of qubit q into classical bit
// clbit, growing Cbits as needed.
func (c *Circuit) Measure(q, clbit int) *Circuit {
	return c.Append(Gate{Name: OpMeasure, Target: q, Clbit: clbit})
}

// Reset appends a reset of qubit q to |0⟩ (measure, then flip on outcome 1).
func (c *Circuit) Reset(q int) *Circuit {
	return c.Append(Gate{Name: OpReset, Target: q})
}

// Rz applies Rz(θ) to q (parametric; not exactly representable).
func (c *Circuit) Rz(theta float64, q int) *Circuit { return c.add("rz", q, nil, theta) }

// Rx applies Rx(θ) to q.
func (c *Circuit) Rx(theta float64, q int) *Circuit { return c.add("rx", q, nil, theta) }

// Ry applies Ry(θ) to q.
func (c *Circuit) Ry(theta float64, q int) *Circuit { return c.add("ry", q, nil, theta) }

// P applies the phase rotation diag(1, e^{iθ}) to q.
func (c *Circuit) P(theta float64, q int) *Circuit { return c.add("p", q, nil, theta) }

// CP applies a controlled phase rotation.
func (c *Circuit) CP(theta float64, ctl, tgt int) *Circuit {
	return c.add("p", tgt, []Control{{Qubit: ctl}}, theta)
}

// CRz applies a controlled Rz.
func (c *Circuit) CRz(theta float64, ctl, tgt int) *Circuit {
	return c.add("rz", tgt, []Control{{Qubit: ctl}}, theta)
}

// AppendCircuit concatenates another circuit over the same qubit count.
func (c *Circuit) AppendCircuit(other *Circuit) *Circuit {
	if other.N != c.N {
		panic("circuit: qubit count mismatch in AppendCircuit")
	}
	if other.Cbits > c.Cbits {
		c.Cbits = other.Cbits
	}
	c.Gates = append(c.Gates, other.Gates...)
	return c
}

// IsUnitary reports whether the circuit contains no measure, reset or
// classically conditioned op.
func (c *Circuit) IsUnitary() bool {
	for _, g := range c.Gates {
		if !g.IsUnitary() {
			return false
		}
	}
	return true
}

// Dynamic reports whether running the circuit needs per-shot re-simulation:
// it contains a reset, a classically conditioned op, or a measurement that
// is not part of the trailing all-measure suffix. Circuits that are a
// unitary prefix plus trailing measurements are NOT dynamic — their final
// state can be built once and sampled repeatedly.
func (c *Circuit) Dynamic() bool {
	for _, g := range c.Gates {
		if g.IsReset() || g.Cond != nil {
			return true
		}
	}
	return c.TrailingMeasures() > c.firstMeasure()
}

// TrailingMeasures returns the index of the first op of the circuit's
// trailing all-measure suffix (len(Gates) when the circuit does not end in
// measurements). Gates[:TrailingMeasures()] is the part that must be
// simulated; the suffix is pure read-out.
func (c *Circuit) TrailingMeasures() int {
	t := len(c.Gates)
	for t > 0 && c.Gates[t-1].IsMeasure() && c.Gates[t-1].Cond == nil {
		t--
	}
	return t
}

// firstMeasure returns the index of the first measurement (len(Gates) when
// there is none).
func (c *Circuit) firstMeasure() int {
	for i, g := range c.Gates {
		if g.IsMeasure() {
			return i
		}
	}
	return len(c.Gates)
}

// UnitaryPrefix returns the circuit with any trailing measurement suffix
// stripped: the original circuit when there is none, otherwise a shallow
// copy sharing the prefix gate slice. It does not remove mid-circuit
// measurements — callers that need a purely unitary circuit should check
// Dynamic()/IsUnitary() first.
func (c *Circuit) UnitaryPrefix() *Circuit {
	t := c.TrailingMeasures()
	if t == len(c.Gates) {
		return c
	}
	return &Circuit{Name: c.Name, N: c.N, Cbits: c.Cbits, Gates: c.Gates[:t]}
}

// StripReadout returns the measure-free twin an amplitude-mode run
// simulates: the trailing read-out block and the classical register are
// dropped, so the result — and every cache/checkpoint key derived from the
// circuit — matches the circuit that never declared them. Circuits that
// are already unitary and register-free are returned unchanged.
func (c *Circuit) StripReadout() *Circuit {
	if c.Cbits == 0 && c.IsUnitary() {
		return c
	}
	p := c.UnitaryPrefix()
	return &Circuit{Name: p.Name, N: p.N, Gates: p.Gates}
}

// Inverse returns the adjoint circuit (gates reversed and inverted).
// It panics on gates whose inverse it does not know.
func (c *Circuit) Inverse() *Circuit {
	inv := New(c.Name+"_inv", c.N)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		if !g.IsUnitary() {
			panic(fmt.Sprintf("circuit: cannot invert non-unitary op %q", g.String()))
		}
		ig := Gate{Target: g.Target, Controls: g.Controls}
		switch g.Name {
		case "h", "x", "y", "z", "id", "swap":
			ig.Name = g.Name
		case "s":
			ig.Name = "sdg"
		case "sdg":
			ig.Name = "s"
		case "t":
			ig.Name = "tdg"
		case "tdg":
			ig.Name = "t"
		case "sx":
			ig.Name = "sxdg"
		case "sxdg":
			ig.Name = "sx"
		case "rz", "rx", "ry", "p":
			ig.Name = g.Name
			ig.Params = []float64{-g.Params[0]}
		default:
			panic(fmt.Sprintf("circuit: cannot invert gate %q", g.Name))
		}
		inv.Append(ig)
	}
	return inv
}

// CountByName returns gate counts per base-operation name.
func (c *Circuit) CountByName() map[string]int {
	out := make(map[string]int)
	for _, g := range c.Gates {
		out[g.Name]++
	}
	return out
}

// IsCliffordT reports whether every gate is exactly representable in D[ω].
// Non-unitary ops (measure, reset, conditioned gates) make this false: the
// circuit is not a single unitary at all.
func (c *Circuit) IsCliffordT() bool {
	for _, g := range c.Gates {
		if !g.IsUnitary() {
			return false
		}
		switch g.Name {
		case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sxdg", "id", "i":
		default:
			return false
		}
	}
	return true
}
