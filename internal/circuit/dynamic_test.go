package circuit

import "testing"

func TestMeasureResetCondAppend(t *testing.T) {
	c := New("t", 2).H(0).Measure(0, 0).Reset(1)
	c.Append(Gate{Name: "x", Target: 1, Cond: &Cond{Offset: 0, Width: 1, Value: 1}})
	if c.Cbits != 1 {
		t.Fatalf("Cbits = %d, want 1", c.Cbits)
	}
	if got := c.Gates[1].String(); got != "measure q0 -> c0" {
		t.Errorf("measure String = %q", got)
	}
	if got := c.Gates[3].String(); got != "if(c[0:1]==1) x q1" {
		t.Errorf("cond String = %q", got)
	}
	c.Measure(1, 5)
	if c.Cbits != 6 {
		t.Errorf("Cbits = %d after measure into c5, want 6", c.Cbits)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCondHolds(t *testing.T) {
	cd := &Cond{Offset: 1, Width: 2, Value: 0b10}
	for creg, want := range map[uint64]bool{
		0b100: true, 0b101: true, 0b1100: true, 0b1000: false, 0b010: false, 0: false,
	} {
		if got := cd.Holds(creg); got != want {
			t.Errorf("Holds(%b) = %v, want %v", creg, got, want)
		}
	}
}

func TestDynamicAndTrailingMeasures(t *testing.T) {
	cases := []struct {
		name     string
		build    func() *Circuit
		dynamic  bool
		trailing int // expected TrailingMeasures index
	}{
		{"unitary", func() *Circuit { return New("c", 2).H(0).CX(0, 1) }, false, 2},
		{"trailing-measures", func() *Circuit {
			return New("c", 2).H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
		}, false, 2},
		{"mid-circuit-measure", func() *Circuit {
			return New("c", 2).H(0).Measure(0, 0).X(1)
		}, true, 3},
		{"reset", func() *Circuit { return New("c", 2).H(0).Reset(0) }, true, 2},
		{"conditioned", func() *Circuit {
			c := New("c", 2).H(0).Measure(0, 0)
			return c.Append(Gate{Name: "x", Target: 1, Cond: &Cond{Offset: 0, Width: 1, Value: 1}})
		}, true, 3},
	}
	for _, tc := range cases {
		c := tc.build()
		if got := c.Dynamic(); got != tc.dynamic {
			t.Errorf("%s: Dynamic = %v, want %v", tc.name, got, tc.dynamic)
		}
		if got := c.TrailingMeasures(); got != tc.trailing {
			t.Errorf("%s: TrailingMeasures = %d, want %d", tc.name, got, tc.trailing)
		}
	}
}

func TestUnitaryPrefix(t *testing.T) {
	c := New("c", 2).H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
	p := c.UnitaryPrefix()
	if p.Len() != 2 || !p.IsUnitary() {
		t.Fatalf("UnitaryPrefix kept %d gates", p.Len())
	}
	if p.N != c.N || p.Cbits != c.Cbits {
		t.Error("UnitaryPrefix dropped shape fields")
	}
	u := New("c", 2).H(0)
	if u.UnitaryPrefix() != u {
		t.Error("measure-free circuit should return itself")
	}
}

func TestExpandPreservesDynamicOps(t *testing.T) {
	c := New("c", 3).H(0).Measure(0, 0)
	c.Append(Gate{
		Name: "x", Target: 2,
		Controls: []Control{{Qubit: 0}, {Qubit: 1, Neg: true}},
		Cond:     &Cond{Offset: 0, Width: 1, Value: 1},
	})
	c.Reset(1)
	out, err := ExpandMultiControls(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cbits != c.Cbits {
		t.Errorf("expanded Cbits = %d, want %d", out.Cbits, c.Cbits)
	}
	var measures, resets int
	for i, g := range out.Gates {
		if g.IsMeasure() {
			measures++
			if g.Clbit != 0 {
				t.Errorf("op %d: measure clbit %d, want 0", i, g.Clbit)
			}
		}
		if g.IsReset() {
			resets++
		}
	}
	if measures != 1 || resets != 1 {
		t.Fatalf("expansion kept %d measures, %d resets; want 1, 1", measures, resets)
	}
	// Every gate the conditioned op expanded into must carry the condition:
	// the X-conjugation pair around the negative control included.
	var conded int
	for _, g := range out.Gates {
		if g.Cond != nil {
			if *g.Cond != (Cond{Offset: 0, Width: 1, Value: 1}) {
				t.Errorf("expanded gate carries wrong cond %+v", *g.Cond)
			}
			conded++
		}
	}
	if conded != 3 { // x-flip, ccx, x-flip
		t.Errorf("%d expanded gates conditioned, want 3", conded)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("expanded circuit invalid: %v", err)
	}
}

func TestFingerprintCoversDynamicOps(t *testing.T) {
	base := func() *Circuit { return New("c", 2).H(0).CX(0, 1) }
	a := Fingerprint(base())
	// The measure-free twin must not collide with any measured variant.
	if Fingerprint(base().Measure(0, 0)) == a {
		t.Error("trailing measure collided with measure-free twin")
	}
	mid := New("c", 2).H(0).Measure(0, 0).CX(0, 1)
	if Fingerprint(mid) == a {
		t.Error("mid-circuit measure collided with measure-free twin")
	}
	if Fingerprint(base().Measure(0, 0)) == Fingerprint(base().Measure(0, 1)) {
		t.Error("measure destination not hashed")
	}
	cond := func(v uint64) [32]byte {
		c := New("c", 2).H(0).Measure(0, 0)
		c.Append(Gate{Name: "x", Target: 1, Cond: &Cond{Offset: 0, Width: 1, Value: v}})
		return Fingerprint(c)
	}
	if cond(0) == cond(1) {
		t.Error("condition value not hashed")
	}
	uncond := New("c", 2).H(0).Measure(0, 0).X(1)
	if cond(1) == Fingerprint(uncond) {
		t.Error("conditioned gate collided with unconditioned twin")
	}
	// Determinism.
	if cond(1) != cond(1) {
		t.Error("fingerprint not deterministic with dynamic ops")
	}
}
