package circuit

import "testing"

func TestFingerprintStableAndSensitive(t *testing.T) {
	build := func() *Circuit {
		return New("bell", 2).H(0).CX(0, 1)
	}
	a, b := Fingerprint(build()), Fingerprint(build())
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	if Fingerprint(New("bell", 2).H(0).CX(1, 0)) == a {
		t.Error("reversed CNOT collided")
	}
	if Fingerprint(New("bell", 3).H(0).CX(0, 1)) == a {
		t.Error("extra qubit collided")
	}
	if Fingerprint(New("bell", 2).H(0)) == a {
		t.Error("prefix circuit collided")
	}
	if Fingerprint(New("other-name", 2).H(0).CX(0, 1)) != a {
		t.Error("circuit name is presentational and must not affect the fingerprint")
	}
	if Fingerprint(New("rz", 2).Rz(0.5, 0)) == Fingerprint(New("rz", 2).Rz(0.5000000001, 0)) {
		t.Error("parameter bits collided")
	}
}
