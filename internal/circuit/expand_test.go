package circuit_test

import (
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/circuit"
	"repro/internal/dense"
	"repro/internal/qasm"
)

// expandAgrees verifies ExpandMultiControls semantically: running the
// original on n qubits and the expansion on n+a qubits (ancillas |0⟩) must
// give the same state on the original register with ancillas returned to
// |0⟩.
func expandAgrees(t *testing.T, c *circuit.Circuit) *circuit.Circuit {
	t.Helper()
	exp, err := circuit.ExpandMultiControls(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, g := range exp.Gates {
		limit := 1
		if g.Name == "x" {
			limit = 2
		}
		if len(g.Controls) > limit {
			t.Fatalf("gate %v still has %d controls", g, len(g.Controls))
		}
		for _, ct := range g.Controls {
			if ct.Neg {
				t.Fatalf("gate %v still has a negative control", g)
			}
		}
	}
	sOrig := dense.New(c.N)
	if err := sOrig.Run(c); err != nil {
		t.Fatal(err)
	}
	sExp := dense.New(exp.N)
	if err := sExp.Run(exp); err != nil {
		t.Fatal(err)
	}
	shift := uint(exp.N - c.N)
	for i := range sExp.Amp {
		if uint64(i)&(uint64(1)<<shift-1) != 0 {
			// Ancillas must end in |0⟩: every other amplitude is zero.
			if cmplx.Abs(sExp.Amp[i]) > 1e-12 {
				t.Fatalf("ancilla not returned to |0⟩ at index %d", i)
			}
			continue
		}
		orig := sOrig.Amp[uint64(i)>>shift]
		if cmplx.Abs(sExp.Amp[i]-orig) > 1e-12 {
			t.Fatalf("amplitude %d: expanded %v, original %v", i, sExp.Amp[i], orig)
		}
	}
	return exp
}

func TestExpandPassThrough(t *testing.T) {
	c := circuit.New("simple", 3)
	c.H(0).CX(0, 1).CCX(0, 1, 2).T(2)
	exp := expandAgrees(t, c)
	if exp.N != c.N {
		t.Fatalf("pass-through circuit gained ancillas: %d", exp.N)
	}
	if exp.Len() != c.Len() {
		t.Fatalf("pass-through circuit changed length: %d", exp.Len())
	}
}

func TestExpandNegativeControls(t *testing.T) {
	c := circuit.New("neg", 2)
	c.Append(circuit.Gate{Name: "x", Target: 1,
		Controls: []circuit.Control{{Qubit: 0, Neg: true}}})
	expandAgrees(t, c)
}

func TestExpandMCX(t *testing.T) {
	c := circuit.New("mcx", 5)
	c.X(0).X(1).X(2).X(3) // set all controls
	c.MCX([]int{0, 1, 2, 3}, 4)
	exp := expandAgrees(t, c)
	if exp.N <= c.N {
		t.Fatal("MCX expansion needs ancillas")
	}
}

func TestExpandMCZAndMCT(t *testing.T) {
	c := circuit.New("mc", 4)
	c.H(0).H(1).H(2).H(3)
	c.MCZ([]int{0, 1, 2}, 3)
	c.Append(circuit.Gate{Name: "t", Target: 3,
		Controls: []circuit.Control{{Qubit: 0}, {Qubit: 1}, {Qubit: 2, Neg: true}}})
	expandAgrees(t, c)
}

// TestExpandedGroverIsQASMWritable: the whole point — Grover's oracle uses
// n−1 controls, which plain OpenQASM 2.0 cannot express; after expansion
// the circuit writes and re-parses cleanly.
func TestExpandedGroverIsQASMWritable(t *testing.T) {
	g := algorithms.Grover(5, 17, 1)
	var sb strings.Builder
	if err := qasm.Write(&sb, g); err == nil {
		t.Fatal("unexpanded Grover should not be writable")
	}
	exp := expandAgrees(t, g)
	sb.Reset()
	if err := qasm.Write(&sb, exp); err != nil {
		t.Fatal(err)
	}
	back, err := qasm.Parse(sb.String(), "grover")
	if err != nil {
		t.Fatal(err)
	}
	// Same dense evolution after the round trip.
	s1 := dense.New(exp.N)
	if err := s1.Run(exp); err != nil {
		t.Fatal(err)
	}
	s2 := dense.New(back.N)
	if err := s2.Run(back); err != nil {
		t.Fatal(err)
	}
	if d := s1.Distance(s2); d > 1e-9 {
		t.Fatalf("QASM round trip of the expansion drifted by %v", d)
	}
}

func TestValidateCatchesBadGates(t *testing.T) {
	c := circuit.New("ok", 2)
	c.H(0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &circuit.Circuit{N: 2, Gates: []circuit.Gate{
		{Name: "x", Target: 1, Controls: []circuit.Control{{Qubit: 1}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("control == target accepted")
	}
	bad2 := &circuit.Circuit{N: 2, Gates: []circuit.Gate{{Name: "x", Target: 5}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}
