package plaindd

import (
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/sim"
)

func algM() *core.Manager[alg.Q] {
	return core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
}

// TestFig1bVsFig1c reproduces the paper's Fig. 1 comparison quantitatively:
// the plain (weight-less) DD of H ⊗ I₂ needs one q₀ node and two distinct
// q₁ nodes (Fig. 1b), while the QMDD needs a single node per level
// (Fig. 1c), because only the weighted edges can share the two sub-matrices
// that differ by the factor −1.
func TestFig1bVsFig1c(t *testing.T) {
	qm := algM()
	s := alg.QInvSqrt2
	h := qm.FromMatrix([][]alg.Q{{s, s}, {s, s.Neg()}})
	u := qm.Kron(h, qm.Identity(1))
	if u.NodeCount() != 2 {
		t.Fatalf("QMDD size = %d, want 2 (Fig. 1c)", u.NodeCount())
	}
	pm := NewManager[alg.Q](alg.Ring{})
	p := FromQMDD(pm, qm, u, 2)
	internal, terminals := p.NodeCount()
	if internal != 3 {
		t.Fatalf("plain DD internal nodes = %d, want 3 (Fig. 1b)", internal)
	}
	// Terminals: 0, 1/√2, −1/√2.
	if terminals != 3 {
		t.Fatalf("plain DD terminals = %d, want 3", terminals)
	}
}

// TestValuesPreserved: conversion is semantics-preserving.
func TestValuesPreserved(t *testing.T) {
	qm := algM()
	c := algorithms.Grover(4, 9, 0)
	sm := sim.New(qm, 4)
	if err := sm.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	pm := NewManager[alg.Q](alg.Ring{})
	p := FromQMDD(pm, qm, sm.State, 4)
	for i := uint64(0); i < 16; i++ {
		want := qm.Amplitude(sm.State, 4, i)
		got := p.Value(4, i)
		if !got.Equal(want) {
			t.Fatalf("amp[%d] = %v, want %v", i, got, want)
		}
	}
}

// TestProductStateSeparation: the structural advantage of weighted edges.
// A product state ⊗ᵢ (|0⟩ + ωⁱ|1⟩)/√2 has a linear QMDD but an exponential
// plain DD would only be avoided by luck — with 8 distinct per-level phases
// the plain DD must keep separate sub-DAGs per accumulated product, while
// the QMDD stays one node per level.
func TestProductStateSeparation(t *testing.T) {
	qm := algM()
	n := 6
	// Build ⊗ (|0⟩ + ω^{i+1}|1⟩)/√2 bottom-up.
	e := qm.OneEdge()
	for l := 1; l <= n; l++ {
		w := alg.QFromD(alg.DOmegaPow(l)).Mul(alg.QInvSqrt2)
		e = qm.MakeVectorNode(l, qm.Scale(e, alg.QInvSqrt2), qm.Scale(e, w))
	}
	if got := e.NodeCount(); got != n {
		t.Fatalf("QMDD product state size = %d, want %d", got, n)
	}
	pm := NewManager[alg.Q](alg.Ring{})
	p := FromQMDD(pm, qm, e, n)
	internal, _ := p.NodeCount()
	if internal <= 2*n {
		t.Fatalf("plain DD unexpectedly small: %d internal nodes (QMDD %d)", internal, n)
	}
}

// TestZeroDiagram: the zero vector converts to a zero spine.
func TestZeroDiagram(t *testing.T) {
	qm := algM()
	pm := NewManager[alg.Q](alg.Ring{})
	p := FromQMDD(pm, qm, qm.ZeroEdge(), 3)
	internal, terminals := p.NodeCount()
	if internal != 3 || terminals != 1 {
		t.Fatalf("zero spine: %d internal, %d terminals", internal, terminals)
	}
	if !p.Value(3, 5).IsZero() {
		t.Fatal("zero diagram has nonzero value")
	}
}

// TestHashConsing: equal subtrees share nodes across separate conversions
// within one manager.
func TestHashConsing(t *testing.T) {
	qm := algM()
	pm := NewManager[alg.Q](alg.Ring{})
	a := FromQMDD(pm, qm, qm.BasisState(3, 2), 3)
	b := FromQMDD(pm, qm, qm.BasisState(3, 2), 3)
	if a != b {
		t.Fatal("identical diagrams converted to distinct plain DDs")
	}
}
