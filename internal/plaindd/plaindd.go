// Package plaindd implements the weight-less decision diagram that the
// paper's Fig. 1b contrasts with the QMDD of Fig. 1c: a QuIDD/ADD-style DAG
// whose terminal nodes carry the distinct complex values and whose edges
// carry no weights. Sub-structures are shared only when they are *equal*,
// not when they merely differ by a scalar factor — quantifying exactly what
// the weighted edges of QMDDs buy (Example 3 of the paper).
package plaindd

import (
	"strconv"
	"strings"

	"repro/internal/coeff"
	"repro/internal/core"
)

// Node is a plain decision-diagram node. Internal nodes (Level ≥ 1) have 2
// (vector) or 4 (matrix) children; terminal nodes (Level 0) carry a value.
type Node[T any] struct {
	ID    uint64
	Level int
	Kids  []*Node[T]
	Val   T // terminals only
}

// Manager hash-conses plain-DD nodes.
type Manager[T any] struct {
	R      coeff.Ring[T]
	unique map[string]*Node[T]
	nextID uint64
}

// NewManager returns an empty plain-DD manager over the given value ring.
func NewManager[T any](r coeff.Ring[T]) *Manager[T] {
	return &Manager[T]{R: r, unique: make(map[string]*Node[T])}
}

// Terminal returns the hash-consed terminal for a value.
func (m *Manager[T]) Terminal(v T) *Node[T] {
	key := "t:" + m.R.Key(v)
	if n, ok := m.unique[key]; ok {
		return n
	}
	m.nextID++
	n := &Node[T]{ID: m.nextID, Level: 0, Val: v}
	m.unique[key] = n
	return n
}

// MakeNode returns the hash-consed internal node.
func (m *Manager[T]) MakeNode(level int, kids []*Node[T]) *Node[T] {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(level))
	for _, k := range kids {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(k.ID, 36))
	}
	key := sb.String()
	if n, ok := m.unique[key]; ok {
		return n
	}
	m.nextID++
	n := &Node[T]{ID: m.nextID, Level: level, Kids: append([]*Node[T]{}, kids...)}
	m.unique[key] = n
	return n
}

// FromQMDD converts a QMDD (vector or matrix diagram over n qubits) into
// the equivalent plain DD by pushing the accumulated edge weights down to
// the terminals. The construction memoizes on (node, accumulated weight),
// so its cost is proportional to the *plain* DD's size, never to the
// exponential dimension.
func FromQMDD[T any](m *Manager[T], qm *core.Manager[T], e core.Edge[T], n int) *Node[T] {
	arity := core.VectorArity
	if e.N != nil {
		arity = len(e.N.E)
	}
	memo := make(map[string]*Node[T])
	var build func(e core.Edge[T], level int, w T) *Node[T]
	build = func(e core.Edge[T], level int, w T) *Node[T] {
		cw := qm.R.Mul(w, e.W)
		if qm.R.IsZero(cw) {
			// A zero stub spans the remaining levels with the zero terminal.
			z := m.Terminal(qm.R.Zero())
			for l := 1; l <= level; l++ {
				kids := make([]*Node[T], arity)
				for i := range kids {
					kids[i] = z
				}
				z = m.MakeNode(l, kids)
			}
			return z
		}
		if level == 0 {
			return m.Terminal(cw)
		}
		if e.N == nil {
			panic("plaindd: malformed QMDD (nonzero terminal above level 0)")
		}
		key := strconv.FormatUint(e.N.ID, 36) + "|" + qm.R.Key(cw) + "|" + strconv.Itoa(level)
		if n, ok := memo[key]; ok {
			return n
		}
		kids := make([]*Node[T], len(e.N.E))
		for i, c := range e.N.E {
			kids[i] = build(c, level-1, cw)
		}
		res := m.MakeNode(level, kids)
		memo[key] = res
		return res
	}
	one := qm.R.One()
	return build(e, n, one)
}

// NodeCount returns the number of distinct nodes (internal + terminal)
// reachable from n — comparable with Edge.NodeCount()+terminals on the
// QMDD side.
func (n *Node[T]) NodeCount() (internal, terminals int) {
	seen := make(map[*Node[T]]struct{})
	var walk func(*Node[T])
	walk = func(x *Node[T]) {
		if _, ok := seen[x]; ok {
			return
		}
		seen[x] = struct{}{}
		if x.Level == 0 {
			terminals++
			return
		}
		internal++
		for _, k := range x.Kids {
			walk(k)
		}
	}
	walk(n)
	return internal, terminals
}

// Value returns the entry at the given index path (vector diagrams: the
// amplitude of basis state idx).
func (n *Node[T]) Value(level int, idx uint64) T {
	cur := n
	for l := level; l >= 1; l-- {
		cur = cur.Kids[(idx>>(l-1))&1]
	}
	return cur.Val
}
