package qasm

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dense"
)

// TestCorpusParsesAndSimulates: every file in testdata parses, lowers, and
// evolves to a unit-norm state in the dense simulator.
func TestCorpusParsesAndSimulates(t *testing.T) {
	files, err := filepath.Glob("testdata/*.qasm")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("corpus too small: %v", files)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Parse(string(src), f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if c.Len() == 0 {
			t.Fatalf("%s: no gates", f)
		}
		s := dense.New(c.N)
		// Dense ground truth covers the unitary part; trailing read-out
		// measurements are exercised by the sim shots tests.
		if err := s.Run(c.UnitaryPrefix()); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if math.Abs(s.Norm2()-1) > 1e-9 {
			t.Fatalf("%s: norm drifted to %v", f, s.Norm2())
		}
	}
}

// TestAdderComputes: the adder corpus file computes 1 + 1 (cin = 0):
// sum bit q2 = 0, carry q3 = 1 after the majority/unmaj network.
func TestAdderComputes(t *testing.T) {
	src, err := os.ReadFile("testdata/adder4.qasm")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Parse(string(src), "adder4")
	if err != nil {
		t.Fatal(err)
	}
	s := dense.New(4)
	if err := s.Run(c.UnitaryPrefix()); err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := 1; i < 16; i++ {
		if s.Probability(uint64(i)) > s.Probability(uint64(best)) {
			best = i
		}
	}
	// 1 + 1 with cin = 0: the majority/unmaj pair restores cin (q0 = 0) and
	// the b operand (q2 = 1), leaves the sum bit in q1 (= 0) and the carry
	// in q3 (= 1): global index 0b0011.
	if best != 0b0011 {
		t.Fatalf("adder final state |%04b⟩, want |0011⟩", best)
	}
	if p := s.Probability(uint64(best)); math.Abs(p-1) > 1e-9 {
		t.Fatalf("adder result not deterministic: %v", p)
	}
}

// TestWStateAmplitudes: the W-state corpus file prepares (|001⟩ + |010⟩ +
// |100⟩)/√3 up to local phases.
func TestWStateAmplitudes(t *testing.T) {
	src, err := os.ReadFile("testdata/w_state.qasm")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Parse(string(src), "w")
	if err != nil {
		t.Fatal(err)
	}
	s := dense.New(3)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	third := 1.0 / 3
	for _, idx := range []uint64{1, 2, 4} {
		if math.Abs(s.Probability(idx)-third) > 1e-9 {
			t.Fatalf("P(|%03b⟩) = %v, want 1/3", idx, s.Probability(idx))
		}
	}
	for _, idx := range []uint64{0, 3, 5, 6, 7} {
		if s.Probability(idx) > 1e-9 {
			t.Fatalf("P(|%03b⟩) = %v, want 0", idx, s.Probability(idx))
		}
	}
}
