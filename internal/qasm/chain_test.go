package qasm

import (
	"testing"

	"repro/internal/circuit"
)

// TestChainTextualInvariance is the prefix-subsystem analogue of
// TestFingerprintCanonicalization: presentational variants of a program must
// share EVERY link of the prefix-hash chain, not just the final fingerprint
// — that is what lets a checkpoint stored by one formatting of a circuit
// warm-start every other formatting of the same circuit.
func TestChainTextualInvariance(t *testing.T) {
	base := "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nt q[1];\n"

	equivalent := []struct {
		name, src string
	}{
		{"comments", "OPENQASM 2.0;\n// three gates\ninclude \"qelib1.inc\";\nqreg q[2]; // two qubits\nh q[0];\ncx q[0],q[1]; // entangle\nt q[1];\n"},
		{"whitespace", "OPENQASM 2.0;include \"qelib1.inc\";\n\n\n  qreg q[2] ;\n\th  q[0]\t;\r\n   cx q[0] , q[1];\nt q[1] ;"},
		{"register rename", "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg data[2];\nh data[0];\ncx data[0],data[1];\nt data[1];\n"},
		{"split registers", "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg a[1];\nqreg b[1];\nh a[0];\ncx a[0],b[0];\nt b[0];\n"},
		{"no include", "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nt q[1];\n"},
	}

	bc, err := Parse(base, "base")
	if err != nil {
		t.Fatal(err)
	}
	want := circuit.Chain(bc)
	for _, tc := range equivalent {
		vc, err := Parse(tc.src, tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := circuit.Chain(vc)
		if len(got) != len(want) {
			t.Errorf("%s: chain has %d links, want %d", tc.name, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: chain link %d differs from the base program's", tc.name, i)
			}
		}
		if got[len(got)-1] != circuit.Fingerprint(vc) {
			t.Errorf("%s: final chain link is not the fingerprint", tc.name)
		}
	}
}

// TestChainEditInvalidatesOnlySuffix pins the invalidation granularity at
// the source level: editing one gate of a program leaves every link up to
// the edit — and therefore every checkpoint stored under those links —
// valid, and invalidates every link past it.
func TestChainEditInvalidatesOnlySuffix(t *testing.T) {
	base := "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\ns q[1];\nh q[1];\n"
	edited := "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nt q[1];\nh q[1];\n"
	const editAt = 2 // the s→t swap is gate index 2

	bc, err := Parse(base, "base")
	if err != nil {
		t.Fatal(err)
	}
	ec, err := Parse(edited, "edited")
	if err != nil {
		t.Fatal(err)
	}
	a, b := circuit.Chain(bc), circuit.Chain(ec)
	for i := 0; i <= editAt; i++ {
		if a[i] != b[i] {
			t.Errorf("link %d before the edit differs", i)
		}
	}
	for i := editAt + 1; i < len(a); i++ {
		if a[i] == b[i] {
			t.Errorf("link %d after the edit did not change", i)
		}
	}
	if got := circuit.SharedPrefixLen(bc, ec); got != editAt {
		t.Errorf("SharedPrefixLen = %d, want %d", got, editAt)
	}
}
