package qasm

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dense"
)

const bellSrc = `
OPENQASM 2.0;
include "qelib1.inc";
// Bell pair preparation
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
`

func TestParseBell(t *testing.T) {
	c, err := Parse(bellSrc, "bell")
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 2 || c.Len() != 4 || c.Cbits != 2 {
		t.Fatalf("parsed %d qubits, %d ops, %d clbits", c.N, c.Len(), c.Cbits)
	}
	if c.Gates[0].Name != "h" || c.Gates[0].Target != 0 {
		t.Fatalf("gate 0 = %v", c.Gates[0])
	}
	if c.Gates[1].Name != "x" || len(c.Gates[1].Controls) != 1 || c.Gates[1].Controls[0].Qubit != 0 {
		t.Fatalf("gate 1 = %v", c.Gates[1])
	}
	// measure q -> c broadcasts element-wise into the positioned suffix.
	for i, want := range []circuit.Gate{
		{Name: circuit.OpMeasure, Target: 0, Clbit: 0},
		{Name: circuit.OpMeasure, Target: 1, Clbit: 1},
	} {
		g := c.Gates[2+i]
		if g.Name != want.Name || g.Target != want.Target || g.Clbit != want.Clbit {
			t.Fatalf("op %d = %v, want %v", 2+i, g, want)
		}
	}
	s := dense.New(2)
	if err := s.Run(c.UnitaryPrefix()); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(3)-0.5) > 1e-12 {
		t.Fatalf("bell probabilities wrong: %v", s.Amp)
	}
}

func TestParseExpressionsAndBroadcast(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[3];
h q;
rz(pi/4) q[1];
rz(-pi) q[0];
rz(2*pi/8 + 1.5e-1) q[2];
u2(0, pi) q[0];
cp(pi^2/4) q[0],q[2];
ccx q[0],q[1],q[2];
barrier q;
`
	c, err := Parse(src, "expr")
	if err != nil {
		t.Fatal(err)
	}
	// h broadcast over 3 qubits + 3 rz + u2 + cp + ccx = 9 gates.
	if c.Len() != 9 {
		t.Fatalf("got %d gates, want 9: %v", c.Len(), c.Gates)
	}
	if got := c.Gates[3].Params[0]; math.Abs(got-math.Pi/4) > 1e-15 {
		t.Fatalf("rz(pi/4) parsed as %v", got)
	}
	if got := c.Gates[4].Params[0]; math.Abs(got+math.Pi) > 1e-15 {
		t.Fatalf("rz(-pi) parsed as %v", got)
	}
	if got := c.Gates[5].Params[0]; math.Abs(got-(math.Pi/4+0.15)) > 1e-15 {
		t.Fatalf("rz(2*pi/8 + 1.5e-1) parsed as %v", got)
	}
	if got := c.Gates[7].Params[0]; math.Abs(got-math.Pi*math.Pi/4) > 1e-12 {
		t.Fatalf("cp(pi^2/4) parsed as %v", got)
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	src := `OPENQASM 2.0;
qreg a[2];
qreg b[3];
x a[1];
cx a[0],b[2];
`
	c, err := Parse(src, "regs")
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 5 {
		t.Fatalf("N = %d, want 5", c.N)
	}
	if c.Gates[0].Target != 1 {
		t.Fatalf("x a[1] lowered to target %d", c.Gates[0].Target)
	}
	if c.Gates[1].Controls[0].Qubit != 0 || c.Gates[1].Target != 4 {
		t.Fatalf("cx a[0],b[2] lowered wrong: %v", c.Gates[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`OPENQASM 2.0; x q[0];`,                     // unknown register
		`OPENQASM 2.0; qreg q[2]; x q[5];`,          // index out of range
		`OPENQASM 2.0; qreg q[2]; frobnicate q[0];`, // unknown gate
		`OPENQASM 2.0; qreg q[2]; rz q[0];`,         // missing parameter
		`OPENQASM 2.0; qreg q[2]; cx q[0];`,         // missing operand
		`OPENQASM 2.0; qreg q[0];`,                  // zero-size register
		`OPENQASM 2.0; qreg q[2]; rz(pi/) q[0];`,    // bad expression
		`OPENQASM 2.0; qreg q[2]; h q[0]`,           // missing semicolon at EOF
	}
	for _, src := range cases {
		if _, err := Parse(src, "bad"); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	c := circuit.New("rt", 3)
	c.H(0).CX(0, 1).T(2).CCX(0, 1, 2).Rz(0.25, 1).CP(0.5, 0, 2).Swap(0, 2)
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(sb.String(), "rt")
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
	}
	if c2.N != c.N || c2.Len() != c.Len() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", c2.N, c2.Len(), c.N, c.Len())
	}
	// Semantically identical: same dense evolution.
	s1, s2 := dense.New(3), dense.New(3)
	if err := s1.Run(c); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(c2); err != nil {
		t.Fatal(err)
	}
	if d := s1.Distance(s2); d > 1e-12 {
		t.Fatalf("round trip changed semantics, distance %v", d)
	}
}

func TestWriteRejectsInexpressible(t *testing.T) {
	c := circuit.New("neg", 2)
	c.Append(circuit.Gate{Name: "x", Target: 1, Controls: []circuit.Control{{Qubit: 0, Neg: true}}})
	var sb strings.Builder
	if err := Write(&sb, c); err == nil {
		t.Fatal("negative control written without error")
	}
	c2 := circuit.New("mcx", 4)
	c2.MCX([]int{0, 1, 2}, 3)
	if err := Write(&sb, c2); err == nil {
		t.Fatal("3-control gate written without error")
	}
}

// TestMeasureIsPositioned is the regression test for the side-list bug: the
// parser used to record measures out-of-band, so a gate written after a
// measurement was silently reordered in front of it. The measure must now
// appear in the gate list at its source position.
func TestMeasureIsPositioned(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[2];
creg c[1];
h q[0];
measure q[0] -> c[0];
x q[1];
`
	c, err := Parse(src, "mid")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"h", circuit.OpMeasure, "x"}
	if c.Len() != len(want) {
		t.Fatalf("parsed %d ops, want %d: %v", c.Len(), len(want), c.Gates)
	}
	for i, name := range want {
		if c.Gates[i].Name != name {
			t.Fatalf("op %d = %q, want %q (measure lost its position)", i, c.Gates[i].Name, name)
		}
	}
	if !c.Dynamic() {
		t.Error("mid-circuit measurement not flagged as dynamic")
	}
}

func TestParseResetAndIf(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[3];
creg c0[1];
creg c1[2];
h q[0];
measure q[0] -> c0[0];
reset q[0];
if(c0==1) x q[1];
if(c1==2) measure q[2] -> c1[0];
if(c0==0) reset q;
`
	c, err := Parse(src, "dyn")
	if err != nil {
		t.Fatal(err)
	}
	if c.Cbits != 3 {
		t.Fatalf("Cbits = %d, want 3", c.Cbits)
	}
	// h, measure, reset, cond-x, cond-measure, 3× cond-reset (broadcast).
	if c.Len() != 8 {
		t.Fatalf("parsed %d ops: %v", c.Len(), c.Gates)
	}
	if !c.Gates[2].IsReset() || c.Gates[2].Target != 0 || c.Gates[2].Cond != nil {
		t.Fatalf("op 2 = %v, want unconditional reset q0", c.Gates[2])
	}
	if cd := c.Gates[3].Cond; cd == nil || *cd != (circuit.Cond{Offset: 0, Width: 1, Value: 1}) {
		t.Fatalf("op 3 cond = %v", c.Gates[3].Cond)
	}
	// c1 is the second register: offset 1, width 2.
	if cd := c.Gates[4].Cond; cd == nil || *cd != (circuit.Cond{Offset: 1, Width: 2, Value: 2}) ||
		!c.Gates[4].IsMeasure() || c.Gates[4].Clbit != 1 {
		t.Fatalf("op 4 = %v cond %v", c.Gates[4], c.Gates[4].Cond)
	}
	for i := 5; i < 8; i++ {
		if !c.Gates[i].IsReset() || c.Gates[i].Cond == nil {
			t.Fatalf("op %d = %v, want conditioned reset", i, c.Gates[i])
		}
	}
}

func TestParseDynamicErrors(t *testing.T) {
	cases := []string{
		`OPENQASM 2.0; qreg q[2]; creg c[1]; measure q -> c;`,           // size mismatch
		`OPENQASM 2.0; qreg q[2]; measure q[0] -> c[0];`,                // unknown creg
		`OPENQASM 2.0; qreg q[2]; creg c[1]; measure q[0] -> q[1];`,     // quantum dest
		`OPENQASM 2.0; qreg q[2]; creg c[1]; if(c==2) x q[0];`,          // value too wide
		`OPENQASM 2.0; qreg q[2]; creg c[1]; if(d==0) x q[0];`,          // unknown register
		`OPENQASM 2.0; qreg q[2]; creg c[1]; if(c) x q[0];`,             // missing ==
		`OPENQASM 2.0; qreg q[2]; creg c[1]; if(c==0) if(c==0) x q[0];`, // nested if
		`OPENQASM 2.0; qreg q[2]; creg c[1]; reset c[0];`,               // reset classical
	}
	for _, src := range cases {
		if _, err := Parse(src, "bad"); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestWriteDynamicRoundTrip(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[3];
creg c0[1];
creg c1[1];
x q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
measure q[0] -> c0[0];
measure q[1] -> c1[0];
if(c1==1) x q[2];
if(c0==1) z q[2];
reset q[0];
`
	c, err := Parse(src, "teleport")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(sb.String(), "teleport")
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
	}
	// The round trip must preserve the op sequence exactly — same
	// fingerprint, conditions and measure destinations included.
	if circuit.Fingerprint(c) != circuit.Fingerprint(c2) {
		t.Fatalf("round trip changed the circuit:\n%s", sb.String())
	}
}

const gateDefSrc = `
OPENQASM 2.0;
qreg q[3];
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate rot(theta) t { rz(theta/2) t; h t; rz(-theta/2) t; }
gate nested(x) a,b { rot(x) a; majority a,b,a; }
majority q[0],q[1],q[2];
rot(pi) q[1];
`

// TestGateDefinitions: user-defined gates macro-expand with bound
// parameters and qubit arguments.
func TestGateDefinitions(t *testing.T) {
	c, err := Parse(gateDefSrc, "defs")
	if err != nil {
		t.Fatal(err)
	}
	// majority → cx, cx, ccx (3 gates); rot(pi) → rz, h, rz (3 gates).
	if c.Len() != 6 {
		t.Fatalf("expanded to %d gates: %v", c.Len(), c.Gates)
	}
	if c.Gates[2].Name != "x" || len(c.Gates[2].Controls) != 2 {
		t.Fatalf("ccx expansion wrong: %v", c.Gates[2])
	}
	if c.Gates[3].Name != "rz" || math.Abs(c.Gates[3].Params[0]-math.Pi/2) > 1e-15 {
		t.Fatalf("parameter binding wrong: %v", c.Gates[3])
	}
	if c.Gates[5].Params[0] != -math.Pi/2 {
		t.Fatalf("negated bound parameter wrong: %v", c.Gates[5])
	}
	// Semantics check against a hand-expanded circuit.
	manual := circuit.New("manual", 3)
	manual.CX(2, 1).CX(2, 0).CCX(0, 1, 2).Rz(math.Pi/2, 1)
	manual.H(1).Rz(-math.Pi/2, 1)
	s1, s2 := dense.New(3), dense.New(3)
	if err := s1.Run(c); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(manual); err != nil {
		t.Fatal(err)
	}
	if d := s1.Distance(s2); d > 1e-12 {
		t.Fatalf("expansion semantics differ by %v", d)
	}
}

// TestGateDefinitionNesting: definitions may call earlier definitions, with
// the ccx argument aliasing caught by circuit validation.
func TestGateDefinitionNesting(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[2];
gate double a { h a; h a; }
gate quad a { double a; double a; }
quad q[1];
`
	c, err := Parse(src, "nest")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("nested expansion gave %d gates", c.Len())
	}
	for _, g := range c.Gates {
		if g.Name != "h" || g.Target != 1 {
			t.Fatalf("bad expanded gate %v", g)
		}
	}
}

func TestGateDefinitionErrors(t *testing.T) {
	cases := []string{
		`OPENQASM 2.0; qreg q[2]; gate g a { h a; } g q[0],q[1];`,   // arity
		`OPENQASM 2.0; qreg q[2]; gate g(t) a { rz(t) a; } g q[0];`, // missing param
		`OPENQASM 2.0; qreg q[2]; opaque mystery a; mystery q[0];`,  // opaque use
		`OPENQASM 2.0; qreg q[2]; gate g a { h a;`,                  // unterminated
	}
	for _, src := range cases {
		if _, err := Parse(src, "bad"); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
	// Declaring an opaque gate without using it is fine.
	if _, err := Parse(`OPENQASM 2.0; qreg q[1]; opaque mystery a; h q[0];`, "ok"); err != nil {
		t.Fatal(err)
	}
}

// TestParseErrorTyped pins the satellite contract of the typed error: every
// lexer/parser/lowering failure is a *ParseError extractable with errors.As,
// carrying the 1-based source line, and its rendered string is exactly the
// historical "qasm: line N: …" form.
func TestParseErrorTyped(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
	}{
		{"lexer", "OPENQASM 2.0;\nqreg q[1];\nh q[0] @;", 3},
		{"parser", "OPENQASM 2.0;\nqreg q[0];", 2},
		{"unknown register", "OPENQASM 2.0;\nqreg q[1];\nh r[0];", 3},
		{"lowering arity", "OPENQASM 2.0;\nqreg q[2];\n\nh q[0], q[1];", 4},
		{"unsupported gate", "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];", 3},
		{"gatedef opaque", "OPENQASM 2.0;\nqreg q[1];\nopaque mystery a;\nmystery q[0];", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src, tc.name)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T) is not a *ParseError", err, err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d (err: %v)", pe.Line, tc.line, err)
			}
			want := fmt.Sprintf("qasm: line %d: %s", pe.Line, pe.Msg)
			if err.Error() != want {
				t.Errorf("rendered %q, want %q", err.Error(), want)
			}
			if !strings.HasPrefix(err.Error(), fmt.Sprintf("qasm: line %d: ", tc.line)) {
				t.Errorf("rendered %q lacks line prefix", err.Error())
			}
		})
	}
}
