package qasm

import (
	"crypto/sha256"

	"repro/internal/circuit"
)

// Fingerprint parses an OpenQASM 2.0 program and returns the canonical
// SHA-256 fingerprint of the circuit it denotes. The parse itself is the
// canonicalization step: comments, whitespace, register names, include
// statements and gate-macro structure are all resolved away before hashing,
// so semantically identical sources map to the same digest while any
// difference in the flattened gate stream changes it. This is the circuit
// half of the qcache content address.
func Fingerprint(src string) ([sha256.Size]byte, error) {
	c, err := Parse(src, "fingerprint")
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	return circuit.Fingerprint(c), nil
}
