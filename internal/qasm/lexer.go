// Package qasm implements a reader and writer for the OpenQASM 2.0 subset
// needed to exchange the benchmark circuits: qreg/creg declarations, the
// qelib1 standard gates, parameter expressions with pi, barrier statements
// (ignored), and the dynamic-circuit statements — measure, reset and
// `if (creg == value)` classical control — which become positioned ops in
// the circuit IR.
package qasm

import (
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single-character punctuation: ; , ( ) [ ] { } + - * / ^
	tokArrow  // ->
	tokEquals // ==
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return errAt(l.line, format, args...)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], l.line}, nil
	case unicode.IsDigit(rune(c)) || c == '.':
		for l.pos < len(l.src) && isNumberChar(l.src[l.pos]) {
			prev := l.src[l.pos]
			l.pos++
			// Allow a sign directly after an exponent marker (1.5e-3).
			if (prev == 'e' || prev == 'E') && l.pos < len(l.src) &&
				(l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		}
		return token{tokNumber, l.src[start:l.pos], l.line}, nil
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return token{}, l.errf("unterminated string")
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		l.pos++
		return token{tokString, l.src[start+1 : l.pos-1], l.line}, nil
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{tokArrow, "->", l.line}, nil
	case c == '=' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '=':
		l.pos += 2
		return token{tokEquals, "==", l.line}, nil
	case strings.ContainsRune(";,()[]{}+-*/^", rune(c)):
		l.pos++
		return token{tokSymbol, string(c), l.line}, nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isNumberChar(c byte) bool {
	return c == '.' || c == 'e' || c == 'E' || unicode.IsDigit(rune(c))
}

// tokenize scans the whole input.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
