package qasm

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/circuit"
)

// Parse reads an OpenQASM 2.0 program and returns the flattened circuit.
// Supported statements: OPENQASM version header, include (ignored),
// qreg/creg declarations, the qelib1 gate set (see applyGate), barrier
// (ignored), measure and reset (positioned non-unitary ops in the IR) and
// `if (creg == value) qop;` classical control.
func Parse(src, name string) (*circuit.Circuit, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, name: name, qregs: map[string]qreg{},
		cregs: map[string]qreg{}, gateDefs: map[string]*gateDef{}}
	return p.parse()
}

type qreg struct {
	offset, size int
}

type parser struct {
	toks []token
	pos  int
	name string

	qregs   map[string]qreg
	nqubits int
	cregs   map[string]qreg
	ncbits  int

	// User-defined gates and, during macro expansion, the active bindings.
	gateDefs  map[string]*gateDef
	bindings  map[string]float64
	localArgs map[string]int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return errAt(t.line, format, args...)
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return p.errf(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) parse() (*circuit.Circuit, error) {
	var pending []pendingOp
	for {
		t := p.next()
		switch {
		case t.kind == tokEOF:
			goto done
		case t.kind == tokIdent && t.text == "OPENQASM":
			if v := p.next(); v.kind != tokNumber {
				return nil, p.errf(v, "expected version number")
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && t.text == "include":
			if s := p.next(); s.kind != tokString {
				return nil, p.errf(s, "expected include path")
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && (t.text == "qreg" || t.text == "creg"):
			nameTok := p.next()
			if nameTok.kind != tokIdent {
				return nil, p.errf(nameTok, "expected register name")
			}
			if err := p.expectSymbol("["); err != nil {
				return nil, err
			}
			szTok := p.next()
			sz, err := strconv.Atoi(szTok.text)
			if err != nil || sz <= 0 {
				return nil, p.errf(szTok, "bad register size %q", szTok.text)
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
			if t.text == "qreg" {
				p.qregs[nameTok.text] = qreg{offset: p.nqubits, size: sz}
				p.nqubits += sz
			} else {
				p.cregs[nameTok.text] = qreg{offset: p.ncbits, size: sz}
				p.ncbits += sz
			}
		case t.kind == tokIdent && t.text == "gate":
			if err := p.parseGateDef(false); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && t.text == "opaque":
			if err := p.parseGateDef(true); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && t.text == "barrier":
			for p.peek().kind != tokEOF {
				if tt := p.next(); tt.kind == tokSymbol && tt.text == ";" {
					break
				}
			}
		case t.kind == tokIdent && t.text == "if":
			ops, err := p.parseIf(t)
			if err != nil {
				return nil, err
			}
			pending = append(pending, ops...)
		case t.kind == tokIdent:
			ops, err := p.parseQop(t, nil)
			if err != nil {
				return nil, err
			}
			pending = append(pending, ops...)
		default:
			return nil, p.errf(t, "unexpected token %q", t.text)
		}
	}
done:
	if p.nqubits == 0 {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	c := circuit.New(p.name, p.nqubits)
	c.Cbits = p.ncbits
	for _, op := range pending {
		if err := op.lower(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

type pendingGate struct {
	name   string
	params []float64
	args   []int
	line   int
}

// opKind discriminates the three positioned statement forms.
type opKind int

const (
	opGate opKind = iota
	opMeasure
	opReset
)

// pendingOp is one positioned circuit op awaiting lowering (gate lowering
// needs the final qubit count, so statements are collected first).
type pendingOp struct {
	kind  opKind
	gate  pendingGate // opGate
	qubit int         // opMeasure/opReset
	clbit int         // opMeasure
	cond  *circuit.Cond
	line  int
}

// lower appends the op to the circuit. A classical condition is attached to
// every gate the op lowers to (multi-gate lowerings like swap fire
// all-or-nothing, so guarding each emitted gate is exact).
func (op pendingOp) lower(c *circuit.Circuit) error {
	start := c.Len()
	switch op.kind {
	case opMeasure:
		c.Measure(op.qubit, op.clbit)
	case opReset:
		c.Reset(op.qubit)
	default:
		if err := applyGate(c, op.gate); err != nil {
			return err
		}
	}
	if op.cond != nil {
		for i := start; i < c.Len(); i++ {
			c.Gates[i].Cond = op.cond
		}
	}
	return nil
}

// parseQop parses one quantum operation statement (gate application,
// measure, or reset) starting at its head token, attaching cond to every
// resulting op.
func (p *parser) parseQop(head token, cond *circuit.Cond) ([]pendingOp, error) {
	switch head.text {
	case "measure":
		return p.parseMeasure(head, cond)
	case "reset":
		qs, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		ops := make([]pendingOp, len(qs))
		for i, q := range qs {
			ops[i] = pendingOp{kind: opReset, qubit: q, cond: cond, line: head.line}
		}
		return ops, nil
	default:
		gs, err := p.parseGate(head)
		if err != nil {
			return nil, err
		}
		ops := make([]pendingOp, len(gs))
		for i, g := range gs {
			ops[i] = pendingOp{kind: opGate, gate: g, cond: cond, line: g.line}
		}
		return ops, nil
	}
}

// parseMeasure parses `measure q[i] -> c[j];` (or the whole-register form,
// which broadcasts element-wise and requires equal sizes).
func (p *parser) parseMeasure(head token, cond *circuit.Cond) ([]pendingOp, error) {
	qs, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if a := p.next(); a.kind != tokArrow {
		return nil, p.errf(a, "expected -> in measure")
	}
	cs, err := p.parseClOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	if len(qs) != len(cs) {
		return nil, errAt(head.line, "measure register sizes differ (%d qubits -> %d classical bits)",
			len(qs), len(cs))
	}
	ops := make([]pendingOp, len(qs))
	for i := range qs {
		ops[i] = pendingOp{kind: opMeasure, qubit: qs[i], clbit: cs[i], cond: cond, line: head.line}
	}
	return ops, nil
}

// parseIf parses `if (creg == value) qop;` — OpenQASM 2.0 conditions compare
// one whole classical register against a non-negative integer.
func (p *parser) parseIf(head token) ([]pendingOp, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	regTok := p.next()
	if regTok.kind != tokIdent {
		return nil, p.errf(regTok, "expected classical register in if, got %q", regTok.text)
	}
	r, ok := p.cregs[regTok.text]
	if !ok {
		return nil, p.errf(regTok, "unknown classical register %q", regTok.text)
	}
	if r.size > 64 {
		return nil, p.errf(regTok, "register %s[%d] too wide for a classical condition (max 64)",
			regTok.text, r.size)
	}
	if eq := p.next(); eq.kind != tokEquals {
		return nil, p.errf(eq, "expected == in if, got %q", eq.text)
	}
	valTok := p.next()
	val, err := strconv.ParseUint(valTok.text, 10, 64)
	if err != nil {
		return nil, p.errf(valTok, "bad comparison value %q in if", valTok.text)
	}
	if r.size < 64 && val >= 1<<uint(r.size) {
		return nil, p.errf(valTok, "comparison value %d does not fit register %s[%d]",
			val, regTok.text, r.size)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	body := p.next()
	if body.kind != tokIdent {
		return nil, p.errf(body, "expected quantum op after if, got %q", body.text)
	}
	if body.text == "if" {
		return nil, p.errf(body, "nested if is not allowed")
	}
	cond := &circuit.Cond{Offset: r.offset, Width: r.size, Value: val}
	return p.parseQop(body, cond)
}

// parseClOperand parses a classical operand "c" (whole register) or "c[3]"
// and returns the global classical bit indices.
func (p *parser) parseClOperand() ([]int, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected classical register operand, got %q", t.text)
	}
	r, ok := p.cregs[t.text]
	if !ok {
		return nil, p.errf(t, "unknown classical register %q", t.text)
	}
	if p.peek().kind == tokSymbol && p.peek().text == "[" {
		p.next()
		it := p.next()
		idx, err := strconv.Atoi(it.text)
		if err != nil || idx < 0 || idx >= r.size {
			return nil, p.errf(it, "bad index %q into register %s[%d]", it.text, t.text, r.size)
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		return []int{r.offset + idx}, nil
	}
	out := make([]int, r.size)
	for i := range out {
		out[i] = r.offset + i
	}
	return out, nil
}

// parseOperand parses "q" (whole register) or "q[3]" and returns the global
// qubit indices. Inside a gate-definition body, bare formal argument names
// resolve through localArgs.
func (p *parser) parseOperand() ([]int, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected register operand, got %q", t.text)
	}
	if idx, ok := p.localArgs[t.text]; ok {
		return []int{idx}, nil
	}
	r, ok := p.qregs[t.text]
	if !ok {
		return nil, p.errf(t, "unknown quantum register %q", t.text)
	}
	if p.peek().kind == tokSymbol && p.peek().text == "[" {
		p.next()
		it := p.next()
		idx, err := strconv.Atoi(it.text)
		if err != nil || idx < 0 || idx >= r.size {
			return nil, p.errf(it, "bad index %q into register %s[%d]", it.text, t.text, r.size)
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		return []int{r.offset + idx}, nil
	}
	out := make([]int, r.size)
	for i := range out {
		out[i] = r.offset + i
	}
	return out, nil
}

// parseGate parses one gate application statement starting at the name token.
func (p *parser) parseGate(nameTok token) ([]pendingGate, error) {
	var params []float64
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.next()
		for {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			params = append(params, v)
			t := p.next()
			if t.kind == tokSymbol && t.text == ")" {
				break
			}
			if !(t.kind == tokSymbol && t.text == ",") {
				return nil, p.errf(t, "expected , or ) in parameter list")
			}
		}
	}
	var operands [][]int
	for {
		qs, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		operands = append(operands, qs)
		t := p.next()
		if t.kind == tokSymbol && t.text == ";" {
			break
		}
		if !(t.kind == tokSymbol && t.text == ",") {
			return nil, p.errf(t, "expected , or ; after operand")
		}
	}
	// Broadcast whole-register operands: all operand lists must have equal
	// length (or length 1).
	width := 1
	for _, o := range operands {
		if len(o) > width {
			width = len(o)
		}
	}
	def := p.gateDefs[nameTok.text]
	var out []pendingGate
	for i := 0; i < width; i++ {
		args := make([]int, len(operands))
		for j, o := range operands {
			switch {
			case len(o) == 1:
				args[j] = o[0]
			case len(o) == width:
				args[j] = o[i]
			default:
				return nil, p.errf(nameTok, "mismatched register sizes in %s", nameTok.text)
			}
		}
		if def != nil {
			expanded, err := p.expandDef(def, params, args, nameTok.line)
			if err != nil {
				return nil, err
			}
			out = append(out, expanded...)
			continue
		}
		out = append(out, pendingGate{name: nameTok.text, params: params, args: args, line: nameTok.line})
	}
	return out, nil
}

// parseExpr evaluates a constant parameter expression with + - * / ^, unary
// minus, parentheses and the constant pi.
func (p *parser) parseExpr() (float64, error) { return p.parseAddSub() }

func (p *parser) parseAddSub() (float64, error) {
	v, err := p.parseMulDiv()
	if err != nil {
		return 0, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMulDiv()
			if err != nil {
				return 0, err
			}
			if t.text == "+" {
				v += r
			} else {
				v -= r
			}
			continue
		}
		return v, nil
	}
}

func (p *parser) parseMulDiv() (float64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "^") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			switch t.text {
			case "*":
				v *= r
			case "/":
				v /= r
			case "^":
				v = math.Pow(v, r)
			}
			continue
		}
		return v, nil
	}
}

func (p *parser) parseUnary() (float64, error) {
	t := p.next()
	switch {
	case t.kind == tokSymbol && t.text == "-":
		v, err := p.parseUnary()
		return -v, err
	case t.kind == tokSymbol && t.text == "+":
		return p.parseUnary()
	case t.kind == tokSymbol && t.text == "(":
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		return v, p.expectSymbol(")")
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, p.errf(t, "bad number %q", t.text)
		}
		return v, nil
	case t.kind == tokIdent && t.text == "pi":
		return math.Pi, nil
	case t.kind == tokIdent:
		if v, ok := p.bindings[t.text]; ok {
			return v, nil
		}
	}
	return 0, p.errf(t, "unexpected token %q in expression", t.text)
}

// applyGate lowers a qelib1-style gate application onto the circuit IR.
func applyGate(c *circuit.Circuit, g pendingGate) error {
	need := func(nArgs, nParams int) error {
		if len(g.args) != nArgs {
			return errAt(g.line, "%s expects %d operand(s), got %d", g.name, nArgs, len(g.args))
		}
		if len(g.params) != nParams {
			return errAt(g.line, "%s expects %d parameter(s), got %d", g.name, nParams, len(g.params))
		}
		return nil
	}
	ctl := func(qs ...int) []circuit.Control {
		cs := make([]circuit.Control, len(qs))
		for i, q := range qs {
			cs[i] = circuit.Control{Qubit: q}
		}
		return cs
	}
	switch g.name {
	case "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg", "id", "i":
		if err := need(1, 0); err != nil {
			return err
		}
		c.Append(circuit.Gate{Name: g.name, Target: g.args[0]})
	case "rz", "rx", "ry", "p", "u1", "phase":
		if err := need(1, 1); err != nil {
			return err
		}
		name := g.name
		if name == "u1" || name == "phase" {
			name = "p"
		}
		c.Append(circuit.Gate{Name: name, Target: g.args[0], Params: g.params})
	case "u", "u3":
		if err := need(1, 3); err != nil {
			return err
		}
		c.Append(circuit.Gate{Name: "u", Target: g.args[0], Params: g.params})
	case "u2":
		if err := need(1, 2); err != nil {
			return err
		}
		c.Append(circuit.Gate{Name: "u", Target: g.args[0],
			Params: []float64{math.Pi / 2, g.params[0], g.params[1]}})
	case "cx", "CX":
		if err := need(2, 0); err != nil {
			return err
		}
		c.Append(circuit.Gate{Name: "x", Target: g.args[1], Controls: ctl(g.args[0])})
	case "cz":
		if err := need(2, 0); err != nil {
			return err
		}
		c.Append(circuit.Gate{Name: "z", Target: g.args[1], Controls: ctl(g.args[0])})
	case "cy":
		if err := need(2, 0); err != nil {
			return err
		}
		c.Append(circuit.Gate{Name: "y", Target: g.args[1], Controls: ctl(g.args[0])})
	case "ch":
		if err := need(2, 0); err != nil {
			return err
		}
		c.Append(circuit.Gate{Name: "h", Target: g.args[1], Controls: ctl(g.args[0])})
	case "crz", "cp", "cu1":
		if err := need(2, 1); err != nil {
			return err
		}
		name := "p"
		if g.name == "crz" {
			name = "rz"
		}
		c.Append(circuit.Gate{Name: name, Target: g.args[1], Controls: ctl(g.args[0]), Params: g.params})
	case "ccx":
		if err := need(3, 0); err != nil {
			return err
		}
		c.Append(circuit.Gate{Name: "x", Target: g.args[2], Controls: ctl(g.args[0], g.args[1])})
	case "swap":
		if err := need(2, 0); err != nil {
			return err
		}
		c.Swap(g.args[0], g.args[1])
	case "cswap":
		if err := need(3, 0); err != nil {
			return err
		}
		// Fredkin via three Toffolis.
		a, b, ctlq := g.args[1], g.args[2], g.args[0]
		c.Append(circuit.Gate{Name: "x", Target: b, Controls: ctl(ctlq, a)})
		c.Append(circuit.Gate{Name: "x", Target: a, Controls: ctl(ctlq, b)})
		c.Append(circuit.Gate{Name: "x", Target: b, Controls: ctl(ctlq, a)})
	default:
		return errAt(g.line, "unsupported gate %q", g.name)
	}
	return nil
}
