package qasm

import "fmt"

// ParseError is the typed error every lexer and parser failure returns, so
// callers serving structured responses (the qmddd daemon) can extract the
// offending source line with errors.As instead of scraping the message. The
// rendered string is exactly the historical "qasm: line %d: %s" form.
type ParseError struct {
	Line int    // 1-based source line of the offending token
	Msg  string // message without the "qasm: line N:" prefix
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("qasm: line %d: %s", e.Line, e.Msg)
}

// errAt builds a *ParseError at the given line.
func errAt(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
