package qasm

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/circuit"
)

// TestFingerprintCanonicalization proves the cache-key property: every
// presentational variant of a program hashes identically, and every
// semantic change hashes differently.
func TestFingerprintCanonicalization(t *testing.T) {
	base := "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"

	equivalent := []struct {
		name, src string
	}{
		{"comments", "OPENQASM 2.0;\n// a Bell pair\ninclude \"qelib1.inc\";\nqreg q[2]; // two qubits\nh q[0];\ncx q[0],q[1]; // entangle\n"},
		{"whitespace", "OPENQASM 2.0;include \"qelib1.inc\";\n\n\n  qreg q[2] ;\n\th  q[0]\t;\r\n   cx q[0] , q[1];"},
		{"register rename", "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg data[2];\nh data[0];\ncx data[0],data[1];\n"},
		{"split registers", "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg a[1];\nqreg b[1];\nh a[0];\ncx a[0],b[0];\n"},
		{"no include", "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"},
	}
	distinct := []struct {
		name, src string
	}{
		{"different gate", "OPENQASM 2.0;\nqreg q[2];\nx q[0];\ncx q[0],q[1];\n"},
		{"different target", "OPENQASM 2.0;\nqreg q[2];\nh q[1];\ncx q[0],q[1];\n"},
		{"swapped control/target", "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[1],q[0];\n"},
		{"gate order", "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\nh q[0];\n"},
		{"extra gate", "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nt q[1];\n"},
		{"wider register", "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\n"},
		{"different angle", "OPENQASM 2.0;\nqreg q[2];\nrz(0.5) q[0];\ncx q[0],q[1];\n"},
		{"other angle", "OPENQASM 2.0;\nqreg q[2];\nrz(0.25) q[0];\ncx q[0],q[1];\n"},
		// Classical structure is semantic since the shots pipeline: a creg
		// changes the histogram key width, a measure changes the output
		// distribution, a condition changes the evolution.
		{"creg", "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\n"},
		{"trailing measure", "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n"},
		{"mid-circuit measure", "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[0];\ncx q[0],q[1];\n"},
		{"other clbit", "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[1];\ncx q[0],q[1];\n"},
		{"conditioned", "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[0];\nif(c==1) cx q[0],q[1];\n"},
		{"other condition value", "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[0];\nif(c==2) cx q[0],q[1];\n"},
		{"reset", "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nreset q[0];\ncx q[0],q[1];\n"},
	}

	want, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range equivalent {
		got, err := Fingerprint(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != want {
			t.Errorf("%s: fingerprint differs from the base program", tc.name)
		}
	}
	// All distinct programs must differ from the base AND from each other.
	seen := map[[32]byte]string{want: "base"}
	for _, tc := range distinct {
		got, err := Fingerprint(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s: fingerprint collides with %q", tc.name, prev)
		}
		seen[got] = tc.name
	}
}

// TestFingerprintCorpus hashes the checked-in QASM corpus: every file must
// produce a distinct, stable fingerprint, and re-parsing must reproduce it.
func TestFingerprintCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.qasm")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	seen := map[[32]byte]string{}
	for _, name := range files {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		src := string(raw)
		fp, err := Fingerprint(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
		again, err := Fingerprint(src)
		if err != nil || again != fp {
			t.Errorf("%s: fingerprint not stable across parses", name)
		}
	}
}

// TestFingerprintControlOrder pins the control-set canonicalization at the
// circuit level: listing a Toffoli's controls in either order is the same
// gate, negative controls are not.
func TestFingerprintControlOrder(t *testing.T) {
	a := circuit.New("a", 3).Append(circuit.Gate{Name: "x", Target: 2,
		Controls: []circuit.Control{{Qubit: 0}, {Qubit: 1}}})
	b := circuit.New("b", 3).Append(circuit.Gate{Name: "x", Target: 2,
		Controls: []circuit.Control{{Qubit: 1}, {Qubit: 0}}})
	if circuit.Fingerprint(a) != circuit.Fingerprint(b) {
		t.Error("control listing order changed the fingerprint")
	}
	neg := circuit.New("c", 3).Append(circuit.Gate{Name: "x", Target: 2,
		Controls: []circuit.Control{{Qubit: 0, Neg: true}, {Qubit: 1}}})
	if circuit.Fingerprint(a) == circuit.Fingerprint(neg) {
		t.Error("negative control did not change the fingerprint")
	}
	named := circuit.New("renamed", 3).Append(circuit.Gate{Name: "x", Target: 2,
		Controls: []circuit.Control{{Qubit: 0}, {Qubit: 1}}})
	if circuit.Fingerprint(a) != circuit.Fingerprint(named) {
		t.Error("circuit name leaked into the fingerprint")
	}
}
