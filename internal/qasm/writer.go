package qasm

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/circuit"
)

// Write emits the circuit as an OpenQASM 2.0 program. Gates with more than
// two positive controls or any negative control have no qelib1 equivalent
// and cause an error.
func Write(w io.Writer, c *circuit.Circuit) error {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&sb, "qreg q[%d];\n", c.N)
	for i, g := range c.Gates {
		line, err := gateLine(g)
		if err != nil {
			return fmt.Errorf("qasm: gate %d: %w", i, err)
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func gateLine(g circuit.Gate) (string, error) {
	for _, c := range g.Controls {
		if c.Neg {
			return "", fmt.Errorf("negative controls are not expressible in OpenQASM 2.0")
		}
	}
	params := ""
	if len(g.Params) > 0 {
		parts := make([]string, len(g.Params))
		for i, p := range g.Params {
			parts[i] = fmt.Sprintf("%.17g", p)
		}
		params = "(" + strings.Join(parts, ",") + ")"
	}
	switch len(g.Controls) {
	case 0:
		name := g.Name
		if name == "u" {
			name = "u3"
		}
		return fmt.Sprintf("%s%s q[%d];", name, params, g.Target), nil
	case 1:
		ctl := g.Controls[0].Qubit
		switch g.Name {
		case "x":
			return fmt.Sprintf("cx q[%d],q[%d];", ctl, g.Target), nil
		case "z":
			return fmt.Sprintf("cz q[%d],q[%d];", ctl, g.Target), nil
		case "y":
			return fmt.Sprintf("cy q[%d],q[%d];", ctl, g.Target), nil
		case "h":
			return fmt.Sprintf("ch q[%d],q[%d];", ctl, g.Target), nil
		case "p":
			return fmt.Sprintf("cu1%s q[%d],q[%d];", params, ctl, g.Target), nil
		case "rz":
			return fmt.Sprintf("crz%s q[%d],q[%d];", params, ctl, g.Target), nil
		}
		return "", fmt.Errorf("no OpenQASM 2.0 spelling for controlled %q", g.Name)
	case 2:
		if g.Name == "x" {
			return fmt.Sprintf("ccx q[%d],q[%d],q[%d];",
				g.Controls[0].Qubit, g.Controls[1].Qubit, g.Target), nil
		}
		return "", fmt.Errorf("no OpenQASM 2.0 spelling for doubly-controlled %q", g.Name)
	}
	return "", fmt.Errorf("OpenQASM 2.0 has no gates with %d controls", len(g.Controls))
}
