package qasm

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/circuit"
)

// Write emits the circuit as an OpenQASM 2.0 program. Gates with more than
// two positive controls or any negative control have no qelib1 equivalent
// and cause an error.
//
// Classical bits are emitted as creg declarations reconstructed from the
// circuit: every classical condition must compare a whole register in
// OpenQASM 2.0, so each distinct condition range becomes one creg (two
// conditions whose bit ranges overlap without being identical are
// unwritable and error out) and the remaining bits are grouped into filler
// registers from maximal runs.
func Write(w io.Writer, c *circuit.Circuit) error {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&sb, "qreg q[%d];\n", c.N)
	regs, err := classicalRegs(c)
	if err != nil {
		return err
	}
	for _, r := range regs {
		fmt.Fprintf(&sb, "creg %s[%d];\n", r.name, r.size)
	}
	for i, g := range c.Gates {
		line, err := stmtLine(g, regs)
		if err != nil {
			return fmt.Errorf("qasm: gate %d: %w", i, err)
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	_, err = io.WriteString(w, sb.String())
	return err
}

// creg is one reconstructed classical register covering the bit range
// [offset, offset+size).
type creg struct {
	name         string
	offset, size int
}

// classicalRegs partitions [0, Cbits) into registers compatible with every
// classical condition in the circuit.
func classicalRegs(c *circuit.Circuit) ([]creg, error) {
	if c.Cbits == 0 {
		return nil, nil
	}
	type span struct{ off, width int }
	var spans []span
	seen := map[span]bool{}
	for _, g := range c.Gates {
		if g.Cond == nil {
			continue
		}
		s := span{g.Cond.Offset, g.Cond.Width}
		if !seen[s] {
			seen[s] = true
			spans = append(spans, s)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	var regs []creg
	cur := 0
	filler := func(from, to int) {
		if to > from {
			regs = append(regs, creg{offset: from, size: to - from})
		}
	}
	for _, s := range spans {
		if s.off < cur {
			return nil, fmt.Errorf("qasm: overlapping classical conditions (bit ranges [%d:%d) and an earlier one) cannot be expressed as cregs",
				s.off, s.off+s.width)
		}
		filler(cur, s.off)
		regs = append(regs, creg{offset: s.off, size: s.width})
		cur = s.off + s.width
	}
	filler(cur, c.Cbits)
	if len(regs) == 1 {
		regs[0].name = "c"
	} else {
		for i := range regs {
			regs[i].name = fmt.Sprintf("c%d", i)
		}
	}
	return regs, nil
}

// stmtLine renders one op as an OpenQASM 2.0 statement, including the
// if-prefix for conditioned ops.
func stmtLine(g circuit.Gate, regs []creg) (string, error) {
	prefix := ""
	if cd := g.Cond; cd != nil {
		var name string
		for _, r := range regs {
			if r.offset == cd.Offset && r.size == cd.Width {
				name = r.name
				break
			}
		}
		if name == "" { // classicalRegs guarantees a match; defensive
			return "", fmt.Errorf("condition range [%d:%d) has no register", cd.Offset, cd.Offset+cd.Width)
		}
		prefix = fmt.Sprintf("if(%s==%d) ", name, cd.Value)
	}
	switch {
	case g.IsMeasure():
		for _, r := range regs {
			if g.Clbit >= r.offset && g.Clbit < r.offset+r.size {
				return fmt.Sprintf("%smeasure q[%d] -> %s[%d];", prefix, g.Target, r.name, g.Clbit-r.offset), nil
			}
		}
		return "", fmt.Errorf("classical bit %d outside every register", g.Clbit)
	case g.IsReset():
		return fmt.Sprintf("%sreset q[%d];", prefix, g.Target), nil
	}
	line, err := gateLine(g)
	if err != nil {
		return "", err
	}
	return prefix + line, nil
}

func gateLine(g circuit.Gate) (string, error) {
	for _, c := range g.Controls {
		if c.Neg {
			return "", fmt.Errorf("negative controls are not expressible in OpenQASM 2.0")
		}
	}
	params := ""
	if len(g.Params) > 0 {
		parts := make([]string, len(g.Params))
		for i, p := range g.Params {
			parts[i] = fmt.Sprintf("%.17g", p)
		}
		params = "(" + strings.Join(parts, ",") + ")"
	}
	switch len(g.Controls) {
	case 0:
		name := g.Name
		if name == "u" {
			name = "u3"
		}
		return fmt.Sprintf("%s%s q[%d];", name, params, g.Target), nil
	case 1:
		ctl := g.Controls[0].Qubit
		switch g.Name {
		case "x":
			return fmt.Sprintf("cx q[%d],q[%d];", ctl, g.Target), nil
		case "z":
			return fmt.Sprintf("cz q[%d],q[%d];", ctl, g.Target), nil
		case "y":
			return fmt.Sprintf("cy q[%d],q[%d];", ctl, g.Target), nil
		case "h":
			return fmt.Sprintf("ch q[%d],q[%d];", ctl, g.Target), nil
		case "p":
			return fmt.Sprintf("cu1%s q[%d],q[%d];", params, ctl, g.Target), nil
		case "rz":
			return fmt.Sprintf("crz%s q[%d],q[%d];", params, ctl, g.Target), nil
		}
		return "", fmt.Errorf("no OpenQASM 2.0 spelling for controlled %q", g.Name)
	case 2:
		if g.Name == "x" {
			return fmt.Sprintf("ccx q[%d],q[%d],q[%d];",
				g.Controls[0].Qubit, g.Controls[1].Qubit, g.Target), nil
		}
		return "", fmt.Errorf("no OpenQASM 2.0 spelling for doubly-controlled %q", g.Name)
	}
	return "", fmt.Errorf("OpenQASM 2.0 has no gates with %d controls", len(g.Controls))
}
