// 1-bit full adder on 4 qubits: cin, a, b, cout (classic qelib example).
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate unmaj a,b,c
{
  ccx a,b,c;
  cx c,a;
  cx a,b;
}
qreg q[4];
creg ans[2];
x q[1];
x q[2];
majority q[0],q[1],q[2];
cx q[2],q[3];
unmaj q[0],q[1],q[2];
measure q[2] -> ans[0];
measure q[3] -> ans[1];
