// Teleportation skeleton (measurement-free coherent version).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
u3(0.3,0.2,0.1) q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
cx q[1],q[2];
cz q[0],q[2];
