OPENQASM 2.0;
include "qelib1.inc";
gate parity4 a,b,c,d,t { cx a,t; cx b,t; cx c,t; cx d,t; }
qreg in[4];
qreg out[1];
h in;
parity4 in[0],in[1],in[2],in[3],out[0];
barrier in;
h in;
