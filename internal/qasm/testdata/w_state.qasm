// 3-qubit W state via controlled rotations.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
ry(1.9106332362490186) q[0];
ch q[0],q[1];
ccx q[0],q[1],q[2];
x q[0];
x q[1];
cx q[0],q[1];
