package qasm

// User-defined gates: OpenQASM 2.0 `gate` declarations are recorded as token
// streams and macro-expanded at application time, with formal parameters
// bound to evaluated expressions and formal qubit arguments bound to global
// qubit indices. Definitions may reference earlier definitions (recursive
// expansion); `opaque` declarations are rejected at application time since
// they have no body to simulate.
type gateDef struct {
	name   string
	params []string  // formal parameter names
	args   []string  // formal qubit argument names
	body   [][]token // one token slice per body statement (incl. ';')
	line   int
	opaque bool
}

// parseGateDef parses `gate name(p, …) q, … { … }` after the `gate` keyword.
func (p *parser) parseGateDef(opaque bool) error {
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return p.errf(nameTok, "expected gate name")
	}
	def := &gateDef{name: nameTok.text, line: nameTok.line, opaque: opaque}
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.next()
		for p.peek().kind != tokSymbol || p.peek().text != ")" {
			t := p.next()
			if t.kind != tokIdent {
				return p.errf(t, "expected parameter name, got %q", t.text)
			}
			def.params = append(def.params, t.text)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
			}
		}
		p.next() // ')'
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return p.errf(t, "expected qubit argument name, got %q", t.text)
		}
		def.args = append(def.args, t.text)
		sep := p.peek()
		if sep.kind == tokSymbol && sep.text == "," {
			p.next()
			continue
		}
		break
	}
	if opaque {
		if err := p.expectSymbol(";"); err != nil {
			return err
		}
		p.gateDefs[def.name] = def
		return nil
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	// Capture body statements verbatim.
	var stmt []token
	for {
		t := p.next()
		switch {
		case t.kind == tokEOF:
			return p.errf(t, "unterminated gate body for %q", def.name)
		case t.kind == tokSymbol && t.text == "}":
			if len(stmt) != 0 {
				return p.errf(t, "gate body statement missing ';'")
			}
			p.gateDefs[def.name] = def
			return nil
		case t.kind == tokSymbol && t.text == ";":
			stmt = append(stmt, t)
			def.body = append(def.body, stmt)
			stmt = nil
		default:
			stmt = append(stmt, t)
		}
	}
}

// expandDef macro-expands one application of a user-defined gate with the
// given actual parameters and global qubit arguments.
func (p *parser) expandDef(def *gateDef, params []float64, args []int, line int) ([]pendingGate, error) {
	if def.opaque {
		return nil, errAt(line, "opaque gate %q has no body to simulate", def.name)
	}
	if len(params) != len(def.params) {
		return nil, errAt(line, "gate %s expects %d parameter(s), got %d",
			def.name, len(def.params), len(params))
	}
	if len(args) != len(def.args) {
		return nil, errAt(line, "gate %s expects %d argument(s), got %d",
			def.name, len(def.args), len(args))
	}
	bindings := make(map[string]float64, len(params))
	for i, name := range def.params {
		bindings[name] = params[i]
	}
	locals := make(map[string]int, len(args))
	for i, name := range def.args {
		locals[name] = args[i]
	}
	var out []pendingGate
	for _, stmt := range def.body {
		sub := &parser{
			toks:      append(append([]token{}, stmt...), token{kind: tokEOF, line: line}),
			name:      p.name,
			qregs:     p.qregs,
			gateDefs:  p.gateDefs,
			bindings:  bindings,
			localArgs: locals,
		}
		head := sub.next()
		if head.kind != tokIdent {
			return nil, p.errf(head, "bad statement in gate %q body", def.name)
		}
		if head.text == "barrier" {
			continue // barriers inside gate bodies are no-ops here
		}
		gs, err := sub.parseGate(head)
		if err != nil {
			return nil, err
		}
		out = append(out, gs...)
	}
	return out, nil
}
