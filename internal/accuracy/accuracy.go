// Package accuracy implements the paper's error metric (footnote 8): the
// Euclidean distance between the numerically computed state vector —
// renormalized to unit length, since a pure length error is trivially
// fixable — and the exact state vector from the algebraic representation.
// The comparison itself runs in extended-precision big.Float arithmetic so
// that it can resolve errors at and below the double-precision ulp level
// instead of drowning them in conversion noise.
package accuracy

import (
	"math"
	"math/big"

	"repro/internal/alg"
	"repro/internal/core"
)

// Prec is the working precision (bits) of the comparison.
const Prec = 96

// StateError returns ‖v_num/‖v_num‖ − v_alg‖₂ for an n-qubit state.
// When the numeric vector has collapsed to (near) zero — the paper's ε-too-
// large failure mode — the distance to the exact unit vector is returned
// (≈ 1), since no renormalization can recover it.
func StateError(
	mNum *core.Manager[complex128], vNum core.Edge[complex128],
	mAlg *core.Manager[alg.Q], vAlg core.Edge[alg.Q],
	n int,
) float64 {
	numAmps := mNum.ToVector(vNum, n)
	algAmps := mAlg.ToVector(vAlg, n)
	return VectorError(numAmps, algAmps)
}

// VectorError is StateError on already-expanded amplitude slices.
func VectorError(numAmps []complex128, algAmps []alg.Q) float64 {
	if len(numAmps) != len(algAmps) {
		panic("accuracy: dimension mismatch")
	}
	// ‖v_num‖² in big.Float.
	norm2 := new(big.Float).SetPrec(Prec)
	t := new(big.Float).SetPrec(Prec)
	for _, a := range numAmps {
		re := new(big.Float).SetPrec(Prec).SetFloat64(real(a))
		im := new(big.Float).SetPrec(Prec).SetFloat64(imag(a))
		norm2.Add(norm2, t.Mul(re, re))
		norm2.Add(norm2, new(big.Float).SetPrec(Prec).Mul(im, im))
	}
	zeroVec := norm2.Sign() == 0
	var nrm *big.Float
	if !zeroVec {
		nrm = new(big.Float).SetPrec(Prec).Sqrt(norm2)
	}
	sum := new(big.Float).SetPrec(Prec)
	for i, a := range numAmps {
		re := new(big.Float).SetPrec(Prec).SetFloat64(real(a))
		im := new(big.Float).SetPrec(Prec).SetFloat64(imag(a))
		if !zeroVec {
			re.Quo(re, nrm)
			im.Quo(im, nrm)
		}
		are, aim := algAmps[i].Float(Prec)
		re.Sub(re, are)
		im.Sub(im, aim)
		sum.Add(sum, new(big.Float).SetPrec(Prec).Mul(re, re))
		sum.Add(sum, new(big.Float).SetPrec(Prec).Mul(im, im))
	}
	d := new(big.Float).SetPrec(Prec).Sqrt(sum)
	f, _ := d.Float64()
	return f
}

// Norm2Float returns Σ|aᵢ|² of a complex slice in float64 (diagnostics).
func Norm2Float(amps []complex128) float64 {
	s := 0.0
	for _, a := range amps {
		s += real(a)*real(a) + imag(a)*imag(a)
	}
	return s
}

// IsCollapsed reports the paper's catastrophic failure mode: the state norm
// has fallen below the given threshold (e.g. the zero vector at ε = 10⁻³).
func IsCollapsed(amps []complex128, threshold float64) bool {
	return math.Sqrt(Norm2Float(amps)) < threshold
}
