package accuracy

import (
	"math"
	"testing"

	"repro/internal/alg"
	"repro/internal/core"
	"repro/internal/num"
)

func TestVectorErrorExactMatch(t *testing.T) {
	s := 1 / math.Sqrt2
	numAmps := []complex128{complex(s, 0), 0, 0, complex(s, 0)}
	algAmps := []alg.Q{alg.QInvSqrt2, alg.QZero, alg.QZero, alg.QInvSqrt2}
	// The float64 1/√2 is within one ulp of the exact value; after
	// renormalization the distance must sit at the double-precision floor.
	if e := VectorError(numAmps, algAmps); e > 1e-15 {
		t.Fatalf("error %v for the correctly rounded Bell state", e)
	}
}

func TestVectorErrorDetectsSmallPerturbation(t *testing.T) {
	s := 1 / math.Sqrt2
	delta := 1e-9
	numAmps := []complex128{complex(s+delta, 0), 0, 0, complex(s-delta, 0)}
	algAmps := []alg.Q{alg.QInvSqrt2, alg.QZero, alg.QZero, alg.QInvSqrt2}
	e := VectorError(numAmps, algAmps)
	// The perturbation is anti-symmetric, so renormalization cannot hide it:
	// ‖diff‖ ≈ √2·δ.
	if e < delta/2 || e > 3*delta {
		t.Fatalf("error %v, want ≈ %v", e, math.Sqrt2*delta)
	}
}

func TestVectorErrorRenormalizes(t *testing.T) {
	// A pure length error must vanish (paper footnote 8: fixable).
	s := 1 / math.Sqrt2
	numAmps := []complex128{complex(3*s, 0), 0, 0, complex(3*s, 0)}
	algAmps := []alg.Q{alg.QInvSqrt2, alg.QZero, alg.QZero, alg.QInvSqrt2}
	if e := VectorError(numAmps, algAmps); e > 1e-15 {
		t.Fatalf("length-only error not renormalized away: %v", e)
	}
}

func TestVectorErrorZeroVector(t *testing.T) {
	numAmps := []complex128{0, 0}
	algAmps := []alg.Q{alg.QOne, alg.QZero}
	if e := VectorError(numAmps, algAmps); math.Abs(e-1) > 1e-12 {
		t.Fatalf("zero-vector error = %v, want 1 (the exact state's norm)", e)
	}
}

func TestVectorErrorOrthogonalStates(t *testing.T) {
	numAmps := []complex128{1, 0}
	algAmps := []alg.Q{alg.QZero, alg.QOne}
	if e := VectorError(numAmps, algAmps); math.Abs(e-math.Sqrt2) > 1e-12 {
		t.Fatalf("orthogonal error = %v, want √2", e)
	}
}

func TestVectorErrorDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	VectorError([]complex128{1}, []alg.Q{alg.QOne, alg.QZero})
}

func TestStateErrorOnDiagrams(t *testing.T) {
	mA := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	mN := core.NewManager[complex128](num.NewRing(0), core.NormLeft)
	vA := mA.BasisState(3, 5)
	vN := mN.BasisState(3, 5)
	if e := StateError(mN, vN, mA, vA, 3); e != 0 {
		t.Fatalf("identical basis states differ by %v", e)
	}
	vN2 := mN.BasisState(3, 4)
	if e := StateError(mN, vN2, mA, vA, 3); math.Abs(e-math.Sqrt2) > 1e-12 {
		t.Fatalf("distinct basis states differ by %v, want √2", e)
	}
}

func TestIsCollapsedAndNorm(t *testing.T) {
	if !IsCollapsed([]complex128{1e-12, 0}, 1e-9) {
		t.Fatal("near-zero vector not flagged")
	}
	if IsCollapsed([]complex128{0.5, 0.5}, 1e-9) {
		t.Fatal("healthy vector flagged")
	}
	if n := Norm2Float([]complex128{complex(0, 2), 1}); n != 5 {
		t.Fatalf("Norm2Float = %v", n)
	}
}
