package ring

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// sampleKeys returns n deterministic keys (no RNG: the test must behave
// identically on every run and platform).
func sampleKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 8)
		binary.LittleEndian.PutUint64(k, uint64(i)*0x9e3779b97f4a7c15+1)
		keys[i] = k
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return out
}

// TestDeterministic: the ring is a pure function of the member set — same
// owners regardless of member order, across independently built rings (which
// is what "across process restarts" means for an immutable structure).
func TestDeterministic(t *testing.T) {
	ms := members(5)
	a := New(ms, 128)
	reversed := make([]string, len(ms))
	for i, m := range ms {
		reversed[len(ms)-1-i] = m
	}
	b := New(reversed, 128)
	for _, k := range sampleKeys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner differs across rebuilds: %q vs %q", ao, bo)
		}
	}
	// Owners fallback chains must agree too (the router reroutes along them).
	for _, k := range sampleKeys(200) {
		ao, bo := a.Owners(k, 3), b.Owners(k, 3)
		if len(ao) != len(bo) {
			t.Fatalf("owners length differs: %v vs %v", ao, bo)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("owners[%d] differs: %v vs %v", i, ao, bo)
			}
		}
	}
}

// TestBoundedMovementOnJoin: growing N=4 to N=5 must remap at most 2/N of a
// 10k-key sample (the theoretical expectation is 1/N_new = 20%; the bound
// leaves room for vnode placement variance).
func TestBoundedMovementOnJoin(t *testing.T) {
	keys := sampleKeys(10000)
	before := New(members(4), 128)
	after := New(members(5), 128)
	moved := 0
	for _, k := range keys {
		if before.Owner(k) != after.Owner(k) {
			moved++
		}
	}
	bound := 2 * len(keys) / after.Len()
	if moved > bound {
		t.Fatalf("join moved %d/%d keys, bound %d", moved, len(keys), bound)
	}
	if moved == 0 {
		t.Fatal("join moved no keys — the new member owns nothing")
	}
	// Every moved key must have moved TO the new member: a join never
	// shuffles keys between existing members.
	newcomer := members(5)[4]
	for _, k := range keys {
		b, a := before.Owner(k), after.Owner(k)
		if b != a && a != newcomer {
			t.Fatalf("key moved %q -> %q on join of %q", b, a, newcomer)
		}
	}
}

// TestBoundedMovementOnLeave: removing one of 5 members remaps only that
// member's keys, and keys on surviving members do not move.
func TestBoundedMovementOnLeave(t *testing.T) {
	keys := sampleKeys(10000)
	ms := members(5)
	before := New(ms, 128)
	after := New(ms[:4], 128)
	leaver := ms[4]
	moved := 0
	for _, k := range keys {
		b, a := before.Owner(k), after.Owner(k)
		if b != a {
			moved++
			if b != leaver {
				t.Fatalf("key on surviving member moved %q -> %q", b, a)
			}
		}
	}
	bound := 2 * len(keys) / before.Len()
	if moved > bound {
		t.Fatalf("leave moved %d/%d keys, bound %d", moved, len(keys), bound)
	}
}

// TestSpread: with 128 vnodes the max/min shard ratio over 10k keys stays
// under 1.3 for a 4-member ring.
func TestSpread(t *testing.T) {
	r := New(members(4), 128)
	counts := map[string]int{}
	keys := sampleKeys(10000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d members own keys: %v", len(counts), counts)
	}
	minC, maxC := len(keys), 0
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if ratio := float64(maxC) / float64(minC); ratio >= 1.3 {
		t.Fatalf("shard spread max/min = %.3f (counts %v), want < 1.3", ratio, counts)
	}
}

// TestOwnersProperties: Owners returns distinct members, the owner first,
// clamped to the member count; single-member rings always answer themselves.
func TestOwnersProperties(t *testing.T) {
	r := New(members(3), 32)
	for _, k := range sampleKeys(500) {
		owners := r.Owners(k, 99)
		if len(owners) != 3 {
			t.Fatalf("Owners(k, 99) = %v, want all 3 members", owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] = %q, Owner = %q", owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate member in %v", owners)
			}
			seen[o] = true
		}
	}
	solo := New([]string{"only"}, 8)
	if got := solo.Owner([]byte("x")); got != "only" {
		t.Fatalf("solo ring owner = %q", got)
	}
	var empty Ring
	if got := empty.Owner([]byte("x")); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
}

// TestDuplicatesAndEmptyMembers: duplicates collapse, empty names drop; the
// ring over {a, a, b, ""} equals the ring over {a, b}.
func TestDuplicatesAndEmptyMembers(t *testing.T) {
	a := New([]string{"a", "a", "b", ""}, 16)
	b := New([]string{"b", "a"}, 16)
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("lens = %d, %d, want 2, 2", a.Len(), b.Len())
	}
	for _, k := range sampleKeys(300) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatal("deduped ring disagrees with canonical ring")
		}
	}
}
