// Package ring implements the consistent-hash ring that shards job
// fingerprints across qmddd worker nodes. The design goals are the ones the
// scale-out tier needs:
//
//   - Determinism across processes and restarts: the ring is a pure function
//     of the member names and the vnode count. Router and workers configured
//     with the same member list agree on every key's owner without any
//     coordination, and a restarted process rebuilds the identical ring.
//   - Bounded movement: adding or removing one of N members remaps only the
//     keys whose nearest vnode belonged to that member — about 1/N of the
//     keyspace — so warm-manager locality and the content-addressed caches
//     survive a topology change mostly intact.
//   - Even spread: every member contributes VNodes pseudo-random points, so
//     shard sizes concentrate around the mean (the ring_test spread bound).
//
// Hashing is SHA-256 truncated to 64 bits. It is not seeded and has no
// process-local state, which is what makes the ring reproducible; it is also
// the same hash family as the job fingerprints it shards, so adversarial key
// distributions are no worse than random.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the per-member virtual-node count. 128 points per member
// keeps the max/min shard ratio under 1.3 for small clusters (asserted by the
// package tests) at a memory cost of 16 bytes per point.
const DefaultVNodes = 128

type point struct {
	hash uint64
	node int32 // index into nodes
}

// Ring is an immutable consistent-hash ring. Build one with New; to change
// membership, build a new ring (they are cheap: N·VNodes hashes plus a sort).
type Ring struct {
	nodes  []string
	vnodes int
	points []point // sorted by hash
}

// New builds a ring over the given member names with vnodes points per
// member (0 selects DefaultVNodes). Member order does not matter — the ring
// is a function of the member *set* — and duplicate names are collapsed.
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	nodes := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			nodes = append(nodes, m)
		}
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, vnodes: vnodes}
	r.points = make([]point, 0, len(nodes)*vnodes)
	for ni, name := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(name, v), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Equal hashes (astronomically unlikely) tie-break on the member name
		// so the ring stays a pure function of the member set.
		return r.nodes[a.node] < r.nodes[b.node]
	})
	return r
}

// pointHash places vnode v of a member on the ring.
func pointHash(name string, v int) uint64 {
	h := sha256.New()
	h.Write([]byte("qmddd-ring-v1\x00"))
	h.Write([]byte(name))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// keyHash places a key on the ring.
func keyHash(key []byte) uint64 {
	h := sha256.New()
	h.Write([]byte("qmddd-ring-key-v1\x00"))
	h.Write(key)
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// Members returns the member names in canonical (sorted) order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the member owning key: the member of the first ring point at
// or clockwise after the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key []byte) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to k distinct members in ring order starting at the
// key's position. The first entry is the owner; the rest are the members
// that would own the key if every earlier entry left the ring — exactly the
// fallback order a router wants for rerouting, and the predecessors a
// rebalanced worker should ask for a migrated cache entry.
func (r *Ring) Owners(key []byte, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.nodes) {
		k = len(r.nodes)
	}
	kh := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	out := make([]string, 0, k)
	seen := make(map[int32]bool, k)
	for i := 0; i < len(r.points) && len(out) < k; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// String describes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members × %d vnodes)", len(r.nodes), r.vnodes)
}
