// Package opt implements a peephole circuit optimizer whose every rewrite
// is an exact algebraic identity (H² = I, T·T† = I, T² = S, S² = Z, …), so
// optimized circuits are equal to their originals *including global phase*.
// The package also provides the verified entry point the paper's
// equivalence-checking story enables: optimize, then prove the rewrite
// correct with an O(1) exact QMDD root comparison.
package opt

import (
	"fmt"
	"sort"

	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

// selfInverse names gates with g·g = I.
var selfInverse = map[string]bool{
	"h": true, "x": true, "y": true, "z": true, "id": true, "i": true,
}

// inversePairs maps gates to their inverses (both directions listed).
var inversePairs = map[string]string{
	"s": "sdg", "sdg": "s",
	"t": "tdg", "tdg": "t",
	"sx": "sxdg", "sxdg": "sx",
}

// phasePower maps diagonal phase gates to their ω exponent (phase on |1⟩).
var phasePower = map[string]int{
	"t": 1, "s": 2, "z": 4, "sdg": 6, "tdg": 7,
}

// powerGates is the inverse of phasePower with minimal gate sequences.
var powerGates = [8][]string{
	1: {"t"}, 2: {"s"}, 3: {"s", "t"}, 4: {"z"},
	5: {"z", "t"}, 6: {"sdg"}, 7: {"tdg"},
}

// Optimize applies cancellation and phase-merging passes until a fixed
// point. The result is exactly (not just projectively) equivalent.
func Optimize(c *circuit.Circuit) *circuit.Circuit {
	gates := append([]circuit.Gate{}, c.Gates...)
	for {
		next := pass(gates, c.N)
		if len(next) == len(gates) {
			gates = next
			break
		}
		gates = next
	}
	out := circuit.New(c.Name+"_opt", c.N)
	for _, g := range gates {
		out.Append(g)
	}
	return out
}

// pass performs one sweep: for each gate, look at the previous gate that
// touched any of its qubits; cancel inverse pairs acting on identical lines
// and merge compatible diagonal phase gates.
func pass(gates []circuit.Gate, n int) []circuit.Gate {
	var out []circuit.Gate
	last := make([]int, n) // qubit -> index into out of the last touching gate
	for q := range last {
		last[q] = -1
	}
	removed := make(map[int]bool)
	touch := func(g circuit.Gate) []int {
		qs := []int{g.Target}
		for _, ct := range g.Controls {
			qs = append(qs, ct.Qubit)
		}
		sort.Ints(qs)
		return qs
	}
	recompute := func() {
		for q := range last {
			last[q] = -1
		}
		for i, g := range out {
			if removed[i] {
				continue
			}
			for _, q := range touch(g) {
				last[q] = i
			}
		}
	}
	for _, g := range gates {
		qs := touch(g)
		prev := -1
		uniform := true
		for _, q := range qs {
			if prev == -1 {
				prev = last[q]
			} else if last[q] != prev {
				uniform = false
			}
		}
		if uniform && prev >= 0 && !removed[prev] && sameLines(out[prev], g) {
			pg := out[prev]
			switch {
			case cancels(pg, g):
				removed[prev] = true
				recompute()
				continue
			case phasePower[pg.Name] != 0 && phasePower[g.Name] != 0 && pg.Name != "" && g.Name != "":
				p1, ok1 := phasePower[pg.Name]
				p2, ok2 := phasePower[g.Name]
				if ok1 && ok2 {
					merged := (p1 + p2) % 8
					removed[prev] = true
					if merged != 0 {
						for _, name := range powerGates[merged] {
							out = append(out, circuit.Gate{Name: name, Target: g.Target, Controls: g.Controls})
						}
					}
					recompute()
					continue
				}
			}
		}
		out = append(out, g)
		idx := len(out) - 1
		for _, q := range qs {
			last[q] = idx
		}
	}
	// Compact the removals.
	var compacted []circuit.Gate
	for i, g := range out {
		if !removed[i] {
			compacted = append(compacted, g)
		}
	}
	return compacted
}

// sameLines reports whether two gates act on the same target and the same
// control set (including polarities).
func sameLines(a, b circuit.Gate) bool {
	if a.Target != b.Target || len(a.Controls) != len(b.Controls) {
		return false
	}
	type ctl struct {
		q   int
		neg bool
	}
	set := map[ctl]bool{}
	for _, c := range a.Controls {
		set[ctl{c.Qubit, c.Neg}] = true
	}
	for _, c := range b.Controls {
		if !set[ctl{c.Qubit, c.Neg}] {
			return false
		}
	}
	return true
}

// cancels reports whether a followed by b is the identity (exact inverses
// with no parameters, or parametric gates with opposite angles).
func cancels(a, b circuit.Gate) bool {
	if len(a.Params) != len(b.Params) {
		return false
	}
	if len(a.Params) == 1 {
		// rz/rx/ry/p with opposite angles.
		if a.Name == b.Name && a.Params[0] == -b.Params[0] {
			switch a.Name {
			case "rz", "rx", "ry", "p":
				return true
			}
		}
		return false
	}
	if selfInverse[a.Name] && a.Name == b.Name {
		return true
	}
	return inversePairs[a.Name] == b.Name
}

// OptimizeVerified optimizes and then proves the rewrite exactly equivalent
// by building both unitaries on the exact QMDD and comparing roots. It
// returns an error if (contrary to the package's invariants) verification
// fails — the safety net the paper's exact canonicity provides for free.
func OptimizeVerified(c *circuit.Circuit) (*circuit.Circuit, error) {
	o := Optimize(c)
	if !c.IsCliffordT() {
		// Parametric circuits cannot be verified exactly; the caller keeps
		// the optimizer's algebraic-identity guarantee only.
		return o, nil
	}
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	eq, err := sim.Equivalent(m, c, o)
	if err != nil {
		return nil, err
	}
	if !eq {
		return nil, fmt.Errorf("opt: optimizer produced a non-equivalent circuit (bug)")
	}
	return o, nil
}
