package opt

import (
	"math/rand"
	"testing"

	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestCancelSelfInverse(t *testing.T) {
	c := circuit.New("c", 2)
	c.H(0).H(0).X(1).X(1).CX(0, 1).CX(0, 1)
	o := Optimize(c)
	if o.Len() != 0 {
		t.Fatalf("expected empty circuit, got %v", o.Gates)
	}
}

func TestCancelInversePairs(t *testing.T) {
	c := circuit.New("c", 1)
	c.S(0).Sdg(0).T(0).Tdg(0)
	if o := Optimize(c); o.Len() != 0 {
		t.Fatalf("expected empty circuit, got %v", o.Gates)
	}
	// Reverse order too.
	c2 := circuit.New("c", 1)
	c2.Sdg(0).S(0)
	if o := Optimize(c2); o.Len() != 0 {
		t.Fatalf("sdg·s not cancelled: %v", o.Gates)
	}
}

func TestPhaseMerging(t *testing.T) {
	c := circuit.New("c", 1)
	c.T(0).T(0) // = S
	o := Optimize(c)
	if o.Len() != 1 || o.Gates[0].Name != "s" {
		t.Fatalf("T·T → %v, want s", o.Gates)
	}
	c2 := circuit.New("c", 1)
	c2.T(0).T(0).T(0).T(0) // = Z
	o2 := Optimize(c2)
	if o2.Len() != 1 || o2.Gates[0].Name != "z" {
		t.Fatalf("T⁴ → %v, want z", o2.Gates)
	}
	c3 := circuit.New("c", 1)
	c3.S(0).S(0).S(0).S(0) // = I
	if o3 := Optimize(c3); o3.Len() != 0 {
		t.Fatalf("S⁴ → %v, want empty", o3.Gates)
	}
	c4 := circuit.New("c", 1)
	c4.Z(0).T(0) // stays as z·t (power 5)
	o4 := Optimize(c4)
	if o4.Len() != 2 {
		t.Fatalf("Z·T → %v", o4.Gates)
	}
}

func TestInterveningGateBlocksCancellation(t *testing.T) {
	c := circuit.New("c", 2)
	c.H(0).CX(0, 1).H(0) // the CNOT touches qubit 0: H's must survive
	o := Optimize(c)
	if o.Len() != 3 {
		t.Fatalf("H–CX–H wrongly optimized to %v", o.Gates)
	}
	// A gate on the other qubit does not block.
	c2 := circuit.New("c", 2)
	c2.H(0).X(1).H(0)
	o2 := Optimize(c2)
	if o2.Len() != 1 || o2.Gates[0].Name != "x" {
		t.Fatalf("H–(X on other qubit)–H → %v, want just x", o2.Gates)
	}
}

func TestControlledCancellation(t *testing.T) {
	c := circuit.New("c", 3)
	c.CCX(0, 1, 2).CCX(0, 1, 2)
	if o := Optimize(c); o.Len() != 0 {
		t.Fatalf("CCX pair not cancelled: %v", o.Gates)
	}
	// Different control sets must not cancel.
	c2 := circuit.New("c", 3)
	c2.CX(0, 2).CX(1, 2)
	if o := Optimize(c2); o.Len() != 2 {
		t.Fatalf("differently-controlled CNOTs cancelled: %v", o.Gates)
	}
	// Controlled phase merging.
	c3 := circuit.New("c", 2)
	c3.Append(circuit.Gate{Name: "t", Target: 1, Controls: []circuit.Control{{Qubit: 0}}})
	c3.Append(circuit.Gate{Name: "t", Target: 1, Controls: []circuit.Control{{Qubit: 0}}})
	o3 := Optimize(c3)
	if o3.Len() != 1 || o3.Gates[0].Name != "s" || len(o3.Gates[0].Controls) != 1 {
		t.Fatalf("controlled T·T → %v, want controlled s", o3.Gates)
	}
}

func TestParametricCancellation(t *testing.T) {
	c := circuit.New("c", 1)
	c.Rz(0.7, 0).Rz(-0.7, 0)
	if o := Optimize(c); o.Len() != 0 {
		t.Fatalf("Rz(θ)·Rz(−θ) not cancelled: %v", o.Gates)
	}
	c2 := circuit.New("c", 1)
	c2.Rz(0.7, 0).Rz(0.6, 0)
	if o := Optimize(c2); o.Len() != 2 {
		t.Fatalf("distinct rotations wrongly merged: %v", o.Gates)
	}
}

// TestOptimizeVerifiedOnRandomCircuits: the headline property — every
// optimization of a random Clifford+T circuit is exactly equivalent, proven
// by the O(1) QMDD root comparison, and never longer than the input.
func TestOptimizeVerifiedOnRandomCircuits(t *testing.T) {
	r := rand.New(rand.NewSource(140))
	names := []string{"h", "x", "z", "s", "sdg", "t", "tdg"}
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(3)
		c := circuit.New("rand", n)
		for g := 0; g < 60; g++ {
			if r.Intn(4) == 0 {
				a, b := r.Intn(n), r.Intn(n)
				if a == b {
					b = (b + 1) % n
				}
				c.CX(a, b)
				continue
			}
			c.Append(circuit.Gate{Name: names[r.Intn(len(names))], Target: r.Intn(n)})
		}
		o, err := OptimizeVerified(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if o.Len() > c.Len() {
			t.Fatalf("trial %d: optimizer grew the circuit %d → %d", trial, c.Len(), o.Len())
		}
	}
}

// TestOptimizerShrinksSKOutput: Solovay–Kitaev output is full of seams the
// optimizer tightens further after the word-level Simplify.
func TestOptimizerShrinksRedundantPrograms(t *testing.T) {
	c := circuit.New("pad", 2)
	for i := 0; i < 10; i++ {
		c.H(0).H(0).T(1)
	}
	o, err := OptimizeVerified(c)
	if err != nil {
		t.Fatal(err)
	}
	// 10 T's = Z·S (power 10 mod 8 = 2 → s); all H pairs gone.
	if o.Len() >= c.Len()/2 {
		t.Fatalf("weak optimization: %d → %d (%v)", c.Len(), o.Len(), o.Gates)
	}
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	eq, err := sim.Equivalent(m, c, o)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("optimized padding circuit not equivalent")
	}
}
