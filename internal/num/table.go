// Package num implements the numerical complex-number substrate of current
// QMDD packages: IEEE-754 double-precision values compared and interned with
// a configurable tolerance ε. It is the representation whose
// accuracy/compactness trade-off the paper quantifies (Section III, V-A).
package num

import (
	"math"
	"strconv"
)

// Table interns complex values so that numbers differing by at most Tol in
// both the real and the imaginary component map to one canonical
// representative — exactly the mechanism existing QMDD packages use to
// re-detect redundancies destroyed by floating-point rounding. With Tol = 0
// the table is inert and comparisons are exact bit equality (the paper's
// ε = 0 configuration).
//
// The table pre-seeds the exceptional values 0, ±1, ±i and ±1/√2 so that,
// with a large tolerance, computed amplitudes collapse onto them — this is
// what produces the paper's "perfectly compact but obviously wrong"
// zero-vector results for ε = 10⁻³.
type Table struct {
	Tol     float64
	buckets map[cell][]complex128
	// Lookups counts intern operations; Hits counts how many found an
	// existing representative.
	Lookups, Hits uint64
}

type cell struct{ x, y int64 }

// NewTable returns a table with the given tolerance.
func NewTable(tol float64) *Table {
	t := &Table{Tol: tol, buckets: make(map[cell][]complex128)}
	if tol > 0 {
		s := 1 / math.Sqrt2
		for _, v := range []complex128{0, 1, -1, 1i, -1i,
			complex(s, 0), complex(-s, 0), complex(0, s), complex(0, -s)} {
			t.insert(v)
		}
	}
	return t
}

func (t *Table) cellOf(v complex128) cell {
	return cell{quantize(real(v), t.Tol), quantize(imag(v), t.Tol)}
}

// quantize maps x to its grid cell ⌊x/tol⌋, folding the unbounded quotient
// into int64 range with a wrap that preserves adjacency away from the
// (astronomically rare) fold boundary. A fold can only cause a missed merge
// — the Near check on every candidate keeps lookups correct.
func quantize(x, tol float64) int64 {
	q := math.Floor(x / tol)
	const lim = 1 << 56
	if q >= -lim && q <= lim {
		return int64(q)
	}
	folded := math.Remainder(q, 2*lim)
	return int64(folded)
}

func (t *Table) insert(v complex128) {
	c := t.cellOf(v)
	t.buckets[c] = append(t.buckets[c], v)
}

// Lookup returns the canonical representative for v: the *nearest*
// previously interned value within Tol of v (component-wise admission,
// squared-Euclidean tie-break), inserting v as a new representative if none
// qualifies. Nearest-wins matters near cell boundaries: fixed scan order
// used to keep the first in-tolerance candidate, which could canonicalize v
// past a strictly closer — even pre-seeded exact — representative. An exact
// match short-circuits the scan. With Tol = 0 it returns v unchanged.
func (t *Table) Lookup(v complex128) complex128 {
	if t.Tol <= 0 {
		return v
	}
	t.Lookups++
	c := t.cellOf(v)
	var best complex128
	bestDist := math.Inf(1)
	found := false
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for _, w := range t.buckets[cell{c.x + dx, c.y + dy}] {
				if !Near(v, w, t.Tol) {
					continue
				}
				if w == v { // exact representative: no closer candidate exists
					t.Hits++
					return w
				}
				dr, di := real(v)-real(w), imag(v)-imag(w)
				if d := dr*dr + di*di; d < bestDist {
					best, bestDist, found = w, d, true
				}
			}
		}
	}
	if found {
		t.Hits++
		return best
	}
	t.insert(v)
	return v
}

// Size returns the number of distinct representatives stored.
func (t *Table) Size() int {
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}

// Reset drops all interned values (keeping the seeds).
func (t *Table) Reset() {
	t.buckets = make(map[cell][]complex128)
	t.Lookups, t.Hits = 0, 0
	if t.Tol > 0 {
		s := 1 / math.Sqrt2
		for _, v := range []complex128{0, 1, -1, 1i, -1i,
			complex(s, 0), complex(-s, 0), complex(0, s), complex(0, -s)} {
			t.insert(v)
		}
	}
}

// Near reports whether a and b agree within tol in both components
// (exact equality for tol = 0).
func Near(a, b complex128, tol float64) bool {
	if tol <= 0 {
		return a == b
	}
	return math.Abs(real(a)-real(b)) <= tol && math.Abs(imag(a)-imag(b)) <= tol
}

// KeyOf formats the exact bits of a complex value; used as the hash key of
// interned representatives.
func KeyOf(v complex128) string {
	return strconv.FormatUint(math.Float64bits(real(v)), 36) + "," +
		strconv.FormatUint(math.Float64bits(imag(v)), 36)
}
