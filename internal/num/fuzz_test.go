package num

import (
	"math"
	"testing"
)

// FuzzTableLookup drives the ε-interning table with arbitrary values and
// tolerances. Invariants checked on every finite input with a positive
// finite tolerance:
//
//  1. no panic (also checked, trivially, for degenerate tolerances);
//  2. the canonical representative is within Tol of the input, or is the
//     input itself (fresh insertion);
//  3. idempotence — a representative is a fixed point of Lookup;
//  4. determinism — looking the same value up again yields the same
//     representative.
//
// The checked-in corpus (testdata/fuzz/FuzzTableLookup) seeds the paper's
// interesting cases: cell-boundary values, near-seed values, the ε = 0
// exact mode and denormal-scale tolerances.
func FuzzTableLookup(f *testing.F) {
	f.Add(0.206, 0.0, 1e-2)                      // between two representatives' cells
	f.Add(1/math.Sqrt2+2e-4, 0.0, 1e-3)          // collapses onto a seed
	f.Add(0.123456, -0.654321, 0.0)              // exact mode: inert
	f.Add(3e-8-2.5e-9, 0.0, 1e-8)                // straddles a cell boundary
	f.Add(-1.0, 1.0, 1e-15)                      // seed corner
	f.Add(math.MaxFloat64, -math.MaxFloat64, 1.) // quantize fold region
	f.Add(5e-324, 5e-324, 5e-324)                // denormal everything
	f.Fuzz(func(t *testing.T, re, im, tol float64) {
		tb := NewTable(tol)
		v := complex(re, im)
		r := tb.Lookup(v) // invariant 1: must not panic, whatever the input
		if math.IsNaN(re) || math.IsNaN(im) || math.IsInf(re, 0) || math.IsInf(im, 0) {
			return
		}
		if tol <= 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
			if !math.IsNaN(tol) && tol <= 0 && r != v {
				t.Fatalf("exact mode changed the value: Lookup(%v) = %v", v, r)
			}
			return
		}
		if r != v && !Near(v, r, tol) {
			t.Fatalf("representative out of tolerance: Lookup(%v) = %v (tol %g)", v, r, tol)
		}
		if rr := tb.Lookup(r); rr != r {
			t.Fatalf("not idempotent: Lookup(%v) = %v, then Lookup(%v) = %v", v, r, r, rr)
		}
		if r2 := tb.Lookup(v); r2 != r {
			t.Fatalf("not deterministic: Lookup(%v) = %v then %v", v, r, r2)
		}
	})
}
