package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableExactModeIsInert(t *testing.T) {
	tb := NewTable(0)
	v := complex(0.123456, -0.654321)
	if got := tb.Lookup(v); got != v {
		t.Fatalf("Lookup changed value in exact mode: %v", got)
	}
	if tb.Size() != 0 {
		t.Fatalf("exact-mode table stored entries: %d", tb.Size())
	}
}

func TestTableCollapsesNearbyValues(t *testing.T) {
	tb := NewTable(1e-10)
	a := complex(1/math.Sqrt2, 0)
	b := a + complex(3e-11, -2e-11)
	ra := tb.Lookup(a)
	rb := tb.Lookup(b)
	if ra != rb {
		t.Fatalf("nearby values interned to different representatives: %v vs %v", ra, rb)
	}
}

func TestTableSeedsSwallowSmallValues(t *testing.T) {
	// With a large tolerance, values near 0 collapse to exactly 0 — the
	// mechanism behind the paper's zero-vector failures at ε = 10⁻³.
	tb := NewTable(1e-3)
	if got := tb.Lookup(complex(4e-4, -9e-4)); got != 0 {
		t.Fatalf("small value interned to %v, want 0", got)
	}
	if got := tb.Lookup(complex(1+5e-4, 0)); got != 1 {
		t.Fatalf("value near 1 interned to %v, want 1", got)
	}
	if got := tb.Lookup(complex(1/math.Sqrt2+2e-4, 0)); got != complex(1/math.Sqrt2, 0) {
		t.Fatalf("value near 1/√2 interned to %v", got)
	}
}

func TestTableDistinctValuesStayDistinct(t *testing.T) {
	tb := NewTable(1e-6)
	a := tb.Lookup(complex(0.25, 0))
	b := tb.Lookup(complex(0.25+1e-3, 0))
	if a == b {
		t.Fatalf("values 1e-3 apart collapsed at ε = 1e-6")
	}
}

// TestTableLookupNearestWins is the regression test for the fixed-scan-order
// bug: with two representatives in tolerance of v, the scan used to keep the
// *first* one it met (lower grid cell first), not the nearest. Here the
// farther representative 0.199 lives in cell 19 and the nearer 0.211 in cell
// 21; v = 0.206 (cell 20) must canonicalize to 0.211.
func TestTableLookupNearestWins(t *testing.T) {
	tol := 1e-2
	tb := NewTable(tol)
	far := complex(0.199, 0)  // cell 19 — scanned first
	near := complex(0.211, 0) // cell 21 — strictly closer to v
	if got := tb.Lookup(far); got != far {
		t.Fatalf("far representative not inserted: %v", got)
	}
	if got := tb.Lookup(near); got != near {
		t.Fatalf("near representative not inserted (collapsed to %v)", got)
	}
	v := complex(0.206, 0) // |v−far| = 0.007, |v−near| = 0.005, both ≤ tol
	if got := tb.Lookup(v); got != near {
		t.Fatalf("Lookup(%v) = %v, want nearest representative %v", v, got, near)
	}
}

// TestTableLookupExactRepShortCircuits: a value that *is* a representative
// must map to itself and be accounted as exactly one hit (the scan
// short-circuits on an exact match instead of iterating on).
func TestTableLookupExactRepShortCircuits(t *testing.T) {
	tol := 1e-2
	tb := NewTable(tol)
	s := complex(1/math.Sqrt2, 0) // pre-seeded exact representative
	hits := tb.Hits
	if got := tb.Lookup(s); got != s {
		t.Fatalf("Lookup of the exact seed returned %v, want %v", got, s)
	}
	if tb.Hits != hits+1 {
		t.Fatalf("exact lookup not accounted as a hit")
	}
	// A nearby value in a *different* cell still canonicalizes onto the
	// seed, exercising the cross-cell path of the nearest-wins scan.
	if got := tb.Lookup(s + complex(0.009, 0)); got != s {
		t.Fatalf("near-seed value interned to %v, want the seed %v", got, s)
	}
}

// TestTableLookupIdempotent: Lookup(Lookup(v)) == Lookup(v) over random
// values and tolerances — every canonical representative is a fixed point.
func TestTableLookupIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tol := range []float64{1e-12, 1e-8, 1e-4, 1e-2} {
		tb := NewTable(tol)
		f := func(a, b int16) bool {
			// Cluster values tightly enough that tolerances actually bind.
			v := complex(float64(a)*tol/3, float64(b)*tol/3)
			r := tb.Lookup(v)
			return tb.Lookup(r) == r && tb.Lookup(v) == r
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rng}); err != nil {
			t.Fatalf("tol %g: %v", tol, err)
		}
	}
}

func TestTableCellBoundary(t *testing.T) {
	// Values within ε that land in adjacent grid cells must still collapse.
	tol := 1e-8
	tb := NewTable(tol)
	base := 3 * tol // exactly on a cell boundary region
	a := tb.Lookup(complex(base-tol/4, 0))
	b := tb.Lookup(complex(base+tol/4, 0))
	if a != b {
		t.Fatalf("boundary-straddling values not collapsed: %v vs %v", a, b)
	}
}

func TestRingOpsIntern(t *testing.T) {
	r := NewRing(1e-9)
	x := complex(1/math.Sqrt2, 0)
	// A second route to 1/√2 with rounding noise.
	y := r.Div(r.Mul(x, x), x+complex(2e-10, 0))
	if !r.Equal(x, y) {
		t.Fatalf("ring did not identify ε-equal values: %v vs %v", x, y)
	}
	if r.Key(r.Mul(r.One(), x)) != r.Key(x) {
		t.Fatalf("interned keys differ for equal values")
	}
}

func TestRingFromQAndAbs2(t *testing.T) {
	r := NewRing(0)
	// FromQ of 1/√2 must approximate it to machine precision.
	// (constructed via the alg package in its own tests; here use Abs2 only)
	v := complex(3, -4)
	if got := r.Abs2(v); got != 25 {
		t.Fatalf("Abs2(3−4i) = %v, want 25", got)
	}
	if !r.IsZero(r.Zero()) || !r.IsOne(r.One()) {
		t.Fatal("Zero/One predicates broken")
	}
	if r.BitLen(v) != 0 {
		t.Fatal("numeric BitLen should be 0")
	}
}

func TestTableReset(t *testing.T) {
	tb := NewTable(1e-6)
	tb.Lookup(complex(0.31, 0.17))
	seeds := NewTable(1e-6).Size()
	tb.Reset()
	if tb.Size() != seeds {
		t.Fatalf("Reset left %d entries, want %d seeds", tb.Size(), seeds)
	}
}
