package num

import (
	"math"
	"math/cmplx"

	"repro/internal/alg"
)

// Ring adapts complex128-with-tolerance arithmetic to the coeff.Ring
// interface. Every operation result is interned through the tolerance table,
// mirroring how existing QMDD packages canonicalize complex numbers after
// each arithmetic step.
type Ring struct {
	T *Table
}

// NewRing returns a numerical coefficient ring with comparison tolerance ε.
func NewRing(eps float64) *Ring { return &Ring{T: NewTable(eps)} }

// Eps returns the configured tolerance.
func (r *Ring) Eps() float64 { return r.T.Tol }

// ConcurrentSafe reports whether this ring may be used from multiple
// goroutines at once (coeff.ConcurrentRing). True only at ε ≤ 0, where
// Table.Lookup returns its argument unchanged and never mutates the table;
// with ε > 0 the nearest-wins interning both races and makes canonical
// representatives insertion-order-dependent.
func (r *Ring) ConcurrentSafe() bool { return r.T.Tol <= 0 }

// Exact reports that complex128 arithmetic is not exact (coeff.ExactRing):
// results carry float rounding, and at ε > 0 the interning tolerance folds
// nearby values together. Fidelity figures derived in this ring are
// approximate and are flagged as such by core.Approximate.
func (r *Ring) Exact() bool { return false }

func (r *Ring) intern(v complex128) complex128 { return r.T.Lookup(v) }

// Zero returns 0.
func (r *Ring) Zero() complex128 { return 0 }

// One returns 1.
func (r *Ring) One() complex128 { return 1 }

// Add returns the interned sum a + b.
func (r *Ring) Add(a, b complex128) complex128 { return r.intern(a + b) }

// Sub returns the interned difference a − b.
func (r *Ring) Sub(a, b complex128) complex128 { return r.intern(a - b) }

// Mul returns the interned product a · b.
func (r *Ring) Mul(a, b complex128) complex128 { return r.intern(a * b) }

// Div returns the interned quotient a / b.
func (r *Ring) Div(a, b complex128) complex128 { return r.intern(a / b) }

// Neg returns −a.
func (r *Ring) Neg(a complex128) complex128 { return r.intern(-a) }

// Conj returns the complex conjugate.
func (r *Ring) Conj(a complex128) complex128 { return r.intern(cmplx.Conj(a)) }

// IsZero reports a ≈ 0 within the tolerance.
func (r *Ring) IsZero(a complex128) bool { return Near(a, 0, r.T.Tol) }

// IsOne reports a ≈ 1 within the tolerance.
func (r *Ring) IsOne(a complex128) bool { return Near(a, 1, r.T.Tol) }

// Equal reports component-wise equality within the tolerance.
func (r *Ring) Equal(a, b complex128) bool { return Near(a, b, r.T.Tol) }

// Key returns the bit-exact key of the (already interned) value.
func (r *Ring) Key(a complex128) string { return KeyOf(a) }

// Hash returns a 64-bit hash of the exact bit pattern of a — the
// coeff.Hasher fast path, consistent with Key and allocation-free.
func (r *Ring) Hash(a complex128) uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := (offset ^ math.Float64bits(real(a))) * prime
	return (h ^ math.Float64bits(imag(a))) * prime
}

// FromQ approximates an exact Q[ω] value by the nearest complex128.
func (r *Ring) FromQ(q alg.Q) complex128 { return r.intern(q.Complex128()) }

// FromComplex interns an arbitrary complex value (always possible here).
func (r *Ring) FromComplex(c complex128) (complex128, bool) { return r.intern(c), true }

// Complex128 returns a unchanged.
func (r *Ring) Complex128(a complex128) complex128 { return a }

// Abs2 returns |a|².
func (r *Ring) Abs2(a complex128) float64 {
	return real(a)*real(a) + imag(a)*imag(a)
}

// BitLen returns 0: floating-point coefficients have fixed width.
func (r *Ring) BitLen(complex128) int { return 0 }
