package num

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

type qcC struct{ V complex128 }

// Generate produces values spanning many magnitudes, including exact zeros
// and values adjacent in ulps.
func (qcC) Generate(r *rand.Rand, size int) reflect.Value {
	var v complex128
	switch r.Intn(5) {
	case 0:
		v = 0
	case 1:
		v = complex(1/math.Sqrt2, 0)
	case 2:
		base := complex(r.NormFloat64(), r.NormFloat64())
		v = base * complex(math.Pow(10, float64(r.Intn(12)-6)), 0)
	case 3:
		// A value one ulp away from 1/√2.
		v = complex(math.Nextafter(1/math.Sqrt2, 1), 0)
	default:
		v = complex(r.Float64()-0.5, r.Float64()-0.5)
	}
	return reflect.ValueOf(qcC{v})
}

var qcCfg = &quick.Config{MaxCount: 500}

// TestQuickInternIdempotent: interning is idempotent — looking up a
// representative returns itself.
func TestQuickInternIdempotent(t *testing.T) {
	tb := NewTable(1e-10)
	if err := quick.Check(func(a qcC) bool {
		r1 := tb.Lookup(a.V)
		return tb.Lookup(r1) == r1
	}, qcCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickInternWithinTolerance: the representative is within ε of the
// input (component-wise).
func TestQuickInternWithinTolerance(t *testing.T) {
	tol := 1e-9
	tb := NewTable(tol)
	if err := quick.Check(func(a qcC) bool {
		r := tb.Lookup(a.V)
		return Near(a.V, r, tol)
	}, qcCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickNearProperties: reflexive, symmetric, and exact at tol = 0.
func TestQuickNearProperties(t *testing.T) {
	if err := quick.Check(func(a, b qcC) bool {
		if !Near(a.V, a.V, 0) {
			return false
		}
		if Near(a.V, b.V, 1e-9) != Near(b.V, a.V, 1e-9) {
			return false
		}
		return Near(a.V, b.V, 0) == (a.V == b.V)
	}, qcCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickKeyConsistency: equal representatives have equal keys.
func TestQuickKeyConsistency(t *testing.T) {
	tb := NewTable(1e-10)
	if err := quick.Check(func(a, b qcC) bool {
		ra, rb := tb.Lookup(a.V), tb.Lookup(b.V)
		if ra == rb {
			return KeyOf(ra) == KeyOf(rb)
		}
		return KeyOf(ra) != KeyOf(rb)
	}, qcCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRingClosedUnderOps: ring operations on interned values stay
// finite (no NaN/Inf creeps in from normal inputs).
func TestQuickRingClosedUnderOps(t *testing.T) {
	r := NewRing(1e-12)
	finite := func(v complex128) bool {
		return !math.IsNaN(real(v)) && !math.IsNaN(imag(v)) &&
			!math.IsInf(real(v), 0) && !math.IsInf(imag(v), 0)
	}
	if err := quick.Check(func(a, b qcC) bool {
		if !finite(a.V) || !finite(b.V) {
			return true
		}
		if !finite(r.Add(a.V, b.V)) || !finite(r.Mul(a.V, b.V)) ||
			!finite(r.Neg(a.V)) || !finite(r.Conj(a.V)) {
			return false
		}
		if !r.IsZero(b.V) {
			return finite(r.Div(a.V, b.V))
		}
		return true
	}, qcCfg); err != nil {
		t.Error(err)
	}
}
