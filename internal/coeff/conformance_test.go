package coeff_test

import (
	"testing"

	"repro/internal/alg"
	"repro/internal/coeff"
	"repro/internal/num"
)

// Compile-time interface checks: the two coefficient systems implement the
// abstractions the QMDD core consumes.
var (
	_ coeff.Ring[alg.Q]      = alg.Ring{}
	_ coeff.GCDRing[alg.Q]   = alg.Ring{}
	_ coeff.Ring[complex128] = (*num.Ring)(nil)
)

func algSamples() []alg.Q {
	return []alg.Q{
		alg.QZero,
		alg.QOne,
		alg.QMinusOne,
		alg.QI,
		alg.QInvSqrt2,
		alg.QFromD(alg.DOmegaVal),
		alg.NewQ(1, -2, 3, 4, 2, 1),
		alg.NewQ(0, 0, 0, 1, 0, 3), // 1/3
		alg.NewQ(-5, 7, 0, 2, -3, 9),
	}
}

func TestAlgRingConformance(t *testing.T) {
	if err := coeff.CheckRing[alg.Q](alg.Ring{}, algSamples(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestNumRingConformance(t *testing.T) {
	r := num.NewRing(0)
	samples := []complex128{0, 1, -1, 1i, complex(0.7071067811865476, 0),
		complex(0.25, -0.5), complex(-3, 4)}
	if err := coeff.CheckRing[complex128](r, samples, 1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestNumRingConformanceWithTolerance(t *testing.T) {
	r := num.NewRing(1e-10)
	samples := []complex128{0, 1, -1, 1i, complex(0.5, 0.25), complex(-0.125, 2)}
	if err := coeff.CheckRing[complex128](r, samples, 1e-9); err != nil {
		t.Fatal(err)
	}
}

// brokenRing violates commutativity of addition; CheckRing must notice a
// law violation when handed a defective implementation.
type brokenRing struct{ *num.Ring }

func (b brokenRing) Add(x, y complex128) complex128 { return x - y }

func TestCheckRingDetectsViolations(t *testing.T) {
	b := brokenRing{Ring: num.NewRing(0)}
	samples := []complex128{0, 1, 2i}
	if err := coeff.CheckRing[complex128](b, samples, 1e-12); err == nil {
		t.Fatal("broken ring passed conformance")
	}
}

// TestFloatsAreNotDistributive documents the paper's Section III point at
// the law level: with ε = 0 (bit-exact comparison), complex128 arithmetic
// is not even distributive — the exact algebraic ring is.
func TestFloatsAreNotDistributive(t *testing.T) {
	r := num.NewRing(0)
	s := complex(0.7071067811865476, 0) // float64(1/√2)
	a, b, c := s, s, complex(0.1, 0)
	lhs := r.Mul(a, r.Add(b, c))
	rhs := r.Add(r.Mul(a, b), r.Mul(a, c))
	if r.Equal(lhs, rhs) {
		t.Skip("this particular triple happened to distribute; the law still fails in general")
	}
	// The exact ring distributes for the corresponding exact values.
	x := alg.QInvSqrt2
	y := alg.NewQ(0, 0, 0, 1, 0, 5) // 1/5 (any exact value)
	l := x.Mul(x.Add(y))
	rr := x.Mul(x).Add(x.Mul(y))
	if !l.Equal(rr) {
		t.Fatal("exact ring failed distributivity?!")
	}
}
