package coeff

import (
	"fmt"
	"math/cmplx"
)

// Conformance checking for Ring implementations: a table-driven law suite
// any coefficient ring must satisfy for the QMDD core to be correct. It is
// exported (rather than living in a _test file) so every implementation
// package can run it against its own ring with its own sample generator.

// CheckRing verifies the ring laws on the given samples (which should
// include 0, 1 and a diverse spread of values). tol bounds the allowed
// deviation in the complex128 cross-checks — 0 for exact rings, a small
// epsilon for floating-point rings. It returns the first violation found.
func CheckRing[T any](r Ring[T], samples []T, tol float64) error {
	if !r.IsZero(r.Zero()) {
		return fmt.Errorf("IsZero(Zero()) is false")
	}
	if !r.IsOne(r.One()) {
		return fmt.Errorf("IsOne(One()) is false")
	}
	if r.IsZero(r.One()) {
		return fmt.Errorf("One() reported zero")
	}
	hasher, _ := any(r).(Hasher[T])
	near := func(a, b complex128, scale float64) bool {
		return cmplx.Abs(a-b) <= tol*(1+scale)+1e-15
	}
	// lawEqual: exact rings satisfy the laws structurally; floating-point
	// rings only satisfy them within their tolerance — bit-exact
	// distributivity of (a+b)·c genuinely FAILS for complex128 (see the
	// paper's Section III and TestFloatsAreNotDistributive).
	lawEqual := func(x, y T) bool {
		if r.Equal(x, y) {
			return true
		}
		cx, cy := r.Complex128(x), r.Complex128(y)
		return near(cx, cy, cmplx.Abs(cx)+cmplx.Abs(cy))
	}
	for i, a := range samples {
		// Neutral elements and negation.
		if !r.Equal(r.Add(a, r.Zero()), a) {
			return fmt.Errorf("sample %d: a + 0 ≠ a", i)
		}
		if !r.Equal(r.Mul(a, r.One()), a) {
			return fmt.Errorf("sample %d: a · 1 ≠ a", i)
		}
		if !r.IsZero(r.Add(a, r.Neg(a))) {
			return fmt.Errorf("sample %d: a + (−a) ≠ 0", i)
		}
		if !r.IsZero(r.Sub(a, a)) {
			return fmt.Errorf("sample %d: a − a ≠ 0", i)
		}
		if !r.Equal(r.Conj(r.Conj(a)), a) {
			return fmt.Errorf("sample %d: conj not involutive", i)
		}
		// Key ↔ Equal coherence.
		if r.Key(a) != r.Key(a) {
			return fmt.Errorf("sample %d: Key not deterministic", i)
		}
		if hasher != nil && hasher.Hash(a) != hasher.Hash(a) {
			return fmt.Errorf("sample %d: Hash not deterministic", i)
		}
		// Abs2 matches the complex view.
		c := r.Complex128(a)
		want := real(c)*real(c) + imag(c)*imag(c)
		if d := r.Abs2(a) - want; d > tol*(1+want)+1e-9 || d < -tol*(1+want)-1e-9 {
			return fmt.Errorf("sample %d: Abs2 = %v, complex view %v", i, r.Abs2(a), want)
		}
		// Division inverts multiplication for nonzero divisors.
		if !r.IsZero(a) {
			for j, b := range samples {
				q := r.Div(r.Mul(b, a), a)
				if !near(r.Complex128(q), r.Complex128(b), cmplx.Abs(r.Complex128(b))) {
					return fmt.Errorf("samples %d,%d: (b·a)/a ≠ b", i, j)
				}
			}
		}
	}
	for i, a := range samples {
		for j, b := range samples {
			if r.Equal(a, b) != r.Equal(b, a) {
				return fmt.Errorf("samples %d,%d: Equal not symmetric", i, j)
			}
			if hasher != nil && r.Key(a) == r.Key(b) && hasher.Hash(a) != hasher.Hash(b) {
				return fmt.Errorf("samples %d,%d: equal keys with different hashes", i, j)
			}
			if !lawEqual(r.Add(a, b), r.Add(b, a)) {
				return fmt.Errorf("samples %d,%d: addition not commutative", i, j)
			}
			if !lawEqual(r.Mul(a, b), r.Mul(b, a)) {
				return fmt.Errorf("samples %d,%d: multiplication not commutative", i, j)
			}
			// Homomorphism to complex numbers (within tolerance).
			ca, cb := r.Complex128(a), r.Complex128(b)
			if !near(r.Complex128(r.Add(a, b)), ca+cb, cmplx.Abs(ca)+cmplx.Abs(cb)) {
				return fmt.Errorf("samples %d,%d: complex view of sum off", i, j)
			}
			if !near(r.Complex128(r.Mul(a, b)), ca*cb, cmplx.Abs(ca*cb)) {
				return fmt.Errorf("samples %d,%d: complex view of product off", i, j)
			}
			for k, c := range samples {
				if !lawEqual(r.Mul(a, r.Add(b, c)), r.Add(r.Mul(a, b), r.Mul(a, c))) {
					return fmt.Errorf("samples %d,%d,%d: distributivity fails", i, j, k)
				}
			}
		}
	}
	return nil
}
