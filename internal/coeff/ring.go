// Package coeff defines the coefficient abstraction that lets one QMDD core
// serve both number representations the paper compares: the state-of-the-art
// numerical representation (complex128 with an ε comparison tolerance) and
// the proposed exact algebraic representation (Q[ω] / D[ω]).
package coeff

import "repro/internal/alg"

// Ring is the set of operations the QMDD core needs from edge weights.
// Implementations must be deterministic: Key must return identical strings
// for values the implementation considers equal, because node uniqueness
// (and hence DD canonicity) is keyed on it.
type Ring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Sub(a, b T) T
	Mul(a, b T) T
	// Div returns a/b. For field implementations b may be any nonzero value;
	// implementations over rings may restrict it (see GCDRing.DivExact).
	Div(a, b T) T
	Neg(a T) T
	Conj(a T) T
	IsZero(a T) bool
	IsOne(a T) bool
	Equal(a, b T) bool
	// Key is a canonical hash key for unique/compute tables.
	Key(a T) string
	// FromQ injects an exact Q[ω] value (possibly approximating it, for
	// numerical implementations).
	FromQ(q alg.Q) T
	// FromComplex injects an arbitrary complex value. ok is false for exact
	// rings, which cannot represent arbitrary values — parametric gates must
	// then be compiled to Clifford+T first (internal/synth), exactly as the
	// paper prepares GSE with Quipper.
	FromComplex(c complex128) (T, bool)
	Complex128(a T) complex128
	// Abs2 is the squared magnitude |a|² as a float64 (used by the
	// max-magnitude normalization scheme and by measurement sampling).
	Abs2(a T) float64
	// BitLen reports the coefficient bit-width of a (0 where meaningless),
	// the statistic behind the paper's overhead analysis on GSE.
	BitLen(a T) int
}

// Hasher is an optional fast path a Ring can implement so the QMDD core can
// hash weights without formatting Key strings. Hash must be deterministic
// and consistent with Key: Key(a) == Key(b) implies Hash(a) == Hash(b) (for
// exact rings, where Key coincides with Equal, this means equal values hash
// equally). Both built-in rings implement it — num hashes the complex128
// bit patterns, alg hashes big.Int limbs directly — so the hot path of node
// creation and operation memoization never builds a string. Rings without it
// fall back to hashing the Key string.
type Hasher[T any] interface {
	Hash(a T) uint64
}

// ConcurrentRing is an optional marker a Ring can implement to declare
// whether its operations are safe to call from multiple goroutines
// simultaneously *and* yield schedule-independent canonical values. The
// algebraic ring qualifies (stateless arithmetic); the numerical ring
// qualifies only at ε = 0, where its tolerance table is inert — with ε > 0
// the nearest-wins interning makes the canonical representative depend on
// insertion order, so parallel recursion would break determinism. The QMDD
// core refuses intra-operation parallelism unless the ring reports true
// (core.Manager.SetIntraWorkers).
type ConcurrentRing interface {
	ConcurrentSafe() bool
}

// ExactRing is an optional marker a Ring can implement to declare whether
// its arithmetic is exact: every Add/Mul/Div result is the true value, not a
// rounded or tolerance-interned approximation. The algebraic ring qualifies;
// the numerical ring does not (complex128 rounding, plus ε-interning side
// effects at ε > 0). Consumers that can certify results exactly — the
// fidelity accounting of core.Approximate — use this to decide whether to
// report an exact or an approximate figure.
type ExactRing interface {
	Exact() bool
}

// GCDRing is implemented by coefficient rings that additionally support
// Euclidean GCDs, enabling the GCD normalization scheme (Algorithm 3).
type GCDRing[T any] interface {
	Ring[T]
	// GCD returns a greatest common divisor of the nonzero values in ws,
	// already unit-adjusted against the leftmost nonzero value per
	// Algorithm 3. ok is false when the weights leave the subring in which
	// GCDs exist (callers then fall back to field normalization).
	GCD(ws []T) (g T, ok bool)
	// DivExact returns a/b when b divides a in the subring.
	DivExact(a, b T) (T, bool)
}
