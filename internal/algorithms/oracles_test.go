package algorithms

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dense"
	"repro/internal/synth"
)

func TestDeutschJozsaBalanced(t *testing.T) {
	n := 5
	c := DeutschJozsa(n, 0b10110)
	s := dense.New(n + 1)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	// Balanced oracle: the input register is never |0…0⟩.
	p0 := 0.0
	for a := 0; a < 2; a++ { // ancilla free
		p0 += s.Probability(uint64(a))
	}
	if p0 > 1e-12 {
		t.Fatalf("balanced oracle measured as constant with P = %v", p0)
	}
	// In fact BV-style: the input register equals the mask with certainty.
	pMask := 0.0
	for a := 0; a < 2; a++ {
		pMask += s.Probability(0b10110<<1 | uint64(a))
	}
	if math.Abs(pMask-1) > 1e-12 {
		t.Fatalf("P(mask) = %v", pMask)
	}
}

func TestDeutschJozsaConstant(t *testing.T) {
	n := 4
	c := DeutschJozsa(n, 0)
	s := dense.New(n + 1)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	p0 := 0.0
	for a := 0; a < 2; a++ {
		p0 += s.Probability(uint64(a))
	}
	if math.Abs(p0-1) > 1e-12 {
		t.Fatalf("constant oracle: P(0…0) = %v, want 1", p0)
	}
}

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	n := 6
	for _, secret := range []uint64{0, 1, 0b101010, 0b111111} {
		c := BernsteinVazirani(n, secret)
		s := dense.New(n + 1)
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		p := 0.0
		for a := 0; a < 2; a++ {
			p += s.Probability(secret<<1 | uint64(a))
		}
		if math.Abs(p-1) > 1e-12 {
			t.Fatalf("secret %b recovered with P = %v", secret, p)
		}
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT|x⟩ has amplitudes e^{2πi x y / 2^n} / √2^n.
	n := 4
	c := QFT(n)
	x := uint64(5)
	s := dense.New(n)
	s.Amp[0] = 0
	s.Amp[x] = 1
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	dim := 1 << uint(n)
	norm := 1 / math.Sqrt(float64(dim))
	for y := 0; y < dim; y++ {
		want := cmplx.Exp(complex(0, 2*math.Pi*float64(x)*float64(y)/float64(dim))) *
			complex(norm, 0)
		if cmplx.Abs(s.Amp[y]-want) > 1e-12 {
			t.Fatalf("QFT amp[%d] = %v, want %v", y, s.Amp[y], want)
		}
	}
}

func TestQFTCompilesToCliffordT(t *testing.T) {
	c := QFT(4)
	if c.IsCliffordT() {
		t.Fatal("QFT(4) misreported as Clifford+T")
	}
	s := synth.New(10)
	ct, _, err := CompileCliffordT(c, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.IsCliffordT() {
		t.Fatal("compiled QFT still parametric")
	}
	if ct.Len() <= c.Len() {
		t.Fatal("compilation did not expand the circuit")
	}
}

func TestOracleValidation(t *testing.T) {
	for i, f := range []func(){
		func() { DeutschJozsa(0, 0) },
		func() { DeutschJozsa(2, 4) },
		func() { BernsteinVazirani(2, 4) },
		func() { QFT(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
