package algorithms

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dense"
	"repro/internal/synth"
)

func TestGroverFindsMarkedElement(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		marked := uint64(1)<<uint(n) - 2
		c := Grover(n, marked, 0)
		s := dense.New(n)
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		p := s.Probability(marked)
		want := GroverSuccessProbability(n, GroverIterations(n))
		if math.Abs(p-want) > 1e-9 {
			t.Fatalf("n=%d: P(marked) = %v, analytic %v", n, p, want)
		}
		if p < 0.8 {
			t.Fatalf("n=%d: success probability too low: %v", n, p)
		}
		// All other amplitudes are equal (two-value structure).
		var other float64
		seen := false
		for i := uint64(0); i < uint64(1)<<uint(n); i++ {
			if i == marked {
				continue
			}
			pi := s.Probability(i)
			if !seen {
				other, seen = pi, true
			} else if math.Abs(pi-other) > 1e-12 {
				t.Fatalf("n=%d: unmarked probabilities differ: %v vs %v", n, pi, other)
			}
		}
	}
}

func TestGroverIsCliffordTPlusControls(t *testing.T) {
	c := Grover(4, 3, 1)
	for _, g := range c.Gates {
		switch g.Name {
		case "h", "x", "z":
		default:
			t.Fatalf("unexpected gate %q in Grover", g.Name)
		}
	}
	if c.N != 4 {
		t.Fatalf("Grover over 4 qubits got N = %d", c.N)
	}
}

func TestIncrementerCircuit(t *testing.T) {
	// The controlled incrementer adds 1 (mod 2^k) when the control is set.
	k := 4
	c := circuit.New("inc", k+1)
	pos := []int{1, 2, 3, 4}
	appendIncrement(c, pos, circuit.Control{Qubit: 0})
	for v := 0; v < 16; v++ {
		// Control off: value unchanged.
		s := dense.New(k + 1)
		s.Amp[0] = 0
		s.Amp[v] = 1 // control bit (MSB of index) is 0
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		if s.Probability(uint64(v)) < 0.999 {
			t.Fatalf("control-off incrementer moved |%d⟩", v)
		}
		// Control on: value+1 mod 16.
		s2 := dense.New(k + 1)
		s2.Amp[0] = 0
		s2.Amp[16+v] = 1
		if err := s2.Run(c); err != nil {
			t.Fatal(err)
		}
		want := uint64(16 + (v+1)%16)
		if s2.Probability(want) < 0.999 {
			t.Fatalf("incrementer(|%d⟩) missed |%d⟩", v, want)
		}
	}
}

func TestDecrementerInvertsIncrementer(t *testing.T) {
	k := 3
	c := circuit.New("incdec", k+1)
	pos := []int{1, 2, 3}
	appendIncrement(c, pos, circuit.Control{Qubit: 0})
	appendDecrement(c, pos, circuit.Control{Qubit: 0})
	for v := 0; v < 16; v++ {
		s := dense.New(k + 1)
		s.Amp[0] = 0
		s.Amp[v] = 1
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		if s.Probability(uint64(v)) < 0.999 {
			t.Fatalf("inc∘dec moved |%d⟩ (controlled on same value)", v)
		}
	}
}

func TestBWTWalkSpreadsAndPreservesNorm(t *testing.T) {
	d := 3
	c := BWT(d, 12)
	n := BWTQubits(d)
	if c.N != n {
		t.Fatalf("qubits = %d, want %d", c.N, n)
	}
	s := dense.New(n)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Norm2()-1) > 1e-9 {
		t.Fatalf("norm drifted to %v", s.Norm2())
	}
	// After a dozen steps the walker must have left the entrance column with
	// high probability.
	k := n - 1
	pEntrance := 0.0
	for coin := 0; coin < 2; coin++ {
		pEntrance += s.Probability(uint64(coin) << uint(k))
	}
	if pEntrance > 0.8 {
		t.Fatalf("walker stuck at the entrance: P = %v", pEntrance)
	}
}

func TestBWTIsExactlyRepresentable(t *testing.T) {
	c := BWT(2, 3)
	if !hasOnly(c, "h", "x", "t", "s") {
		t.Fatalf("BWT emits gates outside {h, x, t, s}: %v", c.CountByName())
	}
	if !c.IsCliffordT() {
		t.Fatal("BWT reported as not Clifford+T")
	}
}

func hasOnly(c *circuit.Circuit, names ...string) bool {
	ok := map[string]bool{}
	for _, n := range names {
		ok[n] = true
	}
	for _, g := range c.Gates {
		if !ok[g.Name] {
			return false
		}
	}
	return true
}

// TestGSEPhaseEstimation: with a commuting (Z-only) Hamiltonian the Trotter
// step is exact, so QPE must concentrate on the binary phase of the prepared
// eigenstate.
func TestGSEPhaseEstimation(t *testing.T) {
	h := Hamiltonian{
		Qubits: 2,
		Terms: []PauliTerm{
			{Coefficient: 0.25, Paulis: map[int]byte{0: 'Z'}},
			{Coefficient: -0.5, Paulis: map[int]byte{1: 'Z'}},
		},
	}
	// Prepared state |01⟩: Z₀ = +1, Z₁ = −1 ⇒ E = 0.25 + 0.5 = 0.75.
	// Choose t so the phase φ = −E·t/2π lands exactly on a register bin:
	// t = 2π/12 gives φ·16 = −1 ≡ 15.
	p := 4
	tEvol := 2 * math.Pi / 12
	cfg := GSEConfig{Hamiltonian: h, PhaseBits: p, Time: tEvol, Trotter: 1, PrepareX: []int{1}}
	c := GSE(cfg)
	s := dense.New(c.N)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	phase := math.Mod(-0.75*tEvol/(2*math.Pi)+1, 1)
	wantIdx := uint64(math.Round(phase*16)) % 16
	if wantIdx != 15 {
		t.Fatalf("test setup wrong: expected bin 15, computed %d", wantIdx)
	}
	// Marginal distribution of the phase register (top p qubits).
	probs := make([]float64, 16)
	for i := range s.Amp {
		probs[i>>uint(h.Qubits)] += s.Probability(uint64(i))
	}
	best := 0
	for i, pr := range probs {
		if pr > probs[best] {
			best = i
		}
	}
	if uint64(best) != wantIdx {
		t.Fatalf("QPE peak at %d, want %d (distribution %v)", best, wantIdx, probs)
	}
	if probs[best] < 0.99 {
		t.Fatalf("QPE peak not sharp for exact phase: %v", probs[best])
	}
}

// TestGSEH2GroundEnergy: the full H₂ GSE run peaks at a phase compatible
// with the true ground energy (Trotterized, so allow one-bin slack).
func TestGSEH2GroundEnergy(t *testing.T) {
	h := H2Hamiltonian()
	m := h.Dense()
	// Power iteration on (shift − H) for the minimal eigenvalue of the 4×4.
	eMin := minEigen(m)
	p := 5
	tEvol := 0.75 // keep |E|t < π to avoid phase wrapping
	cfg := GSEConfig{Hamiltonian: h, PhaseBits: p, Time: tEvol, Trotter: 4, PrepareX: []int{0}}
	c := GSE(cfg)
	s := dense.New(c.N)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	bins := 1 << uint(p)
	probs := make([]float64, bins)
	for i := range s.Amp {
		probs[i>>uint(h.Qubits)] += s.Probability(uint64(i))
	}
	best := 0
	for i, pr := range probs {
		if pr > probs[best] {
			best = i
		}
	}
	phase := float64(best) / float64(bins)
	if phase > 0.5 {
		phase -= 1
	}
	eEst := -phase * 2 * math.Pi / tEvol
	if math.Abs(eEst-eMin) > 2*2*math.Pi/tEvol/float64(bins) {
		t.Fatalf("estimated ground energy %v, true %v (peak bin %d)", eEst, eMin, best)
	}
}

func minEigen(m [][]complex128) float64 {
	// Inverse-free: scan Rayleigh quotients of e^{−iθ}… use simple power
	// iteration on (cI − H) for c = 3 (‖H‖ < 3 for these Hamiltonians).
	dim := len(m)
	v := make([]complex128, dim)
	v[1] = 1
	for it := 0; it < 4000; it++ {
		w := make([]complex128, dim)
		for i := 0; i < dim; i++ {
			w[i] = 3 * v[i]
			for j := 0; j < dim; j++ {
				w[i] -= m[i][j] * v[j]
			}
		}
		n := 0.0
		for _, x := range w {
			n += real(x)*real(x) + imag(x)*imag(x)
		}
		n = math.Sqrt(n)
		for i := range w {
			v[i] = w[i] / complex(n, 0)
		}
	}
	// Rayleigh quotient v†Hv.
	e := complex(0, 0)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			e += cmplx.Conj(v[i]) * m[i][j] * v[j]
		}
	}
	return real(e)
}

func TestCompileCliffordT(t *testing.T) {
	raw := circuit.New("raw", 2)
	raw.H(0).Rz(0.37, 0).CP(0.9, 0, 1).Rx(-0.4, 1).Ry(0.22, 0).P(1.1, 1).CX(0, 1)
	s := synth.New(12)
	ct, totalErr, err := CompileCliffordT(raw, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.IsCliffordT() {
		t.Fatalf("compiled circuit still has parametric gates: %v", ct.CountByName())
	}
	// Compare the unitaries up to global phase via |tr(U1† U2)| / dim. The
	// SK synthesizer is deliberately coarse (small base net), so this is a
	// sanity bound, not a precision claim.
	u1 := denseUnitary(raw, 2)
	u2 := denseUnitary(ct, 2)
	f := fidelityTrace(u1, u2)
	if f < 0.9 {
		t.Fatalf("compiled unitary fidelity %v (reported error %v)", f, totalErr)
	}
	// Deeper SK must not be worse than base-net compilation.
	ct0, _, err := CompileCliffordT(raw, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	f0 := fidelityTrace(u1, denseUnitary(ct0, 2))
	if f < f0-0.05 {
		t.Fatalf("depth-2 fidelity %v below depth-0 fidelity %v", f, f0)
	}
	if totalErr > 1 {
		t.Fatalf("accumulated synthesis error suspiciously large: %v", totalErr)
	}
}

func denseUnitary(c *circuit.Circuit, n int) [][]complex128 {
	dim := 1 << uint(n)
	u := make([][]complex128, dim)
	for col := 0; col < dim; col++ {
		s := dense.New(n)
		s.Amp[0] = 0
		s.Amp[col] = 1
		if err := s.Run(c); err != nil {
			panic(err)
		}
		for row := 0; row < dim; row++ {
			if u[row] == nil {
				u[row] = make([]complex128, dim)
			}
			u[row][col] = s.Amp[row]
		}
	}
	return u
}

func fidelityTrace(a, b [][]complex128) float64 {
	dim := len(a)
	tr := complex(0, 0)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			tr += cmplx.Conj(a[j][i]) * b[j][i]
		}
	}
	return cmplx.Abs(tr) / float64(dim)
}

func TestCompileRejectsUnknownControlledGates(t *testing.T) {
	raw := circuit.New("bad", 2)
	raw.Append(circuit.Gate{Name: "ry", Target: 1, Controls: []circuit.Control{{Qubit: 0}}, Params: []float64{0.3}})
	s := synth.New(6)
	if _, _, err := CompileCliffordT(raw, s, 1); err == nil {
		t.Fatal("controlled-ry compiled without error")
	}
}
