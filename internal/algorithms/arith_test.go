package algorithms_test

import (
	"testing"

	"repro/internal/alg"
	"repro/internal/algorithms"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/sim"
)

// TestCuccaroAdderExhaustive3Bit: every (x, y, cin) combination of a 3-bit
// adder computes x + y + cin exactly, restores register a, and sets cout.
func TestCuccaroAdderExhaustive3Bit(t *testing.T) {
	bits := 3
	c := algorithms.CuccaroAdder(bits)
	n := 2*bits + 2
	for x := uint64(0); x < 8; x++ {
		for y := uint64(0); y < 8; y++ {
			for _, cin := range []bool{false, true} {
				s := dense.New(n)
				s.Amp[0] = 0
				in := algorithms.AdderInputState(bits, x, y, cin)
				s.Amp[in] = 1
				if err := s.Run(c); err != nil {
					t.Fatal(err)
				}
				// Deterministic output: find the single basis state.
				var out uint64
				found := false
				for i := range s.Amp {
					if s.Probability(uint64(i)) > 0.5 {
						out, found = uint64(i), true
						break
					}
				}
				if !found {
					t.Fatalf("x=%d y=%d cin=%v: output not a basis state", x, y, cin)
				}
				sum, cout := algorithms.AdderReadSum(bits, out)
				carry := uint64(0)
				if cin {
					carry = 1
				}
				total := x + y + carry
				if sum != total%8 {
					t.Fatalf("x=%d y=%d cin=%v: sum %d, want %d", x, y, cin, sum, total%8)
				}
				if cout != (total >= 8) {
					t.Fatalf("x=%d y=%d cin=%v: cout %v", x, y, cin, cout)
				}
				// Inputs restored: cin and a unchanged.
				maskA := out >> uint(n-1-bits) // top bits: cin + a register
				maskIn := in >> uint(n-1-bits)
				if maskA != maskIn {
					t.Fatalf("x=%d y=%d cin=%v: a/cin registers not restored", x, y, cin)
				}
			}
		}
	}
}

// TestCuccaroAdderOnSuperposition: the adder is a permutation, so it maps a
// uniform superposition over inputs to a uniform superposition — and the
// exact QMDD stays modest.
func TestCuccaroAdderOnSuperposition(t *testing.T) {
	bits := 4
	add := algorithms.CuccaroAdder(bits)
	n := add.N
	c := circuit.New("super", n)
	for i := 0; i < bits; i++ {
		c.H(1 + i)        // superpose register a
		c.H(1 + bits + i) // superpose register b
	}
	c.AppendCircuit(add)
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	s := sim.New(m, n)
	if err := s.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.SupportSize(s.State, n); got != 1<<(2*uint(bits)) {
		t.Fatalf("support %d, want %d", got, 1<<(2*uint(bits)))
	}
	if m.Norm2(s.State) != 1 {
		t.Fatalf("norm %v", m.Norm2(s.State))
	}
}

// TestCuccaroAdderSelfInverse: adding then subtracting (inverse circuit)
// returns to the identity — checked O(1) on the exact diagram.
func TestCuccaroAdderSelfInverse(t *testing.T) {
	add := algorithms.CuccaroAdder(2)
	both := circuit.New("addsub", add.N)
	both.AppendCircuit(add).AppendCircuit(add.Inverse())
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	u, err := sim.BuildUnitary(m, both)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RootsEqual(u, m.Identity(add.N)) {
		t.Fatal("adder · adder⁻¹ ≠ I")
	}
}
