// Package algorithms generates the paper's benchmark workloads: Grover's
// database search, the Binary Welded Tree quantum walk, and Ground State
// Estimation (iterative phase estimation over a molecular Hamiltonian,
// compiled to Clifford+T). Each generator produces a plain circuit.Circuit
// the simulators consume.
package algorithms

import (
	"math"

	"repro/internal/circuit"
)

// Grover builds Grover's algorithm over n data qubits searching for the
// marked basis element (0 ≤ marked < 2^n), running the standard
// ⌊π/4·√(2^n)⌋ iterations (or the explicit iteration count if iters > 0).
//
// The oracle is a phase oracle: X-conjugation selects the marked element and
// a multi-controlled Z flips its phase; the diffusion operator is
// H^n X^n (MCZ) X^n H^n. All gates are Clifford-family plus multi-controlled
// Z/X, whose matrix entries are 0 and ±1 — everything is exactly
// representable in D[ω], which is why the paper reports zero approximation
// error for this workload.
func Grover(n int, marked uint64, iters int) *circuit.Circuit {
	if n < 2 {
		panic("algorithms: Grover needs at least 2 qubits")
	}
	if marked >= uint64(1)<<uint(n) {
		panic("algorithms: marked element out of range")
	}
	if iters <= 0 {
		iters = int(math.Floor(math.Pi / 4 * math.Sqrt(float64(uint64(1)<<uint(n)))))
		if iters < 1 {
			iters = 1
		}
	}
	c := circuit.New("grover", n)
	// Uniform superposition.
	for q := 0; q < n; q++ {
		c.H(q)
	}
	ctrls := make([]int, n-1)
	for i := range ctrls {
		ctrls[i] = i
	}
	flipUnmarkedBits := func() {
		// Map |marked⟩ to |1…1⟩: X on every qubit whose marked bit is 0.
		for q := 0; q < n; q++ {
			if (marked>>(uint(n)-1-uint(q)))&1 == 0 {
				c.X(q)
			}
		}
	}
	for it := 0; it < iters; it++ {
		// Oracle: phase-flip the marked element.
		flipUnmarkedBits()
		c.MCZ(ctrls, n-1)
		flipUnmarkedBits()
		// Diffusion: inversion about the mean.
		for q := 0; q < n; q++ {
			c.H(q)
		}
		for q := 0; q < n; q++ {
			c.X(q)
		}
		c.MCZ(ctrls, n-1)
		for q := 0; q < n; q++ {
			c.X(q)
		}
		for q := 0; q < n; q++ {
			c.H(q)
		}
	}
	return c
}

// GroverIterations returns the canonical iteration count for n data qubits.
func GroverIterations(n int) int {
	it := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(uint64(1)<<uint(n)))))
	if it < 1 {
		it = 1
	}
	return it
}

// GroverSuccessProbability returns the analytic success probability of
// measuring the marked element after k iterations on n qubits:
// sin²((2k+1)·θ) with sin θ = 2^{−n/2}.
func GroverSuccessProbability(n, k int) float64 {
	theta := math.Asin(math.Pow(2, -float64(n)/2))
	s := math.Sin(float64(2*k+1) * theta)
	return s * s
}
