package algorithms

import (
	"math"

	"repro/internal/circuit"
)

// Further standard benchmark workloads from the QMDD literature. Deutsch–
// Jozsa and Bernstein–Vazirani are pure Clifford(+multi-control) circuits —
// exactly representable like Grover and BWT; the QFT carries π/2^k phase
// rotations, which for k ≥ 3 leave D[ω] and require Clifford+T compilation,
// making it a second GSE-class workload.

// DeutschJozsa builds the Deutsch–Jozsa circuit over n input qubits plus one
// ancilla. The oracle is balanced iff mask ≠ 0: f(x) = parity(x & mask)
// (implemented as CNOTs into the ancilla); mask = 0 gives the constant-0
// function. Measuring the input register yields |0…0⟩ iff f is constant.
func DeutschJozsa(n int, mask uint64) *circuit.Circuit {
	if n < 1 {
		panic("algorithms: DeutschJozsa needs at least one input qubit")
	}
	if mask >= uint64(1)<<uint(n) {
		panic("algorithms: mask out of range")
	}
	c := circuit.New("dj", n+1)
	anc := n
	// |−⟩ ancilla.
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	// Oracle: f(x) = parity(x & mask) via CNOTs into the ancilla.
	for q := 0; q < n; q++ {
		if (mask>>(uint(n)-1-uint(q)))&1 == 1 {
			c.CX(q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// BernsteinVazirani builds the Bernstein–Vazirani circuit recovering the
// hidden string s (bit n−1−q of secret is the value for qubit q) in a single
// oracle query. Layout matches DeutschJozsa (n inputs + ancilla).
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	if n < 1 {
		panic("algorithms: BernsteinVazirani needs at least one input qubit")
	}
	if secret >= uint64(1)<<uint(n) {
		panic("algorithms: secret out of range")
	}
	c := circuit.New("bv", n+1)
	anc := n
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		if (secret>>(uint(n)-1-uint(q)))&1 == 1 {
			c.CX(q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// QFT builds the quantum Fourier transform over n qubits (with the final
// qubit-order swaps). The controlled-phase angles π/2^k are exactly
// representable only for k ≤ 2 (CZ and CS); for n ≥ 4 the circuit requires
// Clifford+T compilation on the exact ring (CompileCliffordT).
func QFT(n int) *circuit.Circuit {
	if n < 1 {
		panic("algorithms: QFT needs at least one qubit")
	}
	c := circuit.New("qft", n)
	for j := 0; j < n; j++ {
		c.H(j)
		for k := j + 1; k < n; k++ {
			c.CP(math.Pi/float64(uint64(1)<<uint(k-j)), k, j)
		}
	}
	for i := 0; i < n/2; i++ {
		c.Swap(i, n-1-i)
	}
	return c
}
