package algorithms

import (
	"repro/internal/circuit"
)

// BWT builds a discrete-time coined quantum walk for the Binary Welded Tree
// problem (Childs et al. [38]).
//
// Substitution note (documented in DESIGN.md): the paper simulates a
// compiled BWT circuit from its private benchmark suite. This generator
// reproduces the two structural properties that make BWT a decision-diagram
// benchmark:
//
//  1. The column reduction — the two glued binary trees of depth d project
//     onto a line of 2d + 2 columns (entrance 0, exit 2d + 1) on which a
//     coined walk proceeds; the column index lives in a ⌈log₂(2d+2)⌉-bit
//     register moved by reversible increment/decrement cascades.
//  2. The symmetric subspace — the walk never distinguishes the 2^c paths
//     within a column: path qubits are split into uniform superposition
//     when the walker descends (a column-controlled Hadamard on the child
//     bit) and merged back when it ascends. The state therefore carries
//     per-column product structure over the path register, which is
//     exactly the redundancy a QMDD shares — and exactly what breaks when
//     floating-point weights round differently along different branches.
//
// The coin is a T-biased Hadamard and the weld column carries an extra T
// phase (the weld's deviating hop weight). Every gate is in the Clifford+T
// family with multi-controls, so — like the paper's BWT — the entire
// computation is exactly representable in D[ω].
//
// Register layout: qubit 0 = coin; qubits 1..k = column (MSB first);
// qubits k+1..k+pathBits = path register.
func BWT(depth, steps int) *circuit.Circuit {
	return BWTWithPath(depth, steps, defaultPathBits(depth))
}

func defaultPathBits(depth int) int {
	if depth > 8 {
		return 8
	}
	return depth
}

// BWTWithPath is BWT with an explicit path-register width (0 disables the
// symmetric-subspace structure and yields the bare column walk).
func BWTWithPath(depth, steps, pathBits int) *circuit.Circuit {
	if depth < 1 {
		panic("algorithms: BWT depth must be ≥ 1")
	}
	if steps < 1 {
		panic("algorithms: BWT needs at least one step")
	}
	if pathBits < 0 {
		panic("algorithms: negative path register")
	}
	columns := 2*depth + 2
	k := 1
	for (1 << uint(k)) < columns {
		k++
	}
	c := circuit.New("bwt", 1+k+pathBits)
	coin := 0
	pos := make([]int, k)
	for i := range pos {
		pos[i] = i + 1
	}
	path := make([]int, pathBits)
	for i := range path {
		path[i] = k + 1 + i
	}

	// Start at the entrance column (|0…0⟩) with a balanced coin.
	c.H(coin)

	weldLow := depth // the weld sits between columns depth and depth+1

	// columnControls returns the control pattern "column register == v".
	columnControls := func(v int, extra ...circuit.Control) []circuit.Control {
		ctrls := append([]circuit.Control{}, extra...)
		for i, q := range pos {
			bit := (v >> uint(k-1-i)) & 1
			ctrls = append(ctrls, circuit.Control{Qubit: q, Neg: bit == 0})
		}
		return ctrls
	}
	// childBit maps a column to the path bit that branches there: the tree
	// branches on the way down (c < depth) and un-branches mirror-wise on
	// the way up to the exit root.
	childBit := func(col int) int {
		b := col
		if mirror := 2*depth + 1 - col; mirror < b {
			b = mirror
		}
		if b >= pathBits {
			return -1
		}
		return b
	}

	for s := 0; s < steps; s++ {
		// Biased coin: T·H (the weld asymmetry of the reduced walk).
		c.H(coin)
		c.T(coin)
		// Weld marking: a T phase when the walker stands on the weld column.
		c.Append(circuit.Gate{Name: "t", Target: pos[k-1],
			Controls: columnControls(weldLow)[0 : k-1]})
		// Child split on descent: for every column c the walker may leave
		// downwards (coin 1), put the branching path bit into uniform
		// superposition before the shift.
		for col := 0; col < columns-1; col++ {
			if b := childBit(col); b >= 0 && col < depth {
				c.Append(circuit.Gate{Name: "h", Target: path[b],
					Controls: columnControls(col, circuit.Control{Qubit: coin})})
			}
		}
		// Conditional shift: coin |1⟩ increments the column, coin |0⟩
		// decrements it (cyclically).
		appendIncrement(c, pos, circuit.Control{Qubit: coin})
		appendDecrement(c, pos, circuit.Control{Qubit: coin, Neg: true})
		// Child merge on ascent: after decrementing, the walker that moved
		// up from column col+1 to col merges the branching bit of col.
		for col := 0; col < columns-1; col++ {
			if b := childBit(col); b >= 0 && col < depth {
				c.Append(circuit.Gate{Name: "h", Target: path[b],
					Controls: columnControls(col, circuit.Control{Qubit: coin, Neg: true})})
			}
		}
	}
	return c
}

// appendIncrement emits a reversible +1 circuit on the given qubits
// (qs[0] = MSB), with one extra control line on every gate. The standard
// carry cascade: each bit flips iff all lower bits are 1.
func appendIncrement(c *circuit.Circuit, qs []int, extra circuit.Control) {
	k := len(qs)
	for i := 0; i < k; i++ {
		// Target qs[i]; controls: all lower-significance bits qs[i+1:].
		ctrls := []circuit.Control{extra}
		for _, q := range qs[i+1:] {
			ctrls = append(ctrls, circuit.Control{Qubit: q})
		}
		c.Append(circuit.Gate{Name: "x", Target: qs[i], Controls: ctrls})
	}
}

// appendDecrement emits the inverse cascade (−1): each bit flips iff all
// lower bits are 0.
func appendDecrement(c *circuit.Circuit, qs []int, extra circuit.Control) {
	k := len(qs)
	for i := 0; i < k; i++ {
		ctrls := []circuit.Control{extra}
		for _, q := range qs[i+1:] {
			ctrls = append(ctrls, circuit.Control{Qubit: q, Neg: true})
		}
		c.Append(circuit.Gate{Name: "x", Target: qs[i], Controls: ctrls})
	}
}

// BWTColumns returns the number of walk columns for a given tree depth.
func BWTColumns(depth int) int { return 2*depth + 2 }

// BWTQubits returns the total qubit count of the generated circuit.
func BWTQubits(depth int) int {
	columns := BWTColumns(depth)
	k := 1
	for (1 << uint(k)) < columns {
		k++
	}
	return 1 + k + defaultPathBits(depth)
}
