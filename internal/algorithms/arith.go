package algorithms

import "repro/internal/circuit"

// Reversible arithmetic — the Cuccaro ripple-carry adder (quant-ph/0410184),
// a staple of the reversible-circuit benchmark suites QMDDs were originally
// built for. Pure {CNOT, Toffoli} circuits: exactly representable, highly
// structured, and a natural target for the equivalence checker.

// CuccaroAdder returns a circuit computing b ← a + b (mod 2^bits) with the
// final carry in the last qubit.
//
// Register layout (qubit 0 first): cin, a₀..a_{bits−1} (LSB first),
// b₀..b_{bits−1}, cout — 2·bits + 2 qubits in total.
func CuccaroAdder(bits int) *circuit.Circuit {
	if bits < 1 {
		panic("algorithms: adder needs at least one bit")
	}
	n := 2*bits + 2
	c := circuit.New("cuccaro-adder", n)
	cin := 0
	a := func(i int) int { return 1 + i }
	b := func(i int) int { return 1 + bits + i }
	cout := n - 1

	maj := func(x, y, z int) {
		c.CX(z, y)
		c.CX(z, x)
		c.CCX(x, y, z)
	}
	uma := func(x, y, z int) {
		c.CCX(x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}

	maj(cin, b(0), a(0))
	for i := 1; i < bits; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.CX(a(bits-1), cout)
	for i := bits - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c
}

// AdderInputState returns the basis-state index that encodes the inputs
// (x into register a, y into register b, carry-in cin) under the
// CuccaroAdder layout, for preparing test inputs.
func AdderInputState(bits int, x, y uint64, cin bool) uint64 {
	n := 2*bits + 2
	var idx uint64
	set := func(qubit int, v uint64) {
		if v != 0 {
			idx |= 1 << uint(n-1-qubit)
		}
	}
	if cin {
		set(0, 1)
	}
	for i := 0; i < bits; i++ {
		set(1+i, (x>>uint(i))&1)
		set(1+bits+i, (y>>uint(i))&1)
	}
	return idx
}

// AdderReadSum extracts (sum, cout) from a basis-state index of the adder's
// output under the same layout (register a holds x again; b holds the sum).
func AdderReadSum(bits int, idx uint64) (sum uint64, cout bool) {
	n := 2*bits + 2
	get := func(qubit int) uint64 {
		return (idx >> uint(n-1-qubit)) & 1
	}
	for i := 0; i < bits; i++ {
		sum |= get(1+bits+i) << uint(i)
	}
	return sum, get(n-1) == 1
}
