package algorithms

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/synth"
)

// GSE — Ground State Estimation [33]: quantum phase estimation over the
// time-evolution operator e^{−iHt} of a molecular Hamiltonian, the paper's
// representative for algorithms whose rotation angles are NOT exactly
// representable and must be approximated by Clifford+T sequences (the paper
// uses Quipper; this reproduction uses the Solovay–Kitaev synthesizer in
// internal/synth).

// PauliTerm is one term g·P₁⊗…⊗Pₖ of a qubit Hamiltonian. Paulis maps qubit
// index → 'X', 'Y' or 'Z' (identity elsewhere).
type PauliTerm struct {
	Coefficient float64
	Paulis      map[int]byte
}

// Hamiltonian is a weighted sum of Pauli terms over Qubits system qubits.
type Hamiltonian struct {
	Qubits int
	Terms  []PauliTerm
}

// H2Hamiltonian returns the minimal-basis molecular hydrogen Hamiltonian
// (Bravyi–Kitaev reduced, 2 qubits) with the standard coefficients at the
// equilibrium bond length, as used in early GSE experiments.
func H2Hamiltonian() Hamiltonian {
	return Hamiltonian{
		Qubits: 2,
		Terms: []PauliTerm{
			{Coefficient: -0.4804, Paulis: nil},
			{Coefficient: +0.3435, Paulis: map[int]byte{0: 'Z'}},
			{Coefficient: -0.4347, Paulis: map[int]byte{1: 'Z'}},
			{Coefficient: +0.5716, Paulis: map[int]byte{0: 'Z', 1: 'Z'}},
			{Coefficient: +0.0910, Paulis: map[int]byte{0: 'X', 1: 'X'}},
			{Coefficient: +0.0910, Paulis: map[int]byte{0: 'Y', 1: 'Y'}},
		},
	}
}

// Dense returns the 2^n × 2^n matrix of the Hamiltonian (for test oracles).
func (h Hamiltonian) Dense() [][]complex128 {
	dim := 1 << uint(h.Qubits)
	m := make([][]complex128, dim)
	for i := range m {
		m[i] = make([]complex128, dim)
	}
	for _, t := range h.Terms {
		for col := 0; col < dim; col++ {
			row := col
			amp := complex(t.Coefficient, 0)
			for q, p := range t.Paulis {
				bit := (col >> uint(h.Qubits-1-q)) & 1
				switch p {
				case 'Z':
					if bit == 1 {
						amp = -amp
					}
				case 'X':
					row ^= 1 << uint(h.Qubits-1-q)
				case 'Y':
					row ^= 1 << uint(h.Qubits-1-q)
					if bit == 0 {
						amp *= complex(0, 1)
					} else {
						amp *= complex(0, -1)
					}
				}
			}
			m[row][col] += amp
		}
	}
	return m
}

// GSEConfig parameterizes the phase-estimation circuit.
type GSEConfig struct {
	Hamiltonian Hamiltonian
	PhaseBits   int     // QPE register size
	Time        float64 // evolution time t in e^{−iHt}
	Trotter     int     // first-order Trotter steps per controlled power
	// PrepareX lists system qubits that get an X in state preparation
	// (e.g. the Hartree–Fock reference).
	PrepareX []int
}

// GSE builds the raw (rotation-carrying) phase-estimation circuit:
// qubits 0..PhaseBits−1 form the phase register, the system register
// follows. Controlled powers U^{2^j} are realized by angle scaling of a
// fixed Trotter decomposition — the standard resource-bounded shortcut;
// the circuit family's numerical character (arbitrary-angle rotations) is
// exactly what the benchmark needs.
func GSE(cfg GSEConfig) *circuit.Circuit {
	h := cfg.Hamiltonian
	if cfg.PhaseBits < 1 || h.Qubits < 1 {
		panic("algorithms: GSE needs phase and system qubits")
	}
	if cfg.Trotter < 1 {
		cfg.Trotter = 1
	}
	n := cfg.PhaseBits + h.Qubits
	c := circuit.New("gse", n)
	sys := func(q int) int { return cfg.PhaseBits + q }

	for _, q := range cfg.PrepareX {
		c.X(sys(q))
	}
	for j := 0; j < cfg.PhaseBits; j++ {
		c.H(j)
	}
	// Controlled powers: phase qubit j controls e^{−iHt·2^j}.
	for j := 0; j < cfg.PhaseBits; j++ {
		scale := float64(uint64(1) << uint(j))
		for r := 0; r < cfg.Trotter; r++ {
			appendControlledTrotterStep(c, h, j, sys, cfg.Time*scale/float64(cfg.Trotter))
		}
	}
	appendInverseQFT(c, cfg.PhaseBits)
	return c
}

// appendControlledTrotterStep emits one first-order Trotter step of
// e^{−iHt} controlled on the given phase qubit.
func appendControlledTrotterStep(c *circuit.Circuit, h Hamiltonian, control int, sys func(int) int, t float64) {
	for _, term := range h.Terms {
		angle := 2 * term.Coefficient * t
		if len(term.Paulis) == 0 {
			// Identity term: a controlled global phase e^{−i g t} = P(−g t)
			// on the control qubit.
			c.P(-term.Coefficient*t, control)
			continue
		}
		// Deterministic qubit order.
		qs := make([]int, 0, len(term.Paulis))
		for q := range term.Paulis {
			qs = append(qs, q)
		}
		sortInts(qs)
		// Basis changes into the Z basis.
		for _, q := range qs {
			switch term.Paulis[q] {
			case 'X':
				c.H(sys(q))
			case 'Y':
				c.Sdg(sys(q))
				c.H(sys(q))
			}
		}
		last := qs[len(qs)-1]
		for i := 0; i < len(qs)-1; i++ {
			c.CX(sys(qs[i]), sys(last))
		}
		c.CRz(angle, control, sys(last))
		for i := len(qs) - 2; i >= 0; i-- {
			c.CX(sys(qs[i]), sys(last))
		}
		for _, q := range qs {
			switch term.Paulis[q] {
			case 'X':
				c.H(sys(q))
			case 'Y':
				c.H(sys(q))
				c.S(sys(q))
			}
		}
	}
}

// appendInverseQFT emits the inverse quantum Fourier transform on qubits
// 0..m−1. With the convention that phase qubit j controls U^{2^j} (so the
// register holds the phase in bit-reversed order relative to its MSB-first
// index), the swap layer of the textbook QFT† cancels against that
// reversal, leaving just the rotation/Hadamard core; the estimate comes out
// in standard MSB-first order.
func appendInverseQFT(c *circuit.Circuit, m int) {
	for j := m - 1; j >= 0; j-- {
		for k := m - 1; k > j; k-- {
			c.CP(-math.Pi/float64(uint64(1)<<uint(k-j)), k, j)
		}
		c.H(j)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// CompileCliffordT rewrites every parametric gate of a circuit into a
// Clifford+T sequence using the Solovay–Kitaev synthesizer (single-qubit
// rotations directly; controlled phases via the standard two-CNOT
// decomposition). It returns the compiled circuit and the accumulated
// projective approximation error (the sum of per-gate synthesis errors —
// an upper bound on the total operator error).
//
// This mirrors the paper's preparation of GSE with Quipper: afterwards the
// circuit is exactly representable, but its D[ω] coefficients are "very
// costly to represent and process" — the source of the Fig. 5 overhead.
func CompileCliffordT(c *circuit.Circuit, s *synth.Synth, depth int) (*circuit.Circuit, float64, error) {
	out := circuit.New(c.Name+"_ct", c.N)
	totalErr := 0.0
	emitRz := func(theta float64, q int) {
		gs, err := s.RzGates(theta, q, depth)
		totalErr += err
		for _, g := range gs {
			out.Append(g)
		}
	}
	for _, g := range c.Gates {
		switch {
		case isExactName(g.Name):
			out.Append(g)
		case len(g.Controls) == 0 && (g.Name == "rz" || g.Name == "p"):
			// P(θ) = Rz(θ) up to a global phase.
			emitRz(g.Params[0], g.Target)
		case len(g.Controls) == 0 && g.Name == "rx":
			out.H(g.Target)
			emitRz(g.Params[0], g.Target)
			out.H(g.Target)
		case len(g.Controls) == 0 && g.Name == "ry":
			gs, err := s.RyGates(g.Params[0], g.Target, depth)
			totalErr += err
			for _, gg := range gs {
				out.Append(gg)
			}
		case len(g.Controls) == 1 && !g.Controls[0].Neg && g.Name == "rz":
			// CRz(θ) = Rz(θ/2)·CX·Rz(−θ/2)·CX on the target.
			ctl := g.Controls[0].Qubit
			emitRz(g.Params[0]/2, g.Target)
			out.CX(ctl, g.Target)
			emitRz(-g.Params[0]/2, g.Target)
			out.CX(ctl, g.Target)
		case len(g.Controls) == 1 && !g.Controls[0].Neg && g.Name == "p":
			// CP(θ) = P(θ/2)c · P(θ/2)t · CX · P(−θ/2)t · CX.
			ctl := g.Controls[0].Qubit
			emitRz(g.Params[0]/2, ctl)
			emitRz(g.Params[0]/2, g.Target)
			out.CX(ctl, g.Target)
			emitRz(-g.Params[0]/2, g.Target)
			out.CX(ctl, g.Target)
		default:
			return nil, 0, fmt.Errorf("algorithms: cannot compile gate %s to Clifford+T", g)
		}
	}
	return out, totalErr, nil
}

func isExactName(name string) bool {
	switch name {
	case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sxdg", "id", "i":
		return true
	}
	return false
}
