package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/alg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ddio"
	"repro/internal/num"
	"repro/internal/prefix"
	"repro/internal/sim"
)

// Per-worker simulation state: every worker goroutine owns private managers
// (the PR 3 share-nothing design — no diagram state ever crosses a
// goroutine), kept warm across jobs so repeat traffic reuses allocated
// tables instead of re-growing them. Algebraic managers are keyed by
// normalization scheme; float managers additionally by ε, with a small cap
// since ε is client-chosen.
type workerState struct {
	alg map[core.NormScheme]*core.Manager[alg.Q]
	flo map[floatKey]*core.Manager[complex128]
}

type floatKey struct {
	eps  float64
	norm core.NormScheme
}

// maxFloatManagers caps the per-worker float manager cache; past it the
// cache is dropped wholesale (ε is attacker-chosen, the cache must not be a
// memory leak).
const maxFloatManagers = 8

func newWorkerState() *workerState {
	return &workerState{
		alg: make(map[core.NormScheme]*core.Manager[alg.Q]),
		flo: make(map[floatKey]*core.Manager[complex128]),
	}
}

func (ws *workerState) algManager(norm core.NormScheme, ctSize, intraWorkers int) *core.Manager[alg.Q] {
	m, ok := ws.alg[norm]
	if !ok {
		m = core.NewManager[alg.Q](alg.Ring{}, norm, core.WithComputeTableSize(ctSize))
		m.SetIntraWorkers(intraWorkers)
		ws.alg[norm] = m
	}
	return m
}

func (ws *workerState) floatManager(eps float64, norm core.NormScheme, ctSize, intraWorkers int) *core.Manager[complex128] {
	k := floatKey{eps: eps, norm: norm}
	m, ok := ws.flo[k]
	if !ok {
		if len(ws.flo) >= maxFloatManagers {
			ws.flo = make(map[floatKey]*core.Manager[complex128])
		}
		m = core.NewManager[complex128](num.NewRing(eps), norm, core.WithComputeTableSize(ctSize))
		m.SetIntraWorkers(intraWorkers) // silently stays sequential when ε > 0
		ws.flo[k] = m
	}
	return m
}

// worker is one pool goroutine: it drains the bounded queue until the queue
// is closed (graceful shutdown drains what was accepted), running every job
// on its private managers. It signals started once it has entered the drain
// loop — the pool is warm (Ready) when every worker has.
func (e *Engine) worker(id int, started *sync.WaitGroup) {
	defer e.wg.Done()
	ws := newWorkerState()
	started.Done()
	for j := range e.queue {
		e.runJob(id, ws, j)
	}
}

// runJob executes one job end to end: mark running, install the governor,
// simulate, classify the outcome, publish metrics, and scrub the manager
// for the next tenant.
func (e *Engine) runJob(workerID int, ws *workerState, j *Job) {
	// Past the drain deadline (or after a hard stop) accepted-but-unstarted
	// jobs are cancelled, not run.
	if e.runCtx.Err() != nil {
		e.finishJob(j, StatusCancelled, nil, &ErrorBody{
			Kind: KindCancelled, Message: "server shut down before the job started",
		})
		e.met.cancelled.Add(1)
		return
	}
	e.store.setRunning(j)
	e.met.started.Add(1)
	e.met.queueLatency.observe(time.Since(j.queuedAt).Seconds())

	ctx := e.runCtx
	if j.req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	budget := core.Budget{
		MaxNodes:   j.req.MaxNodes,
		MaxWeights: j.req.MaxWeights,
		MaxBytes:   j.req.MaxBytes,
	}
	// The hook sits between governor setup and the run so tests can model
	// slow work under an already-ticking deadline.
	if e.cfg.HookRunning != nil {
		e.cfg.HookRunning(j)
	}

	start := time.Now()
	var (
		res     *JobResult
		errBody *ErrorBody
		snap    core.Snapshot
	)
	switch j.req.Representation {
	case "alg":
		m := ws.algManager(j.norm(), e.cfg.CTSize, e.cfg.IntraWorkers)
		res, errBody, snap = runTyped(ctx, e, m, ddio.AlgCodec{}, j, budget)
		scrub(m)
	default: // "float", validated at submit
		m := ws.floatManager(j.req.Eps, j.norm(), e.cfg.CTSize, e.cfg.IntraWorkers)
		res, errBody, snap = runTyped(ctx, e, m, ddio.NumCodec{}, j, budget)
		scrub(m)
	}
	busy := time.Since(start)
	e.met.observe(workerID, busy, snap)

	switch {
	case errBody == nil:
		if res != nil && res.Approximate {
			e.met.approximated.Add(1)
			e.met.approxEvents.Add(uint64(res.ApproxEvents))
			e.met.fidelityGivenUp.add(1 - res.Fidelity)
		}
		e.finishJob(j, StatusDone, res, nil)
		e.met.completed.Add(1)
	case errBody.Kind == KindCancelled || errBody.Kind == KindTimeout:
		e.finishJob(j, StatusCancelled, nil, errBody)
		e.met.cancelled.Add(1)
	default:
		e.finishJob(j, StatusFailed, nil, errBody)
		e.met.failed.Add(1)
	}
}

// finishJob is the terminal transition for every job that owns (or owned) a
// queue slot. On success it encodes the result envelope once, stores it in
// the cache (successes only — budget refusals, timeouts and run errors are
// never cached), and publishes the same bytes to the flight so followers and
// future cache hits all serve a byte-identical envelope. The flight is
// always completed, on every path, so followers never hang.
func (e *Engine) finishJob(j *Job, status string, res *JobResult, errBody *ErrorBody) {
	var payload []byte
	if status == StatusDone && res != nil {
		if b, err := json.Marshal(res); err == nil {
			payload = b
			if j.cacheable {
				// An approximate envelope is valid only for the same floor and
				// memory budget; an exact one (approximation never fired)
				// serves every request for this circuit.
				key := j.cacheKey
				if res.Approximate && j.hasApprox {
					key = j.approxKey
				}
				e.cache.Put(key, payload, j.stamp)
			}
		}
	}
	e.store.finish(j, status, res, errBody)
	if j.flight != nil {
		j.flight.Complete(flightOutcome{status: status, payload: payload, errBody: errBody}, status == StatusDone && payload != nil)
	}
}

// norm returns the job's validated normalization scheme (submit rejected
// unparsable values, so this cannot fail).
func (j *Job) norm() core.NormScheme {
	n, _ := core.ParseNormScheme(j.req.Norm)
	return n
}

// scrub resets a warm manager between tenants: the budget is lifted, every
// node is swept (a prune with no roots also clears the compute table and
// releases interned weights), and the peak clock is rebased so the next
// job's governor reports its own peaks.
func scrub[T any](m *core.Manager[T]) {
	m.SetBudget(core.Budget{})
	m.SetContext(nil)
	m.Prune()
	m.ResetPeaks()
}

// prefixStore builds the per-job checkpoint store, or nil when the
// subsystem is off: no cache, or checkpointing disabled by a negative
// -checkpoint-every. The store is a cheap value — binding it per job keeps
// the worker free of per-(repr, ε, norm) bookkeeping.
func prefixStore[T any](e *Engine, codec ddio.Codec[T], j *Job) *prefix.Store[T] {
	if e.cfg.CheckpointEvery <= 0 || !e.cache.Enabled() {
		return nil
	}
	return prefix.NewStore(e.cache, j.req.Representation, j.req.Eps, j.norm(), codec)
}

// runTyped runs one job on a concrete representation. It returns the result
// or a classified error body, plus the manager snapshot observed right after
// the run (before the scrub) for worker metrics.
func runTyped[T any](ctx context.Context, e *Engine, m *core.Manager[T], codec ddio.Codec[T], j *Job, budget core.Budget) (*JobResult, *ErrorBody, core.Snapshot) {
	m.SetBudget(budget)
	m.ResetPeaks()
	if j.req.Shots > 0 {
		return runShots(ctx, m, j)
	}
	simr := sim.New(m, j.circ.N)
	if j.req.MinFidelity > 0 {
		simr.EnableApproximation(sim.ApproxPolicy{MinFidelity: j.req.MinFidelity})
	}

	// Prefix checkpointing: resume from the longest cached prefix of this
	// circuit, and snapshot the state at policy-chosen prefixes during the
	// run so future extensions warm-start too. Warm and cold runs produce
	// byte-identical results — a checkpoint is the exact state, decoded into
	// canonical diagrams.
	from := 0
	var hook func(i int, g circuit.Gate) bool
	if ps := prefixStore(e, codec, j); ps != nil {
		plan := prefix.PlanOf(j.circ)
		if k, st, ok := ps.Probe(m, plan, j.circ.N); ok {
			simr.State = st
			from = k
			e.met.prefixHits.Add(1)
			e.met.prefixGatesSkipped.Add(uint64(k))
		}
		// The unique-table occupancy stands in for the state's node count in
		// the high-water rule: it is O(1) to read where an exact count walks
		// the state, and within one run it over-approximates only by
		// garbage — at worst a few extra snapshots, never a missed boundary.
		tracker := prefix.Policy{
			EveryK:   e.cfg.CheckpointEvery,
			MaxBytes: e.cfg.CheckpointBytes,
		}.NewTracker(m.Stats().UniqueNodes)
		hook = func(i int, g circuit.Gate) bool {
			k := i + 1 // the hook fires after gate i: the state is H_{i+1}'s
			nodes := m.Stats().UniqueNodes
			if !tracker.Should(k, plan.Boundary, nodes) {
				return true
			}
			if simr.Approximation().Events > 0 {
				// Past the first shed the state is no longer the exact
				// function of its prefix key; stop checkpointing this run.
				return true
			}
			if n, err := ps.Store(m, simr.State, plan.Links[k], j.circ.N, e.cfg.CheckpointBytes); err == nil && n > 0 {
				tracker.Stored(nodes)
				e.met.checkpointsStored.Add(1)
				e.met.checkpointBytes.Add(uint64(n))
			}
			return true
		}
	}

	start := time.Now()
	err := simr.RunFromCtx(ctx, j.circ, from, hook)
	elapsed := time.Since(start)
	snap := m.Snapshot()
	if err != nil {
		return nil, classify(err), snap
	}
	res := &JobResult{
		Qubits:         j.circ.N,
		Gates:          j.circ.Len(),
		Representation: j.req.Representation,
		ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
		Norm2:          m.Norm2(simr.State),
		StateNodes:     simr.State.NodeCount(),
		Stats:          &snap,
	}
	if ap := simr.Approximation(); ap.Events > 0 {
		res.Approximate = true
		res.Fidelity = ap.Fidelity
		res.FidelityExact = ap.Exact
		res.ApproxEvents = ap.Events
	}
	switch j.req.Output {
	case "stats":
		// counters only
	case "ddio":
		var sb strings.Builder
		if werr := ddio.Write(&sb, m, codec, simr.State, j.circ.N); werr != nil {
			return nil, &ErrorBody{Kind: KindRunError, Message: fmt.Sprintf("serializing result: %v", werr)}, snap
		}
		res.DDIO = sb.String()
	default: // "amplitudes"
		idxs, probs := m.TopOutcomes(simr.State, j.circ.N, j.req.TopK)
		for i, idx := range idxs {
			amp := m.Amplitude(simr.State, j.circ.N, idx)
			c := m.R.Complex128(amp)
			res.Amplitudes = append(res.Amplitudes, Amplitude{
				Index: idx,
				State: fmt.Sprintf("%0*b", j.circ.N, idx),
				Re:    real(c),
				Im:    imag(c),
				Prob:  probs[i],
				Exact: codec.Encode(amp),
			})
		}
	}
	return res, nil, snap
}

// runShots runs a histogram job through the sim shots engine. The strategy
// is resolved from the circuit shape (one simulation plus N draws when it
// is static, per-shot re-simulation with projective collapse when it is
// dynamic); the effective seed was fixed at submit time, so the histogram
// — and the whole envelope — is a deterministic function of the request.
func runShots[T any](ctx context.Context, m *core.Manager[T], j *Job) (*JobResult, *ErrorBody, core.Snapshot) {
	start := time.Now()
	sr, err := sim.SampleShotsCtx(ctx, m, j.circ, sim.ShotOptions{
		Shots: j.req.Shots,
		Seed:  j.req.Seed,
	})
	elapsed := time.Since(start)
	snap := m.Snapshot()
	if err != nil {
		return nil, classify(err), snap
	}
	return &JobResult{
		Qubits:         j.circ.N,
		Gates:          j.circ.Len(),
		Representation: j.req.Representation,
		ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
		Histogram:      sr.Counts,
		Strategy:       sr.Strategy,
		Shots:          sr.Shots,
		Seed:           j.req.Seed,
		Stats:          &snap,
	}, nil, snap
}

// classify maps a simulation error onto the wire taxonomy: the governor's
// budget refusals keep their limit and peak statistics, context outcomes
// become cancellation/timeout, and anything else is a run error (e.g. a
// gate not exactly representable in the algebraic ring).
func classify(err error) *ErrorBody {
	var be *core.BudgetError
	if errors.As(err, &be) {
		peak := be.Peak
		return &ErrorBody{
			Kind:    KindBudgetExceeded,
			Message: err.Error(),
			Limit:   be.Limit,
			Peak:    &peak,
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &ErrorBody{Kind: KindTimeout, Message: err.Error()}
	}
	if errors.Is(err, context.Canceled) {
		return &ErrorBody{Kind: KindCancelled, Message: err.Error()}
	}
	return &ErrorBody{Kind: KindRunError, Message: err.Error()}
}
