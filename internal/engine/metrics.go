package engine

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/qcache"
)

// metrics is the engine's observability state, rendered as Prometheus text
// exposition format by render — stdlib only, no client library. Job-level
// counters are lock-free atomics bumped on the request and worker paths;
// per-worker utilization and the last manager table snapshot are guarded by
// a mutex and written only by the owning worker between jobs, so scrapes
// never contend with diagram arithmetic.
type metrics struct {
	started   atomic.Uint64 // jobs dequeued by a worker
	completed atomic.Uint64 // jobs finished successfully
	failed    atomic.Uint64 // jobs finished with an error (budget, run error)
	cancelled atomic.Uint64 // jobs cancelled (timeout, shutdown)
	rejected  atomic.Uint64 // submissions refused with 429
	deduped   atomic.Uint64 // submissions collapsed onto an identical in-flight job
	peerHits  atomic.Uint64 // misses answered by a ring peer's cache instead of a simulation

	approximated    atomic.Uint64 // jobs completed approximately (fidelity-bounded degradation fired)
	approxEvents    atomic.Uint64 // approximation events across all jobs
	fidelityGivenUp floatCounter  // Σ (1 − retained fidelity) over approximate jobs

	prefixHits         atomic.Uint64 // jobs warm-started from a prefix checkpoint
	prefixGatesSkipped atomic.Uint64 // gates skipped by warm starts (Σ resume positions)
	checkpointsStored  atomic.Uint64 // prefix-state checkpoints written to the cache
	checkpointBytes    atomic.Uint64 // serialized bytes across stored checkpoints
	batches            atomic.Uint64 // batch submissions accepted
	batchVariants      atomic.Uint64 // variant jobs across accepted batches

	queueLatency histogram // submit → worker pickup, seconds

	mu      sync.Mutex
	workers []workerMetrics
}

// floatCounter is a lock-free monotone float64 counter (CAS on the bit
// pattern — the stdlib has no atomic float).
type floatCounter struct {
	bits atomic.Uint64
}

func (c *floatCounter) add(v float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (c *floatCounter) load() float64 { return math.Float64frombits(c.bits.Load()) }

// histogram is a fixed-bucket Prometheus histogram (cumulative buckets plus
// sum and count). Good enough for queue latency; no client library needed.
type histogram struct {
	mu     sync.Mutex
	counts [len(queueLatencyBuckets) + 1]uint64 // last bucket is +Inf
	sum    float64
	total  uint64
}

// queueLatencyBuckets spans sub-millisecond pickups on an idle pool out to
// the multi-second waits of a saturated queue.
var queueLatencyBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.total++
	for i, le := range queueLatencyBuckets {
		if v <= le {
			h.counts[i]++
			return
		}
	}
	h.counts[len(queueLatencyBuckets)]++
}

func (h *histogram) render(w io.Writer, name, help string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, le := range queueLatencyBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total)
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.total)
}

// workerMetrics is one worker's cumulative utilization plus the table
// statistics of the manager its last job ran on.
type workerMetrics struct {
	jobs      uint64
	busy      time.Duration
	peakNodes int // max per-job peak observed over the worker's lifetime
	lastSnap  core.Snapshot
	hasSnap   bool
}

func newMetrics(workers int) *metrics {
	return &metrics{workers: make([]workerMetrics, workers)}
}

// observe records one finished job on worker w.
func (m *metrics) observe(w int, busy time.Duration, snap core.Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wm := &m.workers[w]
	wm.jobs++
	wm.busy += busy
	if snap.PeakNodes > wm.peakNodes {
		wm.peakNodes = snap.PeakNodes
	}
	wm.lastSnap = snap
	wm.hasSnap = true
}

// avgServiceSeconds estimates mean per-job service time across the pool —
// the number a readiness probe reports so the router can turn queue depth
// into an expected-wait estimate. Zero until the first job finishes.
func (m *metrics) avgServiceSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var jobs uint64
	var busy time.Duration
	for i := range m.workers {
		jobs += m.workers[i].jobs
		busy += m.workers[i].busy
	}
	if jobs == 0 {
		return 0
	}
	return busy.Seconds() / float64(jobs)
}

// AvgServiceSeconds reports the pool's mean per-job wall-clock service time.
func (e *Engine) AvgServiceSeconds() float64 { return e.met.avgServiceSeconds() }

// PeerHits reports misses answered by a ring peer's cache.
func (e *Engine) PeerHits() uint64 { return e.met.peerHits.Load() }

// JobsStarted reports jobs dequeued by a worker (the counter the cluster
// smoke test asserts on to prove a warm key was served without simulation).
func (e *Engine) JobsStarted() uint64 { return e.met.started.Load() }

// Deduped reports submissions collapsed onto an identical in-flight job.
func (e *Engine) Deduped() uint64 { return e.met.deduped.Load() }

// PrefixHits reports jobs warm-started from a prefix-state checkpoint.
func (e *Engine) PrefixHits() uint64 { return e.met.prefixHits.Load() }

// PrefixGatesSkipped reports gate applications skipped by warm starts.
func (e *Engine) PrefixGatesSkipped() uint64 { return e.met.prefixGatesSkipped.Load() }

// CheckpointsStored reports prefix-state checkpoints written to the cache.
func (e *Engine) CheckpointsStored() uint64 { return e.met.checkpointsStored.Load() }

// CheckpointBytesStored reports serialized bytes across stored checkpoints.
func (e *Engine) CheckpointBytesStored() uint64 { return e.met.checkpointBytes.Load() }

// RenderMetrics writes the engine's Prometheus text exposition. The
// transport may append its own families (peer-client errors, HTTP-level
// counters) after this call — text format concatenates cleanly.
func (e *Engine) RenderMetrics(w io.Writer) {
	e.met.render(w, len(e.queue), e.cfg.QueueSize, e.cache.Stats())
}

// render writes the Prometheus text exposition.
func (m *metrics) render(w io.Writer, queueDepth, queueCap int, cs qcache.Stats) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("qmddd_jobs_started_total", "Jobs dequeued by a worker.", m.started.Load())
	counter("qmddd_jobs_completed_total", "Jobs finished successfully.", m.completed.Load())
	counter("qmddd_jobs_failed_total", "Jobs finished with an error.", m.failed.Load())
	counter("qmddd_jobs_cancelled_total", "Jobs cancelled by timeout or shutdown.", m.cancelled.Load())
	counter("qmddd_jobs_rejected_total", "Submissions refused with 429.", m.rejected.Load())
	counter("qmddd_jobs_deduped_total", "Submissions collapsed onto an identical in-flight job.", m.deduped.Load())
	counter("qmddd_approximated_jobs_total", "Jobs completed approximately under a min_fidelity floor.", m.approximated.Load())
	counter("qmddd_approximations_total", "Fidelity-bounded approximation events across all jobs.", m.approxEvents.Load())
	fmt.Fprintf(w, "# HELP qmddd_fidelity_given_up_total Cumulative (1 - retained fidelity) over approximate jobs.\n# TYPE qmddd_fidelity_given_up_total counter\nqmddd_fidelity_given_up_total %g\n", m.fidelityGivenUp.load())
	counter("qmddd_cache_hits_total", "Result-cache hits (memory or disk).", cs.Hits)
	counter("qmddd_cache_disk_hits_total", "Result-cache hits served by the disk tier.", cs.DiskHits)
	counter("qmddd_cache_misses_total", "Result-cache misses.", cs.Misses)
	counter("qmddd_cache_stores_total", "Result envelopes stored in the cache.", cs.Stores)
	counter("qmddd_cache_evictions_total", "Memory-tier entries evicted under the byte cap.", cs.Evictions)
	counter("qmddd_cache_disk_evictions_total", "Disk-tier entries evicted under -cache-max-bytes (LRU by access time).", cs.DiskEvictions)
	counter("qmddd_prefix_hits_total", "Jobs warm-started from a prefix-state checkpoint.", m.prefixHits.Load())
	counter("qmddd_prefix_gates_skipped_total", "Gate applications skipped by prefix warm starts.", m.prefixGatesSkipped.Load())
	counter("qmddd_checkpoints_stored_total", "Prefix-state checkpoints written to the cache.", m.checkpointsStored.Load())
	counter("qmddd_checkpoint_bytes_total", "Serialized bytes across stored prefix checkpoints.", m.checkpointBytes.Load())
	counter("qmddd_batches_total", "Batch submissions accepted (POST /v1/batches).", m.batches.Load())
	counter("qmddd_batch_variants_total", "Variant jobs across accepted batches.", m.batchVariants.Load())
	counter("qmddd_cache_peer_hits_total", "Local cache misses answered by a ring peer's cache.", m.peerHits.Load())
	gauge("qmddd_cache_bytes", "Bytes held by the in-memory cache tier (payload + overhead).", cs.Bytes)
	gauge("qmddd_cache_entries", "Entries in the in-memory cache tier.", int64(cs.Entries))
	fmt.Fprintf(w, "# HELP qmddd_queue_depth Jobs waiting in the bounded queue.\n# TYPE qmddd_queue_depth gauge\nqmddd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP qmddd_queue_capacity Bounded queue capacity.\n# TYPE qmddd_queue_capacity gauge\nqmddd_queue_capacity %d\n", queueCap)
	m.queueLatency.render(w, "qmddd_queue_latency_seconds", "Time from submission to worker pickup.")

	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP qmddd_worker_jobs_total Jobs run by this worker.\n# TYPE qmddd_worker_jobs_total counter\n")
	for i := range m.workers {
		fmt.Fprintf(w, "qmddd_worker_jobs_total{worker=\"%d\"} %d\n", i, m.workers[i].jobs)
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_busy_seconds_total Wall-clock spent inside jobs.\n# TYPE qmddd_worker_busy_seconds_total counter\n")
	for i := range m.workers {
		fmt.Fprintf(w, "qmddd_worker_busy_seconds_total{worker=\"%d\"} %.6f\n", i, m.workers[i].busy.Seconds())
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_peak_nodes Largest per-job peak node count observed.\n# TYPE qmddd_worker_peak_nodes gauge\n")
	for i := range m.workers {
		fmt.Fprintf(w, "qmddd_worker_peak_nodes{worker=\"%d\"} %d\n", i, m.workers[i].peakNodes)
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_unique_table_nodes Unique-table occupancy after the worker's last job.\n# TYPE qmddd_worker_unique_table_nodes gauge\n")
	for i := range m.workers {
		if m.workers[i].hasSnap {
			fmt.Fprintf(w, "qmddd_worker_unique_table_nodes{worker=\"%d\"} %d\n", i, m.workers[i].lastSnap.UniqueNodes)
		}
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_interned_weights Intern-table occupancy after the worker's last job.\n# TYPE qmddd_worker_interned_weights gauge\n")
	for i := range m.workers {
		if m.workers[i].hasSnap {
			fmt.Fprintf(w, "qmddd_worker_interned_weights{worker=\"%d\"} %d\n", i, m.workers[i].lastSnap.InternedWeights)
		}
	}
	fmt.Fprintf(w, "# HELP qmddd_worker_ct_load Compute-table load factor after the worker's last job.\n# TYPE qmddd_worker_ct_load gauge\n")
	for i := range m.workers {
		if m.workers[i].hasSnap {
			fmt.Fprintf(w, "qmddd_worker_ct_load{worker=\"%d\"} %.6f\n", i, m.workers[i].lastSnap.CTLoad)
		}
	}
}
