// Package engine is the transport-free heart of the qmddd simulation
// service: a bounded job queue drained by a fixed pool of workers with
// private warm managers (the share-nothing design of the sweep pool), a
// per-request governor clamped against engine-wide caps, the two-tier
// content-addressed result cache with singleflight dedup, and the metrics
// the observability surface exports.
//
// The engine knows nothing about HTTP. internal/server wraps it in the
// worker-node HTTP/JSON transport (cmd/qmddd); internal/router shards
// requests across many engines by consistent-hashing their circuit
// fingerprints (cmd/qrouter). Splitting engine from transport is what makes
// that tier possible: both binaries share one simulation core, and every
// behavior worth testing — validation, caching, dedup, draining, peer
// adoption — is exercisable without a socket.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/qcache"
)

// Config tunes the engine. Zero values select the documented defaults; the
// *Cap fields are engine-side ceilings that request budget fields are
// clamped against.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueSize bounds the job queue (default 64). A full queue refuses
	// submissions with RejectBusy.
	QueueSize int
	// MaxJobs caps retained job records (default 1024).
	MaxJobs int
	// MaxQubits caps the circuit width (default 64 — basis-state indices are
	// uint64 on the wire).
	MaxQubits int
	// MaxTopK caps the amplitude list length (default 4096).
	MaxTopK int
	// MaxShots caps the shot count of a histogram job (default 1<<20).
	// Requests above the cap are rejected, not clamped — fewer shots is a
	// different histogram, not a tightened version of the same one.
	MaxShots int
	// CTSize is the per-manager compute-table slot count (default
	// core.DefaultCTSize).
	CTSize int
	// IntraWorkers enables intra-operation parallelism inside each worker's
	// managers (core.Manager.SetIntraWorkers): one job's Add/ApplyLocal
	// recursions fan out over up to this many goroutines. Results are
	// identical at any setting; ε>0 float managers stay sequential. Default
	// 1 (sequential). Composes multiplicatively with Workers — keep the
	// product near the core count.
	IntraWorkers int

	// NodeCap / WeightCap / ByteCap / TimeoutCap clamp the per-request
	// budget: a request asking for more (or for nothing, when a cap is set)
	// gets the cap. Zero leaves the dimension unlimited by default.
	NodeCap    int
	WeightCap  int
	ByteCap    int64
	TimeoutCap time.Duration

	// MinFidelityFloor is the engine-side floor for fidelity-bounded
	// approximation: a min_fidelity request below it is raised to it, so an
	// operator can bound how much fidelity any client may trade away. Zero
	// imposes no floor. It never turns approximation on by itself — jobs
	// without min_fidelity stay exact.
	MinFidelityFloor float64

	// CacheBytes caps the in-memory result-cache tier; zero disables it.
	// CacheDir, when non-empty, enables the disk tier: finished result
	// envelopes persist across restarts under repr/ε/norm-stamped headers.
	// With both zero/empty the cache is off entirely (singleflight dedup of
	// concurrent identical submissions stays on — it costs nothing).
	CacheBytes int64
	CacheDir   string
	// CacheMaxBytes, when positive, bounds the disk tier: after every store
	// the least-recently-used entries are evicted until the tier fits.
	// Without it a long-running checkpoint-heavy worker fills the disk.
	CacheMaxBytes int64

	// CheckpointEvery is the prefix-checkpoint cadence: during an exact
	// amplitude-mode run the state QMDD is snapshotted into the cache every
	// K gates (and at peak-node high-water marks, and at the end of the
	// unitary prefix), keyed by the circuit's prefix-hash chain link, so
	// later runs of any circuit extending the same prefix warm-start from
	// gate k instead of gate 0. Zero selects the default (64); negative
	// disables checkpointing. It is inert without a cache.
	CheckpointEvery int
	// CheckpointBytes caps one checkpoint's serialized size; oversized
	// snapshots are skipped, not truncated. Zero selects the default
	// (4 MiB); negative means unlimited.
	CheckpointBytes int64

	// MaxBatchVariants caps the variant count of one POST /v1/batches
	// submission (default 128).
	MaxBatchVariants int

	// HookBatchChild, when set, is invoked as each child job of a batch is
	// submitted (index -1 for the shared-prefix job). The server uses it to
	// emit one access-log line per child, so logs reconstruct a batch end
	// to end through the derived request ids.
	HookBatchChild func(b *Batch, index int, j *Job)

	// PeerLookup, when set, is consulted on a local cache miss before the
	// job is queued for simulation: it should fetch the stamped envelope for
	// the key from ring peers (the nodes that owned the key before a
	// topology change) and return the validated payload. The transport owns
	// fetching and validation; the engine owns adoption — a hit is stored in
	// the local cache, completes the singleflight, and serves the submission
	// as cached. Only the elected flight leader calls it, so a stampede of
	// identical submissions costs one peer fetch.
	PeerLookup func(key qcache.Key, stamp qcache.Stamp) ([]byte, bool)

	// HookRunning, when set (tests only), is invoked on the worker goroutine
	// as soon as a job transitions to running.
	HookRunning func(*Job)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxQubits <= 0 || c.MaxQubits > 64 {
		c.MaxQubits = 64
	}
	if c.MaxTopK <= 0 {
		c.MaxTopK = 4096
	}
	if c.MaxShots <= 0 {
		c.MaxShots = 1 << 20
	}
	if c.CTSize <= 0 {
		c.CTSize = core.DefaultCTSize
	}
	if c.IntraWorkers <= 0 {
		c.IntraWorkers = 1
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 4 << 20
	}
	if c.MaxBatchVariants <= 0 {
		c.MaxBatchVariants = 128
	}
	return c
}

// RejectReason classifies a refused submission; the transport maps it onto
// its own status vocabulary (HTTP: 400 / 503 / 429).
type RejectReason int

const (
	// RejectInvalid: the request is malformed (validation or parse error).
	RejectInvalid RejectReason = iota + 1
	// RejectDraining: the engine is shutting down and accepts no new work.
	RejectDraining
	// RejectBusy: the queue or the job store is full — back off and retry.
	RejectBusy
)

// SubmitError is a refused submission: a transport-mappable reason plus the
// structured error body to serve.
type SubmitError struct {
	Reason RejectReason
	Body   ErrorBody
}

func (e *SubmitError) Error() string { return e.Body.Message }

// Engine is the worker pool plus its queue, store, cache and metrics.
// Create with New, submit with Submit, and call Shutdown to drain.
type Engine struct {
	cfg     Config
	store   *jobStore
	met     *metrics
	queue   chan *Job
	cache   *qcache.Cache // nil when both tiers are disabled (nil-safe API)
	flight  *qcache.Flight[flightOutcome]
	batches *batchStore

	mu     sync.Mutex // guards closed + queue sends vs. close(queue)
	closed bool

	warm atomic.Bool // all pool workers have entered their drain loop

	wg        sync.WaitGroup
	runCtx    context.Context // cancelled at the drain deadline
	cancelRun context.CancelFunc
}

// New builds the engine and starts its workers. It fails only when the
// configured cache directory cannot be created.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	cache, err := qcache.NewBounded(cfg.CacheBytes, cfg.CacheDir, cfg.CacheMaxBytes)
	if err != nil {
		return nil, fmt.Errorf("opening result cache: %w", err)
	}
	e := &Engine{
		cfg:     cfg,
		store:   newJobStore(cfg.MaxJobs),
		met:     newMetrics(cfg.Workers),
		queue:   make(chan *Job, cfg.QueueSize),
		cache:   cache,
		flight:  qcache.NewFlight[flightOutcome](),
		batches: newBatchStore(256),
	}
	e.runCtx, e.cancelRun = context.WithCancel(context.Background())
	var started sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		started.Add(1)
		go e.worker(i, &started)
	}
	go func() {
		started.Wait()
		e.warm.Store(true)
	}()
	return e, nil
}

// Shutdown drains the engine: intake stops immediately (submissions are
// refused with RejectDraining), workers finish the accepted jobs, and jobs
// still unfinished at the drain deadline are cancelled cooperatively through
// the governor. It returns once every worker has exited — always cleanly,
// so a supervised process can exit 0.
func (e *Engine) Shutdown(drain time.Duration) {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()

	done := make(chan struct{})
	go func() { e.wg.Wait(); close(done) }()
	t := time.NewTimer(drain)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		e.cancelRun() // in-flight jobs unwind through the governor
		<-done
	}
	e.cancelRun()
}

// Draining reports whether Shutdown has begun (intake closed).
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Ready reports whether the engine can accept and run work: the worker pool
// is warm (every worker goroutine has started draining the queue) and the
// engine is not shutting down. A live-but-unready engine is exactly what a
// router's readiness probe must eject: still able to finish accepted jobs,
// no longer a target for new ones.
func (e *Engine) Ready() bool { return e.warm.Load() && !e.Draining() }

// DrainContext returns the context cancelled at the drain deadline —
// introspection for tests that model slow jobs against a hard stop.
func (e *Engine) DrainContext() context.Context { return e.runCtx }

// QueueDepth returns the number of jobs waiting in the bounded queue.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// QueueCap returns the bounded queue's capacity.
func (e *Engine) QueueCap() int { return e.cfg.QueueSize }

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Job returns the retained record for id, or nil.
func (e *Engine) Job(id string) *Job { return e.store.get(id) }

// CacheRaw returns the stamped disk-tier envelope for key verbatim — what
// this node serves to a ring peer. Misses (including memory-only caches)
// return false.
func (e *Engine) CacheRaw(key qcache.Key) ([]byte, bool) { return e.cache.GetRaw(key) }

// CacheStats snapshots the result-cache counters.
func (e *Engine) CacheStats() qcache.Stats { return e.cache.Stats() }

// Submit validates, deduplicates and enqueues one job. On acceptance the
// returned Job is live: wait on Done, then View(true) for the result. A
// cache or peer hit returns a Job born finished with Cached set in its view.
// A refusal returns a *SubmitError with the transport-mappable reason.
func (e *Engine) Submit(req JobRequest) (*Job, *SubmitError) {
	return e.submit(req, nil, "")
}

// submit is Submit with the internal hooks the batch scheduler needs: a
// pre-validated circuit (pre non-nil skips parsing — the caller has already
// run normalizeRequest and checkCircuit) and a request id recorded on the
// job so access logs can attribute batch children.
func (e *Engine) submit(req JobRequest, pre *circuit.Circuit, rid string) (*Job, *SubmitError) {
	circ := pre
	if circ == nil {
		var errBody *ErrorBody
		circ, errBody = e.validate(&req)
		if errBody != nil {
			return nil, &SubmitError{Reason: RejectInvalid, Body: *errBody}
		}
	}

	// A seeded shots job is a pure function of its request, so it caches
	// like any other. An unseeded one is sampled fresh every time: the
	// engine draws the seed (echoed in the result for reproduction), and
	// the random seed keys it away from every concurrent duplicate too.
	seeded := req.Shots == 0 || req.Seed != 0
	if req.Shots > 0 && req.Seed == 0 {
		req.Seed = randomSeed()
	}

	// Content address of the job: the circuit fingerprint (comment-,
	// whitespace- and register-name-insensitive) plus everything else that
	// shapes the result envelope. Budgets are deliberately excluded — a
	// success computed under any budget is valid under every budget.
	ident := qcache.Identity{
		Circuit: circuit.Fingerprint(circ),
		Repr:    req.Representation,
		Norm:    req.Norm,
		Eps:     req.Eps,
		Output:  req.Output,
		TopK:    req.TopK,
		Shots:   req.Shots,
		Seed:    req.Seed,
	}
	cacheKey := ident.Key()
	stamp := ident.Stamp()

	// A min_fidelity job has a second address: the approximate envelope,
	// which additionally depends on the floor and on the clamped memory
	// budgets (they decide where approximation fires). The exact key is
	// consulted first — an exact result trivially satisfies any fidelity
	// floor — then the approximate one.
	var approxKey qcache.Key
	hasApprox := req.MinFidelity > 0
	if hasApprox {
		aident := ident
		aident.MinFidelity = req.MinFidelity
		aident.MaxNodes = req.MaxNodes
		aident.MaxWeights = req.MaxWeights
		aident.MaxBytes = req.MaxBytes
		approxKey = aident.Key()
	}
	keys := []struct {
		key qcache.Key
		on  bool
	}{{cacheKey, true}, {approxKey, hasApprox}}
	for _, k := range keys {
		if !k.on {
			continue
		}
		if payload, ok := e.cache.Get(k.key, stamp); ok {
			if res, err := decodeResult(payload); err == nil {
				return e.cachedJob(req, res, rid), nil
			}
			// Undecodable payload (should be impossible past the checksums):
			// treat as a miss and recompute.
		}
	}

	// Singleflight: concurrent identical submissions elect one leader that
	// runs the simulation; the rest mirror its outcome. The flight key folds
	// the clamped budgets in, so a follower can never inherit a
	// budget_exceeded verdict it did not ask for.
	fid := qcache.FlightID{
		Identity:    ident,
		MaxNodes:    req.MaxNodes,
		MaxWeights:  req.MaxWeights,
		MaxBytes:    req.MaxBytes,
		TimeoutMS:   req.TimeoutMS,
		MinFidelity: req.MinFidelity,
	}
	call, leader := e.flight.Join(fid.Key())

	// Cache peering: before paying for a simulation, the elected leader asks
	// the nodes that owned this key before a topology change. The transport
	// validates the envelope (sha256 + stamp); the engine adopts the payload
	// into its own cache so the key is local from now on.
	if leader && e.cfg.PeerLookup != nil {
		for _, k := range keys {
			if !k.on {
				continue
			}
			if payload, ok := e.cfg.PeerLookup(k.key, stamp); ok {
				if res, err := decodeResult(payload); err == nil {
					e.cache.Put(k.key, payload, stamp)
					e.met.peerHits.Add(1)
					call.Complete(flightOutcome{status: StatusDone, payload: payload}, true)
					return e.cachedJob(req, res, rid), nil
				}
			}
		}
	}

	j := &Job{
		id:        newJobID(),
		req:       req,
		circ:      circ,
		requestID: rid,
		done:      make(chan struct{}),
		store:     e.store,
		status:    StatusQueued,
		queuedAt:  time.Now(),
	}
	if leader {
		j.cacheKey = cacheKey
		j.approxKey = approxKey
		j.hasApprox = hasApprox
		j.stamp = stamp
		j.cacheable = seeded
		j.flight = call
	}

	// Enqueue under the intake lock: after Shutdown flips closed, no send
	// can race the close of the queue channel.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		body := ErrorBody{Kind: KindShuttingDown, Message: "server is draining"}
		if leader {
			call.Complete(flightOutcome{status: StatusCancelled, errBody: &body}, false)
		}
		return nil, &SubmitError{Reason: RejectDraining, Body: body}
	}
	if !e.store.add(j) {
		e.mu.Unlock()
		e.met.rejected.Add(1)
		body := ErrorBody{Kind: KindQueueFull, Message: "job store is full of unfinished jobs"}
		if leader {
			call.Complete(flightOutcome{status: StatusCancelled, errBody: &body}, false)
		}
		return nil, &SubmitError{Reason: RejectBusy, Body: body}
	}
	if !leader {
		// Follower: no queue slot, no worker — a mirror goroutine copies the
		// leader's outcome into this record when the flight completes.
		e.mu.Unlock()
		e.met.deduped.Add(1)
		e.wg.Add(1)
		go e.mirror(j, call)
	} else {
		select {
		case e.queue <- j:
			e.mu.Unlock()
		default:
			e.mu.Unlock()
			e.met.rejected.Add(1)
			body := ErrorBody{Kind: KindQueueFull, Message: fmt.Sprintf("queue full (%d jobs waiting)", e.cfg.QueueSize)}
			e.finishJob(j, StatusCancelled, nil, &body)
			return nil, &SubmitError{Reason: RejectBusy, Body: body}
		}
	}
	return j, nil
}

// decodeResult rebuilds a result envelope from its canonical JSON payload —
// the bytes the cache stores and the flight hands to followers. Re-encoding
// the decoded struct reproduces the payload exactly, so every response built
// from it is byte-identical to the one the original run produced.
func decodeResult(payload []byte) (*JobResult, error) {
	var res JobResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// cachedJob answers a submission from a cache, peer or flight hit: a
// synthetic job record born finished, flagged cached, retained for polling
// on a best-effort basis (a full store or a draining engine still serves the
// job handle, it just isn't pollable afterwards).
func (e *Engine) cachedJob(req JobRequest, res *JobResult, rid string) *Job {
	now := time.Now()
	j := &Job{
		id:         newJobID(),
		req:        req,
		requestID:  rid,
		done:       make(chan struct{}),
		store:      e.store,
		status:     StatusDone,
		cached:     true,
		queuedAt:   now,
		finishedAt: now,
		result:     res,
	}
	close(j.done)
	e.mu.Lock()
	if !e.closed {
		e.store.add(j)
	}
	e.mu.Unlock()
	return j
}

// mirror finishes a follower job with the outcome of the flight it joined.
// It runs on its own goroutine (registered on e.wg so Shutdown waits for it;
// the leader always completes its call — workers drain every accepted job —
// so mirrors cannot leak).
func (e *Engine) mirror(j *Job, call *qcache.Call[flightOutcome]) {
	defer e.wg.Done()
	<-call.Done()
	out, ok := call.Outcome()
	if ok {
		if res, err := decodeResult(out.payload); err == nil {
			e.store.markCached(j)
			e.store.finish(j, StatusDone, res, nil)
			return
		}
		out.status = StatusFailed
		out.errBody = &ErrorBody{Kind: KindRunError, Message: "deduplicated result payload was undecodable"}
	}
	e.store.finish(j, out.status, nil, out.errBody)
}

// validate normalizes and checks a request, returning the parsed circuit.
func (e *Engine) validate(req *JobRequest) (*circuit.Circuit, *ErrorBody) {
	if strings.TrimSpace(req.QASM) == "" {
		return nil, &ErrorBody{Kind: KindInvalidRequest, Message: "qasm is required"}
	}
	if errBody := e.normalizeRequest(req); errBody != nil {
		return nil, errBody
	}
	circ, err := qasm.Parse(req.QASM, "request")
	if err != nil {
		body := &ErrorBody{Kind: KindParseError, Message: err.Error()}
		var pe *qasm.ParseError
		if errors.As(err, &pe) {
			body.Line = pe.Line
		}
		return nil, body
	}
	return e.checkCircuit(req, circ)
}

// normalizeRequest is the parse-free half of validation: representation,
// tolerance, norm, output shape, budgets and fidelity floor are checked and
// canonicalized in place. The batch path runs it once on the shared request
// template; Submit runs it per job through validate.
func (e *Engine) normalizeRequest(req *JobRequest) *ErrorBody {
	invalid := func(format string, args ...any) *ErrorBody {
		return &ErrorBody{Kind: KindInvalidRequest, Message: fmt.Sprintf(format, args...)}
	}
	switch req.Representation {
	case "", "alg":
		req.Representation = "alg"
	case "float", "num":
		req.Representation = "float"
	default:
		return invalid("unknown representation %q (want alg or float)", req.Representation)
	}
	if req.Eps < 0 {
		return invalid("eps must be non-negative")
	}
	norm, err := core.ParseNormScheme(req.Norm)
	if err != nil {
		return invalid("%v", err)
	}
	req.Norm = norm.String() // canonical name ("" → "left") keys the cache
	if req.Shots < 0 {
		return invalid("shots must be non-negative")
	}
	if req.Shots > e.cfg.MaxShots {
		return invalid("shots %d exceeds the server cap %d", req.Shots, e.cfg.MaxShots)
	}
	if req.Shots > 0 {
		// Shots mode: the histogram is the only envelope, and TopK plays no
		// part in it — both are pinned so equivalent requests share one
		// cache key.
		switch req.Output {
		case "", "histogram":
			req.Output = "histogram"
		default:
			return invalid("output %q is incompatible with shots; a shots job returns a histogram", req.Output)
		}
		req.TopK = 0
	} else {
		switch req.Output {
		case "", "amplitudes":
			req.Output = "amplitudes"
		case "stats", "ddio":
		case "histogram":
			return invalid("output histogram requires shots > 0")
		default:
			return invalid("unknown output %q (want amplitudes, stats, ddio or histogram)", req.Output)
		}
		if req.TopK < 0 {
			return invalid("top_k must be non-negative")
		}
		if req.TopK == 0 {
			req.TopK = 16
		}
		if req.TopK > e.cfg.MaxTopK {
			req.TopK = e.cfg.MaxTopK
		}
	}
	if req.MaxNodes < 0 || req.MaxWeights < 0 || req.MaxBytes < 0 || req.TimeoutMS < 0 {
		return invalid("budget fields must be non-negative")
	}
	if req.MinFidelity < 0 || req.MinFidelity > 1 {
		return invalid("min_fidelity must be in [0, 1]")
	}
	if req.MinFidelity == 1 {
		// A floor of 1 permits shedding nothing: exact semantics, and the
		// exact cache key.
		req.MinFidelity = 0
	}
	if req.MinFidelity > 0 {
		if req.Shots > 0 {
			return invalid("min_fidelity is incompatible with shots: a histogram drawn from an approximated state is silently biased")
		}
		if f := e.cfg.MinFidelityFloor; f > 0 && req.MinFidelity < f {
			req.MinFidelity = f
		}
	}
	req.MaxNodes = clampInt(req.MaxNodes, e.cfg.NodeCap)
	req.MaxWeights = clampInt(req.MaxWeights, e.cfg.WeightCap)
	req.MaxBytes = clampInt64(req.MaxBytes, e.cfg.ByteCap)
	if cap := e.cfg.TimeoutCap; cap > 0 {
		capMS := int64(cap / time.Millisecond)
		if req.TimeoutMS <= 0 || req.TimeoutMS > capMS {
			req.TimeoutMS = capMS
		}
	}
	return nil
}

// checkCircuit applies the engine's circuit-level checks to an
// already-normalized request: the width cap, the static-circuit requirement
// of amplitude mode, and the read-out strip that keys the job by its
// measure-free twin. The returned circuit is the one the job runs.
func (e *Engine) checkCircuit(req *JobRequest, circ *circuit.Circuit) (*circuit.Circuit, *ErrorBody) {
	invalid := func(format string, args ...any) *ErrorBody {
		return &ErrorBody{Kind: KindInvalidRequest, Message: fmt.Sprintf(format, args...)}
	}
	if circ.N > e.cfg.MaxQubits {
		return nil, invalid("circuit has %d qubits, server cap is %d", circ.N, e.cfg.MaxQubits)
	}
	if req.Shots == 0 {
		if circ.Dynamic() {
			return nil, invalid("circuit contains mid-circuit measurement, reset or classical control; submit with shots > 0 to run it")
		}
		// Amplitude/stats/ddio outputs describe the pre-measurement state:
		// strip the trailing read-out block and the classical register so
		// the job shares a cache key with its measure-free twin.
		circ = circ.StripReadout()
	} else if circ.Cbits > 64 {
		return nil, invalid("circuit uses %d classical bits; the histogram key is capped at 64", circ.Cbits)
	}
	return circ, nil
}

// clampInt applies a server cap to a request value: 0 (unset) takes the cap,
// anything above the cap is clamped down.
func clampInt(v, cap int) int {
	if cap > 0 && (v <= 0 || v > cap) {
		return cap
	}
	return v
}

func clampInt64(v, cap int64) int64 {
	if cap > 0 && (v <= 0 || v > cap) {
		return cap
	}
	return v
}
