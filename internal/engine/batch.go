package engine

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/qasm"
	"repro/internal/qcache"
)

// BatchRequest is the POST /v1/batches payload: N variant circuits sharing
// one prefix, which the engine simulates exactly once (a checkpointed
// prefix job) before fanning the variants out as ordinary jobs that
// warm-start from the checkpoint. Two forms are accepted, exactly one of
// which must be used:
//
//   - base + suffixes: Base is a complete OpenQASM program whose gate list
//     is the shared prefix; each suffix is a complete program over the same
//     qubit count whose gates are appended to Base's to form variant i.
//   - variants: complete per-variant programs; the engine discovers the
//     shared prefix itself via the prefix-hash chain, so textual variants
//     of the same prefix still share it.
//
// The remaining fields are the job template applied to every variant (same
// semantics as JobRequest). Shots mode is not batchable: a histogram job
// re-simulates per shot under its own seed, so there is no shared prefix
// work to factor out.
type BatchRequest struct {
	Base     string   `json:"base,omitempty"`
	Suffixes []string `json:"suffixes,omitempty"`
	Variants []string `json:"variants,omitempty"`

	Representation string  `json:"representation,omitempty"`
	Eps            float64 `json:"eps,omitempty"`
	Norm           string  `json:"norm,omitempty"`
	MaxNodes       int     `json:"max_nodes,omitempty"`
	MaxWeights     int     `json:"max_weights,omitempty"`
	MaxBytes       int64   `json:"max_bytes,omitempty"`
	TimeoutMS      int64   `json:"timeout_ms,omitempty"`
	MinFidelity    float64 `json:"min_fidelity,omitempty"`
	Output         string  `json:"output,omitempty"`
	TopK           int     `json:"top_k,omitempty"`
	// Wait makes the submitting transport block until the whole batch
	// finishes (the engine ignores it — waiting is the transport's job, via
	// Done).
	Wait bool `json:"wait,omitempty"`
}

// BatchVariantView is one variant's slot in the batch view: its derived
// request id, and either the child job's view or the submit error that
// refused it.
type BatchVariantView struct {
	Index     int        `json:"index"`
	RequestID string     `json:"request_id,omitempty"`
	Job       *JobView   `json:"job,omitempty"`
	Error     *ErrorBody `json:"error,omitempty"`
}

// BatchView is the wire form of a batch record (GET /v1/batches/{id}).
// PrefixKey is the cache key of the shared prefix's checkpoint — the
// address the router co-locates the batch by.
type BatchView struct {
	ID          string             `json:"id"`
	Status      string             `json:"status"`
	CreatedAt   time.Time          `json:"created_at"`
	FinishedAt  *time.Time         `json:"finished_at,omitempty"`
	PrefixGates int                `json:"prefix_gates"`
	PrefixKey   string             `json:"prefix_key,omitempty"`
	Prefix      *JobView           `json:"prefix,omitempty"`
	Variants    []BatchVariantView `json:"variants"`
}

// batchChild is one variant's engine-side record. requestID is fixed at
// submit time; job/err are written once by the scheduler goroutine under
// the batch mutex.
type batchChild struct {
	requestID string
	job       *Job
	err       *ErrorBody
}

// Batch aggregates one shared-prefix fan-out: the prefix job, the child
// jobs, and a done channel closed when every child is terminal. Transports
// observe it through ID, Done and View.
type Batch struct {
	id        string
	requestID string
	createdAt time.Time
	prefixLen int
	prefixKey qcache.Key
	done      chan struct{}

	mu         sync.Mutex
	status     string
	finishedAt time.Time
	prefixJob  *Job
	children   []batchChild
}

// ID returns the batch's record id.
func (b *Batch) ID() string { return b.id }

// Done returns a channel closed when every child job is terminal.
func (b *Batch) Done() <-chan struct{} { return b.done }

// PrefixKey returns the cache key the shared prefix's checkpoint lands
// under (zero when the batch has no shared prefix).
func (b *Batch) PrefixKey() qcache.Key { return b.prefixKey }

// childRequestID is safe without the lock: requestID is written before the
// scheduler goroutine starts and never mutated.
func (b *Batch) childRequestID(i int) string { return b.children[i].requestID }

func (b *Batch) setPrefix(j *Job) {
	b.mu.Lock()
	b.prefixJob = j
	b.mu.Unlock()
}

func (b *Batch) setChild(i int, j *Job, errBody *ErrorBody) {
	b.mu.Lock()
	b.children[i].job = j
	b.children[i].err = errBody
	b.mu.Unlock()
}

func (b *Batch) finish() {
	b.mu.Lock()
	b.status = StatusDone
	b.finishedAt = time.Now()
	b.mu.Unlock()
	close(b.done)
}

func (b *Batch) finished() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.status == StatusDone
}

// View snapshots the batch's wire form; withResults attaches each child
// job's result payload.
func (b *Batch) View(withResults bool) BatchView {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := BatchView{ID: b.id, Status: b.status, CreatedAt: b.createdAt, PrefixGates: b.prefixLen}
	if b.prefixLen > 0 {
		v.PrefixKey = b.prefixKey.String()
	}
	if !b.finishedAt.IsZero() {
		t := b.finishedAt
		v.FinishedAt = &t
	}
	if b.prefixJob != nil {
		pv := b.prefixJob.View(false)
		v.Prefix = &pv
	}
	v.Variants = make([]BatchVariantView, len(b.children))
	for i := range b.children {
		c := &b.children[i]
		cv := BatchVariantView{Index: i, RequestID: c.requestID, Error: c.err}
		if c.job != nil {
			jv := c.job.View(withResults)
			cv.Job = &jv
		}
		v.Variants[i] = cv
	}
	return v
}

// batchStore retains batch records for polling, bounded like the job store:
// once full, the oldest finished batch is evicted per new submission.
type batchStore struct {
	mu    sync.Mutex
	cap   int
	items map[string]*Batch
	order []string
}

func newBatchStore(capacity int) *batchStore {
	return &batchStore{cap: capacity, items: make(map[string]*Batch)}
}

func newBatchID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("engine: batch id entropy: %v", err))
	}
	return "b" + hex.EncodeToString(b[:])
}

func (st *batchStore) add(b *Batch) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.order) >= st.cap && !st.evictLocked() {
		return false
	}
	st.items[b.id] = b
	st.order = append(st.order, b.id)
	return true
}

func (st *batchStore) evictLocked() bool {
	for i, id := range st.order {
		if st.items[id].finished() {
			delete(st.items, id)
			st.order = append(st.order[:i], st.order[i+1:]...)
			return true
		}
	}
	return false
}

func (st *batchStore) get(id string) *Batch {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.items[id]
}

// Batch returns the retained batch record for id, or nil.
func (e *Engine) Batch(id string) *Batch { return e.batches.get(id) }

// SubmitBatch validates a batch, registers it, and starts its scheduler
// goroutine. rid is the transport request id of the submission; child jobs
// carry derived ids (<rid>-/v<i>, <rid>-/prefix) so access logs reconstruct
// the fan-out. On acceptance the returned Batch is live: wait on Done, then
// View(true) for the per-variant results.
func (e *Engine) SubmitBatch(req BatchRequest, rid string) (*Batch, *SubmitError) {
	invalid := func(format string, args ...any) *SubmitError {
		return &SubmitError{Reason: RejectInvalid, Body: ErrorBody{
			Kind: KindInvalidRequest, Message: fmt.Sprintf(format, args...),
		}}
	}
	hasBase := strings.TrimSpace(req.Base) != ""
	switch {
	case hasBase && len(req.Variants) > 0:
		return nil, invalid("use base+suffixes or variants, not both")
	case hasBase && len(req.Suffixes) == 0:
		return nil, invalid("base requires at least one suffix")
	case !hasBase && len(req.Suffixes) > 0:
		return nil, invalid("suffixes require a base circuit")
	case !hasBase && len(req.Variants) == 0:
		return nil, invalid("a batch needs base+suffixes or variants")
	}
	if n := len(req.Suffixes) + len(req.Variants); n > e.cfg.MaxBatchVariants {
		return nil, invalid("batch has %d variants, server cap is %d", n, e.cfg.MaxBatchVariants)
	}

	template := JobRequest{
		Representation: req.Representation,
		Eps:            req.Eps,
		Norm:           req.Norm,
		MaxNodes:       req.MaxNodes,
		MaxWeights:     req.MaxWeights,
		MaxBytes:       req.MaxBytes,
		TimeoutMS:      req.TimeoutMS,
		MinFidelity:    req.MinFidelity,
		Output:         req.Output,
		TopK:           req.TopK,
	}
	if errBody := e.normalizeRequest(&template); errBody != nil {
		return nil, &SubmitError{Reason: RejectInvalid, Body: *errBody}
	}

	variants, prefixLen, serr := e.batchCircuits(&template, req)
	if serr != nil {
		return nil, serr
	}
	if e.Draining() {
		return nil, &SubmitError{Reason: RejectDraining, Body: ErrorBody{
			Kind: KindShuttingDown, Message: "server is draining",
		}}
	}

	b := &Batch{
		id:        newBatchID(),
		requestID: rid,
		createdAt: time.Now(),
		prefixLen: prefixLen,
		status:    StatusRunning,
		done:      make(chan struct{}),
		children:  make([]batchChild, len(variants)),
	}
	stem := rid
	if stem == "" {
		stem = b.id
	}
	for i := range b.children {
		b.children[i].requestID = fmt.Sprintf("%s-/v%d", stem, i)
	}
	if prefixLen > 0 {
		b.prefixKey = prefixCacheKey(&template, variants[0], prefixLen)
	}
	if !e.batches.add(b) {
		return nil, &SubmitError{Reason: RejectBusy, Body: ErrorBody{
			Kind: KindQueueFull, Message: "batch store is full of unfinished batches",
		}}
	}
	e.met.batches.Add(1)
	e.met.batchVariants.Add(uint64(len(variants)))
	e.wg.Add(1)
	go e.runBatch(b, template, stem, variants)
	return b, nil
}

// batchCircuits parses and checks the batch's circuits, returning the
// per-variant circuits (validated, read-out stripped — what each child job
// runs) and the shared prefix length in gates.
func (e *Engine) batchCircuits(template *JobRequest, req BatchRequest) ([]*circuit.Circuit, int, *SubmitError) {
	invalid := func(format string, args ...any) *SubmitError {
		return &SubmitError{Reason: RejectInvalid, Body: ErrorBody{
			Kind: KindInvalidRequest, Message: fmt.Sprintf(format, args...),
		}}
	}
	parse := func(src, name string) (*circuit.Circuit, *SubmitError) {
		c, err := qasm.Parse(src, name)
		if err != nil {
			body := ErrorBody{Kind: KindParseError, Message: err.Error()}
			var pe *qasm.ParseError
			if errors.As(err, &pe) {
				body.Line = pe.Line
			}
			return nil, &SubmitError{Reason: RejectInvalid, Body: body}
		}
		return c, nil
	}
	check := func(c *circuit.Circuit, i int) (*circuit.Circuit, *SubmitError) {
		c, errBody := e.checkCircuit(template, c)
		if errBody != nil {
			errBody.Message = fmt.Sprintf("variant %d: %s", i, errBody.Message)
			return nil, &SubmitError{Reason: RejectInvalid, Body: *errBody}
		}
		return c, nil
	}

	if strings.TrimSpace(req.Base) != "" {
		base, serr := parse(req.Base, "base")
		if serr != nil {
			return nil, 0, serr
		}
		if base.Cbits != 0 || !base.IsUnitary() {
			return nil, 0, invalid("the base circuit is the shared prefix and must be purely unitary (no measure, reset or classical control)")
		}
		variants := make([]*circuit.Circuit, len(req.Suffixes))
		for i, src := range req.Suffixes {
			sc, serr := parse(src, fmt.Sprintf("suffix %d", i))
			if serr != nil {
				return nil, 0, serr
			}
			if sc.N != base.N {
				return nil, 0, invalid("suffix %d has %d qubits, base has %d", i, sc.N, base.N)
			}
			gates := make([]circuit.Gate, 0, len(base.Gates)+len(sc.Gates))
			gates = append(append(gates, base.Gates...), sc.Gates...)
			v, serr := check(&circuit.Circuit{
				Name:  fmt.Sprintf("variant %d", i),
				N:     base.N,
				Cbits: sc.Cbits,
				Gates: gates,
			}, i)
			if serr != nil {
				return nil, 0, serr
			}
			variants[i] = v
		}
		return variants, len(base.Gates), nil
	}

	variants := make([]*circuit.Circuit, len(req.Variants))
	for i, src := range req.Variants {
		c, serr := parse(src, fmt.Sprintf("variant %d", i))
		if serr != nil {
			return nil, 0, serr
		}
		if c, serr = check(c, i); serr != nil {
			return nil, 0, serr
		}
		variants[i] = c
	}
	// The checked circuits are read-out stripped, hence fully unitary — the
	// discovered shared prefix is automatically a sound checkpoint position.
	return variants, circuit.SharedPrefixLen(variants...), nil
}

// prefixCacheKey is the cache key the shared prefix's checkpoint lands
// under: the chain link H_k of the first k gates, in the same identity
// family the checkpoint store and StateCache use. The router uses the same
// construction to co-locate a batch with the solo jobs of its prefix.
func prefixCacheKey(template *JobRequest, v *circuit.Circuit, k int) qcache.Key {
	h := circuit.NewPrefixHasher(v.N, v.Cbits)
	for i := 0; i < k; i++ {
		h.Absorb(v.Gates[i])
	}
	eps := template.Eps
	if template.Representation != "float" {
		eps = 0
	}
	return qcache.Identity{
		Circuit: h.Link(),
		Repr:    template.Representation,
		Norm:    template.Norm,
		Eps:     eps,
		Output:  "state",
	}.Key()
}

// runBatch is the batch scheduler goroutine: simulate the shared prefix
// exactly once — the submit path's result cache and singleflight dedup make
// it exactly-once even across concurrent identical batches — then fan the
// variant jobs out (each warm-starts from the checkpoint the prefix run
// stored at its unitary boundary) and close the batch when every child is
// terminal.
func (e *Engine) runBatch(b *Batch, template JobRequest, stem string, variants []*circuit.Circuit) {
	defer e.wg.Done()
	if b.prefixLen > 0 {
		preq := template
		preq.Output = "stats"
		preq.TopK = 0
		preq.Wait = false
		pc := &circuit.Circuit{Name: "prefix", N: variants[0].N, Gates: variants[0].Gates[:b.prefixLen]}
		if pj, serr := e.submit(preq, pc, stem+"-/prefix"); serr == nil {
			b.setPrefix(pj)
			if hook := e.cfg.HookBatchChild; hook != nil {
				hook(b, -1, pj)
			}
			<-pj.Done()
		}
		// A refused prefix job is not fatal: the variants just run cold.
	}
	jobs := make([]*Job, 0, len(variants))
	for i := range variants {
		vreq := template
		vreq.Wait = false
		j, serr := e.submit(vreq, variants[i], b.childRequestID(i))
		if serr != nil {
			body := serr.Body
			b.setChild(i, nil, &body)
			continue
		}
		b.setChild(i, j, nil)
		if hook := e.cfg.HookBatchChild; hook != nil {
			hook(b, i, j)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	b.finish()
}
