package engine

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qcache"
)

// JobRequest is the submit payload (POST /v1/jobs on the wire). The
// representation, budget and output selection mirror the qsim CLI; all
// budget fields are clamped against the engine caps, so a request can only
// tighten the governor, never evade it.
type JobRequest struct {
	// QASM is the OpenQASM 2.0 source of the circuit to simulate.
	QASM string `json:"qasm"`
	// Representation selects the number representation: "alg" (exact Q[ω],
	// the default) or "float" (complex128 with tolerance Eps; "num" is an
	// accepted alias).
	Representation string `json:"representation,omitempty"`
	// Eps is the interning tolerance for the float representation.
	Eps float64 `json:"eps,omitempty"`
	// Norm selects the normalization scheme: left (default), max or gcd.
	Norm string `json:"norm,omitempty"`

	// Budget fields, clamped to the engine caps (0 = engine default).
	MaxNodes   int   `json:"max_nodes,omitempty"`
	MaxWeights int   `json:"max_weights,omitempty"`
	MaxBytes   int64 `json:"max_bytes,omitempty"`
	TimeoutMS  int64 `json:"timeout_ms,omitempty"`

	// MinFidelity opts the job into fidelity-bounded graceful degradation:
	// when the budget would otherwise refuse the run, the state is
	// approximated (lowest-contribution amplitudes shed) as long as the
	// retained fidelity stays ≥ this floor, and the result reports what was
	// given up. 0 (the default) keeps the exact fail-fast behavior; the
	// engine's MinFidelityFloor raises requests below its own floor.
	// Incompatible with shots — a histogram drawn from an approximated state
	// would be silently biased.
	MinFidelity float64 `json:"min_fidelity,omitempty"`

	// Output selects what the job returns: "amplitudes" (default; the TopK
	// most probable outcomes with exact weight encodings), "stats" (manager
	// counters only), "ddio" (a lossless serialization of the state
	// diagram — the portable certificate), or "histogram" (shot counts;
	// requires Shots > 0 and is the forced default whenever Shots is set).
	Output string `json:"output,omitempty"`
	// TopK bounds the amplitude list (default 16, clamped to the engine cap).
	TopK int `json:"top_k,omitempty"`
	// Shots switches the job into shots mode: the circuit is measured this
	// many times and the result is a histogram. Required (and the only
	// mode allowed) for dynamic circuits — mid-circuit measurement, reset
	// or classical control. Capped by the engine's MaxShots.
	Shots int `json:"shots,omitempty"`
	// Seed selects the deterministic random stream of a shots job. Any
	// non-zero seed makes the histogram reproducible — and therefore
	// cacheable. Seed 0 (the default) means "pick one": the engine draws a
	// random seed, echoes it in the result, and skips the cache.
	Seed int64 `json:"seed,omitempty"`
	// Wait makes the submitting transport block until the job finishes and
	// return the full result, so small jobs need no polling round-trip. The
	// engine itself ignores it — waiting is the transport's job, via Done.
	Wait bool `json:"wait,omitempty"`
}

// Amplitude is one basis-state amplitude of the result: float re/im for
// convenience, probability, and the representation's lossless encoding of
// the exact value (ddio codec format), so "alg" results lose nothing in
// transit.
type Amplitude struct {
	Index uint64  `json:"index"`
	State string  `json:"state"` // |…⟩ bitstring, MSB = highest qubit
	Re    float64 `json:"re"`
	Im    float64 `json:"im"`
	Prob  float64 `json:"prob"`
	Exact string  `json:"exact"`
}

// JobResult is the payload of a finished job.
type JobResult struct {
	Qubits         int         `json:"qubits"`
	Gates          int         `json:"gates"`
	Representation string      `json:"representation"`
	ElapsedMS      float64     `json:"elapsed_ms"`
	Norm2          float64     `json:"norm2"`
	StateNodes     int         `json:"state_nodes"`
	Amplitudes     []Amplitude `json:"amplitudes,omitempty"`
	DDIO           string      `json:"ddio,omitempty"`
	// Shots-mode fields. Histogram maps fixed-width binary keys (the
	// classical register when the circuit measures, the basis index
	// otherwise) to counts; encoding/json sorts map keys, so the envelope
	// bytes are deterministic and cache cleanly. Seed echoes the effective
	// seed — the requested one, or the engine-drawn seed of an unseeded job.
	Histogram map[string]int `json:"histogram,omitempty"`
	Strategy  string         `json:"strategy,omitempty"`
	Shots     int            `json:"shots,omitempty"`
	Seed      int64          `json:"seed,omitempty"`
	// Approximation fields, present only when fidelity-bounded degradation
	// actually fired: the job completed approximately, with the guaranteed
	// retained fidelity (the product of per-event fidelities, ≥ the
	// requested min_fidelity), whether that figure was computed with exact
	// ring arithmetic, and how many approximation events it took. A
	// min_fidelity job that never hit its budget omits all four — its
	// envelope is byte-identical to the exact job's.
	Approximate   bool           `json:"approximate,omitempty"`
	Fidelity      float64        `json:"fidelity,omitempty"`
	FidelityExact bool           `json:"fidelity_exact,omitempty"`
	ApproxEvents  int            `json:"approx_events,omitempty"`
	Stats         *core.Snapshot `json:"stats,omitempty"`
}

// ErrorBody is the structured error shape of every refused or failed job:
// Kind distinguishes the governor refusing work (budget_exceeded, with Limit
// and Peak), malformed circuits (parse_error, with Line), cancellation/
// timeout, and plain request errors. RequestID is stamped by the transport
// on the way out (it identifies one HTTP exchange, not the job record).
type ErrorBody struct {
	Kind      string          `json:"kind"`
	Message   string          `json:"message"`
	Line      int             `json:"line,omitempty"`  // parse_error: offending QASM line
	Limit     string          `json:"limit,omitempty"` // budget_exceeded: nodes|weights|bytes|deadline
	Peak      *core.PeakStats `json:"peak,omitempty"`  // budget_exceeded: high-water marks
	RequestID string          `json:"request_id,omitempty"`
}

// Error kinds.
const (
	KindInvalidRequest = "invalid_request"
	KindParseError     = "parse_error"
	KindBudgetExceeded = "budget_exceeded"
	KindCancelled      = "cancelled"
	KindTimeout        = "timeout"
	KindQueueFull      = "queue_full"
	KindShuttingDown   = "shutting_down"
	KindNotFound       = "not_found"
	KindNotFinished    = "not_finished"
	KindTooLarge       = "too_large"
	KindRunError       = "run_error"
)

// Job statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// JobView is the wire form of a job record. Cached marks a job whose result
// was served without running the simulation here: a qcache hit, a ring-peer
// fetch, or a submission collapsed onto an identical in-flight job by the
// singleflight layer.
type JobView struct {
	ID         string     `json:"id"`
	RequestID  string     `json:"request_id,omitempty"`
	Status     string     `json:"status"`
	Cached     bool       `json:"cached,omitempty"`
	QueuedAt   time.Time  `json:"queued_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Error      *ErrorBody `json:"error,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
}

// flightOutcome is what a leader job publishes to the submissions collapsed
// onto it: the terminal status, the canonical JSON encoding of the result
// envelope (nil on failure), and the error body (nil on success). Followers
// rebuild their JobResult from the same payload bytes the cache stores, so
// every copy of the envelope is byte-identical.
type flightOutcome struct {
	status  string
	payload []byte
	errBody *ErrorBody
}

// Job is the record flowing through the queue, retained for polling. All
// fields are package-private; transports observe a job through ID, Done and
// View. Mutable fields are guarded by the store's mutex; done is closed
// exactly once when the job reaches a terminal status.
type Job struct {
	id   string
	req  JobRequest
	circ *circuit.Circuit
	// requestID is the transport request id the job was submitted under
	// ("" when the transport sent none). Batch children carry derived ids
	// (<parent>-/v<i>), so a variant's engine-side record is traceable to
	// the batch submission that spawned it.
	requestID string
	done      chan struct{}
	store     *jobStore

	// Cache/singleflight wiring, set at submit time: cacheKey addresses the
	// exact result envelope; approxKey (set only for min_fidelity jobs)
	// addresses the approximate one — finishJob picks by whether
	// approximation actually fired, so exact results always share the exact
	// key. flight is non-nil on a leader and must be completed exactly once
	// when the job reaches a terminal status.
	cacheKey  qcache.Key
	approxKey qcache.Key
	hasApprox bool
	stamp     qcache.Stamp
	cacheable bool
	flight    *qcache.Call[flightOutcome]

	status     string
	cached     bool
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	errBody    *ErrorBody
	result     *JobResult
}

// ID returns the job's record id (stable for the life of the process).
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// View snapshots the job's wire form; withResult attaches the payload.
func (j *Job) View(withResult bool) JobView { return j.store.view(j, withResult) }

// Request returns the validated (normalized, clamped) request the job runs.
func (j *Job) Request() JobRequest { return j.req }

// jobStore retains job records for polling, bounded at cap: once full,
// the oldest finished job is evicted per new submission (queued/running
// jobs are never evicted — a worker holds their pointer).
type jobStore struct {
	mu    sync.Mutex
	cap   int
	jobs  map[string]*Job
	order []string // insertion order, for eviction
}

func newJobStore(capacity int) *jobStore {
	return &jobStore{cap: capacity, jobs: make(map[string]*Job)}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("engine: job id entropy: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}

// randomSeed draws the non-zero seed of an unseeded shots job (zero is the
// request sentinel for "pick one", so it must never be the pick).
func randomSeed() int64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("engine: seed entropy: %v", err))
		}
		if s := int64(binary.LittleEndian.Uint64(b[:])); s != 0 {
			return s
		}
	}
}

// add registers a new queued job; it fails only when the store is full of
// unfinished jobs.
func (st *jobStore) add(j *Job) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.order) >= st.cap && !st.evictLocked() {
		return false
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	return true
}

// evictLocked removes the oldest finished job, reporting whether one existed.
func (st *jobStore) evictLocked() bool {
	for i, id := range st.order {
		k := st.jobs[id]
		if k.status == StatusDone || k.status == StatusFailed || k.status == StatusCancelled {
			delete(st.jobs, id)
			st.order = append(st.order[:i], st.order[i+1:]...)
			return true
		}
	}
	return false
}

func (st *jobStore) get(id string) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs[id]
}

func (st *jobStore) setRunning(j *Job) {
	st.mu.Lock()
	j.status = StatusRunning
	j.startedAt = time.Now()
	st.mu.Unlock()
}

// markCached flags a job whose result was delivered by the cache or flight
// layer instead of a simulation run. Call before finish: waiters read the
// flag as soon as done closes.
func (st *jobStore) markCached(j *Job) {
	st.mu.Lock()
	j.cached = true
	st.mu.Unlock()
}

// finish moves j to a terminal status and wakes waiters.
func (st *jobStore) finish(j *Job, status string, res *JobResult, errBody *ErrorBody) {
	st.mu.Lock()
	j.status = status
	j.result = res
	j.errBody = errBody
	j.finishedAt = time.Now()
	st.mu.Unlock()
	close(j.done)
}

// view snapshots a job's wire form; withResult attaches the payload.
func (st *jobStore) view(j *Job, withResult bool) JobView {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := JobView{ID: j.id, RequestID: j.requestID, Status: j.status, Cached: j.cached, QueuedAt: j.queuedAt, Error: j.errBody}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}
