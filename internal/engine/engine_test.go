package engine

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

const testBase = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
t q[2];
h q[2];
`

const testBaseGates = 5

// testSuffix returns a per-variant phase tail over the same register.
func testSuffix(i int) string {
	gate := "s"
	if i%2 == 1 {
		gate = "t"
	}
	return fmt.Sprintf("OPENQASM 2.0;\nqreg q[3];\n%s q[%d];\nh q[%d];\n", gate, i%3, (i+1)%3)
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Shutdown(time.Minute) })
	return e
}

func runJob(t *testing.T, e *Engine, req JobRequest) JobView {
	t.Helper()
	j, serr := e.Submit(req)
	if serr != nil {
		t.Fatalf("submit: %v", serr)
	}
	<-j.Done()
	v := j.View(true)
	if v.Status != StatusDone {
		t.Fatalf("job finished %q: %+v", v.Status, v.Error)
	}
	return v
}

func ampJSON(t *testing.T, v JobView) string {
	t.Helper()
	if v.Result == nil || len(v.Result.Amplitudes) == 0 {
		t.Fatal("job has no amplitudes")
	}
	b, err := json.Marshal(v.Result.Amplitudes)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPrefixWarmStartByteIdentical is the engine-level differential check:
// a run that warm-starts from a prefix checkpoint must produce amplitudes
// byte-identical to a cold run of the same circuit — in both
// representations (ε = 0; tolerance-based interning is path-dependent).
func TestPrefixWarmStartByteIdentical(t *testing.T) {
	extended := testBase + "t q[0];\nh q[1];\ns q[2];\n"
	for _, repr := range []string{"alg", "float"} {
		t.Run(repr, func(t *testing.T) {
			warm := newTestEngine(t, Config{CacheBytes: 1 << 20, CheckpointEvery: 2})
			// Seed the checkpoint store: the base run snapshots its final
			// state under the chain link the extension shares.
			runJob(t, warm, JobRequest{QASM: testBase, Representation: repr, TopK: 8})
			got := ampJSON(t, runJob(t, warm, JobRequest{QASM: extended, Representation: repr, TopK: 8}))
			if hits := warm.PrefixHits(); hits != 1 {
				t.Fatalf("prefix hits = %d, want 1", hits)
			}
			if skipped := warm.PrefixGatesSkipped(); skipped != testBaseGates {
				t.Fatalf("prefix gates skipped = %d, want %d", skipped, testBaseGates)
			}
			if warm.CheckpointsStored() == 0 {
				t.Fatal("no checkpoints stored")
			}

			cold := newTestEngine(t, Config{CheckpointEvery: -1})
			want := ampJSON(t, runJob(t, cold, JobRequest{QASM: extended, Representation: repr, TopK: 8}))
			if got != want {
				t.Errorf("warm-start amplitudes differ from the cold run's:\nwarm %s\ncold %s", got, want)
			}
			if cold.PrefixHits() != 0 || cold.CheckpointsStored() != 0 {
				t.Error("checkpointing ran on an engine with CheckpointEvery < 0")
			}
		})
	}
}

// TestBatchSharedPrefixExactlyOnce pins the batch scheduler: one prefix job,
// every variant warm-started, request ids derived from the submission's.
func TestBatchSharedPrefixExactlyOnce(t *testing.T) {
	e := newTestEngine(t, Config{CacheBytes: 1 << 20})
	const n = 3
	req := BatchRequest{Base: testBase, TopK: 4}
	for i := 0; i < n; i++ {
		req.Suffixes = append(req.Suffixes, testSuffix(i))
	}
	b, serr := e.SubmitBatch(req, "r123")
	if serr != nil {
		t.Fatalf("SubmitBatch: %v", serr)
	}
	<-b.Done()
	v := b.View(true)
	if v.Status != StatusDone {
		t.Fatalf("batch finished %q", v.Status)
	}
	if v.PrefixGates != testBaseGates {
		t.Fatalf("prefix gates = %d, want %d", v.PrefixGates, testBaseGates)
	}
	if v.PrefixKey == "" {
		t.Fatal("batch has no prefix key")
	}
	if v.Prefix == nil || v.Prefix.RequestID != "r123-/prefix" {
		t.Fatalf("prefix job view = %+v, want request id r123-/prefix", v.Prefix)
	}
	if len(v.Variants) != n {
		t.Fatalf("%d variants, want %d", len(v.Variants), n)
	}
	seen := map[string]int{}
	for i, c := range v.Variants {
		if want := fmt.Sprintf("r123-/v%d", i); c.RequestID != want {
			t.Errorf("variant %d request id = %q, want %q", i, c.RequestID, want)
		}
		if c.Job == nil || c.Job.Status != StatusDone {
			t.Fatalf("variant %d did not finish: %+v", i, c)
		}
		seen[ampJSON(t, *c.Job)]++
	}
	if len(seen) != n {
		t.Errorf("only %d distinct variant results, want %d", len(seen), n)
	}
	// Exactly-once prefix work: the prefix job plus one job per variant, and
	// every variant resumed from the prefix checkpoint.
	if started := e.JobsStarted(); started != n+1 {
		t.Errorf("jobs started = %d, want %d", started, n+1)
	}
	if hits := e.PrefixHits(); hits != n {
		t.Errorf("prefix hits = %d, want %d", hits, n)
	}
	if skipped := e.PrefixGatesSkipped(); skipped != n*testBaseGates {
		t.Errorf("prefix gates skipped = %d, want %d", skipped, n*testBaseGates)
	}
}

// TestBatchVariantsFormDiscoversPrefix: in the variants form the engine
// finds the shared prefix through the chain — including across textual
// variants (renamed registers) of the same prefix.
func TestBatchVariantsFormDiscoversPrefix(t *testing.T) {
	// Variant 2 renames the register: the chain is textual-variant-blind, so
	// it still shares the discovered prefix.
	renamed := strings.ReplaceAll(testBase, "q[", "other[")
	if strings.Contains(renamed, "q[") {
		t.Fatal("register rename failed")
	}
	req := BatchRequest{Variants: []string{
		testBase + "t q[0];\n",
		testBase + "s q[0];\n",
		renamed + "h other[1];\n",
	}}

	e := newTestEngine(t, Config{CacheBytes: 1 << 20})
	b, serr := e.SubmitBatch(req, "")
	if serr != nil {
		t.Fatalf("SubmitBatch: %v", serr)
	}
	<-b.Done()
	v := b.View(false)
	if v.PrefixGates != testBaseGates {
		t.Fatalf("discovered prefix = %d gates, want %d", v.PrefixGates, testBaseGates)
	}
	if hits := e.PrefixHits(); hits != 3 {
		t.Errorf("prefix hits = %d, want 3", hits)
	}
	// With no transport request id the batch id is the stem.
	if want := b.ID() + "-/v0"; v.Variants[0].RequestID != want {
		t.Errorf("variant 0 request id = %q, want %q", v.Variants[0].RequestID, want)
	}
}

// TestBatchValidation covers the refusal surface of SubmitBatch.
func TestBatchValidation(t *testing.T) {
	e := newTestEngine(t, Config{MaxBatchVariants: 2})
	dynamicBase := "OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\nh q[1];\n"
	cases := []struct {
		name string
		req  BatchRequest
	}{
		{"empty", BatchRequest{}},
		{"both forms", BatchRequest{Base: testBase, Suffixes: []string{testSuffix(0)}, Variants: []string{testBase}}},
		{"base without suffixes", BatchRequest{Base: testBase}},
		{"suffixes without base", BatchRequest{Suffixes: []string{testSuffix(0)}}},
		{"over the cap", BatchRequest{Base: testBase, Suffixes: []string{testSuffix(0), testSuffix(1), testSuffix(2)}}},
		{"width mismatch", BatchRequest{Base: testBase, Suffixes: []string{"OPENQASM 2.0;\nqreg q[2];\nh q[0];\n"}}},
		{"dynamic base", BatchRequest{Base: dynamicBase, Suffixes: []string{testSuffix(0)}}},
		{"parse error", BatchRequest{Base: "OPENQASM 2.0;\nqreg q[", Suffixes: []string{testSuffix(0)}}},
		{"dynamic variant", BatchRequest{Variants: []string{dynamicBase}}},
		{"bad representation", BatchRequest{Base: testBase, Suffixes: []string{testSuffix(0)}, Representation: "nope"}},
	}
	for _, tc := range cases {
		b, serr := e.SubmitBatch(tc.req, "")
		if serr == nil || serr.Reason != RejectInvalid {
			t.Errorf("%s: SubmitBatch = (%v, %v), want RejectInvalid", tc.name, b, serr)
		}
	}
}
