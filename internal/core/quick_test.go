package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/alg"
)

// Property-based tests of the diagram invariants: canonicity, linearity of
// Add, the Kronecker mixed-product identity, and adjoint involution — all
// over one shared manager so that hash-consing is actually exercised.

var quickMgr = NewManager[alg.Q](alg.Ring{}, NormLeft)

type qcVec struct{ Amps []alg.Q }

// Generate implements quick.Generator for random 3-qubit amplitude vectors.
func (qcVec) Generate(r *rand.Rand, size int) reflect.Value {
	amps := make([]alg.Q, 8)
	for i := range amps {
		if r.Intn(3) == 0 {
			amps[i] = alg.QZero
			continue
		}
		v := func() int64 { return r.Int63n(9) - 4 }
		amps[i] = alg.NewQ(v(), v(), v(), v(), r.Intn(5)-2, 1)
	}
	return reflect.ValueOf(qcVec{amps})
}

type qcMat struct{ Rows [][]alg.Q }

// Generate implements quick.Generator for random 2-qubit matrices.
func (qcMat) Generate(r *rand.Rand, size int) reflect.Value {
	rows := make([][]alg.Q, 4)
	for i := range rows {
		rows[i] = make([]alg.Q, 4)
		for j := range rows[i] {
			if r.Intn(3) == 0 {
				rows[i][j] = alg.QZero
				continue
			}
			v := func() int64 { return r.Int63n(7) - 3 }
			rows[i][j] = alg.NewQ(v(), v(), v(), v(), r.Intn(3)-1, 1)
		}
	}
	return reflect.ValueOf(qcMat{rows})
}

var quickCfg = &quick.Config{MaxCount: 80}

func TestQuickCanonicityUnderScaling(t *testing.T) {
	m := quickMgr
	if err := quick.Check(func(v qcVec) bool {
		e1 := m.FromVector(v.Amps)
		scale := alg.NewQ(1, 0, -2, 3, 1, 1)
		scaled := make([]alg.Q, len(v.Amps))
		for i, a := range v.Amps {
			scaled[i] = a.Mul(scale)
		}
		e2 := m.FromVector(scaled)
		if m.IsZero(e1) {
			return m.IsZero(e2)
		}
		return e1.N == e2.N
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAddLinearity(t *testing.T) {
	m := quickMgr
	if err := quick.Check(func(x, y qcVec) bool {
		ex, ey := m.FromVector(x.Amps), m.FromVector(y.Amps)
		sum := m.Add(ex, ey)
		for i := range x.Amps {
			want := x.Amps[i].Add(y.Amps[i])
			if !m.Amplitude(sum, 3, uint64(i)).Equal(want) {
				return false
			}
		}
		// Commutativity at the diagram level (identical roots).
		return m.RootsEqual(sum, m.Add(ey, ex))
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMulAssociativity(t *testing.T) {
	m := quickMgr
	if err := quick.Check(func(a, b, c qcMat) bool {
		da, db, dc := m.FromMatrix(a.Rows), m.FromMatrix(b.Rows), m.FromMatrix(c.Rows)
		left := m.Mul(m.Mul(da, db), dc)
		right := m.Mul(da, m.Mul(db, dc))
		return m.RootsEqual(left, right)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDistributesOverAdd(t *testing.T) {
	m := quickMgr
	if err := quick.Check(func(a, b qcMat, v qcVec) bool {
		da, db := m.FromMatrix(a.Rows), m.FromMatrix(b.Rows)
		dv2 := m.FromVector(v.Amps[:4])
		lhs := m.Mul(m.Add(da, db), dv2)
		rhs := m.Add(m.Mul(da, dv2), m.Mul(db, dv2))
		return m.RootsEqual(lhs, rhs)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickKroneckerMixedProduct(t *testing.T) {
	// (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD) — a strong joint test of Mul and Kron.
	m := quickMgr
	small := func(r qcMat) Edge[alg.Q] {
		rows := [][]alg.Q{
			{r.Rows[0][0], r.Rows[0][1]},
			{r.Rows[1][0], r.Rows[1][1]},
		}
		return m.FromMatrix(rows)
	}
	if err := quick.Check(func(a, b, c, d qcMat) bool {
		A, B, C, D := small(a), small(b), small(c), small(d)
		lhs := m.Mul(m.Kron(A, B), m.Kron(C, D))
		rhs := m.Kron(m.Mul(A, C), m.Mul(B, D))
		return m.RootsEqual(lhs, rhs)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAdjointInvolution(t *testing.T) {
	m := quickMgr
	if err := quick.Check(func(a qcMat) bool {
		da := m.FromMatrix(a.Rows)
		return m.RootsEqual(m.Adjoint(m.Adjoint(da)), da) &&
			m.RootsEqual(m.Transpose(m.Transpose(da)), da)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickInnerProductHermitian(t *testing.T) {
	m := quickMgr
	if err := quick.Check(func(x, y qcVec) bool {
		ex, ey := m.FromVector(x.Amps), m.FromVector(y.Amps)
		return m.InnerProduct(ex, ey).Equal(m.InnerProduct(ey, ex).Conj())
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEntryAgreesWithDense(t *testing.T) {
	m := quickMgr
	if err := quick.Check(func(a qcMat) bool {
		da := m.FromMatrix(a.Rows)
		for i := uint64(0); i < 4; i++ {
			for j := uint64(0); j < 4; j++ {
				if !m.Entry(da, 2, i, j).Equal(a.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	}, quickCfg); err != nil {
		t.Error(err)
	}
}
