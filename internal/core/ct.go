package core

// computeTable memoizes operation results. Like classic DD packages it is a
// fixed-size hash table with overwrite-on-collision: bounded memory, O(1)
// access, and stale entries simply fall out. Keys are fixed-size integer
// tuples — an operation tag plus the operand node IDs and interned weight
// IDs — so a lookup neither formats nor allocates; entries are verified by
// comparing the stored operands, so a collision can only cost a
// recomputation, never a wrong result.

// ctOp tags the operation a compute-table entry memoizes. ctFree marks an
// empty slot, so real tags start at 1.
type ctOp uint8

const (
	ctFree ctOp = iota
	ctAdd
	ctMul
	ctKron
	ctAdjoint
	ctTranspose
	ctInner
)

// ctKey is the fixed-size compute-table key. Unary operations leave the b
// operand zero; node-only operations (Mul, Kron, …) leave the WIDs zero.
type ctKey struct {
	aID, bID   uint64
	aWID, bWID uint32
	op         ctOp
}

func (k ctKey) hash() uint64 {
	h := mix64(uint64(k.op)<<56 ^ k.aID)
	h = mix64(h ^ k.bID)
	return mix64(h ^ uint64(k.aWID) ^ uint64(k.bWID)<<32)
}

type ctEntry[T any] struct {
	key ctKey
	val Edge[T]
}

type computeTable[T any] struct {
	mask    uint64
	entries []ctEntry[T]
	filled  int // occupied slots (load-factor reporting)

	lookups, hits uint64
}

func newComputeTable[T any](size int) *computeTable[T] {
	if size <= 0 || size&(size-1) != 0 {
		panic("core: compute table size must be a positive power of two")
	}
	return &computeTable[T]{mask: uint64(size - 1), entries: make([]ctEntry[T], size)}
}

func (t *computeTable[T]) clear() {
	for i := range t.entries {
		t.entries[i] = ctEntry[T]{}
	}
	t.filled = 0
	t.lookups, t.hits = 0, 0
}

func (t *computeTable[T]) get(k ctKey) (Edge[T], bool) {
	t.lookups++
	e := &t.entries[k.hash()&t.mask]
	if e.key == k {
		t.hits++
		return e.val, true
	}
	var zero Edge[T]
	return zero, false
}

func (t *computeTable[T]) put(k ctKey, val Edge[T]) {
	e := &t.entries[k.hash()&t.mask]
	if e.key.op == ctFree {
		t.filled++
	}
	e.key, e.val = k, val
}
