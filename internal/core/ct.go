package core

import "sync"

// computeTable memoizes operation results. Like classic DD packages it is a
// fixed-size hash table with overwrite-on-collision: bounded memory, O(1)
// access, and stale entries simply fall out. Keys are fixed-size integer
// tuples — an operation tag plus the operand node IDs and interned weight
// IDs — so a lookup neither formats nor allocates; entries are verified by
// comparing the stored operands, so a collision can only cost a
// recomputation, never a wrong result.
//
// The table is striped like the unique and intern tables (hash.go): the top
// hash bits pick a shard, the low bits a slot. In shared mode each get/put
// takes the shard mutex; a lost race costs at most a recomputation because a
// concurrent overwrite is just an early collision eviction.

// ctOp tags the operation a compute-table entry memoizes. ctFree marks an
// empty slot, so real tags start at 1.
type ctOp uint8

const (
	ctFree ctOp = iota
	ctAdd
	ctMul
	ctKron
	ctAdjoint
	ctTranspose
	ctInner
	ctApply    // local gate application (apply.go); aID = node, bID = gate ID
	ctProject  // below-target control projector (apply.go)
	ctProjectC // complement of ctProject: the controls-not-all-satisfied part
)

// ctKey is the fixed-size compute-table key. Unary operations leave the b
// operand zero; node-only operations (Mul, Kron, …) leave the WIDs zero.
type ctKey struct {
	aID, bID   uint64
	aWID, bWID uint32
	op         ctOp
}

func (k ctKey) hash() uint64 {
	h := mix64(uint64(k.op)<<56 ^ k.aID)
	h = mix64(h ^ k.bID)
	return mix64(h ^ uint64(k.aWID) ^ uint64(k.bWID)<<32)
}

type ctEntry[T any] struct {
	key ctKey
	val Edge[T]
}

type ctShard[T any] struct {
	mu      sync.Mutex
	mask    uint64
	entries []ctEntry[T]
	filled  int // occupied slots (load-factor reporting)

	lookups, hits uint64
}

type computeTable[T any] struct {
	shared bool
	shards [tableShardCount]ctShard[T]
}

// newComputeTable splits size total slots across the shards.
func newComputeTable[T any](size int) *computeTable[T] {
	if size <= 0 || size&(size-1) != 0 {
		panic("core: compute table size must be a positive power of two")
	}
	per := size / tableShardCount
	if per < 2 {
		per = 2
	}
	t := &computeTable[T]{}
	for s := range t.shards {
		t.shards[s].entries = make([]ctEntry[T], per)
		t.shards[s].mask = uint64(per - 1)
	}
	return t
}

func (t *computeTable[T]) clear() {
	for s := range t.shards {
		sh := &t.shards[s]
		for i := range sh.entries {
			sh.entries[i] = ctEntry[T]{}
		}
		sh.filled = 0
		sh.lookups, sh.hits = 0, 0
	}
}

func (t *computeTable[T]) counters() (lookups, hits uint64) {
	for s := range t.shards {
		lookups += t.shards[s].lookups
		hits += t.shards[s].hits
	}
	return lookups, hits
}

func (t *computeTable[T]) filledTotal() int {
	n := 0
	for s := range t.shards {
		n += t.shards[s].filled
	}
	return n
}

func (t *computeTable[T]) capacity() int {
	n := 0
	for s := range t.shards {
		n += len(t.shards[s].entries)
	}
	return n
}

func (t *computeTable[T]) get(k ctKey) (Edge[T], bool) {
	h := k.hash()
	sh := &t.shards[shardOf(h)]
	if t.shared {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	sh.lookups++
	e := &sh.entries[h&sh.mask]
	if e.key == k {
		sh.hits++
		return e.val, true
	}
	var zero Edge[T]
	return zero, false
}

func (t *computeTable[T]) put(k ctKey, val Edge[T]) {
	h := k.hash()
	sh := &t.shards[shardOf(h)]
	if t.shared {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	e := &sh.entries[h&sh.mask]
	if e.key.op == ctFree {
		sh.filled++
	}
	e.key, e.val = k, val
}
