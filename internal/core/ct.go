package core

// computeTable memoizes operation results. Like classic DD packages it is a
// fixed-size hash table with overwrite-on-collision: bounded memory, O(1)
// access, and stale entries simply fall out. Keys are the canonical string
// keys built by the operations; values are verified by full key comparison,
// so a collision can only cost a recomputation, never a wrong result.
type computeTable[T any] struct {
	mask    uint64
	entries []ctEntry[T]

	lookups, hits uint64
}

type ctEntry[T any] struct {
	key string
	val Edge[T]
}

func newComputeTable[T any](size int) *computeTable[T] {
	if size <= 0 || size&(size-1) != 0 {
		panic("core: compute table size must be a positive power of two")
	}
	return &computeTable[T]{mask: uint64(size - 1), entries: make([]ctEntry[T], size)}
}

func (t *computeTable[T]) clear() {
	for i := range t.entries {
		t.entries[i] = ctEntry[T]{}
	}
	t.lookups, t.hits = 0, 0
}

// fnv1a hashes the key.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (t *computeTable[T]) get(key string) (Edge[T], bool) {
	t.lookups++
	e := &t.entries[fnv1a(key)&t.mask]
	if e.key == key {
		t.hits++
		return e.val, true
	}
	var zero Edge[T]
	return zero, false
}

func (t *computeTable[T]) put(key string, val Edge[T]) {
	e := &t.entries[fnv1a(key)&t.mask]
	e.key, e.val = key, val
}
