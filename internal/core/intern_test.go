package core

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/alg"
)

// legacyNodeKey reproduces, character for character, the string key the
// unique table used before integer keying: "level:" then, per edge,
// "Key(W)@id36;". The conformance tests below assert the integer-keyed
// table induces exactly the same node identity as this scheme did.
func legacyNodeKey[T any](m *Manager[T], level int, es []Edge[T]) string {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(level))
	sb.WriteByte(':')
	for _, e := range es {
		sb.WriteString(m.R.Key(e.W))
		sb.WriteByte('@')
		if e.N != nil {
			sb.WriteString(strconv.FormatUint(e.N.ID, 36))
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// checkKeySchemeEquivalence walks the whole unique table and asserts the
// (level, child ID, WID) identity is a bijection with the legacy string
// keys: no two live nodes share a legacy key (the integer scheme did not
// conflate), and re-making any node from its own edges returns the very
// same pointer (the integer scheme did not split, and the hit path works).
func checkKeySchemeEquivalence[T any](t *testing.T, m *Manager[T]) {
	t.Helper()
	keys := make(map[string]*Node[T])
	nodes := 0
	m.ut.forEach(func(n *Node[T]) {
		nodes++
		k := legacyNodeKey(m, n.Level, n.E)
		if prev, dup := keys[k]; dup {
			t.Fatalf("nodes %d and %d share legacy key %q", prev.ID, n.ID, k)
		}
		keys[k] = n
		if got := m.MakeNode(n.Level, n.E); got.N != n {
			t.Fatalf("remaking node %d returned a different node %v", n.ID, got.N)
		}
	})
	if nodes != m.Stats().UniqueNodes {
		t.Fatalf("walked %d nodes, Stats says %d", nodes, m.Stats().UniqueNodes)
	}
}

// TestKeySchemeEquivalenceAlg: integer keys agree with the legacy string
// keys over randomized exact diagrams and the operations combining them.
func TestKeySchemeEquivalenceAlg(t *testing.T) {
	for _, norm := range []NormScheme{NormLeft, NormGCD} {
		m := algManager(norm)
		r := rand.New(rand.NewSource(7))
		acc := m.FromVector(randQVals(r, 16))
		for trial := 0; trial < 20; trial++ {
			v := m.FromVector(randQVals(r, 16))
			acc = m.Add(acc, v)
		}
		checkKeySchemeEquivalence(t, m)
	}
}

func TestKeySchemeEquivalenceNum(t *testing.T) {
	for _, eps := range []float64{0, 1e-10} {
		m := numManager(eps)
		r := rand.New(rand.NewSource(11))
		amps := make([]complex128, 16)
		acc := m.BasisState(4, 0)
		for trial := 0; trial < 20; trial++ {
			for i := range amps {
				if r.Intn(4) == 0 {
					amps[i] = 0
					continue
				}
				amps[i] = complex(r.NormFloat64(), r.NormFloat64())
			}
			acc = m.Add(acc, m.FromVector(amps))
		}
		_ = acc
		checkKeySchemeEquivalence(t, m)
	}
}

// TestWeightInterning: equal weights collapse onto one WID, WID 0 is pinned
// to the ring's zero, and Weight round-trips the canonical representative.
func TestWeightInterning(t *testing.T) {
	m := algManager(NormLeft)
	if got := m.WID(alg.QZero); got != 0 {
		t.Fatalf("zero interned as WID %d, want 0", got)
	}
	half := alg.NewQ(0, 0, 0, 1, 0, 2) // 1/2
	w1 := m.WID(half)
	w2 := m.WID(alg.NewQ(0, 0, 0, 2, 0, 4)) // also 1/2, other construction
	if w1 != w2 {
		t.Fatalf("equal weights interned as %d and %d", w1, w2)
	}
	if !m.R.Equal(m.Weight(w1), half) {
		t.Fatalf("Weight(%d) = %v, want 1/2", w1, m.Weight(w1))
	}
	before := m.Stats().InternedWeights
	for i := 0; i < 100; i++ {
		m.WID(half)
		m.WID(alg.QOne)
	}
	// QOne was already pinned by the manager's constants in use; at most one
	// new ID may have appeared for it, and none for the repeats.
	if after := m.Stats().InternedWeights; after > before+1 {
		t.Fatalf("interning repeats grew the table from %d to %d", before, after)
	}
}

// TestInternTableGrowth: interning far more weights than the initial table
// size keeps every WID resolvable to the right canonical value.
func TestInternTableGrowth(t *testing.T) {
	m := numManager(0)
	const n = 5000
	wids := make([]uint32, n)
	for i := 0; i < n; i++ {
		wids[i] = m.WID(complex(float64(i), 0))
	}
	for i := 0; i < n; i++ {
		if m.Weight(wids[i]) != complex(float64(i), 0) {
			t.Fatalf("WID %d resolves to %v, want %d", wids[i], m.Weight(wids[i]), i)
		}
		if again := m.WID(complex(float64(i), 0)); again != wids[i] {
			t.Fatalf("re-interning %d gave WID %d, want %d", i, again, wids[i])
		}
	}
}

// TestPruneRebuildsInternTable: pruning releases the WIDs only dead nodes
// referenced, while the surviving diagram keeps its pointers and stays fully
// usable for further hash-consed construction.
func TestPruneRebuildsInternTable(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(3))
	keep := m.FromVector(randQVals(r, 32))
	for i := 0; i < 30; i++ {
		m.FromVector(randQVals(r, 32)) // garbage
	}
	stBefore := m.Stats()
	keepNodes := keep.NodeCount()
	rootNode := keep.N

	removed := m.Prune(keep)
	st := m.Stats()
	if st.UniqueNodes != keepNodes {
		t.Fatalf("after prune: %d unique nodes, want %d", st.UniqueNodes, keepNodes)
	}
	if removed != stBefore.UniqueNodes-keepNodes {
		t.Fatalf("Prune returned %d, want %d", removed, stBefore.UniqueNodes-keepNodes)
	}
	if st.InternedWeights >= stBefore.InternedWeights {
		t.Fatalf("intern table did not shrink: %d -> %d",
			stBefore.InternedWeights, st.InternedWeights)
	}
	if keep.N != rootNode {
		t.Fatalf("prune moved the surviving root node")
	}
	// The survivor must still hash-cons against itself...
	checkKeySchemeEquivalence(t, m)
	// ...and participate in fresh operations.
	sum := m.Add(keep, keep)
	if m.IsZero(sum) && !m.IsZero(keep) {
		t.Fatalf("post-prune Add broke")
	}
}

// TestWithComputeTableSize: the option rounds up to a power of two and is
// reflected in Stats; results are identical regardless of table size.
func TestWithComputeTableSize(t *testing.T) {
	m := NewManager[alg.Q](alg.Ring{}, NormLeft, WithComputeTableSize(100))
	if got := m.Stats().CTCapacity; got != 128 {
		t.Fatalf("CTCapacity = %d, want 128", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("WithComputeTableSize(0) did not panic")
			}
		}()
		WithComputeTableSize(0)
	}()

	// A tiny CT loses memoization, never correctness.
	small := NewManager[alg.Q](alg.Ring{}, NormLeft, WithComputeTableSize(2))
	big := NewManager[alg.Q](alg.Ring{}, NormLeft)
	r1, r2 := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		a1 := small.Add(small.FromVector(randQVals(r1, 16)), small.FromVector(randQVals(r1, 16)))
		a2 := big.Add(big.FromVector(randQVals(r2, 16)), big.FromVector(randQVals(r2, 16)))
		v1 := small.ToVector(a1, 4)
		v2 := big.ToVector(a2, 4)
		for i := range v1 {
			if !v1[i].Equal(v2[i]) {
				t.Fatalf("trial %d amp %d: CT size changed the result: %v vs %v",
					trial, i, v1[i], v2[i])
			}
		}
	}
}

// TestHitPathAllocationFree: once a node (or memoized operation result)
// exists, looking it up again allocates nothing — the acceptance criterion
// of the integer-keying rework.
func TestHitPathAllocationFree(t *testing.T) {
	t.Run("MakeNodeAlg", func(t *testing.T) {
		m := algManager(NormLeft)
		child := m.MakeVectorNode(1, m.OneEdge(), m.Terminal(alg.QInvSqrt2))
		e0 := Edge[alg.Q]{W: alg.QOne, N: child.N}
		e1 := Edge[alg.Q]{W: alg.QZero}
		m.MakeVectorNode(2, e0, e1) // populate
		if avg := testing.AllocsPerRun(200, func() {
			m.MakeVectorNode(2, e0, e1)
		}); avg != 0 {
			t.Fatalf("alg MakeNode hit path allocates %.1f objects per call", avg)
		}
	})
	t.Run("MakeNodeNum", func(t *testing.T) {
		m := numManager(0)
		child := m.MakeVectorNode(1, m.OneEdge(), m.Terminal(complex(0.5, 0.25)))
		e0 := Edge[complex128]{W: 1, N: child.N}
		e1 := Edge[complex128]{W: 0}
		m.MakeVectorNode(2, e0, e1)
		if avg := testing.AllocsPerRun(200, func() {
			m.MakeVectorNode(2, e0, e1)
		}); avg != 0 {
			t.Fatalf("num MakeNode hit path allocates %.1f objects per call", avg)
		}
	})
	t.Run("AddCTHit", func(t *testing.T) {
		m := algManager(NormLeft)
		r := rand.New(rand.NewSource(21))
		x := m.FromVector(randQVals(r, 8))
		y := m.FromVector(randQVals(r, 8))
		m.Add(x, y) // populate the compute table
		if avg := testing.AllocsPerRun(200, func() {
			m.Add(x, y)
		}); avg != 0 {
			t.Fatalf("Add CT hit path allocates %.1f objects per call", avg)
		}
	})
}

func BenchmarkMakeNode(b *testing.B) {
	b.Run("alg", func(b *testing.B) {
		m := algManager(NormLeft)
		child := m.MakeVectorNode(1, m.OneEdge(), m.Terminal(alg.QInvSqrt2))
		e0 := Edge[alg.Q]{W: alg.QOne, N: child.N}
		e1 := Edge[alg.Q]{W: alg.QInvSqrt2, N: child.N}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MakeVectorNode(2, e0, e1)
		}
	})
	b.Run("num", func(b *testing.B) {
		m := numManager(0)
		child := m.MakeVectorNode(1, m.OneEdge(), m.Terminal(complex(0.5, 0)))
		e0 := Edge[complex128]{W: 1, N: child.N}
		e1 := Edge[complex128]{W: complex(0, 0.5), N: child.N}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MakeVectorNode(2, e0, e1)
		}
	})
}

func BenchmarkWeightIntern(b *testing.B) {
	b.Run("alg", func(b *testing.B) {
		m := algManager(NormLeft)
		r := rand.New(rand.NewSource(5))
		ws := randQVals(r, 64)
		for _, w := range ws {
			m.WID(w)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.WID(ws[i&63])
		}
	})
	b.Run("num", func(b *testing.B) {
		m := numManager(0)
		ws := make([]complex128, 64)
		r := rand.New(rand.NewSource(5))
		for i := range ws {
			ws[i] = complex(r.NormFloat64(), r.NormFloat64())
			m.WID(ws[i])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.WID(ws[i&63])
		}
	})
}
