package core

import "math"

// Project applies the projector |outcome⟩⟨outcome| on the given qubit
// (0-based, qubit 0 = top level) to a vector diagram and returns the
// *unnormalized* projected state together with the outcome probability
// (‖Pψ‖²/‖ψ‖²).
//
// The result is deliberately not renormalized: the factor 1/√p generally
// lies outside D[ω], so renormalizing would either leave the exact ring or
// silently reintroduce floating point. Callers that need a unit vector can
// track the norm separately (probabilities and further projections are
// unaffected) — the same convention exact QMDD measurement uses.
func (m *Manager[T]) Project(v Edge[T], n, qubit int, outcome int) (Edge[T], float64) {
	if qubit < 0 || qubit >= n {
		panic("core: Project qubit out of range")
	}
	if outcome != 0 && outcome != 1 {
		panic("core: Project outcome must be 0 or 1")
	}
	before := m.Norm2(v)
	level := n - qubit
	proj := m.projectRec(v, level, outcome, make(map[*Node[T]]Edge[T]))
	if before == 0 {
		return proj, 0
	}
	return proj, m.Norm2(proj) / before
}

func (m *Manager[T]) projectRec(e Edge[T], level, outcome int, memo map[*Node[T]]Edge[T]) Edge[T] {
	if m.IsZero(e) {
		return m.ZeroEdge()
	}
	if e.N == nil || e.N.Level < level {
		panic("core: malformed vector diagram in Project")
	}
	if e.N.Level == level {
		kept := e.N.E[outcome]
		var es [2]Edge[T]
		es[outcome] = kept
		es[1-outcome] = m.ZeroEdge()
		sub := m.MakeVectorNode(level, es[0], es[1])
		return m.Scale(sub, e.W)
	}
	if sub, ok := memo[e.N]; ok {
		return m.Scale(sub, e.W)
	}
	es := make([]Edge[T], len(e.N.E))
	for i, c := range e.N.E {
		es[i] = m.projectRec(c, level, outcome, memo)
	}
	sub := m.MakeNode(e.N.Level, es)
	memo[e.N] = sub
	return m.Scale(sub, e.W)
}

// Fidelity returns |⟨u|v⟩|² / (‖u‖²·‖v‖²) — 1 iff the two vector diagrams
// represent the same physical state (up to global phase and length).
func (m *Manager[T]) Fidelity(u, v Edge[T]) float64 {
	nu, nv := m.Norm2(u), m.Norm2(v)
	if nu == 0 || nv == 0 {
		return 0
	}
	ip := m.R.Abs2(m.InnerProduct(u, v))
	f := ip / (nu * nv)
	// Guard against float round-up just above 1.
	return math.Min(f, 1)
}
