package core

import (
	"fmt"
	"math"
)

// Project applies the projector |outcome⟩⟨outcome| on the given qubit
// (0-based, qubit 0 = top level) to a vector diagram and returns the
// *unnormalized* projected state together with the outcome probability
// (‖Pψ‖²/‖ψ‖²). Out-of-range arguments and structurally invalid diagrams
// return an error (the latter wrapping ErrMalformedDiagram); a budget trip
// while building the projected diagram surfaces as a *BudgetError.
//
// The result is deliberately not renormalized: the factor 1/√p generally
// lies outside D[ω], so renormalizing would either leave the exact ring or
// silently reintroduce floating point. Callers that need a unit vector can
// track the norm separately (probabilities and further projections are
// unaffected) — the same convention exact QMDD measurement uses.
func (m *Manager[T]) Project(v Edge[T], n, qubit, outcome int) (proj Edge[T], p float64, err error) {
	if qubit < 0 || qubit >= n {
		return m.ZeroEdge(), 0, fmt.Errorf("core: Project qubit %d out of range [0,%d)", qubit, n)
	}
	if outcome != 0 && outcome != 1 {
		return m.ZeroEdge(), 0, fmt.Errorf("core: Project outcome must be 0 or 1, got %d", outcome)
	}
	if !m.IsZero(v) {
		if v.N == nil || v.N.Level != n {
			got := 0
			if v.N != nil {
				got = v.N.Level
			}
			return m.ZeroEdge(), 0, fmt.Errorf("%w: root at level %d for a %d-qubit Project",
				ErrMalformedDiagram, got, n)
		}
	}
	defer RecoverTo(&err) // budget trips inside MakeNode/Scale
	before := m.Norm2(v)
	level := n - qubit
	proj, err = m.projectRec(v, level, outcome, make(map[*Node[T]]Edge[T]))
	if err != nil {
		return m.ZeroEdge(), 0, err
	}
	if before == 0 {
		return proj, 0, nil
	}
	return proj, m.Norm2(proj) / before, nil
}

func (m *Manager[T]) projectRec(e Edge[T], level, outcome int, memo map[*Node[T]]Edge[T]) (Edge[T], error) {
	if m.IsZero(e) {
		return m.ZeroEdge(), nil
	}
	if e.N == nil || e.N.Level < level {
		got := 0
		if e.N != nil {
			got = e.N.Level
		}
		return m.ZeroEdge(), fmt.Errorf("%w: level %d reached where level ≥ %d was expected in Project",
			ErrMalformedDiagram, got, level)
	}
	if len(e.N.E) != VectorArity {
		return m.ZeroEdge(), fmt.Errorf("%w: matrix node (arity %d) in Project", ErrMalformedDiagram, len(e.N.E))
	}
	if sub, ok := memo[e.N]; ok {
		return m.Scale(sub, e.W), nil
	}
	if e.N.Level == level {
		// Memoized like every other level: a target-level node shared by many
		// parents is projected once, not once per incoming edge.
		kept := e.N.E[outcome]
		var es [2]Edge[T]
		es[outcome] = kept
		es[1-outcome] = m.ZeroEdge()
		sub := m.MakeVectorNode(level, es[0], es[1])
		memo[e.N] = sub
		return m.Scale(sub, e.W), nil
	}
	es := make([]Edge[T], len(e.N.E))
	for i, c := range e.N.E {
		var err error
		if es[i], err = m.projectRec(c, level, outcome, memo); err != nil {
			return m.ZeroEdge(), err
		}
	}
	sub := m.MakeNode(e.N.Level, es)
	memo[e.N] = sub
	return m.Scale(sub, e.W), nil
}

// Fidelity returns |⟨u|v⟩|² / (‖u‖²·‖v‖²) — 1 iff the two vector diagrams
// represent the same physical state (up to global phase and length).
func (m *Manager[T]) Fidelity(u, v Edge[T]) float64 {
	nu, nv := m.Norm2(u), m.Norm2(v)
	if nu == 0 || nv == 0 {
		return 0
	}
	ip := m.R.Abs2(m.InnerProduct(u, v))
	f := ip / (nu * nv)
	// Guard against float round-up just above 1.
	return math.Min(f, 1)
}
