package core

import "repro/internal/coeff"

// normalize rewrites the edge weights in place according to the manager's
// normalization scheme and returns the extracted factor η. At least one
// weight must be nonzero. The postcondition that makes QMDDs canonical:
// equal weight vectors up to a scalar normalize to the identical weight
// vector.
func (m *Manager[T]) normalize(es []Edge[T]) T {
	switch m.Norm {
	case NormMax:
		return m.normalizeMax(es)
	case NormGCD:
		if eta, ok := m.normalizeGCD(es); ok {
			return eta
		}
		return m.normalizeLeft(es)
	default:
		return m.normalizeLeft(es)
	}
}

// normalizeLeft divides by the leftmost nonzero weight (classic QMDD rule;
// Algorithm 2 when the ring is Q[ω]). The pivot weight is set to an exact
// one, so no division residue can break redundancy detection on the pivot
// itself.
func (m *Manager[T]) normalizeLeft(es []Edge[T]) T {
	i := 0
	for m.R.IsZero(es[i].W) {
		i++
	}
	eta := es[i].W
	es[i].W = m.R.One()
	// Division by an exact 1 is the identity in every ring (bit-exact even
	// for complex128), and trivial pivots dominate in practice — skip the
	// whole division pass for them.
	if m.R.IsOne(eta) {
		return eta
	}
	for j := i + 1; j < len(es); j++ {
		if !m.R.IsZero(es[j].W) {
			es[j].W = m.R.Div(es[j].W, eta)
		}
	}
	return eta
}

// normalizeMax divides by the leftmost weight of largest squared magnitude,
// which keeps all weights at magnitude ≤ 1 (the numerically stabilized rule
// of [29], at the cost of one magnitude scan per node).
func (m *Manager[T]) normalizeMax(es []Edge[T]) T {
	best, bestAbs := -1, 0.0
	for i, e := range es {
		if m.R.IsZero(e.W) {
			continue
		}
		if a := m.R.Abs2(e.W); best < 0 || a > bestAbs {
			best, bestAbs = i, a
		}
	}
	eta := es[best].W
	es[best].W = m.R.One()
	if m.R.IsOne(eta) {
		return eta
	}
	for j := range es {
		if j != best && !m.R.IsZero(es[j].W) {
			es[j].W = m.R.Div(es[j].W, eta)
		}
	}
	return eta
}

// normalizeGCD implements Algorithm 3: factor out a greatest common divisor
// of the weights, unit-adjusted so that the leftmost nonzero weight becomes
// its canonical associate. Unlike the field schemes the pivot weight does
// not become 1 in general. ok is false when the coefficient ring does not
// support GCDs or the weights left the GCD subring.
func (m *Manager[T]) normalizeGCD(es []Edge[T]) (T, bool) {
	gr, ok := any(m.R).(coeff.GCDRing[T])
	if !ok {
		var zero T
		return zero, false
	}
	ws := make([]T, len(es))
	for i, e := range es {
		ws[i] = e.W
	}
	eta, ok := gr.GCD(ws)
	if !ok {
		return eta, false
	}
	for j := range es {
		if m.R.IsZero(es[j].W) {
			continue
		}
		q, ok := gr.DivExact(es[j].W, eta)
		if !ok {
			panic("core: GCD normalization factor does not divide a weight")
		}
		es[j].W = q
	}
	return eta, true
}
