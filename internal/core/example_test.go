package core_test

import (
	"fmt"

	"repro/internal/alg"
	"repro/internal/core"
)

// The paper's Fig. 1: the matrix H ⊗ I₂ needs only one QMDD node per level
// because weighted edges share the bottom-right block that differs from the
// others by −1; the common factor 1/√2 moves to the root edge.
func ExampleManager_Kron() {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	s := alg.QInvSqrt2
	h := m.FromMatrix([][]alg.Q{{s, s}, {s, s.Neg()}})
	u := m.Kron(h, m.Identity(1))
	fmt.Println("nodes:", u.NodeCount())
	fmt.Println("root weight:", u.W)
	// Output:
	// nodes: 2
	// root weight: (1/√2)^1·(0·ω³ + 0·ω² + 0·ω + 1)
}

// Canonicity makes equivalence checking O(1): the same matrix built along
// different routes is the identical node.
func ExampleManager_RootsEqual() {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	s := alg.QInvSqrt2
	h := m.FromMatrix([][]alg.Q{{s, s}, {s, s.Neg()}})
	hh := m.Mul(h, h)
	fmt.Println(m.RootsEqual(hh, m.Identity(1)))
	// Output:
	// true
}

// Amplitudes are exact path products (the paper's Example 3).
func ExampleManager_Entry() {
	m := core.NewManager[alg.Q](alg.Ring{}, core.NormLeft)
	s := alg.QInvSqrt2
	h := m.FromMatrix([][]alg.Q{{s, s}, {s, s.Neg()}})
	u := m.Kron(h, m.Identity(1))
	// A −1/√2 entry of Fig. 1a (bottom-right block, diagonal).
	fmt.Println(m.Entry(u, 2, 3, 3))
	// Output:
	// (1/√2)^1·(0·ω³ + 0·ω² + 0·ω + -1)
}
