package core

import (
	"math/rand"
	"testing"

	"repro/internal/alg"
)

// TestCrossEqualMatchesRootsEqual: for random vectors built in two private
// managers, the structural cross-manager comparison must agree with the
// O(1) single-manager root comparison on the same pairs.
func TestCrossEqualMatchesRootsEqual(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		ampsA := randQVals(r, 16)
		ampsB := randQVals(r, 16)
		same := trial%2 == 0
		if same {
			ampsB = ampsA
		}

		// Reference verdict from one shared manager.
		mRef := algManager(NormLeft)
		want := mRef.RootsEqual(mRef.FromVector(ampsA), mRef.FromVector(ampsB))
		wantPhase := mRef.RootsEqualUpToPhase(mRef.FromVector(ampsA), mRef.FromVector(ampsB))

		// The same pair split across two private managers.
		ma, mb := algManager(NormLeft), algManager(NormLeft)
		va, vb := ma.FromVector(ampsA), mb.FromVector(ampsB)
		if got := CrossEqual(ma, va, mb, vb); got != want {
			t.Fatalf("trial %d: CrossEqual %v, RootsEqual %v", trial, got, want)
		}
		if got := CrossEqualUpToPhase(ma, va, mb, vb); got != wantPhase {
			t.Fatalf("trial %d: CrossEqualUpToPhase %v, RootsEqualUpToPhase %v", trial, got, wantPhase)
		}
	}
}

// TestCrossEqualUpToPhase: a global ω-phase must be invisible to the
// up-to-phase comparison and visible to the exact one, across managers.
func TestCrossEqualUpToPhase(t *testing.T) {
	amps := randQVals(rand.New(rand.NewSource(3)), 8)
	phased := make([]alg.Q, len(amps))
	omega := alg.QFromD(alg.DOmegaVal)
	for i, a := range amps {
		phased[i] = a.Mul(omega)
	}
	ma, mb := algManager(NormLeft), algManager(NormLeft)
	va, vb := ma.FromVector(amps), mb.FromVector(phased)
	if ma.IsZero(va) {
		t.Fatal("degenerate test vector")
	}
	if CrossEqual(ma, va, mb, vb) {
		t.Fatal("global phase invisible to exact CrossEqual")
	}
	if !CrossEqualUpToPhase(ma, va, mb, vb) {
		t.Fatal("global phase broke CrossEqualUpToPhase")
	}
}
