package core

// Operations on QMDDs. All of them are memoized in the compute table and all
// of them produce canonical (normalized, hash-consed) results, so the
// complexity is polynomial in the diagram sizes rather than in the
// exponential dimension of the represented objects. Memoization keys are
// integer tuples over node IDs and interned weight IDs — never strings.

// Add returns the element-wise sum of two equally-shaped diagrams
// (two vectors or two matrices over the same number of qubits). With
// intra-op parallelism enabled the children of large nodes are summed
// concurrently (ops_parallel.go); results are identical either way.
func (m *Manager[T]) Add(x, y Edge[T]) Edge[T] {
	return m.addSpawn(x, y, m.spawn0)
}

// addSpawn is Add carrying the fork budget down the recursion.
func (m *Manager[T]) addSpawn(x, y Edge[T], spawn int) Edge[T] {
	if m.IsZero(x) {
		return y
	}
	if m.IsZero(y) {
		return x
	}
	if x.N == nil && y.N == nil {
		return m.Terminal(m.R.Add(x.W, y.W))
	}
	if x.N == nil || y.N == nil {
		panic("core: Add of diagrams with different shapes")
	}
	if x.N.Level != y.N.Level || len(x.N.E) != len(y.N.E) {
		panic("core: Add of diagrams with different levels/arities")
	}
	// Addition is commutative; canonicalize the operand order by
	// (node ID, weight ID) for CT hits.
	xw, yw := m.WID(x.W), m.WID(y.W)
	if y.N.ID < x.N.ID || (y.N.ID == x.N.ID && yw < xw) {
		x, y, xw, yw = y, x, yw, xw
	}
	k := ctKey{op: ctAdd, aID: x.N.ID, aWID: xw, bID: y.N.ID, bWID: yw}
	if r, ok := m.ct.get(k); ok {
		return r
	}
	arity := len(x.N.E)
	var sums [MatrixArity]Edge[T]
	if spawn > 0 && x.N.Level >= minParallelLevel {
		m.forkJoin(spawn, arity, func(i, spawn int) {
			sums[i] = m.addSpawn(m.weightedChild(x, i), m.weightedChild(y, i), spawn)
		})
	} else {
		for i := 0; i < arity; i++ {
			sums[i] = m.addSpawn(m.weightedChild(x, i), m.weightedChild(y, i), spawn)
		}
	}
	r := m.MakeNode(x.N.Level, sums[:arity])
	m.ct.put(k, r)
	return r
}

// Mul multiplies the matrix x with the matrix or vector y (both over the
// same number of qubits): matrix-matrix or matrix-vector multiplication.
func (m *Manager[T]) Mul(x, y Edge[T]) Edge[T] {
	if m.IsZero(x) || m.IsZero(y) {
		return m.ZeroEdge()
	}
	if x.N == nil && y.N == nil {
		return m.Terminal(m.R.Mul(x.W, y.W))
	}
	if x.N == nil || y.N == nil {
		panic("core: Mul of diagrams with different shapes")
	}
	if x.N.Level != y.N.Level {
		panic("core: Mul of diagrams with different levels")
	}
	if len(x.N.E) != MatrixArity {
		panic("core: Mul requires a matrix as the left operand")
	}
	w := m.R.Mul(x.W, y.W)
	sub := m.mulNodes(x.N, y.N)
	return m.Scale(sub, w)
}

// mulNodes multiplies weight-one edges to the two nodes.
func (m *Manager[T]) mulNodes(xn, yn *Node[T]) Edge[T] {
	key := ctKey{op: ctMul, aID: xn.ID, bID: yn.ID}
	if r, ok := m.ct.get(key); ok {
		return r
	}
	level := xn.Level
	var res Edge[T]
	if len(yn.E) == MatrixArity {
		var es [MatrixArity]Edge[T]
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				s := m.ZeroEdge()
				for k := 0; k < 2; k++ {
					s = m.Add(s, m.mulEdges(xn.E[2*i+k], yn.E[2*k+j], level-1))
				}
				es[2*i+j] = s
			}
		}
		res = m.MakeNode(level, es[:])
	} else {
		var es [VectorArity]Edge[T]
		for i := 0; i < 2; i++ {
			s := m.ZeroEdge()
			for k := 0; k < 2; k++ {
				s = m.Add(s, m.mulEdges(xn.E[2*i+k], yn.E[k], level-1))
			}
			es[i] = s
		}
		res = m.MakeNode(level, es[:])
	}
	m.ct.put(key, res)
	return res
}

// mulEdges multiplies two child edges whose targets live at the given level.
func (m *Manager[T]) mulEdges(a, b Edge[T], level int) Edge[T] {
	if m.IsZero(a) || m.IsZero(b) {
		return m.ZeroEdge()
	}
	if level == 0 {
		return m.Terminal(m.R.Mul(a.W, b.W))
	}
	if a.N == nil || b.N == nil {
		panic("core: malformed diagram: nonzero terminal above level 0")
	}
	w := m.R.Mul(a.W, b.W)
	sub := m.mulNodes(a.N, b.N)
	return m.Scale(sub, w)
}

// Kron returns the Kronecker product x ⊗ y: x occupies the upper levels,
// y the lower ones.
func (m *Manager[T]) Kron(x, y Edge[T]) Edge[T] {
	if m.IsZero(x) || m.IsZero(y) {
		return m.ZeroEdge()
	}
	if y.N == nil { // scalar on the right
		return m.Scale(x, y.W)
	}
	if x.N == nil { // scalar on the left
		return m.Scale(y, x.W)
	}
	sub := m.kronNodes(x.N, y.N)
	return m.Scale(sub, m.R.Mul(x.W, y.W))
}

func (m *Manager[T]) kronNodes(xn, yn *Node[T]) Edge[T] {
	k := ctKey{op: ctKron, aID: xn.ID, bID: yn.ID}
	if r, ok := m.ct.get(k); ok {
		return r
	}
	var es [MatrixArity]Edge[T]
	arity := len(xn.E)
	for i, c := range xn.E {
		switch {
		case m.R.IsZero(c.W):
			es[i] = m.ZeroEdge()
		case c.N == nil:
			es[i] = Edge[T]{W: c.W, N: yn}
		default:
			sub := m.kronNodes(c.N, yn)
			es[i] = m.Scale(sub, c.W)
		}
	}
	res := m.MakeNode(xn.Level+yn.Level, es[:arity])
	m.ct.put(k, res)
	return res
}

// Adjoint returns the conjugate transpose of a matrix diagram, or the
// element-wise conjugate of a vector diagram (the bra of a ket).
func (m *Manager[T]) Adjoint(x Edge[T]) Edge[T] {
	if x.N == nil {
		return m.Terminal(m.R.Conj(x.W))
	}
	sub := m.adjointNode(x.N)
	return m.Scale(sub, m.R.Conj(x.W))
}

func (m *Manager[T]) adjointNode(n *Node[T]) Edge[T] {
	k := ctKey{op: ctAdjoint, aID: n.ID}
	if r, ok := m.ct.get(k); ok {
		return r
	}
	var res Edge[T]
	if len(n.E) == MatrixArity {
		var es [MatrixArity]Edge[T]
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				es[2*i+j] = m.Adjoint(n.E[2*j+i])
			}
		}
		res = m.MakeNode(n.Level, es[:])
	} else {
		var es [VectorArity]Edge[T]
		for i := range es {
			es[i] = m.Adjoint(n.E[i])
		}
		res = m.MakeNode(n.Level, es[:])
	}
	m.ct.put(k, res)
	return res
}

// Transpose returns the transpose of a matrix diagram (no conjugation).
func (m *Manager[T]) Transpose(x Edge[T]) Edge[T] {
	if x.N == nil {
		return x
	}
	sub := m.transposeNode(x.N)
	return m.Scale(sub, x.W)
}

func (m *Manager[T]) transposeNode(n *Node[T]) Edge[T] {
	k := ctKey{op: ctTranspose, aID: n.ID}
	if r, ok := m.ct.get(k); ok {
		return r
	}
	var res Edge[T]
	if len(n.E) == MatrixArity {
		var es [MatrixArity]Edge[T]
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				es[2*i+j] = m.Transpose(n.E[2*j+i])
			}
		}
		res = m.MakeNode(n.Level, es[:])
	} else {
		var es [VectorArity]Edge[T]
		copy(es[:], n.E)
		res = m.MakeNode(n.Level, es[:])
	}
	m.ct.put(k, res)
	return res
}

// InnerProduct returns ⟨x|y⟩ = Σᵢ conj(xᵢ)·yᵢ for two vector diagrams.
func (m *Manager[T]) InnerProduct(x, y Edge[T]) T {
	return m.ipEdges(x, y, max(x.Level(), y.Level()))
}

func (m *Manager[T]) ipEdges(a, b Edge[T], level int) T {
	if m.IsZero(a) || m.IsZero(b) {
		return m.R.Zero()
	}
	if level == 0 {
		return m.R.Mul(m.R.Conj(a.W), b.W)
	}
	if a.N == nil || b.N == nil {
		panic("core: malformed diagram in InnerProduct")
	}
	w := m.R.Mul(m.R.Conj(a.W), b.W)
	k := ctKey{op: ctInner, aID: a.N.ID, bID: b.N.ID}
	if r, ok := m.ct.get(k); ok {
		return m.R.Mul(w, r.W)
	}
	s := m.R.Zero()
	for i := range a.N.E {
		s = m.R.Add(s, m.ipEdges(a.N.E[i], b.N.E[i], level-1))
	}
	m.ct.put(k, m.Terminal(s))
	return m.R.Mul(w, s)
}
