package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/alg"
)

// denseFidelity computes |⟨u|v⟩|²/(‖u‖²‖v‖²) from two dense amplitude
// vectors — the reference the diagram-side fidelity accounting must match.
func denseFidelity(u, v []complex128) float64 {
	var ip complex128
	var nu, nv float64
	for i := range u {
		ip += cmplx.Conj(u[i]) * v[i]
		nu += real(u[i])*real(u[i]) + imag(u[i])*imag(u[i])
		nv += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
	}
	if nu == 0 || nv == 0 {
		return 0
	}
	return real(ip)*real(ip)/(nu*nv) + imag(ip)*imag(ip)/(nu*nv)
}

func complexVector[T any](m *Manager[T], v Edge[T], n int) []complex128 {
	vals := m.ToVector(v, n)
	out := make([]complex128, len(vals))
	for i, a := range vals {
		out[i] = m.R.Complex128(a)
	}
	return out
}

func TestApproximateUniformExact(t *testing.T) {
	// Uniform 2-qubit state, floor ½: one contribution-½ edge is zeroed and
	// the exact ring certifies fidelity ½ — not 0.4999…, the rational ½.
	m := algManager(NormLeft)
	h := alg.QInvSqrt2
	q := h.Mul(h)
	v := m.FromVector([]alg.Q{q, q, q, q})
	approx, res, err := m.Approximate(v, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("alg-ring fidelity not flagged exact")
	}
	if res.Fidelity != 0.5 {
		t.Fatalf("Fidelity = %v, want exactly 0.5", res.Fidelity)
	}
	if res.ZeroedEdges == 0 {
		t.Fatal("nothing was zeroed")
	}
	// Kept amplitudes are bit-identical to the originals, removed ones zero.
	kept := 0
	for i := uint64(0); i < 4; i++ {
		a := m.Amplitude(approx, 2, i)
		if a.IsZero() {
			continue
		}
		if !a.Equal(q) {
			t.Fatalf("kept amplitude %d changed: %v", i, a)
		}
		kept++
	}
	if kept != 2 {
		t.Fatalf("kept %d amplitudes, want 2", kept)
	}
}

func TestApproximateMinFidelityOneIsIdentity(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(3))
	v := m.FromVector(randQVals(r, 16))
	for m.IsZero(v) {
		v = m.FromVector(randQVals(r, 16))
	}
	approx, res, err := m.Approximate(v, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RootsEqual(approx, v) {
		t.Fatal("minFidelity=1 changed the diagram")
	}
	if res.Fidelity != 1 || res.ZeroedEdges != 0 {
		t.Fatalf("res = %+v, want fidelity 1 and no zeroed edges", res)
	}
}

func TestApproximateArgumentErrors(t *testing.T) {
	m := algManager(NormLeft)
	v := m.BasisState(2, 1)
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, _, err := m.Approximate(v, 2, bad); err == nil {
			t.Fatalf("minFidelity=%v accepted", bad)
		}
	}
	if _, _, err := m.Approximate(m.ZeroEdge(), 2, 0.5); err != ErrZeroVector {
		t.Fatalf("zero vector: err = %v, want ErrZeroVector", err)
	}
}

// TestApproximateDifferentialAlg: for random exact states and a range of
// fidelity floors, the reported fidelity must equal the dense-computed
// fidelity (alg amplitudes convert losslessly within float precision) and
// every kept amplitude must be the exact original value.
func TestApproximateDifferentialAlg(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(21))
	const n = 4
	for trial := 0; trial < 40; trial++ {
		v := m.FromVector(randQVals(r, 1<<n))
		if m.IsZero(v) {
			continue
		}
		minFid := 0.2 + 0.75*r.Float64()
		approx, res, err := m.Approximate(v, n, minFid)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatal("alg fidelity not exact")
		}
		if res.Fidelity < minFid {
			t.Fatalf("trial %d: fidelity %v < floor %v", trial, res.Fidelity, minFid)
		}
		dense := denseFidelity(complexVector(m, v, n), complexVector(m, approx, n))
		if math.Abs(dense-res.Fidelity) > 1e-12 {
			t.Fatalf("trial %d: reported fidelity %v, dense reference %v", trial, res.Fidelity, dense)
		}
		// Subset property: zeroing edges deletes amplitudes, never alters one.
		orig, got := m.ToVector(v, n), m.ToVector(approx, n)
		for i := range got {
			if !got[i].IsZero() && !got[i].Equal(orig[i]) {
				t.Fatalf("trial %d: amplitude %d altered: %v vs %v", trial, i, got[i], orig[i])
			}
		}
	}
}

// TestApproximateDifferentialFloat: same differential check under the float
// representation; the fidelity is reported as approximate.
func TestApproximateDifferentialFloat(t *testing.T) {
	m := numManager(0)
	r := rand.New(rand.NewSource(22))
	const n = 5
	for trial := 0; trial < 40; trial++ {
		v := randomState(m, n, int64(trial)+100)
		minFid := 0.2 + 0.75*r.Float64()
		approx, res, err := m.Approximate(v, n, minFid)
		if err != nil {
			t.Fatal(err)
		}
		if res.Exact {
			t.Fatal("float-ring fidelity flagged exact")
		}
		if res.Fidelity < minFid {
			t.Fatalf("trial %d: fidelity %v < floor %v", trial, res.Fidelity, minFid)
		}
		dense := denseFidelity(complexVector(m, v, n), complexVector(m, approx, n))
		if math.Abs(dense-res.Fidelity) > 1e-9 {
			t.Fatalf("trial %d: reported fidelity %v, dense reference %v", trial, res.Fidelity, dense)
		}
	}
}

// TestApproximateShrinks: on a state with a dominant branch plus low-mass
// clutter, a modest floor must actually reduce the node count.
func TestApproximateShrinks(t *testing.T) {
	m := numManager(0)
	const n = 8
	amps := make([]complex128, 1<<n)
	amps[0] = 1 // dominant basis state
	r := rand.New(rand.NewSource(5))
	for i := 1; i < len(amps); i++ {
		amps[i] = complex(r.NormFloat64(), r.NormFloat64()) * 1e-4
	}
	v := m.FromVector(amps)
	approx, res, err := m.Approximate(v, n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesAfter >= res.NodesBefore {
		t.Fatalf("no compression: %d → %d nodes", res.NodesBefore, res.NodesAfter)
	}
	if res.Fidelity < 0.99 {
		t.Fatalf("fidelity %v < 0.99", res.Fidelity)
	}
	if got := approx.NodeCount(); got != res.NodesAfter {
		t.Fatalf("NodesAfter %d, diagram has %d", res.NodesAfter, got)
	}
}

// TestApproximateDeterminismAcrossWorkers: the same build sequence at
// different intra-op worker counts allocates node IDs in different orders;
// the approximation (ranked with DFS-order tie-breaks, never IDs) must still
// produce the identical diagram and the identical report.
func TestApproximateDeterminismAcrossWorkers(t *testing.T) {
	const n = 12
	ref := algManager(NormLeft)
	refState := buildWalk(ref, 99)
	refApprox, refRes, err := ref.Approximate(refState, n, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		m := algManager(NormLeft)
		m.SetIntraWorkers(workers)
		st := buildWalk(m, 99)
		approx, res, err := m.Approximate(st, n, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if res != refRes {
			t.Fatalf("workers=%d: report %+v differs from sequential %+v", workers, res, refRes)
		}
		if !CrossEqual(ref, refApprox, m, approx) {
			t.Fatalf("workers=%d: approximate diagram differs from sequential run", workers)
		}
	}
}

// FuzzApproximate: random diagrams × fidelity budgets must never report a
// fidelity below the floor, disagree with the dense reference, or return a
// structurally invalid diagram.
func FuzzApproximate(f *testing.F) {
	f.Add(int64(1), 0.5, uint8(3))
	f.Add(int64(7), 0.99, uint8(5))
	f.Add(int64(42), 0.01, uint8(2))
	f.Add(int64(9), 1.0, uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, minFid float64, nRaw uint8) {
		if !(minFid > 0) || minFid > 1 {
			t.Skip()
		}
		n := int(nRaw%6) + 1
		m := numManager(0)
		v := randomState(m, n, seed)
		if m.IsZero(v) {
			t.Skip()
		}
		approx, res, err := m.Approximate(v, n, minFid)
		if err != nil {
			t.Fatalf("Approximate(seed=%d, minFid=%v, n=%d): %v", seed, minFid, n, err)
		}
		if res.Fidelity < minFid {
			t.Fatalf("fidelity %v < floor %v", res.Fidelity, minFid)
		}
		if res.Fidelity > 1 {
			t.Fatalf("fidelity %v > 1", res.Fidelity)
		}
		// The result must be a valid, sampleable vector diagram (the restore
		// loop forbids collapsing to zero).
		if _, err := m.NewSampler(approx, n); err != nil {
			t.Fatalf("approximate diagram is not sampleable: %v", err)
		}
		dense := denseFidelity(complexVector(m, v, n), complexVector(m, approx, n))
		if math.Abs(dense-res.Fidelity) > 1e-9 {
			t.Fatalf("reported fidelity %v, dense reference %v", res.Fidelity, dense)
		}
	})
}
