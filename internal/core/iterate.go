package core

// Sparse traversal of vector diagrams: visit only basis states with nonzero
// amplitude, in index order, without materializing the exponential vector.
// On a compact diagram this touches O(paths) entries rather than O(2^n) —
// e.g. a Grover state yields all 2^n entries (it is dense), while a
// basis-state-like or stabilizer diagram yields only its support.

// ForEachAmplitude calls f for every nonzero amplitude of the n-qubit
// vector diagram, in ascending basis-state order. Returning false stops the
// iteration early.
func (m *Manager[T]) ForEachAmplitude(v Edge[T], n int, f func(idx uint64, amp T) bool) {
	if m.IsZero(v) {
		return
	}
	var walk func(e Edge[T], level int, idx uint64, w T) bool
	walk = func(e Edge[T], level int, idx uint64, w T) bool {
		if m.IsZero(e) {
			return true
		}
		cw := m.R.Mul(w, e.W)
		if level == 0 {
			return f(idx, cw)
		}
		for i, c := range e.N.E {
			if !walk(c, level-1, idx|uint64(i)<<(level-1), cw) {
				return false
			}
		}
		return true
	}
	walk(v, n, 0, m.R.One())
}

// SupportSize returns the number of basis states with nonzero amplitude.
// (Nonzero in the representation: a numerically tiny-but-nonzero amplitude
// counts; an exactly cancelled one does not.)
func (m *Manager[T]) SupportSize(v Edge[T], n int) uint64 {
	// Count paths via per-node memoization rather than enumeration, so dense
	// states over many qubits stay cheap.
	if m.IsZero(v) {
		return 0
	}
	memo := make(map[*Node[T]]uint64)
	var count func(e Edge[T], level int) uint64
	count = func(e Edge[T], level int) uint64 {
		if m.IsZero(e) {
			return 0
		}
		if level == 0 {
			return 1
		}
		if c, ok := memo[e.N]; ok {
			return c
		}
		var total uint64
		for _, c := range e.N.E {
			total += count(c, level-1)
		}
		memo[e.N] = total
		return total
	}
	return count(v, n)
}

// TopOutcomes returns the k most probable basis states with their
// probabilities, sorted descending, visiting only the diagram's support.
func (m *Manager[T]) TopOutcomes(v Edge[T], n, k int) ([]uint64, []float64) {
	if k <= 0 {
		return nil, nil
	}
	// A simple bounded insertion sort; k is small in practice.
	idxs := make([]uint64, 0, k)
	probs := make([]float64, 0, k)
	m.ForEachAmplitude(v, n, func(idx uint64, amp T) bool {
		p := m.R.Abs2(amp)
		pos := len(probs)
		for pos > 0 && probs[pos-1] < p {
			pos--
		}
		if pos >= k {
			return true
		}
		idxs = append(idxs, 0)
		probs = append(probs, 0)
		copy(idxs[pos+1:], idxs[pos:])
		copy(probs[pos+1:], probs[pos:])
		idxs[pos], probs[pos] = idx, p
		if len(probs) > k {
			idxs, probs = idxs[:k], probs[:k]
		}
		return true
	})
	return idxs, probs
}
