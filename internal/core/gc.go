package core

// Garbage collection. Long simulations (thousands of matrix-vector
// multiplications) leave the unique table full of nodes only reachable from
// stale intermediate states. Prune performs a mark-and-sweep against a set
// of live roots: unreachable nodes leave the unique table (Go's collector
// then reclaims them) and the compute table is cleared, since its entries
// may reference swept nodes.
//
// Hash-consing identity is preserved for the surviving nodes — diagrams
// reachable from the given roots keep their pointers, so O(1) equality
// comparisons among them remain valid across a Prune.

// Prune drops every node not reachable from the given roots. It returns the
// number of nodes removed.
func (m *Manager[T]) Prune(roots ...Edge[T]) int {
	live := make(map[*Node[T]]struct{})
	var mark func(n *Node[T])
	mark = func(n *Node[T]) {
		if n == nil {
			return
		}
		if _, ok := live[n]; ok {
			return
		}
		live[n] = struct{}{}
		for _, c := range n.E {
			mark(c.N)
		}
	}
	for _, r := range roots {
		mark(r.N)
	}
	removed := 0
	for key, n := range m.unique {
		if _, ok := live[n]; !ok {
			delete(m.unique, key)
			removed++
		}
	}
	// Compute-table entries may point at swept nodes; drop them all.
	m.ct.clear()
	m.stats.Prunes++
	m.stats.PrunedNodes += uint64(removed)
	return removed
}

// AutoPruner returns a per-gate hook suitable for Simulator.Run that prunes
// whenever the unique table grows beyond highWater nodes, keeping the
// current state (provided by live) as the root.
func AutoPruner[T any](m *Manager[T], highWater int, live func() Edge[T]) func() {
	if highWater < 1 {
		highWater = 1
	}
	return func() {
		if len(m.unique) > highWater {
			m.Prune(live())
		}
	}
}
