package core

// Garbage collection. Long simulations (thousands of matrix-vector
// multiplications) leave the unique table full of nodes only reachable from
// stale intermediate states — and the weight intern table full of WIDs only
// those nodes (and transient compute-table operands) referenced. Prune
// performs a mark-and-sweep against a set of live roots: the intern table is
// rebuilt from the weights of the surviving nodes (releasing dead WIDs),
// every survivor gets fresh WIDs and a fresh hash, and both open-addressed
// tables are rebuilt right-sized. The compute table is cleared, since its
// entries may reference swept nodes and stale WIDs.
//
// Hash-consing identity is preserved for the surviving nodes — diagrams
// reachable from the given roots keep their pointers and IDs, so O(1)
// equality comparisons among them remain valid across a Prune.

// Prune drops every node not reachable from the given roots. It returns the
// number of nodes removed. Single-threaded: never call while an intra-op
// worker group is running (the sim/bench layers only prune between gates).
func (m *Manager[T]) Prune(roots ...Edge[T]) int {
	// Mark with an explicit worklist: the recursion this replaces overflowed
	// the goroutine stack on deep (≥1e5-level) vector diagrams.
	live := make(map[*Node[T]]struct{})
	stack := make([]*Node[T], 0, 64)
	push := func(n *Node[T]) {
		if n == nil {
			return
		}
		if _, ok := live[n]; ok {
			return
		}
		live[n] = struct{}{}
		stack = append(stack, n)
	}
	for _, r := range roots {
		push(r.N)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.E {
			push(c.N)
		}
	}
	removed := m.ut.count() - len(live)

	// Suspend the budget while rebuilding: the survivor re-interning below
	// only ever shrinks the tables, and a governor panic mid-rebuild would
	// leave the manager half-rebuilt.
	defer func(b Budget) { m.budget = b }(m.budget)
	m.budget = Budget{}

	// Rebuild the intern table from the survivors: dead WIDs are released and
	// WID 0 stays pinned to zero. Every live node is re-interned (its weights
	// collapse onto the new canonical representatives), rehashed, and
	// reinserted into right-sized unique-table shards.
	survivors := make([]*Node[T], 0, len(live))
	m.ut.forEach(func(n *Node[T]) {
		if _, ok := live[n]; ok {
			survivors = append(survivors, n)
		}
	})
	m.wt.init(shardSizeFor(len(live)*MatrixArity + 1))
	m.totalWeights.Store(1) // the reserved zero
	m.ut.init(shardSizeFor(len(live)))
	for _, n := range survivors {
		for i := range n.E {
			wid, canon := m.internWeight(n.E[i].W)
			n.wids[i] = wid
			n.E[i].W = canon
		}
		n.hash = nodeHash(n.Level, n.E, &n.wids)
		m.ut.insert(n)
	}
	m.totalNodes.Store(int64(len(survivors)))
	// Compute-table entries may reference swept nodes or stale WIDs; drop
	// them all.
	m.ct.clear()
	// Invalidate outstanding Samplers: their node pointers and mass memos
	// may reference swept nodes (sampler.go returns ErrStaleSampler).
	m.pruneGen++
	m.stats.Prunes++
	m.stats.PrunedNodes += uint64(removed)
	return removed
}

// shardSizeFor returns a per-shard open-addressing slot count that keeps n
// entries spread over the shards at a load factor ≤ ½ (and at least the
// tables' minimum shard size).
func shardSizeFor(n int) int {
	size := ceilPow2(2 * (n/tableShardCount + 1))
	if size < 1<<4 {
		size = 1 << 4
	}
	return size
}

// AutoPruner returns a per-gate hook suitable for Simulator.Run that prunes
// whenever the unique table grows beyond highWater nodes, keeping the
// current state (provided by live) as the root.
func AutoPruner[T any](m *Manager[T], highWater int, live func() Edge[T]) func() {
	if highWater < 1 {
		highWater = 1
	}
	return func() {
		if int(m.totalNodes.Load()) > highWater {
			m.Prune(live())
		}
	}
}
