package core

// Identity-skipping local gate application, after "Stripping Quantum
// Decision Diagrams of their Identity" (arXiv 2406.11959). A single-target
// gate with k controls acts non-trivially on at most k+1 levels of an
// n-level diagram; the classic pipeline (gates.BuildDD + Mul) nevertheless
// materializes an n-level identity-padded matrix diagram and recurses
// through every one of its levels. ApplyLocal consumes the gate in its local
// description instead — the 2×2 base block, the target level, the control
// levels — and walks the state (or matrix) diagram directly:
//
//   - above the topmost affected level the recursion passes through,
//     rebuilding the node with gate-applied children;
//   - at an above-target control level only the active branch is descended,
//     the inactive branch is shared unchanged;
//   - at the target level the 2×2 block combines the two halves
//     (new_i = Σ_k U[i][k] · e_k), or — when controls sit *below* the
//     target — the split form new_i = P̄(e_i) + Σ_k U[i][k] · P(e_k),
//     with P the below-control projector (keep the branches where every
//     below control fires) and P̄ its complement. The two parts have
//     disjoint support, so their sum costs no ring arithmetic, and the
//     untouched subspace is shared, never rebuilt;
//   - below the lowest affected level sub-diagrams are returned as-is.
//
// No identity structure is ever constructed, and every level the gate does
// not touch costs nothing. Results are canonical (MakeNode normalizes and
// hash-conses), so ApplyLocal agrees with the BuildDD+Mul oracle exactly on
// exact rings — the differential tests in apply_test.go assert it.

// LocalControl is a control line of a local gate in level coordinates
// (level l = n − qubit; see gates.Local for the qubit-indexed entry point).
// The gate fires where the control level's bit is 1 (Neg = false) or 0
// (Neg = true).
type LocalControl struct {
	Level int
	Neg   bool
}

// Control classification per level, precomputed by PrepareLocal.
const (
	ctrlNone uint8 = iota
	ctrlPos
	ctrlNeg
)

// LocalGate is a gate prepared for ApplyLocal: the canonical base block, the
// affected levels, and a per-manager registry ID under which applications
// are memoized in the compute table. A LocalGate stores ring values (never
// weight IDs), so it stays valid across Prune; it is bound to the manager
// that prepared it.
type LocalGate[T any] struct {
	id uint64 // compute-table key (ctApply/ctProject*, node ID, gate ID)

	// U is the base block, row-major — divided by scale when hasScale is
	// set, so its leading nonzero entry is an exact 1. Mirroring the edge
	// weight factoring of canonical gate diagrams keeps the target-level
	// combine adding unit-weighted children (an H combine is e₀ ± e₁, not
	// e₀/√2 ± e₁/√2), which the normalization would otherwise undo with a
	// ring division per node.
	U        [2][2]T
	scale    T    // factored-out leading coefficient of the base block
	hasScale bool // scale ≠ 1; applied once at each target-level result

	target   int     // level of the target qubit
	topLevel int     // highest affected level: max(target, control levels)
	belowMin int     // lowest below-target control level (target if none)
	hasBelow bool    // any control strictly below the target
	ctrl     []uint8 // level → ctrlNone/ctrlPos/ctrlNeg, len topLevel+1
	identity bool    // base block is exactly the ring identity
}

// Target returns the gate's target level.
func (g *LocalGate[T]) Target() int { return g.target }

// TopLevel returns the highest level the gate affects; diagrams it is
// applied to must reach at least this level.
func (g *LocalGate[T]) TopLevel() int { return g.topLevel }

// IsIdentity reports whether the gate is the identity operation — a base
// block equal (in the ring's sense) to the 2×2 identity. Controls do not
// matter: a controlled identity is still the identity. Callers may skip
// applying such gates entirely; sim.Simulator does.
func (g *LocalGate[T]) IsIdentity() bool { return g.identity }

// PrepareLocal validates and preprocesses a local gate description for
// ApplyLocal: controls are classified per level and the gate receives a
// fresh registry ID for memoization. Prepare once, apply many times.
func (m *Manager[T]) PrepareLocal(base [2][2]T, target int, ctrls []LocalControl) *LocalGate[T] {
	if target < 1 {
		panic("core: PrepareLocal: target level < 1")
	}
	top := target
	for _, c := range ctrls {
		if c.Level < 1 {
			panic("core: PrepareLocal: control level < 1")
		}
		if c.Level == target {
			panic("core: PrepareLocal: control equals target")
		}
		if c.Level > top {
			top = c.Level
		}
	}
	g := &LocalGate[T]{
		id:       m.gateSeq.Add(1),
		U:        base,
		target:   target,
		topLevel: top,
		belowMin: target,
		ctrl:     make([]uint8, top+1),
	}
	for _, c := range ctrls {
		if g.ctrl[c.Level] != ctrlNone {
			panic("core: PrepareLocal: duplicate control")
		}
		if c.Neg {
			g.ctrl[c.Level] = ctrlNeg
		} else {
			g.ctrl[c.Level] = ctrlPos
		}
		if c.Level < target {
			g.hasBelow = true
			if c.Level < g.belowMin {
				g.belowMin = c.Level
			}
		}
	}
	g.identity = m.R.IsOne(base[0][0]) && m.R.IsZero(base[0][1]) &&
		m.R.IsZero(base[1][0]) && m.R.IsOne(base[1][1])
	// Factor the leading nonzero coefficient out of the block (U = η·U′,
	// pivot of U′ exactly 1). Skipped when controls sit below the target:
	// the split form mixes U-scaled and unscaled (P̄) terms, which a common
	// factor cannot cross.
	g.scale = m.R.One()
	if !g.hasBelow && !g.identity {
		eta, found := m.R.Zero(), false
		for i := 0; i < 2; i++ {
			for j := 0; j < 2 && !found; j++ {
				if !m.R.IsZero(base[i][j]) {
					eta, found = base[i][j], true
				}
			}
		}
		if found && !m.R.IsOne(eta) {
			g.scale, g.hasScale = eta, true
			for i := range g.U {
				for j := range g.U[i] {
					if !m.R.IsZero(g.U[i][j]) {
						g.U[i][j] = m.R.Div(g.U[i][j], eta)
					}
				}
			}
		}
	}
	return g
}

// ApplyLocal applies a prepared local gate to a state-vector or matrix
// diagram (for matrices the gate multiplies from the left, acting on the row
// space — exactly Mul(BuildDD(...), e)). Identity gates return e unchanged.
func (m *Manager[T]) ApplyLocal(g *LocalGate[T], e Edge[T]) Edge[T] {
	if g.identity || m.IsZero(e) {
		return e
	}
	if e.Level() < g.topLevel {
		panic("core: ApplyLocal: gate extends above the diagram's top level")
	}
	return m.applyEdge(g, e, m.spawn0)
}

// applyEdge applies g below an edge, exploiting linearity:
// apply(w·sub) = w·apply(sub), so memoization is per node. spawn is the
// intra-op fork budget (ops_parallel.go).
func (m *Manager[T]) applyEdge(g *LocalGate[T], e Edge[T], spawn int) Edge[T] {
	if m.IsZero(e) {
		return m.ZeroEdge()
	}
	if e.N == nil {
		panic("core: malformed diagram: nonzero terminal above the target level")
	}
	return m.Scale(m.applyNode(g, e.N, spawn), e.W)
}

// applyNode applies g to the weight-one edge of n (n.Level ≥ g.target).
func (m *Manager[T]) applyNode(g *LocalGate[T], n *Node[T], spawn int) Edge[T] {
	k := ctKey{op: ctApply, aID: n.ID, bID: g.id}
	if r, ok := m.ct.get(k); ok {
		return r
	}
	level := n.Level
	arity := len(n.E)
	cols := arity / 2 // 1 for vector nodes, 2 for matrix nodes
	fork := spawn > 0 && level >= minParallelLevel
	var es [MatrixArity]Edge[T]
	if level > g.target {
		// Pass-through or above-target control. The first index of a child
		// (row block, for matrices) is this level's bit on the gate's input
		// side, so controls select which row block the gate descends into;
		// the inactive block is shared untouched.
		var c uint8 = ctrlNone
		if level < len(g.ctrl) {
			c = g.ctrl[level]
		}
		// Collect the children the gate descends into; the rest are shared.
		var idx [MatrixArity]int
		cnt := 0
		for j := 0; j < cols; j++ {
			switch c {
			case ctrlNone:
				idx[cnt], idx[cnt+1] = j, cols+j
				cnt += 2
			case ctrlPos:
				es[j] = n.E[j]
				idx[cnt] = cols + j
				cnt++
			case ctrlNeg:
				es[cols+j] = n.E[cols+j]
				idx[cnt] = j
				cnt++
			}
		}
		if fork && cnt > 1 {
			m.forkJoin(spawn, cnt, func(t, spawn int) {
				es[idx[t]] = m.applyEdge(g, n.E[idx[t]], spawn)
			})
		} else {
			for t := 0; t < cnt; t++ {
				es[idx[t]] = m.applyEdge(g, n.E[idx[t]], spawn)
			}
		}
	} else {
		// Target level: combine the two halves through the 2×2 block.
		if !g.hasBelow {
			// new_i = Σ_k U[i][k] · e_k
			combine := func(t, spawn int) {
				i, j := t/cols, t%cols
				a := m.Scale(n.E[0*cols+j], g.U[i][0])
				b := m.Scale(n.E[1*cols+j], g.U[i][1])
				es[t] = m.addSpawn(a, b, spawn)
			}
			if fork {
				m.forkJoin(spawn, arity, combine)
			} else {
				for t := 0; t < arity; t++ {
					combine(t, spawn)
				}
			}
		} else {
			// Below-target controls: split form
			// new_i = P̄(e_i) + Σ_k U[i][k] · P(e_k), with P the
			// below-control projector and P̄ its complement. P̄(e_i) and the
			// projected sum have disjoint support, so the outer addition
			// never does ring arithmetic — crucially avoiding the
			// cancellation work the delta form e_i + Σ (U−I)[i][k]·P(e_k)
			// would spend proving e_i − P(e_i) = P̄(e_i) term by term.
			combine := func(t, spawn int) {
				i, j := t/cols, t%cols
				a := m.Scale(m.projectEdge(g, n.E[0*cols+j]), g.U[i][0])
				b := m.Scale(m.projectEdge(g, n.E[1*cols+j]), g.U[i][1])
				rest := m.projectCompEdge(g, n.E[i*cols+j])
				es[t] = m.addSpawn(m.addSpawn(a, b, spawn), rest, spawn)
			}
			if fork {
				m.forkJoin(spawn, arity, combine)
			} else {
				for t := 0; t < arity; t++ {
					combine(t, spawn)
				}
			}
		}
	}
	res := m.MakeNode(level, es[:arity])
	// Every root-to-terminal path crosses the target level exactly once, so
	// re-applying the factored-out block coefficient here restores U = η·U′.
	if g.hasScale && level == g.target {
		res = m.Scale(res, g.scale)
	}
	m.ct.put(k, res)
	return res
}

// projectEdge applies the below-control projector of g: branches where every
// below-target control is active pass unchanged, all others are zeroed. For
// matrix diagrams the projector acts on the row space. Linear, memoized per
// node; below the lowest control level it is the identity, so untouched
// sub-diagrams are shared.
func (m *Manager[T]) projectEdge(g *LocalGate[T], e Edge[T]) Edge[T] {
	if m.IsZero(e) {
		return m.ZeroEdge()
	}
	if e.N == nil || e.N.Level < g.belowMin {
		return e
	}
	return m.Scale(m.projectNode(g, e.N), e.W)
}

func (m *Manager[T]) projectNode(g *LocalGate[T], n *Node[T]) Edge[T] {
	k := ctKey{op: ctProject, aID: n.ID, bID: g.id}
	if r, ok := m.ct.get(k); ok {
		return r
	}
	arity := len(n.E)
	cols := arity / 2
	var es [MatrixArity]Edge[T]
	for j := 0; j < cols; j++ {
		switch g.ctrl[n.Level] {
		case ctrlNone:
			es[j] = m.projectEdge(g, n.E[j])
			es[cols+j] = m.projectEdge(g, n.E[cols+j])
		case ctrlPos:
			es[j] = m.ZeroEdge()
			es[cols+j] = m.projectEdge(g, n.E[cols+j])
		case ctrlNeg:
			es[j] = m.projectEdge(g, n.E[j])
			es[cols+j] = m.ZeroEdge()
		}
	}
	res := m.MakeNode(n.Level, es[:arity])
	m.ct.put(k, res)
	return res
}

// projectCompEdge applies the complement of projectEdge: branches where at
// least one below-target control is inactive pass unchanged, the
// all-controls-active part is zeroed — so P(e) + P̄(e) = e, and the two
// images never share support. Below the lowest control level P is the
// identity, hence P̄ is zero.
func (m *Manager[T]) projectCompEdge(g *LocalGate[T], e Edge[T]) Edge[T] {
	if m.IsZero(e) || e.N == nil || e.N.Level < g.belowMin {
		return m.ZeroEdge()
	}
	return m.Scale(m.projectCompNode(g, e.N), e.W)
}

func (m *Manager[T]) projectCompNode(g *LocalGate[T], n *Node[T]) Edge[T] {
	k := ctKey{op: ctProjectC, aID: n.ID, bID: g.id}
	if r, ok := m.ct.get(k); ok {
		return r
	}
	arity := len(n.E)
	cols := arity / 2
	var es [MatrixArity]Edge[T]
	for j := 0; j < cols; j++ {
		switch g.ctrl[n.Level] {
		case ctrlNone:
			es[j] = m.projectCompEdge(g, n.E[j])
			es[cols+j] = m.projectCompEdge(g, n.E[cols+j])
		case ctrlPos:
			// Control bit 0: no deeper control can rescue this branch — the
			// whole sub-diagram is in the complement, shared untouched.
			es[j] = n.E[j]
			es[cols+j] = m.projectCompEdge(g, n.E[cols+j])
		case ctrlNeg:
			es[j] = m.projectCompEdge(g, n.E[j])
			es[cols+j] = n.E[cols+j]
		}
	}
	res := m.MakeNode(n.Level, es[:arity])
	m.ct.put(k, res)
	return res
}
