package core

// Cross-manager comparison. RootsEqual is O(1) but requires both diagrams
// to live in one manager's unique table. The parallel harness deliberately
// gives every worker a private manager (share-nothing tables, as the
// per-thread-table layout of arXiv:1911.12691 recommends), so comparing
// results across workers needs a structural check instead: two canonical
// diagrams built under the same ring and normalization scheme represent the
// same object iff they are isomorphic with pairwise Ring.Equal weights.
// The walk memoizes on node-ID pairs, so it is linear in the smaller
// diagram — still far from expanding 2^n amplitudes.

// CrossEqual reports whether two diagrams from two different managers over
// the same coefficient ring and normalization scheme represent the same
// vector/matrix. For managers with a comparison tolerance (the numerical
// ring) this is equality as the ring sees it, like RootsEqual.
func CrossEqual[T any](ma *Manager[T], a Edge[T], mb *Manager[T], b Edge[T]) bool {
	if !ma.R.Equal(a.W, b.W) {
		return false
	}
	return crossIso(ma, a.N, b.N, make(map[[2]uint64]bool))
}

// CrossEqualUpToPhase is CrossEqual modulo a global phase: isomorphic nodes
// and root weights of equal squared magnitude (cf. RootsEqualUpToPhase).
func CrossEqualUpToPhase[T any](ma *Manager[T], a Edge[T], mb *Manager[T], b Edge[T]) bool {
	na := ma.R.Mul(ma.R.Conj(a.W), a.W)
	nb := ma.R.Mul(ma.R.Conj(b.W), b.W)
	if !ma.R.Equal(na, nb) {
		return false
	}
	return crossIso(ma, a.N, b.N, make(map[[2]uint64]bool))
}

// crossIso decides isomorphism of two hash-consed nodes from different
// managers: same level, same arity, pairwise equal edge weights and
// isomorphic children. Visited pairs are memoized — canonicity makes a
// revisited pair's verdict stable, and recording it before descending keeps
// the walk linear (a pair is expanded at most once; diagrams are acyclic so
// the in-progress entry is only ever read as the correct "so far equal").
func crossIso[T any](m *Manager[T], a, b *Node[T], seen map[[2]uint64]bool) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	key := [2]uint64{a.ID, b.ID}
	if v, ok := seen[key]; ok {
		return v
	}
	if a.Level != b.Level || len(a.E) != len(b.E) {
		return false
	}
	seen[key] = true
	for i := range a.E {
		if !m.R.Equal(a.E[i].W, b.E[i].W) || !crossIso(m, a.E[i].N, b.E[i].N, seen) {
			seen[key] = false
			return false
		}
	}
	return true
}
