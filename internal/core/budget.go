package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
	"unsafe"
)

// The run governor. The paper's two failure modes are resource failures:
// ε = 0 blows the diagram up exponentially (Figs. 2–4) and the algebraic
// representation trades compactness for bit-width-driven run time on GSE
// (Fig. 5). A manager that can only OOM or hang when it hits either wall is
// unusable behind a service front-end, so every node creation is metered
// against an optional Budget and long recursions poll an optional
// context.Context. A violation unwinds the op recursion with a structured
// *BudgetError (carrying the peak statistics observed so far) which the
// exported entry points of sim/bench convert into an ordinary error via
// RecoverTo.

// Budget bounds one manager's resource consumption. The zero value imposes
// no limits. All limits are checked inside MakeNode — i.e. inside every op
// recursion — so a single giant Mul is interrupted, not just a gate stream.
type Budget struct {
	// MaxNodes caps the live nodes in the unique table (garbage included;
	// pair with auto-pruning to meter reachable nodes only).
	MaxNodes int
	// MaxWeights caps the distinct interned weights — the table the
	// algebraic representation grows without bound as coefficient bit
	// widths climb.
	MaxWeights int
	// MaxBytes caps the *approximate* structural bytes of nodes plus
	// interned weights. The estimate counts struct and slice headers, not
	// big.Int limbs or allocator overhead, so treat it as a floor on real
	// memory use (see DESIGN.md §5.2).
	MaxBytes int64
	// Deadline aborts work after an absolute wall-clock instant. Checked
	// every few hundred node creations to keep the hot path clock-free.
	Deadline time.Time
}

// IsZero reports whether the budget imposes no limit at all.
func (b Budget) IsZero() bool {
	return b.MaxNodes <= 0 && b.MaxWeights <= 0 && b.MaxBytes <= 0 && b.Deadline.IsZero()
}

// PeakStats records the high-water marks a manager reached, the numbers a
// refused run reports back. Peaks are monotone over the manager's lifetime
// (a Prune lowers the live counts but not the recorded peaks); under
// garbage collection the live counts include unreachable-but-unswept nodes,
// so peaks measure table pressure, not minimal diagram size.
type PeakStats struct {
	Nodes       int           `json:"nodes"`        // peak unique-table occupancy
	Weights     int           `json:"weights"`      // peak interned-weight count
	ApproxBytes int64         `json:"approx_bytes"` // structural-byte estimate at the node/weight peaks
	Elapsed     time.Duration `json:"elapsed_ns"`   // wall-clock since SetBudget (or manager creation)
}

func (p PeakStats) String() string {
	return fmt.Sprintf("peak %d nodes, %d weights, ~%d bytes, %v elapsed",
		p.Nodes, p.Weights, p.ApproxBytes, p.Elapsed.Round(time.Millisecond))
}

// ErrBudgetExceeded is the sentinel matched by errors.Is for every budget
// violation, whichever limit tripped.
var ErrBudgetExceeded = errors.New("core: budget exceeded")

// BudgetError reports which Budget limit a run tripped and the peak
// statistics at that moment. It matches ErrBudgetExceeded under errors.Is.
type BudgetError struct {
	Limit string // "nodes", "weights", "bytes" or "deadline"
	Peak  PeakStats
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: budget exceeded (%s limit): %s", e.Limit, e.Peak)
}

// Is reports whether target is ErrBudgetExceeded.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// PanicError wraps a panic recovered at an exported API boundary — a
// malformed circuit, a non-invertible weight, a shape mismatch. The original
// panic value and the stack at recovery time are preserved for diagnosis.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// RecoverTo converts an in-flight panic into *err; use it as
//
//	defer core.RecoverTo(&err)
//
// at exported entry points. Structured errors thrown by the governor
// (*BudgetError, context errors) pass through unchanged; anything else —
// including runtime errors from malformed inputs — is wrapped in a
// *PanicError so no panic escapes the API. Goexit (from t.Fatal etc.) is
// not intercepted.
func RecoverTo(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, ok := r.(error); ok {
		var be *BudgetError
		if errors.As(e, &be) || errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			*err = e
			return
		}
	}
	*err = &PanicError{Value: r, Stack: debug.Stack()}
}

// budgetCheckStride throttles the clock reads and context polls in
// checkBudgetSlow: count-based limits are checked on every node/weight
// insertion, time and cancellation every stride insertions.
const budgetCheckStride = 256

// SetBudget installs (or, with the zero Budget, clears) the manager's
// resource budget and restarts the peak-statistics clock. Limits take
// effect on the next node or weight creation.
func (m *Manager[T]) SetBudget(b Budget) {
	m.budget = b
	m.budgetStart = time.Now()
	m.budgetTick.Store(0)
}

// Budget returns the currently installed budget.
func (m *Manager[T]) Budget() Budget { return m.budget }

// SetContext registers a context polled cooperatively inside MakeNode (every
// few hundred node creations), so cancelling it interrupts even a single
// long-running operation. Pass nil to deregister. The cancellation surfaces
// as a panic carrying ctx.Err(), converted to an error by RecoverTo at the
// exported entry points.
func (m *Manager[T]) SetContext(ctx context.Context) { m.ctx = ctx }

// Peak returns the high-water marks observed so far.
func (m *Manager[T]) Peak() PeakStats {
	return PeakStats{
		Nodes:       int(m.peakNodes.Load()),
		Weights:     int(m.peakWeights.Load()),
		ApproxBytes: m.approxBytes(),
		Elapsed:     time.Since(m.budgetStart),
	}
}

// peakMax raises an atomic high-water mark to at least v.
func peakMax(peak *atomic.Int64, v int64) {
	for {
		cur := peak.Load()
		if v <= cur || peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// approxBytes estimates the structural bytes held by the peak node and
// weight populations: struct sizes, edge slices and one table slot each.
// Heap-indirect weight internals (big.Int limbs) are not counted.
func (m *Manager[T]) approxBytes() int64 {
	var n Node[T]
	var e Edge[T]
	nodeBytes := int64(unsafe.Sizeof(n)) + MatrixArity*int64(unsafe.Sizeof(e)) + 8
	weightBytes := int64(unsafe.Sizeof(e.W)) + 8 + 4 // weight + cached hash + slot
	return m.peakNodes.Load()*nodeBytes + m.peakWeights.Load()*weightBytes
}

// noteNode records a new unique-table node and enforces the budget against
// the atomic live-node counter (coherent across concurrent shard
// insertions). Called only on the miss path of internNode, so the hot hit
// path stays check-free.
func (m *Manager[T]) noteNode() {
	n := m.totalNodes.Add(1)
	peakMax(&m.peakNodes, n)
	if b := &m.budget; b.MaxNodes > 0 && n > int64(b.MaxNodes) {
		panic(&BudgetError{Limit: "nodes", Peak: m.Peak()})
	}
	m.checkBudgetSlow()
}

// noteWeight records a new interned weight and enforces the budget.
func (m *Manager[T]) noteWeight() {
	n := m.totalWeights.Add(1)
	peakMax(&m.peakWeights, n)
	if b := &m.budget; b.MaxWeights > 0 && n > int64(b.MaxWeights) {
		panic(&BudgetError{Limit: "weights", Peak: m.Peak()})
	}
}

// checkBudgetSlow performs the throttled checks: the byte estimate, the
// wall-clock deadline and the registered context.
func (m *Manager[T]) checkBudgetSlow() {
	if m.budgetTick.Add(1)%budgetCheckStride != 0 {
		return
	}
	if b := &m.budget; b.MaxBytes > 0 && m.approxBytes() > b.MaxBytes {
		panic(&BudgetError{Limit: "bytes", Peak: m.Peak()})
	}
	if b := &m.budget; !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
		panic(&BudgetError{Limit: "deadline", Peak: m.Peak()})
	}
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			panic(err)
		}
	}
}
