package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/coeff"
)

// NormScheme selects how node weights are normalized when a node is created.
// Normalization is what makes QMDDs canonical; the available schemes are the
// ones discussed in the paper.
type NormScheme int

const (
	// NormLeft divides all outgoing weights by the leftmost nonzero weight
	// (the classic QMDD rule; for the algebraic representation this is
	// Algorithm 2, "normalization with Q[ω] inverses").
	NormLeft NormScheme = iota
	// NormMax divides by the (leftmost) weight of largest magnitude, keeping
	// every weight at magnitude ≤ 1 for numerical stability [29].
	NormMax
	// NormGCD factors out a unit-adjusted greatest common divisor of the
	// weights (Algorithm 3, "normalization with GCDs from D[ω]"). Requires a
	// coefficient ring implementing coeff.GCDRing; falls back to NormLeft
	// when the weights leave the GCD subring.
	NormGCD
)

// String returns the scheme name used in CLI flags and reports.
func (s NormScheme) String() string {
	switch s {
	case NormLeft:
		return "left"
	case NormMax:
		return "max"
	case NormGCD:
		return "gcd"
	}
	return fmt.Sprintf("NormScheme(%d)", int(s))
}

// ParseNormScheme parses the textual form produced by String.
func ParseNormScheme(s string) (NormScheme, error) {
	switch s {
	case "left", "":
		return NormLeft, nil
	case "max":
		return NormMax, nil
	case "gcd":
		return NormGCD, nil
	}
	return 0, fmt.Errorf("unknown normalization scheme %q (want left, max or gcd)", s)
}

// Stats aggregates manager counters.
type Stats struct {
	UniqueNodes   int    // live nodes in the unique table
	UniqueLookups uint64 // makeNode calls that reached the unique table
	UniqueHits    uint64 // ... of which found an existing node
	CTLookups     uint64
	CTHits        uint64
	Prunes        uint64 // garbage-collection runs
	PrunedNodes   uint64 // nodes removed across all Prune calls
}

// Manager owns the unique table, the compute tables and the normalization
// policy for one family of QMDDs. All diagrams combined by manager
// operations must come from the same manager. A Manager is not safe for
// concurrent use; run parallel experiments on separate managers (as the
// benchmark harness does).
type Manager[T any] struct {
	R    coeff.Ring[T]
	Norm NormScheme

	unique map[string]*Node[T]
	ct     *computeTable[T]
	nextID uint64
	stats  Stats
}

// NewManager returns a manager over the given coefficient ring.
func NewManager[T any](r coeff.Ring[T], norm NormScheme) *Manager[T] {
	return &Manager[T]{
		R:      r,
		Norm:   norm,
		unique: make(map[string]*Node[T]),
		ct:     newComputeTable[T](1 << 18),
	}
}

// Stats returns a snapshot of the manager counters.
func (m *Manager[T]) Stats() Stats {
	s := m.stats
	s.UniqueNodes = len(m.unique)
	s.CTLookups, s.CTHits = m.ct.lookups, m.ct.hits
	return s
}

// ClearComputeTable drops all memoized operation results (the unique table —
// and with it diagram identity — is preserved).
func (m *Manager[T]) ClearComputeTable() { m.ct.clear() }

// Terminal returns a terminal edge with the given weight.
func (m *Manager[T]) Terminal(w T) Edge[T] { return Edge[T]{W: w, N: nil} }

// ZeroEdge returns the zero stub (weight 0, terminal).
func (m *Manager[T]) ZeroEdge() Edge[T] { return Edge[T]{W: m.R.Zero(), N: nil} }

// OneEdge returns the scalar 1.
func (m *Manager[T]) OneEdge() Edge[T] { return Edge[T]{W: m.R.One(), N: nil} }

// IsZero reports whether e is the zero stub.
func (m *Manager[T]) IsZero(e Edge[T]) bool { return e.N == nil && m.R.IsZero(e.W) }

// RootsEqual is the O(1) canonical equivalence check: two diagrams built in
// this manager represent the same matrix/vector iff their root edges point
// to the identical node with equal weights.
func (m *Manager[T]) RootsEqual(a, b Edge[T]) bool {
	return a.N == b.N && m.R.Equal(a.W, b.W)
}

// RootsEqualUpToPhase reports whether two diagrams represent the same
// object up to a global phase: identical node and root weights of equal
// squared magnitude (checked exactly in the coefficient ring, so for the
// algebraic representation this decides U₁ = e^{iφ}·U₂ exactly). Still O(1).
func (m *Manager[T]) RootsEqualUpToPhase(a, b Edge[T]) bool {
	if a.N != b.N {
		return false
	}
	na := m.R.Mul(m.R.Conj(a.W), a.W)
	nb := m.R.Mul(m.R.Conj(b.W), b.W)
	return m.R.Equal(na, nb)
}

// MakeNode creates (or retrieves) the normalized, hash-consed node at the
// given level with the given outgoing edges, and returns the edge pointing
// to it with the extracted normalization factor as weight. Edges of weight
// zero are canonicalized to zero stubs; if every edge is zero the zero stub
// itself is returned.
func (m *Manager[T]) MakeNode(level int, es []Edge[T]) Edge[T] {
	if level < 1 {
		panic("core: MakeNode at level < 1")
	}
	allZero := true
	out := make([]Edge[T], len(es))
	for i, e := range es {
		if m.R.IsZero(e.W) {
			out[i] = m.ZeroEdge()
		} else {
			out[i] = e
			allZero = false
		}
	}
	if allZero {
		return m.ZeroEdge()
	}
	factor := m.normalize(out)
	var sb strings.Builder
	sb.Grow(64)
	sb.WriteString(strconv.Itoa(level))
	sb.WriteByte(':')
	for _, e := range out {
		sb.WriteString(m.R.Key(e.W))
		sb.WriteByte('@')
		if e.N != nil {
			sb.WriteString(strconv.FormatUint(e.N.ID, 36))
		}
		sb.WriteByte(';')
	}
	key := sb.String()
	m.stats.UniqueLookups++
	if n, ok := m.unique[key]; ok {
		m.stats.UniqueHits++
		return Edge[T]{W: factor, N: n}
	}
	m.nextID++
	n := &Node[T]{ID: m.nextID, Level: level, E: out}
	m.unique[key] = n
	return Edge[T]{W: factor, N: n}
}

// MakeVectorNode is MakeNode for the two halves of a state vector.
func (m *Manager[T]) MakeVectorNode(level int, e0, e1 Edge[T]) Edge[T] {
	return m.MakeNode(level, []Edge[T]{e0, e1})
}

// MakeMatrixNode is MakeNode for the four quadrants of a matrix
// (top-left, top-right, bottom-left, bottom-right).
func (m *Manager[T]) MakeMatrixNode(level int, e00, e01, e10, e11 Edge[T]) Edge[T] {
	return m.MakeNode(level, []Edge[T]{e00, e01, e10, e11})
}

// Scale returns s · e.
func (m *Manager[T]) Scale(e Edge[T], s T) Edge[T] {
	if m.R.IsZero(s) || m.IsZero(e) {
		return m.ZeroEdge()
	}
	return Edge[T]{W: m.R.Mul(s, e.W), N: e.N}
}

// weightedChild returns the i-th outgoing edge of e's node with e's weight
// multiplied in. e must not be terminal.
func (m *Manager[T]) weightedChild(e Edge[T], i int) Edge[T] {
	c := e.N.E[i]
	if m.R.IsZero(c.W) {
		return m.ZeroEdge()
	}
	return Edge[T]{W: m.R.Mul(e.W, c.W), N: c.N}
}
