package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/coeff"
)

// NormScheme selects how node weights are normalized when a node is created.
// Normalization is what makes QMDDs canonical; the available schemes are the
// ones discussed in the paper.
type NormScheme int

const (
	// NormLeft divides all outgoing weights by the leftmost nonzero weight
	// (the classic QMDD rule; for the algebraic representation this is
	// Algorithm 2, "normalization with Q[ω] inverses").
	NormLeft NormScheme = iota
	// NormMax divides by the (leftmost) weight of largest magnitude, keeping
	// every weight at magnitude ≤ 1 for numerical stability [29].
	NormMax
	// NormGCD factors out a unit-adjusted greatest common divisor of the
	// weights (Algorithm 3, "normalization with GCDs from D[ω]"). Requires a
	// coefficient ring implementing coeff.GCDRing; falls back to NormLeft
	// when the weights leave the GCD subring.
	NormGCD
)

// String returns the scheme name used in CLI flags and reports.
func (s NormScheme) String() string {
	switch s {
	case NormLeft:
		return "left"
	case NormMax:
		return "max"
	case NormGCD:
		return "gcd"
	}
	return fmt.Sprintf("NormScheme(%d)", int(s))
}

// ParseNormScheme parses the textual form produced by String.
func ParseNormScheme(s string) (NormScheme, error) {
	switch s {
	case "left", "":
		return NormLeft, nil
	case "max":
		return NormMax, nil
	case "gcd":
		return NormGCD, nil
	}
	return 0, fmt.Errorf("unknown normalization scheme %q (want left, max or gcd)", s)
}

// Stats aggregates manager counters.
type Stats struct {
	UniqueNodes     int    // live nodes in the unique table
	UniqueLookups   uint64 // MakeNode calls that reached the unique table
	UniqueHits      uint64 // ... of which found an existing node
	CTLookups       uint64
	CTHits          uint64
	CTEntries       int    // occupied compute-table slots
	CTCapacity      int    // compute-table slot count
	InternedWeights int    // distinct weights in the intern table
	Prunes          uint64 // garbage-collection runs
	PrunedNodes     uint64 // nodes removed across all Prune calls
}

// CTLoadFactor returns the fraction of compute-table slots in use.
func (s Stats) CTLoadFactor() float64 {
	if s.CTCapacity == 0 {
		return 0
	}
	return float64(s.CTEntries) / float64(s.CTCapacity)
}

// Manager owns the unique table, the compute tables and the normalization
// policy for one family of QMDDs. All diagrams combined by manager
// operations must come from the same manager.
//
// Concurrency: by default a Manager is single-threaded — run parallel
// experiments on separate managers (as the benchmark harness does). With
// SetIntraWorkers(k>1) the manager enters shared mode: its sharded tables
// take per-shard locks and a single Add/ApplyLocal call may recurse into
// independent sub-diagrams on a bounded worker group (see ops_parallel.go and
// DESIGN.md §5.6). Even in shared mode, distinct top-level operations must
// not be issued concurrently; the parallelism is *inside* one operation.
type Manager[T any] struct {
	R    coeff.Ring[T]
	Norm NormScheme

	hashW    func(T) uint64 // weight hash: coeff.Hasher fast path or Key fallback
	zeroW    T              // the ring's zero, the reserved WID-0 representative
	zeroHash uint64         // mixed hash of zeroW
	wt       internTable[T]
	ut       uniqueTable[T]
	ct       *computeTable[T]
	nextID   atomic.Uint64
	gateSeq  atomic.Uint64 // LocalGate registry IDs (apply.go)
	stats    Stats         // Prune counters only; table counters live in the shards
	pruneGen uint64        // bumped by every Prune; Samplers capture it to detect staleness

	// Intra-operation parallelism (ops_parallel.go). shared mirrors
	// intraWorkers>1 into one branch-predictable bool consulted by the
	// recursion; the tables carry their own copy. spawn0 is the fork budget
	// handed to each top-level operation and sem bounds the extra worker
	// goroutines at intraWorkers−1 tokens.
	intraWorkers int
	shared       bool
	spawn0       int
	sem          chan struct{}

	// Live-population counters, atomic so concurrent shard insertions meter
	// the budget coherently without a global lock.
	totalNodes   atomic.Int64
	totalWeights atomic.Int64

	// Run governor (budget.go): optional resource budget, optional
	// cooperative-cancellation context, and always-on peak tracking. budget,
	// ctx and budgetStart are configured between operations; the tick and
	// peaks are updated inside them.
	budget      Budget
	ctx         context.Context
	budgetStart time.Time
	budgetTick  atomic.Uint64
	peakNodes   atomic.Int64
	peakWeights atomic.Int64
}

// Option configures a Manager at construction time.
type Option func(*managerOptions)

type managerOptions struct {
	ctSize int
}

// DefaultCTSize is the compute-table slot count used when no
// WithComputeTableSize option is given.
const DefaultCTSize = 1 << 18

// WithComputeTableSize sets the number of compute-table slots (rounded up to
// a power of two). Smaller tables bound memory at the cost of more
// overwrite collisions; results stay correct either way because every entry
// verifies its stored operands on lookup.
func WithComputeTableSize(n int) Option {
	if n < 1 {
		panic("core: compute table size must be positive")
	}
	return func(o *managerOptions) { o.ctSize = ceilPow2(n) }
}

// NewManager returns a manager over the given coefficient ring.
func NewManager[T any](r coeff.Ring[T], norm NormScheme, opts ...Option) *Manager[T] {
	o := managerOptions{ctSize: DefaultCTSize}
	for _, opt := range opts {
		opt(&o)
	}
	m := &Manager[T]{
		R:            r,
		Norm:         norm,
		ct:           newComputeTable[T](o.ctSize),
		intraWorkers: 1,
		budgetStart:  time.Now(),
	}
	if h, ok := any(r).(coeff.Hasher[T]); ok {
		m.hashW = h.Hash
	} else {
		m.hashW = func(w T) uint64 { return fnv1a(r.Key(w)) }
	}
	m.zeroW = r.Zero()
	m.zeroHash = mix64(m.hashW(m.zeroW))
	m.wt.init(1 << 4)
	m.ut.init(1 << 4)
	m.totalWeights.Store(1) // WID 0, pinned to the ring's zero
	return m
}

// SetIntraWorkers sets the number of goroutines a single operation may
// recurse on (ops_parallel.go). k ≤ 1 restores the default single-threaded
// mode, in which the table shard locks are never touched. k > 1 requires a
// coefficient ring that is safe for concurrent use (coeff.ConcurrentRing);
// rings that are not — the ε>0 numerical ring, whose nearest-wins interning
// is insertion-order-dependent — are silently clamped to 1 so results stay
// deterministic. Must not be called while an operation is in flight.
func (m *Manager[T]) SetIntraWorkers(k int) {
	if k < 1 {
		k = 1
	}
	if k > 1 {
		cr, ok := any(m.R).(coeff.ConcurrentRing)
		if !ok || !cr.ConcurrentSafe() {
			k = 1
		}
	}
	m.intraWorkers = k
	shared := k > 1
	m.shared = shared
	m.wt.shared = shared
	m.ut.shared = shared
	m.ct.shared = shared
	m.spawn0 = spawnFor(k)
	if shared {
		m.sem = make(chan struct{}, k-1)
	} else {
		m.sem = nil
	}
}

// IntraWorkers returns the effective intra-operation worker count (after the
// concurrency-safety clamp of SetIntraWorkers).
func (m *Manager[T]) IntraWorkers() int { return m.intraWorkers }

// internWeight canonicalizes w through the per-manager intern table and
// returns its weight ID plus the canonical representative. The hit path
// hashes w (via the ring's Hasher fast path when available) and compares
// candidates with Ring.Equal — no strings, no allocation. The ring's zero
// maps to the reserved WID 0 without touching any shard.
func (m *Manager[T]) internWeight(w T) (uint32, T) {
	h := mix64(m.hashW(w))
	if h == m.zeroHash && m.R.Equal(m.zeroW, w) {
		return 0, m.zeroW
	}
	wid, canon, isNew := m.wt.intern(w, h, m.R.Equal)
	if isNew {
		m.noteWeight()
	}
	return wid, canon
}

// WID returns the weight ID of w, interning it if needed.
func (m *Manager[T]) WID(w T) uint32 {
	wid, _ := m.internWeight(w)
	return wid
}

// Weight returns the canonical representative interned under the given
// weight ID (WID 0 is the ring's zero).
func (m *Manager[T]) Weight(wid uint32) T {
	if wid == 0 {
		return m.zeroW
	}
	return m.wt.lookup(wid)
}

// Stats returns a snapshot of the manager counters. Coherent only between
// operations (shard counters are summed without a global lock).
func (m *Manager[T]) Stats() Stats {
	s := m.stats
	s.UniqueNodes = m.ut.count()
	s.UniqueLookups, s.UniqueHits = m.ut.counters()
	s.InternedWeights = m.wt.count()
	s.CTLookups, s.CTHits = m.ct.counters()
	s.CTEntries = m.ct.filledTotal()
	s.CTCapacity = m.ct.capacity()
	return s
}

// ClearComputeTable drops all memoized operation results (the unique table —
// and with it diagram identity — is preserved).
func (m *Manager[T]) ClearComputeTable() { m.ct.clear() }

// Terminal returns a terminal edge with the given weight.
func (m *Manager[T]) Terminal(w T) Edge[T] { return Edge[T]{W: w, N: nil} }

// ZeroEdge returns the zero stub (weight 0, terminal).
func (m *Manager[T]) ZeroEdge() Edge[T] { return Edge[T]{W: m.R.Zero(), N: nil} }

// OneEdge returns the scalar 1.
func (m *Manager[T]) OneEdge() Edge[T] { return Edge[T]{W: m.R.One(), N: nil} }

// IsZero reports whether e is the zero stub.
func (m *Manager[T]) IsZero(e Edge[T]) bool { return e.N == nil && m.R.IsZero(e.W) }

// RootsEqual is the O(1) canonical equivalence check: two diagrams built in
// this manager represent the same matrix/vector iff their root edges point
// to the identical node with equal weights.
func (m *Manager[T]) RootsEqual(a, b Edge[T]) bool {
	return a.N == b.N && m.R.Equal(a.W, b.W)
}

// RootsEqualUpToPhase reports whether two diagrams represent the same
// object up to a global phase: identical node and root weights of equal
// squared magnitude (checked exactly in the coefficient ring, so for the
// algebraic representation this decides U₁ = e^{iφ}·U₂ exactly). Still O(1).
func (m *Manager[T]) RootsEqualUpToPhase(a, b Edge[T]) bool {
	if a.N != b.N {
		return false
	}
	na := m.R.Mul(m.R.Conj(a.W), a.W)
	nb := m.R.Mul(m.R.Conj(b.W), b.W)
	return m.R.Equal(na, nb)
}

// MakeNode creates (or retrieves) the normalized, hash-consed node at the
// given level with the given outgoing edges, and returns the edge pointing
// to it with the extracted normalization factor as weight. Edges of weight
// zero are canonicalized to zero stubs; if every edge is zero the zero stub
// itself is returned.
func (m *Manager[T]) MakeNode(level int, es []Edge[T]) Edge[T] {
	if level < 1 {
		panic("core: MakeNode at level < 1")
	}
	if len(es) != VectorArity && len(es) != MatrixArity {
		panic("core: MakeNode arity must be 2 (vector) or 4 (matrix)")
	}
	// Stack-allocated scratch: nothing is heap-allocated until a genuinely
	// new node has to be created.
	var buf [MatrixArity]Edge[T]
	out := buf[:len(es)]
	allZero := true
	for i, e := range es {
		if m.R.IsZero(e.W) {
			out[i] = Edge[T]{W: m.R.Zero()}
		} else {
			out[i] = e
			allZero = false
		}
	}
	if allZero {
		return m.ZeroEdge()
	}
	factor := m.normalize(out)
	return Edge[T]{W: factor, N: m.internNode(level, out)}
}

// internNode hash-conses the normalized edge vector: each weight is interned
// to its WID, the (level, child IDs, WIDs) key is hashed, and the owning
// unique-table shard is probed. In shared mode the probe and the insert form
// one critical section under the shard mutex, so two workers racing to
// create the same node converge on a single canonical instance. es is
// scratch owned by the caller — it is copied only when a new node is
// created.
func (m *Manager[T]) internNode(level int, es []Edge[T]) *Node[T] {
	var wids [MatrixArity]uint32
	for i := range es {
		wid, canon := m.internWeight(es[i].W)
		wids[i] = wid
		es[i].W = canon // share the canonical representative
	}
	h := nodeHash(level, es, &wids)
	sh := &m.ut.shards[shardOf(h)]
	if m.ut.shared {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	sh.lookups++
	i := h & sh.mask
	for {
		n := sh.slots[i]
		if n == nil {
			break
		}
		if n.hash == h && n.Level == level && len(n.E) == len(es) && sameKids(n, es, &wids) {
			sh.hits++
			return n
		}
		i = (i + 1) & sh.mask
	}
	kids := make([]Edge[T], len(es))
	copy(kids, es)
	n := &Node[T]{ID: m.nextID.Add(1), Level: level, E: kids, wids: wids, hash: h}
	sh.slots[i] = n
	sh.used++
	if uint64(sh.used)*4 >= uint64(len(sh.slots))*3 {
		sh.grow()
	}
	m.noteNode()
	return n
}

// sameKids reports whether n's outgoing edges match the probe key: identical
// child pointers and identical interned weight IDs.
func sameKids[T any](n *Node[T], es []Edge[T], wids *[MatrixArity]uint32) bool {
	for j := range es {
		if n.E[j].N != es[j].N || n.wids[j] != wids[j] {
			return false
		}
	}
	return true
}

// MakeVectorNode is MakeNode for the two halves of a state vector.
func (m *Manager[T]) MakeVectorNode(level int, e0, e1 Edge[T]) Edge[T] {
	es := [VectorArity]Edge[T]{e0, e1}
	return m.MakeNode(level, es[:])
}

// MakeMatrixNode is MakeNode for the four quadrants of a matrix
// (top-left, top-right, bottom-left, bottom-right).
func (m *Manager[T]) MakeMatrixNode(level int, e00, e01, e10, e11 Edge[T]) Edge[T] {
	es := [MatrixArity]Edge[T]{e00, e01, e10, e11}
	return m.MakeNode(level, es[:])
}

// Scale returns s · e.
func (m *Manager[T]) Scale(e Edge[T], s T) Edge[T] {
	if m.R.IsZero(s) || m.IsZero(e) {
		return m.ZeroEdge()
	}
	// Unit factors are pervasive (left normalization pins the leftmost child
	// weight to an exact 1, and permutation-type gates scale by ±1): skip
	// the ring multiplication for them. For exact rings this is the
	// identity; a multiplication by an exact 1 is bit-exact in complex128
	// too, so results are unchanged.
	if m.R.IsOne(s) {
		return e
	}
	if m.R.IsOne(e.W) {
		return Edge[T]{W: s, N: e.N}
	}
	return Edge[T]{W: m.R.Mul(s, e.W), N: e.N}
}

// weightedChild returns the i-th outgoing edge of e's node with e's weight
// multiplied in. e must not be terminal.
func (m *Manager[T]) weightedChild(e Edge[T], i int) Edge[T] {
	c := e.N.E[i]
	if m.R.IsZero(c.W) {
		return m.ZeroEdge()
	}
	// Same unit fast paths as Scale: canonical nodes have a unit pivot
	// weight, so roughly half of all child multiplications are by 1.
	if m.R.IsOne(e.W) {
		return c
	}
	if m.R.IsOne(c.W) {
		return Edge[T]{W: e.W, N: c.N}
	}
	return Edge[T]{W: m.R.Mul(e.W, c.W), N: c.N}
}
