// Package core implements the QMDD (Quantum Multiple-valued Decision
// Diagram) data structure of Niemann et al. generically over the coefficient
// ring of its edge weights, so that the very same diagram code runs with
//
//   - the numerical representation (complex128 + tolerance ε) whose
//     accuracy/compactness trade-off the paper evaluates, and
//   - the proposed exact algebraic representation over Q[ω] / D[ω].
//
// A QMDD node at level l (l = n .. 1 for an n-qubit system) decomposes a
// 2^l × 2^l matrix into its four quadrants (arity 4) or a 2^l state vector
// into its two halves (arity 2); edges carry multiplicative weights, and a
// matrix entry / amplitude is the product of the weights along the
// corresponding root-to-terminal path. Terminal edges have a nil node
// pointer. Edges of weight zero always point directly to the terminal
// ("zero stubs"); apart from those, levels are never skipped.
//
// Nodes are hash-consed in a unique table after normalization, which makes
// the representation canonical: two equal matrices/vectors are represented
// by the identical root edge, so equivalence checking is O(1).
package core

// Edge is a weighted edge of a QMDD: the weight multiplies everything in the
// sub-diagram hanging off N. A nil N is the terminal.
type Edge[T any] struct {
	W T
	N *Node[T]
}

// Node is a QMDD node. E has length 4 for matrix nodes (quadrants in
// row-major order: top-left, top-right, bottom-left, bottom-right — the
// outgoing edges e₀…e₃ of the paper's figures) and length 2 for vector
// nodes (upper and lower half). Nodes are immutable once interned; never
// modify E after creation.
type Node[T any] struct {
	ID    uint64
	Level int
	E     []Edge[T]

	// wids caches the interned weight ID of each outgoing edge and hash the
	// node's unique-table hash over (Level, child IDs, wids). Both are owned
	// by the manager (set in MakeNode, refreshed by Prune) and are not part
	// of the public API.
	wids [MatrixArity]uint32
	hash uint64
}

// IsTerminal reports whether e points to the terminal node.
func (e Edge[T]) IsTerminal() bool { return e.N == nil }

// Level returns the level of the edge's target (0 for the terminal).
func (e Edge[T]) Level() int {
	if e.N == nil {
		return 0
	}
	return e.N.Level
}

// Arity returns the node fan-out at the edge's target (0 for the terminal).
func (e Edge[T]) Arity() int {
	if e.N == nil {
		return 0
	}
	return len(e.N.E)
}

// MatrixArity and VectorArity are the two legal node fan-outs.
const (
	VectorArity = 2
	MatrixArity = 4
)

// NodeCount returns the number of distinct non-terminal nodes reachable from
// e — the "size of the QMDD" metric of the paper's figures.
func (e Edge[T]) NodeCount() int {
	seen := make(map[*Node[T]]struct{})
	var walk func(*Node[T])
	walk = func(n *Node[T]) {
		if n == nil {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		for _, c := range n.E {
			walk(c.N)
		}
	}
	walk(e.N)
	return len(seen)
}

// Nodes returns all distinct non-terminal nodes reachable from e, in an
// unspecified order.
func (e Edge[T]) Nodes() []*Node[T] {
	seen := make(map[*Node[T]]struct{})
	var out []*Node[T]
	var walk func(*Node[T])
	walk = func(n *Node[T]) {
		if n == nil {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		out = append(out, n)
		for _, c := range n.E {
			walk(c.N)
		}
	}
	walk(e.N)
	return out
}
