package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alg"
)

func TestProjectBellState(t *testing.T) {
	m := algManager(NormLeft)
	s := alg.QInvSqrt2
	bell := m.FromVector([]alg.Q{s, alg.QZero, alg.QZero, s})
	for _, outcome := range []int{0, 1} {
		proj, p, err := m.Project(bell, 2, 0, outcome)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-0.5) > 1e-12 {
			t.Fatalf("P(q0=%d) = %v, want 0.5", outcome, p)
		}
		// The projected (unnormalized) state is 1/√2·|oo⟩.
		idx := uint64(0)
		if outcome == 1 {
			idx = 3
		}
		if !m.Amplitude(proj, 2, idx).Equal(s) {
			t.Fatalf("projected amplitude = %v", m.Amplitude(proj, 2, idx))
		}
		// The other branch is gone.
		if !m.Amplitude(proj, 2, 3-idx).IsZero() {
			t.Fatal("projection left the complementary branch alive")
		}
	}
}

func TestProjectOnLowerQubit(t *testing.T) {
	m := algManager(NormLeft)
	// |+⟩ ⊗ |+⟩ ⊗ |0⟩: projecting qubit 1 onto 1 keeps half the mass.
	h := alg.QInvSqrt2
	amps := []alg.Q{
		h.Mul(h), alg.QZero, h.Mul(h), alg.QZero,
		h.Mul(h), alg.QZero, h.Mul(h), alg.QZero,
	}
	v := m.FromVector(amps)
	proj, p, err := m.Project(v, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P = %v", p)
	}
	for i := uint64(0); i < 8; i++ {
		a := m.Amplitude(proj, 3, i)
		if (i>>1)&1 == 1 && i&1 == 0 {
			if !a.Equal(h.Mul(h)) {
				t.Fatalf("amp[%d] = %v", i, a)
			}
		} else if !a.IsZero() {
			t.Fatalf("amp[%d] should be zero, got %v", i, a)
		}
	}
}

func TestProjectProbabilitiesSumToOne(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		v := m.FromVector(randQVals(r, 16))
		if m.IsZero(v) {
			continue
		}
		for q := 0; q < 4; q++ {
			_, p0, err0 := m.Project(v, 4, q, 0)
			_, p1, err1 := m.Project(v, 4, q, 1)
			if err0 != nil || err1 != nil {
				t.Fatal(err0, err1)
			}
			if math.Abs(p0+p1-1) > 1e-9 {
				t.Fatalf("P0+P1 = %v for qubit %d", p0+p1, q)
			}
		}
	}
}

func TestProjectZeroVector(t *testing.T) {
	m := algManager(NormLeft)
	proj, p, err := m.Project(m.ZeroEdge(), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsZero(proj) || p != 0 {
		t.Fatalf("projection of zero vector: %v, %v", proj, p)
	}
}

func TestFidelity(t *testing.T) {
	m := algManager(NormLeft)
	s := alg.QInvSqrt2
	bell := m.FromVector([]alg.Q{s, alg.QZero, alg.QZero, s})
	if f := m.Fidelity(bell, bell); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity %v", f)
	}
	// Global phase i and scaling by 3 must not matter.
	phased := m.Scale(bell, alg.QI.Mul(alg.QFromInt(3)))
	if f := m.Fidelity(bell, phased); math.Abs(f-1) > 1e-12 {
		t.Fatalf("phase/scale fidelity %v", f)
	}
	orth := m.FromVector([]alg.Q{alg.QZero, s, s, alg.QZero})
	if f := m.Fidelity(bell, orth); f > 1e-12 {
		t.Fatalf("orthogonal fidelity %v", f)
	}
	plus := m.FromVector([]alg.Q{s.Mul(s), s.Mul(s), s.Mul(s), s.Mul(s)})
	if f := m.Fidelity(bell, plus); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("bell/plus fidelity %v, want 0.5", f)
	}
	if f := m.Fidelity(bell, m.ZeroEdge()); f != 0 {
		t.Fatalf("fidelity with zero vector %v", f)
	}
}

func TestPruneKeepsLiveDropsDead(t *testing.T) {
	m := algManager(NormLeft)
	// Build a state, then churn intermediates.
	live := m.BasisState(4, 7)
	for i := uint64(0); i < 16; i++ {
		m.BasisState(4, i) // garbage except idx 7 (shared chains aside)
	}
	before := m.Stats().UniqueNodes
	removed := m.Prune(live)
	after := m.Stats().UniqueNodes
	if removed == 0 || after >= before {
		t.Fatalf("prune removed %d (table %d → %d)", removed, before, after)
	}
	// The live diagram is untouched and still canonical: rebuilding it
	// yields the identical node.
	rebuilt := m.BasisState(4, 7)
	if !m.RootsEqual(rebuilt, live) {
		t.Fatal("prune broke hash-consing identity for live nodes")
	}
	// Operations still work after a prune.
	if !m.RootsEqual(m.Mul(m.Identity(4), live), live) {
		t.Fatal("post-prune multiplication broken")
	}
	st := m.Stats()
	if st.Prunes != 1 || st.PrunedNodes == 0 {
		t.Fatalf("prune stats not recorded: %+v", st)
	}
}

func TestPruneWithNoRootsEmptiesTable(t *testing.T) {
	m := algManager(NormLeft)
	m.BasisState(3, 5)
	m.Prune()
	if m.Stats().UniqueNodes != 0 {
		t.Fatalf("table not emptied: %d", m.Stats().UniqueNodes)
	}
}

func TestAutoPruner(t *testing.T) {
	m := algManager(NormLeft)
	state := m.BasisState(5, 0)
	hook := AutoPruner(m, 20, func() Edge[alg.Q] { return state })
	for i := uint64(0); i < 32; i++ {
		state = m.BasisState(5, i)
		hook()
	}
	if m.Stats().Prunes == 0 {
		t.Fatal("auto-pruner never fired")
	}
	if got := m.Stats().UniqueNodes; got > 40 {
		t.Fatalf("table kept growing: %d nodes", got)
	}
}

// TestProjectMemoizesTargetLevel is the regression test for the unmemoized
// target-level arm of projectRec: a target-level node shared by many parents
// was recombined once per incoming edge, so measure-heavy workloads paid
// O(edges into the target level) extra table lookups instead of O(nodes).
// The state below funnels every block through ONE shared level-1 node, and
// the MakeNode lookup count across a Project must stay within one lookup per
// distinct diagram node.
func TestProjectMemoizesTargetLevel(t *testing.T) {
	m := algManager(NormLeft)
	const n = 6
	// amps[2k] = c_k·1, amps[2k+1] = c_k·2 with distinct c_k: level 1 is a
	// single shared (1,2) node, while every level-2 node above it is distinct.
	amps := make([]alg.Q, 1<<n)
	for k := 0; k < 1<<(n-1); k++ {
		c := alg.QFromInt(int64(k + 1))
		amps[2*k] = c
		amps[2*k+1] = c.Mul(alg.QFromInt(2))
	}
	v := m.FromVector(amps)
	nodes := v.NodeCount()

	before := m.Stats().UniqueLookups
	proj, p, err := m.Project(v, n, n-1, 0) // qubit n-1 = level 1, the shared node
	if err != nil {
		t.Fatal(err)
	}
	lookups := m.Stats().UniqueLookups - before
	// One MakeNode per distinct node of the input diagram (plus slack for the
	// projected-root bookkeeping). The pre-fix code pays one extra MakeNode
	// per edge into the shared target node — 2^(n-2) of them here.
	if limit := uint64(nodes + 2); lookups > limit {
		t.Fatalf("Project did %d MakeNode lookups over a %d-node diagram (limit %d): target level not memoized",
			lookups, nodes, limit)
	}
	// Sanity: the projection itself is correct — P(q5=0) = Σc²·1 / Σc²·5.
	if math.Abs(p-0.2) > 1e-12 {
		t.Fatalf("P = %v, want 0.2", p)
	}
	for i := uint64(0); i < 1<<n; i++ {
		a := m.Amplitude(proj, n, i)
		if i%2 == 0 {
			if !a.Equal(amps[i]) {
				t.Fatalf("kept amplitude %d = %v, want %v", i, a, amps[i])
			}
		} else if !a.IsZero() {
			t.Fatalf("projected-out amplitude %d = %v, want 0", i, a)
		}
	}
}
