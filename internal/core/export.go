package core

import (
	"fmt"
	"io"
	"sort"
)

// DOT writes the diagram rooted at e in Graphviz format, with human-readable
// edge weights (weight-1 labels are suppressed, as in the paper's figures).
func (m *Manager[T]) DOT(w io.Writer, e Edge[T], name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	nodes := e.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	fmt.Fprintf(w, "  t [shape=box,label=\"1\"];\n")
	fmt.Fprintf(w, "  root [shape=point];\n")
	writeEdge := func(from string, to *Node[T], weight T, label string) {
		dst := "t"
		if to != nil {
			dst = fmt.Sprintf("n%d", to.ID)
		}
		wl := ""
		if !m.R.IsOne(weight) {
			wl = fmt.Sprintf("%v", weight)
		}
		if label != "" && wl != "" {
			wl = label + ": " + wl
		} else if label != "" {
			wl = label
		}
		fmt.Fprintf(w, "  %s -> %s [label=%q];\n", from, dst, wl)
	}
	writeEdge("root", e.N, e.W, "")
	for _, n := range nodes {
		fmt.Fprintf(w, "  n%d [label=\"q%d\"];\n", n.ID, n.Level)
		for i, c := range n.E {
			if m.R.IsZero(c.W) {
				continue // zero stubs drawn as absence, like the paper's figures
			}
			writeEdge(fmt.Sprintf("n%d", n.ID), c.N, c.W, fmt.Sprintf("e%d", i))
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// MaxWeightBitLen returns the largest coefficient bit width over all edge
// weights reachable from e (0 for floating-point rings) — the statistic the
// paper uses to explain the algebraic overhead on GSE.
func (m *Manager[T]) MaxWeightBitLen(e Edge[T]) int {
	best := m.R.BitLen(e.W)
	for _, n := range e.Nodes() {
		for _, c := range n.E {
			if b := m.R.BitLen(c.W); b > best {
				best = b
			}
		}
	}
	return best
}

// TrivialWeightFraction returns the fraction of nonzero reachable edge
// weights that are exactly 1 — the paper observes that the Q[ω] scheme keeps
// at least half of the weights trivial, which is where its run-time edge
// over the GCD scheme comes from.
func (m *Manager[T]) TrivialWeightFraction(e Edge[T]) float64 {
	ones, nonzero := 0, 0
	count := func(w T) {
		if m.R.IsZero(w) {
			return
		}
		nonzero++
		if m.R.IsOne(w) {
			ones++
		}
	}
	count(e.W)
	for _, n := range e.Nodes() {
		for _, c := range n.E {
			count(c.W)
		}
	}
	if nonzero == 0 {
		return 0
	}
	return float64(ones) / float64(nonzero)
}

// NodeProfile returns the number of distinct nodes per level (index 0 =
// level 1, the bottom), a finer-grained size view than NodeCount that shows
// where in the diagram the blowup of a bad tolerance concentrates.
func (m *Manager[T]) NodeProfile(e Edge[T]) []int {
	levels := e.Level()
	if levels == 0 {
		return nil
	}
	prof := make([]int, levels)
	for _, n := range e.Nodes() {
		prof[n.Level-1]++
	}
	return prof
}
