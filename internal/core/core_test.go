package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alg"
	"repro/internal/num"
)

func algManager(norm NormScheme) *Manager[alg.Q] {
	return NewManager[alg.Q](alg.Ring{}, norm)
}

func numManager(eps float64) *Manager[complex128] {
	return NewManager[complex128](num.NewRing(eps), NormLeft)
}

func randQVals(r *rand.Rand, n int) []alg.Q {
	out := make([]alg.Q, n)
	for i := range out {
		if r.Intn(4) == 0 {
			out[i] = alg.QZero
			continue
		}
		out[i] = alg.NewQ(
			r.Int63n(9)-4, r.Int63n(9)-4, r.Int63n(9)-4, r.Int63n(9)-4,
			r.Intn(5)-2, 1)
	}
	return out
}

// TestCanonicity: the same vector built along different construction orders
// (and scaled arbitrarily before normalization) yields the identical node.
func TestCanonicity(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(50))
	for trial := 0; trial < 50; trial++ {
		amps := randQVals(r, 8)
		v1 := m.FromVector(amps)
		// Build the scaled vector 3·amps and check the node is shared.
		scaled := make([]alg.Q, len(amps))
		three := alg.QFromInt(3)
		for i, a := range amps {
			scaled[i] = a.Mul(three)
		}
		v2 := m.FromVector(scaled)
		if m.IsZero(v1) {
			if !m.IsZero(v2) {
				t.Fatalf("zero/nonzero mismatch")
			}
			continue
		}
		if v1.N != v2.N {
			t.Fatalf("scaled vector does not share the node: trial %d", trial)
		}
		if !m.R.Equal(v2.W, v1.W.Mul(three)) {
			t.Fatalf("root weights not proportional by 3")
		}
	}
}

// TestFig1HKronI reproduces the paper's Fig. 1: the QMDD of U = H ⊗ I₂ has a
// single node per level (2 nodes total) and root weight 1/√2.
func TestFig1HKronI(t *testing.T) {
	m := algManager(NormLeft)
	s := alg.QInvSqrt2
	h := m.FromMatrix([][]alg.Q{
		{s, s},
		{s, s.Neg()},
	})
	id := m.Identity(1)
	u := m.Kron(h, id)
	if got := u.NodeCount(); got != 2 {
		t.Fatalf("H ⊗ I₂ has %d nodes, want 2", got)
	}
	if !m.R.Equal(u.W, s) {
		t.Fatalf("root weight = %v, want 1/√2", u.W)
	}
	// Entry check from Example 3: entry (row=2, col=0) is −1/√2... the
	// highlighted entry of the bottom-left sub-matrix is 1/√2 at (2,0) and
	// the bottom-right carries the −1 factor. Verify the whole matrix.
	want := [][]complex128{
		{1, 0, 1, 0},
		{0, 1, 0, 1},
		{1, 0, -1, 0},
		{0, 1, 0, -1},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			got := m.R.Complex128(m.Entry(u, 2, uint64(i), uint64(j)))
			w := want[i][j] / complex(math.Sqrt2, 0)
			if cmplx.Abs(got-w) > 1e-12 {
				t.Fatalf("entry (%d,%d) = %v, want %v", i, j, got, w)
			}
		}
	}
}

// TestIdentityMul: I·v = v and I·I = I with identical roots (O(1) check).
func TestIdentityMul(t *testing.T) {
	for _, norm := range []NormScheme{NormLeft, NormMax, NormGCD} {
		m := algManager(norm)
		id := m.Identity(3)
		if !m.RootsEqual(m.Mul(id, id), id) {
			t.Fatalf("[%v] I·I ≠ I", norm)
		}
		r := rand.New(rand.NewSource(51))
		v := m.FromVector(randQVals(r, 8))
		if !m.RootsEqual(m.Mul(id, v), v) {
			t.Fatalf("[%v] I·v ≠ v", norm)
		}
	}
}

// denseMul is the reference O(8^n) matrix multiply for cross-validation.
func denseMul(a, b [][]alg.Q) [][]alg.Q {
	n := len(a)
	out := make([][]alg.Q, n)
	for i := range out {
		out[i] = make([]alg.Q, n)
		for j := range out[i] {
			s := alg.QZero
			for k := 0; k < n; k++ {
				s = s.Add(a[i][k].Mul(b[k][j]))
			}
			out[i][j] = s
		}
	}
	return out
}

func denseMatVec(a [][]alg.Q, v []alg.Q) []alg.Q {
	out := make([]alg.Q, len(v))
	for i := range out {
		s := alg.QZero
		for k := range v {
			s = s.Add(a[i][k].Mul(v[k]))
		}
		out[i] = s
	}
	return out
}

func randQMatrix(r *rand.Rand, dim int) [][]alg.Q {
	rows := make([][]alg.Q, dim)
	for i := range rows {
		rows[i] = randQVals(r, dim)
	}
	return rows
}

func TestMulMatchesDense(t *testing.T) {
	for _, norm := range []NormScheme{NormLeft, NormMax, NormGCD} {
		m := algManager(norm)
		r := rand.New(rand.NewSource(52))
		for trial := 0; trial < 10; trial++ {
			a := randQMatrix(r, 8)
			b := randQMatrix(r, 8)
			da := m.FromMatrix(a)
			db := m.FromMatrix(b)
			got := m.ToMatrix(m.Mul(da, db), 3)
			want := denseMul(a, b)
			for i := range want {
				for j := range want[i] {
					if !got[i][j].Equal(want[i][j]) {
						t.Fatalf("[%v] (AB)[%d][%d] = %v, want %v", norm, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

func TestMatVecMatchesDense(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		a := randQMatrix(r, 8)
		v := randQVals(r, 8)
		got := m.ToVector(m.Mul(m.FromMatrix(a), m.FromVector(v)), 3)
		want := denseMatVec(a, v)
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("(Av)[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestAddMatchesDense(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(54))
	for trial := 0; trial < 10; trial++ {
		x := randQVals(r, 16)
		y := randQVals(r, 16)
		got := m.ToVector(m.Add(m.FromVector(x), m.FromVector(y)), 4)
		for i := range x {
			if !got[i].Equal(x[i].Add(y[i])) {
				t.Fatalf("(x+y)[%d] mismatch", i)
			}
		}
	}
}

func TestKronMatchesDense(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(55))
	a := randQMatrix(r, 4)
	b := randQMatrix(r, 2)
	got := m.ToMatrix(m.Kron(m.FromMatrix(a), m.FromMatrix(b)), 3)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := a[i/2][j/2].Mul(b[i%2][j%2])
			if !got[i][j].Equal(want) {
				t.Fatalf("(A⊗B)[%d][%d] = %v, want %v", i, j, got[i][j], want)
			}
		}
	}
}

func TestAdjointMatchesDense(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(56))
	a := randQMatrix(r, 8)
	got := m.ToMatrix(m.Adjoint(m.FromMatrix(a)), 3)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !got[i][j].Equal(a[j][i].Conj()) {
				t.Fatalf("A†[%d][%d] mismatch", i, j)
			}
		}
	}
	gotT := m.ToMatrix(m.Transpose(m.FromMatrix(a)), 3)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !gotT[i][j].Equal(a[j][i]) {
				t.Fatalf("Aᵀ[%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestBasisStateAndAmplitude(t *testing.T) {
	m := algManager(NormLeft)
	n := 4
	for idx := uint64(0); idx < 16; idx++ {
		v := m.BasisState(n, idx)
		for j := uint64(0); j < 16; j++ {
			a := m.Amplitude(v, n, j)
			if j == idx && !a.IsOne() {
				t.Fatalf("⟨%d|%d⟩ = %v, want 1", j, idx, a)
			}
			if j != idx && !a.IsZero() {
				t.Fatalf("⟨%d|%d⟩ = %v, want 0", j, idx, a)
			}
		}
		if m.Norm2(v) != 1 {
			t.Fatalf("‖|%d⟩‖² = %v", idx, m.Norm2(v))
		}
		if v.NodeCount() != n {
			t.Fatalf("basis state has %d nodes, want %d", v.NodeCount(), n)
		}
	}
}

func TestInnerProduct(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(57))
	for trial := 0; trial < 20; trial++ {
		x := randQVals(r, 8)
		y := randQVals(r, 8)
		got := m.InnerProduct(m.FromVector(x), m.FromVector(y))
		want := alg.QZero
		for i := range x {
			want = want.Add(x[i].Conj().Mul(y[i]))
		}
		if !got.Equal(want) {
			t.Fatalf("⟨x|y⟩ = %v, want %v", got, want)
		}
	}
}

func TestNormSchemesAgreeOnSize(t *testing.T) {
	// All three schemes are canonical, so they must detect the same
	// redundancies and produce diagrams of equal size.
	r := rand.New(rand.NewSource(58))
	for trial := 0; trial < 10; trial++ {
		amps := randQVals(r, 16)
		var sizes [3]int
		for i, norm := range []NormScheme{NormLeft, NormMax, NormGCD} {
			m := algManager(norm)
			sizes[i] = m.FromVector(amps).NodeCount()
		}
		if sizes[0] != sizes[1] || sizes[1] != sizes[2] {
			t.Fatalf("normalization schemes disagree on size: %v", sizes)
		}
	}
}

func TestGCDNormalizationCanonicity(t *testing.T) {
	m := algManager(NormGCD)
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		amps := randQVals(r, 8)
		v1 := m.FromVector(amps)
		scaled := make([]alg.Q, len(amps))
		factor := alg.QFromD(alg.NewD(1, 0, 1, 2, 1)) // some D[ω] scalar
		for i, a := range amps {
			scaled[i] = a.Mul(factor)
		}
		v2 := m.FromVector(scaled)
		if m.IsZero(v1) != m.IsZero(v2) {
			t.Fatal("zero mismatch")
		}
		if !m.IsZero(v1) && v1.N != v2.N {
			t.Fatalf("GCD scheme not canonical under scaling (trial %d)", trial)
		}
	}
}

// TestNumericToleranceTradeoff demonstrates the core phenomenon of the
// paper's Section III on the smallest possible example: with ε = 0, the
// float product (1/√2)·(1/√2)·2 is 1.0000000000000002 ≠ 1, so H·H is NOT
// recognized as the identity; with any reasonable tolerance it is.
func TestNumericToleranceTradeoff(t *testing.T) {
	s := complex(1/math.Sqrt2, 0)
	hRows := [][]complex128{{s, s}, {s, -s}}

	m0 := numManager(0)
	hh0 := m0.Mul(m0.FromMatrix(hRows), m0.FromMatrix(hRows))
	if m0.RootsEqual(hh0, m0.Identity(1)) {
		t.Fatal("ε = 0 unexpectedly recognized H·H = I (float rounding should prevent this)")
	}
	got := m0.ToMatrix(hh0, 1)
	if cmplx.Abs(got[0][0]-1) > 1e-14 || cmplx.Abs(got[0][1]) > 1e-14 {
		t.Fatalf("H·H far from I even numerically: %v", got)
	}

	mt := numManager(1e-10)
	hht := mt.Mul(mt.FromMatrix(hRows), mt.FromMatrix(hRows))
	if !mt.RootsEqual(hht, mt.Identity(1)) {
		t.Fatalf("ε = 1e-10 failed to recognize H·H = I: %v", mt.ToMatrix(hht, 1))
	}
}

// TestAlgebraicExactness: the same H·H = I check succeeds exactly in the
// algebraic representation — no tolerance involved.
func TestAlgebraicExactness(t *testing.T) {
	m := algManager(NormLeft)
	s := alg.QInvSqrt2
	h := m.FromMatrix([][]alg.Q{{s, s}, {s, s.Neg()}})
	if !m.RootsEqual(m.Mul(h, h), m.Identity(1)) {
		t.Fatal("algebraic H·H ≠ I")
	}
	// T⁸ = I exactly.
	tg := m.FromMatrix([][]alg.Q{
		{alg.QOne, alg.QZero},
		{alg.QZero, alg.QFromD(alg.DOmegaVal)},
	})
	acc := m.Identity(1)
	for i := 0; i < 8; i++ {
		acc = m.Mul(acc, tg)
	}
	if !m.RootsEqual(acc, m.Identity(1)) {
		t.Fatal("algebraic T⁸ ≠ I")
	}
}

func TestSampleDistribution(t *testing.T) {
	m := numManager(0)
	s := complex(1/math.Sqrt2, 0)
	// |ψ⟩ = (|00⟩ + |11⟩)/√2 — a Bell state.
	v := m.FromVector([]complex128{s, 0, 0, s})
	rng := rand.New(rand.NewSource(60))
	counts := map[uint64]int{}
	for i := 0; i < 2000; i++ {
		idx, err := m.Sample(v, 2, rng)
		if err != nil {
			t.Fatalf("sampling failed: %v", err)
		}
		counts[idx]++
	}
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("sampled impossible outcomes: %v", counts)
	}
	if counts[0] < 800 || counts[3] < 800 {
		t.Fatalf("Bell state sampling skewed: %v", counts)
	}
}

func TestZeroHandling(t *testing.T) {
	m := algManager(NormLeft)
	z := m.ZeroEdge()
	v := m.BasisState(2, 1)
	if !m.RootsEqual(m.Add(z, v), v) {
		t.Fatal("0 + v ≠ v")
	}
	if !m.IsZero(m.Mul(m.Identity(2), z)) {
		t.Fatal("I·0 ≠ 0")
	}
	if !m.IsZero(m.Kron(z, v)) {
		t.Fatal("0 ⊗ v ≠ 0")
	}
	// A vector of zeros collapses to the zero stub.
	if !m.IsZero(m.FromVector([]alg.Q{alg.QZero, alg.QZero, alg.QZero, alg.QZero})) {
		t.Fatal("zero vector did not collapse")
	}
}

func TestDOTExport(t *testing.T) {
	m := algManager(NormLeft)
	v := m.BasisState(2, 2)
	var sb strings.Builder
	if err := m.DOT(&sb, v, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "root", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsAndComputeTable(t *testing.T) {
	m := algManager(NormLeft)
	id := m.Identity(4)
	m.Mul(id, id)
	st := m.Stats()
	if st.UniqueNodes == 0 || st.CTLookups == 0 {
		t.Fatalf("stats not collected: %+v", st)
	}
	m.ClearComputeTable()
	if s := m.Stats(); s.CTLookups != 0 {
		t.Fatalf("compute table not cleared")
	}
}

func TestTrivialWeightFraction(t *testing.T) {
	m := algManager(NormLeft)
	id := m.Identity(3)
	if f := m.TrivialWeightFraction(id); f != 1 {
		t.Fatalf("identity trivial-weight fraction = %v, want 1", f)
	}
}

func TestNodeProfile(t *testing.T) {
	m := algManager(NormLeft)
	id := m.Identity(4)
	prof := m.NodeProfile(id)
	if len(prof) != 4 {
		t.Fatalf("profile length %d", len(prof))
	}
	for l, c := range prof {
		if c != 1 {
			t.Fatalf("identity has %d nodes at level %d", c, l+1)
		}
	}
	if m.NodeProfile(m.ZeroEdge()) != nil {
		t.Fatal("zero edge has a profile")
	}
}
