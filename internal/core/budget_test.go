package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/num"
)

func budgetM(b Budget) *Manager[complex128] {
	m := NewManager[complex128](num.NewRing(0), NormLeft)
	m.SetBudget(b)
	return m
}

// buildLadder creates fresh vector nodes (distinct weights, so nothing hits
// the unique table) until the budget trips or the count is exhausted.
func buildLadder(m *Manager[complex128], count int) (err error) {
	defer RecoverTo(&err)
	e := m.OneEdge()
	for i := 1; i <= count; i++ {
		w := complex(float64(i), float64(i)/3)
		e = m.MakeVectorNode(i, Edge[complex128]{W: w, N: e.N}, e)
	}
	return nil
}

func TestBudgetIsZero(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Fatal("zero Budget not IsZero")
	}
	for _, b := range []Budget{
		{MaxNodes: 1}, {MaxWeights: 1}, {MaxBytes: 1}, {Deadline: time.Now()},
	} {
		if b.IsZero() {
			t.Fatalf("budget %+v reported IsZero", b)
		}
	}
}

func TestBudgetErrorMatchesSentinel(t *testing.T) {
	var err error = &BudgetError{Limit: "nodes"}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("BudgetError does not match ErrBudgetExceeded")
	}
	wrapped := fmt.Errorf("run: %w", err)
	if !errors.Is(wrapped, ErrBudgetExceeded) {
		t.Fatal("wrapped BudgetError does not match the sentinel")
	}
	var be *BudgetError
	if !errors.As(wrapped, &be) || be.Limit != "nodes" {
		t.Fatal("errors.As failed to recover the BudgetError")
	}
}

func TestMaxNodesTripsDuringBuild(t *testing.T) {
	m := budgetM(Budget{MaxNodes: 8})
	err := buildLadder(m, 100)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "nodes" {
		t.Fatalf("want nodes limit, got %v", err)
	}
	if be.Peak.Nodes < 8 {
		t.Fatalf("peak nodes %d below the limit that tripped", be.Peak.Nodes)
	}
}

func TestMaxWeightsTripsDuringBuild(t *testing.T) {
	m := budgetM(Budget{MaxWeights: 8})
	err := buildLadder(m, 100)
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "weights" {
		t.Fatalf("want weights limit, got %v", err)
	}
	if be.Peak.Weights < 8 {
		t.Fatalf("peak weights %d below the limit that tripped", be.Peak.Weights)
	}
}

func TestMaxBytesTripsDuringBuild(t *testing.T) {
	m := budgetM(Budget{MaxBytes: 1}) // any structure exceeds one byte
	// The byte estimate is only polled every budgetCheckStride node
	// creations, so build comfortably past one stride.
	err := buildLadder(m, 4*budgetCheckStride)
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "bytes" {
		t.Fatalf("want bytes limit, got %v", err)
	}
	if be.Peak.ApproxBytes <= 1 {
		t.Fatalf("peak bytes %d not above the limit", be.Peak.ApproxBytes)
	}
}

func TestContextCancelTripsDuringBuild(t *testing.T) {
	m := budgetM(Budget{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: first throttled poll must trip
	m.SetContext(ctx)
	defer m.SetContext(nil)
	err := buildLadder(m, 4*budgetCheckStride)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestPeakStatsSurviveClearedBudget(t *testing.T) {
	m := budgetM(Budget{})
	if err := buildLadder(m, 50); err != nil {
		t.Fatal(err)
	}
	p := m.Peak()
	if p.Nodes < 50 || p.Weights < 50 {
		t.Fatalf("peaks not recorded without a budget: %+v", p)
	}
	if p.ApproxBytes <= 0 {
		t.Fatalf("byte estimate missing: %+v", p)
	}
}

func TestRecoverTo(t *testing.T) {
	// A *BudgetError passes through unchanged.
	run := func(f func()) (err error) {
		defer RecoverTo(&err)
		f()
		return nil
	}
	be := &BudgetError{Limit: "nodes"}
	if err := run(func() { panic(be) }); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget panic became %v", err)
	}
	// Context errors pass through unchanged.
	if err := run(func() { panic(context.DeadlineExceeded) }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline panic became %v", err)
	}
	// Arbitrary panics are wrapped with their stack.
	err := run(func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("string panic not wrapped: %v", err)
	}
	// Runtime errors (index out of range &c.) are wrapped too.
	err = run(func() {
		var xs []int
		_ = xs[3] //nolint — deliberate out-of-range access
	})
	if !errors.As(err, &pe) {
		t.Fatalf("runtime panic not wrapped: %v", err)
	}
	// No panic: err stays nil.
	if err := run(func() {}); err != nil {
		t.Fatalf("spurious error: %v", err)
	}
}

func TestSetBudgetResetsClockNotPeaks(t *testing.T) {
	m := budgetM(Budget{})
	if err := buildLadder(m, 30); err != nil {
		t.Fatal(err)
	}
	before := m.Peak()
	m.SetBudget(Budget{MaxNodes: 1 << 30})
	after := m.Peak()
	if after.Nodes != before.Nodes || after.Weights != before.Weights {
		t.Fatalf("SetBudget reset the peaks: %+v vs %+v", after, before)
	}
}
