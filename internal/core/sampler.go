package core

import (
	"errors"
	"fmt"
)

// Rand01 is the uniform source sampling consumes: Float64 must return a
// value in [0, 1). *math/rand.Rand satisfies it, as does sim's deterministic
// splitmix64 generator.
type Rand01 interface {
	Float64() float64
}

// ErrZeroVector is returned when a sample is requested from a diagram whose
// total probability mass is zero (or has collapsed to zero numerically).
var ErrZeroVector = errors.New("core: cannot sample a zero-mass vector diagram")

// ErrMalformedDiagram is wrapped by errors reporting a structurally invalid
// vector diagram (skipped levels, matrix nodes, terminals above level 0).
var ErrMalformedDiagram = errors.New("core: malformed vector diagram")

// ErrStaleSampler is returned by Draw and Mass when the manager has been
// pruned since the sampler was built: the sampler's node pointers and mass
// memo may reference swept nodes, so using them would read garbage. Build a
// fresh Sampler from the live state.
var ErrStaleSampler = errors.New("core: sampler invalidated by a Prune; rebuild it from the live state")

// Sampler draws basis-state outcomes from the distribution induced by one
// vector diagram. Construction runs a single validating mass pass over the
// diagram's nodes (O(nodes)); every Draw afterwards walks one root-to-
// terminal path (O(n), allocation-free). This is the hoisted form of Sample
// — use it whenever more than one draw is taken from the same state, where
// the per-call memo of Sample would cost O(draws × nodes).
//
// A Sampler holds node pointers into its manager; it is invalidated by
// Prune (it captures the manager's prune generation at construction, and
// Draw/Mass return ErrStaleSampler once the generations diverge). It is not
// safe for concurrent use (the draws advance the caller's RNG anyway).
type Sampler[T any] struct {
	m    *Manager[T]
	root Edge[T]
	n    int
	gen  uint64 // manager prune generation at construction
	mass map[*Node[T]]float64
}

// NewSampler validates the diagram rooted at v as an n-qubit vector and
// precomputes the subtree mass of every node. It returns ErrZeroVector for
// a zero-mass state and an ErrMalformedDiagram-wrapped error for structural
// violations; both checks make later Draw calls infallible in practice.
func (m *Manager[T]) NewSampler(v Edge[T], n int) (*Sampler[T], error) {
	if n < 1 {
		return nil, fmt.Errorf("core: NewSampler: need at least one qubit, got %d", n)
	}
	s := &Sampler[T]{m: m, root: v, n: n, gen: m.pruneGen, mass: make(map[*Node[T]]float64)}
	total, err := s.edgeMass(v, n)
	if err != nil {
		return nil, err
	}
	if !(total > 0) { // catches 0, negatives and NaN in one test
		return nil, ErrZeroVector
	}
	return s, nil
}

// edgeMass returns |W|² times the subtree mass of the node e points to,
// validating the structure expected at the given level on the way down.
func (s *Sampler[T]) edgeMass(e Edge[T], level int) (float64, error) {
	if s.m.R.IsZero(e.W) {
		return 0, nil // zero stub, no structural requirements below it
	}
	if e.N == nil {
		if level != 0 {
			return 0, fmt.Errorf("%w: non-zero edge to terminal at level %d", ErrMalformedDiagram, level)
		}
		return s.m.R.Abs2(e.W), nil
	}
	if level == 0 {
		return 0, fmt.Errorf("%w: node below the terminal level", ErrMalformedDiagram)
	}
	if e.N.Level != level {
		return 0, fmt.Errorf("%w: node at level %d where level %d was expected", ErrMalformedDiagram, e.N.Level, level)
	}
	if len(e.N.E) != VectorArity {
		return 0, fmt.Errorf("%w: matrix node (arity %d) in a vector diagram", ErrMalformedDiagram, len(e.N.E))
	}
	nm, err := s.nodeMass(e.N)
	if err != nil {
		return 0, err
	}
	return s.m.R.Abs2(e.W) * nm, nil
}

// nodeMass memoizes Σ|amplitude|² of the sub-vector rooted at node (unit
// incoming weight).
func (s *Sampler[T]) nodeMass(n *Node[T]) (float64, error) {
	if v, ok := s.mass[n]; ok {
		return v, nil
	}
	sum := 0.0
	for _, c := range n.E {
		v, err := s.edgeMass(c, n.Level-1)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	s.mass[n] = sum
	return sum, nil
}

// branchMass returns the precomputed |W|²·mass of a child edge (level-1
// children point either at the terminal or at memoized nodes).
func (s *Sampler[T]) branchMass(e Edge[T]) float64 {
	if s.m.R.IsZero(e.W) {
		return 0
	}
	if e.N == nil {
		return s.m.R.Abs2(e.W)
	}
	return s.m.R.Abs2(e.W) * s.mass[e.N]
}

// Draw samples one basis-state index, consuming exactly one uniform from
// rng per qubit level (top to bottom) regardless of the diagram's shape —
// a fixed consumption pattern that keeps seeded runs reproducible across
// diagram representations. The diagram need not be normalized; branch
// probabilities are renormalized level by level.
func (s *Sampler[T]) Draw(rng Rand01) (uint64, error) {
	if s.gen != s.m.pruneGen {
		return 0, ErrStaleSampler
	}
	var idx uint64
	e := s.root
	for l := s.n; l >= 1; l-- {
		// The walk only descends branches with positive mass, and the root
		// had positive mass, so e.N is a validated level-l vector node.
		p0, p1 := s.branchMass(e.N.E[0]), s.branchMass(e.N.E[1])
		sum := p0 + p1
		if !(sum > 0) {
			return 0, ErrZeroVector // numeric collapse mid-walk
		}
		i := 0
		if rng.Float64()*sum >= p0 {
			i = 1
		}
		idx |= uint64(i) << (l - 1)
		e = e.N.E[i]
	}
	return idx, nil
}

// Mass returns the diagram's total probability mass Σ|amplitude|² (equal to
// Norm2 of the root), as computed at construction. Like Draw, it fails with
// ErrStaleSampler once the manager has been pruned.
func (s *Sampler[T]) Mass() (float64, error) {
	if s.gen != s.m.pruneGen {
		return 0, ErrStaleSampler
	}
	return s.branchMass(s.root), nil
}
