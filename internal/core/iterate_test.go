package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alg"
)

func TestForEachAmplitudeMatchesToVector(t *testing.T) {
	m := algManager(NormLeft)
	r := rand.New(rand.NewSource(120))
	for trial := 0; trial < 20; trial++ {
		amps := randQVals(r, 16)
		v := m.FromVector(amps)
		seen := map[uint64]alg.Q{}
		var last int64 = -1
		m.ForEachAmplitude(v, 4, func(idx uint64, a alg.Q) bool {
			if int64(idx) <= last {
				t.Fatalf("iteration out of order: %d after %d", idx, last)
			}
			last = int64(idx)
			seen[idx] = a
			return true
		})
		for i, want := range amps {
			got, ok := seen[uint64(i)]
			if want.IsZero() {
				if ok {
					t.Fatalf("zero amplitude %d visited", i)
				}
				continue
			}
			if !ok || !got.Equal(want) {
				t.Fatalf("amplitude %d: got %v, want %v", i, got, want)
			}
		}
	}
}

func TestForEachAmplitudeEarlyStop(t *testing.T) {
	m := algManager(NormLeft)
	v := m.FromVector([]alg.Q{alg.QOne, alg.QOne, alg.QOne, alg.QOne})
	visits := 0
	m.ForEachAmplitude(v, 2, func(idx uint64, a alg.Q) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Fatalf("early stop ignored: %d visits", visits)
	}
}

func TestSupportSize(t *testing.T) {
	m := algManager(NormLeft)
	if got := m.SupportSize(m.BasisState(10, 77), 10); got != 1 {
		t.Fatalf("basis support = %d", got)
	}
	if got := m.SupportSize(m.ZeroEdge(), 5); got != 0 {
		t.Fatalf("zero support = %d", got)
	}
	// GHZ over n qubits: support 2, computed without 2^n enumeration.
	n := 40 // far beyond anything enumerable
	e := m.OneEdge()
	z := m.ZeroEdge()
	chain0, chain1 := e, e
	for l := 1; l < n; l++ {
		chain0 = m.MakeVectorNode(l, chain0, z)
		chain1 = m.MakeVectorNode(l, z, chain1)
	}
	ghz := m.MakeVectorNode(n, chain0, chain1)
	if got := m.SupportSize(ghz, n); got != 2 {
		t.Fatalf("GHZ support = %d", got)
	}
	// Uniform superposition over 40 qubits: support 2^40 via memoized count.
	u := e
	for l := 1; l <= n; l++ {
		u = m.MakeVectorNode(l, u, u)
	}
	if got := m.SupportSize(u, n); got != uint64(1)<<40 {
		t.Fatalf("uniform support = %d", got)
	}
}

func TestTopOutcomes(t *testing.T) {
	m := algManager(NormLeft)
	half := alg.QInvSqrt2.Mul(alg.QInvSqrt2)
	v := m.FromVector([]alg.Q{
		half,                    // 1/2   → p = 1/4
		alg.QZero,               //
		alg.QInvSqrt2,           // 1/√2  → p = 1/2
		half.Mul(alg.QInvSqrt2), // 1/(2√2) → p = 1/8
	})
	idxs, probs := m.TopOutcomes(v, 2, 2)
	if len(idxs) != 2 || idxs[0] != 2 || idxs[1] != 0 {
		t.Fatalf("top outcomes = %v (%v)", idxs, probs)
	}
	if math.Abs(probs[0]-0.5) > 1e-12 || math.Abs(probs[1]-0.25) > 1e-12 {
		t.Fatalf("top probabilities = %v", probs)
	}
	if idxs, _ := m.TopOutcomes(v, 2, 0); idxs != nil {
		t.Fatal("k=0 returned outcomes")
	}
	// k larger than the support.
	idxs, probs = m.TopOutcomes(v, 2, 10)
	if len(idxs) != 3 {
		t.Fatalf("support-limited top outcomes = %v", idxs)
	}
	if probs[2] >= probs[1] || probs[1] >= probs[0] {
		t.Fatalf("not sorted: %v", probs)
	}
}
