package core

// Builders for elementary diagrams.

// Identity returns the 2^n × 2^n identity matrix as a QMDD (n ≥ 1). As
// QMDDs do not skip levels, this is a chain of n nodes.
func (m *Manager[T]) Identity(n int) Edge[T] {
	e := m.OneEdge()
	for l := 1; l <= n; l++ {
		e = m.MakeMatrixNode(l, e, m.ZeroEdge(), m.ZeroEdge(), e)
	}
	return e
}

// BasisState returns the computational basis state |idx⟩ of an n-qubit
// system. Bit n−1−j of idx is the value of qubit j (qubit 0 is the most
// significant / top level, matching the paper's figures).
func (m *Manager[T]) BasisState(n int, idx uint64) Edge[T] {
	e := m.OneEdge()
	for l := 1; l <= n; l++ {
		if (idx>>(l-1))&1 == 0 {
			e = m.MakeVectorNode(l, e, m.ZeroEdge())
		} else {
			e = m.MakeVectorNode(l, m.ZeroEdge(), e)
		}
	}
	return e
}

// FromVector builds the vector diagram for an explicit amplitude slice of
// length 2^n (mainly for tests and small examples).
func (m *Manager[T]) FromVector(amps []T) Edge[T] {
	n := log2len(len(amps))
	var build func(level int, lo, hi int) Edge[T]
	build = func(level int, lo, hi int) Edge[T] {
		if level == 0 {
			return m.Terminal(amps[lo])
		}
		mid := (lo + hi) / 2
		return m.MakeVectorNode(level, build(level-1, lo, mid), build(level-1, mid, hi))
	}
	return build(n, 0, len(amps))
}

// FromMatrix builds the matrix diagram for an explicit 2^n × 2^n matrix
// given as row slices.
func (m *Manager[T]) FromMatrix(rows [][]T) Edge[T] {
	n := log2len(len(rows))
	for _, r := range rows {
		if len(r) != len(rows) {
			panic("core: FromMatrix requires a square matrix")
		}
	}
	var build func(level, r0, c0, size int) Edge[T]
	build = func(level, r0, c0, size int) Edge[T] {
		if level == 0 {
			return m.Terminal(rows[r0][c0])
		}
		h := size / 2
		return m.MakeMatrixNode(level,
			build(level-1, r0, c0, h),
			build(level-1, r0, c0+h, h),
			build(level-1, r0+h, c0, h),
			build(level-1, r0+h, c0+h, h),
		)
	}
	return build(n, 0, 0, len(rows))
}

func log2len(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic("core: length must be a positive power of two")
	}
	k := 0
	for m := n; m > 1; m >>= 1 {
		k++
	}
	return k
}

// Amplitude returns the amplitude ⟨idx|v⟩ of a vector diagram over n qubits.
func (m *Manager[T]) Amplitude(v Edge[T], n int, idx uint64) T {
	w := v.W
	e := v
	for l := n; l >= 1; l-- {
		if e.N == nil { // zero stub
			if m.R.IsZero(e.W) {
				return m.R.Zero()
			}
			panic("core: malformed vector diagram")
		}
		c := e.N.E[(idx>>(l-1))&1]
		if m.R.IsZero(c.W) {
			return m.R.Zero()
		}
		w = m.R.Mul(w, c.W)
		e = c
	}
	return w
}

// Entry returns the matrix entry (row, col) of a matrix diagram over n
// qubits — the product of the edge weights along the path, as in the
// paper's Example 3.
func (m *Manager[T]) Entry(u Edge[T], n int, row, col uint64) T {
	w := u.W
	e := u
	for l := n; l >= 1; l-- {
		if e.N == nil {
			if m.R.IsZero(e.W) {
				return m.R.Zero()
			}
			panic("core: malformed matrix diagram")
		}
		i := (row >> (l - 1)) & 1
		j := (col >> (l - 1)) & 1
		c := e.N.E[2*i+j]
		if m.R.IsZero(c.W) {
			return m.R.Zero()
		}
		w = m.R.Mul(w, c.W)
		e = c
	}
	return w
}

// ToVector expands a vector diagram to its dense amplitude slice
// (exponential; for tests, examples and the accuracy metric).
func (m *Manager[T]) ToVector(v Edge[T], n int) []T {
	out := make([]T, 1<<uint(n))
	var walk func(e Edge[T], level int, idx uint64, w T)
	walk = func(e Edge[T], level int, idx uint64, w T) {
		if m.R.IsZero(w) || m.IsZero(e) {
			return
		}
		cw := m.R.Mul(w, e.W)
		if level == 0 {
			out[idx] = cw
			return
		}
		for i, c := range e.N.E {
			walk(c, level-1, idx|uint64(i)<<(level-1), cw)
		}
	}
	for i := range out {
		out[i] = m.R.Zero()
	}
	walk(v, n, 0, m.R.One())
	return out
}

// ToMatrix expands a matrix diagram densely (exponential; small n only).
func (m *Manager[T]) ToMatrix(u Edge[T], n int) [][]T {
	dim := 1 << uint(n)
	out := make([][]T, dim)
	for i := range out {
		out[i] = make([]T, dim)
		for j := range out[i] {
			out[i][j] = m.R.Zero()
		}
	}
	var walk func(e Edge[T], level int, row, col uint64, w T)
	walk = func(e Edge[T], level int, row, col uint64, w T) {
		if m.IsZero(e) {
			return
		}
		cw := m.R.Mul(w, e.W)
		if level == 0 {
			out[row][col] = cw
			return
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				walk(e.N.E[2*i+j], level-1,
					row|uint64(i)<<(level-1), col|uint64(j)<<(level-1), cw)
			}
		}
	}
	walk(u, n, 0, 0, m.R.One())
	return out
}
