package core

import (
	"runtime/debug"
	"testing"
)

// TestPruneDeepChain is the regression test for the recursive mark phase of
// Prune: a ≥1e5-level vector diagram must prune cleanly. The goroutine
// stack ceiling is lowered to 8 MiB for the duration so the pre-fix
// per-level mark recursion dies where the worklist version stays flat —
// everything else on this path (MakeNode, the survivor rebuild, Stats) is
// iterative and unaffected by the ceiling.
func TestPruneDeepChain(t *testing.T) {
	defer debug.SetMaxStack(debug.SetMaxStack(8 << 20))

	const depth = 150_000
	m := algManager(NormLeft)
	e := m.OneEdge()
	for l := 1; l <= depth; l++ {
		e = m.MakeVectorNode(l, e, m.ZeroEdge())
	}
	if got := m.Stats().UniqueNodes; got != depth {
		t.Fatalf("built %d nodes, want %d", got, depth)
	}
	// Everything is reachable from the root: the sweep must remove nothing
	// and keep the chain intact.
	if removed := m.Prune(e); removed != 0 {
		t.Fatalf("Prune removed %d reachable nodes", removed)
	}
	if got := m.Stats().UniqueNodes; got != depth {
		t.Fatalf("chain lost nodes across Prune: %d of %d left", got, depth)
	}
	// A root-less prune must also sweep the full depth without recursing.
	if removed := m.Prune(); removed != depth {
		t.Fatalf("root-less Prune removed %d, want %d", removed, depth)
	}
}
